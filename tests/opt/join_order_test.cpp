#include "opt/join_order.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace eidb::opt {
namespace {

JoinGraph chain3() {
  // A(1e6) -x0.001- B(1e3) -x0.01- C(1e5)
  JoinGraph g;
  g.table_rows = {1e6, 1e3, 1e5};
  g.edges = {{0, 1, 1e-3}, {1, 2, 1e-2}};
  return g;
}

TEST(JoinOrder, OrderCostMatchesHandComputation) {
  const JoinGraph g = chain3();
  // Order B, A, C: |B⋈A| = 1e3*1e6*1e-3 = 1e6; then ⋈C = 1e6*1e5*1e-2=1e9.
  EXPECT_DOUBLE_EQ(order_cost(g, {1, 0, 2}), 1e6 + 1e9);
  // Order B, C, A: |B⋈C| = 1e3*1e5*1e-2 = 1e6; then ⋈A = 1e6*1e6*1e-3=1e9.
  EXPECT_DOUBLE_EQ(order_cost(g, {1, 2, 0}), 1e6 + 1e9);
  // Cross-product-first order is catastrophically worse.
  EXPECT_GT(order_cost(g, {0, 2, 1}), 1e10);
}

TEST(JoinOrder, DpFindsOptimum) {
  const JoinGraph g = chain3();
  const JoinOrderPlan plan = optimize_dp(g);
  EXPECT_EQ(plan.order.size(), 3u);
  // Exhaustive check over all 6 permutations.
  std::vector<int> perm = {0, 1, 2};
  double best = 1e300;
  do {
    best = std::min(best, order_cost(g, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_DOUBLE_EQ(plan.cost, best);
  EXPECT_DOUBLE_EQ(order_cost(g, plan.order), plan.cost);
}

TEST(JoinOrder, DpOptimalOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const JoinGraph g = JoinGraph::random(7, 0.5, seed);
    const JoinOrderPlan plan = optimize_dp(g);
    // DP cost must equal exhaustive minimum over left-deep orders.
    std::vector<int> perm(7);
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e300;
    do {
      best = std::min(best, order_cost(g, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(plan.cost, best, best * 1e-12) << "seed " << seed;
  }
}

TEST(JoinOrder, GreedyTracksDpQuality) {
  // Bushy greedy explores a *larger* plan space than left-deep DP, so it
  // may come in below DP's cost; what matters is that it stays in DP's
  // neighborhood instead of degrading by orders of magnitude.
  std::vector<double> ratios;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const JoinGraph g = JoinGraph::random(10, 0.4, seed);
    const JoinOrderPlan dp = optimize_dp(g);
    const JoinOrderPlan greedy = optimize_greedy(g);
    ratios.push_back(greedy.cost / dp.cost);
    // A bushy plan over n tables performs exactly n-1 merges.
    EXPECT_EQ(greedy.merges.size(), 9u);
  }
  std::sort(ratios.begin(), ratios.end());
  EXPECT_LT(ratios[ratios.size() / 2], 10.0);  // typically near 1
  EXPECT_GT(ratios.front(), 0.0);
}

TEST(JoinOrder, GreedyMergesEveryTableExactlyOnce) {
  const JoinGraph g = JoinGraph::random(30, 0.3, 7);
  const JoinOrderPlan plan = optimize_greedy(g);
  EXPECT_EQ(plan.merges.size(), 29u);
  EXPECT_GT(plan.cost, 0.0);
  // Greedy (bushy) must be at least as good as a naive sequential
  // left-deep order.
  std::vector<int> naive(30);
  std::iota(naive.begin(), naive.end(), 0);
  EXPECT_LE(plan.cost, order_cost(g, naive) * 1.0001);
}

TEST(JoinOrder, DpRefusesHugeQueries) {
  const JoinGraph g = JoinGraph::random(25, 0.2, 3);
  EXPECT_THROW((void)optimize_dp(g), Error);
}

TEST(JoinOrder, GreedyHandlesThousandsOfTables) {
  const JoinGraph g = JoinGraph::random(2000, 0.2, 9);
  const JoinOrderPlan plan = optimize_greedy(g);
  EXPECT_EQ(plan.merges.size(), 1999u);
  EXPECT_GT(plan.cost, 0.0);
}

TEST(JoinOrder, GreedyHandlesDisconnectedGraphs) {
  JoinGraph g;
  g.table_rows = {100, 200, 300, 400};
  g.edges = {{0, 1, 0.01}};  // {2} and {3} are islands
  const JoinOrderPlan plan = optimize_greedy(g);
  EXPECT_EQ(plan.merges.size(), 3u);  // still joins everything
  EXPECT_GT(plan.cost, 0.0);
}

TEST(JoinOrder, SingleTable) {
  JoinGraph g;
  g.table_rows = {100};
  const JoinOrderPlan dp = optimize_dp(g);
  EXPECT_EQ(dp.order, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(dp.cost, 0.0);
  const JoinOrderPlan greedy = optimize_greedy(g);
  EXPECT_EQ(greedy.order, (std::vector<int>{0}));
}

}  // namespace
}  // namespace eidb::opt
