#include "opt/offload_advisor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace eidb::opt {
namespace {

OffloadAdvisor gpu_advisor() {
  return OffloadAdvisor(hw::MachineSpec::server(),
                        hw::AcceleratorSpec::discrete_gpu());
}

const hw::DvfsState& fmax() {
  static const hw::MachineSpec m = hw::MachineSpec::server();
  return m.dvfs.fastest();
}

TEST(Offload, TinyOperatorStaysOnCpu) {
  const OffloadAdvisor advisor = gpu_advisor();
  // 10 us of CPU work on 64 KiB: launch latency alone kills the offload.
  const auto e = advisor.advise(10e-6, 64 << 10, 1 << 10, fmax(),
                                Objective::kTime);
  EXPECT_FALSE(e.offload);
  EXPECT_LT(e.cpu_time_s, e.xpu_time_s);
}

TEST(Offload, HeavyComputeOffloads) {
  const OffloadAdvisor advisor = gpu_advisor();
  // 2 s of CPU work on 100 MB: 12x device speedup dwarfs the transfer.
  const auto e =
      advisor.advise(2.0, 100e6, 10e6, fmax(), Objective::kTime);
  EXPECT_TRUE(e.offload);
  EXPECT_LT(e.xpu_time_s, e.cpu_time_s / 5);
}

TEST(Offload, TransferBoundOperatorStaysOnCpu) {
  const OffloadAdvisor advisor = gpu_advisor();
  // Light compute over a big input: shipping the data costs more than the
  // kernel saves (the §III "only a limited number of operators benefit").
  const auto e = advisor.advise(0.02, 1e9, 1e9, fmax(), Objective::kTime);
  EXPECT_FALSE(e.offload);
}

TEST(Offload, BreakEvenIsMonotoneInComputeIntensity) {
  const OffloadAdvisor advisor = gpu_advisor();
  // More CPU seconds per byte -> offload pays off at smaller inputs.
  const double be_light =
      advisor.break_even_bytes(1e-9, 0.1, fmax(), Objective::kTime);
  const double be_heavy =
      advisor.break_even_bytes(1e-7, 0.1, fmax(), Objective::kTime);
  EXPECT_LT(be_heavy, be_light);
}

TEST(Offload, PureTransferNeverBreaksEven) {
  const OffloadAdvisor advisor = gpu_advisor();
  // Almost no compute per byte: the device can never win.
  const double be =
      advisor.break_even_bytes(1e-12, 1.0, fmax(), Objective::kTime);
  EXPECT_TRUE(std::isinf(be));
}

TEST(Offload, EnergyObjectivePrefersFpgaEarlier) {
  // The FPGA's low active power makes it win on energy for workloads where
  // the GPU only wins on time (or not at all).
  const OffloadAdvisor gpu = gpu_advisor();
  const OffloadAdvisor fpga(hw::MachineSpec::server(),
                            hw::AcceleratorSpec::fpga());
  const double cpu_s = 0.5;
  const double bytes = 50e6;
  const auto g = gpu.advise(cpu_s, bytes, bytes / 10, fmax(),
                            Objective::kEnergy);
  const auto f = fpga.advise(cpu_s, bytes, bytes / 10, fmax(),
                             Objective::kEnergy);
  EXPECT_LT(f.xpu_energy_j, g.xpu_energy_j);
  EXPECT_TRUE(f.offload);
}

TEST(Offload, EstimatesInternallyConsistent) {
  const OffloadAdvisor advisor = gpu_advisor();
  const auto e = advisor.advise(0.1, 1e7, 1e6, fmax(), Objective::kTime);
  EXPECT_GT(e.cpu_time_s, 0);
  EXPECT_GT(e.cpu_energy_j, 0);
  EXPECT_GT(e.xpu_time_s, 0);
  EXPECT_GT(e.xpu_energy_j, 0);
  EXPECT_EQ(e.chosen_time_s(), e.offload ? e.xpu_time_s : e.cpu_time_s);
}

}  // namespace
}  // namespace eidb::opt
