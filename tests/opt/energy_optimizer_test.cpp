#include "opt/energy_optimizer.hpp"

#include <gtest/gtest.h>

namespace eidb::opt {
namespace {

EnergyOptimizer make_opt() { return EnergyOptimizer(hw::MachineSpec::server()); }

std::vector<PlanCandidate> two_plans() {
  return {{"full-scan", {8e9, 8e9}}, {"pruned-scan", {1e9, 1e9}}};
}

TEST(EnergyOptimizer, EnumeratesPlansStatesCores) {
  const EnergyOptimizer opt = make_opt();
  const auto points = opt.enumerate(two_plans());
  const auto& m = opt.machine();
  EXPECT_EQ(points.size(),
            2 * m.dvfs.size() * static_cast<std::size_t>(m.cores));
  for (const auto& p : points) {
    EXPECT_GT(p.time_s, 0);
    EXPECT_GT(p.energy_j, 0);
  }
}

TEST(EnergyOptimizer, ParetoIsMonotone) {
  const EnergyOptimizer opt = make_opt();
  const auto frontier = EnergyOptimizer::pareto(opt.enumerate(two_plans()));
  ASSERT_GE(frontier.size(), 2u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].time_s, frontier[i - 1].time_s);
    EXPECT_LT(frontier[i].energy_j, frontier[i - 1].energy_j);
  }
}

TEST(EnergyOptimizer, ParetoDominatesAllPoints) {
  const EnergyOptimizer opt = make_opt();
  const auto all = opt.enumerate(two_plans());
  const auto frontier = EnergyOptimizer::pareto(all);
  for (const auto& p : all) {
    bool dominated_or_on = false;
    for (const auto& f : frontier) {
      if (f.time_s <= p.time_s + 1e-15 && f.energy_j <= p.energy_j + 1e-15) {
        dominated_or_on = true;
        break;
      }
    }
    EXPECT_TRUE(dominated_or_on);
  }
}

TEST(EnergyOptimizer, BudgetCurveIsFig2Shaped) {
  // Decreasing response time with increasing budget; infeasible below the
  // floor — exactly the conceptual curve of the paper's Figure 2.
  const EnergyOptimizer opt = make_opt();
  const auto plans = two_plans();
  const PlanPoint floor_point = opt.min_energy_point(plans);

  EXPECT_FALSE(
      opt.best_under_budget(plans, floor_point.energy_j * 0.5).has_value());

  double prev_time = 1e100;
  for (double budget = floor_point.energy_j * 1.01;
       budget < floor_point.energy_j * 40; budget *= 1.5) {
    const auto point = opt.best_under_budget(plans, budget);
    ASSERT_TRUE(point.has_value()) << budget;
    EXPECT_LE(point->time_s, prev_time + 1e-12);
    EXPECT_LE(point->energy_j, budget);
    prev_time = point->time_s;
  }
}

TEST(EnergyOptimizer, CheaperPlanWinsUnderTightBudget) {
  const EnergyOptimizer opt = make_opt();
  const auto plans = two_plans();
  const PlanPoint floor_point = opt.min_energy_point(plans);
  EXPECT_EQ(floor_point.plan_name, "pruned-scan");
  const auto tight = opt.best_under_budget(plans, floor_point.energy_j * 1.05);
  ASSERT_TRUE(tight.has_value());
  EXPECT_EQ(tight->plan_name, "pruned-scan");
}

TEST(EnergyOptimizer, GenerousBudgetBuysParallelSpeed) {
  const EnergyOptimizer opt = make_opt();
  const auto plans = two_plans();
  const auto generous = opt.best_under_budget(plans, 1e9);
  ASSERT_TRUE(generous.has_value());
  // With effectively unlimited energy, the fastest point uses all cores at
  // the top frequency on the cheap plan.
  EXPECT_EQ(generous->cores, opt.machine().cores);
  EXPECT_DOUBLE_EQ(generous->state.freq_ghz,
                   opt.machine().dvfs.fastest().freq_ghz);
  EXPECT_EQ(generous->plan_name, "pruned-scan");
}

TEST(EnergyOptimizer, MaxCoresRestrictsEnumeration) {
  const EnergyOptimizer opt = make_opt();
  const auto points = opt.enumerate(two_plans(), 2);
  for (const auto& p : points) EXPECT_LE(p.cores, 2);
}

TEST(EnergyOptimizer, AccountingPolicyShapesTheFrontier) {
  // Dedicated-server accounting (static floor billed) collapses the Fig. 2
  // curve toward "fastest is greenest" [12]; incremental accounting
  // exposes the genuine DVFS trade.
  const std::vector<PlanCandidate> plans = {{"cpu-bound", {40e9, 1e8}}};
  const EnergyOptimizer full(hw::MachineSpec::server(),
                             Accounting::kFullPackage);
  const EnergyOptimizer incr(hw::MachineSpec::server(),
                             Accounting::kIncremental);
  const auto f_full = EnergyOptimizer::pareto(full.enumerate(plans));
  const auto f_incr = EnergyOptimizer::pareto(incr.enumerate(plans));
  EXPECT_GT(f_incr.size(), f_full.size());
  // Incremental min-energy point sits at the slowest P-state.
  EXPECT_DOUBLE_EQ(incr.min_energy_point(plans).state.freq_ghz,
                   incr.machine().dvfs.slowest().freq_ghz);
  // Full-package min-energy point is fast (racing beats stretching).
  EXPECT_GT(full.min_energy_point(plans).state.freq_ghz,
            full.machine().dvfs.slowest().freq_ghz);
}

TEST(EnergyOptimizer, MemoryBoundPlanSaturates) {
  // A fully memory-bound plan cannot buy time with cores or frequency;
  // the frontier collapses to (nearly) a single time.
  const EnergyOptimizer opt = make_opt();
  const std::vector<PlanCandidate> plans = {{"membound", {1e6, 100e9}}};
  const auto frontier = EnergyOptimizer::pareto(opt.enumerate(plans));
  ASSERT_FALSE(frontier.empty());
  const double tmin = frontier.front().time_s;
  const double tmax = frontier.back().time_s;
  EXPECT_NEAR(tmin, tmax, tmin * 0.01);
}

}  // namespace
}  // namespace eidb::opt
