#include "opt/compression_advisor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::opt {
namespace {

std::vector<std::int64_t> compressible(std::size_t n) {
  Pcg32 rng(3);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.next_bounded(64);  // 6-bit domain
  return v;
}

std::vector<std::int64_t> incompressible(std::size_t n) {
  Pcg32 rng(4);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next64());
  return v;
}

const hw::MachineSpec kMachine = hw::MachineSpec::server();

TEST(Advisor, ProfilesAllCodecs) {
  const CompressionAdvisor advisor(kMachine);
  const auto profiles = advisor.profile(compressible(10000));
  EXPECT_EQ(profiles.size(), storage::all_codec_kinds().size());
  for (const auto& p : profiles) EXPECT_GT(p.ratio, 0.0);
}

TEST(Advisor, RatioReflectsCompressibility) {
  const CompressionAdvisor advisor(kMachine);
  const auto good = advisor.profile(compressible(10000));
  const auto bad = advisor.profile(incompressible(10000));
  const auto ratio_of = [](const std::vector<CodecProfile>& ps,
                           storage::CodecKind k) {
    for (const auto& p : ps)
      if (p.kind == k) return p.ratio;
    return -1.0;
  };
  EXPECT_GT(ratio_of(good, storage::CodecKind::kForBitpack), 8.0);
  EXPECT_LT(ratio_of(bad, storage::CodecKind::kForBitpack), 1.3);
}

TEST(Advisor, SlowLinkChoosesCompression) {
  const CompressionAdvisor advisor(kMachine);
  const auto payload = compressible(100000);
  const auto e = advisor.advise(payload, payload.size(), hw::LinkSpec::gbe(),
                                kMachine.dvfs.fastest(), Objective::kTime);
  EXPECT_NE(e.kind, storage::CodecKind::kPlain);
}

TEST(Advisor, FastLinkIncompressibleDataChoosesPlain) {
  const CompressionAdvisor advisor(kMachine);
  const auto payload = incompressible(100000);
  const auto e = advisor.advise(payload, payload.size(), hw::LinkSpec::qpi(),
                                kMachine.dvfs.fastest(), Objective::kTime);
  EXPECT_EQ(e.kind, storage::CodecKind::kPlain);
}

TEST(Advisor, EstimateScalesWithVolume) {
  const CompressionAdvisor advisor(kMachine);
  const auto payload = compressible(4096);
  const auto profiles = advisor.profile(payload);
  const auto e1 = advisor.estimate(profiles[0], 1'000'000,
                                   hw::LinkSpec::tengbe(),
                                   kMachine.dvfs.fastest());
  const auto e2 = advisor.estimate(profiles[0], 2'000'000,
                                   hw::LinkSpec::tengbe(),
                                   kMachine.dvfs.fastest());
  EXPECT_GT(e2.time_s, e1.time_s);
  EXPECT_GT(e2.energy_j, e1.energy_j);
}

TEST(Advisor, EnergyObjectiveCanPickDifferentArmThanTime) {
  // The decision is per-objective; verify the advisor honors the switch and
  // both outcomes are self-consistent minima.
  const CompressionAdvisor advisor(kMachine);
  const auto payload = compressible(100000);
  const auto by_time =
      advisor.advise(payload, payload.size(), hw::LinkSpec::haec_wireless(),
                     kMachine.dvfs.fastest(), Objective::kTime);
  const auto by_energy =
      advisor.advise(payload, payload.size(), hw::LinkSpec::haec_wireless(),
                     kMachine.dvfs.fastest(), Objective::kEnergy);
  // Each winner must not lose to the other candidate on its own metric.
  const auto profiles = advisor.profile(payload);
  for (const auto& p : profiles) {
    const auto e = advisor.estimate(p, payload.size(),
                                    hw::LinkSpec::haec_wireless(),
                                    kMachine.dvfs.fastest());
    EXPECT_GE(e.time_s + 1e-15, by_time.time_s);
    EXPECT_GE(e.energy_j + 1e-15, by_energy.energy_j);
  }
}

TEST(Advisor, EmptyPayloadSafe) {
  const CompressionAdvisor advisor(kMachine);
  const std::vector<std::int64_t> empty;
  const auto e = advisor.advise(empty, 0, hw::LinkSpec::tengbe(),
                                kMachine.dvfs.fastest(), Objective::kTime);
  EXPECT_GE(e.time_s, 0.0);
}

TEST(ObjectiveNames, Distinct) {
  EXPECT_EQ(objective_name(Objective::kTime), "time");
  EXPECT_EQ(objective_name(Objective::kEnergy), "energy");
}

// -- Storage-side arm (resident column encodings) ----------------------------

TEST(AdvisorStorage, NarrowDomainGetsPackedScan) {
  const CompressionAdvisor advisor(kMachine);
  const CostModel model = CostModel::defaults();
  storage::ColumnStats s;
  s.rows = 10'000'000;
  s.min = 0;
  s.max = 255;  // byte-aligned 8-bit width vs 32 plain
  const auto a = advisor.advise_storage(s, storage::TypeId::kInt32, model,
                                        Objective::kEnergy);
  EXPECT_EQ(a.encoding, storage::Encoding::kBitPacked);
  EXPECT_EQ(a.bits, 8u);
  EXPECT_EQ(a.scan_arm, StorageArm::kPackedScan);
  EXPECT_DOUBLE_EQ(a.scan_ratio, 4.0);  // 32/8

  // Odd widths trade fewer bytes for unpack cycles: the advisor may keep
  // the plain arm there, but the encoding recommendation stands (the
  // packed image also serves the aggregate kernels).
  s.max = 999;  // 10 bits
  const auto odd = advisor.advise_storage(s, storage::TypeId::kInt32, model,
                                          Objective::kEnergy);
  EXPECT_EQ(odd.encoding, storage::Encoding::kBitPacked);
  EXPECT_EQ(odd.bits, 10u);
}

TEST(AdvisorStorage, NegativeDomainGetsForEncoding) {
  const CompressionAdvisor advisor(kMachine);
  const CostModel model = CostModel::defaults();
  storage::ColumnStats s;
  s.rows = 1'000'000;
  s.min = -1'000;
  s.max = 1'000;
  const auto a = advisor.advise_storage(s, storage::TypeId::kInt64, model,
                                        Objective::kTime);
  EXPECT_EQ(a.encoding, storage::Encoding::kForBitPacked);
  EXPECT_EQ(a.bits, 11u);
}

TEST(AdvisorStorage, FullWidthAndDoublesStayPlain) {
  const CompressionAdvisor advisor(kMachine);
  const CostModel model = CostModel::defaults();
  storage::ColumnStats s;
  s.rows = 1'000'000;
  s.min = std::numeric_limits<std::int64_t>::min();
  s.max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(advisor
                .advise_storage(s, storage::TypeId::kInt64, model,
                                Objective::kEnergy)
                .encoding,
            storage::Encoding::kPlain);
  s.min = 0;
  s.max = 10;
  EXPECT_EQ(advisor
                .advise_storage(s, storage::TypeId::kDouble, model,
                                Objective::kEnergy)
                .encoding,
            storage::Encoding::kPlain);
}

TEST(AdvisorStorage, NoPackedKernelFallsBackToDecodeOrPlain) {
  const CompressionAdvisor advisor(kMachine);
  const CostModel model = CostModel::defaults();
  storage::ColumnStats s;
  s.rows = 10'000'000;
  s.min = 0;
  s.max = 255;
  const auto a = advisor.advise_storage(s, storage::TypeId::kInt64, model,
                                        Objective::kEnergy,
                                        /*packed_kernel_available=*/false);
  EXPECT_NE(a.scan_arm, StorageArm::kPackedScan);
}

}  // namespace
}  // namespace eidb::opt
