#include "opt/cost_model.hpp"

#include <gtest/gtest.h>

namespace eidb::opt {
namespace {

TEST(CostModel, BranchingCostPeaksAtHalfSelectivity) {
  const CostModel m = CostModel::defaults();
  const double at0 =
      m.scan_cycles_per_tuple(exec::ScanVariant::kBranching, 0.0);
  const double at50 =
      m.scan_cycles_per_tuple(exec::ScanVariant::kBranching, 0.5);
  const double at100 =
      m.scan_cycles_per_tuple(exec::ScanVariant::kBranching, 1.0);
  EXPECT_GT(at50, at0);
  EXPECT_GT(at50, at100);
  EXPECT_DOUBLE_EQ(at0, at100);  // symmetric flip probability
}

TEST(CostModel, PredicatedIsFlat) {
  const CostModel m = CostModel::defaults();
  const double a =
      m.scan_cycles_per_tuple(exec::ScanVariant::kPredicated, 0.0);
  const double b =
      m.scan_cycles_per_tuple(exec::ScanVariant::kPredicated, 0.7);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(CostModel, SimdIsCheapest) {
  const CostModel m = CostModel::defaults();
  for (const double sel : {0.0, 0.25, 0.5, 0.9}) {
    EXPECT_LT(m.scan_cycles_per_tuple(exec::ScanVariant::kAvx512, sel),
              m.scan_cycles_per_tuple(exec::ScanVariant::kAvx2, sel));
    EXPECT_LT(m.scan_cycles_per_tuple(exec::ScanVariant::kAvx2, sel),
              m.scan_cycles_per_tuple(exec::ScanVariant::kPredicated, sel));
  }
}

TEST(CostModel, ScalarPickCrossesOverWithSelectivity) {
  // Without SIMD (the Ross setting): branching at the extremes, predicated
  // in the middle.
  const CostModel m = CostModel::defaults();
  EXPECT_EQ(m.pick_scan_variant(0.005, false, false),
            exec::ScanVariant::kBranching);
  EXPECT_EQ(m.pick_scan_variant(0.5, false, false),
            exec::ScanVariant::kPredicated);
  EXPECT_EQ(m.pick_scan_variant(0.995, false, false),
            exec::ScanVariant::kBranching);
}

TEST(CostModel, SimdPickWhenAvailable) {
  const CostModel m = CostModel::defaults();
  EXPECT_EQ(m.pick_scan_variant(0.5, true, true), exec::ScanVariant::kAvx512);
  EXPECT_EQ(m.pick_scan_variant(0.5, true, false), exec::ScanVariant::kAvx2);
}

TEST(CostModel, WorkScalesLinearly) {
  const CostModel m = CostModel::defaults();
  const hw::Work w1 =
      m.scan_work(exec::ScanVariant::kPredicated, 1000, 0.5, 4);
  const hw::Work w2 =
      m.scan_work(exec::ScanVariant::kPredicated, 2000, 0.5, 4);
  EXPECT_DOUBLE_EQ(w2.cpu_cycles, 2 * w1.cpu_cycles);
  EXPECT_DOUBLE_EQ(w2.dram_bytes, 2 * w1.dram_bytes);
  EXPECT_DOUBLE_EQ(w1.dram_bytes, 4000);
}

TEST(CostModel, GroupHashCostlierThanDense) {
  const CostModel m = CostModel::defaults();
  EXPECT_GT(m.group_work(1000, false, 8).cpu_cycles,
            m.group_work(1000, true, 8).cpu_cycles);
}

TEST(CostModel, JoinWorkCountsBothSides) {
  const CostModel m = CostModel::defaults();
  const hw::Work w = m.join_work(100, 1000, 8);
  EXPECT_GT(w.cpu_cycles, 0);
  EXPECT_DOUBLE_EQ(w.dram_bytes, 8 * 1100);
}

TEST(CostModel, CalibrationProducesUsableConstants) {
  const CostModel m = CostModel::calibrate(1 << 16);
  const KernelCosts& c = m.costs();
  EXPECT_GT(c.predicated, 0.0);
  EXPECT_GT(c.branch_base, 0.0);
  EXPECT_GT(c.branch_miss_penalty, 0.0);
  // When the ISA exists the SIMD kernel must at least calibrate to a finite
  // positive cost. (Whether it undercuts the scalar kernels depends on the
  // host — AVX-512 downclocking and virtualized CPUs routinely invert the
  // ranking — so that is not asserted here.)
  if (exec::cpu_has_avx512()) {
    EXPECT_GT(c.avx512, 0.0);
  }
  // The picker still behaves sanely with calibrated constants.
  const exec::ScanVariant v = m.pick_scan_variant(0.5);
  EXPECT_NE(v, exec::ScanVariant::kAuto);
}

TEST(CostModel, AutoResolvesToPickedVariant) {
  const CostModel m = CostModel::defaults();
  const double c_auto =
      m.scan_cycles_per_tuple(exec::ScanVariant::kAuto, 0.3);
  const exec::ScanVariant picked = m.pick_scan_variant(0.3);
  EXPECT_DOUBLE_EQ(c_auto, m.scan_cycles_per_tuple(picked, 0.3));
}

TEST(CostModel, StorageScanWorkTracksPackedBytes) {
  const CostModel m = CostModel::defaults();
  constexpr std::uint64_t kRows = 1'000'000;
  const hw::Work plain =
      m.storage_scan_work(StorageArm::kPlainScan, kRows, 8, 8.0);
  const hw::Work packed =
      m.storage_scan_work(StorageArm::kPackedScan, kRows, 8, 8.0);
  const hw::Work decode =
      m.storage_scan_work(StorageArm::kDecodeThenScan, kRows, 8, 8.0);
  // Packed touches exactly bits/8 bytes per tuple.
  EXPECT_DOUBLE_EQ(packed.dram_bytes, kRows * 1.0);
  EXPECT_DOUBLE_EQ(plain.dram_bytes, kRows * 8.0);
  // Decode-then-scan reads packed, writes scratch, reads scratch.
  EXPECT_GT(decode.dram_bytes, plain.dram_bytes);
  EXPECT_GT(decode.cpu_cycles, plain.cpu_cycles);
  // Odd widths pay more cycles than byte-aligned ones.
  const hw::Work odd =
      m.storage_scan_work(StorageArm::kPackedScan, kRows, 13, 8.0);
  EXPECT_GT(odd.cpu_cycles, packed.cpu_cycles);
}

TEST(CostModel, PickStorageArmPrefersPackedWhenKernelExists) {
  const CostModel m = CostModel::defaults();
  const hw::MachineSpec machine = hw::MachineSpec::server();
  // Narrow width, packed kernel available: scan-on-compressed wins on the
  // memory-bound energy model.
  EXPECT_EQ(m.pick_storage_arm(machine, 10'000'000, 8, 8.0, true),
            StorageArm::kPackedScan);
  // No packed kernel: the fallback is whichever of decode/plain is cheaper
  // — never kPackedScan.
  const StorageArm fallback =
      m.pick_storage_arm(machine, 10'000'000, 8, 8.0, false);
  EXPECT_NE(fallback, StorageArm::kPackedScan);
  EXPECT_FALSE(storage_arm_name(fallback).empty());
}

TEST(CostModel, PickJoinArmByBuildCardinality) {
  const CostModel m;
  const std::uint64_t budget = m.costs().join_cache_build_entries;
  // Small builds keep the single cache-resident table.
  EXPECT_EQ(m.pick_join_arm(1000), JoinArm::kHashJoin);
  EXPECT_EQ(m.pick_join_arm(budget), JoinArm::kHashJoin);
  // Larger builds radix-partition.
  EXPECT_EQ(m.pick_join_arm(budget * 8), JoinArm::kRadixJoin);
  // A low distinct estimate caps the table size: many duplicate rows of
  // few keys stay on the hash arm.
  EXPECT_EQ(m.pick_join_arm(budget * 8, /*distinct_hint=*/100),
            JoinArm::kHashJoin);
  EXPECT_FALSE(join_arm_name(JoinArm::kHashJoin).empty());
  EXPECT_FALSE(join_arm_name(JoinArm::kRadixJoin).empty());
  EXPECT_FALSE(join_arm_name(JoinArm::kDenseJoin).empty());
}

TEST(CostModel, PickJoinArmPrefersDenseDomains) {
  const CostModel m;
  const std::uint64_t max_domain = m.costs().dense_join_max_domain;
  // The star-schema case: surrogate keys 0..N over a comparable build.
  EXPECT_EQ(m.pick_join_arm(30'000, 30'000, /*key_domain=*/30'000),
            JoinArm::kDenseJoin);
  // Even a large build takes the dense arm when the domain is affordable.
  EXPECT_EQ(m.pick_join_arm(1u << 20, 0, max_domain), JoinArm::kDenseJoin);
  // Too-large domains fall back to the cardinality policy.
  EXPECT_EQ(m.pick_join_arm(1000, 0, max_domain * 2), JoinArm::kHashJoin);
  // Grossly sparse domains (hash-like keys) are not worth the array.
  EXPECT_EQ(m.pick_join_arm(10, 10, /*key_domain=*/1u << 20),
            JoinArm::kHashJoin);
  // No domain knowledge: never dense.
  EXPECT_EQ(m.pick_join_arm(1000, 0, 0), JoinArm::kHashJoin);
}

TEST(CostModel, RadixBitsScaleWithBuildAndStayClamped) {
  const CostModel m;
  const std::uint64_t budget = m.costs().join_cache_build_entries;
  const unsigned small_bits = m.pick_radix_bits(budget * 2);
  const unsigned big_bits = m.pick_radix_bits(budget * 1024);
  EXPECT_GE(small_bits, 4u);
  EXPECT_LE(big_bits, 12u);
  EXPECT_LE(small_bits, big_bits);
  // Each partition's build side fits the budget (until the clamp).
  EXPECT_LE((budget * 2) >> small_bits, budget);
}

TEST(CostModel, RadixJoinWorkAddsPartitionPass) {
  const CostModel m;
  const hw::Work hash = m.join_work(JoinArm::kHashJoin, 1 << 20, 1 << 22, 8.0);
  const hw::Work radix =
      m.join_work(JoinArm::kRadixJoin, 1 << 20, 1 << 22, 8.0);
  EXPECT_GT(radix.cpu_cycles, hash.cpu_cycles);
  EXPECT_GT(radix.dram_bytes, hash.dram_bytes);
}

}  // namespace
}  // namespace eidb::opt
