#include "txn/mvcc.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace eidb::txn {
namespace {

TEST(Mvcc, ReadYourOwnWrites) {
  MvccStore store;
  Transaction t = store.begin();
  EXPECT_FALSE(store.read(t, 1).has_value());
  ASSERT_TRUE(store.write(t, 1, 100));
  EXPECT_EQ(store.read(t, 1).value(), 100);
  ASSERT_TRUE(store.write(t, 1, 200));  // overwrite own intent
  EXPECT_EQ(store.read(t, 1).value(), 200);
  EXPECT_TRUE(store.commit(t).has_value());
}

TEST(Mvcc, CommittedVisibleToLaterTransactions) {
  MvccStore store;
  Transaction w = store.begin();
  ASSERT_TRUE(store.write(w, 5, 55));
  ASSERT_TRUE(store.commit(w).has_value());
  Transaction r = store.begin();
  EXPECT_EQ(store.read(r, 5).value(), 55);
}

TEST(Mvcc, SnapshotIsolationRepeatableRead) {
  MvccStore store;
  Transaction setup = store.begin();
  ASSERT_TRUE(store.write(setup, 1, 10));
  ASSERT_TRUE(store.commit(setup).has_value());

  Transaction reader = store.begin();
  EXPECT_EQ(store.read(reader, 1).value(), 10);

  // A concurrent writer commits a new version.
  Transaction writer = store.begin();
  ASSERT_TRUE(store.write(writer, 1, 20));
  ASSERT_TRUE(store.commit(writer).has_value());

  // The reader still sees its snapshot.
  EXPECT_EQ(store.read(reader, 1).value(), 10);
  // A fresh transaction sees the new version.
  Transaction fresh = store.begin();
  EXPECT_EQ(store.read(fresh, 1).value(), 20);
}

TEST(Mvcc, UncommittedInvisibleToOthers) {
  MvccStore store;
  Transaction w = store.begin();
  ASSERT_TRUE(store.write(w, 9, 99));
  Transaction r = store.begin();
  EXPECT_FALSE(store.read(r, 9).has_value());
  store.abort(w);
  EXPECT_FALSE(store.read(r, 9).has_value());
}

TEST(Mvcc, WriteWriteConflictOnIntent) {
  MvccStore store;
  Transaction a = store.begin();
  Transaction b = store.begin();
  ASSERT_TRUE(store.write(a, 7, 1));
  EXPECT_FALSE(store.write(b, 7, 2));  // foreign intent blocks
  store.abort(a);
  EXPECT_TRUE(store.write(b, 7, 2));  // intent gone after abort
  EXPECT_TRUE(store.commit(b).has_value());
}

TEST(Mvcc, FirstCommitterWinsValidation) {
  MvccStore store;
  Transaction setup = store.begin();
  ASSERT_TRUE(store.write(setup, 3, 30));
  ASSERT_TRUE(store.commit(setup).has_value());

  // Both read the same snapshot; a commits a new version of key 3 first.
  Transaction a = store.begin();
  Transaction b = store.begin();
  ASSERT_TRUE(store.write(a, 3, 31));
  ASSERT_TRUE(store.commit(a).has_value());

  // b writes key 3 afterwards: the intent succeeds (a's intent is gone)
  // but validation at commit must fail — a committed version newer than
  // b's snapshot exists.
  ASSERT_TRUE(store.write(b, 3, 32));
  EXPECT_FALSE(store.commit(b).has_value());
  EXPECT_EQ(b.state, TxnState::kAborted);

  Transaction check = store.begin();
  EXPECT_EQ(store.read(check, 3).value(), 31);
}

TEST(Mvcc, AbortRollsBackAllIntents) {
  MvccStore store;
  Transaction t = store.begin();
  ASSERT_TRUE(store.write(t, 1, 1));
  ASSERT_TRUE(store.write(t, 2, 2));
  store.abort(t);
  Transaction r = store.begin();
  EXPECT_FALSE(store.read(r, 1).has_value());
  EXPECT_FALSE(store.read(r, 2).has_value());
  EXPECT_EQ(store.key_count(), 0u);
}

TEST(Mvcc, VersionChainsGrowAndGcPrunes) {
  MvccStore store;
  for (int i = 0; i < 10; ++i) {
    Transaction t = store.begin();
    ASSERT_TRUE(store.write(t, 42, i));
    ASSERT_TRUE(store.commit(t).has_value());
  }
  EXPECT_EQ(store.version_count(), 10u);
  EXPECT_EQ(store.key_count(), 1u);
  const std::size_t reclaimed = store.gc();
  EXPECT_EQ(reclaimed, 9u);  // only the live version remains
  EXPECT_EQ(store.version_count(), 1u);
  Transaction r = store.begin();
  EXPECT_EQ(store.read(r, 42).value(), 9);
}

TEST(Mvcc, GcRespectsActiveReaders) {
  MvccStore store;
  Transaction setup = store.begin();
  ASSERT_TRUE(store.write(setup, 1, 10));
  ASSERT_TRUE(store.commit(setup).has_value());

  Transaction old_reader = store.begin();  // pins the old version

  Transaction w = store.begin();
  ASSERT_TRUE(store.write(w, 1, 20));
  ASSERT_TRUE(store.commit(w).has_value());

  // The superseded version must survive GC while old_reader is active.
  (void)store.gc();
  EXPECT_EQ(store.read(old_reader, 1).value(), 10);
}

TEST(Mvcc, LostUpdateAnomalyPreventedWithRetry) {
  // Concurrent read-modify-write increments with retry must not lose
  // updates (the OCC guarantee the paper's [18] relies on).
  MvccStore store;
  {
    Transaction t = store.begin();
    ASSERT_TRUE(store.write(t, 0, 0));
    ASSERT_TRUE(store.commit(t).has_value());
  }
  constexpr int kThreads = 4;
  constexpr int kIncrementsEach = 200;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w)
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrementsEach; ++i) {
        for (;;) {  // retry loop
          Transaction t = store.begin();
          const auto cur = store.read(t, 0);
          if (!cur || !store.write(t, 0, *cur + 1)) {
            store.abort(t);
            continue;
          }
          if (store.commit(t).has_value()) break;
        }
      }
    });
  for (auto& w : workers) w.join();
  Transaction check = store.begin();
  EXPECT_EQ(store.read(check, 0).value(), kThreads * kIncrementsEach);
}

TEST(Mvcc, ManyKeysIndependent) {
  MvccStore store;
  Transaction t = store.begin();
  for (std::int64_t k = 0; k < 1000; ++k)
    ASSERT_TRUE(store.write(t, k, k * 2));
  ASSERT_TRUE(store.commit(t).has_value());
  EXPECT_EQ(store.key_count(), 1000u);
  Transaction r = store.begin();
  for (std::int64_t k = 0; k < 1000; ++k)
    EXPECT_EQ(store.read(r, k).value(), k * 2);
}

}  // namespace
}  // namespace eidb::txn
