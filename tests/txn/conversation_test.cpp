#include "txn/conversation.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace eidb::txn {
namespace {

void seed_base(MvccStore& store) {
  Transaction t = store.begin();
  ASSERT_TRUE(store.write(t, 1, 100));
  ASSERT_TRUE(store.write(t, 2, 200));
  ASSERT_TRUE(store.commit(t).has_value());
}

TEST(Conversation, ReadsBaseSnapshot) {
  MvccStore store;
  seed_base(store);
  ConversationManager mgr(store);
  auto conv = mgr.open("analysis");
  EXPECT_EQ(conv->read(1).value(), 100);
  EXPECT_FALSE(conv->read(99).has_value());
}

TEST(Conversation, OverlayWritesShadowBaseWithoutTouchingIt) {
  MvccStore store;
  seed_base(store);
  ConversationManager mgr(store);
  auto conv = mgr.open("whatif");
  conv->write(1, 111);
  conv->write(50, 555);
  EXPECT_EQ(conv->read(1).value(), 111);
  EXPECT_EQ(conv->read(50).value(), 555);
  // Base untouched: a fresh transaction still sees the original.
  Transaction t = store.begin();
  EXPECT_EQ(store.read(t, 1).value(), 100);
  EXPECT_FALSE(store.read(t, 50).has_value());
}

TEST(Conversation, SnapshotIsolatedFromLaterBaseCommits) {
  MvccStore store;
  seed_base(store);
  ConversationManager mgr(store);
  auto conv = mgr.open("frozen");
  Transaction w = store.begin();
  ASSERT_TRUE(store.write(w, 1, 999));
  ASSERT_TRUE(store.commit(w).has_value());
  EXPECT_EQ(conv->read(1).value(), 100);  // still the old world
}

TEST(Conversation, PinSurvivesGc) {
  MvccStore store;
  seed_base(store);
  ConversationManager mgr(store);
  auto conv = mgr.open("pinned");
  // Supersede key 1 several times, then GC.
  for (int i = 0; i < 5; ++i) {
    Transaction w = store.begin();
    ASSERT_TRUE(store.write(w, 1, 1000 + i));
    ASSERT_TRUE(store.commit(w).has_value());
  }
  (void)store.gc();
  EXPECT_EQ(conv->read(1).value(), 100);  // pinned version not pruned
}

TEST(Conversation, PublishAndAttachShareOverlays) {
  MvccStore store;
  seed_base(store);
  ConversationManager mgr(store);
  auto alice = mgr.open("alice");
  alice->write(10, 42);

  auto bob = mgr.open("bob");
  // Unpublished: not findable, not attachable.
  EXPECT_EQ(mgr.find("alice"), nullptr);
  alice->publish();
  auto shared = mgr.find("alice");
  ASSERT_NE(shared, nullptr);
  bob->attach(shared);
  EXPECT_EQ(bob->read(10).value(), 42);   // through alice's overlay
  bob->write(10, 43);                     // bob's own overlay wins
  EXPECT_EQ(bob->read(10).value(), 43);
  EXPECT_EQ(alice->read(10).value(), 42); // alice unaffected
}

TEST(Conversation, AttachUnpublishedThrows) {
  MvccStore store;
  ConversationManager mgr(store);
  auto a = mgr.open("a");
  auto b = mgr.open("b");
  const std::shared_ptr<const Conversation> ca = a;
  EXPECT_THROW(b->attach(ca), Error);
}

TEST(Conversation, MergeIntoBasePublishesAndRebases) {
  MvccStore store;
  seed_base(store);
  ConversationManager mgr(store);
  auto conv = mgr.open("merge");
  conv->write(1, 111);
  conv->write(7, 777);
  ASSERT_TRUE(conv->merge_into_base());
  EXPECT_EQ(conv->overlay_size(), 0u);
  // Base now has the values; the conversation sees them post-rebase.
  EXPECT_EQ(conv->read(1).value(), 111);
  EXPECT_EQ(conv->read(7).value(), 777);
  Transaction t = store.begin();
  EXPECT_EQ(store.read(t, 7).value(), 777);
}

TEST(Conversation, MergeConflictKeepsOverlayForRetry) {
  MvccStore store;
  seed_base(store);
  ConversationManager mgr(store);
  auto conv = mgr.open("loser");
  conv->write(1, 111);
  // A base commit to the same key lands first.
  Transaction w = store.begin();
  ASSERT_TRUE(store.write(w, 1, 999));
  ASSERT_TRUE(store.commit(w).has_value());

  EXPECT_FALSE(conv->merge_into_base());  // first-committer-wins
  EXPECT_EQ(conv->overlay_size(), 1u);    // kept for rebase/retry
  EXPECT_EQ(conv->read(1).value(), 111);  // conversation view intact
}

TEST(Conversation, DuplicateNameRejected) {
  MvccStore store;
  ConversationManager mgr(store);
  (void)mgr.open("x");
  EXPECT_THROW((void)mgr.open("x"), Error);
}

TEST(Conversation, EmptyMergeSucceedsTrivially) {
  MvccStore store;
  ConversationManager mgr(store);
  auto conv = mgr.open("empty");
  EXPECT_TRUE(conv->merge_into_base());
}

}  // namespace
}  // namespace eidb::txn
