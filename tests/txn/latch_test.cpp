#include "txn/latch.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace eidb::txn {
namespace {

template <typename Lock>
void hammer_counter(Lock& lock, int threads, int iters, std::int64_t& counter) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  for (auto& w : workers) w.join();
}

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock lock;
  std::int64_t counter = 0;
  hammer_counter(lock, 4, 10000, counter);
  EXPECT_EQ(counter, 40000);
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLock, MutualExclusionUnderContention) {
  TicketLock lock;
  std::int64_t counter = 0;
  hammer_counter(lock, 4, 10000, counter);
  EXPECT_EQ(counter, 40000);
}

TEST(TicketLock, SequentialLockUnlock) {
  TicketLock lock;
  for (int i = 0; i < 100; ++i) {
    lock.lock();
    lock.unlock();
  }
  SUCCEED();
}

TEST(RwLatch, SharedReadersCoexist) {
  RwLatch latch;
  latch.lock_shared();
  latch.lock_shared();  // must not deadlock
  latch.unlock_shared();
  latch.unlock_shared();
  latch.lock();  // exclusive acquirable after all readers left
  latch.unlock();
}

TEST(RwLatch, WriterExcludesWriters) {
  RwLatch latch;
  std::int64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        latch.lock();
        ++counter;
        latch.unlock();
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, 20000);
}

TEST(RwLatch, ReadersSeeConsistentSnapshots) {
  RwLatch latch;
  std::int64_t a = 0, b = 0;  // invariant under the latch: a == b
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      latch.lock();
      ++a;
      ++b;
      latch.unlock();
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop) {
      latch.lock_shared();
      if (a != b) violations.fetch_add(1);
      latch.unlock_shared();
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace eidb::txn
