// Serving-tier shared scans: a coalesced batch of compatible SQL queries
// is bucketed by request-level sharing key, fused through
// core::Database::run_batch, and every member's response surfaces the
// group id, its fair energy share, and the governor's requested-vs-granted
// core figures. Answers must be bit-identical with sharing on or off.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "core/database.hpp"
#include "query/plan.hpp"
#include "query/request.hpp"
#include "server/query_service.hpp"
#include "storage/column.hpp"
#include "util/rng.hpp"

namespace eidb::server {
namespace {

/// Fact table big enough that the engine's sharing arm approves fusing
/// (one ~1 MiB pass plus near-memory re-reads beats 8 passes).
class SharedScanServiceTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBig = 1u << 18;

  void SetUp() override {
    storage::Table& t = db_.create_table(
        "big", storage::Schema({{"v", storage::TypeId::kInt32},
                                {"g", storage::TypeId::kInt32}}));
    Pcg32 rng(33);
    v_.resize(kBig);
    std::vector<std::int32_t> g(kBig);
    for (std::size_t i = 0; i < kBig; ++i) {
      v_[i] = static_cast<std::int32_t>(rng.next_bounded(10'000));
      g[i] = static_cast<std::int32_t>(rng.next_bounded(64));
    }
    t.set_column(0, storage::Column::from_int32("v", v_));
    t.set_column(1, storage::Column::from_int32("g", g));
  }

  [[nodiscard]] static std::pair<std::int64_t, std::int64_t> bounds(
      std::size_t i) {
    return {static_cast<std::int64_t>(i * 500),
            static_cast<std::int64_t>(4000 + i * 600)};
  }

  [[nodiscard]] static std::string count_sql(std::size_t i) {
    const auto [lo, hi] = bounds(i);
    return "SELECT COUNT(*) FROM big WHERE v BETWEEN " + std::to_string(lo) +
           " AND " + std::to_string(hi);
  }

  [[nodiscard]] std::int64_t expected_count(std::size_t i) const {
    const auto [lo, hi] = bounds(i);
    std::int64_t n = 0;
    for (const std::int32_t x : v_)
      if (x >= lo && x <= hi) ++n;
    return n;
  }

  /// Submits the 8 compatible COUNT queries in one burst and waits.
  [[nodiscard]] std::vector<query::QueryResponse> run_burst(
      QueryService& service) {
    auto session = service.open_session("tenant");
    std::vector<std::future<query::QueryResponse>> futures;
    for (std::size_t i = 0; i < 8; ++i)
      futures.push_back(
          service.submit(session, query::QueryRequest::from_sql(count_sql(i))));
    std::vector<query::QueryResponse> responses;
    for (auto& f : futures) responses.push_back(f.get());
    return responses;
  }

  void expect_answers(const std::vector<query::QueryResponse>& responses) {
    ASSERT_EQ(responses.size(), 8u);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok()) << i << ": " << responses[i].error;
      ASSERT_EQ(responses[i].result.row_count(), 1u) << i;
      EXPECT_EQ(responses[i].result.at(0, 0),
                storage::Value{expected_count(i)})
          << "query " << i;
      EXPECT_GT(responses[i].billed_j, 0.0) << i;
    }
  }

  core::Database db_;
  std::vector<std::int32_t> v_;
};

TEST_F(SharedScanServiceTest, CoalescedBatchFusesAndAnswersExactly) {
  ServiceOptions opts;
  // A wake-up window long enough that one burst of submissions lands in
  // one coalesced batch; pacing off so the test measures wiring, not
  // sleeps.
  opts.policy = sched::Policy::kThroughput;
  opts.coalesce_window_s = 0.25;
  opts.max_batch = 16;
  opts.workers = 2;
  opts.pace_execution = false;
  QueryService service(db_, opts);

  const auto responses = run_burst(service);
  expect_answers(responses);

  std::size_t fused = 0;
  for (const auto& resp : responses) {
    if (resp.shared_members >= 2) {
      ++fused;
      EXPECT_GT(resp.shared_group, 0u);
      EXPECT_LE(resp.shared_members, 8u);
    }
    // Requested-vs-granted core surfacing: the grant never exceeds the
    // ask, and both are real core counts whenever the governor ran.
    if (!resp.governor_policy.empty()) {
      EXPECT_GE(resp.governor_cores, 1);
      EXPECT_GE(resp.governor_requested_cores, resp.governor_cores);
    }
  }
  // The whole burst fits one wake-up window, so the batch must have fused
  // at least one multi-member group (the arm approves at this scale —
  // asserted directly in SharedScanParity.RunBatchFusesCompatibleQueries).
  EXPECT_GE(fused, 2u);
  EXPECT_EQ(service.stats().completed, 8u);
  EXPECT_EQ(service.stats().errors, 0u);
}

TEST_F(SharedScanServiceTest, SharingDisabledGivesIdenticalAnswersUnfused) {
  ServiceOptions opts;
  opts.policy = sched::Policy::kThroughput;
  opts.coalesce_window_s = 0.25;
  opts.max_batch = 16;
  opts.workers = 2;
  opts.pace_execution = false;
  opts.shared_scans = false;
  QueryService service(db_, opts);

  const auto responses = run_burst(service);
  expect_answers(responses);
  for (const auto& resp : responses)
    EXPECT_EQ(resp.shared_members, 0u) << "sharing was disabled";
}

TEST_F(SharedScanServiceTest, IncompatibleQueriesStaySoloInAFusedBatch) {
  ServiceOptions opts;
  opts.policy = sched::Policy::kThroughput;
  opts.coalesce_window_s = 0.25;
  opts.max_batch = 16;
  opts.workers = 2;
  opts.pace_execution = false;
  QueryService service(db_, opts);
  auto session = service.open_session("tenant");

  // Different predicate column: its bucket has one member, so it must run
  // the ordinary path even when its batch-mates fuse.
  auto solo_future = service.submit(
      session, query::QueryRequest::from_sql(
                   "SELECT COUNT(*) FROM big WHERE g BETWEEN 0 AND 31"));
  std::vector<std::future<query::QueryResponse>> futures;
  for (std::size_t i = 0; i < 4; ++i)
    futures.push_back(
        service.submit(session, query::QueryRequest::from_sql(count_sql(i))));

  const query::QueryResponse solo = solo_future.get();
  ASSERT_TRUE(solo.ok()) << solo.error;
  EXPECT_EQ(solo.shared_members, 0u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto resp = futures[i].get();
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.result.at(0, 0), storage::Value{expected_count(i)});
  }
}

TEST_F(SharedScanServiceTest, CoreCapClampsGovernorGrantNotItsRequest) {
  // Database-level check of the serving clamp: with core_cap = 1 the
  // governor may still *request* a fan-out, but the grant is pinned.
  core::RunOptions ro;
  ro.exec.core_cap = 1;
  const auto plan = query::QueryBuilder("big")
                        .filter_int("v", 0, 7'000)
                        .group_by("g")
                        .aggregate(query::AggOp::kCount)
                        .build();
  const core::RunResult run = db_.run(plan, ro);
  ASSERT_TRUE(run.governor.enabled);
  EXPECT_EQ(run.governor.cores, 1);
  EXPECT_GE(run.governor.requested_cores, run.governor.cores);

  // Uncapped, request and grant agree.
  const core::RunResult free_run = db_.run(plan, {});
  ASSERT_TRUE(free_run.governor.enabled);
  EXPECT_EQ(free_run.governor.cores, free_run.governor.requested_cores);
  EXPECT_GE(free_run.governor.requested_cores, run.governor.requested_cores);
}

}  // namespace
}  // namespace eidb::server
