#include "server/power_monitor.hpp"

#include <gtest/gtest.h>

namespace eidb::server {
namespace {

TEST(PowerMonitor, FloorOnlyWhenIdle) {
  PowerMonitor mon(/*window_s=*/1.0, /*floor_w=*/40.0);
  EXPECT_DOUBLE_EQ(mon.avg_power_w(0.0), 40.0);
  EXPECT_DOUBLE_EQ(mon.busy_j_in_window(0.0), 0.0);
}

TEST(PowerMonitor, BusyEnergyRaisesTheAverage) {
  PowerMonitor mon(1.0, 40.0);
  mon.add(0.5, 10.0);  // 10 J inside a 1 s window = +10 W.
  EXPECT_DOUBLE_EQ(mon.avg_power_w(0.5), 50.0);
}

TEST(PowerMonitor, EventsAgeOutOfTheWindow) {
  PowerMonitor mon(1.0, 40.0);
  mon.add(0.0, 10.0);
  EXPECT_DOUBLE_EQ(mon.avg_power_w(0.5), 50.0);
  // At t=1.5 the event (t=0) is outside [0.5, 1.5]: floor again.
  EXPECT_DOUBLE_EQ(mon.avg_power_w(1.5), 40.0);
  EXPECT_DOUBLE_EQ(mon.total_busy_j(), 10.0);  // Totals never age out.
}

TEST(PowerMonitor, WindowSumsMultipleEvents) {
  PowerMonitor mon(2.0, 0.0);
  mon.add(0.0, 4.0);
  mon.add(1.0, 6.0);
  EXPECT_DOUBLE_EQ(mon.busy_j_in_window(1.0), 10.0);
  EXPECT_DOUBLE_EQ(mon.avg_power_w(1.0), 5.0);  // 10 J / 2 s.
  // t=2.5: only the t=1 event remains in [0.5, 2.5].
  EXPECT_DOUBLE_EQ(mon.busy_j_in_window(2.5), 6.0);
}

}  // namespace
}  // namespace eidb::server
