#include "server/query_service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "query/plan.hpp"
#include "util/rng.hpp"

namespace eidb::server {
namespace {

/// Database with one small table: queries stay sub-millisecond so the
/// concurrency tests hammer scheduling, not kernels.
class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table& t = db_.create_table(
        "t", storage::Schema({{"id", storage::TypeId::kInt64},
                              {"val", storage::TypeId::kInt64}}));
    constexpr std::size_t kRows = 1000;
    Pcg32 rng(7);
    std::vector<std::int64_t> id(kRows), val(kRows);
    for (std::size_t i = 0; i < kRows; ++i) {
      id[i] = static_cast<std::int64_t>(i);
      val[i] = rng.next_bounded(100);
    }
    t.set_column(0, storage::Column::from_int64("id", id));
    t.set_column(1, storage::Column::from_int64("val", val));
  }

  core::Database db_;
};

constexpr const char* kCountSql =
    "SELECT COUNT(*) FROM t WHERE val BETWEEN 0 AND 49";

TEST_F(QueryServiceTest, SqlRoundTrip) {
  QueryService service(db_);
  auto session = service.open_session("alice");
  const auto resp =
      service.execute(session, query::QueryRequest::from_sql(kCountSql));
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_EQ(resp.result.row_count(), 1u);
  EXPECT_GT(resp.latency_s, 0.0);
  EXPECT_GE(resp.queue_s, 0.0);
  EXPECT_GT(resp.report.total_j(), 0.0);
  // Latency policy: every query runs at f_max.
  EXPECT_DOUBLE_EQ(resp.chosen_freq_ghz,
                   db_.machine().dvfs.fastest().freq_ghz);
}

TEST_F(QueryServiceTest, PlanRequestAndTagEcho) {
  QueryService service(db_);
  auto session = service.open_session("alice");
  auto plan = query::QueryBuilder("t")
                  .filter_int("val", 10, 19)
                  .aggregate(query::AggOp::kCount)
                  .build();
  query::QueryRequest req = query::QueryRequest::from_plan(std::move(plan));
  req.tag = 42;
  const auto resp = service.execute(session, std::move(req));
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_EQ(resp.tag, 42u);
}

TEST_F(QueryServiceTest, BadSqlReportsErrorNotCrash) {
  QueryService service(db_);
  auto session = service.open_session("alice");
  const auto resp = service.execute(
      session, query::QueryRequest::from_sql("SELECT FROM nothing"));
  EXPECT_EQ(resp.status, query::ResponseStatus::kError);
  EXPECT_FALSE(resp.error.empty());
  EXPECT_EQ(service.stats().errors, 1u);
  EXPECT_EQ(session->stats().errors, 1u);
}

TEST_F(QueryServiceTest, ZeroBudgetTenantIsRejected) {
  QueryService service(db_);
  service.set_tenant_budget("broke", {/*capacity_j=*/0, /*refill=*/0});
  auto session = service.open_session("broke");
  const auto resp =
      service.execute(session, query::QueryRequest::from_sql(kCountSql));
  EXPECT_EQ(resp.status, query::ResponseStatus::kRejected);
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(session->stats().rejected, 1u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST_F(QueryServiceTest, MeasuredJoulesSettleTheTenantBudget) {
  QueryService service(db_);
  service.set_tenant_budget("alice", {/*capacity_j=*/1e6, /*refill=*/0});
  auto session = service.open_session("alice");
  double responses_billed = 0;
  for (int i = 0; i < 3; ++i) {
    const auto resp =
        service.execute(session, query::QueryRequest::from_sql(kCountSql));
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_GT(resp.billed_j, 0.0);  // Clients can reconcile their bill.
    responses_billed += resp.billed_j;
  }
  const double billed = session->stats().energy_j;
  EXPECT_GT(billed, 0.0);
  EXPECT_NEAR(responses_billed, billed, 1e-9 + 1e-6 * billed);
  // The debit is the measured figure the database ledger recorded under
  // this tenant's scope — settlement equals metering.
  const double ledger_j = db_.ledger().total("alice").energy_j;
  EXPECT_NEAR(billed, ledger_j, 1e-9 + 1e-6 * ledger_j);
  EXPECT_NEAR(*service.admission().balance_j("alice", service.now_s()),
              1e6 - billed, 1e-9 + 1e-6 * ledger_j);
}

TEST_F(QueryServiceTest, ThroughputPolicyRunsAtEfficientState) {
  ServiceOptions opts;
  opts.policy = sched::Policy::kThroughput;
  opts.pace_execution = false;  // Assert the decision, skip the sleep.
  QueryService service(db_, opts);
  auto session = service.open_session("alice");
  const auto resp =
      service.execute(session, query::QueryRequest::from_sql(kCountSql));
  ASSERT_TRUE(resp.ok()) << resp.error;
  const auto& engine = service.policy_engine();
  EXPECT_DOUBLE_EQ(
      resp.chosen_freq_ghz,
      db_.machine().dvfs.at_least(engine.efficient_state().freq_ghz).freq_ghz);
  EXPECT_LT(resp.chosen_freq_ghz, db_.machine().dvfs.fastest().freq_ghz);
}

TEST_F(QueryServiceTest, EnergyCapBindsUnderTinyCap) {
  ServiceOptions opts;
  opts.policy = sched::Policy::kEnergyCap;
  opts.power_cap_w = 1.0;  // Below the idle floor: the cap always binds.
  opts.pace_execution = false;
  QueryService service(db_, opts);
  auto session = service.open_session("alice");
  const auto resp =
      service.execute(session, query::QueryRequest::from_sql(kCountSql));
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_LT(resp.chosen_freq_ghz, db_.machine().dvfs.fastest().freq_ghz);
  EXPECT_GT(service.stats().peak_power_w, opts.power_cap_w);
}

TEST_F(QueryServiceTest, GenerousCapBehavesLikeLatencyPolicy) {
  ServiceOptions opts;
  opts.policy = sched::Policy::kEnergyCap;
  opts.power_cap_w = 1e6;
  QueryService service(db_, opts);
  auto session = service.open_session("alice");
  const auto resp =
      service.execute(session, query::QueryRequest::from_sql(kCountSql));
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_DOUBLE_EQ(resp.chosen_freq_ghz,
                   db_.machine().dvfs.fastest().freq_ghz);
}

TEST_F(QueryServiceTest, SubmitAfterStopIsShutdown) {
  QueryService service(db_);
  auto session = service.open_session("alice");
  service.stop();
  const auto resp =
      service.execute(session, query::QueryRequest::from_sql(kCountSql));
  EXPECT_EQ(resp.status, query::ResponseStatus::kShutdown);
}

TEST_F(QueryServiceTest, StopDrainsAdmittedQueries) {
  ServiceOptions opts;
  opts.coalesce_window_s = 0.02;
  QueryService service(db_, opts);
  auto session = service.open_session("alice");
  std::vector<std::future<query::QueryResponse>> futures;
  futures.reserve(20);
  for (int i = 0; i < 20; ++i)
    futures.push_back(
        service.submit(session, query::QueryRequest::from_sql(kCountSql)));
  service.stop();  // Graceful: everything admitted must still complete.
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(service.stats().completed, 20u);
}

TEST_F(QueryServiceTest, ConcurrentSessionsHammerOneService) {
  ServiceOptions opts;
  opts.workers = 4;
  QueryService service(db_, opts);
  constexpr int kClients = 4, kQueries = 25;
  std::vector<std::shared_ptr<Session>> sessions;
  sessions.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    sessions.push_back(service.open_session("tenant-" + std::to_string(c)));
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&service, &ok_count, session = sessions[c]] {
      std::vector<std::future<query::QueryResponse>> futures;
      futures.reserve(kQueries);
      for (int q = 0; q < kQueries; ++q)
        futures.push_back(service.submit(
            session, query::QueryRequest::from_sql(kCountSql)));
      for (auto& f : futures)
        if (f.get().ok()) ok_count.fetch_add(1);
      EXPECT_EQ(session->stats().completed, static_cast<std::uint64_t>(kQueries));
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kQueries);
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kClients) * kQueries);
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kClients) * kQueries);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_GE(s.batches, 1u);
  // Attribution stays per-tenant even under concurrency: what each session
  // was billed is exactly its ledger scope total — concurrent tenants must
  // not be charged for each other's work (the meter window would be).
  for (int c = 0; c < kClients; ++c) {
    const double scope_j =
        db_.ledger().total("tenant-" + std::to_string(c)).energy_j;
    EXPECT_GT(scope_j, 0.0);
    EXPECT_NEAR(sessions[c]->stats().energy_j, scope_j,
                1e-9 + 1e-6 * scope_j);
  }
}

TEST_F(QueryServiceTest, PacingStretchesThroughputExecution) {
  // Same query, latency vs. paced throughput: the paced run must take
  // measurably longer wall time (f_max / f_efficient >= ~1.5x on the
  // default server model; the query itself is ~0.1 ms so the test stays
  // fast). Wall-clock ratios are noisy on shared CI hosts, so assert only
  // the direction, generously.
  QueryService lat(db_);
  auto ls = lat.open_session("a");
  const auto lat_resp =
      lat.execute(ls, query::QueryRequest::from_sql(kCountSql));
  ASSERT_TRUE(lat_resp.ok());

  ServiceOptions opts;
  opts.policy = sched::Policy::kThroughput;
  opts.pace_execution = true;
  QueryService thr(db_, opts);
  auto ts = thr.open_session("a");
  const auto thr_resp =
      thr.execute(ts, query::QueryRequest::from_sql(kCountSql));
  ASSERT_TRUE(thr_resp.ok());

  // Paced busy energy is accounted at the slower state: fewer incremental
  // joules per query than the f_max run — the throughput policy's point.
  EXPECT_LT(thr_resp.chosen_freq_ghz, lat_resp.chosen_freq_ghz);
  EXPECT_LT(thr_resp.policy_energy_j, lat_resp.policy_energy_j);
}

}  // namespace
}  // namespace eidb::server
