#include "server/admission.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace eidb::server {
namespace {

TEST(Admission, UnknownTenantAdmittedByDefault) {
  AdmissionController ac;
  EXPECT_TRUE(ac.try_admit("nobody", 0.0));
  EXPECT_EQ(ac.counters("nobody").admitted, 1u);
}

TEST(Admission, UnknownTenantRefusedInClosedSystem) {
  AdmissionController ac(/*admit_unknown=*/false);
  EXPECT_FALSE(ac.try_admit("nobody", 0.0));
  EXPECT_EQ(ac.counters("nobody").rejected, 1u);
}

TEST(Admission, AdmitsWhileBalancePositive) {
  AdmissionController ac;
  ac.set_budget("t", {10.0, 1.0}, 0.0);
  EXPECT_TRUE(ac.try_admit("t", 0.0));
  EXPECT_DOUBLE_EQ(*ac.balance_j("t", 0.0), 10.0);
}

TEST(Admission, DebitExhaustsThenRefillRestores) {
  AdmissionController ac;
  ac.set_budget("t", {/*capacity_j=*/10.0, /*refill_j_per_s=*/2.0}, 0.0);
  EXPECT_TRUE(ac.try_admit("t", 0.0));
  ac.debit("t", 12.0, 0.0);  // Settlement overshoots: balance -2 J.
  EXPECT_DOUBLE_EQ(*ac.balance_j("t", 0.0), -2.0);
  EXPECT_FALSE(ac.try_admit("t", 0.0));
  // 2 J/s refill: at t=0.5 the balance is -1 (still refused), at t=1.5 it
  // is +1 (admitted again).
  EXPECT_FALSE(ac.try_admit("t", 0.5));
  EXPECT_TRUE(ac.try_admit("t", 1.5));
  const AdmissionCounters c = ac.counters("t");
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.rejected, 2u);
  EXPECT_DOUBLE_EQ(c.debited_j, 12.0);
}

TEST(Admission, RefillCapsAtCapacity) {
  AdmissionController ac;
  ac.set_budget("t", {5.0, 100.0}, 0.0);
  ac.debit("t", 3.0, 0.0);
  // Hours of refill cannot exceed the burst capacity.
  EXPECT_DOUBLE_EQ(*ac.balance_j("t", 3600.0), 5.0);
}

TEST(Admission, BalanceUnknownForUnbudgetedTenant) {
  AdmissionController ac;
  EXPECT_FALSE(ac.balance_j("nobody", 0.0).has_value());
}

TEST(Admission, ReprovisioningRefillsAndKeepsHistory) {
  AdmissionController ac;
  ac.set_budget("t", {1.0, 0.0}, 0.0);
  EXPECT_TRUE(ac.try_admit("t", 0.0));
  ac.debit("t", 5.0, 0.0);
  EXPECT_FALSE(ac.try_admit("t", 1.0));  // No refill rate, deep in debt.
  ac.set_budget("t", {8.0, 1.0}, 2.0);   // Operator raises the budget.
  EXPECT_DOUBLE_EQ(*ac.balance_j("t", 2.0), 8.0);
  const AdmissionCounters c = ac.counters("t");
  EXPECT_EQ(c.admitted, 1u);
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_DOUBLE_EQ(c.debited_j, 5.0);
}

TEST(Admission, PromotionFromUnbudgetedKeepsCounters) {
  AdmissionController ac;
  EXPECT_TRUE(ac.try_admit("t", 0.0));
  ac.debit("t", 2.5, 0.0);
  ac.set_budget("t", {10.0, 1.0}, 1.0);
  const AdmissionCounters c = ac.counters("t");
  EXPECT_EQ(c.admitted, 1u);
  EXPECT_DOUBLE_EQ(c.debited_j, 2.5);
  EXPECT_DOUBLE_EQ(*ac.balance_j("t", 1.0), 10.0);
}

TEST(Admission, UnbudgetedBookkeepingIsBounded) {
  AdmissionController ac(/*admit_unknown=*/false);
  const std::size_t n = AdmissionController::kMaxUnbudgetedTenants + 100;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FALSE(ac.try_admit("u" + std::to_string(i), 0.0));
  // Early tenants keep per-tenant counters; tenants beyond the bound are
  // still refused correctly but no longer tracked individually.
  EXPECT_EQ(ac.counters("u0").rejected, 1u);
  EXPECT_EQ(ac.counters("u" + std::to_string(n - 1)).rejected, 0u);
}

TEST(Admission, ThreadSafeDebits) {
  AdmissionController ac;
  ac.set_budget("t", {1e9, 0.0}, 0.0);
  constexpr int kThreads = 4, kOps = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&ac] {
      for (int k = 0; k < kOps; ++k) {
        (void)ac.try_admit("t", 0.0);
        ac.debit("t", 0.5, 0.0);
      }
    });
  for (auto& t : threads) t.join();
  const AdmissionCounters c = ac.counters("t");
  EXPECT_EQ(c.admitted, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_NEAR(c.debited_j, kThreads * kOps * 0.5, 1e-6);
  EXPECT_NEAR(*ac.balance_j("t", 0.0), 1e9 - kThreads * kOps * 0.5, 1e-3);
}

}  // namespace
}  // namespace eidb::server
