#include "server/batch_coalescer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace eidb::server {
namespace {

PendingQuery make_query(std::uint64_t tag) {
  PendingQuery q;
  q.request.tag = tag;
  q.session = std::make_shared<Session>(1, "t");
  return q;
}

TEST(BatchCoalescer, ZeroWindowDrainsAlreadyQueuedBurst) {
  RequestQueue queue;
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(queue.push(make_query(i)));
  BatchCoalescer coalescer(queue, {/*window_s=*/0, /*max_batch=*/64});
  const auto batch = coalescer.next_batch();
  ASSERT_EQ(batch.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_EQ(batch[i].request.tag, i);  // FIFO order preserved.
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BatchCoalescer, MaxBatchBoundsTheWindow) {
  RequestQueue queue;
  for (std::uint64_t i = 0; i < 10; ++i)
    ASSERT_TRUE(queue.push(make_query(i)));
  BatchCoalescer coalescer(queue, {/*window_s=*/10.0, /*max_batch=*/4});
  // A generous window must still cut the batch at max_batch instead of
  // stalling for the full 10 s.
  const auto batch = coalescer.next_batch();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(queue.size(), 6u);
}

TEST(BatchCoalescer, WindowCollectsLateArrivals) {
  RequestQueue queue;
  BatchCoalescer coalescer(queue, {/*window_s=*/0.5, /*max_batch=*/64});
  std::thread producer([&queue] {
    ASSERT_TRUE(queue.push(make_query(0)));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(queue.push(make_query(1)));  // Inside the window.
  });
  const auto batch = coalescer.next_batch();
  producer.join();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchCoalescer, SeparateWakeUpsOutsideTheWindow) {
  RequestQueue queue;
  BatchCoalescer coalescer(queue, {/*window_s=*/0.02, /*max_batch=*/64});
  ASSERT_TRUE(queue.push(make_query(0)));
  const auto first = coalescer.next_batch();
  EXPECT_EQ(first.size(), 1u);  // Window expired with nothing else queued.
  ASSERT_TRUE(queue.push(make_query(1)));
  const auto second = coalescer.next_batch();
  EXPECT_EQ(second.size(), 1u);
}

TEST(BatchCoalescer, ClosedAndDrainedQueueYieldsEmptyBatch) {
  RequestQueue queue;
  ASSERT_TRUE(queue.push(make_query(0)));
  queue.close();
  EXPECT_FALSE(queue.push(make_query(1)));  // Intake refused after close.
  BatchCoalescer coalescer(queue, {0, 64});
  EXPECT_EQ(coalescer.next_batch().size(), 1u);  // Drains the remainder...
  EXPECT_TRUE(coalescer.next_batch().empty());   // ...then signals exit.
}

TEST(RequestQueue, PopForTimesOutOnEmptyQueue) {
  RequestQueue queue;
  EXPECT_FALSE(queue.pop_for(0.01).has_value());
}

TEST(RequestQueue, PopBlocksUntilPush) {
  RequestQueue queue;
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(queue.push(make_query(7)));
  });
  const auto q = queue.pop();
  producer.join();
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->request.tag, 7u);
}

}  // namespace
}  // namespace eidb::server
