// End-to-end SQL through the Database façade.
#include <gtest/gtest.h>

#include <vector>

#include "core/database.hpp"
#include "sched/thread_pool.hpp"
#include "util/assert.hpp"

namespace eidb::core {
namespace {

using storage::Column;
using storage::Schema;
using storage::TypeId;

void populate(Database& db) {
  storage::Table& sales = db.create_table(
      "sales", Schema({{"id", TypeId::kInt64},
                       {"amount", TypeId::kInt64},
                       {"price", TypeId::kDouble},
                       {"region", TypeId::kString}}));
  std::vector<std::int64_t> ids, amounts;
  std::vector<double> prices;
  std::vector<std::string> regions;
  const char* names[] = {"apac", "emea", "na"};
  for (std::int64_t i = 0; i < 3000; ++i) {
    ids.push_back(i);
    amounts.push_back(i % 100);
    prices.push_back(0.25 * static_cast<double>(i % 8));
    regions.emplace_back(names[i % 3]);
  }
  sales.set_column(0, Column::from_int64("id", ids));
  sales.set_column(1, Column::from_int64("amount", amounts));
  sales.set_column(2, Column::from_double("price", prices));
  sales.set_column(3, Column::from_strings("region", regions));

  storage::Table& customers = db.create_table(
      "customers", Schema({{"id", TypeId::kInt64}, {"age", TypeId::kInt64}}));
  std::vector<std::int64_t> cid, age;
  for (std::int64_t i = 0; i < 100; ++i) {
    cid.push_back(i);
    age.push_back(20 + i % 60);
  }
  customers.set_column(0, Column::from_int64("id", cid));
  customers.set_column(1, Column::from_int64("age", age));
}

TEST(DatabaseSql, CountWithRange) {
  Database db;
  populate(db);
  const auto run =
      db.run_sql("SELECT COUNT(*) FROM sales WHERE amount BETWEEN 0 AND 9");
  EXPECT_EQ(run.result.at(0, 0).as_int(), 300);
}

TEST(DatabaseSql, GroupByWithStringEquality) {
  Database db;
  populate(db);
  const auto run = db.run_sql(
      "SELECT COUNT(*), SUM(amount) FROM sales WHERE region = 'emea' "
      "GROUP BY region");
  ASSERT_EQ(run.result.row_count(), 1u);
  EXPECT_EQ(run.result.at(0, 0).as_string(), "emea");
  EXPECT_EQ(run.result.at(0, 1).as_int(), 1000);
}

TEST(DatabaseSql, AvgDoubleColumn) {
  Database db;
  populate(db);
  const auto run = db.run_sql("SELECT AVG(price) FROM sales");
  // prices cycle 0,0.25,...,1.75 over 8 values -> mean 0.875.
  EXPECT_NEAR(run.result.at(0, 0).as_double(), 0.875, 1e-9);
}

TEST(DatabaseSql, ProjectionOrderLimit) {
  Database db;
  populate(db);
  const auto run = db.run_sql(
      "SELECT id, amount FROM sales WHERE amount >= 98 ORDER BY id DESC "
      "LIMIT 2");
  ASSERT_EQ(run.result.row_count(), 2u);
  EXPECT_EQ(run.result.at(0, 0).as_int(), 2999);
  EXPECT_EQ(run.result.at(1, 0).as_int(), 2998);
}

TEST(DatabaseSql, JoinThroughSql) {
  Database db;
  populate(db);
  const auto run = db.run_sql(
      "SELECT COUNT(*) FROM sales JOIN customers ON sales.amount = "
      "customers.id WHERE customers.age BETWEEN 20 AND 29");
  // Customers with age in [20,29]: ids 0..9 and 60..69 (age = 20 + id%60).
  // Each matching amount value occurs 30 times in sales.
  EXPECT_EQ(run.result.at(0, 0).as_int(), 20 * 30);
}

TEST(DatabaseSql, ReportsEnergy) {
  Database db;
  populate(db);
  const auto run = db.run_sql("SELECT COUNT(*) FROM sales");
  EXPECT_GT(run.report.total_j(), 0.0);
  EXPECT_GT(run.report.elapsed_s, 0.0);
}

TEST(DatabaseSql, ParseErrorsSurface) {
  Database db;
  populate(db);
  EXPECT_THROW((void)db.run_sql("SELEKT * FROM sales"), Error);
  EXPECT_THROW((void)db.run_sql("SELECT * FROM missing_table"), Error);
}

TEST(DatabaseSql, ParallelScanOptionProducesSameAnswer) {
  Database db;
  populate(db);
  sched::ThreadPool pool(4);
  RunOptions serial, parallel;
  parallel.exec.pool = &pool;
  const char* q = "SELECT SUM(amount) FROM sales WHERE amount BETWEEN 5 AND 95";
  const auto a = db.run_sql(q, serial);
  const auto b = db.run_sql(q, parallel);
  EXPECT_EQ(a.result.at(0, 0).as_int(), b.result.at(0, 0).as_int());
}

TEST(DatabaseSql, ExpressionAggregateEndToEnd) {
  Database db;
  populate(db);
  // SUM(amount * (1 - price)) over rows 0..7: amounts 0..7, prices
  // 0,0.25,...,1.75.
  const auto run = db.run_sql(
      "SELECT SUM(amount * (1 - price)) FROM sales WHERE id <= 7");
  double want = 0;
  for (int i = 0; i < 8; ++i) want += i * (1.0 - 0.25 * i);
  EXPECT_NEAR(run.result.at(0, 0).as_double(), want, 1e-9);
}

TEST(DatabaseSql, ExpressionAggregateGrouped) {
  Database db;
  populate(db);
  const auto run = db.run_sql(
      "SELECT AVG(amount * 2) FROM sales GROUP BY region");
  ASSERT_EQ(run.result.row_count(), 3u);
  // amounts cycle 0..99 uniformly within each region: avg(amount*2) = 99.
  for (std::size_t g = 0; g < 3; ++g)
    EXPECT_NEAR(run.result.at(g, 1).as_double(), 99.0, 1e-9);
}

TEST(DatabaseSql, MultiColumnGroupBy) {
  Database db;
  populate(db);
  const auto run = db.run_sql(
      "SELECT COUNT(*) FROM sales WHERE amount BETWEEN 0 AND 1 "
      "GROUP BY region, amount");
  // 3 regions x 2 amounts, all combinations present.
  ASSERT_EQ(run.result.row_count(), 6u);
  EXPECT_EQ(run.result.column_names().size(), 3u);
  EXPECT_EQ(run.result.at(0, 0).as_string(), "apac");
  EXPECT_EQ(run.result.at(0, 1).as_int(), 0);
  std::int64_t total = 0;
  for (std::size_t g = 0; g < 6; ++g) total += run.result.at(g, 2).as_int();
  EXPECT_EQ(total, 60);  // 2 of 100 amounts over 3000 rows
}

TEST(DatabaseSql, BudgetedSqlQuery) {
  Database db;
  populate(db);
  RunOptions options;
  options.energy_budget_j = 100.0;
  const auto run = db.run_sql(
      "SELECT COUNT(*) FROM sales WHERE amount BETWEEN 0 AND 49", options);
  ASSERT_TRUE(run.chosen_point.has_value());
  EXPECT_LE(run.chosen_point->energy_j, 100.0);
  EXPECT_EQ(run.result.at(0, 0).as_int(), 1500);
}

}  // namespace
}  // namespace eidb::core
