#include "core/database.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace eidb::core {
namespace {

using query::AggOp;
using query::QueryBuilder;
using storage::Column;
using storage::Schema;
using storage::TypeId;

void load_sales(Database& db, std::size_t rows) {
  storage::Table& t = db.create_table(
      "sales", Schema({{"id", TypeId::kInt64},
                       {"amount", TypeId::kInt64},
                       {"region", TypeId::kString}}));
  std::vector<std::int64_t> ids, amounts;
  std::vector<std::string> regions;
  const char* names[] = {"apac", "emea", "na"};
  for (std::size_t i = 0; i < rows; ++i) {
    ids.push_back(static_cast<std::int64_t>(i));
    amounts.push_back(static_cast<std::int64_t>(i % 1000));
    regions.emplace_back(names[i % 3]);
  }
  t.set_column(0, Column::from_int64("id", ids));
  t.set_column(1, Column::from_int64("amount", amounts));
  t.set_column(2, Column::from_strings("region", regions));
  db.register_tiers("sales");
}

TEST(Database, EndToEndAggregateWithEnergyReport) {
  Database db;
  load_sales(db, 30000);
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 100, 199)
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  const RunResult run = db.run(plan);
  ASSERT_EQ(run.result.row_count(), 3u);
  EXPECT_GT(run.report.elapsed_s, 0.0);
  EXPECT_GT(run.report.total_j(), 0.0);
  EXPECT_GT(run.stats.tuples_scanned, 0u);
  // 100 qualifying amounts out of 1000 -> 3000 rows across 3 regions.
  std::int64_t total = 0;
  for (std::size_t g = 0; g < 3; ++g) total += run.result.at(g, 1).as_int();
  EXPECT_EQ(total, 3000);
}

TEST(Database, MeterFallsBackToModelWithoutRapl) {
  Database db(DatabaseOptions{.prefer_rapl = false});
  EXPECT_EQ(db.meter_source(), energy::MeterSource::kModel);
  load_sales(db, 1000);
  const auto run =
      db.run(QueryBuilder("sales").aggregate(AggOp::kCount).build());
  EXPECT_EQ(run.report.source, energy::MeterSource::kModel);
  EXPECT_GT(run.report.energy.package_j, 0.0);
}

TEST(Database, EnergyBudgetSelectsConfiguration) {
  Database db;
  load_sales(db, 50000);
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 499)
                        .aggregate(AggOp::kCount)
                        .build();
  RunOptions options;
  options.energy_budget_j = 1000.0;  // generous
  const RunResult run = db.run(plan, options);
  ASSERT_TRUE(run.chosen_point.has_value());
  EXPECT_FALSE(run.budget_infeasible);
  EXPECT_LE(run.chosen_point->energy_j, 1000.0);
}

TEST(Database, InfeasibleBudgetFallsBackToMinEnergy) {
  Database db;
  load_sales(db, 50000);
  const auto plan =
      QueryBuilder("sales").aggregate(AggOp::kCount).build();
  RunOptions options;
  options.energy_budget_j = 1e-12;
  const RunResult run = db.run(plan, options);
  EXPECT_TRUE(run.budget_infeasible);
  ASSERT_TRUE(run.chosen_point.has_value());
  EXPECT_GT(run.chosen_point->energy_j, 1e-12);
}

TEST(Database, TightVsGenerousBudgetTradesTime) {
  Database db;
  load_sales(db, 50000);
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 99)
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  RunOptions tight, generous;
  // Floor first.
  RunOptions probe;
  probe.energy_budget_j = 1e-12;
  const auto floor_run = db.run(plan, probe);
  const double floor_j = floor_run.chosen_point->energy_j;
  tight.energy_budget_j = floor_j * 1.02;
  generous.energy_budget_j = floor_j * 100;
  const auto rt = db.run(plan, tight);
  const auto rg = db.run(plan, generous);
  ASSERT_TRUE(rt.chosen_point && rg.chosen_point);
  EXPECT_LE(rg.chosen_point->time_s, rt.chosen_point->time_s + 1e-12);
}

TEST(Database, ExplainMentionsPlanAndBudget) {
  Database db;
  load_sales(db, 1000);
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 1, 2)
                        .aggregate(AggOp::kCount)
                        .build();
  RunOptions options;
  options.energy_budget_j = 500.0;
  const std::string s = db.explain(plan, options);
  EXPECT_NE(s.find("scan(sales)"), std::string::npos);
  EXPECT_NE(s.find("candidates"), std::string::npos);
  EXPECT_NE(s.find("chosen under"), std::string::npos);
}

TEST(Database, LedgerAccumulatesAcrossRuns) {
  Database db;
  load_sales(db, 1000);
  const auto plan =
      QueryBuilder("sales").aggregate(AggOp::kCount).build();
  (void)db.run(plan);
  (void)db.run(plan);
  const auto total = db.ledger().total();
  EXPECT_EQ(total.tuples, 2000u);  // 1000 scanned per run
  EXPECT_GT(total.energy_j, 0.0);
}

TEST(Database, TieringChangesReportedCosts) {
  Database db;
  load_sales(db, 100000);
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 9)
                        .aggregate(AggOp::kCount)
                        .build();
  const RunResult hot = db.run(plan);
  db.tiers().place("sales", "amount", storage::Tier::kCold);
  const RunResult cold = db.run(plan);
  EXPECT_EQ(hot.result.at(0, 0).as_int(), cold.result.at(0, 0).as_int());
  EXPECT_GT(cold.report.elapsed_s, hot.report.elapsed_s);
  EXPECT_GT(cold.stats.cold_tier_energy_j, 0.0);
}

TEST(Database, DuplicateTableRejected) {
  Database db;
  load_sales(db, 10);
  EXPECT_THROW(db.create_table("sales", Schema({{"x", TypeId::kInt64}})),
               Error);
}

TEST(Database, CalibratedCostModelConstructs) {
  Database db(DatabaseOptions{.calibrate_cost_model = true});
  EXPECT_GT(db.cost_model().costs().predicated, 0.0);
}

}  // namespace
}  // namespace eidb::core
