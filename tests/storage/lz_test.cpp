#include "storage/lz.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace eidb::storage {
namespace {

std::vector<std::byte> to_bytes(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

void expect_roundtrip(const std::vector<std::byte>& in) {
  const auto compressed = lz_compress(in);
  const auto back = lz_decompress(compressed, in.size());
  ASSERT_EQ(back.size(), in.size());
  EXPECT_EQ(std::memcmp(back.data(), in.data(), in.size()), 0);
}

TEST(Lz, EmptyInput) { expect_roundtrip({}); }

TEST(Lz, TinyInput) { expect_roundtrip(to_bytes("ab")); }

TEST(Lz, RepetitiveTextCompresses) {
  std::string s;
  for (int i = 0; i < 500; ++i) s += "the quick brown fox ";
  const auto in = to_bytes(s);
  const auto compressed = lz_compress(in);
  EXPECT_LT(compressed.size(), in.size() / 5);
  expect_roundtrip(in);
}

TEST(Lz, AllSameByte) {
  const std::vector<std::byte> in(100000, std::byte{0x41});
  const auto compressed = lz_compress(in);
  EXPECT_LT(compressed.size(), 1000u);  // overlapping match run-encodes
  expect_roundtrip(in);
}

TEST(Lz, IncompressibleRandomSurvives) {
  Pcg32 rng(9);
  std::vector<std::byte> in(10000);
  for (auto& b : in) b = static_cast<std::byte>(rng.next() & 0xff);
  const auto compressed = lz_compress(in);
  // Random bytes can repeat 4-grams by chance; just require bounded blowup
  // and an exact round trip.
  EXPECT_LT(compressed.size(), in.size() + in.size() / 8 + 64);
  expect_roundtrip(in);
}

TEST(Lz, OverlappingMatchNearBufferStart) {
  // "abcabcabc..." forces distance-3 matches with length > distance
  // (overlapping copy path).
  std::string s;
  for (int i = 0; i < 1000; ++i) s += "abc";
  expect_roundtrip(to_bytes(s));
}

TEST(Lz, MixedCompressibleAndRandomSections) {
  Pcg32 rng(10);
  std::vector<std::byte> in;
  for (int section = 0; section < 10; ++section) {
    if (section % 2 == 0) {
      for (int i = 0; i < 5000; ++i)
        in.push_back(static_cast<std::byte>('a' + (i % 4)));
    } else {
      for (int i = 0; i < 5000; ++i)
        in.push_back(static_cast<std::byte>(rng.next() & 0xff));
    }
  }
  expect_roundtrip(in);
}

TEST(Lz, LongInputBeyondWindow) {
  // Matches can only reference the last 64 KiB; inputs larger than the
  // window must still round-trip.
  std::string s;
  for (int i = 0; i < 20000; ++i) s += "pattern" + std::to_string(i % 100);
  const auto in = to_bytes(s);
  EXPECT_GT(in.size(), std::size_t{1} << 17);
  expect_roundtrip(in);
}

TEST(Lz, SerializedIntColumnImage) {
  // The actual E2 use case: the byte image of an int64 column.
  Pcg32 rng(11);
  std::vector<std::int64_t> ints(20000);
  for (auto& v : ints) v = rng.next_bounded(500);  // low entropy per word
  std::vector<std::byte> in(ints.size() * 8);
  std::memcpy(in.data(), ints.data(), in.size());
  const auto compressed = lz_compress(in);
  EXPECT_LT(compressed.size(), in.size() / 2);  // zero-heavy high bytes
  expect_roundtrip(in);
}

}  // namespace
}  // namespace eidb::storage
