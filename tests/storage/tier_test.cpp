#include "storage/tier.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace eidb::storage {
namespace {

TEST(ColdTier, ReadCostsScaleWithBytes) {
  const ColdTierSpec spec;
  const double t1 = spec.read_time_s(1e9);
  const double t2 = spec.read_time_s(2e9);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 - t1, 1e9 / (spec.bandwidth_gbs * 1e9), 1e-9);
  EXPECT_GT(spec.read_energy_j(2e9), spec.read_energy_j(1e9));
}

TEST(ColdTier, LatencyFloorsSmallReads) {
  const ColdTierSpec spec;
  EXPECT_GE(spec.read_time_s(1), spec.access_latency_s);
}

TEST(TierManager, DefaultPlacementIsHot) {
  TierManager tm;
  tm.register_column("t", "a", 1000);
  EXPECT_EQ(tm.tier_of("t", "a"), Tier::kHot);
  EXPECT_EQ(tm.hot_bytes(), 1000u);
  EXPECT_EQ(tm.cold_bytes(), 0u);
}

TEST(TierManager, HotAccessIsFree) {
  TierManager tm;
  tm.register_column("t", "a", 1 << 20);
  const auto p = tm.access("t", "a");
  EXPECT_EQ(p.time_s, 0.0);
  EXPECT_EQ(p.energy_j, 0.0);
  EXPECT_EQ(tm.access_count("t", "a"), 1u);
}

TEST(TierManager, ColdAccessCharged) {
  TierManager tm;
  tm.register_column("t", "a", 1 << 30, Tier::kCold);
  const auto p = tm.access("t", "a");
  EXPECT_GT(p.time_s, 0.0);
  EXPECT_GT(p.energy_j, 0.0);
  EXPECT_NEAR(p.time_s, tm.cold_spec().read_time_s(double(1 << 30)), 1e-9);
}

TEST(TierManager, PlaceMoves) {
  TierManager tm;
  tm.register_column("t", "a", 100);
  tm.place("t", "a", Tier::kCold);
  EXPECT_EQ(tm.tier_of("t", "a"), Tier::kCold);
  EXPECT_EQ(tm.hot_bytes(), 0u);
  EXPECT_EQ(tm.cold_bytes(), 100u);
}

TEST(TierManager, UnregisteredThrows) {
  TierManager tm;
  EXPECT_THROW((void)tm.tier_of("x", "y"), Error);
  EXPECT_THROW((void)tm.access("x", "y"), Error);
  EXPECT_THROW(tm.place("x", "y", Tier::kHot), Error);
}

TEST(TierManager, BudgetDemotesLeastAccessedFirst) {
  TierManager tm;
  tm.register_column("t", "hot1", 100);
  tm.register_column("t", "hot2", 100);
  tm.register_column("t", "cold1", 100);
  // Access pattern: hot1 10x, hot2 5x, cold1 0x.
  for (int i = 0; i < 10; ++i) (void)tm.access("t", "hot1");
  for (int i = 0; i < 5; ++i) (void)tm.access("t", "hot2");
  const std::size_t demoted = tm.enforce_budget(200);
  EXPECT_EQ(demoted, 1u);
  EXPECT_EQ(tm.tier_of("t", "cold1"), Tier::kCold);
  EXPECT_EQ(tm.tier_of("t", "hot1"), Tier::kHot);
  EXPECT_EQ(tm.tier_of("t", "hot2"), Tier::kHot);
}

TEST(TierManager, BudgetTiesPreferDemotingLargest) {
  TierManager tm;
  tm.register_column("t", "small", 10);
  tm.register_column("t", "large", 1000);
  const std::size_t demoted = tm.enforce_budget(500);
  EXPECT_EQ(demoted, 1u);
  EXPECT_EQ(tm.tier_of("t", "large"), Tier::kCold);
  EXPECT_EQ(tm.tier_of("t", "small"), Tier::kHot);
}

TEST(TierManager, BudgetNoopWhenFits) {
  TierManager tm;
  tm.register_column("t", "a", 100);
  EXPECT_EQ(tm.enforce_budget(1000), 0u);
  EXPECT_EQ(tm.tier_of("t", "a"), Tier::kHot);
}

TEST(TierManager, ReregisterResetsStats) {
  TierManager tm;
  tm.register_column("t", "a", 100);
  (void)tm.access("t", "a");
  tm.register_column("t", "a", 200);
  EXPECT_EQ(tm.access_count("t", "a"), 0u);
  EXPECT_EQ(tm.hot_bytes(), 200u);
}

}  // namespace
}  // namespace eidb::storage
