#include "storage/io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::storage {
namespace {

Table sample_table(std::size_t rows) {
  Table t("facts", Schema({{"id", TypeId::kInt64},
                           {"qty", TypeId::kInt32},
                           {"price", TypeId::kDouble},
                           {"tag", TypeId::kString}}));
  Pcg32 rng(5);
  std::vector<std::int64_t> ids;
  std::vector<std::int32_t> qty;
  std::vector<double> price;
  std::vector<std::string> tags;
  const char* tag_names[] = {"red", "green", "blue", ""};
  for (std::size_t i = 0; i < rows; ++i) {
    ids.push_back(static_cast<std::int64_t>(i) - 50);
    qty.push_back(static_cast<std::int32_t>(rng.next_bounded(100)));
    price.push_back(rng.next_double() * 10);
    tags.emplace_back(tag_names[rng.next_bounded(4)]);
  }
  t.set_column(0, Column::from_int64("id", ids));
  t.set_column(1, Column::from_int32("qty", qty));
  t.set_column(2, Column::from_double("price", price));
  t.set_column(3, Column::from_strings("tag", tags));
  return t;
}

void expect_tables_equal(const Table& a, const Table& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.row_count(), b.row_count());
  ASSERT_EQ(a.column_count(), b.column_count());
  for (std::size_t c = 0; c < a.column_count(); ++c) {
    EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name);
    EXPECT_EQ(a.schema().column(c).type, b.schema().column(c).type);
    for (std::size_t r = 0; r < a.row_count(); ++r)
      ASSERT_EQ(a.column(c).value_at(r), b.column(c).value_at(r))
          << "col " << c << " row " << r;
  }
}

TEST(TableIo, RoundTripAllTypes) {
  const Table t = sample_table(500);
  std::stringstream buf;
  save_table(t, buf);
  const Table back = load_table(buf);
  expect_tables_equal(t, back);
}

TEST(TableIo, RoundTripEmptyTable) {
  Table t("empty", Schema({{"x", TypeId::kInt64}}));
  t.set_column(0, Column::from_int64("x", std::vector<std::int64_t>{}));
  std::stringstream buf;
  save_table(t, buf);
  const Table back = load_table(buf);
  EXPECT_EQ(back.row_count(), 0u);
  EXPECT_EQ(back.name(), "empty");
}

TEST(TableIo, RejectsIncompleteTable) {
  Table t("partial", Schema({{"x", TypeId::kInt64}}));
  std::stringstream buf;
  EXPECT_THROW(save_table(t, buf), Error);
}

TEST(TableIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "not a table file at all";
  EXPECT_THROW((void)load_table(buf), Error);
}

TEST(TableIo, RejectsTruncation) {
  const Table t = sample_table(100);
  std::stringstream buf;
  save_table(t, buf);
  const std::string full = buf.str();
  // Cut at several points; every cut must throw, never crash.
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    std::stringstream cut(full.substr(
        0, static_cast<std::size_t>(static_cast<double>(full.size()) * frac)));
    EXPECT_THROW((void)load_table(cut), Error) << frac;
  }
}

TEST(TableIo, FileRoundTrip) {
  const Table t = sample_table(64);
  const std::string path = "/tmp/eidb_io_test_table.bin";
  save_table_file(t, path);
  const Table back = load_table_file(path);
  expect_tables_equal(t, back);
  std::remove(path.c_str());
}

TEST(TableIo, MissingFileThrows) {
  EXPECT_THROW((void)load_table_file("/nonexistent/nope.bin"), Error);
}

}  // namespace
}  // namespace eidb::storage
