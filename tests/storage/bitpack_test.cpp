#include "storage/bitpack.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::storage {
namespace {

TEST(BitPack, WordCount) {
  EXPECT_EQ(packed_word_count(0, 13), 0u);
  EXPECT_EQ(packed_word_count(64, 1), 1u);
  EXPECT_EQ(packed_word_count(65, 1), 2u);
  EXPECT_EQ(packed_word_count(10, 64), 10u);
  EXPECT_EQ(packed_word_count(100, 0), 0u);
}

TEST(BitPack, MinBits) {
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{}), 0u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{0, 0}), 0u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{1}), 1u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{255}), 8u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{256}), 9u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{~std::uint64_t{0}}), 64u);
}

TEST(BitPack, ZeroWidthRoundTrip) {
  const std::vector<std::uint64_t> values(100, 0);
  const auto packed = bitpack(values, 0);
  EXPECT_TRUE(packed.empty());
  std::vector<std::uint64_t> out(100, 123);
  bitunpack(packed, 0, 100, out);
  for (const auto v : out) EXPECT_EQ(v, 0u);
}

TEST(BitPack, FullWidthRoundTrip) {
  Pcg32 rng(3);
  std::vector<std::uint64_t> values(257);
  for (auto& v : values) v = rng.next64();
  const auto packed = bitpack(values, 64);
  std::vector<std::uint64_t> out(values.size());
  bitunpack(packed, 64, values.size(), out);
  EXPECT_EQ(out, values);
}

TEST(BitPack, RandomAccessMatchesUnpack) {
  Pcg32 rng(5);
  std::vector<std::uint64_t> values(300);
  for (auto& v : values) v = rng.next() & 0x1fff;  // 13 bits
  const auto packed = bitpack(values, 13);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(bitpacked_at(packed, 13, i), values[i]) << i;
}

TEST(BitPack, Block64MatchesFullUnpack) {
  Pcg32 rng(6);
  constexpr std::size_t kN = 64 * 5;
  std::vector<std::uint64_t> values(kN);
  for (auto& v : values) v = rng.next() & 0x7ffff;  // 19 bits
  const auto packed = bitpack(values, 19);
  for (std::size_t block = 0; block < kN; block += 64) {
    std::uint64_t out[64];
    bitunpack_block64(packed, 19, block, out);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], values[block + i]);
  }
}

// Property sweep: round-trip for every width 1..64 on random data masked to
// the width, with a non-multiple-of-64 count to cover the tail path.
class BitPackWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitPackWidthSweep, RoundTrip) {
  const unsigned bits = GetParam();
  Pcg32 rng(1000 + bits);
  constexpr std::size_t kN = 64 * 3 + 17;
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  std::vector<std::uint64_t> values(kN);
  for (auto& v : values) v = rng.next64() & mask;
  // Ensure the extremes appear.
  values[0] = 0;
  values[1] = mask;

  const auto packed = bitpack(values, bits);
  EXPECT_EQ(packed.size(), packed_word_count(kN, bits));
  std::vector<std::uint64_t> out(kN);
  bitunpack(packed, bits, kN, out);
  EXPECT_EQ(out, values);

  // Random access agrees everywhere.
  for (std::size_t i = 0; i < kN; i += 7)
    EXPECT_EQ(bitpacked_at(packed, bits, i), values[i]);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackWidthSweep,
                         ::testing::Range(1u, 65u));

// -- Degenerate-width regressions (all-equal / empty columns) ----------------
// Width 0 — the packed image holds no words at all — and width 1 are the
// encoder's edge cases: block unpack, random access and the PackedView
// decode must all round-trip exactly.

TEST(BitPackDegenerateWidths, WidthZeroBlockAndRandomAccess) {
  constexpr std::size_t kN = 64 * 2 + 9;
  const std::vector<std::uint64_t> values(kN, 0);
  const auto packed = bitpack(values, 0);
  EXPECT_EQ(packed.size(), 0u);
  std::uint64_t out[64];
  bitunpack_block64(packed, 0, 64, out);  // must not touch `packed`
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], 0u);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(bitpacked_at(packed, 0, i), 0u);
}

TEST(BitPackDegenerateWidths, WidthOneRoundTrip) {
  Pcg32 rng(77);
  constexpr std::size_t kN = 64 * 2 + 31;
  std::vector<std::uint64_t> values(kN);
  for (auto& v : values) v = rng.next() & 1;
  const auto packed = bitpack(values, 1);
  EXPECT_EQ(packed.size(), packed_word_count(kN, 1));
  std::vector<std::uint64_t> out(kN);
  bitunpack(packed, 1, kN, out);
  EXPECT_EQ(out, values);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(bitpacked_at(packed, 1, i), values[i]);
}

TEST(BitPackDegenerateWidths, PackedViewDecodesWithReference) {
  // FOR view over an all-equal column: zero storage, exact decode.
  PackedView pv;
  pv.bits = 0;
  pv.reference = -1234;
  pv.count = 100;
  EXPECT_EQ(pv.byte_size(), 0u);
  for (std::size_t i = 0; i < pv.count; i += 13)
    EXPECT_EQ(pv.value_at(i), -1234);

  // Width-1 view with a negative reference (two-valued domain).
  const std::vector<std::uint64_t> deltas = {0, 1, 1, 0, 1};
  const auto packed = bitpack(deltas, 1);
  const PackedView two{packed, 1, -7, deltas.size()};
  for (std::size_t i = 0; i < deltas.size(); ++i)
    EXPECT_EQ(two.value_at(i), -7 + static_cast<std::int64_t>(deltas[i]));
}

TEST(BitPackDegenerateWidths, BitsForWidth) {
  EXPECT_EQ(bits_for_width(0), 0u);
  EXPECT_EQ(bits_for_width(1), 1u);
  EXPECT_EQ(bits_for_width(2), 2u);
  EXPECT_EQ(bits_for_width(255), 8u);
  EXPECT_EQ(bits_for_width(256), 9u);
  EXPECT_EQ(bits_for_width(~std::uint64_t{0}), 64u);
}

}  // namespace
}  // namespace eidb::storage
