#include "storage/bitpack.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::storage {
namespace {

TEST(BitPack, WordCount) {
  EXPECT_EQ(packed_word_count(0, 13), 0u);
  EXPECT_EQ(packed_word_count(64, 1), 1u);
  EXPECT_EQ(packed_word_count(65, 1), 2u);
  EXPECT_EQ(packed_word_count(10, 64), 10u);
  EXPECT_EQ(packed_word_count(100, 0), 0u);
}

TEST(BitPack, MinBits) {
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{}), 0u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{0, 0}), 0u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{1}), 1u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{255}), 8u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{256}), 9u);
  EXPECT_EQ(min_bits(std::vector<std::uint64_t>{~std::uint64_t{0}}), 64u);
}

TEST(BitPack, ZeroWidthRoundTrip) {
  const std::vector<std::uint64_t> values(100, 0);
  const auto packed = bitpack(values, 0);
  EXPECT_TRUE(packed.empty());
  std::vector<std::uint64_t> out(100, 123);
  bitunpack(packed, 0, 100, out);
  for (const auto v : out) EXPECT_EQ(v, 0u);
}

TEST(BitPack, FullWidthRoundTrip) {
  Pcg32 rng(3);
  std::vector<std::uint64_t> values(257);
  for (auto& v : values) v = rng.next64();
  const auto packed = bitpack(values, 64);
  std::vector<std::uint64_t> out(values.size());
  bitunpack(packed, 64, values.size(), out);
  EXPECT_EQ(out, values);
}

TEST(BitPack, RandomAccessMatchesUnpack) {
  Pcg32 rng(5);
  std::vector<std::uint64_t> values(300);
  for (auto& v : values) v = rng.next() & 0x1fff;  // 13 bits
  const auto packed = bitpack(values, 13);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(bitpacked_at(packed, 13, i), values[i]) << i;
}

TEST(BitPack, Block64MatchesFullUnpack) {
  Pcg32 rng(6);
  constexpr std::size_t kN = 64 * 5;
  std::vector<std::uint64_t> values(kN);
  for (auto& v : values) v = rng.next() & 0x7ffff;  // 19 bits
  const auto packed = bitpack(values, 19);
  for (std::size_t block = 0; block < kN; block += 64) {
    std::uint64_t out[64];
    bitunpack_block64(packed, 19, block, out);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], values[block + i]);
  }
}

// Property sweep: round-trip for every width 1..64 on random data masked to
// the width, with a non-multiple-of-64 count to cover the tail path.
class BitPackWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitPackWidthSweep, RoundTrip) {
  const unsigned bits = GetParam();
  Pcg32 rng(1000 + bits);
  constexpr std::size_t kN = 64 * 3 + 17;
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  std::vector<std::uint64_t> values(kN);
  for (auto& v : values) v = rng.next64() & mask;
  // Ensure the extremes appear.
  values[0] = 0;
  values[1] = mask;

  const auto packed = bitpack(values, bits);
  EXPECT_EQ(packed.size(), packed_word_count(kN, bits));
  std::vector<std::uint64_t> out(kN);
  bitunpack(packed, bits, kN, out);
  EXPECT_EQ(out, values);

  // Random access agrees everywhere.
  for (std::size_t i = 0; i < kN; i += 7)
    EXPECT_EQ(bitpacked_at(packed, bits, i), values[i]);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackWidthSweep,
                         ::testing::Range(1u, 65u));

}  // namespace
}  // namespace eidb::storage
