#include "storage/reliability.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace eidb::storage {
namespace {

ReliabilityManager make_mgr() {
  return ReliabilityManager(hw::MachineSpec::server(), hw::LinkSpec::tengbe(),
                            hw::LinkSpec::gbe());
}

TEST(Reliability, SurvivalMatrix) {
  // Cheap memory dies with the process; replication survives node loss;
  // only geo-replication survives site loss.
  EXPECT_FALSE(survives(Reliability::kCheap, Failure::kProcessCrash));
  EXPECT_TRUE(survives(Reliability::kNodeDurable, Failure::kProcessCrash));
  EXPECT_FALSE(survives(Reliability::kNodeDurable, Failure::kNodeLoss));
  EXPECT_TRUE(survives(Reliability::kReplicated, Failure::kNodeLoss));
  EXPECT_FALSE(survives(Reliability::kReplicated, Failure::kSiteLoss));
  EXPECT_TRUE(survives(Reliability::kGeoReplicated, Failure::kSiteLoss));
}

TEST(Reliability, CostOrderedByDurability) {
  const ReliabilityManager mgr = make_mgr();
  const double bytes = 1 << 20;
  const WriteCost cheap = mgr.cost_of(Reliability::kCheap, bytes);
  const WriteCost nvm = mgr.cost_of(Reliability::kNodeDurable, bytes);
  const WriteCost repl = mgr.cost_of(Reliability::kReplicated, bytes);
  const WriteCost geo = mgr.cost_of(Reliability::kGeoReplicated, bytes);
  EXPECT_LT(cheap.time_s, nvm.time_s);
  EXPECT_LT(nvm.time_s, repl.time_s);
  EXPECT_LT(repl.time_s, geo.time_s);
  EXPECT_LT(cheap.energy_j, nvm.energy_j);
  EXPECT_LT(nvm.energy_j, repl.energy_j);
  EXPECT_LT(repl.energy_j, geo.energy_j);
}

TEST(Reliability, WriteAccumulates) {
  ReliabilityManager mgr = make_mgr();
  mgr.declare("redo-log", Reliability::kReplicated);
  const WriteCost once = mgr.write("redo-log", 4096);
  (void)mgr.write("redo-log", 4096);
  const WriteCost total = mgr.accumulated("redo-log");
  EXPECT_NEAR(total.time_s, 2 * once.time_s, 1e-12);
  EXPECT_NEAR(total.energy_j, 2 * once.energy_j, 1e-12);
}

TEST(Reliability, IntermediatesCheapLogsReplicated) {
  // The paper's exact example: intermediates in cheap memory, REDO log
  // replicated. Intermediates write faster; only the log survives node loss.
  ReliabilityManager mgr = make_mgr();
  mgr.declare("intermediates", Reliability::kCheap);
  mgr.declare("redo-log", Reliability::kReplicated);
  const WriteCost inter = mgr.write("intermediates", 1 << 20);
  const WriteCost log = mgr.write("redo-log", 1 << 20);
  EXPECT_LT(inter.time_s, log.time_s / 10);
  const auto alive = mgr.surviving(Failure::kNodeLoss);
  ASSERT_EQ(alive.size(), 1u);
  EXPECT_EQ(alive[0], "redo-log");
}

TEST(Reliability, UndeclaredFragmentThrows) {
  ReliabilityManager mgr = make_mgr();
  EXPECT_THROW((void)mgr.write("nope", 1), Error);
  EXPECT_THROW((void)mgr.level_of("nope"), Error);
  EXPECT_THROW((void)mgr.accumulated("nope"), Error);
}

TEST(Reliability, RedeclareChangesLevel) {
  ReliabilityManager mgr = make_mgr();
  mgr.declare("frag", Reliability::kCheap);
  mgr.declare("frag", Reliability::kGeoReplicated);
  EXPECT_EQ(mgr.level_of("frag"), Reliability::kGeoReplicated);
}

TEST(Reliability, Names) {
  EXPECT_EQ(reliability_name(Reliability::kCheap), "cheap");
  EXPECT_EQ(reliability_name(Reliability::kGeoReplicated), "geo-replicated");
}

}  // namespace
}  // namespace eidb::storage
