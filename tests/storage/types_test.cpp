#include "storage/types.hpp"

#include <gtest/gtest.h>

namespace eidb::storage {
namespace {

TEST(Types, Names) {
  EXPECT_EQ(type_name(TypeId::kInt32), "int32");
  EXPECT_EQ(type_name(TypeId::kInt64), "int64");
  EXPECT_EQ(type_name(TypeId::kDouble), "double");
  EXPECT_EQ(type_name(TypeId::kString), "string");
}

TEST(Types, PhysicalSizes) {
  EXPECT_EQ(physical_size(TypeId::kInt32), 4u);
  EXPECT_EQ(physical_size(TypeId::kInt64), 8u);
  EXPECT_EQ(physical_size(TypeId::kDouble), 8u);
  EXPECT_EQ(physical_size(TypeId::kString), 4u);  // dictionary code
}

TEST(Value, IntRoundTrip) {
  const Value v{std::int64_t{-42}};
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), -42);
  EXPECT_DOUBLE_EQ(v.as_double(), -42.0);  // implicit widening
  EXPECT_EQ(v.to_string(), "-42");
}

TEST(Value, DoubleRoundTrip) {
  const Value v{2.5};
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
  EXPECT_EQ(v.to_string(), "2.5");
}

TEST(Value, StringRoundTrip) {
  const Value v{std::string("abc")};
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "abc");
  EXPECT_EQ(v.to_string(), "abc");
}

TEST(Value, Equality) {
  EXPECT_EQ(Value{std::int64_t{1}}, Value{std::int64_t{1}});
  EXPECT_FALSE(Value{std::int64_t{1}} == Value{2.0});
  EXPECT_EQ(Value{std::string("x")}, Value{std::string("x")});
}

TEST(Value, DefaultIsIntZero) {
  const Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 0);
}

TEST(Value, Int32ConstructorWidens) {
  const Value v{std::int32_t{7}};
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 7);
}

}  // namespace
}  // namespace eidb::storage
