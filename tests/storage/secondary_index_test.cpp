#include "storage/secondary_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::storage {
namespace {

TEST(SecondaryIndex, UbiquityMaintainsEagerly) {
  SecondaryIndex idx(IndexMaintenance::kUbiquity);
  idx.append(30);
  idx.append(10);
  idx.append(20);
  EXPECT_EQ(idx.pending_rows(), 0u);
  EXPECT_EQ(idx.indexed_rows(), 3u);
  EXPECT_GT(idx.maintenance_ops(), 0u);
}

TEST(SecondaryIndex, NeedToKnowDefersWithoutReaders) {
  SecondaryIndex idx(IndexMaintenance::kNeedToKnow);
  for (int i = 0; i < 100; ++i) idx.append(i);
  EXPECT_EQ(idx.pending_rows(), 100u);
  EXPECT_EQ(idx.indexed_rows(), 0u);
  EXPECT_EQ(idx.maintenance_ops(), 0u);  // zero work, the paper's point
}

TEST(SecondaryIndex, ReaderInterestTriggersCatchUp) {
  SecondaryIndex idx(IndexMaintenance::kNeedToKnow);
  for (int i = 0; i < 50; ++i) idx.append(i);
  idx.register_reader();
  EXPECT_EQ(idx.pending_rows(), 0u);
  EXPECT_EQ(idx.indexed_rows(), 50u);
  // With a reader present, appends maintain eagerly.
  idx.append(99);
  EXPECT_EQ(idx.pending_rows(), 0u);
  idx.unregister_reader();
  idx.append(100);
  EXPECT_EQ(idx.pending_rows(), 1u);  // lazy again
}

TEST(SecondaryIndex, LookupAlwaysCorrectRegardlessOfPolicy) {
  for (const auto policy :
       {IndexMaintenance::kUbiquity, IndexMaintenance::kNeedToKnow}) {
    SecondaryIndex idx(policy);
    Pcg32 rng(5);
    std::vector<std::int64_t> values(2000);
    for (auto& v : values) {
      v = rng.next_bounded(500);
      idx.append(v);
    }
    const auto rows = idx.lookup_range(100, 199);
    // Reference.
    std::vector<std::uint32_t> want;
    for (std::uint32_t r = 0; r < values.size(); ++r)
      if (values[r] >= 100 && values[r] <= 199) want.push_back(r);
    // Index returns (value, row)-sorted; compare as sets via sorting rows.
    auto got = rows;
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST(SecondaryIndex, LookupOrderedByValueThenRow) {
  SecondaryIndex idx(IndexMaintenance::kUbiquity);
  idx.append(5);   // row 0
  idx.append(3);   // row 1
  idx.append(5);   // row 2
  idx.append(4);   // row 3
  const auto rows = idx.lookup_range(3, 5);
  EXPECT_EQ(rows, (std::vector<std::uint32_t>{1, 3, 0, 2}));
}

TEST(SecondaryIndex, NeedToKnowSavesWorkOnWriteHeavyLoad) {
  // The A1 ablation in miniature: bursts of writes, one read at the end.
  SecondaryIndex eager(IndexMaintenance::kUbiquity);
  SecondaryIndex lazy(IndexMaintenance::kNeedToKnow);
  for (int i = 0; i < 1000; ++i) {
    eager.append(i * 7 % 997);
    lazy.append(i * 7 % 997);
  }
  (void)eager.lookup_range(0, 10);
  (void)lazy.lookup_range(0, 10);
  EXPECT_LT(lazy.maintenance_ops(), eager.maintenance_ops() / 100);
  // Same answers nonetheless.
  EXPECT_EQ(lazy.lookup_range(0, 996), eager.lookup_range(0, 996));
}

TEST(SecondaryIndex, EmptyRangeAndEmptyIndex) {
  SecondaryIndex idx(IndexMaintenance::kNeedToKnow);
  EXPECT_TRUE(idx.lookup_range(0, 100).empty());
  idx.append(5);
  EXPECT_TRUE(idx.lookup_range(6, 10).empty());
  EXPECT_TRUE(idx.lookup_range(10, 6).empty());  // inverted range
}

}  // namespace
}  // namespace eidb::storage
