#include "storage/int_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace eidb::storage {
namespace {

std::vector<std::int64_t> make_data(const std::string& pattern, std::size_t n,
                                    std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::int64_t> v(n);
  if (pattern == "uniform-small") {
    for (auto& x : v) x = rng.next_bounded(1000);
  } else if (pattern == "uniform-wide") {
    for (auto& x : v) x = static_cast<std::int64_t>(rng.next64());
  } else if (pattern == "sorted") {
    std::int64_t cur = -500;
    for (auto& x : v) {
      cur += rng.next_bounded(5);
      x = cur;
    }
  } else if (pattern == "runs") {
    std::int64_t cur = 0;
    std::size_t i = 0;
    while (i < n) {
      cur = rng.next_bounded(50);
      const std::size_t run = std::min<std::size_t>(1 + rng.next_bounded(40),
                                                    n - i);
      for (std::size_t k = 0; k < run; ++k) v[i++] = cur;
    }
  } else if (pattern == "zipf") {
    ZipfGenerator z(10000, 0.99, seed);
    for (auto& x : v) x = static_cast<std::int64_t>(z.next());
  } else if (pattern == "negatives") {
    for (auto& x : v)
      x = static_cast<std::int64_t>(rng.next_bounded(2000)) - 1000;
  }
  return v;
}

struct Case {
  CodecKind kind;
  std::string pattern;
};

class CodecRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(CodecRoundTrip, DecodeInvertsEncode) {
  const auto [kind, pattern] = GetParam();
  const auto codec = make_codec(kind);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{1000},
                              std::size_t{4097}}) {
    const auto data = make_data(pattern, n, 77 + n);
    const auto bytes = codec->encode(data);
    const auto back = codec->decode(bytes);
    EXPECT_EQ(back, data) << codec_name(kind) << " n=" << n;
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const CodecKind k : all_codec_kinds())
    for (const char* p : {"uniform-small", "uniform-wide", "sorted", "runs",
                          "zipf", "negatives"})
      cases.push_back({k, p});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllPatterns, CodecRoundTrip, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name =
          codec_name(info.param.kind) + "_" + info.param.pattern;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Codec, ForBitpackCompressesSmallDomains) {
  const auto data = make_data("uniform-small", 10000, 1);  // values < 1000
  const auto codec = make_codec(CodecKind::kForBitpack);
  const auto bytes = codec->encode(data);
  // 10 bits/value vs 64: expect better than 4x.
  EXPECT_LT(bytes.size(), data.size() * 8 / 4);
}

TEST(Codec, DeltaBitpackBeatsForOnSorted) {
  const auto data = make_data("sorted", 10000, 2);
  const auto delta = make_codec(CodecKind::kDeltaBitpack)->encode(data);
  const auto fr = make_codec(CodecKind::kForBitpack)->encode(data);
  EXPECT_LT(delta.size(), fr.size());
}

TEST(Codec, RleShinesOnRuns) {
  const auto data = make_data("runs", 10000, 3);
  const auto rle = make_codec(CodecKind::kRle)->encode(data);
  EXPECT_LT(rle.size(), data.size() * 8 / 5);
}

TEST(Codec, RleDegradesGracefullyOnRandom) {
  const auto data = make_data("uniform-wide", 1000, 4);
  const auto codec = make_codec(CodecKind::kRle);
  const auto bytes = codec->encode(data);
  const auto back = codec->decode(bytes);
  EXPECT_EQ(back, data);
  // Worst case = 2 words per value + header.
  EXPECT_LE(bytes.size(), 8 + data.size() * 16);
}

TEST(Codec, PlainIsExactlyRawPlusHeader) {
  const auto data = make_data("uniform-wide", 100, 5);
  const auto bytes = make_codec(CodecKind::kPlain)->encode(data);
  EXPECT_EQ(bytes.size(), 8 + 100 * 8);
}

TEST(Codec, NamesAreUnique) {
  std::vector<std::string> names;
  for (const CodecKind k : all_codec_kinds()) names.push_back(codec_name(k));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Codec, NominalCostsOrdered) {
  // Plain must be the cheapest; LZ the most expensive CPU-wise.
  const double plain =
      make_codec(CodecKind::kPlain)->nominal_cycles_per_value();
  const double lz = make_codec(CodecKind::kLz)->nominal_cycles_per_value();
  for (const CodecKind k : all_codec_kinds()) {
    const double c = make_codec(k)->nominal_cycles_per_value();
    EXPECT_GE(c, plain);
    EXPECT_LE(c, lz);
  }
}

}  // namespace
}  // namespace eidb::storage
