#include "storage/partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "storage/table.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::storage {
namespace {

Table make_table(std::size_t rows, std::uint64_t seed) {
  Table t("t", Schema({{"k", TypeId::kInt32},
                       {"v", TypeId::kInt64},
                       {"s", TypeId::kString},
                       {"d", TypeId::kDouble}}));
  Pcg32 rng(seed);
  std::vector<std::int32_t> k;
  std::vector<std::int64_t> v;
  std::vector<std::string> s;
  std::vector<double> d;
  const char* tags[] = {"ash", "birch", "cedar"};
  for (std::size_t i = 0; i < rows; ++i) {
    k.push_back(static_cast<std::int32_t>(rng.next_in_range(-50, 50)));
    v.push_back(rng.next_in_range(-1000, 1000));
    s.emplace_back(tags[rng.next_bounded(3)]);
    d.push_back(0.5 * static_cast<double>(rng.next_bounded(20)));
  }
  t.set_column(0, Column::from_int32("k", k));
  t.set_column(1, Column::from_int64("v", v));
  t.set_column(2, Column::from_strings("s", s));
  t.set_column(3, Column::from_double("d", d));
  return t;
}

TEST(Partition, ShardsPartitionTheRowSet) {
  const Table t = make_table(1237, 9);  // odd count: uneven shards
  const PartitionSet set = build_partition_set(t, "k", 4);
  ASSERT_EQ(set.shard_count(), 4u);
  EXPECT_EQ(set.key_column, "k");
  // Disjoint + covering: every global row id appears in exactly one shard,
  // ascending within its shard.
  std::vector<bool> seen(t.row_count(), false);
  std::size_t total = 0;
  for (std::size_t s = 0; s < set.shard_count(); ++s) {
    const auto& rows = set.shard_rows[s];
    ASSERT_EQ(rows.size(), set.shards[s]->row_count());
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (j > 0) {
        EXPECT_LT(rows[j - 1], rows[j]);
      }
      ASSERT_LT(rows[j], t.row_count());
      EXPECT_FALSE(seen[rows[j]]) << "row " << rows[j] << " in two shards";
      seen[rows[j]] = true;
    }
    total += rows.size();
  }
  EXPECT_EQ(total, t.row_count());
}

TEST(Partition, ShardRowsCarryOriginalValues) {
  const Table t = make_table(801, 21);
  const PartitionSet set = build_partition_set(t, "k", 3);
  for (std::size_t s = 0; s < set.shard_count(); ++s) {
    const Table& shard = *set.shards[s];
    EXPECT_EQ(shard.name(), "t#" + std::to_string(s));
    EXPECT_TRUE(shard.complete());
    for (std::size_t j = 0; j < shard.row_count(); ++j) {
      const std::uint32_t g = set.shard_rows[s][j];
      EXPECT_EQ(shard.column("k").int32_data()[j], t.column("k").int32_data()[g]);
      EXPECT_EQ(shard.column("v").int64_data()[j], t.column("v").int64_data()[g]);
      EXPECT_EQ(shard.column("d").double_data()[j], t.column("d").double_data()[g]);
      // String shards rebuild their OWN dictionary; values must survive
      // the re-encode even though codes may differ from the parent's.
      EXPECT_EQ(shard.column("s").dictionary().at(shard.column("s").codes()[j]),
                t.column("s").dictionary().at(t.column("s").codes()[g]));
    }
  }
}

TEST(Partition, SameKeyValueLandsInOneShard) {
  // The point of hash partitioning: co-location. Every occurrence of a key
  // value maps to the same shard, whichever key type is used.
  const Table t = make_table(900, 33);
  for (const std::string key : {"k", "s", "d"}) {
    const PartitionSet set = build_partition_set(t, key, 5);
    std::map<std::string, std::size_t> owner;
    for (std::size_t s = 0; s < set.shard_count(); ++s) {
      const Column& col = set.shards[s]->column(key);
      for (std::size_t j = 0; j < set.shards[s]->row_count(); ++j) {
        std::string val;
        if (col.type() == TypeId::kInt32)
          val = std::to_string(col.int32_data()[j]);
        else if (col.type() == TypeId::kDouble)
          val = std::to_string(col.double_data()[j]);
        else
          val = col.dictionary().at(col.codes()[j]);
        const auto [it, inserted] = owner.emplace(val, s);
        EXPECT_EQ(it->second, s) << key << "=" << val << " split across shards";
      }
    }
  }
}

TEST(Partition, DeterministicAcrossRebuilds) {
  const Table t = make_table(640, 55);
  const PartitionSet a = build_partition_set(t, "v", 8);
  const PartitionSet b = build_partition_set(t, "v", 8);
  ASSERT_EQ(a.shard_count(), b.shard_count());
  for (std::size_t s = 0; s < a.shard_count(); ++s)
    EXPECT_EQ(a.shard_rows[s], b.shard_rows[s]);
}

TEST(Partition, SingleShardIsTheWholeTable) {
  const Table t = make_table(333, 77);
  const PartitionSet set = build_partition_set(t, "k", 1);
  ASSERT_EQ(set.shard_count(), 1u);
  EXPECT_EQ(set.shards[0]->row_count(), t.row_count());
  std::vector<std::uint32_t> expect(t.row_count());
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(set.shard_rows[0], expect);
}

TEST(Partition, TableLayerRebuildsAndRejectsBadInput) {
  Table t = make_table(500, 88);
  EXPECT_EQ(t.partition_set(), nullptr);
  t.build_partitions("k", 4);
  ASSERT_NE(t.partition_set(), nullptr);
  EXPECT_EQ(t.partition_set()->shard_count(), 4u);
  t.build_partitions("s", 2);  // rebuild replaces the layer
  ASSERT_NE(t.partition_set(), nullptr);
  EXPECT_EQ(t.partition_set()->shard_count(), 2u);
  EXPECT_EQ(t.partition_set()->key_column, "s");
  EXPECT_THROW(t.build_partitions("nope", 2), Error);
  EXPECT_THROW(t.build_partitions("k", 0), Error);
  // Incomplete tables cannot be partitioned (no row set to split yet).
  Table empty("e", Schema({{"x", TypeId::kInt32}}));
  EXPECT_THROW((void)build_partition_set(empty, "x", 2), Error);
}

TEST(Partition, ShardMixSpreadsSmallDomains) {
  // Sequential small ints — the common dimension-key shape — must not all
  // collapse into one shard.
  std::vector<std::size_t> counts(4, 0);
  for (std::uint64_t v = 0; v < 64; ++v) counts[shard_mix(v) % 4]++;
  for (const std::size_t c : counts) EXPECT_GT(c, 0u);
}

}  // namespace
}  // namespace eidb::storage
