#include "storage/zonemap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::storage {
namespace {

TEST(ZoneMap, BuildsPerBlockMinMax) {
  const std::vector<std::int64_t> v = {5, 1, 9, /*block*/ 3, 3, 3,
                                       /*block*/ 100};
  const ZoneMap zm = ZoneMap::build(v, 3);
  ASSERT_EQ(zm.zone_count(), 3u);
  EXPECT_EQ(zm.zone(0).min, 1);
  EXPECT_EQ(zm.zone(0).max, 9);
  EXPECT_EQ(zm.zone(1).min, 3);
  EXPECT_EQ(zm.zone(1).max, 3);
  EXPECT_EQ(zm.zone(2).min, 100);
  EXPECT_EQ(zm.zone(2).max, 100);
}

TEST(ZoneMap, OverlapPredicate) {
  const std::vector<std::int64_t> v = {10, 20, 30, 40};
  const ZoneMap zm = ZoneMap::build(v, 2);
  EXPECT_TRUE(zm.may_overlap(0, 15, 25));
  EXPECT_FALSE(zm.may_overlap(0, 21, 29));
  EXPECT_TRUE(zm.may_overlap(1, 40, 100));
  EXPECT_FALSE(zm.may_overlap(1, 41, 100));
}

TEST(ZoneMap, CandidateRangesCoalesceAdjacent) {
  // Sorted data: one contiguous candidate range.
  std::vector<std::int64_t> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int64_t>(i);
  const ZoneMap zm = ZoneMap::build(v, 100);
  const auto ranges = zm.candidate_ranges(250, 649, v.size());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 200u);  // block [200,300) holds 250
  EXPECT_EQ(ranges[0].end, 700u);    // block [600,700) holds 649
}

TEST(ZoneMap, CandidateRangesSkipNonMatching) {
  // Clustered data: values alternate between two far-apart clusters per block.
  std::vector<std::int64_t> v;
  for (int block = 0; block < 10; ++block)
    for (int i = 0; i < 100; ++i) v.push_back(block % 2 == 0 ? 10 : 1000);
  const ZoneMap zm = ZoneMap::build(v, 100);
  const auto ranges = zm.candidate_ranges(900, 1100, v.size());
  ASSERT_EQ(ranges.size(), 5u);  // every odd block, none adjacent
  for (const auto& r : ranges) EXPECT_EQ(r.end - r.begin, 100u);
}

TEST(ZoneMap, NoCandidates) {
  const std::vector<std::int64_t> v = {1, 2, 3};
  const ZoneMap zm = ZoneMap::build(v, 2);
  EXPECT_TRUE(zm.candidate_ranges(100, 200, v.size()).empty());
}

TEST(ZoneMap, TailBlockShorterThanBlockRows) {
  std::vector<std::int64_t> v(105, 7);
  const ZoneMap zm = ZoneMap::build(v, 50);
  ASSERT_EQ(zm.zone_count(), 3u);
  const auto ranges = zm.candidate_ranges(7, 7, v.size());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].end, 105u);  // clipped to row count
}

TEST(ZoneMap, Int32Builder) {
  const std::vector<std::int32_t> v = {-5, 3, 100, 2};
  const ZoneMap zm = ZoneMap::build32(v, 2);
  EXPECT_EQ(zm.zone(0).min, -5);
  EXPECT_EQ(zm.zone(0).max, 3);
  EXPECT_EQ(zm.zone(1).max, 100);
}

// Property: a scan restricted to candidate ranges finds exactly the rows a
// full scan finds.
TEST(ZoneMap, PruningIsLossless) {
  Pcg32 rng(42);
  std::vector<std::int64_t> v(10000);
  for (auto& x : v) x = rng.next_bounded(1000);
  const ZoneMap zm = ZoneMap::build(v, 128);
  const std::int64_t lo = 300, hi = 320;

  std::vector<std::size_t> full;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] >= lo && v[i] <= hi) full.push_back(i);

  std::vector<std::size_t> pruned;
  for (const auto& r : zm.candidate_ranges(lo, hi, v.size()))
    for (std::size_t i = r.begin; i < r.end; ++i)
      if (v[i] >= lo && v[i] <= hi) pruned.push_back(i);

  EXPECT_EQ(pruned, full);
}

}  // namespace
}  // namespace eidb::storage
