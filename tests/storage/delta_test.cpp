#include "storage/delta.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::storage {
namespace {

TEST(DeltaColumn, AppendAndAt) {
  DeltaColumn c({10, 20, 30});
  EXPECT_EQ(c.main_size(), 3u);
  c.append(40);
  c.append(50);
  EXPECT_EQ(c.delta_size(), 2u);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.at(0), 10);
  EXPECT_EQ(c.at(2), 30);
  EXPECT_EQ(c.at(3), 40);
  EXPECT_EQ(c.at(4), 50);
}

TEST(DeltaColumn, ScanSpansMainAndDelta) {
  DeltaColumn c({1, 5, 9});
  c.append(5);
  c.append(2);
  BitVector out(c.size());
  c.scan_range(2, 5, out);
  EXPECT_FALSE(out.test(0));
  EXPECT_TRUE(out.test(1));
  EXPECT_FALSE(out.test(2));
  EXPECT_TRUE(out.test(3));
  EXPECT_TRUE(out.test(4));
}

TEST(DeltaColumn, ScanMatchesReferenceAcrossBoundary) {
  // Main size straddling word boundaries exercises the copy/patch seam.
  for (const std::size_t main_n : {0u, 1u, 63u, 64u, 65u, 127u, 1000u}) {
    Pcg32 rng(main_n + 1);
    std::vector<std::int64_t> main(main_n);
    for (auto& v : main) v = rng.next_bounded(100);
    DeltaColumn c(main);
    for (int d = 0; d < 200; ++d)
      c.append(rng.next_bounded(100));
    BitVector out(c.size());
    c.scan_range(25, 74, out);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(out.test(i), c.at(i) >= 25 && c.at(i) <= 74)
          << "main_n=" << main_n << " i=" << i;
  }
}

TEST(DeltaColumn, MergeFoldsAndClears) {
  DeltaColumn c({1, 2});
  c.append(3);
  c.append(4);
  EXPECT_EQ(c.merge(), 2u);
  EXPECT_EQ(c.delta_size(), 0u);
  EXPECT_EQ(c.main_size(), 4u);
  EXPECT_EQ(c.at(3), 4);
  EXPECT_EQ(c.merges(), 1u);
  EXPECT_EQ(c.rows_rewritten(), 4u);
  EXPECT_EQ(c.merge(), 0u);  // idempotent when empty
  EXPECT_EQ(c.merges(), 1u);
}

TEST(DeltaColumn, ScanEquivalentBeforeAndAfterMerge) {
  Pcg32 rng(9);
  std::vector<std::int64_t> main(5000);
  for (auto& v : main) v = rng.next_bounded(1000);
  DeltaColumn c(main);
  for (int i = 0; i < 700; ++i) c.append(rng.next_bounded(1000));

  BitVector before(c.size());
  c.scan_range(100, 299, before);
  (void)c.merge();
  BitVector after(c.size());
  c.scan_range(100, 299, after);
  EXPECT_EQ(before, after);
}

TEST(DeltaColumn, NeedsMergePolicy) {
  std::vector<std::int64_t> main(1000, 1);
  DeltaColumn c(main);
  EXPECT_FALSE(c.needs_merge(0.1));
  for (int i = 0; i < 101; ++i) c.append(2);
  EXPECT_TRUE(c.needs_merge(0.1));
  (void)c.merge();
  EXPECT_FALSE(c.needs_merge(0.1));
}

TEST(DeltaColumn, EmptyMainPolicy) {
  DeltaColumn c;
  EXPECT_FALSE(c.needs_merge());
  for (int i = 0; i < 1025; ++i) c.append(i);
  EXPECT_TRUE(c.needs_merge());
}

}  // namespace
}  // namespace eidb::storage
