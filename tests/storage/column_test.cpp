#include "storage/column.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "storage/table.hpp"
#include "util/rng.hpp"

namespace eidb::storage {
namespace {

TEST(Column, AppendInt64) {
  Column c("x", TypeId::kInt64);
  for (std::int64_t i = 0; i < 1000; ++i) c.append_int64(i * 7);
  ASSERT_EQ(c.size(), 1000u);
  const auto data = c.int64_data();
  for (std::int64_t i = 0; i < 1000; ++i) EXPECT_EQ(data[i], i * 7);
  EXPECT_EQ(c.byte_size(), 8000u);
}

TEST(Column, BulkFromSpans) {
  const std::vector<std::int32_t> v32 = {1, 2, 3};
  const std::vector<std::int64_t> v64 = {4, 5};
  const std::vector<double> vd = {1.5};
  const Column a = Column::from_int32("a", v32);
  const Column b = Column::from_int64("b", v64);
  const Column c = Column::from_double("c", vd);
  EXPECT_EQ(a.int32_data()[2], 3);
  EXPECT_EQ(b.int64_data()[1], 5);
  EXPECT_DOUBLE_EQ(c.double_data()[0], 1.5);
}

TEST(Column, StringColumnEncodesOrderedCodes) {
  const Column c = Column::from_strings("s", {"cherry", "apple", "banana",
                                              "apple"});
  ASSERT_EQ(c.size(), 4u);
  ASSERT_TRUE(c.has_dictionary());
  const auto codes = c.codes();
  EXPECT_EQ(codes[0], 2);  // cherry
  EXPECT_EQ(codes[1], 0);  // apple
  EXPECT_EQ(codes[2], 1);  // banana
  EXPECT_EQ(codes[3], 0);  // apple
  EXPECT_EQ(c.dictionary().size(), 3);
}

TEST(Column, ValueAtDecodes) {
  const Column s = Column::from_strings("s", {"b", "a"});
  EXPECT_EQ(s.value_at(0).as_string(), "b");
  const std::vector<double> vd = {2.25};
  const Column d = Column::from_double("d", vd);
  EXPECT_DOUBLE_EQ(d.value_at(0).as_double(), 2.25);
  const std::vector<std::int32_t> vi = {-3};
  const Column i = Column::from_int32("i", vi);
  EXPECT_EQ(i.value_at(0).as_int(), -3);
}

TEST(Column, MutableAccessWritesThrough) {
  const std::vector<std::int64_t> v = {1, 2, 3};
  Column c = Column::from_int64("x", v);
  c.mutable_int64()[1] = 99;
  EXPECT_EQ(c.int64_data()[1], 99);
}

TEST(Column, ReserveDoesNotChangeSize) {
  Column c("x", TypeId::kInt32);
  c.reserve(1000);
  EXPECT_EQ(c.size(), 0u);
  c.append_int32(5);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Column, GrowthAcrossManyAppends) {
  Column c("x", TypeId::kDouble);
  for (int i = 0; i < 100000; ++i) c.append_double(i * 0.5);
  EXPECT_EQ(c.size(), 100000u);
  EXPECT_DOUBLE_EQ(c.double_data()[99999], 99999 * 0.5);
}

TEST(Column, EmptyStringColumn) {
  const Column c = Column::from_strings("s", {});
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.has_dictionary());
  EXPECT_EQ(c.dictionary().size(), 0);
}

TEST(ColumnStats, IntColumnMinMaxDistinct) {
  std::vector<std::int32_t> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 10 - 3);  // values -3..6
  const Column c = Column::from_int32("x", v);
  const ColumnStats& s = c.stats();
  EXPECT_EQ(s.rows, 1000u);
  EXPECT_EQ(s.min, -3);
  EXPECT_EQ(s.max, 6);
  EXPECT_EQ(s.domain(), 10);
  EXPECT_EQ(s.distinct, 10u);  // small column: exact
}

TEST(ColumnStats, StringColumnUsesDictionaryDistinct) {
  const Column c = Column::from_strings(
      "s", {"eu", "us", "eu", "asia", "eu", "us"});
  const ColumnStats& s = c.stats();
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_EQ(s.min, 0);  // code range
  EXPECT_EQ(s.max, 2);
}

TEST(ColumnStats, DoubleColumnRangeAndSelectivity) {
  const std::vector<double> v = {-1.5, 0.0, 2.5, 4.0};
  const Column c = Column::from_double("d", v);
  const ColumnStats& s = c.stats();
  EXPECT_DOUBLE_EQ(s.dmin, -1.5);
  EXPECT_DOUBLE_EQ(s.dmax, 4.0);
  EXPECT_DOUBLE_EQ(s.range_selectivity(-1.5, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.range_selectivity(10.0, 20.0), 0.0);
  EXPECT_NEAR(s.range_selectivity(-1.5, 1.25), 0.5, 1e-12);
}

TEST(ColumnStats, EmptyColumn) {
  const Column c("x", TypeId::kInt64);
  const ColumnStats& s = c.stats();
  EXPECT_EQ(s.rows, 0u);
  EXPECT_EQ(s.domain(), 0);
  EXPECT_DOUBLE_EQ(s.range_selectivity(std::int64_t{0}, std::int64_t{10}),
                   0.0);
}

TEST(ColumnStats, MutableAccessInvalidates) {
  const std::vector<std::int64_t> v = {1, 2, 3};
  Column c = Column::from_int64("x", v);
  EXPECT_EQ(c.stats().max, 3);
  c.mutable_int64()[1] = 99;
  EXPECT_EQ(c.stats().max, 99);
}

// -- Encoding choice and packed segments -------------------------------------

TEST(ColumnEncoding, AutoChoiceFromStats) {
  // Non-negative narrow domain: reference-free bit packing.
  unsigned bits = 0;
  ColumnStats s;
  s.rows = 100;
  s.min = 0;
  s.max = 999;
  EXPECT_EQ(choose_encoding(s, TypeId::kInt32, &bits),
            Encoding::kBitPacked);
  EXPECT_EQ(bits, 10u);
  // Offset domain: FOR shrinks the width, so it wins.
  s.min = 1'000'000;
  s.max = 1'000'999;
  EXPECT_EQ(choose_encoding(s, TypeId::kInt32, &bits),
            Encoding::kForBitPacked);
  EXPECT_EQ(bits, 10u);
  // Negative domain: only FOR applies.
  s.min = -500;
  s.max = 500;
  EXPECT_EQ(choose_encoding(s, TypeId::kInt32, &bits),
            Encoding::kForBitPacked);
  EXPECT_EQ(bits, 10u);
  // Full-width domain: nothing to save.
  s.min = std::numeric_limits<std::int32_t>::min();
  s.max = std::numeric_limits<std::int32_t>::max();
  EXPECT_EQ(choose_encoding(s, TypeId::kInt32), Encoding::kPlain);
  // Doubles are never encoded.
  EXPECT_EQ(choose_encoding(s, TypeId::kDouble), Encoding::kPlain);
}

TEST(ColumnEncoding, AllEqualColumnPacksToZeroBits) {
  // domain() == 1 must yield a width-0 FOR image, not a bogus width.
  const std::vector<std::int64_t> v(200, -12345);
  Column c = Column::from_int64("k", v);
  EXPECT_EQ(c.stats().domain(), 1);
  EXPECT_EQ(c.choose_encoding(), Encoding::kForBitPacked);
  c.auto_encode();
  ASSERT_NE(c.encoded(), nullptr);
  EXPECT_EQ(c.encoded()->bits, 0u);
  EXPECT_EQ(c.encoded()->reference, -12345);
  EXPECT_EQ(c.scan_byte_size(), 0u);
  for (std::size_t i = 0; i < v.size(); i += 17)
    EXPECT_EQ(c.packed_view().value_at(i), -12345);
  // All-zero column: the reference-free layout also reaches width 0.
  const std::vector<std::int64_t> z(64, 0);
  Column cz = Column::from_int64("z", z);
  EXPECT_EQ(cz.choose_encoding(), Encoding::kBitPacked);
}

TEST(ColumnEncoding, TinyColumnNeverGetsLargerPackedImage) {
  // 3 rows at a 31-bit width: per-value bits beat the 32-bit plain width,
  // but word rounding makes the image (2 words = 16 B) larger than the
  // plain array (12 B) — the chooser must keep it plain so the ledger's
  // dram(packed) <= dram(plain) invariant holds unconditionally.
  const std::vector<std::int32_t> v = {0, 5, 1 << 30};
  Column c = Column::from_int32("tiny", v);
  EXPECT_EQ(c.choose_encoding(), Encoding::kPlain);
  c.auto_encode();
  EXPECT_LE(c.scan_byte_size(), c.byte_size());
}

TEST(ColumnEncoding, EmptyColumnStaysPlainButAcceptsOverride) {
  Column c = Column::from_int64("e", {});
  EXPECT_EQ(c.stats().domain(), 0);
  EXPECT_EQ(c.choose_encoding(), Encoding::kPlain);
  c.auto_encode();
  EXPECT_EQ(c.encoding(), Encoding::kPlain);
  // Forced encodings on an empty column are well-defined (0-bit image).
  c.set_encoding(Encoding::kForBitPacked);
  ASSERT_NE(c.encoded(), nullptr);
  EXPECT_EQ(c.encoded()->bits, 0u);
  EXPECT_EQ(c.encoded()->count, 0u);
}

TEST(ColumnEncoding, SegmentRoundTripsAndInvalidates) {
  Pcg32 rng(8);
  std::vector<std::int32_t> v;
  for (int i = 0; i < 500; ++i)
    v.push_back(static_cast<std::int32_t>(rng.next_in_range(-300, 900)));
  Column c = Column::from_int32("x", v);
  c.auto_encode();
  ASSERT_NE(c.encoded(), nullptr);
  EXPECT_EQ(c.encoding(), Encoding::kForBitPacked);
  EXPECT_LT(c.scan_byte_size(), c.byte_size());
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_EQ(c.packed_view().value_at(i), v[i]) << i;
  // Mutation drops the stale image; auto_encode rebuilds from fresh stats.
  c.append_int32(5000);
  EXPECT_EQ(c.encoded(), nullptr);
  c.auto_encode();
  ASSERT_NE(c.encoded(), nullptr);
  EXPECT_EQ(c.packed_view().value_at(500), 5000);
}

TEST(ColumnEncoding, TableSetColumnAutoEncodes) {
  Table t("t", Schema({{"narrow", TypeId::kInt32},
                       {"wide", TypeId::kInt64},
                       {"d", TypeId::kDouble}}));
  std::vector<std::int32_t> narrow(100);
  std::vector<std::int64_t> wide(100);
  std::vector<double> d(100);
  Pcg32 rng(9);
  for (std::size_t i = 0; i < 100; ++i) {
    narrow[i] = static_cast<std::int32_t>(rng.next_bounded(50));
    wide[i] = static_cast<std::int64_t>(rng.next64());  // full 64-bit spread
    d[i] = rng.next_double();
  }
  t.set_column(0, Column::from_int32("narrow", narrow));
  t.set_column(1, Column::from_int64("wide", wide));
  t.set_column(2, Column::from_double("d", d));
  EXPECT_NE(t.column("narrow").encoded(), nullptr);
  EXPECT_EQ(t.column("wide").encoding(), Encoding::kPlain);
  EXPECT_EQ(t.column("d").encoding(), Encoding::kPlain);
  // recode() overrides the automatic choice in place.
  t.recode("narrow", Encoding::kPlain);
  EXPECT_EQ(t.column("narrow").encoding(), Encoding::kPlain);
  t.recode("narrow", Encoding::kBitPacked);
  EXPECT_EQ(t.column("narrow").encoding(), Encoding::kBitPacked);
}

TEST(ColumnEncoding, StringColumnPacksDictionaryCodes) {
  const std::vector<std::string> v = {"b", "a", "c", "a", "b", "c", "a"};
  Table t("t", Schema({{"s", TypeId::kString}}));
  t.set_column(0, Column::from_strings("s", v));
  const Column& c = t.column("s");
  ASSERT_NE(c.encoded(), nullptr);
  EXPECT_EQ(c.encoded()->bits, 2u);  // 3 codes -> 2 bits
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(c.packed_view().value_at(i), c.codes()[i]);
}

}  // namespace
}  // namespace eidb::storage
