#include "storage/column.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eidb::storage {
namespace {

TEST(Column, AppendInt64) {
  Column c("x", TypeId::kInt64);
  for (std::int64_t i = 0; i < 1000; ++i) c.append_int64(i * 7);
  ASSERT_EQ(c.size(), 1000u);
  const auto data = c.int64_data();
  for (std::int64_t i = 0; i < 1000; ++i) EXPECT_EQ(data[i], i * 7);
  EXPECT_EQ(c.byte_size(), 8000u);
}

TEST(Column, BulkFromSpans) {
  const std::vector<std::int32_t> v32 = {1, 2, 3};
  const std::vector<std::int64_t> v64 = {4, 5};
  const std::vector<double> vd = {1.5};
  const Column a = Column::from_int32("a", v32);
  const Column b = Column::from_int64("b", v64);
  const Column c = Column::from_double("c", vd);
  EXPECT_EQ(a.int32_data()[2], 3);
  EXPECT_EQ(b.int64_data()[1], 5);
  EXPECT_DOUBLE_EQ(c.double_data()[0], 1.5);
}

TEST(Column, StringColumnEncodesOrderedCodes) {
  const Column c = Column::from_strings("s", {"cherry", "apple", "banana",
                                              "apple"});
  ASSERT_EQ(c.size(), 4u);
  ASSERT_TRUE(c.has_dictionary());
  const auto codes = c.codes();
  EXPECT_EQ(codes[0], 2);  // cherry
  EXPECT_EQ(codes[1], 0);  // apple
  EXPECT_EQ(codes[2], 1);  // banana
  EXPECT_EQ(codes[3], 0);  // apple
  EXPECT_EQ(c.dictionary().size(), 3);
}

TEST(Column, ValueAtDecodes) {
  const Column s = Column::from_strings("s", {"b", "a"});
  EXPECT_EQ(s.value_at(0).as_string(), "b");
  const std::vector<double> vd = {2.25};
  const Column d = Column::from_double("d", vd);
  EXPECT_DOUBLE_EQ(d.value_at(0).as_double(), 2.25);
  const std::vector<std::int32_t> vi = {-3};
  const Column i = Column::from_int32("i", vi);
  EXPECT_EQ(i.value_at(0).as_int(), -3);
}

TEST(Column, MutableAccessWritesThrough) {
  const std::vector<std::int64_t> v = {1, 2, 3};
  Column c = Column::from_int64("x", v);
  c.mutable_int64()[1] = 99;
  EXPECT_EQ(c.int64_data()[1], 99);
}

TEST(Column, ReserveDoesNotChangeSize) {
  Column c("x", TypeId::kInt32);
  c.reserve(1000);
  EXPECT_EQ(c.size(), 0u);
  c.append_int32(5);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Column, GrowthAcrossManyAppends) {
  Column c("x", TypeId::kDouble);
  for (int i = 0; i < 100000; ++i) c.append_double(i * 0.5);
  EXPECT_EQ(c.size(), 100000u);
  EXPECT_DOUBLE_EQ(c.double_data()[99999], 99999 * 0.5);
}

TEST(Column, EmptyStringColumn) {
  const Column c = Column::from_strings("s", {});
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.has_dictionary());
  EXPECT_EQ(c.dictionary().size(), 0);
}

TEST(ColumnStats, IntColumnMinMaxDistinct) {
  std::vector<std::int32_t> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 10 - 3);  // values -3..6
  const Column c = Column::from_int32("x", v);
  const ColumnStats& s = c.stats();
  EXPECT_EQ(s.rows, 1000u);
  EXPECT_EQ(s.min, -3);
  EXPECT_EQ(s.max, 6);
  EXPECT_EQ(s.domain(), 10);
  EXPECT_EQ(s.distinct, 10u);  // small column: exact
}

TEST(ColumnStats, StringColumnUsesDictionaryDistinct) {
  const Column c = Column::from_strings(
      "s", {"eu", "us", "eu", "asia", "eu", "us"});
  const ColumnStats& s = c.stats();
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_EQ(s.min, 0);  // code range
  EXPECT_EQ(s.max, 2);
}

TEST(ColumnStats, DoubleColumnRangeAndSelectivity) {
  const std::vector<double> v = {-1.5, 0.0, 2.5, 4.0};
  const Column c = Column::from_double("d", v);
  const ColumnStats& s = c.stats();
  EXPECT_DOUBLE_EQ(s.dmin, -1.5);
  EXPECT_DOUBLE_EQ(s.dmax, 4.0);
  EXPECT_DOUBLE_EQ(s.range_selectivity(-1.5, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.range_selectivity(10.0, 20.0), 0.0);
  EXPECT_NEAR(s.range_selectivity(-1.5, 1.25), 0.5, 1e-12);
}

TEST(ColumnStats, EmptyColumn) {
  const Column c("x", TypeId::kInt64);
  const ColumnStats& s = c.stats();
  EXPECT_EQ(s.rows, 0u);
  EXPECT_EQ(s.domain(), 0);
  EXPECT_DOUBLE_EQ(s.range_selectivity(std::int64_t{0}, std::int64_t{10}),
                   0.0);
}

TEST(ColumnStats, MutableAccessInvalidates) {
  const std::vector<std::int64_t> v = {1, 2, 3};
  Column c = Column::from_int64("x", v);
  EXPECT_EQ(c.stats().max, 3);
  c.mutable_int64()[1] = 99;
  EXPECT_EQ(c.stats().max, 99);
}

}  // namespace
}  // namespace eidb::storage
