#include "storage/dictionary.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace eidb::storage {
namespace {

TEST(Dictionary, BuildsSortedUnique) {
  const Dictionary d =
      Dictionary::build({"pear", "apple", "pear", "banana", "apple"});
  ASSERT_EQ(d.size(), 3);
  EXPECT_EQ(d.at(0), "apple");
  EXPECT_EQ(d.at(1), "banana");
  EXPECT_EQ(d.at(2), "pear");
}

TEST(Dictionary, CodeLookup) {
  const Dictionary d = Dictionary::build({"a", "b", "c"});
  EXPECT_EQ(d.code_of("a").value(), 0);
  EXPECT_EQ(d.code_of("c").value(), 2);
  EXPECT_FALSE(d.code_of("zz").has_value());
  EXPECT_FALSE(d.code_of("").has_value());
}

TEST(Dictionary, OrderPreservingCodes) {
  // Ordered encoding: string comparison == code comparison. This property
  // is what lets string range scans run on integer kernels.
  const Dictionary d = Dictionary::build({"delta", "alpha", "charlie", "bravo"});
  for (std::int32_t i = 0; i < d.size(); ++i)
    for (std::int32_t j = 0; j < d.size(); ++j)
      EXPECT_EQ(d.at(i) < d.at(j), i < j);
}

TEST(Dictionary, RangeBounds) {
  const Dictionary d = Dictionary::build({"b", "d", "f"});
  // lower_bound: first code >= s
  EXPECT_EQ(d.lower_bound("a"), 0);
  EXPECT_EQ(d.lower_bound("b"), 0);
  EXPECT_EQ(d.lower_bound("c"), 1);
  EXPECT_EQ(d.lower_bound("g"), 3);  // past the end
  // upper_bound: first code > s
  EXPECT_EQ(d.upper_bound("b"), 1);
  EXPECT_EQ(d.upper_bound("e"), 2);
  EXPECT_EQ(d.upper_bound("f"), 3);
}

TEST(Dictionary, BetweenPredicateViaCodes) {
  const Dictionary d = Dictionary::build({"ant", "bee", "cat", "dog", "eel"});
  // strings in ["b", "d"): codes [lower_bound(b), lower_bound(d))
  const std::int32_t lo = d.lower_bound("b");
  const std::int32_t hi = d.lower_bound("d");
  EXPECT_EQ(lo, 1);  // bee
  EXPECT_EQ(hi, 3);  // dog excluded
}

TEST(Dictionary, EmptyDictionary) {
  const Dictionary d = Dictionary::build({});
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0);
  EXPECT_FALSE(d.code_of("x").has_value());
  EXPECT_EQ(d.lower_bound("x"), 0);
}

TEST(Dictionary, PayloadBytes) {
  const Dictionary d = Dictionary::build({"aa", "bbb"});
  EXPECT_EQ(d.payload_bytes(), 5u);
}

TEST(Dictionary, RemapToTranslatesCodesAcrossDomains) {
  // Partially overlapping dictionaries: "ash"/"oak" exist only here,
  // "fir" only in the other — their codes must translate to -1 / never
  // appear, and shared values must land on the OTHER side's codes.
  const Dictionary mine = Dictionary::build({"ash", "birch", "elm", "oak"});
  const Dictionary other = Dictionary::build({"birch", "elm", "fir"});
  const auto remap = mine.remap_to(other);
  ASSERT_EQ(remap.size(), 4u);
  EXPECT_EQ(remap[0], -1);  // ash: absent
  EXPECT_EQ(remap[1], 0);   // birch
  EXPECT_EQ(remap[2], 1);   // elm
  EXPECT_EQ(remap[3], -1);  // oak: absent
}

TEST(Dictionary, RemapToIdenticalAndDisjointAndEmpty) {
  const Dictionary d = Dictionary::build({"a", "b", "c"});
  const auto self = d.remap_to(d);
  EXPECT_EQ(self, (std::vector<std::int32_t>{0, 1, 2}));
  const Dictionary disjoint = Dictionary::build({"x", "y"});
  EXPECT_EQ(d.remap_to(disjoint), (std::vector<std::int32_t>{-1, -1, -1}));
  const Dictionary empty = Dictionary::build({});
  EXPECT_EQ(d.remap_to(empty), (std::vector<std::int32_t>{-1, -1, -1}));
  EXPECT_TRUE(empty.remap_to(d).empty());
}

TEST(DoubleDictionary, BuildsSortedUniqueAndLooksUp) {
  const DoubleDictionary d =
      DoubleDictionary::build({2.5, -1.0, 2.5, 0.0, -1.0});
  ASSERT_EQ(d.size(), 3);
  EXPECT_EQ(d.at(0), -1.0);
  EXPECT_EQ(d.at(1), 0.0);
  EXPECT_EQ(d.at(2), 2.5);
  EXPECT_EQ(d.code_of(0.0).value(), 1);
  EXPECT_FALSE(d.code_of(7.0).has_value());
}

TEST(DoubleDictionary, NaNDisablesTheDictionary) {
  // NaN breaks the ordering invariant, so build() returns an empty
  // dictionary — the signal the executor uses to reject double join /
  // group keys on such columns.
  const DoubleDictionary d = DoubleDictionary::build(
      {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0});
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0);
}

TEST(DoubleDictionary, RemapToHandlesMissingValues) {
  const DoubleDictionary mine = DoubleDictionary::build({0.5, 1.5, 2.5});
  const DoubleDictionary other = DoubleDictionary::build({1.5, 2.5, 9.0});
  EXPECT_EQ(mine.remap_to(other), (std::vector<std::int32_t>{-1, 0, 1}));
}

}  // namespace
}  // namespace eidb::storage
