#include "storage/dictionary.hpp"

#include <gtest/gtest.h>

namespace eidb::storage {
namespace {

TEST(Dictionary, BuildsSortedUnique) {
  const Dictionary d =
      Dictionary::build({"pear", "apple", "pear", "banana", "apple"});
  ASSERT_EQ(d.size(), 3);
  EXPECT_EQ(d.at(0), "apple");
  EXPECT_EQ(d.at(1), "banana");
  EXPECT_EQ(d.at(2), "pear");
}

TEST(Dictionary, CodeLookup) {
  const Dictionary d = Dictionary::build({"a", "b", "c"});
  EXPECT_EQ(d.code_of("a").value(), 0);
  EXPECT_EQ(d.code_of("c").value(), 2);
  EXPECT_FALSE(d.code_of("zz").has_value());
  EXPECT_FALSE(d.code_of("").has_value());
}

TEST(Dictionary, OrderPreservingCodes) {
  // Ordered encoding: string comparison == code comparison. This property
  // is what lets string range scans run on integer kernels.
  const Dictionary d = Dictionary::build({"delta", "alpha", "charlie", "bravo"});
  for (std::int32_t i = 0; i < d.size(); ++i)
    for (std::int32_t j = 0; j < d.size(); ++j)
      EXPECT_EQ(d.at(i) < d.at(j), i < j);
}

TEST(Dictionary, RangeBounds) {
  const Dictionary d = Dictionary::build({"b", "d", "f"});
  // lower_bound: first code >= s
  EXPECT_EQ(d.lower_bound("a"), 0);
  EXPECT_EQ(d.lower_bound("b"), 0);
  EXPECT_EQ(d.lower_bound("c"), 1);
  EXPECT_EQ(d.lower_bound("g"), 3);  // past the end
  // upper_bound: first code > s
  EXPECT_EQ(d.upper_bound("b"), 1);
  EXPECT_EQ(d.upper_bound("e"), 2);
  EXPECT_EQ(d.upper_bound("f"), 3);
}

TEST(Dictionary, BetweenPredicateViaCodes) {
  const Dictionary d = Dictionary::build({"ant", "bee", "cat", "dog", "eel"});
  // strings in ["b", "d"): codes [lower_bound(b), lower_bound(d))
  const std::int32_t lo = d.lower_bound("b");
  const std::int32_t hi = d.lower_bound("d");
  EXPECT_EQ(lo, 1);  // bee
  EXPECT_EQ(hi, 3);  // dog excluded
}

TEST(Dictionary, EmptyDictionary) {
  const Dictionary d = Dictionary::build({});
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0);
  EXPECT_FALSE(d.code_of("x").has_value());
  EXPECT_EQ(d.lower_bound("x"), 0);
}

TEST(Dictionary, PayloadBytes) {
  const Dictionary d = Dictionary::build({"aa", "bbb"});
  EXPECT_EQ(d.payload_bytes(), 5u);
}

}  // namespace
}  // namespace eidb::storage
