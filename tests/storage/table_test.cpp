#include "storage/table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace eidb::storage {
namespace {

Schema sales_schema() {
  return Schema({{"id", TypeId::kInt64},
                 {"amount", TypeId::kDouble},
                 {"region", TypeId::kString}});
}

TEST(Schema, IndexLookup) {
  const Schema s = sales_schema();
  EXPECT_EQ(s.column_count(), 3u);
  EXPECT_EQ(s.index_of("amount"), 1u);
  EXPECT_TRUE(s.has_column("region"));
  EXPECT_FALSE(s.has_column("nope"));
  EXPECT_THROW((void)s.index_of("nope"), Error);
}

TEST(Schema, RejectsDuplicateNames) {
  EXPECT_THROW(Schema({{"a", TypeId::kInt32}, {"a", TypeId::kInt64}}), Error);
}

TEST(Table, InstallAndReadColumns) {
  Table t("sales", sales_schema());
  EXPECT_FALSE(t.complete());
  const std::vector<std::int64_t> ids = {1, 2, 3};
  const std::vector<double> amounts = {10.5, 20.0, 7.25};
  t.set_column(0, Column::from_int64("id", ids));
  t.set_column(1, Column::from_double("amount", amounts));
  t.set_column(2, Column::from_strings("region", {"eu", "us", "eu"}));
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.row_count(), 3u);
  EXPECT_DOUBLE_EQ(t.column("amount").double_data()[1], 20.0);
  EXPECT_EQ(t.column("region").value_at(2).as_string(), "eu");
}

TEST(Table, RejectsTypeMismatch) {
  Table t("t", sales_schema());
  const std::vector<std::int32_t> wrong = {1};
  EXPECT_THROW(t.set_column(0, Column::from_int32("id", wrong)), Error);
}

TEST(Table, RejectsLengthMismatch) {
  Table t("t", sales_schema());
  const std::vector<std::int64_t> ids = {1, 2, 3};
  const std::vector<double> amounts = {1.0};
  t.set_column(0, Column::from_int64("id", ids));
  EXPECT_THROW(t.set_column(1, Column::from_double("amount", amounts)), Error);
}

TEST(Table, ByteSizeSumsColumns) {
  Table t("t", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt32}}));
  const std::vector<std::int64_t> a = {1, 2, 3, 4};
  const std::vector<std::int32_t> b = {1, 2, 3, 4};
  t.set_column(0, Column::from_int64("a", a));
  t.set_column(1, Column::from_int32("b", b));
  EXPECT_EQ(t.byte_size(), 4u * 8 + 4u * 4);
}

TEST(Catalog, AddGetDrop) {
  Catalog cat;
  cat.add(Table("a", sales_schema()));
  cat.add(Table("b", sales_schema()));
  EXPECT_TRUE(cat.contains("a"));
  EXPECT_EQ(cat.get("b").name(), "b");
  EXPECT_EQ(cat.table_names().size(), 2u);
  cat.drop("a");
  EXPECT_FALSE(cat.contains("a"));
  EXPECT_THROW((void)cat.get("a"), Error);
  EXPECT_THROW(cat.drop("a"), Error);
}

TEST(Catalog, RejectsDuplicates) {
  Catalog cat;
  cat.add(Table("a", sales_schema()));
  EXPECT_THROW(cat.add(Table("a", sales_schema())), Error);
}

TEST(Table, ZoneMapCachedAndCorrect) {
  Table t("t", Schema({{"a", TypeId::kInt64}, {"s", TypeId::kString}}));
  std::vector<std::int64_t> a(1000);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<std::int64_t>(i);
  t.set_column(0, Column::from_int64("a", a));
  std::vector<std::string> s;
  for (std::size_t i = 0; i < a.size(); ++i)
    s.emplace_back(i < 500 ? "early" : "late");
  t.set_column(1, Column::from_strings("s", s));

  const ZoneMap& zm1 = t.zone_map(0, 100);
  const ZoneMap& zm2 = t.zone_map(0, 100);
  EXPECT_EQ(&zm1, &zm2);  // cached instance
  EXPECT_EQ(zm1.zone_count(), 10u);
  EXPECT_EQ(zm1.zone(3).min, 300);

  // String columns are mapped over dictionary codes.
  const ZoneMap& zs = t.zone_map(1, 500);
  EXPECT_EQ(zs.zone_count(), 2u);
  EXPECT_EQ(zs.zone(0).min, 0);  // "early"
  EXPECT_EQ(zs.zone(1).max, 1);  // "late"

  // Different block size = different cache entry.
  const ZoneMap& zm3 = t.zone_map(0, 200);
  EXPECT_NE(&zm1, &zm3);
  EXPECT_EQ(zm3.zone_count(), 5u);
}

TEST(Table, ZoneMapOnDoubleThrows) {
  Table t("t", Schema({{"d", TypeId::kDouble}}));
  const std::vector<double> d = {1.0};
  t.set_column(0, Column::from_double("d", d));
  EXPECT_THROW((void)t.zone_map(0, 10), Error);
}

TEST(Catalog, ReferencesStayValidAfterAdd) {
  Catalog cat;
  Table& a = cat.add(Table("a", sales_schema()));
  for (int i = 0; i < 50; ++i)
    cat.add(Table("t" + std::to_string(i), sales_schema()));
  EXPECT_EQ(a.name(), "a");  // unique_ptr storage: no reallocation of Table
}

}  // namespace
}  // namespace eidb::storage
