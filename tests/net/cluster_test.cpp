#include "net/cluster.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace eidb::net {
namespace {

TEST(Cluster, ConstructsFullyConnected) {
  Cluster c(4, hw::MachineSpec::server(), hw::LinkSpec::tengbe());
  EXPECT_EQ(c.node_count(), 4u);
  EXPECT_EQ(c.link(0, 3).name, "10gbe");
  EXPECT_EQ(c.machine(2).cores, 8);
}

TEST(Cluster, SendAccountsTimeAndEnergy) {
  Cluster c(2, hw::MachineSpec::server(), hw::LinkSpec::tengbe());
  const auto t = c.send(0, 1, 1e9);
  EXPECT_GT(t.time_s, 0.0);
  EXPECT_GT(t.energy_j, 0.0);
  const LinkStats& s = c.stats(0, 1);
  EXPECT_EQ(s.messages, 1u);
  EXPECT_DOUBLE_EQ(s.bytes, 1e9);
  EXPECT_DOUBLE_EQ(s.energy_j, t.energy_j);
  // Reverse direction untouched.
  EXPECT_EQ(c.stats(1, 0).messages, 0u);
}

TEST(Cluster, HeterogeneousLinks) {
  Cluster c(3, hw::MachineSpec::server(), hw::LinkSpec::gbe());
  c.set_link(0, 1, hw::LinkSpec::qpi());
  const auto fast = c.send(0, 1, 1e8);
  const auto slow = c.send(0, 2, 1e8);
  EXPECT_LT(fast.time_s, slow.time_s);
  EXPECT_LT(fast.energy_j, slow.energy_j);
}

TEST(Cluster, TotalWireEnergySums) {
  Cluster c(3, hw::MachineSpec::server(), hw::LinkSpec::tengbe());
  (void)c.send(0, 1, 1e8);
  (void)c.send(1, 2, 1e8);
  (void)c.send(2, 0, 1e8);
  EXPECT_NEAR(c.total_wire_energy_j(),
              3 * hw::LinkSpec::tengbe().transfer_energy_j(1e8), 1e-12);
}

TEST(Cluster, SelfSendRejected) {
  Cluster c(2, hw::MachineSpec::server(), hw::LinkSpec::tengbe());
  EXPECT_DEATH((void)c.send(1, 1, 10), "precondition");
}

// The whole diagonal is rejected, not just send: there is no self-link to
// read or replace (slots exist only for dense indexing).
TEST(Cluster, SelfLinkReadRejected) {
  Cluster c(2, hw::MachineSpec::server(), hw::LinkSpec::tengbe());
  EXPECT_DEATH((void)c.link(0, 0), "precondition");
}

TEST(Cluster, SelfLinkReplaceRejected) {
  Cluster c(2, hw::MachineSpec::server(), hw::LinkSpec::tengbe());
  EXPECT_DEATH(c.set_link(1, 1, hw::LinkSpec::qpi()), "precondition");
}

}  // namespace
}  // namespace eidb::net
