#include "net/wire_format.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace eidb::net {
namespace {

TEST(WireFormat, RoundTripsTypedColumns) {
  WireTable t;
  t.columns.push_back(WireColumn::of_int64(
      {0, -1, std::numeric_limits<std::int64_t>::min(),
       std::numeric_limits<std::int64_t>::max(), 42}));
  t.columns.push_back(
      WireColumn::of_double({0.0, -0.0, 3.25, -1e300, 5e-324}));
  t.columns.push_back(WireColumn::of_strings(
      {"", "a", "exactly8", "longer than a word", "\xff\x01 binary"}));
  const auto payload = encode_wire(t);
  const WireTable back = decode_wire(payload);
  ASSERT_EQ(back.columns.size(), 3u);
  ASSERT_EQ(back.row_count(), 5u);
  EXPECT_EQ(back.columns[0].kind, WireColumn::Kind::kInt64);
  EXPECT_EQ(back.columns[0].i64, t.columns[0].i64);
  EXPECT_EQ(back.columns[1].kind, WireColumn::Kind::kDouble);
  for (std::size_t i = 0; i < 5; ++i) {
    // Bit-pattern equality, not value equality: -0.0 must survive.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.columns[1].f64[i]),
              std::bit_cast<std::uint64_t>(t.columns[1].f64[i]));
  }
  EXPECT_EQ(back.columns[2].kind, WireColumn::Kind::kString);
  EXPECT_EQ(back.columns[2].str, t.columns[2].str);
}

TEST(WireFormat, RoundTripsEmptyShapes) {
  // No columns at all (an empty shard's message)...
  const WireTable none = decode_wire(encode_wire(WireTable{}));
  EXPECT_EQ(none.columns.size(), 0u);
  EXPECT_EQ(none.row_count(), 0u);
  // ...and columns with zero rows (an empty result still has a schema).
  WireTable t;
  t.columns.push_back(WireColumn::of_int64({}));
  t.columns.push_back(WireColumn::of_strings({}));
  const WireTable back = decode_wire(encode_wire(t));
  ASSERT_EQ(back.columns.size(), 2u);
  EXPECT_EQ(back.row_count(), 0u);
  EXPECT_EQ(back.columns[1].kind, WireColumn::Kind::kString);
}

TEST(WireFormat, RejectsRaggedColumns) {
  WireTable t;
  t.columns.push_back(WireColumn::of_int64({1, 2, 3}));
  t.columns.push_back(WireColumn::of_double({1.0}));
  EXPECT_THROW((void)encode_wire(t), Error);
}

TEST(WireFormat, RejectsTruncatedStreams) {
  WireTable t;
  t.columns.push_back(WireColumn::of_int64({7, 8, 9}));
  t.columns.push_back(WireColumn::of_strings({"x", "yy", "zzz"}));
  const auto payload = encode_wire(t);
  // Every proper prefix must throw — never crash, never return garbage.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(
        (void)decode_wire(std::span(payload.data(), len)), Error)
        << "prefix " << len;
  }
  EXPECT_NO_THROW((void)decode_wire(payload));
}

TEST(WireFormat, RejectsCorruptHeaders) {
  WireTable t;
  t.columns.push_back(WireColumn::of_int64({1, 2}));
  auto payload = encode_wire(t);
  // Implausible column/row counts must be rejected up front rather than
  // driving a multi-gigabyte allocation.
  auto bad = payload;
  bad[0] = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW((void)decode_wire(bad), Error);
  bad = payload;
  bad[0] = -1;
  EXPECT_THROW((void)decode_wire(bad), Error);
}

}  // namespace
}  // namespace eidb::net
