#include "net/exchange.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::net {
namespace {

std::vector<std::int64_t> small_domain(std::size_t n) {
  Pcg32 rng(5);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.next_bounded(256);
  return v;
}

const hw::MachineSpec kMachine = hw::MachineSpec::server();

TEST(Exchange, ModeledPlainHasNoCompressionGain) {
  const auto payload = small_domain(10000);
  const auto r = evaluate_exchange_modeled(payload, storage::CodecKind::kPlain,
                                           hw::LinkSpec::tengbe(), kMachine,
                                           kMachine.dvfs.fastest());
  EXPECT_GE(r.wire_bytes, r.raw_bytes);  // header makes it slightly bigger
  EXPECT_NEAR(r.compression_ratio(), 1.0, 0.01);
}

TEST(Exchange, ModeledCodecShrinksWireBytes) {
  const auto payload = small_domain(10000);
  const auto r = evaluate_exchange_modeled(
      payload, storage::CodecKind::kForBitpack, hw::LinkSpec::tengbe(),
      kMachine, kMachine.dvfs.fastest());
  EXPECT_LT(r.wire_bytes, r.raw_bytes / 4);  // 8-bit domain in 64-bit slots
  EXPECT_GT(r.compression_ratio(), 4.0);
}

TEST(Exchange, SlowLinkFavorsCompressionInTime) {
  const auto payload = small_domain(100000);
  const auto plain = evaluate_exchange_modeled(
      payload, storage::CodecKind::kPlain, hw::LinkSpec::gbe(), kMachine,
      kMachine.dvfs.fastest());
  const auto packed = evaluate_exchange_modeled(
      payload, storage::CodecKind::kForBitpack, hw::LinkSpec::gbe(), kMachine,
      kMachine.dvfs.fastest());
  EXPECT_LT(packed.total_time_s(), plain.total_time_s());
}

TEST(Exchange, FastLinkFavorsPlainInTime) {
  const auto payload = small_domain(100000);
  const auto plain = evaluate_exchange_modeled(
      payload, storage::CodecKind::kPlain, hw::LinkSpec::qpi(), kMachine,
      kMachine.dvfs.fastest());
  const auto lz = evaluate_exchange_modeled(payload, storage::CodecKind::kLz,
                                            hw::LinkSpec::qpi(), kMachine,
                                            kMachine.dvfs.fastest());
  // On a 16 GB/s link, LZ's ~25 cycles/value cannot pay for itself.
  EXPECT_LT(plain.total_time_s(), lz.total_time_s());
}

TEST(Exchange, MeasuredRoundTripsAndAccounts) {
  const auto payload = small_domain(50000);
  const auto r = evaluate_exchange_measured(
      payload, storage::CodecKind::kForBitpack, hw::LinkSpec::tengbe(),
      kMachine, kMachine.dvfs.fastest());
  EXPECT_GT(r.encode_s, 0.0);
  EXPECT_GT(r.decode_s, 0.0);
  EXPECT_GT(r.cpu_energy_j, 0.0);
  EXPECT_GT(r.wire_energy_j, 0.0);
}

TEST(Exchange, PayloadSurvivesEndToEnd) {
  const auto payload = small_domain(20000);
  for (const auto kind : storage::all_codec_kinds()) {
    ExchangeResult r;
    const auto back =
        exchange_payload(payload, kind, hw::LinkSpec::tengbe(), kMachine,
                         kMachine.dvfs.fastest(), r);
    EXPECT_EQ(back, payload) << storage::codec_name(kind);
    EXPECT_EQ(r.codec, kind);
  }
}

TEST(Exchange, EmptyPayload) {
  const std::vector<std::int64_t> payload;
  ExchangeResult r;
  const auto back =
      exchange_payload(payload, storage::CodecKind::kLz,
                       hw::LinkSpec::tengbe(), kMachine,
                       kMachine.dvfs.fastest(), r);
  EXPECT_TRUE(back.empty());
}

TEST(Exchange, EnergyDecisionCanDifferFromTimeDecision) {
  // On the HAEC wireless link (high nJ/byte, decent bandwidth) compression
  // may lose on time (CPU added) while winning on energy (radio saved) —
  // the "independent cost factors" the paper highlights. Verify both
  // metrics are computed independently at least.
  const auto payload = small_domain(100000);
  const auto plain = evaluate_exchange_modeled(
      payload, storage::CodecKind::kPlain, hw::LinkSpec::haec_wireless(),
      kMachine, kMachine.dvfs.fastest());
  const auto packed = evaluate_exchange_modeled(
      payload, storage::CodecKind::kForBitpack, hw::LinkSpec::haec_wireless(),
      kMachine, kMachine.dvfs.fastest());
  EXPECT_LT(packed.wire_energy_j, plain.wire_energy_j);
  EXPECT_GT(packed.cpu_energy_j, plain.cpu_energy_j);
}

}  // namespace
}  // namespace eidb::net
