#include "net/distributed_agg.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::net {
namespace {

struct Partitions {
  std::vector<std::vector<std::int64_t>> keys;
  std::vector<std::vector<std::int64_t>> values;

  [[nodiscard]] std::vector<std::span<const std::int64_t>> key_spans() const {
    std::vector<std::span<const std::int64_t>> s;
    for (const auto& k : keys) s.emplace_back(k);
    return s;
  }
  [[nodiscard]] std::vector<std::span<const std::int64_t>> value_spans()
      const {
    std::vector<std::span<const std::int64_t>> s;
    for (const auto& v : values) s.emplace_back(v);
    return s;
  }
};

Partitions make_partitions(std::size_t nodes, std::size_t rows_per_node,
                           std::uint32_t key_domain, std::uint64_t seed) {
  Partitions p;
  p.keys.resize(nodes);
  p.values.resize(nodes);
  Pcg32 rng(seed);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (std::size_t i = 0; i < rows_per_node; ++i) {
      p.keys[n].push_back(rng.next_bounded(key_domain));
      p.values[n].push_back(rng.next_in_range(-100, 100));
    }
  }
  return p;
}

std::vector<exec::GroupRow> centralized_reference(const Partitions& p) {
  std::vector<std::int64_t> all_keys, all_values;
  for (std::size_t n = 0; n < p.keys.size(); ++n) {
    all_keys.insert(all_keys.end(), p.keys[n].begin(), p.keys[n].end());
    all_values.insert(all_values.end(), p.values[n].begin(),
                      p.values[n].end());
  }
  BitVector sel(all_keys.size());
  sel.set_all();
  return exec::group_aggregate(all_keys, all_values, sel);
}

TEST(DistributedAgg, MatchesCentralizedReference) {
  Cluster cluster(4, hw::MachineSpec::server(), hw::LinkSpec::tengbe());
  const Partitions p = make_partitions(4, 20000, 200, 1);
  DistributedAggReport report;
  const auto rows = distributed_group_aggregate(
      cluster, p.key_spans(), p.value_spans(), opt::Objective::kTime, report);
  const auto want = centralized_reference(p);
  ASSERT_EQ(rows.size(), want.size());
  for (std::size_t g = 0; g < want.size(); ++g) {
    EXPECT_EQ(rows[g].key, want[g].key);
    EXPECT_EQ(rows[g].agg.count, want[g].agg.count);
    EXPECT_EQ(rows[g].agg.sum, want[g].agg.sum);
  }
}

TEST(DistributedAgg, ReportAccountsWork) {
  Cluster cluster(3, hw::MachineSpec::server(), hw::LinkSpec::gbe());
  const Partitions p = make_partitions(3, 50000, 5000, 2);
  DistributedAggReport report;
  (void)distributed_group_aggregate(cluster, p.key_spans(), p.value_spans(),
                                    opt::Objective::kTime, report);
  EXPECT_GT(report.local_compute_s, 0.0);
  EXPECT_GT(report.exchange_s, 0.0);
  EXPECT_GT(report.wire_bytes, 0.0);
  EXPECT_GT(report.wire_energy_j, 0.0);
  EXPECT_EQ(report.codec_per_node.size(), 3u);
  // Wire stats visible on the cluster too.
  EXPECT_GT(cluster.stats(1, 0).bytes, 0.0);
  EXPECT_GT(cluster.stats(2, 0).bytes, 0.0);
  EXPECT_EQ(cluster.stats(0, 1).messages, 0u);  // partials flow inward only
}

TEST(DistributedAgg, SlowLinksCompressPartials) {
  // Group keys are small-domain: partial triples compress well, and 1GbE
  // is slow enough that the advisor should not pick plain.
  Cluster cluster(2, hw::MachineSpec::server(), hw::LinkSpec::gbe());
  const Partitions p = make_partitions(2, 200000, 50000, 3);
  DistributedAggReport report;
  (void)distributed_group_aggregate(cluster, p.key_spans(), p.value_spans(),
                                    opt::Objective::kTime, report);
  EXPECT_NE(report.codec_per_node[1], storage::CodecKind::kPlain);
  EXPECT_LT(report.wire_bytes, 50000.0 * 3 * 8);  // beat raw triples
}

TEST(DistributedAgg, SingleNodeDegeneratesToLocal) {
  Cluster cluster(1, hw::MachineSpec::server(), hw::LinkSpec::qpi());
  const Partitions p = make_partitions(1, 1000, 10, 4);
  DistributedAggReport report;
  const auto rows = distributed_group_aggregate(
      cluster, p.key_spans(), p.value_spans(), opt::Objective::kTime, report);
  EXPECT_EQ(report.wire_bytes, 0.0);
  EXPECT_EQ(rows.size(), centralized_reference(p).size());
}

TEST(DistributedAgg, EmptyPartitionsHandled) {
  Cluster cluster(3, hw::MachineSpec::server(), hw::LinkSpec::tengbe());
  Partitions p;
  p.keys.resize(3);
  p.values.resize(3);
  p.keys[1] = {7, 7};
  p.values[1] = {1, 2};
  DistributedAggReport report;
  const auto rows = distributed_group_aggregate(
      cluster, p.key_spans(), p.value_spans(), opt::Objective::kTime, report);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, 7);
  EXPECT_EQ(rows[0].agg.sum, 3);
}

}  // namespace
}  // namespace eidb::net
