// Parity between the single-pass vectorized aggregation pipeline (the
// default) and the preserved row-at-a-time reference path, plus the
// single-pass accounting guarantees: a multi-aggregate group-by charges
// each input column to the DRAM ledger exactly once and never rescans a
// key column for min/max.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "query/executor.hpp"
#include "sched/thread_pool.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

using storage::Catalog;
using storage::Column;
using storage::Schema;
using storage::Table;
using storage::TypeId;
using storage::Value;

/// facts(k32 int32, k64 int64, tag string, v64 int64, v32 int32, d double)
/// — random contents large enough to hit full and partial selection words.
Catalog make_catalog(std::size_t rows = 20'000, std::uint64_t seed = 99) {
  Catalog cat;
  Table& t = cat.add(Table("facts", Schema({{"k32", TypeId::kInt32},
                                            {"k64", TypeId::kInt64},
                                            {"tag", TypeId::kString},
                                            {"v64", TypeId::kInt64},
                                            {"v32", TypeId::kInt32},
                                            {"d", TypeId::kDouble}})));
  Pcg32 rng(seed);
  std::vector<std::int32_t> k32, v32;
  std::vector<std::int64_t> k64, v64;
  std::vector<double> d;
  std::vector<std::string> tag;
  const char* tags[] = {"alpha", "beta", "gamma", "delta"};
  for (std::size_t i = 0; i < rows; ++i) {
    k32.push_back(static_cast<std::int32_t>(rng.next_in_range(0, 19)));
    k64.push_back(rng.next_in_range(-8, 8));
    tag.emplace_back(tags[rng.next_bounded(4)]);
    v64.push_back(rng.next_in_range(-10'000, 10'000));
    v32.push_back(static_cast<std::int32_t>(rng.next_in_range(-500, 500)));
    d.push_back(rng.next_double() * 40 - 20);
  }
  t.set_column(0, Column::from_int32("k32", k32));
  t.set_column(1, Column::from_int64("k64", k64));
  t.set_column(2, Column::from_strings("tag", tag));
  t.set_column(3, Column::from_int64("v64", v64));
  t.set_column(4, Column::from_int32("v32", v32));
  t.set_column(5, Column::from_double("d", d));
  return cat;
}

void expect_results_match(const QueryResult& want, const QueryResult& got) {
  ASSERT_EQ(want.column_names(), got.column_names());
  ASSERT_EQ(want.row_count(), got.row_count());
  for (std::size_t r = 0; r < want.row_count(); ++r) {
    for (std::size_t c = 0; c < want.column_count(); ++c) {
      const Value& w = want.at(r, c);
      const Value& g = got.at(r, c);
      if (w.is_double() || g.is_double()) {
        ASSERT_EQ(w.is_double(), g.is_double()) << "row " << r << " col " << c;
        EXPECT_NEAR(w.as_double(), g.as_double(),
                    1e-6 * (1.0 + std::abs(w.as_double())))
            << "row " << r << " col " << c;
      } else {
        EXPECT_EQ(w, g) << "row " << r << " col " << c;
      }
    }
  }
}

/// Runs `plan` on both aggregation paths and checks the results match.
void expect_parity(const Catalog& cat, const LogicalPlan& plan,
                   ExecOptions options = {}) {
  Executor ex(cat);
  ExecStats legacy_stats, vec_stats;
  options.agg_path = AggPath::kRowAtATime;
  const QueryResult want = ex.execute(plan, legacy_stats, options);
  options.agg_path = AggPath::kVectorized;
  const QueryResult got = ex.execute(plan, vec_stats, options);
  expect_results_match(want, got);
}

TEST(PipelineParity, GlobalMultiAggregate) {
  const Catalog cat = make_catalog();
  expect_parity(cat, QueryBuilder("facts")
                         .filter_int("v64", -5'000, 5'000)
                         .aggregate(AggOp::kCount)
                         .aggregate(AggOp::kSum, "v64")
                         .aggregate(AggOp::kMin, "v64")
                         .aggregate(AggOp::kMax, "v32")
                         .aggregate(AggOp::kAvg, "d")
                         .build());
}

TEST(PipelineParity, SingleKeyGroupBys) {
  const Catalog cat = make_catalog();
  for (const char* key : {"k32", "k64", "tag"}) {
    expect_parity(cat, QueryBuilder("facts")
                           .group_by(key)
                           .aggregate(AggOp::kCount)
                           .aggregate(AggOp::kSum, "v64")
                           .aggregate(AggOp::kMin, "v32")
                           .aggregate(AggOp::kAvg, "d")
                           .build());
  }
}

TEST(PipelineParity, MultiKeyGroupBy) {
  const Catalog cat = make_catalog();
  expect_parity(cat, QueryBuilder("facts")
                         .filter_int("v32", -250, 250)
                         .group_by("tag")
                         .group_by("k64")
                         .aggregate(AggOp::kCount)
                         .aggregate(AggOp::kSum, "v64")
                         .aggregate(AggOp::kMax, "d")
                         .build());
}

TEST(PipelineParity, ExpressionAggregates) {
  const Catalog cat = make_catalog();
  const auto expr =
      exec::Expr::binary(exec::ExprOp::kMul, exec::Expr::column("v64"),
                         exec::Expr::column("d"));
  expect_parity(cat, QueryBuilder("facts")
                         .filter_int("k32", 2, 17)
                         .group_by("k32")
                         .aggregate_expr(AggOp::kSum, expr)
                         .aggregate_expr(AggOp::kAvg, expr)
                         .aggregate(AggOp::kCount)
                         .build());
  expect_parity(cat, QueryBuilder("facts")
                         .aggregate_expr(AggOp::kSum, expr)
                         .aggregate_expr(AggOp::kMin, expr)
                         .build());
}

TEST(PipelineParity, EmptySelection) {
  const Catalog cat = make_catalog();
  // v64 never exceeds 10'000 -> empty selection on both paths.
  expect_parity(cat, QueryBuilder("facts")
                         .filter_int("v64", 50'000, 60'000)
                         .aggregate(AggOp::kCount)
                         .aggregate(AggOp::kSum, "v64")
                         .aggregate(AggOp::kMin, "v64")
                         .aggregate(AggOp::kAvg, "d")
                         .build());
  expect_parity(cat, QueryBuilder("facts")
                         .filter_int("v64", 50'000, 60'000)
                         .group_by("k32")
                         .aggregate(AggOp::kSum, "v64")
                         .build());
}

TEST(PipelineParity, AllScanVariants) {
  const Catalog cat = make_catalog();
  const auto plan = QueryBuilder("facts")
                        .filter_int("v64", -2'000, 7'000)
                        .filter_int("v32", -400, 100)
                        .group_by("k32")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "v64")
                        .build();
  for (const auto variant :
       {exec::ScanVariant::kAuto, exec::ScanVariant::kBranching,
        exec::ScanVariant::kPredicated, exec::ScanVariant::kAvx2,
        exec::ScanVariant::kAvx512}) {
    ExecOptions options;
    options.scan_variant = variant;
    expect_parity(cat, plan, options);
  }
}

TEST(PipelineParity, ParallelPoolMatchesSerial) {
  const Catalog cat = make_catalog(100'000);
  const auto plan = QueryBuilder("facts")
                        .group_by("k32")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "v64")
                        .aggregate(AggOp::kMin, "v32")
                        .aggregate(AggOp::kAvg, "d")
                        .build();
  Executor ex(cat);
  ExecStats serial_stats, par_stats;
  const QueryResult serial = ex.execute(plan, serial_stats);
  sched::ThreadPool pool(4);
  ExecOptions options;
  options.pool = &pool;
  options.parallel_agg_min_rows = 1;  // force the parallel path
  const QueryResult par = ex.execute(plan, par_stats, options);
  expect_results_match(serial, par);
}

TEST(PipelineParity, OrderedMaskedPredicatesMatchUnordered) {
  const Catalog cat = make_catalog();
  const auto plan = QueryBuilder("facts")
                        .filter_int("v64", -9'000, 9'000)   // wide
                        .filter_int("k32", 3, 4)            // selective
                        .filter_double("d", -10.0, 15.0)    // medium
                        .group_by("k32")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "v64")
                        .build();
  Executor ex(cat);
  ExecStats ordered_stats, unordered_stats;
  ExecOptions unordered;
  unordered.order_predicates = false;
  const QueryResult want = ex.execute(plan, unordered_stats, unordered);
  const QueryResult got = ex.execute(plan, ordered_stats);
  expect_results_match(want, got);
  // Masked later predicates touch at most what full rescans would.
  EXPECT_LE(ordered_stats.tuples_scanned, unordered_stats.tuples_scanned);
  EXPECT_LE(ordered_stats.work.dram_bytes, unordered_stats.work.dram_bytes);
}

TEST(SinglePassAccounting, EachInputColumnChargedExactlyOnce) {
  const Catalog cat = make_catalog();
  const Table& t = cat.get("facts");
  // Three aggregates over v64 + one over v32, grouped by k32, no
  // predicates: the ledger must show exactly one read of each column.
  const auto plan = QueryBuilder("facts")
                        .group_by("k32")
                        .aggregate(AggOp::kSum, "v64")
                        .aggregate(AggOp::kMin, "v64")
                        .aggregate(AggOp::kAvg, "v64")
                        .aggregate(AggOp::kMax, "v32")
                        .aggregate(AggOp::kCount)
                        .build();
  Executor ex(cat);
  ExecStats stats;
  (void)ex.execute(plan, stats);
  // Each column is charged once, at the bytes the pass actually streams:
  // the packed image for encoded columns, the plain array otherwise.
  const double want = static_cast<double>(t.column("k32").scan_byte_size() +
                                          t.column("v64").scan_byte_size() +
                                          t.column("v32").scan_byte_size());
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes, want);

  // The same query with encodings disabled charges the plain widths once.
  ExecStats plain_stats;
  ExecOptions plain;
  plain.use_encodings = false;
  (void)ex.execute(plan, plain_stats, plain);
  EXPECT_DOUBLE_EQ(plain_stats.work.dram_bytes,
                   static_cast<double>(t.column("k32").byte_size() +
                                       t.column("v64").byte_size() +
                                       t.column("v32").byte_size()));
  EXPECT_LE(stats.work.dram_bytes, plain_stats.work.dram_bytes);
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes + stats.dram_bytes_saved,
                   plain_stats.work.dram_bytes);

  // The row-at-a-time path pays one pass per AggSpec (plus key rescans).
  ExecStats legacy_stats;
  ExecOptions legacy;
  legacy.agg_path = AggPath::kRowAtATime;
  (void)ex.execute(plan, legacy_stats, legacy);
  EXPECT_GT(legacy_stats.work.dram_bytes, stats.work.dram_bytes);
}

TEST(SinglePassAccounting, StatsPruningSkipsDecidedPredicates) {
  const Catalog cat = make_catalog();
  // k32 in [0, 19]: the predicate covers the whole domain, so cached
  // stats prove every row matches — nothing is scanned or charged.
  const auto all = QueryBuilder("facts")
                       .filter_int("k32", 0, 100)
                       .aggregate(AggOp::kCount)
                       .build();
  Executor ex(cat);
  ExecStats stats;
  const QueryResult r = ex.execute(all, stats);
  EXPECT_EQ(r.at(0, 0).as_int(), 20'000);
  EXPECT_EQ(stats.tuples_scanned, 0u);
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes, 0.0);

  // Disjoint range: statically empty, also without touching the data.
  const auto none = QueryBuilder("facts")
                        .filter_int("k32", 1'000, 2'000)
                        .aggregate(AggOp::kCount)
                        .build();
  ExecStats none_stats;
  const QueryResult rn = ex.execute(none, none_stats);
  EXPECT_EQ(rn.at(0, 0).as_int(), 0);
  EXPECT_EQ(none_stats.tuples_scanned, 0u);
}

TEST(PipelineParity, GroupByHashLikeInt64Keys) {
  // Key spread overflows a signed domain computation: the vectorized path
  // must fall back to hashing (the legacy path has UB here, so expected
  // values are computed directly).
  constexpr std::int64_t kLo = -5'000'000'000'000'000'000LL;
  constexpr std::int64_t kHi = 5'000'000'000'000'000'000LL;
  Catalog cat;
  Table& t = cat.add(Table(
      "wide", Schema({{"id", TypeId::kInt64}, {"v", TypeId::kInt64}})));
  std::vector<std::int64_t> ids, vs;
  for (std::int64_t i = 0; i < 90; ++i) {
    ids.push_back(i % 3 == 0 ? kLo : (i % 3 == 1 ? 0 : kHi));
    vs.push_back(i);
  }
  t.set_column(0, Column::from_int64("id", ids));
  t.set_column(1, Column::from_int64("v", vs));
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("wide")
                        .group_by("id")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "v")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.at(0, 0).as_int(), kLo);
  EXPECT_EQ(r.at(1, 0).as_int(), 0);
  EXPECT_EQ(r.at(2, 0).as_int(), kHi);
  for (std::size_t g = 0; g < 3; ++g) EXPECT_EQ(r.at(g, 1).as_int(), 30);
  // sum over i ≡ 0 (mod 3), i in [0, 90): 0+3+...+87 = 30*87/2... check
  // directly: sum_{j=0..29} (3j + offset) = 3*435 + 30*offset.
  EXPECT_EQ(r.at(0, 2).as_int(), 3 * 435 + 30 * 0);
  EXPECT_EQ(r.at(1, 2).as_int(), 3 * 435 + 30 * 1);
  EXPECT_EQ(r.at(2, 2).as_int(), 3 * 435 + 30 * 2);
}

TEST(ColumnStatsCache, MatchesDataAndInvalidates) {
  std::vector<std::int64_t> v = {5, -3, 12, 7, -3};
  Column c = Column::from_int64("x", v);
  const storage::ColumnStats& s = c.stats();
  EXPECT_EQ(s.rows, 5u);
  EXPECT_EQ(s.min, -3);
  EXPECT_EQ(s.max, 12);
  EXPECT_EQ(s.domain(), 16);
  EXPECT_NEAR(c.stats().range_selectivity(std::int64_t{-3}, std::int64_t{12}),
              1.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      c.stats().range_selectivity(std::int64_t{100}, std::int64_t{200}), 0.0);

  // Appends invalidate and the next read recomputes.
  c.append_int64(40);
  EXPECT_EQ(c.stats().max, 40);
  EXPECT_EQ(c.stats().rows, 6u);
}

}  // namespace
}  // namespace eidb::query
