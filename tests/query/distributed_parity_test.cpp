// Differential harness for sharded execution: the SAME parity matrix the
// compressed suite runs (parity_matrix.hpp) executes single-node and then
// sharded at shard counts {1, 2, 4, 8}, and every result must be
// BIT-IDENTICAL — partial-merge mode by construction of the merge order,
// gather mode by construction of the preset selection. The wire ledger is
// held to its contract: all wire metrics are zero at shard_count == 1
// (shard 0 lives on the coordinator), per-operator work deltas — DRAM and
// net bytes alike — sum to the query totals byte-exactly, and the modeled
// link joules land under energy::kWireScope on the Database ledger.
#include <gtest/gtest.h>

#include "parity_matrix.hpp"

#include <string>
#include <vector>

#include "core/database.hpp"
#include "energy/ledger.hpp"
#include "query/executor.hpp"
#include "query/physical_plan.hpp"
#include "sched/thread_pool.hpp"
#include "storage/column.hpp"
#include "util/assert.hpp"

namespace eidb::query {
namespace {

using parity::expect_identical;
using parity::make_catalog;
using parity::query_matrix;
using storage::Catalog;

/// Summing each operator's work delta must reproduce the query totals
/// byte-exactly: every charge — shard-local scan cycles, exchange wire
/// bytes, merge CPU — lands inside exactly one operator scope.
void expect_operator_sums_match(const ExecStats& stats,
                                const std::string& label) {
  hw::Work sum;
  for (const OperatorStats& op : stats.operators) sum += op.work;
  EXPECT_DOUBLE_EQ(sum.cpu_cycles, stats.work.cpu_cycles) << label;
  EXPECT_DOUBLE_EQ(sum.dram_bytes, stats.work.dram_bytes) << label;
  EXPECT_DOUBLE_EQ(sum.net_bytes, stats.work.net_bytes) << label;
}

/// The full matrix, single-node vs sharded, at every shard count.
void run_sharded_matrix(Catalog& cat, std::size_t shards,
                        const std::string& config,
                        sched::ThreadPool* pool = nullptr,
                        const std::string& partition_key = "u32") {
  cat.get("facts").build_partitions(partition_key, shards);
  Executor ex(cat);
  for (auto& [name, plan] : query_matrix()) {
    ExecOptions single;
    ExecOptions dist;
    dist.shard_count = shards;
    dist.pool = pool;
    ExecStats sstats, dstats;
    const QueryResult want = ex.execute(plan, sstats, single);
    const QueryResult got = ex.execute(plan, dstats, dist);
    const std::string label = config + "/" + name;
    expect_identical(want, got, label);
    EXPECT_EQ(dstats.shards_executed, shards) << label;
    EXPECT_EQ(sstats.shards_executed, 0u) << label;
    expect_operator_sums_match(dstats, label);
    if (shards == 1) {
      // Shard 0 IS the coordinator: nothing crosses a link.
      EXPECT_EQ(dstats.wire_messages, 0u) << label;
      EXPECT_DOUBLE_EQ(dstats.work.net_bytes, 0.0) << label;
      EXPECT_DOUBLE_EQ(dstats.wire_time_s, 0.0) << label;
      EXPECT_DOUBLE_EQ(dstats.wire_energy_j, 0.0) << label;
    } else {
      // Shards 1..S-1 each ship at least their result/row-id payload.
      EXPECT_GE(dstats.wire_messages, shards - 1) << label;
    }
  }
}

TEST(DistributedParity, MatrixBitIdenticalAtEveryShardCount) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    Catalog cat = make_catalog(7);
    run_sharded_matrix(cat, shards, "shards" + std::to_string(shards));
  }
}

TEST(DistributedParity, PoolFanOutMatchesSerialShards) {
  // Shards fan out over the worker pool; results must not depend on the
  // interleaving (per-shard stats fold in shard order, not finish order).
  Catalog cat = make_catalog(1337);
  sched::ThreadPool pool(4);
  run_sharded_matrix(cat, 8, "pool+shards8", &pool);
}

TEST(DistributedParity, PartitionKeyDoesNotAffectResults) {
  // The hash key only decides row placement. String and double keys hash
  // their dictionary codes; every choice must reproduce the single-node
  // answer for both partial-merge and gather shapes.
  for (const std::string key : {"tag", "wide64", "dk"}) {
    Catalog cat = make_catalog(90210);
    run_sharded_matrix(cat, 4, "key=" + key + "/shards4", nullptr, key);
  }
}

TEST(DistributedParity, WireChargesAppearWhenShardsShip) {
  Catalog cat = make_catalog(7);
  cat.get("facts").build_partitions("u32", 4);
  Executor ex(cat);
  // One partial-merge shape (int group-by) and one gather shape (top-k
  // projection): both must book positive wire bytes, joules and seconds.
  for (auto& [name, plan] : query_matrix()) {
    if (name != "group_small_key" && name != "topn") continue;
    ExecOptions dist;
    dist.shard_count = 4;
    ExecStats stats;
    (void)ex.execute(plan, stats, dist);
    EXPECT_GE(stats.wire_messages, 3u) << name;
    EXPECT_GT(stats.work.net_bytes, 0.0) << name;
    EXPECT_GT(stats.wire_time_s, 0.0) << name;
    EXPECT_GT(stats.wire_energy_j, 0.0) << name;
  }
}

TEST(DistributedParity, ExplainShowsShardsAndExchange) {
  Catalog cat = make_catalog(7);
  cat.get("facts").build_partitions("u32", 4);
  ExecOptions dist;
  dist.shard_count = 4;
  const auto plan = QueryBuilder("facts")
                        .join("dim", "u32", "key")
                        .group_by("tag")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "dim.weight")
                        .build();
  const PhysicalPlan phys = compile_plan(cat, plan, dist);
  const std::string text = phys.explain();
  EXPECT_NE(text.find("shards: 4"), std::string::npos) << text;
  EXPECT_NE(text.find("exchange:"), std::string::npos) << text;
}

TEST(DistributedParity, StalePartitionLayerRejected) {
  // A compiled plan pins the shard layout; repartitioning between compile
  // and execute must be caught, not silently mis-executed.
  Catalog cat = make_catalog(7);
  cat.get("facts").build_partitions("u32", 4);
  const auto plan = QueryBuilder("facts")
                        .group_by("skew32")
                        .aggregate(AggOp::kCount)
                        .build();
  ExecOptions dist;
  dist.shard_count = 4;
  const PhysicalPlan phys = compile_plan(cat, plan, dist);
  cat.get("facts").build_partitions("u32", 2);
  Executor ex(cat);
  ExecStats stats;
  EXPECT_THROW((void)ex.execute(phys, stats, dist), Error);
}

TEST(DistributedParity, ShardCountWithoutPartitionsRejected) {
  Catalog cat = make_catalog(7);  // no build_partitions call
  ExecOptions dist;
  dist.shard_count = 4;
  const auto plan =
      QueryBuilder("facts").aggregate(AggOp::kCount).build();
  EXPECT_THROW((void)compile_plan(cat, plan, dist), Error);
}

TEST(DistributedParity, DatabaseBooksWireJoulesUnderWireScope) {
  using core::Database;
  using core::RunOptions;
  using storage::Column;
  for (const std::size_t shards : {1u, 4u}) {
    Database db;
    storage::Table& t = db.create_table(
        "facts", storage::Schema({{"k", storage::TypeId::kInt32},
                                  {"v", storage::TypeId::kInt64}}));
    std::vector<std::int32_t> k;
    std::vector<std::int64_t> v;
    for (std::int32_t i = 0; i < 20'000; ++i) {
      k.push_back(i % 37);
      v.push_back(i % 1000);
    }
    t.set_column(0, Column::from_int32("k", k));
    t.set_column(1, Column::from_int64("v", v));
    t.build_partitions("k", shards);
    const auto plan = QueryBuilder("facts")
                          .group_by("k")
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "v")
                          .build();
    RunOptions options;
    options.exec.shard_count = shards;
    const core::RunResult run = db.run(plan, options);
    ASSERT_EQ(run.result.row_count(), 37u);
    const energy::LedgerEntry wire = db.ledger().total(energy::kWireScope);
    if (shards == 1) {
      // Nothing shipped: the wire scope must stay EMPTY, not near-zero.
      EXPECT_DOUBLE_EQ(wire.energy_j, 0.0);
      EXPECT_DOUBLE_EQ(wire.work.net_bytes, 0.0);
      EXPECT_EQ(wire.tuples, 0u);
    } else {
      EXPECT_GT(wire.energy_j, 0.0);
      EXPECT_GT(wire.work.net_bytes, 0.0);
      EXPECT_GE(wire.tuples, shards - 1);  // tuples column carries messages
      // The wire joules ride the per-query attribution too.
      EXPECT_GE(run.attributed_j, wire.energy_j);
    }
  }
}

}  // namespace
}  // namespace eidb::query
