#include "query/executor.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

using storage::Catalog;
using storage::Column;
using storage::Schema;
using storage::Table;
using storage::TypeId;

/// sales(id int64, amount int64, price double, region string) — 1000 rows,
/// deterministic contents for exact assertions.
Catalog make_catalog() {
  Catalog cat;
  Table& sales = cat.add(Table(
      "sales", Schema({{"id", TypeId::kInt64},
                       {"amount", TypeId::kInt64},
                       {"price", TypeId::kDouble},
                       {"region", TypeId::kString}})));
  std::vector<std::int64_t> ids, amounts;
  std::vector<double> prices;
  std::vector<std::string> regions;
  const char* region_names[] = {"asia", "eu", "us"};
  for (std::int64_t i = 0; i < 1000; ++i) {
    ids.push_back(i);
    amounts.push_back(i % 100);          // 0..99 repeating
    prices.push_back(0.5 * static_cast<double>(i % 10));  // 0.0 .. 4.5
    regions.emplace_back(region_names[i % 3]);
  }
  sales.set_column(0, Column::from_int64("id", ids));
  sales.set_column(1, Column::from_int64("amount", amounts));
  sales.set_column(2, Column::from_double("price", prices));
  sales.set_column(3, Column::from_strings("region", regions));

  // customers(id int64, age int64) for joins: id 0..99, age = id % 50
  Table& customers = cat.add(Table(
      "customers", Schema({{"id", TypeId::kInt64}, {"age", TypeId::kInt64}})));
  std::vector<std::int64_t> cids, ages;
  for (std::int64_t i = 0; i < 100; ++i) {
    cids.push_back(i);
    ages.push_back(i % 50);
  }
  customers.set_column(0, Column::from_int64("id", cids));
  customers.set_column(1, Column::from_int64("age", ages));
  return cat;
}

TEST(Executor, CountWithIntFilter) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // amount in [0, 9]: 10 of every 100 -> 100 rows.
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 9)
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.at(0, 0).as_int(), 100);
  EXPECT_EQ(stats.tuples_selected, 100u);
  EXPECT_EQ(stats.tuples_scanned, 1000u);
}

TEST(Executor, SumMinMaxAvg) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 9)  // rows 0..9
                        .aggregate(AggOp::kSum, "amount")
                        .aggregate(AggOp::kMin, "amount")
                        .aggregate(AggOp::kMax, "amount")
                        .aggregate(AggOp::kAvg, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  EXPECT_EQ(r.at(0, 0).as_int(), 45);  // 0+..+9
  EXPECT_EQ(r.at(0, 1).as_int(), 0);
  EXPECT_EQ(r.at(0, 2).as_int(), 9);
  EXPECT_DOUBLE_EQ(r.at(0, 3).as_double(), 4.5);
}

TEST(Executor, DoubleAggregate) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 9)
                        .aggregate(AggOp::kSum, "price")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // prices 0, .5, 1, 1.5, ..., 4.5 -> 22.5
  EXPECT_DOUBLE_EQ(r.at(0, 0).as_double(), 22.5);
}

TEST(Executor, StringEqualityFilterViaDictionary) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_string("region", "eu", "eu")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // region repeats asia,eu,us: rows where i%3==1 -> 333.
  EXPECT_EQ(r.at(0, 0).as_int(), 333);
}

TEST(Executor, StringRangeFilter) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // ["a", "f"] covers asia and eu but not us.
  const auto plan = QueryBuilder("sales")
                        .filter_string("region", "a", "f")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  EXPECT_EQ(r.at(0, 0).as_int(), 667);  // 334 asia + 333 eu
}

TEST(Executor, EmptyStringRange) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_string("region", "zz", "zzz")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  EXPECT_EQ(r.at(0, 0).as_int(), 0);
}

TEST(Executor, ConjunctivePredicates) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 9)
                        .filter_string("region", "eu", "eu")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // Reference count:
  std::int64_t want = 0;
  for (int i = 0; i < 1000; ++i)
    if (i % 100 <= 9 && i % 3 == 1) ++want;
  EXPECT_EQ(r.at(0, 0).as_int(), want);
}

TEST(Executor, GroupByStringSumInt) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);  // asia, eu, us (dictionary order)
  EXPECT_EQ(r.at(0, 0).as_string(), "asia");
  EXPECT_EQ(r.at(1, 0).as_string(), "eu");
  EXPECT_EQ(r.at(2, 0).as_string(), "us");
  // Reference sums.
  std::int64_t sums[3] = {0, 0, 0}, counts[3] = {0, 0, 0};
  for (int i = 0; i < 1000; ++i) {
    sums[i % 3] += i % 100;
    ++counts[i % 3];
  }
  // dictionary order asia(0),eu(1),us(2) == i%3 order 0,1,2
  for (int g = 0; g < 3; ++g) {
    EXPECT_EQ(r.at(g, 1).as_int(), counts[g]);
    EXPECT_EQ(r.at(g, 2).as_int(), sums[g]);
  }
  EXPECT_EQ(stats.groups, 3u);
}

TEST(Executor, GroupByIntAvgDouble) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 99)
                        .group_by("amount")  // == id for the first 100 rows
                        .aggregate(AggOp::kAvg, "price")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 100u);
  // group key amount=7 -> only row 7 -> price 3.5
  EXPECT_EQ(r.at(7, 0).as_int(), 7);
  EXPECT_DOUBLE_EQ(r.at(7, 1).as_double(), 3.5);
}

TEST(Executor, MultiColumnGroupBy) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // Group by (region, amount%2-ish): use region + a small int column.
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 3)  // amounts 0..3
                        .group_by("region")
                        .group_by("amount")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // 3 regions x 4 amounts = 12 groups (every combination occurs: amounts
  // cycle 0..99, regions cycle 0..2 over 1000 rows).
  ASSERT_EQ(r.row_count(), 12u);
  EXPECT_EQ(r.column_count(), 3u);  // region, amount, count
  // Rows are ordered by composite key: region-major (first group column).
  EXPECT_EQ(r.at(0, 0).as_string(), "asia");
  EXPECT_EQ(r.at(0, 1).as_int(), 0);
  EXPECT_EQ(r.at(11, 0).as_string(), "us");
  EXPECT_EQ(r.at(11, 1).as_int(), 3);
  // Reference counts.
  std::int64_t want[3][4] = {};
  for (int i = 0; i < 1000; ++i)
    if (i % 100 <= 3) ++want[i % 3][i % 100];
  for (std::size_t g = 0; g < 12; ++g) {
    const std::size_t region = g / 4, amount = g % 4;
    EXPECT_EQ(r.at(g, 2).as_int(), want[region][amount]) << g;
  }
}

TEST(Executor, MultiColumnGroupByWithNegativeKeys) {
  Catalog cat;
  Table& t = cat.add(Table("t", Schema({{"a", TypeId::kInt64},
                                        {"b", TypeId::kInt64},
                                        {"v", TypeId::kInt64}})));
  const std::vector<std::int64_t> a = {-5, -5, 3, 3, -5};
  const std::vector<std::int64_t> b = {7, 8, 7, 7, 7};
  const std::vector<std::int64_t> v = {1, 2, 3, 4, 5};
  t.set_column(0, Column::from_int64("a", a));
  t.set_column(1, Column::from_int64("b", b));
  t.set_column(2, Column::from_int64("v", v));
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("t")
                        .group_by("a")
                        .group_by("b")
                        .aggregate(AggOp::kSum, "v")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);  // (-5,7), (-5,8), (3,7)
  EXPECT_EQ(r.at(0, 0).as_int(), -5);
  EXPECT_EQ(r.at(0, 1).as_int(), 7);
  EXPECT_EQ(r.at(0, 2).as_int(), 6);  // rows 0 and 4
  EXPECT_EQ(r.at(1, 1).as_int(), 8);
  EXPECT_EQ(r.at(1, 2).as_int(), 2);
  EXPECT_EQ(r.at(2, 0).as_int(), 3);
  EXPECT_EQ(r.at(2, 2).as_int(), 7);  // rows 2 and 3
}

TEST(Executor, CompositeGroupDomainOverflowRejected) {
  Catalog cat;
  Table& t = cat.add(Table("t", Schema({{"a", TypeId::kInt64},
                                        {"b", TypeId::kInt64}})));
  const std::vector<std::int64_t> a = {0, std::int64_t{1} << 40};
  const std::vector<std::int64_t> b = {0, std::int64_t{1} << 40};
  t.set_column(0, Column::from_int64("a", a));
  t.set_column(1, Column::from_int64("b", b));
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("t")
                        .group_by("a")
                        .group_by("b")
                        .aggregate(AggOp::kCount)
                        .build();
  EXPECT_THROW((void)ex.execute(plan, stats), Error);
}

TEST(Executor, ProjectionWithOrderByAndLimit) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 95, 99)
                        .select({"id", "amount"})
                        .order_by("id", false)
                        .limit(3)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.at(0, 0).as_int(), 999);
  EXPECT_EQ(r.at(1, 0).as_int(), 998);
  EXPECT_EQ(r.at(2, 0).as_int(), 997);
}

TEST(Executor, ProjectionDefaultsToAllColumns) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales").filter_int("id", 0, 0).build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.column_count(), 4u);
  EXPECT_EQ(r.at(0, 3).as_string(), "asia");
}

TEST(Executor, OrderByStringUsesDictionaryOrder) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 5)
                        .select({"region"})
                        .order_by("region", true)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 6u);
  EXPECT_EQ(r.at(0, 0).as_string(), "asia");
  EXPECT_EQ(r.at(5, 0).as_string(), "us");
}

TEST(Executor, JoinCountAndAggregate) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // Join sales.amount (0..99) with customers.id (0..99), filter customer
  // age in [0, 9]: customers with id%50 in [0,9] -> ids 0..9 and 50..59.
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 9)
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // Each sales row matches exactly one customer; qualifying amounts are
  // 20 values, each appearing 10 times -> 200 pairs.
  EXPECT_EQ(r.at(0, 0).as_int(), 200);
  EXPECT_EQ(stats.join_pairs, 200u);
}

TEST(Executor, JoinProjectionWithQualifiedColumns) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 7, 7)  // one row, amount 7
                        .join("customers", "amount", "id")
                        .select({"id", "customers.age"})
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.at(0, 0).as_int(), 7);
  EXPECT_EQ(r.at(0, 1).as_int(), 7);  // age = id % 50
}

TEST(Executor, JoinProjectionWithoutSelectThrows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan =
      QueryBuilder("sales").join("customers", "amount", "id").build();
  EXPECT_THROW((void)ex.execute(plan, stats), Error);
}

TEST(Executor, ZoneMapsGiveSameAnswerLessWork) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 100, 149)  // clustered: ids sorted
                        .aggregate(AggOp::kCount)
                        .build();
  ExecStats full_stats, zm_stats;
  ExecOptions zm_options;
  zm_options.use_zone_maps = true;
  zm_options.zone_block_rows = 128;
  const QueryResult full = ex.execute(plan, full_stats);
  const QueryResult pruned = ex.execute(plan, zm_stats, zm_options);
  EXPECT_EQ(full.at(0, 0).as_int(), 50);
  EXPECT_EQ(pruned.at(0, 0).as_int(), 50);
  EXPECT_LT(zm_stats.work.dram_bytes, full_stats.work.dram_bytes);
  EXPECT_LT(zm_stats.work.cpu_cycles, full_stats.work.cpu_cycles);
}

TEST(Executor, ScanVariantsAllProduceSameAnswer) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 30, 59)
                        .aggregate(AggOp::kCount)
                        .build();
  std::int64_t want = -1;
  for (const auto variant :
       {exec::ScanVariant::kAuto, exec::ScanVariant::kBranching,
        exec::ScanVariant::kPredicated, exec::ScanVariant::kAvx2,
        exec::ScanVariant::kAvx512}) {
    ExecStats stats;
    ExecOptions options;
    options.scan_variant = variant;
    const QueryResult r = ex.execute(plan, stats, options);
    if (want < 0)
      want = r.at(0, 0).as_int();
    else
      EXPECT_EQ(r.at(0, 0).as_int(), want)
          << exec::variant_name(variant);
  }
  EXPECT_EQ(want, 300);
}

TEST(Executor, TierAccountingChargesColdColumns) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  storage::TierManager tiers;
  tiers.register_column("sales", "amount", 8000, storage::Tier::kCold);
  ExecOptions options;
  options.tiers = &tiers;
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 9)
                        .aggregate(AggOp::kCount)
                        .build();
  (void)ex.execute(plan, stats, options);
  EXPECT_GT(stats.cold_tier_time_s, 0.0);
  EXPECT_GT(stats.cold_tier_energy_j, 0.0);
  EXPECT_EQ(tiers.access_count("sales", "amount"), 1u);
}

TEST(Executor, UnknownTableThrows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  EXPECT_THROW((void)ex.execute(QueryBuilder("nope").build(), stats), Error);
}

TEST(Executor, UnknownColumnThrows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales").filter_int("nope", 0, 1).build();
  EXPECT_THROW((void)ex.execute(plan, stats), Error);
}

TEST(Executor, GroupByDoubleThrows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .group_by("price")
                        .aggregate(AggOp::kCount)
                        .build();
  EXPECT_THROW((void)ex.execute(plan, stats), Error);
}

TEST(Executor, OperatorTimingsRecorded) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 50)
                        .group_by("region")
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  (void)ex.execute(plan, stats);
  ASSERT_GE(stats.operator_seconds.size(), 2u);
  EXPECT_NE(stats.operator_seconds[0].first.find("scan"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Vectorized join pipeline.
// ---------------------------------------------------------------------------

/// Scalar oracle for the join + GROUP BY regression tests: loops over the
/// deterministic make_catalog contents (each sales row joins the single
/// customer with id == amount).
struct JoinOracle {
  std::map<std::string, std::int64_t> count;
  std::map<std::string, std::int64_t> sum;  // of one probed column
};

// Regression for the wrong-result bug: run_join used to IGNORE
// plan.group_by entirely and report stats.groups == 1, answering a grouped
// join as if it were a global aggregate.
TEST(Executor, JoinGroupByProbeKeyMatchesScalarOracle) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 9)
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);

  JoinOracle want;
  const char* region_names[] = {"asia", "eu", "us"};
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t amount = i % 100;  // joins customer id == amount
    const std::int64_t age = amount % 50;
    if (age > 9) continue;
    const std::string region = region_names[i % 3];
    ++want.count[region];
    want.sum[region] += amount;
  }
  ASSERT_EQ(r.row_count(), want.count.size());
  EXPECT_EQ(stats.groups, want.count.size());
  EXPECT_EQ(stats.join_pairs, 200u);
  for (std::size_t g = 0; g < r.row_count(); ++g) {
    const std::string region = r.at(g, 0).as_string();
    ASSERT_TRUE(want.count.count(region)) << region;
    EXPECT_EQ(r.at(g, 1).as_int(), want.count[region]) << region;
    EXPECT_EQ(r.at(g, 2).as_int(), want.sum[region]) << region;
  }
}

TEST(Executor, JoinGroupByBuildSideKeyAndAggregate) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // Group by a BUILD-side column and aggregate a BUILD-side column.
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 4)
                        .group_by("customers.age")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "customers.age")
                        .aggregate(AggOp::kMax, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // Ages 0..4 select customer ids {k, 50+k}; each id matches 10 sales
  // rows -> 20 pairs per age group.
  ASSERT_EQ(r.row_count(), 5u);
  for (std::size_t g = 0; g < 5; ++g) {
    const std::int64_t age = r.at(g, 0).as_int();
    EXPECT_EQ(age, static_cast<std::int64_t>(g));
    EXPECT_EQ(r.at(g, 1).as_int(), 20);
    EXPECT_EQ(r.at(g, 2).as_int(), 20 * age);
    EXPECT_EQ(r.at(g, 3).as_int(), 50 + age);  // max amount in the group
  }
}

TEST(Executor, JoinCompositeGroupAcrossBothTables) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 1)
                        .group_by("region")
                        .group_by("customers.age")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // Ages {0, 1} x regions {asia, eu, us}: 6 groups.
  ASSERT_EQ(r.row_count(), 6u);
  std::int64_t total = 0;
  for (std::size_t g = 0; g < r.row_count(); ++g)
    total += r.at(g, 2).as_int();
  EXPECT_EQ(total, 40);  // 4 qualifying ids x 10 rows each
}

TEST(Executor, JoinArmsAgreeWithLegacyPairPath) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 499)
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 10, 29)
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .aggregate(AggOp::kAvg, "price")
                        .build();
  std::vector<QueryResult> results;
  for (const JoinPath path : {JoinPath::kPairMaterialize, JoinPath::kAuto,
                              JoinPath::kDense, JoinPath::kHash,
                              JoinPath::kRadix}) {
    ExecStats stats;
    ExecOptions options;
    options.join_path = path;
    results.push_back(ex.execute(plan, stats, options));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].row_count(), results[0].row_count());
    for (std::size_t c = 0; c < results[0].column_count(); ++c)
      EXPECT_EQ(results[i].at(0, c), results[0].at(0, c)) << "path " << i;
  }
}

TEST(Executor, JoinParallelProbeMatchesSerial) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  sched::ThreadPool pool(4);
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .aggregate(AggOp::kMin, "customers.age")
                        .build();
  ExecStats serial_stats, par_stats, radix_stats;
  const QueryResult serial = ex.execute(plan, serial_stats);
  ExecOptions par;
  par.pool = &pool;
  par.parallel_join_min_rows = 1;  // force the parallel probe
  const QueryResult parallel = ex.execute(plan, par_stats, par);
  par.join_path = JoinPath::kRadix;  // and the parallel radix arm
  const QueryResult radix = ex.execute(plan, radix_stats, par);
  ASSERT_EQ(serial.row_count(), parallel.row_count());
  ASSERT_EQ(serial.row_count(), radix.row_count());
  for (std::size_t g = 0; g < serial.row_count(); ++g)
    for (std::size_t c = 0; c < serial.column_count(); ++c) {
      EXPECT_EQ(serial.at(g, c), parallel.at(g, c)) << g << "," << c;
      EXPECT_EQ(serial.at(g, c), radix.at(g, c)) << g << "," << c;
    }
}

TEST(Executor, JoinEmptyBuildSelection) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto base = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 200, 300);  // no customer
  {
    ExecStats stats;
    const auto plan = QueryBuilder(base)
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "amount")
                          .build();
    const QueryResult r = ex.execute(plan, stats);
    ASSERT_EQ(r.row_count(), 1u);
    EXPECT_EQ(r.at(0, 0).as_int(), 0);
    EXPECT_EQ(r.at(0, 1).as_int(), 0);
    EXPECT_EQ(stats.join_pairs, 0u);
  }
  {
    ExecStats stats;
    const auto plan = QueryBuilder(base)
                          .group_by("region")
                          .aggregate(AggOp::kCount)
                          .build();
    const QueryResult r = ex.execute(plan, stats);
    EXPECT_EQ(r.row_count(), 0u);
    EXPECT_EQ(stats.groups, 0u);
  }
}

TEST(Executor, JoinRejectsUnsupportedShapesUpFront) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // Legacy pair path cannot group: must throw, never silently mis-answer.
  {
    ExecOptions options;
    options.join_path = JoinPath::kPairMaterialize;
    const auto plan = QueryBuilder("sales")
                          .join("customers", "amount", "id")
                          .group_by("region")
                          .aggregate(AggOp::kCount)
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats, options), Error);
  }
  // ORDER BY with JOIN is rejected (it used to be silently ignored).
  {
    const auto plan = QueryBuilder("sales")
                          .join("customers", "amount", "id")
                          .select({"id", "customers.age"})
                          .order_by("id")
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats), Error);
  }
  // Expression aggregates over joins are rejected before any work runs.
  {
    const auto expr = exec::Expr::binary(exec::ExprOp::kMul,
                                         exec::Expr::column("amount"),
                                         exec::Expr::column("amount"));
    const auto plan = QueryBuilder("sales")
                          .join("customers", "amount", "id")
                          .aggregate_expr(AggOp::kSum, expr)
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats), Error);
  }
  // Double-typed join keys cannot hash-equal meaningfully here.
  {
    const auto plan = QueryBuilder("sales")
                          .join("customers", "price", "id")
                          .aggregate(AggOp::kCount)
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats), Error);
  }
}

// The "charge what you read" rule (join-path energy attribution): DRAM
// bytes must equal the representations the chosen arm actually streams —
// packed images for the join keys, plain arrays for every gathered
// payload/group column, each charged once per query.
TEST(Executor, JoinDramChargesMatchBytesRead) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const Table& sales = cat.get("sales");
  const Table& customers = cat.get("customers");
  const auto scan_bytes = [](const Column& c) {
    // Mirrors Executor::use_packed under default options.
    const bool packed =
        c.encoded() != nullptr && c.scan_byte_size() <= c.byte_size();
    return static_cast<double>(packed ? c.scan_byte_size() : c.byte_size());
  };

  // Keys not otherwise gathered: both consumed packed.
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "price")
                        .aggregate(AggOp::kSum, "customers.age")
                        .build();
  ExecStats stats;
  (void)ex.execute(plan, stats);
  ASSERT_NE(sales.column("amount").encoded(), nullptr);
  const double want =
      scan_bytes(sales.column("amount")) +                       // probe key
      scan_bytes(customers.column("id")) +                       // build key
      static_cast<double>(sales.column("region").byte_size()) +  // group key
      static_cast<double>(sales.column("price").byte_size()) +   // agg gather
      static_cast<double>(customers.column("age").byte_size());  // build agg
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes, want);

  // One representation per column per query: a join key that is ALSO a
  // gathered aggregate input is read plain everywhere and charged once.
  const auto plan2 = QueryBuilder("sales")
                         .join("customers", "amount", "id")
                         .group_by("region")
                         .aggregate(AggOp::kSum, "amount")
                         .build();
  ExecStats stats2;
  (void)ex.execute(plan2, stats2);
  const double want2 =
      static_cast<double>(sales.column("amount").byte_size()) +  // key + agg
      scan_bytes(customers.column("id")) +                       // build key
      static_cast<double>(sales.column("region").byte_size());   // group key
  EXPECT_DOUBLE_EQ(stats2.work.dram_bytes, want2);

  // With encodings off, the same query charges the plain widths only, and
  // never less than the packed run.
  ExecOptions plain_opts;
  plain_opts.use_encodings = false;
  ExecStats plain_stats;
  (void)ex.execute(plan, plain_stats, plain_opts);
  const double plain_want =
      static_cast<double>(sales.column("amount").byte_size()) +
      static_cast<double>(customers.column("id").byte_size()) +
      static_cast<double>(sales.column("region").byte_size()) +
      static_cast<double>(sales.column("price").byte_size()) +
      static_cast<double>(customers.column("age").byte_size());
  EXPECT_DOUBLE_EQ(plain_stats.work.dram_bytes, plain_want);
  EXPECT_LE(stats.work.dram_bytes, plain_stats.work.dram_bytes);
}

}  // namespace
}  // namespace eidb::query
