#include "query/executor.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "query/physical_plan.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

using storage::Catalog;
using storage::Column;
using storage::Schema;
using storage::Table;
using storage::TypeId;

/// sales(id int64, amount int64, price double, region string) — 1000 rows,
/// deterministic contents for exact assertions.
Catalog make_catalog() {
  Catalog cat;
  Table& sales = cat.add(Table(
      "sales", Schema({{"id", TypeId::kInt64},
                       {"amount", TypeId::kInt64},
                       {"price", TypeId::kDouble},
                       {"region", TypeId::kString}})));
  std::vector<std::int64_t> ids, amounts;
  std::vector<double> prices;
  std::vector<std::string> regions;
  const char* region_names[] = {"asia", "eu", "us"};
  for (std::int64_t i = 0; i < 1000; ++i) {
    ids.push_back(i);
    amounts.push_back(i % 100);          // 0..99 repeating
    prices.push_back(0.5 * static_cast<double>(i % 10));  // 0.0 .. 4.5
    regions.emplace_back(region_names[i % 3]);
  }
  sales.set_column(0, Column::from_int64("id", ids));
  sales.set_column(1, Column::from_int64("amount", amounts));
  sales.set_column(2, Column::from_double("price", prices));
  sales.set_column(3, Column::from_strings("region", regions));

  // customers(id int64, age int64) for joins: id 0..99, age = id % 50
  Table& customers = cat.add(Table(
      "customers", Schema({{"id", TypeId::kInt64}, {"age", TypeId::kInt64}})));
  std::vector<std::int64_t> cids, ages;
  for (std::int64_t i = 0; i < 100; ++i) {
    cids.push_back(i);
    ages.push_back(i % 50);
  }
  customers.set_column(0, Column::from_int64("id", cids));
  customers.set_column(1, Column::from_int64("age", ages));

  // discounts(amount int64, pct int64) for multi-way star joins: amount
  // 0..99 (the fact key domain), pct = amount % 7.
  Table& discounts = cat.add(Table(
      "discounts",
      Schema({{"amount", TypeId::kInt64}, {"pct", TypeId::kInt64}})));
  std::vector<std::int64_t> damounts, pcts;
  for (std::int64_t i = 0; i < 100; ++i) {
    damounts.push_back(i);
    pcts.push_back(i % 7);
  }
  discounts.set_column(0, Column::from_int64("amount", damounts));
  discounts.set_column(1, Column::from_int64("pct", pcts));

  // brackets(age int64, bracket int64) for snowflake chains off
  // customers.age: age 0..49, bracket = age / 10.
  Table& brackets = cat.add(Table(
      "brackets",
      Schema({{"age", TypeId::kInt64}, {"bracket", TypeId::kInt64}})));
  std::vector<std::int64_t> bages, bbrackets;
  for (std::int64_t i = 0; i < 50; ++i) {
    bages.push_back(i);
    bbrackets.push_back(i / 10);
  }
  brackets.set_column(0, Column::from_int64("age", bages));
  brackets.set_column(1, Column::from_int64("bracket", bbrackets));
  return cat;
}

TEST(Executor, CountWithIntFilter) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // amount in [0, 9]: 10 of every 100 -> 100 rows.
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 9)
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.at(0, 0).as_int(), 100);
  EXPECT_EQ(stats.tuples_selected, 100u);
  EXPECT_EQ(stats.tuples_scanned, 1000u);
}

TEST(Executor, SumMinMaxAvg) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 9)  // rows 0..9
                        .aggregate(AggOp::kSum, "amount")
                        .aggregate(AggOp::kMin, "amount")
                        .aggregate(AggOp::kMax, "amount")
                        .aggregate(AggOp::kAvg, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  EXPECT_EQ(r.at(0, 0).as_int(), 45);  // 0+..+9
  EXPECT_EQ(r.at(0, 1).as_int(), 0);
  EXPECT_EQ(r.at(0, 2).as_int(), 9);
  EXPECT_DOUBLE_EQ(r.at(0, 3).as_double(), 4.5);
}

TEST(Executor, DoubleAggregate) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 9)
                        .aggregate(AggOp::kSum, "price")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // prices 0, .5, 1, 1.5, ..., 4.5 -> 22.5
  EXPECT_DOUBLE_EQ(r.at(0, 0).as_double(), 22.5);
}

TEST(Executor, StringEqualityFilterViaDictionary) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_string("region", "eu", "eu")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // region repeats asia,eu,us: rows where i%3==1 -> 333.
  EXPECT_EQ(r.at(0, 0).as_int(), 333);
}

TEST(Executor, StringRangeFilter) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // ["a", "f"] covers asia and eu but not us.
  const auto plan = QueryBuilder("sales")
                        .filter_string("region", "a", "f")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  EXPECT_EQ(r.at(0, 0).as_int(), 667);  // 334 asia + 333 eu
}

TEST(Executor, EmptyStringRange) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_string("region", "zz", "zzz")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  EXPECT_EQ(r.at(0, 0).as_int(), 0);
}

TEST(Executor, ConjunctivePredicates) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 9)
                        .filter_string("region", "eu", "eu")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // Reference count:
  std::int64_t want = 0;
  for (int i = 0; i < 1000; ++i)
    if (i % 100 <= 9 && i % 3 == 1) ++want;
  EXPECT_EQ(r.at(0, 0).as_int(), want);
}

TEST(Executor, GroupByStringSumInt) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);  // asia, eu, us (dictionary order)
  EXPECT_EQ(r.at(0, 0).as_string(), "asia");
  EXPECT_EQ(r.at(1, 0).as_string(), "eu");
  EXPECT_EQ(r.at(2, 0).as_string(), "us");
  // Reference sums.
  std::int64_t sums[3] = {0, 0, 0}, counts[3] = {0, 0, 0};
  for (int i = 0; i < 1000; ++i) {
    sums[i % 3] += i % 100;
    ++counts[i % 3];
  }
  // dictionary order asia(0),eu(1),us(2) == i%3 order 0,1,2
  for (int g = 0; g < 3; ++g) {
    EXPECT_EQ(r.at(g, 1).as_int(), counts[g]);
    EXPECT_EQ(r.at(g, 2).as_int(), sums[g]);
  }
  EXPECT_EQ(stats.groups, 3u);
}

TEST(Executor, GroupByIntAvgDouble) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 99)
                        .group_by("amount")  // == id for the first 100 rows
                        .aggregate(AggOp::kAvg, "price")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 100u);
  // group key amount=7 -> only row 7 -> price 3.5
  EXPECT_EQ(r.at(7, 0).as_int(), 7);
  EXPECT_DOUBLE_EQ(r.at(7, 1).as_double(), 3.5);
}

TEST(Executor, MultiColumnGroupBy) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // Group by (region, amount%2-ish): use region + a small int column.
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 3)  // amounts 0..3
                        .group_by("region")
                        .group_by("amount")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // 3 regions x 4 amounts = 12 groups (every combination occurs: amounts
  // cycle 0..99, regions cycle 0..2 over 1000 rows).
  ASSERT_EQ(r.row_count(), 12u);
  EXPECT_EQ(r.column_count(), 3u);  // region, amount, count
  // Rows are ordered by composite key: region-major (first group column).
  EXPECT_EQ(r.at(0, 0).as_string(), "asia");
  EXPECT_EQ(r.at(0, 1).as_int(), 0);
  EXPECT_EQ(r.at(11, 0).as_string(), "us");
  EXPECT_EQ(r.at(11, 1).as_int(), 3);
  // Reference counts.
  std::int64_t want[3][4] = {};
  for (int i = 0; i < 1000; ++i)
    if (i % 100 <= 3) ++want[i % 3][i % 100];
  for (std::size_t g = 0; g < 12; ++g) {
    const std::size_t region = g / 4, amount = g % 4;
    EXPECT_EQ(r.at(g, 2).as_int(), want[region][amount]) << g;
  }
}

TEST(Executor, MultiColumnGroupByWithNegativeKeys) {
  Catalog cat;
  Table& t = cat.add(Table("t", Schema({{"a", TypeId::kInt64},
                                        {"b", TypeId::kInt64},
                                        {"v", TypeId::kInt64}})));
  const std::vector<std::int64_t> a = {-5, -5, 3, 3, -5};
  const std::vector<std::int64_t> b = {7, 8, 7, 7, 7};
  const std::vector<std::int64_t> v = {1, 2, 3, 4, 5};
  t.set_column(0, Column::from_int64("a", a));
  t.set_column(1, Column::from_int64("b", b));
  t.set_column(2, Column::from_int64("v", v));
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("t")
                        .group_by("a")
                        .group_by("b")
                        .aggregate(AggOp::kSum, "v")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);  // (-5,7), (-5,8), (3,7)
  EXPECT_EQ(r.at(0, 0).as_int(), -5);
  EXPECT_EQ(r.at(0, 1).as_int(), 7);
  EXPECT_EQ(r.at(0, 2).as_int(), 6);  // rows 0 and 4
  EXPECT_EQ(r.at(1, 1).as_int(), 8);
  EXPECT_EQ(r.at(1, 2).as_int(), 2);
  EXPECT_EQ(r.at(2, 0).as_int(), 3);
  EXPECT_EQ(r.at(2, 2).as_int(), 7);  // rows 2 and 3
}

TEST(Executor, CompositeGroupDomainOverflowRejected) {
  Catalog cat;
  Table& t = cat.add(Table("t", Schema({{"a", TypeId::kInt64},
                                        {"b", TypeId::kInt64}})));
  const std::vector<std::int64_t> a = {0, std::int64_t{1} << 40};
  const std::vector<std::int64_t> b = {0, std::int64_t{1} << 40};
  t.set_column(0, Column::from_int64("a", a));
  t.set_column(1, Column::from_int64("b", b));
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("t")
                        .group_by("a")
                        .group_by("b")
                        .aggregate(AggOp::kCount)
                        .build();
  EXPECT_THROW((void)ex.execute(plan, stats), Error);
}

TEST(Executor, ProjectionWithOrderByAndLimit) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 95, 99)
                        .select({"id", "amount"})
                        .order_by("id", false)
                        .limit(3)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.at(0, 0).as_int(), 999);
  EXPECT_EQ(r.at(1, 0).as_int(), 998);
  EXPECT_EQ(r.at(2, 0).as_int(), 997);
}

TEST(Executor, ProjectionDefaultsToAllColumns) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales").filter_int("id", 0, 0).build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.column_count(), 4u);
  EXPECT_EQ(r.at(0, 3).as_string(), "asia");
}

TEST(Executor, OrderByStringUsesDictionaryOrder) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 5)
                        .select({"region"})
                        .order_by("region", true)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 6u);
  EXPECT_EQ(r.at(0, 0).as_string(), "asia");
  EXPECT_EQ(r.at(5, 0).as_string(), "us");
}

TEST(Executor, JoinCountAndAggregate) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // Join sales.amount (0..99) with customers.id (0..99), filter customer
  // age in [0, 9]: customers with id%50 in [0,9] -> ids 0..9 and 50..59.
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 9)
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // Each sales row matches exactly one customer; qualifying amounts are
  // 20 values, each appearing 10 times -> 200 pairs.
  EXPECT_EQ(r.at(0, 0).as_int(), 200);
  EXPECT_EQ(stats.join_pairs, 200u);
}

TEST(Executor, JoinProjectionWithQualifiedColumns) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 7, 7)  // one row, amount 7
                        .join("customers", "amount", "id")
                        .select({"id", "customers.age"})
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.at(0, 0).as_int(), 7);
  EXPECT_EQ(r.at(0, 1).as_int(), 7);  // age = id % 50
}

TEST(Executor, JoinProjectionWithoutSelectThrows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan =
      QueryBuilder("sales").join("customers", "amount", "id").build();
  EXPECT_THROW((void)ex.execute(plan, stats), Error);
}

TEST(Executor, ZoneMapsGiveSameAnswerLessWork) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 100, 149)  // clustered: ids sorted
                        .aggregate(AggOp::kCount)
                        .build();
  ExecStats full_stats, zm_stats;
  ExecOptions zm_options;
  zm_options.use_zone_maps = true;
  zm_options.zone_block_rows = 128;
  const QueryResult full = ex.execute(plan, full_stats);
  const QueryResult pruned = ex.execute(plan, zm_stats, zm_options);
  EXPECT_EQ(full.at(0, 0).as_int(), 50);
  EXPECT_EQ(pruned.at(0, 0).as_int(), 50);
  EXPECT_LT(zm_stats.work.dram_bytes, full_stats.work.dram_bytes);
  EXPECT_LT(zm_stats.work.cpu_cycles, full_stats.work.cpu_cycles);
}

TEST(Executor, ScanVariantsAllProduceSameAnswer) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 30, 59)
                        .aggregate(AggOp::kCount)
                        .build();
  std::int64_t want = -1;
  for (const auto variant :
       {exec::ScanVariant::kAuto, exec::ScanVariant::kBranching,
        exec::ScanVariant::kPredicated, exec::ScanVariant::kAvx2,
        exec::ScanVariant::kAvx512}) {
    ExecStats stats;
    ExecOptions options;
    options.scan_variant = variant;
    const QueryResult r = ex.execute(plan, stats, options);
    if (want < 0)
      want = r.at(0, 0).as_int();
    else
      EXPECT_EQ(r.at(0, 0).as_int(), want)
          << exec::variant_name(variant);
  }
  EXPECT_EQ(want, 300);
}

TEST(Executor, TierAccountingChargesColdColumns) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  storage::TierManager tiers;
  tiers.register_column("sales", "amount", 8000, storage::Tier::kCold);
  ExecOptions options;
  options.tiers = &tiers;
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 9)
                        .aggregate(AggOp::kCount)
                        .build();
  (void)ex.execute(plan, stats, options);
  EXPECT_GT(stats.cold_tier_time_s, 0.0);
  EXPECT_GT(stats.cold_tier_energy_j, 0.0);
  EXPECT_EQ(tiers.access_count("sales", "amount"), 1u);
}

TEST(Executor, UnknownTableThrows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  EXPECT_THROW((void)ex.execute(QueryBuilder("nope").build(), stats), Error);
}

TEST(Executor, UnknownColumnThrows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales").filter_int("nope", 0, 1).build();
  EXPECT_THROW((void)ex.execute(plan, stats), Error);
}

// GROUP BY double runs on the column's ordered dictionary codes (exactly
// like string keys) and decodes the double values back at emit.
TEST(Executor, GroupByDoubleGroupsOnDictionaryCodes) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .group_by("price")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 10u);
  std::map<double, std::int64_t> count, sum;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const double price = 0.5 * static_cast<double>(i % 10);
    ++count[price];
    sum[price] += i % 100;
  }
  for (std::size_t g = 0; g < r.row_count(); ++g) {
    const double key = r.at(g, 0).as_double();
    EXPECT_EQ(r.at(g, 1).as_int(), count[key]) << key;
    EXPECT_EQ(r.at(g, 2).as_int(), sum[key]) << key;
  }
}

// A NaN value leaves the column without an ordered code domain, so
// grouping on it still rejects — with an error that says why.
TEST(Executor, GroupByDoubleWithNaNThrows) {
  Catalog cat;
  Table& t = cat.add(Table("vals", Schema({{"v", TypeId::kDouble}})));
  t.set_column(
      0, Column::from_double(
             "v", std::vector<double>{
                      1.0, std::numeric_limits<double>::quiet_NaN(), 2.0}));
  Executor ex(cat);
  ExecStats stats;
  const auto plan =
      QueryBuilder("vals").group_by("v").aggregate(AggOp::kCount).build();
  try {
    (void)ex.execute(plan, stats);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("NaN"), std::string::npos);
  }
}

TEST(Executor, OperatorTimingsRecorded) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 50)
                        .group_by("region")
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  (void)ex.execute(plan, stats);
  ASSERT_GE(stats.operators.size(), 2u);
  EXPECT_NE(stats.operators[0].name.find("scan"), std::string::npos);
}

// Per-operator attribution must account for every charge: summing the
// operator work deltas reproduces the query's ExecStats totals exactly
// (the joule attribution model is linear in seconds and DRAM bytes, so
// per-operator joules sum to the query's attributed joules too).
TEST(Executor, OperatorAttributionSumsToQueryTotals) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto plans = {
      QueryBuilder("sales")
          .filter_int("amount", 0, 50)
          .group_by("region")
          .aggregate(AggOp::kSum, "amount")
          .order_by("sum(amount)", false)
          .limit(2)
          .build(),
      QueryBuilder("sales")
          .join("customers", "amount", "id")
          .join("discounts", "amount", "amount")
          .group_by("region")
          .aggregate(AggOp::kCount)
          .aggregate(AggOp::kSum, "pct")
          .build(),
      QueryBuilder("sales")
          .filter_int("amount", 90, 99)
          .select({"id", "price"})
          .order_by("id", false)
          .limit(4)
          .build(),
  };
  for (const LogicalPlan& plan : plans) {
    ExecStats stats;
    (void)ex.execute(plan, stats);
    ASSERT_FALSE(stats.operators.empty()) << plan.to_string();
    hw::Work sum;
    double seconds = 0;
    for (const OperatorStats& op : stats.operators) {
      sum += op.work;
      seconds += op.seconds;
    }
    EXPECT_DOUBLE_EQ(sum.cpu_cycles, stats.work.cpu_cycles)
        << plan.to_string();
    EXPECT_DOUBLE_EQ(sum.dram_bytes, stats.work.dram_bytes)
        << plan.to_string();
    EXPECT_LE(seconds, stats.elapsed_s + 1e-9) << plan.to_string();
  }
}

// ---------------------------------------------------------------------------
// Vectorized join pipeline.
// ---------------------------------------------------------------------------

/// Scalar oracle for the join + GROUP BY regression tests: loops over the
/// deterministic make_catalog contents (each sales row joins the single
/// customer with id == amount).
struct JoinOracle {
  std::map<std::string, std::int64_t> count;
  std::map<std::string, std::int64_t> sum;  // of one probed column
};

// Regression for the wrong-result bug: run_join used to IGNORE
// plan.group_by entirely and report stats.groups == 1, answering a grouped
// join as if it were a global aggregate.
TEST(Executor, JoinGroupByProbeKeyMatchesScalarOracle) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 9)
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);

  JoinOracle want;
  const char* region_names[] = {"asia", "eu", "us"};
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t amount = i % 100;  // joins customer id == amount
    const std::int64_t age = amount % 50;
    if (age > 9) continue;
    const std::string region = region_names[i % 3];
    ++want.count[region];
    want.sum[region] += amount;
  }
  ASSERT_EQ(r.row_count(), want.count.size());
  EXPECT_EQ(stats.groups, want.count.size());
  EXPECT_EQ(stats.join_pairs, 200u);
  for (std::size_t g = 0; g < r.row_count(); ++g) {
    const std::string region = r.at(g, 0).as_string();
    ASSERT_TRUE(want.count.count(region)) << region;
    EXPECT_EQ(r.at(g, 1).as_int(), want.count[region]) << region;
    EXPECT_EQ(r.at(g, 2).as_int(), want.sum[region]) << region;
  }
}

TEST(Executor, JoinGroupByBuildSideKeyAndAggregate) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // Group by a BUILD-side column and aggregate a BUILD-side column.
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 4)
                        .group_by("customers.age")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "customers.age")
                        .aggregate(AggOp::kMax, "amount")
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // Ages 0..4 select customer ids {k, 50+k}; each id matches 10 sales
  // rows -> 20 pairs per age group.
  ASSERT_EQ(r.row_count(), 5u);
  for (std::size_t g = 0; g < 5; ++g) {
    const std::int64_t age = r.at(g, 0).as_int();
    EXPECT_EQ(age, static_cast<std::int64_t>(g));
    EXPECT_EQ(r.at(g, 1).as_int(), 20);
    EXPECT_EQ(r.at(g, 2).as_int(), 20 * age);
    EXPECT_EQ(r.at(g, 3).as_int(), 50 + age);  // max amount in the group
  }
}

TEST(Executor, JoinCompositeGroupAcrossBothTables) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 1)
                        .group_by("region")
                        .group_by("customers.age")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  // Ages {0, 1} x regions {asia, eu, us}: 6 groups.
  ASSERT_EQ(r.row_count(), 6u);
  std::int64_t total = 0;
  for (std::size_t g = 0; g < r.row_count(); ++g)
    total += r.at(g, 2).as_int();
  EXPECT_EQ(total, 40);  // 4 qualifying ids x 10 rows each
}

TEST(Executor, JoinArmsAgreeWithLegacyPairPath) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("sales")
                        .filter_int("id", 0, 499)
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 10, 29)
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .aggregate(AggOp::kAvg, "price")
                        .build();
  std::vector<QueryResult> results;
  for (const JoinPath path : {JoinPath::kPairMaterialize, JoinPath::kAuto,
                              JoinPath::kDense, JoinPath::kHash,
                              JoinPath::kRadix}) {
    ExecStats stats;
    ExecOptions options;
    options.join_path = path;
    results.push_back(ex.execute(plan, stats, options));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].row_count(), results[0].row_count());
    for (std::size_t c = 0; c < results[0].column_count(); ++c)
      EXPECT_EQ(results[i].at(0, c), results[0].at(0, c)) << "path " << i;
  }
}

TEST(Executor, JoinParallelProbeMatchesSerial) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  sched::ThreadPool pool(4);
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .aggregate(AggOp::kMin, "customers.age")
                        .build();
  ExecStats serial_stats, par_stats, radix_stats;
  const QueryResult serial = ex.execute(plan, serial_stats);
  ExecOptions par;
  par.pool = &pool;
  par.parallel_join_min_rows = 1;  // force the parallel probe
  const QueryResult parallel = ex.execute(plan, par_stats, par);
  par.join_path = JoinPath::kRadix;  // and the parallel radix arm
  const QueryResult radix = ex.execute(plan, radix_stats, par);
  ASSERT_EQ(serial.row_count(), parallel.row_count());
  ASSERT_EQ(serial.row_count(), radix.row_count());
  for (std::size_t g = 0; g < serial.row_count(); ++g)
    for (std::size_t c = 0; c < serial.column_count(); ++c) {
      EXPECT_EQ(serial.at(g, c), parallel.at(g, c)) << g << "," << c;
      EXPECT_EQ(serial.at(g, c), radix.at(g, c)) << g << "," << c;
    }
}

TEST(Executor, JoinEmptyBuildSelection) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const auto base = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 200, 300);  // no customer
  {
    ExecStats stats;
    const auto plan = QueryBuilder(base)
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "amount")
                          .build();
    const QueryResult r = ex.execute(plan, stats);
    ASSERT_EQ(r.row_count(), 1u);
    EXPECT_EQ(r.at(0, 0).as_int(), 0);
    EXPECT_EQ(r.at(0, 1).as_int(), 0);
    EXPECT_EQ(stats.join_pairs, 0u);
  }
  {
    ExecStats stats;
    const auto plan = QueryBuilder(base)
                          .group_by("region")
                          .aggregate(AggOp::kCount)
                          .build();
    const QueryResult r = ex.execute(plan, stats);
    EXPECT_EQ(r.row_count(), 0u);
    EXPECT_EQ(stats.groups, 0u);
  }
}

TEST(Executor, JoinRejectsUnsupportedShapesUpFront) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // Legacy pair path cannot group: must throw, never silently mis-answer.
  {
    ExecOptions options;
    options.join_path = JoinPath::kPairMaterialize;
    const auto plan = QueryBuilder("sales")
                          .join("customers", "amount", "id")
                          .group_by("region")
                          .aggregate(AggOp::kCount)
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats, options), Error);
  }
  // Without aliases, joining the same table twice makes every qualified
  // reference ambiguous — rejected rather than bound to the first
  // instance.
  {
    const auto plan = QueryBuilder("sales")
                          .join("customers", "amount", "id")
                          .join("customers", "id", "id")
                          .aggregate(AggOp::kCount)
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats), Error);
  }
  // The legacy path cannot chain joins either.
  {
    ExecOptions options;
    options.join_path = JoinPath::kPairMaterialize;
    const auto plan = QueryBuilder("sales")
                          .join("customers", "amount", "id")
                          .join("discounts", "amount", "amount")
                          .aggregate(AggOp::kCount)
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats, options), Error);
  }
  // Expression aggregates over joins are rejected before any work runs.
  {
    const auto expr = exec::Expr::binary(exec::ExprOp::kMul,
                                         exec::Expr::column("amount"),
                                         exec::Expr::column("amount"));
    const auto plan = QueryBuilder("sales")
                          .join("customers", "amount", "id")
                          .aggregate_expr(AggOp::kSum, expr)
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats), Error);
  }
  // Double-typed join keys cannot hash-equal meaningfully here.
  {
    const auto plan = QueryBuilder("sales")
                          .join("customers", "price", "id")
                          .aggregate(AggOp::kCount)
                          .build();
    EXPECT_THROW((void)ex.execute(plan, stats), Error);
  }
}

// The "charge what you read" rule (join-path energy attribution): DRAM
// bytes must equal the representations the chosen arm actually streams —
// packed images for the join keys, plain arrays for every gathered
// payload/group column, each charged once per query.
TEST(Executor, JoinDramChargesMatchBytesRead) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const Table& sales = cat.get("sales");
  const Table& customers = cat.get("customers");
  const auto scan_bytes = [](const Column& c) {
    // Mirrors Executor::use_packed under default options.
    const bool packed =
        c.encoded() != nullptr && c.scan_byte_size() <= c.byte_size();
    return static_cast<double>(packed ? c.scan_byte_size() : c.byte_size());
  };

  // Keys not otherwise gathered: both consumed packed.
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "price")
                        .aggregate(AggOp::kSum, "customers.age")
                        .build();
  ExecStats stats;
  (void)ex.execute(plan, stats);
  ASSERT_NE(sales.column("amount").encoded(), nullptr);
  // The string group key bills its code array plus — at emit, where the
  // group values materialize — the dictionary payload, capped at one full
  // dictionary read (3 groups >= 3 entries here, so the full payload).
  const double region_dict = static_cast<double>(
      sales.column("region").dictionary().payload_bytes());
  const double want =
      scan_bytes(sales.column("amount")) +                       // probe key
      scan_bytes(customers.column("id")) +                       // build key
      static_cast<double>(sales.column("region").byte_size()) +  // group key
      region_dict +                                              // group emit
      static_cast<double>(sales.column("price").byte_size()) +   // agg gather
      static_cast<double>(customers.column("age").byte_size());  // build agg
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes, want);

  // One representation per column per query: a join key that is ALSO a
  // gathered aggregate input is read plain everywhere and charged once.
  const auto plan2 = QueryBuilder("sales")
                         .join("customers", "amount", "id")
                         .group_by("region")
                         .aggregate(AggOp::kSum, "amount")
                         .build();
  ExecStats stats2;
  (void)ex.execute(plan2, stats2);
  const double want2 =
      static_cast<double>(sales.column("amount").byte_size()) +  // key + agg
      scan_bytes(customers.column("id")) +                       // build key
      static_cast<double>(sales.column("region").byte_size()) +  // group key
      region_dict;                                               // group emit
  EXPECT_DOUBLE_EQ(stats2.work.dram_bytes, want2);

  // With encodings off, the same query charges the plain widths only, and
  // never less than the packed run.
  ExecOptions plain_opts;
  plain_opts.use_encodings = false;
  ExecStats plain_stats;
  (void)ex.execute(plan, plain_stats, plain_opts);
  const double plain_want =
      static_cast<double>(sales.column("amount").byte_size()) +
      static_cast<double>(customers.column("id").byte_size()) +
      static_cast<double>(sales.column("region").byte_size()) + region_dict +
      static_cast<double>(sales.column("price").byte_size()) +
      static_cast<double>(customers.column("age").byte_size());
  EXPECT_DOUBLE_EQ(plain_stats.work.dram_bytes, plain_want);
  EXPECT_LE(stats.work.dram_bytes, plain_stats.work.dram_bytes);
}

// ---------------------------------------------------------------------------
// Multi-way joins through the physical plan compiler.
// ---------------------------------------------------------------------------

TEST(Executor, ThreeTableStarJoinGroupByMatchesScalarOracle) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 0, 9)
                        .join("discounts", "amount", "amount")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "pct")
                        .aggregate(AggOp::kSum, "customers.age")
                        .build();
  const QueryResult r = ex.execute(plan, stats);

  std::map<std::string, std::int64_t> count, pct_sum, age_sum;
  const char* region_names[] = {"asia", "eu", "us"};
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t amount = i % 100;
    const std::int64_t age = amount % 50;
    if (age > 9) continue;  // customer filter
    const std::string region = region_names[i % 3];
    ++count[region];
    pct_sum[region] += amount % 7;  // discounts.pct
    age_sum[region] += age;
  }
  ASSERT_EQ(r.row_count(), count.size());
  EXPECT_EQ(stats.groups, count.size());
  EXPECT_EQ(stats.join_pairs, 200u);
  for (std::size_t g = 0; g < r.row_count(); ++g) {
    const std::string region = r.at(g, 0).as_string();
    EXPECT_EQ(r.at(g, 1).as_int(), count[region]) << region;
    EXPECT_EQ(r.at(g, 2).as_int(), pct_sum[region]) << region;
    EXPECT_EQ(r.at(g, 3).as_int(), age_sum[region]) << region;
  }
}

TEST(Executor, SnowflakeJoinChainsThroughDimension) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // brackets joins on customers.age — a second-hop (snowflake) key.
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join("brackets", "customers.age", "age")
                        .group_by("bracket")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  std::map<std::int64_t, std::int64_t> want;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t age = (i % 100) % 50;
    ++want[age / 10];
  }
  ASSERT_EQ(r.row_count(), want.size());
  for (std::size_t g = 0; g < r.row_count(); ++g)
    EXPECT_EQ(r.at(g, 1).as_int(), want[r.at(g, 0).as_int()]);
}

TEST(Executor, MultiJoinAgreesAcrossArmsAndParallelism) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  sched::ThreadPool pool(4);
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .join_filter_int("age", 5, 30)
                        .join("discounts", "amount", "amount")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "pct")
                        .aggregate(AggOp::kMin, "customers.age")
                        .build();
  ExecStats s0;
  const QueryResult want = ex.execute(plan, s0);
  for (const JoinPath path : {JoinPath::kHash, JoinPath::kRadix}) {
    ExecOptions options;
    options.join_path = path;
    ExecStats stats;
    const QueryResult got = ex.execute(plan, stats, options);
    ASSERT_EQ(got.row_count(), want.row_count());
    for (std::size_t g = 0; g < want.row_count(); ++g)
      for (std::size_t c = 0; c < want.column_count(); ++c)
        EXPECT_EQ(got.at(g, c), want.at(g, c)) << g << "," << c;
  }
  ExecOptions par;
  par.pool = &pool;
  par.parallel_join_min_rows = 1;
  ExecStats sp;
  const QueryResult parallel = ex.execute(plan, sp, par);
  ASSERT_EQ(parallel.row_count(), want.row_count());
  for (std::size_t g = 0; g < want.row_count(); ++g)
    for (std::size_t c = 0; c < want.column_count(); ++c)
      EXPECT_EQ(parallel.at(g, c), want.at(g, c)) << g << "," << c;
}

// ---------------------------------------------------------------------------
// ORDER BY / top-k over join output (the shape validate_join_plan used to
// reject outright).
// ---------------------------------------------------------------------------

TEST(Executor, JoinProjectionOrderByLimit) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 95, 99)
                        .join("customers", "amount", "id")
                        .select({"id", "customers.age"})
                        .order_by("id", false)
                        .limit(3)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.at(0, 0).as_int(), 999);  // amount 99
  EXPECT_EQ(r.at(1, 0).as_int(), 998);
  EXPECT_EQ(r.at(2, 0).as_int(), 997);
  EXPECT_EQ(r.at(0, 1).as_int(), 49);   // age of customer 99
}

TEST(Executor, JoinGroupByOrderByAggregateDescLimit) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .group_by("customers.age")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "amount")
                        .order_by("sum(amount)", false)
                        .limit(5)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 5u);
  // age k aggregates customers {k, 50+k}: sum(amount) = 10k + 10(k+50).
  // Largest sums come from the largest ages.
  for (std::size_t g = 0; g + 1 < r.row_count(); ++g)
    EXPECT_GE(r.at(g, 2).as_int(), r.at(g + 1, 2).as_int());
  EXPECT_EQ(r.at(0, 0).as_int(), 49);
  EXPECT_EQ(r.at(0, 2).as_int(), 10 * 49 + 10 * 99);
}

TEST(Executor, BaseGroupByOrderByAggregateHonored) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  // ORDER BY over aggregate output on the no-join path (used to be
  // silently ignored).
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 9)
                        .group_by("amount")
                        .aggregate(AggOp::kCount)
                        .order_by("amount", false)
                        .limit(3)
                        .build();
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.at(0, 0).as_int(), 9);
  EXPECT_EQ(r.at(1, 0).as_int(), 8);
  EXPECT_EQ(r.at(2, 0).as_int(), 7);
}

TEST(Executor, OrderByUnknownResultColumnThrows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  ExecStats stats;
  const auto plan = QueryBuilder("sales")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .order_by("sum(amount)")  // not in the select list
                        .build();
  EXPECT_THROW((void)ex.execute(plan, stats), Error);
}

// ---------------------------------------------------------------------------
// Top-k ledger discipline: the heap top-k pass bounds what downstream
// materialization reads, and the DRAM charge must equal exactly that.
// ---------------------------------------------------------------------------

TEST(Executor, TopKProjectionChargesOnlyGatheredRows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const Table& sales = cat.get("sales");
  const auto scan_bytes = [](const Column& c) {
    const bool packed =
        c.encoded() != nullptr && c.scan_byte_size() <= c.byte_size();
    return static_cast<double>(packed ? c.scan_byte_size() : c.byte_size());
  };
  const auto per_row = [](const Column& c) {
    return static_cast<double>(c.byte_size()) /
           static_cast<double>(c.size());
  };
  const auto plan = QueryBuilder("sales")
                        .select({"amount", "price"})
                        .order_by("id", false)
                        .limit(5)
                        .build();
  ExecStats stats;
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 5u);
  EXPECT_EQ(r.at(0, 0).as_int(), 999 % 100);
  // The sort key streams in full (every selected row is compared); the
  // projected columns are gathered for the 5 emitted rows only.
  const double want = scan_bytes(sales.column("id")) +
                      5 * per_row(sales.column("amount")) +
                      5 * per_row(sales.column("price"));
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes, want);

  // Without LIMIT the full selection is gathered and charged.
  ExecStats full_stats;
  (void)ex.execute(QueryBuilder("sales")
                       .select({"amount", "price"})
                       .order_by("id", false)
                       .build(),
                   full_stats);
  EXPECT_GT(full_stats.work.dram_bytes, stats.work.dram_bytes);
}

TEST(Executor, JoinTopKProjectionChargesOnlyGatheredRows) {
  const Catalog cat = make_catalog();
  Executor ex(cat);
  const Table& sales = cat.get("sales");
  const Table& customers = cat.get("customers");
  const auto scan_bytes = [](const Column& c) {
    const bool packed =
        c.encoded() != nullptr && c.scan_byte_size() <= c.byte_size();
    return static_cast<double>(packed ? c.scan_byte_size() : c.byte_size());
  };
  const auto per_row = [](const Column& c) {
    return static_cast<double>(c.byte_size()) /
           static_cast<double>(c.size());
  };
  const auto plan = QueryBuilder("sales")
                        .join("customers", "amount", "id")
                        .select({"price", "customers.age"})
                        .order_by("id", false)
                        .limit(7)
                        .build();
  ExecStats stats;
  const QueryResult r = ex.execute(plan, stats);
  ASSERT_EQ(r.row_count(), 7u);
  EXPECT_EQ(stats.join_pairs, 1000u);  // every sales row matches once
  // Keys stream once each (packed when encoded); the ORDER BY key is
  // gathered once per match; payload gathers touch the 7 emitted rows.
  const double want = scan_bytes(sales.column("amount")) +   // probe key
                      scan_bytes(customers.column("id")) +   // build key
                      1000 * per_row(sales.column("id")) +   // sort key
                      7 * per_row(sales.column("price")) +
                      7 * per_row(customers.column("age"));
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes, want);
}

// ---------------------------------------------------------------------------
// Typed sort keys: int32 / dictionary / packed ORDER BY columns are
// compared in place — the packed image is what the ledger charges, which
// is only possible because no widened int64 copy is materialized.
// ---------------------------------------------------------------------------

TEST(Executor, PackedSortKeyChargedAtPackedBytes) {
  Catalog cat;
  Table& t = cat.add(Table("t", Schema({{"k", TypeId::kInt32},
                                        {"v", TypeId::kInt64}})));
  std::vector<std::int32_t> k;
  std::vector<std::int64_t> v;
  Pcg32 rng(11);
  for (std::size_t i = 0; i < 4096; ++i) {
    k.push_back(static_cast<std::int32_t>(rng.next_bounded(200)));
    v.push_back(static_cast<std::int64_t>(i));
  }
  t.set_column(0, Column::from_int32("k", k));
  t.set_column(1, Column::from_int64("v", v));
  ASSERT_NE(t.column("k").encoded(), nullptr);
  ASSERT_LT(t.column("k").scan_byte_size(), t.column("k").byte_size());

  Executor ex(cat);
  const auto plan = QueryBuilder("t")
                        .select({"v"})
                        .order_by("k", true)
                        .limit(10)
                        .build();
  ExecStats packed_stats, plain_stats;
  const QueryResult packed = ex.execute(plan, packed_stats);
  ExecOptions plain_opts;
  plain_opts.use_encodings = false;
  const QueryResult plain = ex.execute(plan, plain_stats, plain_opts);
  ASSERT_EQ(packed.row_count(), plain.row_count());
  for (std::size_t i = 0; i < packed.row_count(); ++i)
    EXPECT_EQ(packed.at(i, 0), plain.at(i, 0)) << i;
  // The packed run's sort-key charge is the packed image; no widened
  // copy exists on either arm, and the packed arm charges strictly less.
  const double per_row_v =
      static_cast<double>(t.column("v").byte_size()) / 4096.0;
  EXPECT_DOUBLE_EQ(
      packed_stats.work.dram_bytes,
      static_cast<double>(t.column("k").scan_byte_size()) + 10 * per_row_v);
  EXPECT_DOUBLE_EQ(plain_stats.work.dram_bytes,
                   static_cast<double>(t.column("k").byte_size()) +
                       10 * per_row_v);
}

// ---------------------------------------------------------------------------
// The physical plan compiler (EXPLAIN surface).
// ---------------------------------------------------------------------------

TEST(PhysicalPlan, ExplainShowsOperatorTreeAndJoinOrder) {
  const Catalog cat = make_catalog();
  const auto plan = QueryBuilder("sales")
                        .filter_int("amount", 0, 50)
                        .join("customers", "amount", "id")
                        .join("discounts", "amount", "amount")
                        .group_by("region")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "pct")
                        .order_by("sum(pct)", false)
                        .limit(3)
                        .build();
  const PhysicalPlan phys = compile_plan(cat, plan);
  ASSERT_EQ(phys.joins.size(), 2u);
  EXPECT_EQ(phys.join_order_algorithm, "dp");
  const std::string s = phys.explain();
  for (const char* needle :
       {"limit(3)", "top-k(sum(pct) desc", "aggregate(", "join[",
        "scan+filter(sales", "join order: dp"})
    EXPECT_NE(s.find(needle), std::string::npos) << needle << " in\n" << s;
}

/// Catalog for string / double keyed joins: lineitems' part dictionary
/// only PARTIALLY overlaps parts' ("rod" is probe-only, "axle"/"shim"
/// build-only), and rates' disc dictionary covers lineitems' four
/// values plus one build-only entry.
Catalog make_keyed_catalog() {
  Catalog cat;
  Table& li = cat.add(Table("lineitems", Schema({{"part", TypeId::kString},
                                                 {"qty", TypeId::kInt64},
                                                 {"disc", TypeId::kDouble}})));
  std::vector<std::string> parts;
  std::vector<std::int64_t> qty;
  std::vector<double> disc;
  const char* part_names[] = {"bolt", "cam", "gear", "nut", "rod"};
  for (std::int64_t i = 0; i < 600; ++i) {
    parts.emplace_back(part_names[i % 5]);
    qty.push_back(i % 7);
    disc.push_back(0.5 * static_cast<double>(i % 4));  // 0.0 .. 1.5
  }
  li.set_column(0, Column::from_strings("part", parts));
  li.set_column(1, Column::from_int64("qty", qty));
  li.set_column(2, Column::from_double("disc", disc));

  Table& pt = cat.add(Table(
      "parts", Schema({{"part", TypeId::kString}, {"weight", TypeId::kInt64}})));
  std::vector<std::string> pnames = {"axle", "bolt", "cam",
                                     "gear", "nut",  "shim"};
  std::vector<std::int64_t> pweights = {1, 2, 3, 4, 5, 6};
  pt.set_column(0, Column::from_strings("part", pnames));
  pt.set_column(1, Column::from_int64("weight", pweights));

  Table& rt = cat.add(Table(
      "rates", Schema({{"disc", TypeId::kDouble}, {"fee", TypeId::kInt64}})));
  std::vector<double> rdisc = {0.0, 0.5, 1.0, 1.5, 9.5};
  std::vector<std::int64_t> rfee = {10, 20, 30, 40, 99};
  rt.set_column(0, Column::from_double("disc", rdisc));
  rt.set_column(1, Column::from_int64("fee", rfee));
  return cat;
}

TEST(Executor, StringKeyedJoinMatchesScalarOracle) {
  const Catalog cat = make_keyed_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("lineitems")
                        .join("parts", "part", "part")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "qty")
                        .aggregate(AggOp::kSum, "parts.weight")
                        .build();
  ExecStats stats;
  const QueryResult got = ex.execute(plan, stats);
  // Scalar oracle over the generator: row i joins iff part i%5 != "rod".
  const std::int64_t weight_of[] = {2, 3, 4, 5, 0};  // bolt cam gear nut rod
  std::int64_t cnt = 0, sq = 0, sw = 0;
  for (std::int64_t i = 0; i < 600; ++i) {
    if (i % 5 == 4) continue;  // "rod" is missing from parts
    ++cnt;
    sq += i % 7;
    sw += weight_of[i % 5];
  }
  ASSERT_EQ(got.row_count(), 1u);
  EXPECT_EQ(got.at(0, 0).as_int(), cnt);
  EXPECT_EQ(got.at(0, 1).as_int(), sq);
  EXPECT_EQ(got.at(0, 2).as_int(), sw);
}

TEST(Executor, StringKeyedJoinGroupByBuildKey) {
  const Catalog cat = make_keyed_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("lineitems")
                        .join("parts", "part", "part")
                        .group_by("parts.part")
                        .aggregate(AggOp::kCount)
                        .build();
  ExecStats stats;
  const QueryResult got = ex.execute(plan, stats);
  std::map<std::string, std::int64_t> counts;
  for (std::size_t r = 0; r < got.row_count(); ++r)
    counts[got.at(r, 0).as_string()] = got.at(r, 1).as_int();
  // 600 rows cycle 5 parts; "rod" never matches, "axle"/"shim" never
  // receive a probe. The four shared parts get 120 rows each.
  const std::map<std::string, std::int64_t> want = {
      {"bolt", 120}, {"cam", 120}, {"gear", 120}, {"nut", 120}};
  EXPECT_EQ(counts, want);
}

TEST(Executor, StringKeyedJoinSharedDictionaryMatchesEveryRow) {
  // Build side holding exactly the probe's value set: the remap is the
  // identity permutation and every probe row matches once.
  Catalog cat = make_keyed_catalog();
  Table& all = cat.add(Table(
      "allparts",
      Schema({{"part", TypeId::kString}, {"rank", TypeId::kInt64}})));
  std::vector<std::string> names = {"bolt", "cam", "gear", "nut", "rod"};
  std::vector<std::int64_t> ranks = {1, 2, 3, 4, 5};
  all.set_column(0, Column::from_strings("part", names));
  all.set_column(1, Column::from_int64("rank", ranks));
  Executor ex(cat);
  ExecStats stats;
  const QueryResult got = ex.execute(QueryBuilder("lineitems")
                                         .join("allparts", "part", "part")
                                         .aggregate(AggOp::kCount)
                                         .build(),
                                     stats);
  EXPECT_EQ(got.at(0, 0).as_int(), 600);
}

TEST(Executor, DoubleKeyedJoinMatchesScalarOracle) {
  const Catalog cat = make_keyed_catalog();
  Executor ex(cat);
  const auto plan = QueryBuilder("lineitems")
                        .join("rates", "disc", "disc")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "rates.fee")
                        .build();
  ExecStats stats;
  const QueryResult got = ex.execute(plan, stats);
  // disc cycles {0.0, 0.5, 1.0, 1.5} (150 rows each); fee 10/20/30/40;
  // the build-only 9.5 never matches.
  EXPECT_EQ(got.at(0, 0).as_int(), 600);
  EXPECT_EQ(got.at(0, 1).as_int(), 150 * (10 + 20 + 30 + 40));
}

TEST(Executor, DoubleJoinKeyWithNaNThrows) {
  Catalog cat = make_keyed_catalog();
  Table& bad = cat.add(Table(
      "badrates", Schema({{"disc", TypeId::kDouble}, {"fee", TypeId::kInt64}})));
  std::vector<double> rdisc = {0.0, std::numeric_limits<double>::quiet_NaN()};
  std::vector<std::int64_t> rfee = {10, 20};
  bad.set_column(0, Column::from_double("disc", rdisc));
  bad.set_column(1, Column::from_int64("fee", rfee));
  Executor ex(cat);
  ExecStats stats;
  try {
    (void)ex.execute(QueryBuilder("lineitems")
                         .join("badrates", "disc", "disc")
                         .aggregate(AggOp::kCount)
                         .build(),
                     stats);
    FAIL() << "expected NaN double join key to be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("NaN"), std::string::npos)
        << e.what();
  }
}

TEST(PhysicalPlan, ExplainSurfacesJoinKeyTypeAndRemap) {
  const Catalog cat = make_keyed_catalog();
  const auto splan = QueryBuilder("lineitems")
                         .join("parts", "part", "part")
                         .aggregate(AggOp::kCount)
                         .build();
  const std::string s = compile_plan(cat, splan).explain();
  EXPECT_NE(s.find("key=string codes, remap=6 entries"), std::string::npos)
      << s;
  const auto dplan = QueryBuilder("lineitems")
                         .join("rates", "disc", "disc")
                         .aggregate(AggOp::kCount)
                         .build();
  const std::string d = compile_plan(cat, dplan).explain();
  EXPECT_NE(d.find("key=double codes, remap=5 entries"), std::string::npos)
      << d;
}

TEST(PhysicalPlan, AmbiguousUnqualifiedJoinKeyNamesCandidates) {
  // f lacks "x"; d1 AND d2 both own it — binding the third join's left
  // key silently to either would be wrong, so the compiler must reject
  // and name both candidates. Qualifying the key resolves it.
  Catalog cat;
  Table& f = cat.add(Table("f", Schema({{"k", TypeId::kInt32}})));
  f.set_column(0, Column::from_int32("k", std::vector<std::int32_t>{1, 2}));
  Table& d1 = cat.add(
      Table("d1", Schema({{"k1", TypeId::kInt32}, {"x", TypeId::kInt32}})));
  d1.set_column(0, Column::from_int32("k1", std::vector<std::int32_t>{1, 2}));
  d1.set_column(1, Column::from_int32("x", std::vector<std::int32_t>{5, 6}));
  Table& d2 = cat.add(
      Table("d2", Schema({{"k2", TypeId::kInt32}, {"x", TypeId::kInt32}})));
  d2.set_column(0, Column::from_int32("k2", std::vector<std::int32_t>{1, 2}));
  d2.set_column(1, Column::from_int32("x", std::vector<std::int32_t>{5, 6}));
  Table& d3 = cat.add(
      Table("d3", Schema({{"k3", TypeId::kInt32}, {"y", TypeId::kInt32}})));
  d3.set_column(0, Column::from_int32("k3", std::vector<std::int32_t>{5, 6}));
  d3.set_column(1, Column::from_int32("y", std::vector<std::int32_t>{7, 8}));

  const auto ambiguous = QueryBuilder("f")
                             .join("d1", "k", "k1")
                             .join("d2", "k", "k2")
                             .join("d3", "x", "k3")
                             .aggregate(AggOp::kCount)
                             .build();
  try {
    (void)compile_plan(cat, ambiguous);
    FAIL() << "expected an ambiguity error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ambiguous join key column \"x\""), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("d1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("d2"), std::string::npos) << msg;
  }
  const auto qualified = QueryBuilder("f")
                             .join("d1", "k", "k1")
                             .join("d2", "k", "k2")
                             .join("d3", "d2.x", "k3")
                             .aggregate(AggOp::kCount)
                             .build();
  EXPECT_NO_THROW((void)compile_plan(cat, qualified));
}

TEST(PhysicalPlan, SnowflakeStepsAreTopologicallyOrdered) {
  const Catalog cat = make_catalog();
  const auto plan = QueryBuilder("sales")
                        .join("brackets", "customers.age", "age")
                        .join("customers", "amount", "id")
                        .aggregate(AggOp::kCount)
                        .build();
  // brackets depends on customers: the compiler must execute customers
  // first regardless of declaration order.
  const PhysicalPlan phys = compile_plan(cat, plan);
  ASSERT_EQ(phys.joins.size(), 2u);
  EXPECT_EQ(phys.logical.joins[phys.joins[0].logical_index].table,
            "customers");
  EXPECT_EQ(phys.joins[1].source_side, 1u);

  Executor ex(cat);
  ExecStats stats;
  const QueryResult r = ex.execute(plan, stats);
  EXPECT_EQ(r.at(0, 0).as_int(), 1000);  // every chain row matches once
}

}  // namespace
}  // namespace eidb::query
