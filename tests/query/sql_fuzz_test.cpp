// Robustness fuzzing of the SQL parser: random token soups and mutated
// valid statements must either parse or throw eidb::Error — never crash,
// hang, or throw anything else.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/sql.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

const char* kTokens[] = {
    "SELECT", "FROM",  "WHERE",   "AND",   "GROUP", "BY",    "ORDER",
    "LIMIT",  "JOIN",  "ON",      "ASC",   "DESC",  "BETWEEN", "COUNT",
    "SUM",    "MIN",   "MAX",     "AVG",   "*",     "(",     ")",
    ",",      "=",     "<",       ">",     "<=",    ">=",    ".",
    "+",      "-",     "/",       "t",     "col",   "x",     "42",
    "-7",     "3.14",  "'str'",   "''",    "tbl2",  "1000000"};

void expect_parse_or_error(const std::string& sql) {
  try {
    (void)parse_sql(sql);
  } catch (const Error&) {
    // expected failure mode
  }
  // Any other exception type or a crash fails the test framework itself.
}

TEST(SqlFuzz, RandomTokenSoup) {
  Pcg32 rng(0xF00D);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.next_bounded(20));
    for (int i = 0; i < len; ++i) {
      sql += kTokens[rng.next_bounded(std::size(kTokens))];
      sql += ' ';
    }
    expect_parse_or_error(sql);
  }
}

TEST(SqlFuzz, MutatedValidStatements) {
  const std::string base =
      "SELECT COUNT(*), SUM(a * (1 - b)) FROM t JOIN u ON t.k = u.k WHERE "
      "a BETWEEN 1 AND 9 AND u.c = 'x' GROUP BY g ORDER BY g DESC LIMIT 5";
  // The pristine statement must parse.
  EXPECT_NO_THROW((void)parse_sql(base));

  Pcg32 rng(0xBEEF);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string sql = base;
    const int mutations = 1 + static_cast<int>(rng.next_bounded(4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = rng.next_bounded(static_cast<std::uint32_t>(sql.size()));
      switch (rng.next_bounded(3)) {
        case 0:  // delete a character
          sql.erase(pos, 1);
          break;
        case 1:  // duplicate a character
          sql.insert(pos, 1, sql[pos]);
          break;
        default:  // replace with a random printable
          sql[pos] = static_cast<char>(' ' + rng.next_bounded(94));
          break;
      }
    }
    expect_parse_or_error(sql);
  }
}

TEST(SqlFuzz, PathologicalInputs) {
  expect_parse_or_error(std::string(10000, '('));
  expect_parse_or_error("SELECT " + std::string(5000, '*') + " FROM t");
  expect_parse_or_error(std::string(1 << 16, 'a'));
  expect_parse_or_error("SELECT SUM(" + std::string(2000, '-') + "1) FROM t");
  std::string deep = "SELECT SUM(";
  for (int i = 0; i < 1000; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 1000; ++i) deep += ")";
  deep += ") FROM t";
  expect_parse_or_error(deep);
}

}  // namespace
}  // namespace eidb::query
