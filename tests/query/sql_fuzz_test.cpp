// Robustness fuzzing of the SQL parser and executor: random token soups
// and mutated valid statements must either parse or throw eidb::Error —
// never crash, hang, or throw anything else — and generated *valid*
// statements must produce identical results whichever physical column
// encoding (plain / bit-packed / FOR) each column is toggled to — and
// whichever shard count the FROM table is partitioned into — so the
// fuzzer exercises the packed scan/agg kernels and the distributed
// partial-merge / gather paths, not just the plain single-node ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "query/executor.hpp"
#include "query/sql.hpp"
#include "sched/thread_pool.hpp"
#include "storage/column.hpp"
#include "storage/table.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

const char* kTokens[] = {
    "SELECT", "FROM",  "WHERE",   "AND",   "GROUP", "BY",    "ORDER",
    "LIMIT",  "JOIN",  "ON",      "ASC",   "DESC",  "BETWEEN", "COUNT",
    "SUM",    "MIN",   "MAX",     "AVG",   "*",     "(",     ")",
    ",",      "=",     "<",       ">",     "<=",    ">=",    ".",
    "+",      "-",     "/",       "t",     "col",   "x",     "42",
    "-7",     "3.14",  "'str'",   "''",    "tbl2",  "1000000"};

void expect_parse_or_error(const std::string& sql) {
  try {
    (void)parse_sql(sql);
  } catch (const Error&) {
    // expected failure mode
  }
  // Any other exception type or a crash fails the test framework itself.
}

TEST(SqlFuzz, RandomTokenSoup) {
  Pcg32 rng(0xF00D);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.next_bounded(20));
    for (int i = 0; i < len; ++i) {
      sql += kTokens[rng.next_bounded(std::size(kTokens))];
      sql += ' ';
    }
    expect_parse_or_error(sql);
  }
}

TEST(SqlFuzz, MutatedValidStatements) {
  const std::string base =
      "SELECT COUNT(*), SUM(a * (1 - b)) FROM t JOIN u ON t.k = u.k WHERE "
      "a BETWEEN 1 AND 9 AND u.c = 'x' GROUP BY g ORDER BY g DESC LIMIT 5";
  // The pristine statement must parse.
  EXPECT_NO_THROW((void)parse_sql(base));

  Pcg32 rng(0xBEEF);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string sql = base;
    const int mutations = 1 + static_cast<int>(rng.next_bounded(4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = rng.next_bounded(static_cast<std::uint32_t>(sql.size()));
      switch (rng.next_bounded(3)) {
        case 0:  // delete a character
          sql.erase(pos, 1);
          break;
        case 1:  // duplicate a character
          sql.insert(pos, 1, sql[pos]);
          break;
        default:  // replace with a random printable
          sql[pos] = static_cast<char>(' ' + rng.next_bounded(94));
          break;
      }
    }
    expect_parse_or_error(sql);
  }
}

// ---------------------------------------------------------------------------
// Execution fuzz under random column encodings.
// ---------------------------------------------------------------------------

storage::Catalog make_fuzz_catalog(std::uint64_t seed) {
  using storage::Column;
  using storage::TypeId;
  storage::Catalog cat;
  storage::Table& t = cat.add(storage::Table(
      "t", storage::Schema({{"a", TypeId::kInt32},
                            {"b", TypeId::kInt64},
                            {"g", TypeId::kInt32},
                            {"s", TypeId::kString},
                            {"d", TypeId::kDouble},
                            {"dj", TypeId::kDouble}})));
  Pcg32 rng(seed);
  std::vector<std::int32_t> a, g;
  std::vector<std::int64_t> b;
  std::vector<std::string> s;
  std::vector<double> d, dj;
  const char* tags[] = {"a", "bb", "ccc", "dddd"};
  const std::size_t rows = 900 + rng.next_bounded(300);  // partial tails
  for (std::size_t i = 0; i < rows; ++i) {
    a.push_back(static_cast<std::int32_t>(rng.next_in_range(-40, 400)));
    b.push_back(rng.next_in_range(0, 90'000));
    g.push_back(static_cast<std::int32_t>(rng.next_bounded(12)));
    s.emplace_back(tags[rng.next_bounded(4)]);
    d.push_back(rng.next_double() * 10.0);
    dj.push_back(0.5 * static_cast<double>(rng.next_bounded(10)));
  }
  t.set_column(0, Column::from_int32("a", a));
  t.set_column(1, Column::from_int64("b", b));
  t.set_column(2, Column::from_int32("g", g));
  t.set_column(3, Column::from_strings("s", s));
  t.set_column(4, Column::from_double("d", d));
  t.set_column(5, Column::from_double("dj", dj));

  // u(key, w, c, sk, dkey): the join build side — key overlaps t.g's
  // [0, 12) domain with duplicates, so generated joins fan out. sk's
  // dictionary only partially overlaps t.s ("a" is probe-only, "eeeee"
  // build-only), and dkey's 12-value domain covers t.dj's 10 plus two
  // build-only values — generated string / double joins exercise the
  // cross-dictionary remap with misses on both sides.
  storage::Table& u = cat.add(storage::Table(
      "u", storage::Schema({{"key", TypeId::kInt32},
                            {"w", TypeId::kInt64},
                            {"c", TypeId::kString},
                            {"sk", TypeId::kString},
                            {"dkey", TypeId::kDouble}})));
  std::vector<std::int32_t> ukey;
  std::vector<std::int64_t> uw;
  std::vector<std::string> uc, usk;
  std::vector<double> udkey;
  const char* cats[] = {"north", "south", "east"};
  const char* sks[] = {"bb", "ccc", "dddd", "eeeee"};
  const std::size_t urows = 20 + rng.next_bounded(30);
  for (std::size_t i = 0; i < urows; ++i) {
    ukey.push_back(static_cast<std::int32_t>(rng.next_bounded(14)));
    uw.push_back(rng.next_in_range(-500, 500));
    uc.emplace_back(cats[rng.next_bounded(3)]);
    usk.emplace_back(sks[rng.next_bounded(4)]);
    udkey.push_back(0.5 * static_cast<double>(rng.next_bounded(12)));
  }
  u.set_column(0, Column::from_int32("key", ukey));
  u.set_column(1, Column::from_int64("w", uw));
  u.set_column(2, Column::from_strings("c", uc));
  u.set_column(3, Column::from_strings("sk", usk));
  u.set_column(4, Column::from_double("dkey", udkey));

  // v(vkey, z): a second dimension keyed on t.g's domain — generated
  // statements chain JOIN u ... JOIN v ... into multi-way plans.
  storage::Table& v = cat.add(storage::Table(
      "v", storage::Schema({{"vkey", TypeId::kInt32},
                            {"z", TypeId::kInt64}})));
  std::vector<std::int32_t> vkey;
  std::vector<std::int64_t> vz;
  const std::size_t vrows = 10 + rng.next_bounded(20);
  for (std::size_t i = 0; i < vrows; ++i) {
    vkey.push_back(static_cast<std::int32_t>(rng.next_bounded(14)));
    vz.push_back(rng.next_in_range(-50, 50));
  }
  v.set_column(0, Column::from_int32("vkey", vkey));
  v.set_column(1, Column::from_int64("z", vz));
  return cat;
}

/// Random valid statement over t's (and sometimes u's / v's) columns:
/// filters, single and multi-way joins with and without GROUP BY (probe-
/// and build-side keys and aggregates), ORDER BY / LIMIT over both
/// projections and aggregate output.
std::string generate_sql(Pcg32& rng) {
  const char* aggs[] = {"COUNT(*)", "SUM(a)",   "SUM(b)", "MIN(a)",
                        "MAX(b)",   "AVG(d)",   "MIN(g)", "MAX(g)",
                        "AVG(b)",   "SUM(a + g)"};
  const char* join_aggs[] = {"COUNT(*)",  "SUM(a)",      "SUM(b)",
                             "MIN(a)",    "MAX(g)",      "SUM(u.w)",
                             "MIN(u.w)",  "MAX(u.w)"};
  const char* multi_join_aggs[] = {"COUNT(*)", "SUM(a)",   "SUM(u.w)",
                                   "MIN(u.w)", "SUM(v.z)", "MAX(v.z)",
                                   "MIN(b)"};
  std::string sql = "SELECT ";
  const bool projection = rng.next_bounded(5) == 0;
  const int joins =
      projection ? static_cast<int>(rng.next_bounded(2))
                 : (rng.next_bounded(3) == 0
                        ? 1 + static_cast<int>(rng.next_bounded(2))
                        : 0);
  const bool join = joins > 0;
  if (projection) {
    sql += "a, b, g FROM t";
  } else {
    const int n = 1 + static_cast<int>(rng.next_bounded(3));
    for (int i = 0; i < n; ++i) {
      if (i > 0) sql += ", ";
      if (joins >= 2)
        sql += multi_join_aggs[rng.next_bounded(std::size(multi_join_aggs))];
      else if (joins == 1)
        sql += join_aggs[rng.next_bounded(std::size(join_aggs))];
      else
        sql += aggs[rng.next_bounded(std::size(aggs))];
    }
    sql += " FROM t";
  }
  if (joins >= 1) {
    // Join key type: integer, string (cross-dictionary remap), or double
    // (ordered double-code domains).
    const char* join_on[] = {"t.g = u.key", "t.s = u.sk", "t.dj = u.dkey"};
    sql += std::string(" JOIN u ON ") + join_on[rng.next_bounded(3)];
  }
  if (joins >= 2) sql += " JOIN v ON t.g = v.vkey";
  const int preds = static_cast<int>(rng.next_bounded(3));
  for (int i = 0; i < preds; ++i) {
    sql += i == 0 ? " WHERE " : " AND ";
    switch (rng.next_bounded(join ? 5 : 4)) {
      case 0:
        sql += "a BETWEEN " + std::to_string(rng.next_in_range(-60, 100)) +
               " AND " + std::to_string(rng.next_in_range(100, 450));
        break;
      case 1:
        sql += "b <= " + std::to_string(rng.next_in_range(0, 95'000));
        break;
      case 2:
        sql += "g = " + std::to_string(rng.next_in_range(0, 13));
        break;
      case 3:
        sql += "s <= 'ccc'";
        break;
      default:
        sql += "u.w BETWEEN " + std::to_string(rng.next_in_range(-500, 0)) +
               " AND " + std::to_string(rng.next_in_range(0, 500));
        break;
    }
  }
  bool grouped = false;
  if (!projection && rng.next_bounded(2) == 0) {
    grouped = true;
    if (joins >= 2) {
      const char* keys[] = {"g", "s", "u.c", "v.vkey", "dj"};
      sql += std::string(" GROUP BY ") + keys[rng.next_bounded(5)];
    } else if (joins == 1) {
      const char* keys[] = {"g", "s", "u.c", "u.key", "dj", "u.sk"};
      sql += std::string(" GROUP BY ") + keys[rng.next_bounded(6)];
    } else {
      const char* keys[] = {"g", "s", "dj"};
      sql += std::string(" GROUP BY ") + keys[rng.next_bounded(3)];
    }
  }
  if (projection) {
    sql += " ORDER BY b DESC LIMIT 20";
  } else if (grouped && rng.next_bounded(3) == 0) {
    // ORDER BY over aggregate output (by count so ties are rare), with
    // and without LIMIT.
    sql += " ORDER BY COUNT(*) DESC";
    if (rng.next_bounded(2) == 0) sql += " LIMIT 5";
  }
  return sql;
}

TEST(SqlFuzz, ExecutionParityUnderRandomEncodings) {
  using storage::Encoding;
  storage::Catalog cat = make_fuzz_catalog(0xE1DB);
  storage::Table& t = cat.get("t");
  storage::Table& u = cat.get("u");
  storage::Table& v = cat.get("v");
  Executor ex(cat);
  Pcg32 rng(0xC0DE);
  const Encoding encodings[] = {Encoding::kPlain, Encoding::kBitPacked,
                                Encoding::kForBitPacked};
  // Pools of different widths: each iteration randomly picks serial
  // execution or one of these, with every parallel threshold forced to 1,
  // so the fuzzer also hunts thread-count-dependent results.
  sched::ThreadPool pool2(2), pool3(3), pool8(8);
  sched::ThreadPool* pools[] = {nullptr, &pool2, &pool3, &pool8};
  for (int trial = 0; trial < 300; ++trial) {
    // Toggle every integer column's physical encoding for this iteration
    // (kBitPacked degrades to FOR on negative-domain columns).
    const auto toggle = [&](storage::Table& table, const char* col) {
      Encoding e = encodings[rng.next_bounded(3)];
      if (e == Encoding::kBitPacked && table.column(col).stats().min < 0)
        e = Encoding::kForBitPacked;
      table.recode(col, e);
    };
    for (const char* col : {"a", "b", "g", "s"}) toggle(t, col);
    for (const char* col : {"key", "w", "c", "sk"}) toggle(u, col);
    for (const char* col : {"vkey", "z"}) toggle(v, col);
    // Repartition the FROM table at a random shard count: the sharded arm
    // below must agree with single-node whatever the row placement.
    const std::size_t shard_counts[] = {1, 2, 4, 8};
    const std::size_t shards = shard_counts[rng.next_bounded(4)];
    t.build_partitions("g", shards);
    const std::string sql = generate_sql(rng);
    LogicalPlan plan;
    try {
      plan = parse_sql(sql);
    } catch (const Error&) {
      FAIL() << "generated SQL failed to parse: " << sql;
    }
    ExecOptions plain_opts;
    plain_opts.use_encodings = false;
    ExecOptions packed_opts;
    packed_opts.pool = pools[rng.next_bounded(std::size(pools))];
    if (packed_opts.pool != nullptr) {
      packed_opts.parallel_agg_min_rows = 1;
      packed_opts.parallel_join_min_rows = 1;
      packed_opts.parallel_sort_min_rows = 1;
      packed_opts.parallel_project_min_rows = 1;
    }
    // Random per-iteration adaptive-scan toggle: the mid-scan kernel
    // re-picker must be invisible in results whatever else is in play.
    packed_opts.adaptive_scan = rng.next_bounded(2) == 1;
    ExecStats plain_stats, packed_stats;
    QueryResult want, got;
    bool plain_threw = false, packed_threw = false;
    try {
      want = ex.execute(plan, plain_stats, plain_opts);
    } catch (const Error&) {
      plain_threw = true;
    }
    try {
      got = ex.execute(plan, packed_stats, packed_opts);
    } catch (const Error&) {
      packed_threw = true;
    }
    // A semantic rejection is fine — but both paths must agree on it; a
    // one-sided throw is exactly the packed/plain divergence this fuzzer
    // hunts.
    ASSERT_EQ(plain_threw, packed_threw) << sql;
    if (plain_threw) continue;
    const auto expect_identical = [&](const QueryResult& other,
                                      const char* what) {
      ASSERT_EQ(want.row_count(), other.row_count()) << what << ": " << sql;
      ASSERT_EQ(want.column_names(), other.column_names())
          << what << ": " << sql;
      for (std::size_t r = 0; r < want.row_count(); ++r)
        for (std::size_t c = 0; c < want.column_count(); ++c)
          ASSERT_EQ(want.at(r, c), other.at(r, c))
              << what << ": " << sql << " row " << r << " col " << c;
    };
    expect_identical(got, "packed");
    EXPECT_LE(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes)
        << sql;
    // Sharded arm: a statement the single-node paths accept must also run
    // sharded (same pool), bit-identically, at whatever shard count this
    // iteration drew.
    ExecOptions dist_opts = packed_opts;
    dist_opts.shard_count = shards;
    ExecStats dist_stats;
    QueryResult dist;
    try {
      dist = ex.execute(plan, dist_stats, dist_opts);
    } catch (const Error& e) {
      FAIL() << "sharded(" << shards << ") rejected what single-node ran: "
             << sql << " — " << e.what();
    }
    expect_identical(dist, "sharded");
    EXPECT_EQ(dist_stats.shards_executed, shards) << sql;
    if (shards == 1) {
      EXPECT_EQ(dist_stats.wire_messages, 0u) << sql;
    }
    // Single ungrouped, unsorted joins also have the legacy
    // pair-materializing oracle — but it only ever read FROM-table
    // aggregate columns, so skip statements with build-side (qualified)
    // aggregates, and it supports neither chains nor ORDER BY, nor the
    // code-domain (string / double) join keys compile_plan rejects on it.
    const bool probe_side_only =
        std::all_of(plan.aggregates.begin(), plan.aggregates.end(),
                    [](const AggSpec& a) {
                      return a.column.find('.') == std::string::npos;
                    });
    const bool int_keyed =
        plan.joins.size() != 1 ||
        [&] {
          const storage::TypeId kt = cat.get(plan.joins[0].table)
                                         .column(plan.joins[0].right_key)
                                         .type();
          return kt == storage::TypeId::kInt32 ||
                 kt == storage::TypeId::kInt64;
        }();
    if (plan.joins.size() == 1 && !plan.has_group_by() && probe_side_only &&
        !plan.order_by.has_value() && int_keyed) {
      ExecOptions legacy_opts;
      legacy_opts.use_encodings = false;
      legacy_opts.join_path = JoinPath::kPairMaterialize;
      ExecStats legacy_stats;
      const QueryResult legacy = ex.execute(plan, legacy_stats, legacy_opts);
      expect_identical(legacy, "legacy-join");
    }
  }
}

TEST(SqlFuzz, PathologicalInputs) {
  expect_parse_or_error(std::string(10000, '('));
  expect_parse_or_error("SELECT " + std::string(5000, '*') + " FROM t");
  expect_parse_or_error(std::string(1 << 16, 'a'));
  expect_parse_or_error("SELECT SUM(" + std::string(2000, '-') + "1) FROM t");
  std::string deep = "SELECT SUM(";
  for (int i = 0; i < 1000; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 1000; ++i) deep += ")";
  deep += ") FROM t";
  expect_parse_or_error(deep);
}

}  // namespace
}  // namespace eidb::query
