// The shared differential-parity fixture: one randomized star-schema
// catalog (every distribution shape the encoder must survive) plus the
// generated matrix of filter / group-by / aggregate / join queries that
// every execution-path pair must answer BIT-IDENTICALLY. Consumed by the
// compressed-parity suite (packed vs plain) and the distributed-parity
// suite (sharded vs single-node).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "query/plan.hpp"
#include "query/result.hpp"
#include "storage/column.hpp"
#include "storage/table.hpp"
#include "util/rng.hpp"

namespace eidb::query::parity {

// 5'000 rows: not a multiple of 64, so every kernel exercises its partial
// tail word; large enough for full, partial and dead selection words.
inline constexpr std::size_t kRows = 5'000;

/// facts(u32, skew32, neg32, const32, wide64, neg64, tag, d, dk) — one
/// column per distribution shape the encoder must survive: uniform
/// non-negative (kBitPacked), skewed (dense head, sparse tail),
/// negative-domain (kForBitPacked only), all-equal (width-0 packing),
/// wide int64, negative int64, dictionary codes, a plain double, and a
/// small-domain double that doubles as a join / group key.
inline storage::Catalog make_catalog(std::uint64_t seed) {
  using storage::Column;
  using storage::Schema;
  using storage::Table;
  using storage::TypeId;
  storage::Catalog cat;
  Table& t = cat.add(Table("facts", Schema({{"u32", TypeId::kInt32},
                                            {"skew32", TypeId::kInt32},
                                            {"neg32", TypeId::kInt32},
                                            {"const32", TypeId::kInt32},
                                            {"wide64", TypeId::kInt64},
                                            {"neg64", TypeId::kInt64},
                                            {"tag", TypeId::kString},
                                            {"d", TypeId::kDouble},
                                            {"dk", TypeId::kDouble}})));
  Pcg32 rng(seed);
  std::vector<std::int32_t> u32, skew32, neg32, const32;
  std::vector<std::int64_t> wide64, neg64;
  std::vector<std::string> tag;
  std::vector<double> d, dk;
  const char* tags[] = {"ash", "birch", "cedar", "elm", "fir", "oak"};
  for (std::size_t i = 0; i < kRows; ++i) {
    u32.push_back(static_cast<std::int32_t>(rng.next_bounded(1000)));
    // Skew: ~87% land in a tiny head domain, the rest spread wide.
    skew32.push_back(static_cast<std::int32_t>(
        rng.next_bounded(8) != 0 ? rng.next_bounded(4)
                                 : 100 + rng.next_bounded(5000)));
    neg32.push_back(static_cast<std::int32_t>(rng.next_in_range(-700, 300)));
    const32.push_back(42);
    wide64.push_back(rng.next_in_range(0, 3'000'000));
    neg64.push_back(rng.next_in_range(-50'000, -10));
    tag.emplace_back(tags[rng.next_bounded(6)]);
    d.push_back(rng.next_double() * 200.0 - 100.0);
    dk.push_back(0.25 * static_cast<double>(rng.next_bounded(40)));
  }
  t.set_column(0, Column::from_int32("u32", u32));
  t.set_column(1, Column::from_int32("skew32", skew32));
  t.set_column(2, Column::from_int32("neg32", neg32));
  t.set_column(3, Column::from_int32("const32", const32));
  t.set_column(4, Column::from_int64("wide64", wide64));
  t.set_column(5, Column::from_int64("neg64", neg64));
  t.set_column(6, Column::from_strings("tag", tag));
  t.set_column(7, Column::from_double("d", d));
  t.set_column(8, Column::from_double("dk", dk));

  // dim(key, weight, cat, skey, dkey) for joins: keys overlap u32's
  // domain partially, keys 0..49 appear TWICE (duplicate build keys ->
  // pair fan-out), and `cat` gives a build-side string group key.
  // `skey` is a string join key whose dictionary only PARTIALLY overlaps
  // facts.tag ("hazel"/"pine" remap to no probe code; "ash"/"oak" never
  // match), and `dkey` is a double join key over a 48-value domain that
  // covers facts.dk's 40 values plus 8 build-only ones.
  Table& dim = cat.add(Table("dim", Schema({{"key", TypeId::kInt32},
                                            {"weight", TypeId::kInt64},
                                            {"cat", TypeId::kString},
                                            {"skey", TypeId::kString},
                                            {"dkey", TypeId::kDouble}})));
  std::vector<std::int32_t> keys;
  std::vector<std::int64_t> weights;
  std::vector<std::string> cats, skeys;
  std::vector<double> dkeys;
  const char* cat_names[] = {"red", "green", "blue"};
  const char* skey_names[] = {"birch", "cedar", "elm",
                              "fir",   "hazel", "pine"};
  for (std::int32_t k = 0; k < 700; ++k) {
    keys.push_back(k);
    weights.push_back(rng.next_in_range(-9, 9));
    cats.emplace_back(cat_names[rng.next_bounded(3)]);
    skeys.emplace_back(skey_names[rng.next_bounded(6)]);
    dkeys.push_back(0.25 * static_cast<double>(rng.next_bounded(48)));
  }
  for (std::int32_t k = 0; k < 50; ++k) {  // duplicates
    keys.push_back(k);
    weights.push_back(rng.next_in_range(-9, 9));
    cats.emplace_back(cat_names[rng.next_bounded(3)]);
    skeys.emplace_back(skey_names[rng.next_bounded(6)]);
    dkeys.push_back(0.25 * static_cast<double>(rng.next_bounded(48)));
  }
  dim.set_column(0, Column::from_int32("key", keys));
  dim.set_column(1, Column::from_int64("weight", weights));
  dim.set_column(2, Column::from_strings("cat", cats));
  dim.set_column(3, Column::from_strings("skey", skeys));
  dim.set_column(4, Column::from_double("dkey", dkeys));

  // dim2(key2, score): a second star dimension over u32's domain — only
  // even keys exist, so the chained join filters — for the multi-way
  // (3-table) join matrix.
  Table& dim2 = cat.add(Table("dim2", Schema({{"key2", TypeId::kInt32},
                                              {"score", TypeId::kInt64}})));
  std::vector<std::int32_t> keys2;
  std::vector<std::int64_t> scores;
  for (std::int32_t k = 0; k < 450; ++k) {
    keys2.push_back(2 * k);
    scores.push_back(rng.next_in_range(-20, 20));
  }
  dim2.set_column(0, Column::from_int32("key2", keys2));
  dim2.set_column(1, Column::from_int64("score", scores));
  return cat;
}

/// Re-encodes every integer-typed column of both tables. `forced` ==
/// nullopt restores the automatic (stats-driven) choice; kBitPacked is
/// silently replaced by kForBitPacked on negative domains, where it is
/// inapplicable by definition.
inline void recode_all(storage::Catalog& cat,
                       std::optional<storage::Encoding> forced) {
  using storage::Encoding;
  for (const std::string& tname : cat.table_names()) {
    storage::Table& t = cat.get(tname);
    for (const auto& def : t.schema().columns()) {
      if (def.type == storage::TypeId::kDouble) continue;
      Encoding e;
      if (forced.has_value()) {
        e = *forced;
        if (e == Encoding::kBitPacked && t.column(def.name).stats().min < 0)
          e = Encoding::kForBitPacked;
      } else {
        e = t.column(def.name).choose_encoding();
      }
      t.recode(def.name, e);
    }
  }
}

/// Bit-identical result comparison: every Value must compare equal under
/// the variant's operator== — including doubles, since both compared
/// paths must accumulate in the same order.
inline void expect_identical(const QueryResult& want, const QueryResult& got,
                             const std::string& label) {
  ASSERT_EQ(want.column_names(), got.column_names()) << label;
  ASSERT_EQ(want.row_count(), got.row_count()) << label;
  for (std::size_t r = 0; r < want.row_count(); ++r)
    for (std::size_t c = 0; c < want.column_count(); ++c)
      ASSERT_EQ(want.at(r, c), got.at(r, c))
          << label << " row " << r << " col " << c;
}

/// The query matrix: every supported shape over the distribution columns.
inline std::vector<std::pair<std::string, LogicalPlan>> query_matrix() {
  std::vector<std::pair<std::string, LogicalPlan>> qs;
  const auto add = [&](const std::string& name, LogicalPlan plan) {
    qs.emplace_back(name, std::move(plan));
  };
  // Filters: wide / narrow / point / empty / covering / negative bounds.
  add("filter_count", QueryBuilder("facts")
                          .filter_int("u32", 100, 899)
                          .aggregate(AggOp::kCount)
                          .build());
  add("filter_point", QueryBuilder("facts")
                          .filter_int("skew32", 2, 2)
                          .aggregate(AggOp::kCount)
                          .build());
  add("filter_negative", QueryBuilder("facts")
                             .filter_int("neg32", -650, -1)
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "neg32")
                             .build());
  add("filter_const_hit", QueryBuilder("facts")
                              .filter_int("const32", 40, 50)
                              .aggregate(AggOp::kCount)
                              .build());
  add("filter_const_miss", QueryBuilder("facts")
                               .filter_int("const32", 43, 99)
                               .aggregate(AggOp::kCount)
                               .build());
  add("filter_conjunctive", QueryBuilder("facts")
                                .filter_int("u32", 50, 800)
                                .filter_int("wide64", 0, 1'500'000)
                                .filter_int("neg32", -500, 200)
                                .aggregate(AggOp::kCount)
                                .aggregate(AggOp::kMin, "neg64")
                                .build());
  add("filter_string", QueryBuilder("facts")
                           .filter_string("tag", "birch", "fir")
                           .aggregate(AggOp::kCount)
                           .build());
  // Global multi-aggregates over every input type.
  add("global_multi", QueryBuilder("facts")
                          .filter_int("u32", 0, 750)
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "wide64")
                          .aggregate(AggOp::kMin, "neg64")
                          .aggregate(AggOp::kMax, "skew32")
                          .aggregate(AggOp::kAvg, "neg32")
                          .aggregate(AggOp::kAvg, "d")
                          .build());
  // Group-bys: every key type, packed values under packed keys.
  add("group_small_key", QueryBuilder("facts")
                             .group_by("skew32")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "wide64")
                             .aggregate(AggOp::kMin, "neg32")
                             .build());
  add("group_negative_key", QueryBuilder("facts")
                                .filter_int("wide64", 250'000, 2'750'000)
                                .group_by("neg64")
                                .aggregate(AggOp::kCount)
                                .aggregate(AggOp::kMax, "u32")
                                .build());
  add("group_string_key", QueryBuilder("facts")
                              .group_by("tag")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "neg32")
                              .aggregate(AggOp::kAvg, "d")
                              .build());
  add("group_const_key", QueryBuilder("facts")
                             .group_by("const32")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "u32")
                             .build());
  add("group_composite", QueryBuilder("facts")
                             .filter_int("neg32", -400, 250)
                             .group_by("tag")
                             .group_by("skew32")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "wide64")
                             .build());
  // Joins: packed key probing, duplicate build keys, build-side aggregate
  // columns, grouped aggregation over probe AND build columns, empty
  // build selections — every shape the vectorized join pipeline supports.
  add("join_agg", QueryBuilder("facts")
                      .filter_int("u32", 0, 680)
                      .join("dim", "u32", "key")
                      .aggregate(AggOp::kCount)
                      .aggregate(AggOp::kSum, "wide64")
                      .build());
  add("join_build_agg", QueryBuilder("facts")
                            .join("dim", "u32", "key")
                            .aggregate(AggOp::kCount)
                            .aggregate(AggOp::kSum, "dim.weight")
                            .aggregate(AggOp::kMin, "dim.weight")
                            .aggregate(AggOp::kMax, "u32")
                            .build());
  add("join_group_probe", QueryBuilder("facts")
                              .filter_int("u32", 0, 200)
                              .join("dim", "u32", "key")
                              .group_by("tag")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "wide64")
                              .aggregate(AggOp::kSum, "dim.weight")
                              .build());
  add("join_group_build", QueryBuilder("facts")
                              .join("dim", "u32", "key")
                              .join_filter_int("weight", -5, 5)
                              .group_by("dim.cat")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "u32")
                              .aggregate(AggOp::kMin, "neg32")
                              .build());
  add("join_group_composite", QueryBuilder("facts")
                                  .filter_int("skew32", 0, 3)
                                  .join("dim", "u32", "key")
                                  .group_by("skew32")
                                  .group_by("dim.cat")
                                  .aggregate(AggOp::kCount)
                                  .aggregate(AggOp::kSum, "dim.weight")
                                  .build());
  add("join_empty_build", QueryBuilder("facts")
                              .join("dim", "u32", "key")
                              .join_filter_int("weight", 100, 200)
                              .group_by("tag")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "u32")
                              .build());
  // String- and double-keyed joins: the build side's codes are remapped
  // into the probe dictionary's code domain, so these exercise partially
  // overlapping dictionaries (build-only values remap to -1, probe-only
  // values never match), fully disjoint dictionaries (empty result), and
  // double keys joined / grouped through their ordered code domains.
  add("join_string_key", QueryBuilder("facts")
                             .filter_int("u32", 0, 120)
                             .join("dim", "tag", "skey")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "dim.weight")
                             .aggregate(AggOp::kMax, "u32")
                             .build());
  add("join_string_group", QueryBuilder("facts")
                               .filter_int("u32", 500, 560)
                               .join("dim", "tag", "skey")
                               .join_filter_int("weight", -6, 6)
                               .group_by("dim.cat")
                               .aggregate(AggOp::kCount)
                               .aggregate(AggOp::kSum, "wide64")
                               .build());
  add("join_string_disjoint", QueryBuilder("facts")
                                  .filter_int("u32", 0, 500)
                                  .join("dim", "tag", "cat")
                                  .aggregate(AggOp::kCount)
                                  .aggregate(AggOp::kSum, "u32")
                                  .build());
  add("join_double_key", QueryBuilder("facts")
                             .filter_int("u32", 0, 100)
                             .join("dim", "dk", "dkey")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "dim.weight")
                             .aggregate(AggOp::kMin, "neg32")
                             .build());
  add("group_double_key", QueryBuilder("facts")
                              .filter_int("u32", 0, 400)
                              .group_by("dk")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "neg32")
                              .build());
  // Multi-way (3-table) star joins through the physical plan compiler:
  // grouped aggregates over all three tables, composite cross-table
  // keys, and ORDER BY / LIMIT over the join output.
  add("join_star_group", QueryBuilder("facts")
                             .filter_int("u32", 0, 650)
                             .join("dim", "u32", "key")
                             .join("dim2", "u32", "key2")
                             .group_by("tag")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "dim.weight")
                             .aggregate(AggOp::kSum, "dim2.score")
                             .aggregate(AggOp::kMax, "u32")
                             .build());
  add("join_star_composite", QueryBuilder("facts")
                                 .filter_int("skew32", 0, 3)
                                 .join("dim", "u32", "key")
                                 .join_filter_int("weight", -7, 7)
                                 .join("dim2", "u32", "key2")
                                 .group_by("skew32")
                                 .group_by("dim.cat")
                                 .aggregate(AggOp::kCount)
                                 .aggregate(AggOp::kSum, "dim2.score")
                                 .build());
  add("join_star_orderby_key", QueryBuilder("facts")
                                   .join("dim", "u32", "key")
                                   .join("dim2", "u32", "key2")
                                   .group_by("tag")
                                   .aggregate(AggOp::kCount)
                                   .aggregate(AggOp::kSum, "dim.weight")
                                   .order_by("tag", false)
                                   .limit(4)
                                   .build());
  add("join_group_orderby_count", QueryBuilder("facts")
                                      .join("dim", "u32", "key")
                                      .group_by("dim.cat")
                                      .aggregate(AggOp::kCount)
                                      .aggregate(AggOp::kSum, "u32")
                                      .order_by("count", false)
                                      .limit(3)
                                      .build());
  // ORDER BY over aggregate output on the no-join path.
  add("group_orderby_agg", QueryBuilder("facts")
                               .group_by("skew32")
                               .aggregate(AggOp::kCount)
                               .aggregate(AggOp::kSum, "wide64")
                               .order_by("sum(wide64)", false)
                               .limit(5)
                               .build());
  // Projection + order-by + limit (heap top-k, gather-bounded charges).
  add("topn", QueryBuilder("facts")
                  .filter_int("skew32", 0, 3)
                  .select({"u32", "skew32", "neg64"})
                  .order_by("neg64", false)
                  .limit(25)
                  .build());
  // Join projection with ORDER BY + LIMIT (the shape the executor used
  // to reject outright).
  add("join_topn", QueryBuilder("facts")
                       .filter_int("skew32", 0, 2)
                       .join("dim", "u32", "key")
                       .select({"u32", "dim.weight", "neg64"})
                       .order_by("neg64", false)
                       .limit(20)
                       .build());
  return qs;
}

}  // namespace eidb::query::parity
