#include "query/plan.hpp"

#include <gtest/gtest.h>

namespace eidb::query {
namespace {

TEST(QueryBuilder, BuildsFilterAggregatePlan) {
  const LogicalPlan plan = QueryBuilder("sales")
                               .filter_int("amount", 10, 99)
                               .filter_string("region", "eu", "eu")
                               .group_by("region")
                               .aggregate(AggOp::kSum, "amount")
                               .aggregate(AggOp::kCount)
                               .build();
  EXPECT_EQ(plan.table, "sales");
  ASSERT_EQ(plan.predicates.size(), 2u);
  EXPECT_EQ(plan.predicates[0].column, "amount");
  EXPECT_EQ(plan.predicates[0].lo.as_int(), 10);
  EXPECT_EQ(plan.predicates[1].lo.as_string(), "eu");
  ASSERT_EQ(plan.group_by.size(), 1u);
  EXPECT_EQ(plan.group_by[0], "region");
  ASSERT_EQ(plan.aggregates.size(), 2u);
  EXPECT_TRUE(plan.is_aggregate());
}

TEST(QueryBuilder, BuildsProjectionPlan) {
  const LogicalPlan plan = QueryBuilder("t")
                               .select({"a", "b"})
                               .order_by("a", false)
                               .limit(10)
                               .build();
  EXPECT_FALSE(plan.is_aggregate());
  EXPECT_EQ(plan.projection.size(), 2u);
  ASSERT_TRUE(plan.order_by.has_value());
  EXPECT_FALSE(plan.order_by->ascending);
  EXPECT_EQ(plan.limit, 10u);
}

TEST(QueryBuilder, BuildsJoinPlan) {
  const LogicalPlan plan = QueryBuilder("orders")
                               .join("customers", "cust_id", "id")
                               .join_filter_int("age", 18, 65)
                               .aggregate(AggOp::kCount)
                               .build();
  ASSERT_TRUE(plan.has_join());
  ASSERT_EQ(plan.joins.size(), 1u);
  EXPECT_EQ(plan.joins[0].table, "customers");
  EXPECT_EQ(plan.joins[0].left_key, "cust_id");
  ASSERT_EQ(plan.joins[0].predicates.size(), 1u);
}

TEST(QueryBuilder, BuildsMultiJoinPlan) {
  const LogicalPlan plan = QueryBuilder("orders")
                               .join("customers", "cust_id", "id")
                               .join("dates", "date_id", "id")
                               .join_filter_int("year", 1994, 1995)
                               .aggregate(AggOp::kCount)
                               .build();
  ASSERT_EQ(plan.joins.size(), 2u);
  EXPECT_EQ(plan.joins[1].table, "dates");
  // join_filter applies to the most recently joined table.
  EXPECT_TRUE(plan.joins[0].predicates.empty());
  ASSERT_EQ(plan.joins[1].predicates.size(), 1u);
  EXPECT_EQ(plan.joins[1].predicates[0].column, "year");
}

TEST(LogicalPlan, ValidateAllowsOrderByWithJoin) {
  const LogicalPlan plan = QueryBuilder("orders")
                               .join("customers", "cust_id", "id")
                               .select({"cust_id"})
                               .order_by("cust_id")
                               .build();
  EXPECT_NO_THROW(validate_join_plan(plan));
}

TEST(QueryBuilder, DoubleFilter) {
  const LogicalPlan plan =
      QueryBuilder("t").filter_double("x", 0.5, 1.5).build();
  EXPECT_TRUE(plan.predicates[0].lo.is_double());
  EXPECT_DOUBLE_EQ(plan.predicates[0].hi.as_double(), 1.5);
}

TEST(LogicalPlan, ToStringMentionsEveryClause) {
  const std::string s = QueryBuilder("sales")
                            .filter_int("amount", 1, 2)
                            .join("customers", "cid", "id")
                            .group_by("region")
                            .aggregate(AggOp::kAvg, "amount")
                            .order_by("region")
                            .limit(5)
                            .build()
                            .to_string();
  for (const char* needle :
       {"scan(sales)", "filter(amount", "join(customers", "group_by(region)",
        "avg(amount)", "order_by(region", "limit(5)"})
    EXPECT_NE(s.find(needle), std::string::npos) << needle << " in " << s;
}

TEST(AggNames, AllDistinct) {
  EXPECT_EQ(agg_name(AggOp::kCount), "count");
  EXPECT_EQ(agg_name(AggOp::kSum), "sum");
  EXPECT_EQ(agg_name(AggOp::kMin), "min");
  EXPECT_EQ(agg_name(AggOp::kMax), "max");
  EXPECT_EQ(agg_name(AggOp::kAvg), "avg");
}

}  // namespace
}  // namespace eidb::query
