#include "query/sql.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/assert.hpp"

namespace eidb::query {
namespace {

TEST(Sql, SelectStarFrom) {
  const LogicalPlan p = parse_sql("SELECT * FROM sales");
  EXPECT_EQ(p.table, "sales");
  EXPECT_TRUE(p.projection.empty());
  EXPECT_TRUE(p.predicates.empty());
  EXPECT_FALSE(p.is_aggregate());
}

TEST(Sql, SelectColumns) {
  const LogicalPlan p = parse_sql("SELECT id, amount FROM sales");
  ASSERT_EQ(p.projection.size(), 2u);
  EXPECT_EQ(p.projection[0], "id");
  EXPECT_EQ(p.projection[1], "amount");
}

TEST(Sql, CaseInsensitiveKeywordsCaseSensitiveIdents) {
  const LogicalPlan p = parse_sql("select ID from Sales");
  EXPECT_EQ(p.table, "Sales");
  EXPECT_EQ(p.projection[0], "ID");
}

TEST(Sql, WhereBetween) {
  const LogicalPlan p =
      parse_sql("SELECT * FROM t WHERE amount BETWEEN 10 AND 99");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].column, "amount");
  EXPECT_EQ(p.predicates[0].lo.as_int(), 10);
  EXPECT_EQ(p.predicates[0].hi.as_int(), 99);
}

TEST(Sql, WhereEquality) {
  const LogicalPlan p = parse_sql("SELECT * FROM t WHERE region = 'eu'");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].lo.as_string(), "eu");
  EXPECT_EQ(p.predicates[0].hi.as_string(), "eu");
}

TEST(Sql, DoubledQuoteEscapesInStringLiterals) {
  // SQL escapes a quote inside a string literal by doubling it.
  const LogicalPlan p =
      parse_sql("SELECT * FROM t WHERE name = 'O''Brien'");
  EXPECT_EQ(p.predicates[0].lo.as_string(), "O'Brien");
  // Doubled quotes compose: '''' is the one-character string «'», and
  // an empty literal still parses.
  const LogicalPlan q = parse_sql("SELECT * FROM t WHERE name = ''''");
  EXPECT_EQ(q.predicates[0].lo.as_string(), "'");
  const LogicalPlan e = parse_sql("SELECT * FROM t WHERE name = ''");
  EXPECT_EQ(e.predicates[0].lo.as_string(), "");
  const LogicalPlan m = parse_sql(
      "SELECT * FROM t WHERE name = 'it''s a ''test'''");
  EXPECT_EQ(m.predicates[0].lo.as_string(), "it's a 'test'");
}

TEST(Sql, UnterminatedStringLiteralStillThrows) {
  // A trailing doubled quote is an escaped quote, not a terminator —
  // the literal remains open and must be rejected.
  EXPECT_THROW((void)parse_sql("SELECT * FROM t WHERE name = 'abc"), Error);
  EXPECT_THROW((void)parse_sql("SELECT * FROM t WHERE name = 'abc''"), Error);
}

TEST(Sql, WhereInequalitiesBecomeOpenRanges) {
  const LogicalPlan ge = parse_sql("SELECT * FROM t WHERE x >= 5");
  EXPECT_EQ(ge.predicates[0].lo.as_int(), 5);
  EXPECT_EQ(ge.predicates[0].hi.as_int(),
            std::numeric_limits<std::int64_t>::max());
  const LogicalPlan lt = parse_sql("SELECT * FROM t WHERE x < 5");
  EXPECT_EQ(lt.predicates[0].hi.as_int(), 4);
  const LogicalPlan gt = parse_sql("SELECT * FROM t WHERE x > 5");
  EXPECT_EQ(gt.predicates[0].lo.as_int(), 6);
  const LogicalPlan le = parse_sql("SELECT * FROM t WHERE x <= 5");
  EXPECT_EQ(le.predicates[0].hi.as_int(), 5);
}

TEST(Sql, FloatLiterals) {
  const LogicalPlan p =
      parse_sql("SELECT * FROM t WHERE price BETWEEN 1.5 AND 2.75");
  EXPECT_DOUBLE_EQ(p.predicates[0].lo.as_double(), 1.5);
  EXPECT_DOUBLE_EQ(p.predicates[0].hi.as_double(), 2.75);
}

TEST(Sql, NegativeIntegers) {
  const LogicalPlan p =
      parse_sql("SELECT * FROM t WHERE x BETWEEN -10 AND -1");
  EXPECT_EQ(p.predicates[0].lo.as_int(), -10);
  EXPECT_EQ(p.predicates[0].hi.as_int(), -1);
}

TEST(Sql, MultiplePredicatesAnded) {
  const LogicalPlan p = parse_sql(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b = 3 AND c >= 4");
  ASSERT_EQ(p.predicates.size(), 3u);
  EXPECT_EQ(p.predicates[1].column, "b");
  EXPECT_EQ(p.predicates[2].column, "c");
}

TEST(Sql, Aggregates) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) "
      "FROM sales");
  ASSERT_EQ(p.aggregates.size(), 5u);
  EXPECT_EQ(p.aggregates[0].op, AggOp::kCount);
  EXPECT_EQ(p.aggregates[1].op, AggOp::kSum);
  EXPECT_EQ(p.aggregates[1].column, "amount");
  EXPECT_EQ(p.aggregates[4].op, AggOp::kAvg);
}

TEST(Sql, GroupBy) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*), SUM(amount) FROM sales GROUP BY region");
  ASSERT_EQ(p.group_by.size(), 1u);
  EXPECT_EQ(p.group_by[0], "region");
}

TEST(Sql, GroupByMultipleColumns) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*) FROM sales GROUP BY region, segment, year");
  ASSERT_EQ(p.group_by.size(), 3u);
  EXPECT_EQ(p.group_by[0], "region");
  EXPECT_EQ(p.group_by[1], "segment");
  EXPECT_EQ(p.group_by[2], "year");
}

TEST(Sql, OrderByAscDescAndLimit) {
  const LogicalPlan p =
      parse_sql("SELECT * FROM t ORDER BY x DESC LIMIT 10");
  ASSERT_TRUE(p.order_by.has_value());
  EXPECT_EQ(p.order_by->column, "x");
  EXPECT_FALSE(p.order_by->ascending);
  EXPECT_EQ(p.limit, 10u);
  const LogicalPlan asc = parse_sql("SELECT * FROM t ORDER BY x ASC");
  EXPECT_TRUE(asc.order_by->ascending);
}

TEST(Sql, Join) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*) FROM orders JOIN customers ON orders.cust_id = "
      "customers.id WHERE customers.age BETWEEN 18 AND 65");
  ASSERT_TRUE(p.has_join());
  ASSERT_EQ(p.joins.size(), 1u);
  EXPECT_EQ(p.joins[0].table, "customers");
  EXPECT_EQ(p.joins[0].left_key, "cust_id");
  EXPECT_EQ(p.joins[0].right_key, "id");
  ASSERT_EQ(p.joins[0].predicates.size(), 1u);
  EXPECT_EQ(p.joins[0].predicates[0].column, "age");
  EXPECT_TRUE(p.predicates.empty());
}

TEST(Sql, JoinKeyOrderIrrelevant) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*) FROM orders JOIN customers ON customers.id = "
      "orders.cust_id");
  EXPECT_EQ(p.joins[0].left_key, "cust_id");
  EXPECT_EQ(p.joins[0].right_key, "id");
}

TEST(Sql, RepeatedJoinsBuildAChain) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*), SUM(revenue) FROM lineorder "
      "JOIN customer ON lineorder.custkey = customer.custkey "
      "JOIN dates ON lineorder.orderdate = dates.datekey "
      "WHERE customer.region = 'asia' AND dates.year = 1994 AND "
      "discount BETWEEN 1 AND 3 GROUP BY customer.nation");
  ASSERT_EQ(p.joins.size(), 2u);
  EXPECT_EQ(p.joins[0].table, "customer");
  EXPECT_EQ(p.joins[0].left_key, "custkey");
  EXPECT_EQ(p.joins[1].table, "dates");
  EXPECT_EQ(p.joins[1].left_key, "orderdate");
  EXPECT_EQ(p.joins[1].right_key, "datekey");
  // Qualified predicates route to their join; bare ones stay on the fact.
  ASSERT_EQ(p.joins[0].predicates.size(), 1u);
  EXPECT_EQ(p.joins[0].predicates[0].column, "region");
  ASSERT_EQ(p.joins[1].predicates.size(), 1u);
  EXPECT_EQ(p.joins[1].predicates[0].column, "year");
  ASSERT_EQ(p.predicates.size(), 1u);
  EXPECT_EQ(p.predicates[0].column, "discount");
}

TEST(Sql, SnowflakeJoinKeepsQualifiedProbeKey) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*) FROM fact "
      "JOIN dim ON fact.k = dim.id "
      "JOIN subdim ON dim.sub = subdim.id");
  ASSERT_EQ(p.joins.size(), 2u);
  EXPECT_EQ(p.joins[1].left_key, "dim.sub");
  EXPECT_EQ(p.joins[1].right_key, "id");
}

TEST(Sql, OrderByAggregateMapsToResultColumn) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*), SUM(revenue) FROM t GROUP BY region "
      "ORDER BY SUM(revenue) DESC LIMIT 5");
  ASSERT_TRUE(p.order_by.has_value());
  EXPECT_EQ(p.order_by->column, "sum(revenue)");
  EXPECT_FALSE(p.order_by->ascending);
  const LogicalPlan c = parse_sql(
      "SELECT COUNT(*) FROM t GROUP BY g ORDER BY COUNT(*)");
  EXPECT_EQ(c.order_by->column, "count");
}

TEST(Sql, QualifiedFromTablePredicatesStripped) {
  const LogicalPlan p =
      parse_sql("SELECT * FROM t WHERE t.x BETWEEN 1 AND 2");
  EXPECT_EQ(p.predicates[0].column, "x");
}

TEST(Sql, AggregateArithmeticExpressions) {
  const LogicalPlan p = parse_sql(
      "SELECT SUM(revenue * (1 - discount) / 100) FROM lineorder");
  ASSERT_EQ(p.aggregates.size(), 1u);
  ASSERT_NE(p.aggregates[0].expr, nullptr);
  EXPECT_EQ(p.aggregates[0].expr->to_string(),
            "((revenue * (1 - discount)) / 100)");
  EXPECT_TRUE(p.aggregates[0].column.empty());
}

TEST(Sql, BareColumnAggregateStaysOnTypedPath) {
  const LogicalPlan p = parse_sql("SELECT SUM(amount) FROM t");
  EXPECT_EQ(p.aggregates[0].column, "amount");
  EXPECT_EQ(p.aggregates[0].expr, nullptr);
}

TEST(Sql, UnaryMinusAndPrecedence) {
  const LogicalPlan p = parse_sql("SELECT AVG(-a + b * 2) FROM t");
  ASSERT_NE(p.aggregates[0].expr, nullptr);
  EXPECT_EQ(p.aggregates[0].expr->to_string(), "((0 - a) + (b * 2))");
}

TEST(Sql, ExpressionSyntaxErrors) {
  EXPECT_THROW((void)parse_sql("SELECT SUM(a +) FROM t"), Error);
  EXPECT_THROW((void)parse_sql("SELECT SUM((a + b FROM t"), Error);
  EXPECT_THROW((void)parse_sql("SELECT SUM('str' + 1) FROM t"), Error);
}

TEST(Sql, SyntaxErrors) {
  EXPECT_THROW((void)parse_sql(""), Error);
  EXPECT_THROW((void)parse_sql("SELECT"), Error);
  EXPECT_THROW((void)parse_sql("SELECT * FORM t"), Error);
  EXPECT_THROW((void)parse_sql("SELECT * FROM t WHERE"), Error);
  EXPECT_THROW((void)parse_sql("SELECT * FROM t WHERE x"), Error);
  EXPECT_THROW((void)parse_sql("SELECT * FROM t LIMIT abc"), Error);
  EXPECT_THROW((void)parse_sql("SELECT * FROM t extra"), Error);
  EXPECT_THROW((void)parse_sql("SELECT * FROM t WHERE s = 'open"), Error);
}

TEST(Sql, SemanticErrors) {
  // GROUP BY without aggregates / mixing plain columns with aggregates.
  EXPECT_THROW((void)parse_sql("SELECT x FROM t GROUP BY x"), Error);
  EXPECT_THROW((void)parse_sql("SELECT x, COUNT(*) FROM t"), Error);
}

TEST(Sql, ErrorsMentionOffset) {
  try {
    (void)parse_sql("SELECT * FROM t WHERE ???");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Sql, FullStatementRoundTripsThroughToString) {
  const LogicalPlan p = parse_sql(
      "SELECT COUNT(*), AVG(amount) FROM sales WHERE amount BETWEEN 1 AND 9 "
      "GROUP BY region ORDER BY region LIMIT 5");
  const std::string s = p.to_string();
  EXPECT_NE(s.find("scan(sales)"), std::string::npos);
  EXPECT_NE(s.find("group_by(region)"), std::string::npos);
  EXPECT_NE(s.find("limit(5)"), std::string::npos);
}

}  // namespace
}  // namespace eidb::query
