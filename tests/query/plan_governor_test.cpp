// The plan governor: operator classification, EWMA calibration, the
// race-to-idle vs pace decision, core clamping to the worker pool, and
// the prediction-vs-measurement loop (governor-predicted joules against
// the measured ExecStats attribution). Also asserts the tentpole's
// accounting invariant: per-operator work deltas sum to the query totals
// byte-exactly under every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/database.hpp"
#include "query/executor.hpp"
#include "query/physical_plan.hpp"
#include "query/plan.hpp"
#include "query/plan_governor.hpp"
#include "sched/governor.hpp"
#include "sched/thread_pool.hpp"
#include "storage/column.hpp"
#include "storage/table.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

using storage::Catalog;
using storage::Column;
using storage::Schema;
using storage::Table;
using storage::TypeId;

TEST(PlanGovernor, ClassifyOperatorNames) {
  EXPECT_EQ(classify_operator("scan+filter(lineorder)"), OperatorKind::kScan);
  EXPECT_EQ(classify_operator("hash-join(dates)"), OperatorKind::kJoin);
  EXPECT_EQ(classify_operator("hash-join(customer) radix-join(dates)"),
            OperatorKind::kJoin);
  EXPECT_EQ(classify_operator("dense-join(dim)+materialize"),
            OperatorKind::kJoin);
  EXPECT_EQ(classify_operator("aggregate(join)"), OperatorKind::kAggregate);
  EXPECT_EQ(classify_operator("top-k(revenue)"), OperatorKind::kSort);
  EXPECT_EQ(classify_operator("sort(neg64)"), OperatorKind::kSort);
  EXPECT_EQ(classify_operator("materialize(join)"),
            OperatorKind::kMaterialize);
  EXPECT_EQ(classify_operator("something-new"), OperatorKind::kOther);
}

TEST(PlanGovernor, CalibrationSeedsThenSmooths) {
  OperatorCalibration cal(/*alpha=*/0.5);
  EXPECT_DOUBLE_EQ(cal.factor(OperatorKind::kScan), 1.0);
  // First observation seeds the factor directly.
  cal.observe(OperatorKind::kScan, /*predicted_s=*/1.0, /*measured_s=*/2.0);
  EXPECT_DOUBLE_EQ(cal.factor(OperatorKind::kScan), 2.0);
  // Subsequent observations blend with alpha.
  cal.observe(OperatorKind::kScan, 1.0, 4.0);
  EXPECT_DOUBLE_EQ(cal.factor(OperatorKind::kScan), 0.5 * 2.0 + 0.5 * 4.0);
  // Ratios are clamped so one outlier cannot poison the estimate.
  cal.observe(OperatorKind::kJoin, 1.0, 1e9);
  EXPECT_DOUBLE_EQ(cal.factor(OperatorKind::kJoin), 20.0);
  cal.observe(OperatorKind::kSort, 1e9, 1.0);
  EXPECT_DOUBLE_EQ(cal.factor(OperatorKind::kSort), 0.05);
  // Degenerate inputs are ignored.
  cal.observe(OperatorKind::kAggregate, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(cal.factor(OperatorKind::kAggregate), 1.0);
}

Catalog make_catalog(std::size_t rows) {
  Catalog cat;
  Table& t = cat.add(Table("facts", Schema({{"k", TypeId::kInt64},
                                            {"v", TypeId::kInt64}})));
  Pcg32 rng(7);
  std::vector<std::int64_t> k(rows), v(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    k[i] = rng.next_bounded(100);
    v[i] = rng.next_bounded(1000);
  }
  t.set_column(0, Column::from_int64("k", k));
  t.set_column(1, Column::from_int64("v", v));

  Table& dim = cat.add(Table("dim", Schema({{"key", TypeId::kInt64},
                                            {"w", TypeId::kInt64}})));
  std::vector<std::int64_t> dk(100), dw(100);
  for (std::int64_t d = 0; d < 100; ++d) {
    dk[static_cast<std::size_t>(d)] = d;
    dw[static_cast<std::size_t>(d)] = d % 9;
  }
  dim.set_column(0, Column::from_int64("key", dk));
  dim.set_column(1, Column::from_int64("w", dw));
  return cat;
}

LogicalPlan star_plan() {
  return QueryBuilder("facts")
      .filter_int("v", 0, 800)
      .join("dim", "k", "key")
      .group_by("dim.w")
      .aggregate(AggOp::kCount)
      .aggregate(AggOp::kSum, "v")
      .order_by("count", false)
      .limit(5)
      .build();
}

TEST(PlanGovernor, RaceToIdleWhenDeepSleepAvailable) {
  Catalog cat = make_catalog(10'000);
  const hw::MachineSpec machine = hw::MachineSpec::server();
  const sched::Governor gov(machine, {.allow_deep_sleep = true});
  sched::ThreadPool pool(4);
  ExecOptions options;
  options.governor = &gov;
  options.pool = &pool;
  const PhysicalPlan phys = compile_plan(cat, star_plan(), options);
  ASSERT_TRUE(phys.governor.enabled);
  EXPECT_EQ(phys.governor.policy, "race-to-idle");
  EXPECT_DOUBLE_EQ(phys.governor.state.freq_ghz,
                   machine.dvfs.fastest().freq_ghz);
  EXPECT_GT(phys.governor.est_busy_s, 0.0);
  EXPECT_GT(phys.governor.est_energy_j, 0.0);
  EXPECT_GT(phys.governor.est_work.cpu_cycles, 0.0);
  // EXPLAIN carries the decision.
  EXPECT_NE(phys.explain().find("governor: 4 cores x"), std::string::npos);
}

TEST(PlanGovernor, PacesAtEfficientStateWithoutDeepSleep) {
  // Consolidated server: the package cannot sleep, so the governor paces
  // at the incremental-efficient P-state — which on the superlinear CMOS
  // curve of the server spec is slower than f_max (the E7 crossover).
  Catalog cat = make_catalog(10'000);
  const hw::MachineSpec machine = hw::MachineSpec::server();
  const sched::Governor gov(machine, {.allow_deep_sleep = false});
  sched::ThreadPool pool(4);
  ExecOptions options;
  options.governor = &gov;
  options.pool = &pool;
  const PhysicalPlan phys = compile_plan(cat, star_plan(), options);
  ASSERT_TRUE(phys.governor.enabled);
  EXPECT_EQ(phys.governor.policy, "pace");
  const hw::DvfsState expect_state =
      gov.incremental_efficient_state(phys.governor.est_work);
  EXPECT_DOUBLE_EQ(phys.governor.state.freq_ghz, expect_state.freq_ghz);
  EXPECT_LT(phys.governor.state.freq_ghz, machine.dvfs.fastest().freq_ghz);
}

TEST(PlanGovernor, DeadlineArbitratesRaceVsPace) {
  Catalog cat = make_catalog(10'000);
  const sched::Governor gov(hw::MachineSpec::server(),
                            {.allow_deep_sleep = false});
  ExecOptions options;
  options.governor = &gov;
  // A generous deadline with only shallow idle available: pacing beats
  // racing (slack burns idle power either way, but pace's busy phase is
  // cheaper on the superlinear power curve).
  options.deadline_s = 3600.0;
  const PhysicalPlan paced = compile_plan(cat, star_plan(), options);
  ASSERT_TRUE(paced.governor.enabled);
  EXPECT_EQ(paced.governor.policy, "pace");
  // An unattainable deadline degrades to f_max under either policy.
  options.deadline_s = 1e-12;
  const PhysicalPlan raced = compile_plan(cat, star_plan(), options);
  ASSERT_TRUE(raced.governor.enabled);
  EXPECT_DOUBLE_EQ(raced.governor.state.freq_ghz,
                   gov.machine().dvfs.fastest().freq_ghz);
}

TEST(PlanGovernor, CoresClampedToPoolAndMachine) {
  Catalog cat = make_catalog(1'000);
  const hw::MachineSpec machine = hw::MachineSpec::server();  // 8 cores
  const sched::Governor gov(machine, {.allow_deep_sleep = true});
  ExecOptions options;
  options.governor = &gov;

  // No pool: single-core decision.
  const PhysicalPlan serial = compile_plan(cat, star_plan(), options);
  EXPECT_EQ(serial.governor.cores, 1);

  // Pool narrower than the machine: clamp to the pool.
  sched::ThreadPool pool3(3);
  options.pool = &pool3;
  const PhysicalPlan narrow = compile_plan(cat, star_plan(), options);
  EXPECT_EQ(narrow.governor.cores, 3);

  // Pool wider than the machine: clamp to the machine's cores.
  sched::ThreadPool pool16(16);
  options.pool = &pool16;
  const PhysicalPlan wide = compile_plan(cat, star_plan(), options);
  EXPECT_EQ(wide.governor.cores, machine.cores);
}

TEST(PlanGovernor, OperatorWorkSumsExactlyUnderEveryThreadCount) {
  // The tentpole's accounting invariant: every charge lands in exactly
  // one operator scope, so per-operator work deltas sum to the query
  // totals BYTE-EXACTLY — serial and at any pool width.
  Catalog cat = make_catalog(50'000);
  Executor ex(cat);
  QueryResult serial_result;
  for (const std::size_t threads : {0u, 2u, 5u, 8u}) {
    sched::ThreadPool pool(threads == 0 ? 1 : threads);
    ExecOptions options;
    if (threads != 0) {
      options.pool = &pool;
      options.parallel_agg_min_rows = 1;
      options.parallel_join_min_rows = 1;
      options.parallel_sort_min_rows = 1;
      options.parallel_project_min_rows = 1;
    }
    ExecStats stats;
    const QueryResult result = ex.execute(star_plan(), stats, options);
    double cycles = 0, bytes = 0;
    for (const OperatorStats& op : stats.operators) {
      cycles += op.work.cpu_cycles;
      bytes += op.work.dram_bytes;
    }
    EXPECT_EQ(cycles, stats.work.cpu_cycles) << threads << " threads";
    EXPECT_EQ(bytes, stats.work.dram_bytes) << threads << " threads";
    // And the result itself is thread-count invariant.
    if (threads == 0) {
      serial_result = result;
    } else {
      ASSERT_EQ(result.row_count(), serial_result.row_count());
      for (std::size_t r = 0; r < result.row_count(); ++r)
        for (std::size_t c = 0; c < result.column_count(); ++c)
          EXPECT_EQ(result.at(r, c), serial_result.at(r, c))
              << threads << " threads, row " << r << " col " << c;
    }
  }
}

TEST(PlanGovernor, PredictionWithinToleranceOfMeasurementAfterCalibration) {
  // The closed loop on a bench-shaped query: after a few runs the EWMA
  // calibration pulls the governor's busy-time estimate toward measured
  // reality, so the predicted attribution (est_work at the chosen state
  // over est_busy_s) lands within an order of magnitude of the measured
  // ExecStats attribution. (The bound is loose on purpose: the model
  // machine is a Sandy-Bridge-era server, the host is whatever CI runs —
  // calibration corrects cycles, not the DRAM/power split.)
  core::Database db;
  Table& t = db.create_table("facts", Schema({{"k", TypeId::kInt64},
                                              {"v", TypeId::kInt64}}));
  Pcg32 rng(11);
  constexpr std::size_t kRows = 200'000;
  std::vector<std::int64_t> k(kRows), v(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    k[i] = rng.next_bounded(64);
    v[i] = rng.next_bounded(1000);
  }
  t.set_column(0, Column::from_int64("k", k));
  t.set_column(1, Column::from_int64("v", v));

  const auto plan = QueryBuilder("facts")
                        .filter_int("v", 100, 900)
                        .group_by("k")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "v")
                        .build();
  core::RunResult run;
  for (int i = 0; i < 4; ++i) run = db.run(plan);  // calibration warms up
  ASSERT_TRUE(run.governor.enabled);
  const double predicted = db.machine().incremental_busy_energy_j(
      run.governor.est_work, run.governor.state, run.governor.est_busy_s);
  const double measured = run.attributed_j;
  ASSERT_GT(measured, 0.0);
  ASSERT_GT(predicted, 0.0);
  const double ratio = predicted / measured;
  EXPECT_GT(ratio, 0.1) << "predicted " << predicted << " measured "
                        << measured;
  EXPECT_LT(ratio, 10.0) << "predicted " << predicted << " measured "
                         << measured;
}

}  // namespace
}  // namespace eidb::query
