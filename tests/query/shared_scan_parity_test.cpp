// SharedScanParity — differential harness for the multi-query shared scan
// (exec/shared_scan.hpp + query/shared_scan.hpp + Database::run_batch).
//
// The contract under test, at every layer:
//   1. the fused driver's per-member selections are bit-identical to a
//      scalar reference evaluation, at every pool width;
//   2. compatibility keys group exactly the plans whose fused pass would
//      stream the same physical bytes, and refuse everything else;
//   3. a fused group's results are bit-identical to running each member
//      through the ordinary Executor, across encodings and pool widths;
//   4. the fact table's scan DRAM bytes are charged ONCE per group, the
//      members' attributed shares sum byte-exactly, and per-operator byte
//      sums stay exact;
//   5. end to end, Database::run_batch fuses a compatible batch when the
//      sharing arm approves and still returns exactly run()'s answers.
//
// Runs under the `parity` ctest label, which CI also executes under
// ThreadSanitizer — the fused driver's morsel fan-out is exercised there.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/database.hpp"
#include "exec/shared_scan.hpp"
#include "hw/accelerator.hpp"
#include "opt/cost_model.hpp"
#include "parity_matrix.hpp"
#include "query/executor.hpp"
#include "query/physical_plan.hpp"
#include "query/plan.hpp"
#include "query/shared_scan.hpp"
#include "sched/thread_pool.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

using parity::expect_identical;
using parity::kRows;
using parity::make_catalog;
using parity::recode_all;

// ---- 1. Fused driver vs scalar reference ------------------------------------

TEST(SharedScanParity, FusedDriverMatchesScalarReference) {
  // Odd row count: the tail word is partial, which is where overwrite
  // semantics and word masking go wrong first.
  constexpr std::size_t kN = 5'003;
  Pcg32 rng(11);
  std::vector<std::int32_t> a(kN);
  std::vector<std::int64_t> b(kN);
  std::vector<double> d(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = static_cast<std::int32_t>(rng.next_bounded(1000));
    b[i] = static_cast<std::int64_t>(rng.next_bounded(1 << 20)) - (1 << 19);
    d[i] = static_cast<double>(rng.next_bounded(10'000)) / 100.0;
  }

  // Four members with different conjunct mixes (including a 3-conjunct
  // member and a near-empty one).
  struct Member {
    std::int64_t alo, ahi;
    bool use_b = false;
    std::int64_t blo = 0, bhi = 0;
    bool use_d = false;
    double dlo = 0, dhi = 0;
  };
  const std::vector<Member> spec = {
      {100, 899},
      {0, 499, true, -5000, 20'000},
      {250, 750, true, -100'000, 100'000, true, 10.0, 55.0},
      {42, 42},
  };

  // Scalar reference.
  std::vector<BitVector> want;
  for (const Member& m : spec) {
    BitVector sel(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      bool hit = a[i] >= m.alo && a[i] <= m.ahi;
      if (hit && m.use_b) hit = b[i] >= m.blo && b[i] <= m.bhi;
      if (hit && m.use_d) hit = d[i] >= m.dlo && d[i] <= m.dhi;
      if (hit) sel.set(i);
    }
    want.push_back(std::move(sel));
  }

  for (std::size_t width : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
    std::optional<sched::ThreadPool> pool;
    if (width > 0) pool.emplace(width);

    std::vector<BitVector> got(spec.size(), BitVector(kN));
    // Pre-soil the selections: shared_scan overwrites, it must not OR in.
    for (BitVector& s : got) s.set_all();

    std::vector<exec::SharedQuery> queries(spec.size());
    for (std::size_t q = 0; q < spec.size(); ++q) {
      const Member& m = spec[q];
      exec::SharedConjunct ca;
      ca.kind = exec::SharedConjunct::Kind::kInt32;
      ca.i32 = a;
      ca.lo = m.alo;
      ca.hi = m.ahi;
      queries[q].conjuncts.push_back(ca);
      if (m.use_b) {
        exec::SharedConjunct cb;
        cb.kind = exec::SharedConjunct::Kind::kInt64;
        cb.i64 = b;
        cb.lo = m.blo;
        cb.hi = m.bhi;
        queries[q].conjuncts.push_back(cb);
      }
      if (m.use_d) {
        exec::SharedConjunct cd;
        cd.kind = exec::SharedConjunct::Kind::kDouble;
        cd.f64 = d;
        cd.dlo = m.dlo;
        cd.dhi = m.dhi;
        queries[q].conjuncts.push_back(cd);
      }
      queries[q].selection = &got[q];
    }

    exec::SharedScanStats stats;
    exec::shared_scan(kN, queries, pool ? &*pool : nullptr, width, stats,
                      /*morsel_rows=*/1024);
    EXPECT_GT(stats.morsels, 1u);
    ASSERT_EQ(stats.evaluated.size(), spec.size());
    for (std::size_t q = 0; q < spec.size(); ++q) {
      EXPECT_EQ(want[q], got[q]) << "member " << q << " width " << width;
      // `evaluated` counts conjunct-row evaluations: at least one full
      // pass over the first conjunct, at most every conjunct everywhere
      // (dead-word skipping can only reduce the later ones).
      EXPECT_GE(stats.evaluated[q], kN) << "member " << q;
      EXPECT_LE(stats.evaluated[q], kN * queries[q].conjuncts.size())
          << "member " << q;
    }
  }
}

// ---- 2. Compatibility keys ---------------------------------------------------

TEST(SharedScanParity, SharingKeyGroupsOnlyCompatiblePlans) {
  storage::Catalog cat = make_catalog(3);
  const ExecOptions opts;

  auto key_of = [&](const LogicalPlan& plan, const ExecOptions& o) {
    const PhysicalPlan phys = compile_plan(cat, plan, o);
    return scan_sharing_key(cat, phys, o);
  };

  const auto count_u32 = [](std::int64_t lo, std::int64_t hi) {
    return QueryBuilder("facts")
        .filter_int("u32", lo, hi)
        .aggregate(AggOp::kCount)
        .build();
  };

  // Same table + predicate column: equal keys regardless of bounds or sink.
  const std::string k1 = key_of(count_u32(100, 899), opts);
  const std::string k2 = key_of(count_u32(0, 499), opts);
  const std::string k3 = key_of(QueryBuilder("facts")
                                    .filter_int("u32", 250, 750)
                                    .group_by("tag")
                                    .aggregate(AggOp::kSum, "wide64")
                                    .build(),
                                opts);
  ASSERT_FALSE(k1.empty());
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1, k3);

  // The prekey (request-level, pre-compile) agrees on grouping.
  EXPECT_EQ(scan_sharing_prekey(count_u32(100, 899)),
            scan_sharing_prekey(count_u32(0, 499)));

  // Different predicate column: different byte stream, different key.
  const std::string kw = key_of(QueryBuilder("facts")
                                    .filter_int("wide64", 0, 1'000'000)
                                    .aggregate(AggOp::kCount)
                                    .build(),
                                opts);
  EXPECT_FALSE(kw.empty());
  EXPECT_NE(k1, kw);

  // Multi-conjunct members group with each other, not with single-conjunct.
  const auto two = QueryBuilder("facts")
                       .filter_int("u32", 100, 899)
                       .filter_int("skew32", 0, 50)
                       .aggregate(AggOp::kCount)
                       .build();
  const std::string k_two = key_of(two, opts);
  EXPECT_FALSE(k_two.empty());
  EXPECT_NE(k_two, k1);

  // Ineligible shapes refuse a key entirely.
  EXPECT_TRUE(key_of(QueryBuilder("facts").aggregate(AggOp::kCount).build(),
                     opts)
                  .empty())
      << "no predicates = nothing to fuse";
  ExecOptions zone = opts;
  zone.use_zone_maps = true;
  EXPECT_TRUE(key_of(count_u32(100, 899), zone).empty())
      << "zone-map pruning reads different bytes per member";
  ExecOptions forced = opts;
  forced.scan_variant = exec::ScanVariant::kBranching;
  EXPECT_TRUE(key_of(count_u32(100, 899), forced).empty())
      << "explicit kernel choices must stay on the requested kernel";

  // Encoding visibility: packed vs plain stream different bytes, so the
  // keys must differ between use_encodings on and off.
  recode_all(cat, storage::Encoding::kBitPacked);
  ExecOptions plain = opts;
  plain.use_encodings = false;
  EXPECT_NE(key_of(count_u32(100, 899), opts),
            key_of(count_u32(100, 899), plain));
}

TEST(SharedScanParity, AnalyzeGroupsCompatibleMembersAndPricesThem) {
  storage::Catalog cat = make_catalog(5);
  const hw::MachineSpec machine = hw::MachineSpec::server();
  const ExecOptions opts;

  std::vector<PhysicalPlan> plans;
  auto add = [&](LogicalPlan plan) {
    plans.push_back(compile_plan(cat, plan, opts));
  };
  add(QueryBuilder("facts").filter_int("u32", 100, 899)
          .aggregate(AggOp::kCount).build());
  add(QueryBuilder("facts").filter_int("u32", 0, 499)
          .aggregate(AggOp::kSum, "wide64").build());
  add(QueryBuilder("facts").filter_int("u32", 250, 750)
          .group_by("tag").aggregate(AggOp::kCount).build());
  add(QueryBuilder("facts").filter_int("wide64", 0, 1'000'000)
          .aggregate(AggOp::kCount).build());  // different column
  add(QueryBuilder("facts").aggregate(AggOp::kCount).build());  // no preds

  std::vector<SharedBatchMember> batch;
  for (const PhysicalPlan& p : plans) batch.push_back({&p, &opts});

  const std::vector<ScanShareGroup> groups =
      analyze_scan_sharing(cat, machine, batch);
  std::size_t total = 0;
  const ScanShareGroup* big = nullptr;
  for (const ScanShareGroup& g : groups) {
    total += g.members.size();
    if (g.members.size() > 1) {
      EXPECT_EQ(big, nullptr) << "exactly one multi-member group expected";
      big = &g;
    }
  }
  EXPECT_EQ(total, plans.size()) << "every member lands in exactly one group";
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->members, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_FALSE(big->key.empty());
  EXPECT_GT(big->est_scan_bytes, 0.0);
  EXPECT_GT(big->est_independent_j, 0.0);
  EXPECT_GT(big->est_shared_j, 0.0);
}

// ---- 3. Cost-model sharing arm ----------------------------------------------

TEST(SharedScanParity, SharingArmApprovesAtScaleAndDeclinesTrivially) {
  const opt::CostModel model = opt::CostModel::defaults();
  const hw::MachineSpec machine = hw::MachineSpec::server();
  const hw::AcceleratorSpec pim = hw::AcceleratorSpec::pim();

  // 8 members over a 64 MiB fact column: the N-1 follower passes dwarf
  // the coordination overhead, sharing must win.
  const double big_bytes = 64.0 * 1024 * 1024;
  const double big_cycles = 16e6;
  const opt::ScanSharingChoice at_scale =
      model.pick_scan_sharing(machine, 8, big_bytes, big_cycles, pim);
  EXPECT_TRUE(at_scale.share);
  EXPECT_LT(at_scale.shared_j, at_scale.independent_j);

  // Independent arm scales linearly in members.
  const opt::ScanSharingChoice four =
      model.pick_scan_sharing(machine, 4, big_bytes, big_cycles, pim);
  EXPECT_NEAR(at_scale.independent_j, 2.0 * four.independent_j,
              1e-9 * at_scale.independent_j);

  // Degenerate inputs never share.
  EXPECT_FALSE(model.pick_scan_sharing(machine, 1, big_bytes, big_cycles, pim)
                   .share);
  EXPECT_FALSE(model.pick_scan_sharing(machine, 8, 0.0, big_cycles, pim)
                   .share);
}

// ---- 4. Fused group vs solo execution, across encodings × pools -------------

std::vector<LogicalPlan> eight_compatible_queries() {
  std::vector<LogicalPlan> plans;
  plans.push_back(QueryBuilder("facts").filter_int("u32", 100, 899)
                      .aggregate(AggOp::kCount).build());
  plans.push_back(QueryBuilder("facts").filter_int("u32", 0, 499)
                      .aggregate(AggOp::kSum, "wide64").build());
  plans.push_back(QueryBuilder("facts").filter_int("u32", 250, 750)
                      .group_by("tag").aggregate(AggOp::kCount)
                      .aggregate(AggOp::kSum, "u32").build());
  plans.push_back(QueryBuilder("facts").filter_int("u32", 500, 998)
                      .aggregate(AggOp::kAvg, "d").build());
  plans.push_back(QueryBuilder("facts").filter_int("u32", 50, 949)
                      .aggregate(AggOp::kMin, "neg32")
                      .aggregate(AggOp::kMax, "neg32").build());
  plans.push_back(QueryBuilder("facts").filter_int("u32", 300, 600)
                      .join("dim", "u32", "key")
                      .aggregate(AggOp::kCount)
                      .aggregate(AggOp::kSum, "weight").build());
  plans.push_back(QueryBuilder("facts").filter_int("u32", 1, 200)
                      .select({"u32", "skew32"})
                      .order_by("skew32", /*ascending=*/false)
                      .limit(20).build());
  plans.push_back(QueryBuilder("facts").filter_int("u32", 400, 401)
                      .group_by("skew32").aggregate(AggOp::kCount).build());
  return plans;
}

TEST(SharedScanParity, FusedGroupMatchesSoloAcrossEncodingsAndPools) {
  const std::vector<LogicalPlan> logical = eight_compatible_queries();
  const std::vector<std::pair<std::string,
                              std::optional<storage::Encoding>>> encodings = {
      {"auto", std::nullopt},
      {"plain", storage::Encoding::kPlain},
      {"bitpacked", storage::Encoding::kBitPacked},
      {"for", storage::Encoding::kForBitPacked},
  };

  for (const auto& [ename, enc] : encodings) {
    storage::Catalog cat = make_catalog(7);
    recode_all(cat, enc);
    for (std::size_t width : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
      std::optional<sched::ThreadPool> pool;
      if (width > 0) pool.emplace(width);
      ExecOptions opts;
      opts.pool = pool ? &*pool : nullptr;
      // Let small inputs take the parallel paths too.
      opts.parallel_agg_min_rows = 1;
      opts.parallel_join_min_rows = 1;
      opts.parallel_sort_min_rows = 1;
      opts.parallel_project_min_rows = 1;
      const std::string label = ename + "/pool" + std::to_string(width);

      std::vector<PhysicalPlan> plans;
      for (const LogicalPlan& lp : logical)
        plans.push_back(compile_plan(cat, lp, opts));

      // Every member must carry the same non-empty sharing key — this is
      // the batch the service would actually fuse.
      const std::string key = scan_sharing_key(cat, plans[0], opts);
      ASSERT_FALSE(key.empty()) << label;
      for (const PhysicalPlan& p : plans)
        ASSERT_EQ(scan_sharing_key(cat, p, opts), key) << label;

      // Solo baseline.
      std::vector<QueryResult> want;
      for (const PhysicalPlan& p : plans) {
        Executor ex(cat);
        ExecStats st;
        want.push_back(ex.execute(p, st, opts));
      }

      // Fused.
      std::vector<SharedBatchMember> batch;
      for (const PhysicalPlan& p : plans) batch.push_back({&p, &opts});
      std::vector<SharedMemberOut> outs(batch.size());
      execute_shared_group(cat, batch, outs);

      for (std::size_t i = 0; i < outs.size(); ++i) {
        ASSERT_TRUE(outs[i].error.empty())
            << label << " member " << i << ": " << outs[i].error;
        expect_identical(want[i], outs[i].result,
                         label + " member " + std::to_string(i));
      }
    }
  }
}

// ---- 5. Charge-once ledger discipline ---------------------------------------

TEST(SharedScanParity, ScanBytesChargedOncePerGroup) {
  storage::Catalog cat = make_catalog(9);
  recode_all(cat, storage::Encoding::kPlain);  // B = 4 bytes/row, exactly.
  const ExecOptions opts;  // serial: byte accounting without pool noise

  constexpr std::size_t kMembers = 8;
  std::vector<PhysicalPlan> plans;
  for (std::size_t i = 0; i < kMembers; ++i) {
    // COUNT-only single-predicate members: the scan is the only DRAM
    // consumer, so the arithmetic below is exact.
    plans.push_back(compile_plan(
        cat,
        QueryBuilder("facts")
            .filter_int("u32", static_cast<std::int64_t>(i * 50),
                        static_cast<std::int64_t>(400 + i * 70))
            .aggregate(AggOp::kCount)
            .build(),
        opts));
  }

  // Solo: each member streams the u32 column once.
  std::vector<ExecStats> solo(kMembers);
  std::vector<QueryResult> want;
  for (std::size_t i = 0; i < kMembers; ++i) {
    Executor ex(cat);
    want.push_back(ex.execute(plans[i], solo[i], opts));
  }
  const double column_bytes =
      static_cast<double>(cat.get("facts").column("u32").byte_size());
  ASSERT_EQ(column_bytes, 4.0 * kRows);
  double solo_sum = 0;
  for (const ExecStats& st : solo) {
    EXPECT_GE(st.work.dram_bytes, column_bytes);
    solo_sum += st.work.dram_bytes;
  }

  // Fused: the group streams the column ONCE; every other charge is
  // unchanged, so the totals drop by exactly (N-1) column passes.
  std::vector<SharedBatchMember> batch;
  for (const PhysicalPlan& p : plans) batch.push_back({&p, &opts});
  std::vector<SharedMemberOut> outs(batch.size());
  execute_shared_group(cat, batch, outs);

  double fused_sum = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    ASSERT_TRUE(outs[i].error.empty()) << outs[i].error;
    expect_identical(want[i], outs[i].result,
                     "charge-once member " + std::to_string(i));
    const ExecStats& st = outs[i].stats;
    fused_sum += st.work.dram_bytes;
    EXPECT_GT(st.work.dram_bytes, 0.0) << "member " << i
        << " must carry a fair share of the group charge";
    EXPECT_EQ(st.tuples_scanned, kRows) << "member " << i;
    // dram_bytes_saved tracks packed-vs-plain savings; under forced
    // kPlain there is no packed image, so the group adds none.
    EXPECT_DOUBLE_EQ(st.dram_bytes_saved, 0.0) << "member " << i;
    // Per-operator byte sums stay exact under the folded group share.
    double op_bytes = 0;
    for (const auto& op : st.operators) op_bytes += op.work.dram_bytes;
    EXPECT_NEAR(op_bytes, st.work.dram_bytes,
                1e-6 + 1e-9 * st.work.dram_bytes)
        << "member " << i;
  }
  const double expected_fused = solo_sum - (kMembers - 1) * column_bytes;
  EXPECT_NEAR(fused_sum, expected_fused, 1e-6 + 1e-9 * expected_fused)
      << "group must charge the scanned column exactly once";
}

// ---- 6. Database::run_batch end to end --------------------------------------

TEST(SharedScanParity, RunBatchFusesCompatibleQueriesEndToEnd) {
  core::Database db;
  // Large enough that the sharing arm approves: 8 × 1 MiB passes vs one
  // pass plus near-memory re-reads.
  constexpr std::size_t kBig = 1u << 18;
  storage::Table& t = db.create_table(
      "big", storage::Schema({{"v", storage::TypeId::kInt32},
                              {"g", storage::TypeId::kInt32}}));
  std::vector<std::int32_t> v(kBig), g(kBig);
  Pcg32 rng(21);
  for (std::size_t i = 0; i < kBig; ++i) {
    v[i] = static_cast<std::int32_t>(rng.next_bounded(10'000));
    g[i] = static_cast<std::int32_t>(rng.next_bounded(64));
  }
  t.set_column(0, storage::Column::from_int32("v", v));
  t.set_column(1, storage::Column::from_int32("g", g));

  constexpr std::size_t kMembers = 8;
  std::vector<core::BatchItem> items;
  for (std::size_t i = 0; i < kMembers; ++i) {
    core::BatchItem item;
    item.plan = QueryBuilder("big")
                    .filter_int("v", static_cast<std::int64_t>(i * 500),
                                static_cast<std::int64_t>(4000 + i * 600))
                    .aggregate(AggOp::kCount)
                    .build();
    items.push_back(std::move(item));
  }

  const std::vector<core::RunResult> runs = db.run_batch(items);
  ASSERT_EQ(runs.size(), kMembers);
  for (std::size_t i = 0; i < kMembers; ++i) {
    ASSERT_TRUE(runs[i].error.empty()) << runs[i].error;
    // One fused group spanning the whole batch, surfaced on every member.
    EXPECT_EQ(runs[i].shared_members, kMembers) << "member " << i;
    EXPECT_GT(runs[i].shared_group, 0u);
    EXPECT_EQ(runs[i].shared_group, runs[0].shared_group);
    EXPECT_GT(runs[i].attributed_j, 0.0);
    // Bit-identical to the solo path.
    const core::RunResult solo = db.run(items[i].plan, items[i].options);
    expect_identical(solo.result, runs[i].result,
                     "run_batch member " + std::to_string(i));
  }

  // The batch streams `v` once where 8 solo runs stream it 8 times.
  const double column_bytes = static_cast<double>(
      db.catalog().get("big").column("v").scan_byte_size());
  double batch_bytes = 0;
  for (const core::RunResult& r : runs) batch_bytes += r.stats.work.dram_bytes;
  double solo_bytes = 0;
  for (const core::BatchItem& item : items)
    solo_bytes += db.run(item.plan, item.options).stats.work.dram_bytes;
  EXPECT_NEAR(batch_bytes, solo_bytes - (kMembers - 1) * column_bytes,
              1e-6 + 1e-9 * solo_bytes);

  // An incompatible member rides the same batch solo, unfused, unharmed.
  std::vector<core::BatchItem> mixed = items;
  core::BatchItem odd;
  odd.plan = QueryBuilder("big")
                 .filter_int("g", 0, 31)
                 .aggregate(AggOp::kCount)
                 .build();
  mixed.push_back(std::move(odd));
  const std::vector<core::RunResult> mixed_runs = db.run_batch(mixed);
  ASSERT_EQ(mixed_runs.size(), kMembers + 1);
  EXPECT_EQ(mixed_runs.back().shared_members, 0u);
  ASSERT_TRUE(mixed_runs.back().error.empty()) << mixed_runs.back().error;
  const core::RunResult odd_solo =
      db.run(mixed.back().plan, mixed.back().options);
  expect_identical(odd_solo.result, mixed_runs.back().result, "odd member");
}

TEST(SharedScanParity, RunBatchReportsPerMemberErrorsWithoutPoisoning) {
  core::Database db;
  storage::Table& t = db.create_table(
      "s", storage::Schema({{"x", storage::TypeId::kInt64}}));
  std::vector<std::int64_t> x = {1, 2, 3, 4, 5};
  t.set_column(0, storage::Column::from_int64("x", x));

  std::vector<core::BatchItem> items(2);
  items[0].plan = QueryBuilder("s").filter_int("x", 2, 4)
                      .aggregate(AggOp::kCount).build();
  items[1].plan = QueryBuilder("s").filter_int("nope", 0, 1)
                      .aggregate(AggOp::kCount).build();
  const auto runs = db.run_batch(items);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_TRUE(runs[0].error.empty()) << runs[0].error;
  EXPECT_EQ(runs[0].result.row_count(), 1u);
  EXPECT_FALSE(runs[1].error.empty())
      << "unknown column must surface as a member error, not a throw";
}

}  // namespace
}  // namespace eidb::query
