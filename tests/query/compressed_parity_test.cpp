// Differential harness for compressed column segments in the query
// pipeline: the same randomized tables are loaded under every Encoding,
// a generated matrix of filter / group-by / aggregate / join queries runs
// through the packed and plain paths, and the results must be
// BIT-IDENTICAL while the packed path's attributed DRAM bytes never
// exceed the plain path's. This is the proof obligation behind making
// `ExecOptions::use_encodings` the default.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/join.hpp"
#include "query/executor.hpp"
#include "query/sql.hpp"
#include "sched/thread_pool.hpp"
#include "storage/column.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

using storage::Catalog;
using storage::Column;
using storage::Encoding;
using storage::Schema;
using storage::Table;
using storage::TypeId;
using storage::Value;

// 5'000 rows: not a multiple of 64, so every kernel exercises its partial
// tail word; large enough for full, partial and dead selection words.
constexpr std::size_t kRows = 5'000;

/// facts(u32, skew32, neg32, const32, wide64, neg64, tag, d, dk) — one
/// column per distribution shape the encoder must survive: uniform
/// non-negative (kBitPacked), skewed (dense head, sparse tail),
/// negative-domain (kForBitPacked only), all-equal (width-0 packing),
/// wide int64, negative int64, dictionary codes, a plain double, and a
/// small-domain double that doubles as a join / group key.
Catalog make_catalog(std::uint64_t seed) {
  Catalog cat;
  Table& t = cat.add(Table("facts", Schema({{"u32", TypeId::kInt32},
                                            {"skew32", TypeId::kInt32},
                                            {"neg32", TypeId::kInt32},
                                            {"const32", TypeId::kInt32},
                                            {"wide64", TypeId::kInt64},
                                            {"neg64", TypeId::kInt64},
                                            {"tag", TypeId::kString},
                                            {"d", TypeId::kDouble},
                                            {"dk", TypeId::kDouble}})));
  Pcg32 rng(seed);
  std::vector<std::int32_t> u32, skew32, neg32, const32;
  std::vector<std::int64_t> wide64, neg64;
  std::vector<std::string> tag;
  std::vector<double> d, dk;
  const char* tags[] = {"ash", "birch", "cedar", "elm", "fir", "oak"};
  for (std::size_t i = 0; i < kRows; ++i) {
    u32.push_back(static_cast<std::int32_t>(rng.next_bounded(1000)));
    // Skew: ~87% land in a tiny head domain, the rest spread wide.
    skew32.push_back(static_cast<std::int32_t>(
        rng.next_bounded(8) != 0 ? rng.next_bounded(4)
                                 : 100 + rng.next_bounded(5000)));
    neg32.push_back(static_cast<std::int32_t>(rng.next_in_range(-700, 300)));
    const32.push_back(42);
    wide64.push_back(rng.next_in_range(0, 3'000'000));
    neg64.push_back(rng.next_in_range(-50'000, -10));
    tag.emplace_back(tags[rng.next_bounded(6)]);
    d.push_back(rng.next_double() * 200.0 - 100.0);
    dk.push_back(0.25 * static_cast<double>(rng.next_bounded(40)));
  }
  t.set_column(0, Column::from_int32("u32", u32));
  t.set_column(1, Column::from_int32("skew32", skew32));
  t.set_column(2, Column::from_int32("neg32", neg32));
  t.set_column(3, Column::from_int32("const32", const32));
  t.set_column(4, Column::from_int64("wide64", wide64));
  t.set_column(5, Column::from_int64("neg64", neg64));
  t.set_column(6, Column::from_strings("tag", tag));
  t.set_column(7, Column::from_double("d", d));
  t.set_column(8, Column::from_double("dk", dk));

  // dim(key, weight, cat, skey, dkey) for joins: keys overlap u32's
  // domain partially, keys 0..49 appear TWICE (duplicate build keys ->
  // pair fan-out), and `cat` gives a build-side string group key.
  // `skey` is a string join key whose dictionary only PARTIALLY overlaps
  // facts.tag ("hazel"/"pine" remap to no probe code; "ash"/"oak" never
  // match), and `dkey` is a double join key over a 48-value domain that
  // covers facts.dk's 40 values plus 8 build-only ones.
  Table& dim = cat.add(Table("dim", Schema({{"key", TypeId::kInt32},
                                            {"weight", TypeId::kInt64},
                                            {"cat", TypeId::kString},
                                            {"skey", TypeId::kString},
                                            {"dkey", TypeId::kDouble}})));
  std::vector<std::int32_t> keys;
  std::vector<std::int64_t> weights;
  std::vector<std::string> cats, skeys;
  std::vector<double> dkeys;
  const char* cat_names[] = {"red", "green", "blue"};
  const char* skey_names[] = {"birch", "cedar", "elm",
                              "fir",   "hazel", "pine"};
  for (std::int32_t k = 0; k < 700; ++k) {
    keys.push_back(k);
    weights.push_back(rng.next_in_range(-9, 9));
    cats.emplace_back(cat_names[rng.next_bounded(3)]);
    skeys.emplace_back(skey_names[rng.next_bounded(6)]);
    dkeys.push_back(0.25 * static_cast<double>(rng.next_bounded(48)));
  }
  for (std::int32_t k = 0; k < 50; ++k) {  // duplicates
    keys.push_back(k);
    weights.push_back(rng.next_in_range(-9, 9));
    cats.emplace_back(cat_names[rng.next_bounded(3)]);
    skeys.emplace_back(skey_names[rng.next_bounded(6)]);
    dkeys.push_back(0.25 * static_cast<double>(rng.next_bounded(48)));
  }
  dim.set_column(0, Column::from_int32("key", keys));
  dim.set_column(1, Column::from_int64("weight", weights));
  dim.set_column(2, Column::from_strings("cat", cats));
  dim.set_column(3, Column::from_strings("skey", skeys));
  dim.set_column(4, Column::from_double("dkey", dkeys));

  // dim2(key2, score): a second star dimension over u32's domain — only
  // even keys exist, so the chained join filters — for the multi-way
  // (3-table) join matrix.
  Table& dim2 = cat.add(Table("dim2", Schema({{"key2", TypeId::kInt32},
                                              {"score", TypeId::kInt64}})));
  std::vector<std::int32_t> keys2;
  std::vector<std::int64_t> scores;
  for (std::int32_t k = 0; k < 450; ++k) {
    keys2.push_back(2 * k);
    scores.push_back(rng.next_in_range(-20, 20));
  }
  dim2.set_column(0, Column::from_int32("key2", keys2));
  dim2.set_column(1, Column::from_int64("score", scores));
  return cat;
}

/// Re-encodes every integer-typed column of both tables. `forced` ==
/// nullopt restores the automatic (stats-driven) choice; kBitPacked is
/// silently replaced by kForBitPacked on negative domains, where it is
/// inapplicable by definition.
void recode_all(Catalog& cat, std::optional<Encoding> forced) {
  for (const std::string& tname : cat.table_names()) {
    Table& t = cat.get(tname);
    for (const auto& def : t.schema().columns()) {
      if (def.type == TypeId::kDouble) continue;
      Encoding e;
      if (forced.has_value()) {
        e = *forced;
        if (e == Encoding::kBitPacked && t.column(def.name).stats().min < 0)
          e = Encoding::kForBitPacked;
      } else {
        e = t.column(def.name).choose_encoding();
      }
      t.recode(def.name, e);
    }
  }
}

/// Bit-identical result comparison: every Value must compare equal under
/// the variant's operator== — including doubles, since packed decode is
/// exact and both paths accumulate in the same order.
void expect_identical(const QueryResult& plain, const QueryResult& packed,
                      const std::string& label) {
  ASSERT_EQ(plain.column_names(), packed.column_names()) << label;
  ASSERT_EQ(plain.row_count(), packed.row_count()) << label;
  for (std::size_t r = 0; r < plain.row_count(); ++r)
    for (std::size_t c = 0; c < plain.column_count(); ++c)
      ASSERT_EQ(plain.at(r, c), packed.at(r, c))
          << label << " row " << r << " col " << c;
}

/// The query matrix: every supported shape over the distribution columns.
std::vector<std::pair<std::string, LogicalPlan>> query_matrix() {
  std::vector<std::pair<std::string, LogicalPlan>> qs;
  const auto add = [&](const std::string& name, LogicalPlan plan) {
    qs.emplace_back(name, std::move(plan));
  };
  // Filters: wide / narrow / point / empty / covering / negative bounds.
  add("filter_count", QueryBuilder("facts")
                          .filter_int("u32", 100, 899)
                          .aggregate(AggOp::kCount)
                          .build());
  add("filter_point", QueryBuilder("facts")
                          .filter_int("skew32", 2, 2)
                          .aggregate(AggOp::kCount)
                          .build());
  add("filter_negative", QueryBuilder("facts")
                             .filter_int("neg32", -650, -1)
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "neg32")
                             .build());
  add("filter_const_hit", QueryBuilder("facts")
                              .filter_int("const32", 40, 50)
                              .aggregate(AggOp::kCount)
                              .build());
  add("filter_const_miss", QueryBuilder("facts")
                               .filter_int("const32", 43, 99)
                               .aggregate(AggOp::kCount)
                               .build());
  add("filter_conjunctive", QueryBuilder("facts")
                                .filter_int("u32", 50, 800)
                                .filter_int("wide64", 0, 1'500'000)
                                .filter_int("neg32", -500, 200)
                                .aggregate(AggOp::kCount)
                                .aggregate(AggOp::kMin, "neg64")
                                .build());
  add("filter_string", QueryBuilder("facts")
                           .filter_string("tag", "birch", "fir")
                           .aggregate(AggOp::kCount)
                           .build());
  // Global multi-aggregates over every input type.
  add("global_multi", QueryBuilder("facts")
                          .filter_int("u32", 0, 750)
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "wide64")
                          .aggregate(AggOp::kMin, "neg64")
                          .aggregate(AggOp::kMax, "skew32")
                          .aggregate(AggOp::kAvg, "neg32")
                          .aggregate(AggOp::kAvg, "d")
                          .build());
  // Group-bys: every key type, packed values under packed keys.
  add("group_small_key", QueryBuilder("facts")
                             .group_by("skew32")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "wide64")
                             .aggregate(AggOp::kMin, "neg32")
                             .build());
  add("group_negative_key", QueryBuilder("facts")
                                .filter_int("wide64", 250'000, 2'750'000)
                                .group_by("neg64")
                                .aggregate(AggOp::kCount)
                                .aggregate(AggOp::kMax, "u32")
                                .build());
  add("group_string_key", QueryBuilder("facts")
                              .group_by("tag")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "neg32")
                              .aggregate(AggOp::kAvg, "d")
                              .build());
  add("group_const_key", QueryBuilder("facts")
                             .group_by("const32")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "u32")
                             .build());
  add("group_composite", QueryBuilder("facts")
                             .filter_int("neg32", -400, 250)
                             .group_by("tag")
                             .group_by("skew32")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "wide64")
                             .build());
  // Joins: packed key probing, duplicate build keys, build-side aggregate
  // columns, grouped aggregation over probe AND build columns, empty
  // build selections — every shape the vectorized join pipeline supports.
  add("join_agg", QueryBuilder("facts")
                      .filter_int("u32", 0, 680)
                      .join("dim", "u32", "key")
                      .aggregate(AggOp::kCount)
                      .aggregate(AggOp::kSum, "wide64")
                      .build());
  add("join_build_agg", QueryBuilder("facts")
                            .join("dim", "u32", "key")
                            .aggregate(AggOp::kCount)
                            .aggregate(AggOp::kSum, "dim.weight")
                            .aggregate(AggOp::kMin, "dim.weight")
                            .aggregate(AggOp::kMax, "u32")
                            .build());
  add("join_group_probe", QueryBuilder("facts")
                              .filter_int("u32", 0, 200)
                              .join("dim", "u32", "key")
                              .group_by("tag")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "wide64")
                              .aggregate(AggOp::kSum, "dim.weight")
                              .build());
  add("join_group_build", QueryBuilder("facts")
                              .join("dim", "u32", "key")
                              .join_filter_int("weight", -5, 5)
                              .group_by("dim.cat")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "u32")
                              .aggregate(AggOp::kMin, "neg32")
                              .build());
  add("join_group_composite", QueryBuilder("facts")
                                  .filter_int("skew32", 0, 3)
                                  .join("dim", "u32", "key")
                                  .group_by("skew32")
                                  .group_by("dim.cat")
                                  .aggregate(AggOp::kCount)
                                  .aggregate(AggOp::kSum, "dim.weight")
                                  .build());
  add("join_empty_build", QueryBuilder("facts")
                              .join("dim", "u32", "key")
                              .join_filter_int("weight", 100, 200)
                              .group_by("tag")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "u32")
                              .build());
  // String- and double-keyed joins: the build side's codes are remapped
  // into the probe dictionary's code domain, so these exercise partially
  // overlapping dictionaries (build-only values remap to -1, probe-only
  // values never match), fully disjoint dictionaries (empty result), and
  // double keys joined / grouped through their ordered code domains.
  add("join_string_key", QueryBuilder("facts")
                             .filter_int("u32", 0, 120)
                             .join("dim", "tag", "skey")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "dim.weight")
                             .aggregate(AggOp::kMax, "u32")
                             .build());
  add("join_string_group", QueryBuilder("facts")
                               .filter_int("u32", 500, 560)
                               .join("dim", "tag", "skey")
                               .join_filter_int("weight", -6, 6)
                               .group_by("dim.cat")
                               .aggregate(AggOp::kCount)
                               .aggregate(AggOp::kSum, "wide64")
                               .build());
  add("join_string_disjoint", QueryBuilder("facts")
                                  .filter_int("u32", 0, 500)
                                  .join("dim", "tag", "cat")
                                  .aggregate(AggOp::kCount)
                                  .aggregate(AggOp::kSum, "u32")
                                  .build());
  add("join_double_key", QueryBuilder("facts")
                             .filter_int("u32", 0, 100)
                             .join("dim", "dk", "dkey")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "dim.weight")
                             .aggregate(AggOp::kMin, "neg32")
                             .build());
  add("group_double_key", QueryBuilder("facts")
                              .filter_int("u32", 0, 400)
                              .group_by("dk")
                              .aggregate(AggOp::kCount)
                              .aggregate(AggOp::kSum, "neg32")
                              .build());
  // Multi-way (3-table) star joins through the physical plan compiler:
  // grouped aggregates over all three tables, composite cross-table
  // keys, and ORDER BY / LIMIT over the join output.
  add("join_star_group", QueryBuilder("facts")
                             .filter_int("u32", 0, 650)
                             .join("dim", "u32", "key")
                             .join("dim2", "u32", "key2")
                             .group_by("tag")
                             .aggregate(AggOp::kCount)
                             .aggregate(AggOp::kSum, "dim.weight")
                             .aggregate(AggOp::kSum, "dim2.score")
                             .aggregate(AggOp::kMax, "u32")
                             .build());
  add("join_star_composite", QueryBuilder("facts")
                                 .filter_int("skew32", 0, 3)
                                 .join("dim", "u32", "key")
                                 .join_filter_int("weight", -7, 7)
                                 .join("dim2", "u32", "key2")
                                 .group_by("skew32")
                                 .group_by("dim.cat")
                                 .aggregate(AggOp::kCount)
                                 .aggregate(AggOp::kSum, "dim2.score")
                                 .build());
  add("join_star_orderby_key", QueryBuilder("facts")
                                   .join("dim", "u32", "key")
                                   .join("dim2", "u32", "key2")
                                   .group_by("tag")
                                   .aggregate(AggOp::kCount)
                                   .aggregate(AggOp::kSum, "dim.weight")
                                   .order_by("tag", false)
                                   .limit(4)
                                   .build());
  add("join_group_orderby_count", QueryBuilder("facts")
                                      .join("dim", "u32", "key")
                                      .group_by("dim.cat")
                                      .aggregate(AggOp::kCount)
                                      .aggregate(AggOp::kSum, "u32")
                                      .order_by("count", false)
                                      .limit(3)
                                      .build());
  // ORDER BY over aggregate output on the no-join path.
  add("group_orderby_agg", QueryBuilder("facts")
                               .group_by("skew32")
                               .aggregate(AggOp::kCount)
                               .aggregate(AggOp::kSum, "wide64")
                               .order_by("sum(wide64)", false)
                               .limit(5)
                               .build());
  // Projection + order-by + limit (heap top-k, gather-bounded charges).
  add("topn", QueryBuilder("facts")
                  .filter_int("skew32", 0, 3)
                  .select({"u32", "skew32", "neg64"})
                  .order_by("neg64", false)
                  .limit(25)
                  .build());
  // Join projection with ORDER BY + LIMIT (the shape the executor used
  // to reject outright).
  add("join_topn", QueryBuilder("facts")
                       .filter_int("skew32", 0, 2)
                       .join("dim", "u32", "key")
                       .select({"u32", "dim.weight", "neg64"})
                       .order_by("neg64", false)
                       .limit(20)
                       .build());
  return qs;
}

/// Runs the full matrix against one catalog: plain baseline (encodings
/// off) vs packed (encodings on), asserting bit-identical results and the
/// DRAM-byte dominance `packed <= plain` per query.
void run_matrix(Catalog& cat, const std::string& config,
                sched::ThreadPool* pool = nullptr) {
  Executor ex(cat);
  for (auto& [name, plan] : query_matrix()) {
    ExecOptions plain_opts;
    plain_opts.use_encodings = false;
    ExecOptions packed_opts;
    packed_opts.use_encodings = true;
    if (pool != nullptr) {
      // Force EVERY morsel-parallel operator — aggregation, join chain,
      // sort/top-k, projection materialization — onto the pool, so the
      // packed run exercises the parallel kernels while the plain
      // baseline stays serial. Results must still be bit-identical: the
      // parallel paths merge per-chunk partials in chunk order, never
      // completion order.
      packed_opts.pool = pool;
      packed_opts.parallel_agg_min_rows = 1;
      packed_opts.parallel_join_min_rows = 1;
      packed_opts.parallel_sort_min_rows = 1;
      packed_opts.parallel_project_min_rows = 1;
    }
    ExecStats plain_stats, packed_stats;
    const QueryResult plain = ex.execute(plan, plain_stats, plain_opts);
    const QueryResult packed = ex.execute(plan, packed_stats, packed_opts);
    const std::string label = config + "/" + name;
    expect_identical(plain, packed, label);
    EXPECT_LE(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes)
        << label;
    EXPECT_GE(packed_stats.dram_bytes_saved, 0.0) << label;
  }
}

TEST(CompressedParity, AutoEncodingMatchesPlain) {
  for (const std::uint64_t seed : {7u, 1337u, 90210u}) {
    Catalog cat = make_catalog(seed);  // set_column auto-encoded already
    run_matrix(cat, "auto/seed" + std::to_string(seed));
  }
}

TEST(CompressedParity, EveryEncodingMatchesPlain) {
  Catalog cat = make_catalog(4242);
  for (const Encoding e :
       {Encoding::kPlain, Encoding::kBitPacked, Encoding::kForBitPacked}) {
    recode_all(cat, e);
    run_matrix(cat, "forced-" + storage::encoding_name(e));
  }
  recode_all(cat, std::nullopt);  // and back to the automatic choice
  run_matrix(cat, "auto-restored");
}

TEST(CompressedParity, ParallelPackedKernelsMatchPlain) {
  Catalog cat = make_catalog(555);
  sched::ThreadPool pool(4);
  run_matrix(cat, "auto+pool", &pool);
}

TEST(CompressedParity, RandomizedThreadCountsMatchPlain) {
  // Thread-count invariance: the whole matrix, serial baseline vs a pool
  // of RANDOM width per iteration. Emitted row order and float sums must
  // not depend on how many workers split the morsels.
  Pcg32 rng(0x7EAD);
  for (const std::uint64_t seed : {99u, 24'601u}) {
    Catalog cat = make_catalog(seed);
    const std::size_t threads = 2 + rng.next_bounded(7);  // 2..8
    sched::ThreadPool pool(threads);
    run_matrix(cat, "auto+pool" + std::to_string(threads), &pool);
  }
}

TEST(CompressedParity, MaskedConjunctsPackedMatchesPlain) {
  // Deep conjunction: the 2nd..4th predicates run the masked packed
  // kernel; unordered evaluation runs full packed scans. All must agree.
  Catalog cat = make_catalog(31);
  Executor ex(cat);
  const auto plan = QueryBuilder("facts")
                        .filter_int("skew32", 0, 2)  // selective first
                        .filter_int("u32", 100, 900)
                        .filter_int("neg32", -600, 100)
                        .filter_int("wide64", 100'000, 2'900'000)
                        .group_by("tag")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "wide64")
                        .build();
  ExecOptions plain_opts;
  plain_opts.use_encodings = false;
  ExecOptions unordered_packed;
  unordered_packed.order_predicates = false;
  ExecStats s1, s2, s3;
  const QueryResult want = ex.execute(plan, s1, plain_opts);
  const QueryResult masked = ex.execute(plan, s2);
  const QueryResult unordered = ex.execute(plan, s3, unordered_packed);
  expect_identical(want, masked, "masked");
  expect_identical(want, unordered, "unordered");
  EXPECT_LE(s2.work.dram_bytes, s1.work.dram_bytes);
  EXPECT_LE(s3.work.dram_bytes, s1.work.dram_bytes);
  // Masked conjuncts touch at most the full packed scans' traffic.
  EXPECT_LE(s2.work.dram_bytes, s3.work.dram_bytes);
}

TEST(CompressedParity, ZoneMapsComposeWithPackedSegments) {
  // Clustered column: zone maps prune most blocks; the pruned packed scan
  // must agree with the pruned plain scan and charge no more.
  Catalog cat;
  Table& t = cat.add(Table(
      "clustered", Schema({{"seq", TypeId::kInt32}, {"v", TypeId::kInt64}})));
  std::vector<std::int32_t> seq;
  std::vector<std::int64_t> v;
  for (std::int32_t i = 0; i < 8'000; ++i) {
    seq.push_back(i / 2);  // sorted, two rows per value
    v.push_back(i % 97);
  }
  t.set_column(0, Column::from_int32("seq", seq));
  t.set_column(1, Column::from_int64("v", v));
  ASSERT_NE(t.column("seq").encoded(), nullptr);

  Executor ex(cat);
  const auto plan = QueryBuilder("clustered")
                        .filter_int("seq", 1'000, 1'099)
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "v")
                        .build();
  ExecOptions zm_plain;
  zm_plain.use_zone_maps = true;
  zm_plain.zone_block_rows = 256;
  zm_plain.use_encodings = false;
  ExecOptions zm_packed = zm_plain;
  zm_packed.use_encodings = true;
  ExecStats plain_stats, packed_stats;
  const QueryResult plain = ex.execute(plan, plain_stats, zm_plain);
  const QueryResult packed = ex.execute(plan, packed_stats, zm_packed);
  expect_identical(plain, packed, "zonemap");
  EXPECT_EQ(plain.at(0, 0).as_int(), 200);
  EXPECT_LE(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes);
}

TEST(CompressedParity, WidthZeroAndWidthOneColumns) {
  // All-equal (width 0) and two-valued (width 1) columns through the full
  // pipeline under forced encodings — the degenerate widths of the
  // encoder's domain computation.
  Catalog cat;
  Table& t = cat.add(Table("edge", Schema({{"zero", TypeId::kInt32},
                                           {"one", TypeId::kInt32},
                                           {"v", TypeId::kInt64}})));
  std::vector<std::int32_t> zero(300, 7), one;
  std::vector<std::int64_t> v;
  Pcg32 rng(99);
  for (std::size_t i = 0; i < 300; ++i) {
    one.push_back(static_cast<std::int32_t>(rng.next_bounded(2)));
    v.push_back(rng.next_in_range(-100, 100));
  }
  t.set_column(0, Column::from_int32("zero", zero));
  t.set_column(1, Column::from_int32("one", one));
  t.set_column(2, Column::from_int64("v", v));
  // The all-equal column packs to zero bits under FOR.
  t.recode("zero", Encoding::kForBitPacked);
  ASSERT_NE(t.column("zero").encoded(), nullptr);
  EXPECT_EQ(t.column("zero").encoded()->bits, 0u);
  EXPECT_EQ(t.column("zero").scan_byte_size(), 0u);

  Executor ex(cat);
  for (const char* key : {"zero", "one"}) {
    const auto plan = QueryBuilder("edge")
                          .group_by(key)
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "v")
                          .aggregate(AggOp::kMin, "zero")
                          .build();
    ExecOptions plain_opts;
    plain_opts.use_encodings = false;
    ExecStats plain_stats, packed_stats;
    const QueryResult plain = ex.execute(plan, plain_stats, plain_opts);
    const QueryResult packed = ex.execute(plan, packed_stats);
    expect_identical(plain, packed, key);
    EXPECT_LE(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes);
  }
}

TEST(CompressedParity, EmptyTableUnderEveryEncoding) {
  Catalog cat;
  Table& t = cat.add(Table(
      "empty", Schema({{"a", TypeId::kInt32}, {"b", TypeId::kInt64}})));
  t.set_column(0, Column::from_int32("a", {}));
  t.set_column(1, Column::from_int64("b", {}));
  // Empty columns auto-choose plain but accept forced encodings.
  EXPECT_EQ(t.column("a").encoding(), Encoding::kPlain);
  for (const Encoding e : {Encoding::kBitPacked, Encoding::kForBitPacked}) {
    t.recode("a", e);
    t.recode("b", e);
    Executor ex(cat);
    ExecStats stats;
    const auto plan = QueryBuilder("empty")
                          .filter_int("a", 0, 10)
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "b")
                          .build();
    const QueryResult r = ex.execute(plan, stats);
    EXPECT_EQ(r.at(0, 0).as_int(), 0);
    EXPECT_EQ(r.at(0, 1).as_int(), 0);
  }
}

TEST(CompressedParity, MixedConsumersChargeOneRepresentation) {
  // u32 is both a composite group key (plain-only synthesis) and a direct
  // aggregate input: the whole query must consume it through ONE
  // representation — the plain array — and charge exactly that once.
  Catalog cat = make_catalog(77);
  const Table& t = cat.get("facts");
  ASSERT_NE(t.column("u32").encoded(), nullptr);
  Executor ex(cat);
  const auto plan = QueryBuilder("facts")
                        .group_by("u32")
                        .group_by("tag")
                        .aggregate(AggOp::kSum, "u32")
                        .aggregate(AggOp::kCount)
                        .build();
  ExecOptions plain_opts;
  plain_opts.use_encodings = false;
  ExecStats plain_stats, packed_stats;
  const QueryResult plain = ex.execute(plan, plain_stats, plain_opts);
  const QueryResult packed = ex.execute(plan, packed_stats);
  expect_identical(plain, packed, "mixed-consumers");
  // Composite keys force u32 and tag plain for every consumer: the two
  // runs charge identical bytes (u32 once at plain width + tag once, plus
  // the tag dictionary payload the group emit gathers — the group count
  // covers the dictionary, so the cap bills one full payload read).
  EXPECT_DOUBLE_EQ(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes);
  EXPECT_DOUBLE_EQ(
      packed_stats.work.dram_bytes,
      static_cast<double>(t.column("u32").byte_size() +
                          t.column("tag").byte_size() +
                          t.column("tag").dictionary().payload_bytes()));

  // Same property for an expression reference next to a packed group key:
  // wide64 appears in SUM(wide64 * wide64)-style expression input, so it
  // is read plain even though skew32 stays packed as the single key.
  const auto expr = exec::Expr::binary(exec::ExprOp::kMul,
                                       exec::Expr::column("wide64"),
                                       exec::Expr::column("wide64"));
  const auto plan2 = QueryBuilder("facts")
                         .group_by("skew32")
                         .aggregate_expr(AggOp::kSum, expr)
                         .aggregate(AggOp::kMin, "wide64")
                         .build();
  ExecStats s_plain, s_packed;
  const QueryResult r_plain = ex.execute(plan2, s_plain, plain_opts);
  const QueryResult r_packed = ex.execute(plan2, s_packed);
  expect_identical(r_plain, r_packed, "expr-mixed");
  EXPECT_DOUBLE_EQ(
      s_packed.work.dram_bytes,
      static_cast<double>(t.column("skew32").scan_byte_size() +
                          t.column("wide64").byte_size()));
}

// ---------------------------------------------------------------------------
// Join queries against a fully independent scalar nested-loop oracle:
// selections come from the public predicate API, matches from plain
// nested loops over every join in declaration order, and grouping /
// aggregation from scalar maps — none of the vectorized pipeline, no
// planner reordering. Results must be bit-identical under every encoding;
// plans with ORDER BY are additionally checked for sortedness and LIMIT
// row count (positional order on tied sort keys is the executor's
// deterministic tie-break, which the oracle does not model).
// ---------------------------------------------------------------------------

/// Scalar oracle result: one Group per composite key string.
struct OracleGroup {
  std::int64_t count = 0;
  std::vector<std::int64_t> sum, mn, mx;
};

/// Runs the nested-loop + scalar-map oracle for an aggregate join plan.
std::map<std::string, OracleGroup> run_join_oracle(Executor& ex, Catalog& cat,
                                                   const LogicalPlan& plan) {
  const Table& facts = cat.get(plan.table);
  std::vector<const Table*> sides{&facts};  // side j+1 = join j's table
  for (const JoinSpec& j : plan.joins) sides.push_back(&cat.get(j.table));

  // Column resolution mirroring the executor: bare names bind probe
  // first, then the joined tables in declaration order.
  const auto resolve =
      [&](const std::string& n) -> std::pair<std::size_t, const Column*> {
    const auto dot = n.find('.');
    if (dot != std::string::npos) {
      const std::string t = n.substr(0, dot);
      const std::string c = n.substr(dot + 1);
      for (std::size_t s = 0; s < sides.size(); ++s)
        if (sides[s]->name() == t) return {s, &sides[s]->column(c)};
      throw Error("oracle: unknown table " + t);
    }
    for (std::size_t s = 0; s < sides.size(); ++s)
      if (sides[s]->schema().has_column(n)) return {s, &sides[s]->column(n)};
    throw Error("oracle: unknown column " + n);
  };

  // Selections through the public predicate API (encodings off).
  ExecStats scratch;
  const ExecOptions oracle_opts;
  const BitVector psel =
      ex.evaluate_predicates(facts, plan.predicates, scratch, oracle_opts);
  std::vector<BitVector> bsel;
  for (std::size_t j = 0; j < plan.joins.size(); ++j)
    bsel.push_back(ex.evaluate_predicates(*sides[j + 1],
                                          plan.joins[j].predicates, scratch,
                                          oracle_opts));

  // Nested-loop match tuples, one join at a time in declaration order.
  std::vector<std::vector<std::size_t>> tuples;
  psel.for_each_set([&](std::size_t i) { tuples.push_back({i}); });
  for (std::size_t j = 0; j < plan.joins.size(); ++j) {
    const JoinSpec& spec = plan.joins[j];
    const auto [src_side, src_col] = resolve(spec.left_key);
    const Column& right = sides[j + 1]->column(spec.right_key);
    // Key equality in the VALUE domain, never dictionary codes: the two
    // sides of a string (or double) join own independent dictionaries,
    // so equal codes do not mean equal keys.
    const TypeId kt = src_col->type();
    std::vector<std::vector<std::size_t>> next;
    for (const auto& tup : tuples) {
      for (std::size_t b = 0; b < right.size(); ++b) {
        if (!bsel[j].test(b)) continue;
        bool eq;
        if (kt == TypeId::kString)
          eq = src_col->value_at(tup[src_side]).as_string() ==
               right.value_at(b).as_string();
        else if (kt == TypeId::kDouble)
          eq = src_col->value_at(tup[src_side]).as_double() ==
               right.value_at(b).as_double();
        else
          eq = src_col->int_at(tup[src_side]) == right.int_at(b);
        if (!eq) continue;
        auto extended = tup;
        extended.push_back(b);
        next.push_back(std::move(extended));
      }
    }
    tuples = std::move(next);
  }

  // Scalar accumulation (the matrix uses COUNT/SUM/MIN/MAX on integer
  // columns, so everything is exact int64 arithmetic).
  std::map<std::string, OracleGroup> groups;
  const std::size_t n_aggs = plan.aggregates.size();
  for (const auto& tup : tuples) {
    std::string key;
    for (const std::string& gname : plan.group_by) {
      const auto [s, c] = resolve(gname);
      key += c->value_at(tup[s]).to_string() + "|";
    }
    OracleGroup& g = groups[key];
    if (g.sum.empty()) {
      g.sum.assign(n_aggs, 0);
      g.mn.assign(n_aggs, std::numeric_limits<std::int64_t>::max());
      g.mx.assign(n_aggs, std::numeric_limits<std::int64_t>::min());
    }
    ++g.count;
    for (std::size_t ai = 0; ai < n_aggs; ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      if (a.op == AggOp::kCount) continue;
      EIDB_EXPECTS(a.op != AggOp::kAvg);  // oracle is integer-exact only
      const auto [s, c] = resolve(a.column);
      const std::int64_t v = c->int_at(tup[s]);
      g.sum[ai] += v;
      g.mn[ai] = std::min(g.mn[ai], v);
      g.mx[ai] = std::max(g.mx[ai], v);
    }
  }
  // A global aggregate over zero pairs still emits one zeroed row.
  if (plan.group_by.empty() && groups.empty()) {
    OracleGroup& g = groups[""];
    g.sum.assign(n_aggs, 0);
    g.mn.assign(n_aggs, 0);
    g.mx.assign(n_aggs, 0);
  }
  return groups;
}

/// Checks an executed aggregate join result against the oracle groups:
/// positional bijection without ORDER BY; membership + sortedness +
/// LIMIT-bounded row count with it.
void expect_matches_oracle(const QueryResult& got,
                           const std::map<std::string, OracleGroup>& groups,
                           const LogicalPlan& plan, const std::string& label) {
  const std::size_t want_rows =
      plan.limit != 0 ? std::min(plan.limit, groups.size()) : groups.size();
  ASSERT_EQ(got.row_count(), want_rows) << label;
  if (plan.order_by.has_value() && got.row_count() > 1) {
    const std::size_t oc = got.column_index(plan.order_by->column);
    for (std::size_t r = 0; r + 1 < got.row_count(); ++r) {
      const storage::Value& a = got.at(r, oc);
      const storage::Value& b = got.at(r + 1, oc);
      const auto leq = [](const storage::Value& x, const storage::Value& y) {
        if (x.is_string()) return x.as_string() <= y.as_string();
        if (x.is_double() || y.is_double())
          return x.as_double() <= y.as_double();
        return x.as_int() <= y.as_int();
      };
      if (plan.order_by->ascending)
        EXPECT_TRUE(leq(a, b)) << label << " row " << r;
      else
        EXPECT_TRUE(leq(b, a)) << label << " row " << r;
    }
  }
  const std::size_t n_aggs = plan.aggregates.size();
  for (std::size_t r = 0; r < got.row_count(); ++r) {
    std::string key;
    for (std::size_t gc = 0; gc < plan.group_by.size(); ++gc)
      key += got.at(r, gc).to_string() + "|";
    const auto it = groups.find(key);
    ASSERT_TRUE(it != groups.end()) << label << " key " << key;
    const OracleGroup& g = it->second;
    for (std::size_t ai = 0; ai < n_aggs; ++ai) {
      const std::size_t col = plan.group_by.size() + ai;
      const std::int64_t got_v = got.at(r, col).as_int();
      switch (plan.aggregates[ai].op) {
        case AggOp::kCount:
          EXPECT_EQ(got_v, g.count) << label << " key " << key;
          break;
        case AggOp::kSum:
          EXPECT_EQ(got_v, g.sum[ai]) << label << " key " << key;
          break;
        case AggOp::kMin:
          EXPECT_EQ(got_v, g.count ? g.mn[ai] : 0) << label;
          break;
        case AggOp::kMax:
          EXPECT_EQ(got_v, g.count ? g.mx[ai] : 0) << label;
          break;
        case AggOp::kAvg:
          break;
      }
    }
  }
}

TEST(CompressedParity, JoinMatrixMatchesNestedLoopOracle) {
  Catalog cat = make_catalog(2026);
  Executor ex(cat);

  for (const std::optional<Encoding> forced :
       {std::optional<Encoding>{}, std::optional<Encoding>{Encoding::kPlain},
        std::optional<Encoding>{Encoding::kBitPacked},
        std::optional<Encoding>{Encoding::kForBitPacked}}) {
    recode_all(cat, forced);
    for (auto& [name, plan] : query_matrix()) {
      if (!plan.has_join() || !plan.is_aggregate()) continue;
      const std::string label =
          (forced ? storage::encoding_name(*forced) : "auto") + "/" + name;
      const auto groups = run_join_oracle(ex, cat, plan);
      ExecStats stats;
      const QueryResult got = ex.execute(plan, stats);
      expect_matches_oracle(got, groups, plan, label);
    }
  }
}

// Code-domain execution acceptance for string-keyed joins: a grouped
// string join charges EXACTLY the int32 code arrays of both key columns
// plus the consumed aggregate / group-key columns (and the group key's
// dictionary payload at emit). The join keys' string payloads never
// appear in the DRAM ledger — no per-row string compares, no full-string
// materialization before projection.
TEST(CompressedParity, StringJoinChargesCodeDomainBytesExactly) {
  Catalog cat = make_catalog(606);
  Executor ex(cat);
  const Table& facts = cat.get("facts");
  const Table& dim = cat.get("dim");
  const auto plan = QueryBuilder("facts")
                        .filter_int("u32", 500, 560)
                        .join("dim", "tag", "skey")
                        .group_by("dim.cat")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "wide64")
                        .aggregate(AggOp::kSum, "dim.weight")
                        .build();
  ExecOptions opts;
  opts.use_encodings = false;  // plain widths -> one exact byte formula
  ExecStats stats;
  const QueryResult got = ex.execute(plan, stats, opts);
  ASSERT_EQ(got.row_count(), 3u);  // red / green / blue all reached

  // String columns store int32 codes, so byte_size() IS the code-array
  // size: the formula below contains the key dictionaries' payloads
  // exactly zero times.
  const double want =
      static_cast<double>(facts.column("u32").byte_size()) +    // filter
      static_cast<double>(facts.column("tag").byte_size()) +    // probe codes
      static_cast<double>(dim.column("skey").byte_size()) +     // build codes
      static_cast<double>(dim.column("cat").byte_size()) +      // group key
      dim.column("cat").dictionary().payload_bytes() +          // emit gather
      static_cast<double>(facts.column("wide64").byte_size()) +
      static_cast<double>(dim.column("weight").byte_size());
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes, want);
  EXPECT_LT(stats.work.dram_bytes,
            want + facts.column("tag").dictionary().payload_bytes());
}

// The acceptance shape of the physical-plan refactor, end to end: a
// 3-table grouped star join with ORDER BY + LIMIT parses from SQL,
// executes through the PhysicalPlan compiler, matches the nested-loop
// oracle bit-exactly under every column encoding, and reports
// per-operator joule/DRAM attribution that sums to the query's totals.
TEST(CompressedParity, StarJoinOrderByLimitFromSqlEndToEnd) {
  Catalog cat = make_catalog(777);
  Executor ex(cat);
  const LogicalPlan plan = parse_sql(
      "SELECT COUNT(*), SUM(dim.weight), SUM(dim2.score), MAX(u32) "
      "FROM facts "
      "JOIN dim ON facts.u32 = dim.key "
      "JOIN dim2 ON facts.u32 = dim2.key2 "
      "WHERE u32 BETWEEN 0 AND 640 AND dim.weight BETWEEN -8 AND 8 "
      "GROUP BY tag ORDER BY tag DESC LIMIT 4");
  ASSERT_EQ(plan.joins.size(), 2u);

  for (const std::optional<Encoding> forced :
       {std::optional<Encoding>{}, std::optional<Encoding>{Encoding::kPlain},
        std::optional<Encoding>{Encoding::kBitPacked},
        std::optional<Encoding>{Encoding::kForBitPacked}}) {
    recode_all(cat, forced);
    const std::string label =
        forced ? storage::encoding_name(*forced) : "auto";
    const auto groups = run_join_oracle(ex, cat, plan);
    ExecStats stats;
    const QueryResult got = ex.execute(plan, stats);
    expect_matches_oracle(got, groups, plan, label);

    // Per-operator attribution covers every charge: the deltas sum to
    // the query totals exactly, so per-operator joules (linear in
    // seconds and DRAM bytes) sum to the query's attributed joules.
    ASSERT_GE(stats.operators.size(), 4u) << label;  // scans, joins, agg, sort
    hw::Work sum;
    for (const OperatorStats& op : stats.operators) sum += op.work;
    EXPECT_DOUBLE_EQ(sum.cpu_cycles, stats.work.cpu_cycles) << label;
    EXPECT_DOUBLE_EQ(sum.dram_bytes, stats.work.dram_bytes) << label;
  }
}

TEST(CompressedParity, BitPackedRejectsNegativeDomains) {
  std::vector<std::int32_t> v = {-3, 0, 5};
  Column c = Column::from_int32("n", v);
  EXPECT_THROW(c.set_encoding(Encoding::kBitPacked), Error);
  // FOR handles the same domain.
  c.set_encoding(Encoding::kForBitPacked);
  ASSERT_NE(c.encoded(), nullptr);
  EXPECT_EQ(c.encoded()->reference, -3);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(c.packed_view().value_at(i), v[i]);
}

}  // namespace
}  // namespace eidb::query
