// Differential harness for compressed column segments in the query
// pipeline: the same randomized tables are loaded under every Encoding,
// a generated matrix of filter / group-by / aggregate / join queries runs
// through the packed and plain paths, and the results must be
// BIT-IDENTICAL while the packed path's attributed DRAM bytes never
// exceed the plain path's. This is the proof obligation behind making
// `ExecOptions::use_encodings` the default.
#include <gtest/gtest.h>

#include "parity_matrix.hpp"

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/join.hpp"
#include "query/executor.hpp"
#include "query/sql.hpp"
#include "sched/thread_pool.hpp"
#include "storage/column.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

using storage::Catalog;
using storage::Column;
using storage::Encoding;
using storage::Schema;
using storage::Table;
using storage::TypeId;
using storage::Value;

// The shared fixture (catalog, matrix, expect_identical) lives in
// parity_matrix.hpp so the distributed-parity suite runs the SAME
// queries sharded-vs-single-node.
using parity::expect_identical;
using parity::kRows;
using parity::make_catalog;
using parity::query_matrix;
using parity::recode_all;

/// Runs the full matrix against one catalog: plain baseline (encodings
/// off) vs packed (encodings on), asserting bit-identical results and the
/// DRAM-byte dominance `packed <= plain` per query.
void run_matrix(Catalog& cat, const std::string& config,
                sched::ThreadPool* pool = nullptr) {
  Executor ex(cat);
  for (auto& [name, plan] : query_matrix()) {
    ExecOptions plain_opts;
    plain_opts.use_encodings = false;
    ExecOptions packed_opts;
    packed_opts.use_encodings = true;
    if (pool != nullptr) {
      // Force EVERY morsel-parallel operator — aggregation, join chain,
      // sort/top-k, projection materialization — onto the pool, so the
      // packed run exercises the parallel kernels while the plain
      // baseline stays serial. Results must still be bit-identical: the
      // parallel paths merge per-chunk partials in chunk order, never
      // completion order.
      packed_opts.pool = pool;
      packed_opts.parallel_agg_min_rows = 1;
      packed_opts.parallel_join_min_rows = 1;
      packed_opts.parallel_sort_min_rows = 1;
      packed_opts.parallel_project_min_rows = 1;
    }
    ExecStats plain_stats, packed_stats;
    const QueryResult plain = ex.execute(plan, plain_stats, plain_opts);
    const QueryResult packed = ex.execute(plan, packed_stats, packed_opts);
    const std::string label = config + "/" + name;
    expect_identical(plain, packed, label);
    EXPECT_LE(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes)
        << label;
    EXPECT_GE(packed_stats.dram_bytes_saved, 0.0) << label;
  }
}

TEST(CompressedParity, AutoEncodingMatchesPlain) {
  for (const std::uint64_t seed : {7u, 1337u, 90210u}) {
    Catalog cat = make_catalog(seed);  // set_column auto-encoded already
    run_matrix(cat, "auto/seed" + std::to_string(seed));
  }
}

TEST(CompressedParity, EveryEncodingMatchesPlain) {
  Catalog cat = make_catalog(4242);
  for (const Encoding e :
       {Encoding::kPlain, Encoding::kBitPacked, Encoding::kForBitPacked}) {
    recode_all(cat, e);
    run_matrix(cat, "forced-" + storage::encoding_name(e));
  }
  recode_all(cat, std::nullopt);  // and back to the automatic choice
  run_matrix(cat, "auto-restored");
}

TEST(CompressedParity, ParallelPackedKernelsMatchPlain) {
  Catalog cat = make_catalog(555);
  sched::ThreadPool pool(4);
  run_matrix(cat, "auto+pool", &pool);
}

TEST(CompressedParity, RandomizedThreadCountsMatchPlain) {
  // Thread-count invariance: the whole matrix, serial baseline vs a pool
  // of RANDOM width per iteration. Emitted row order and float sums must
  // not depend on how many workers split the morsels.
  Pcg32 rng(0x7EAD);
  for (const std::uint64_t seed : {99u, 24'601u}) {
    Catalog cat = make_catalog(seed);
    const std::size_t threads = 2 + rng.next_bounded(7);  // 2..8
    sched::ThreadPool pool(threads);
    run_matrix(cat, "auto+pool" + std::to_string(threads), &pool);
  }
}

TEST(CompressedParity, MaskedConjunctsPackedMatchesPlain) {
  // Deep conjunction: the 2nd..4th predicates run the masked packed
  // kernel; unordered evaluation runs full packed scans. All must agree.
  Catalog cat = make_catalog(31);
  Executor ex(cat);
  const auto plan = QueryBuilder("facts")
                        .filter_int("skew32", 0, 2)  // selective first
                        .filter_int("u32", 100, 900)
                        .filter_int("neg32", -600, 100)
                        .filter_int("wide64", 100'000, 2'900'000)
                        .group_by("tag")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "wide64")
                        .build();
  ExecOptions plain_opts;
  plain_opts.use_encodings = false;
  ExecOptions unordered_packed;
  unordered_packed.order_predicates = false;
  ExecStats s1, s2, s3;
  const QueryResult want = ex.execute(plan, s1, plain_opts);
  const QueryResult masked = ex.execute(plan, s2);
  const QueryResult unordered = ex.execute(plan, s3, unordered_packed);
  expect_identical(want, masked, "masked");
  expect_identical(want, unordered, "unordered");
  EXPECT_LE(s2.work.dram_bytes, s1.work.dram_bytes);
  EXPECT_LE(s3.work.dram_bytes, s1.work.dram_bytes);
  // Masked conjuncts touch at most the full packed scans' traffic.
  EXPECT_LE(s2.work.dram_bytes, s3.work.dram_bytes);
}

TEST(CompressedParity, ZoneMapsComposeWithPackedSegments) {
  // Clustered column: zone maps prune most blocks; the pruned packed scan
  // must agree with the pruned plain scan and charge no more.
  Catalog cat;
  Table& t = cat.add(Table(
      "clustered", Schema({{"seq", TypeId::kInt32}, {"v", TypeId::kInt64}})));
  std::vector<std::int32_t> seq;
  std::vector<std::int64_t> v;
  for (std::int32_t i = 0; i < 8'000; ++i) {
    seq.push_back(i / 2);  // sorted, two rows per value
    v.push_back(i % 97);
  }
  t.set_column(0, Column::from_int32("seq", seq));
  t.set_column(1, Column::from_int64("v", v));
  ASSERT_NE(t.column("seq").encoded(), nullptr);

  Executor ex(cat);
  const auto plan = QueryBuilder("clustered")
                        .filter_int("seq", 1'000, 1'099)
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "v")
                        .build();
  ExecOptions zm_plain;
  zm_plain.use_zone_maps = true;
  zm_plain.zone_block_rows = 256;
  zm_plain.use_encodings = false;
  ExecOptions zm_packed = zm_plain;
  zm_packed.use_encodings = true;
  ExecStats plain_stats, packed_stats;
  const QueryResult plain = ex.execute(plan, plain_stats, zm_plain);
  const QueryResult packed = ex.execute(plan, packed_stats, zm_packed);
  expect_identical(plain, packed, "zonemap");
  EXPECT_EQ(plain.at(0, 0).as_int(), 200);
  EXPECT_LE(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes);
}

TEST(CompressedParity, WidthZeroAndWidthOneColumns) {
  // All-equal (width 0) and two-valued (width 1) columns through the full
  // pipeline under forced encodings — the degenerate widths of the
  // encoder's domain computation.
  Catalog cat;
  Table& t = cat.add(Table("edge", Schema({{"zero", TypeId::kInt32},
                                           {"one", TypeId::kInt32},
                                           {"v", TypeId::kInt64}})));
  std::vector<std::int32_t> zero(300, 7), one;
  std::vector<std::int64_t> v;
  Pcg32 rng(99);
  for (std::size_t i = 0; i < 300; ++i) {
    one.push_back(static_cast<std::int32_t>(rng.next_bounded(2)));
    v.push_back(rng.next_in_range(-100, 100));
  }
  t.set_column(0, Column::from_int32("zero", zero));
  t.set_column(1, Column::from_int32("one", one));
  t.set_column(2, Column::from_int64("v", v));
  // The all-equal column packs to zero bits under FOR.
  t.recode("zero", Encoding::kForBitPacked);
  ASSERT_NE(t.column("zero").encoded(), nullptr);
  EXPECT_EQ(t.column("zero").encoded()->bits, 0u);
  EXPECT_EQ(t.column("zero").scan_byte_size(), 0u);

  Executor ex(cat);
  for (const char* key : {"zero", "one"}) {
    const auto plan = QueryBuilder("edge")
                          .group_by(key)
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "v")
                          .aggregate(AggOp::kMin, "zero")
                          .build();
    ExecOptions plain_opts;
    plain_opts.use_encodings = false;
    ExecStats plain_stats, packed_stats;
    const QueryResult plain = ex.execute(plan, plain_stats, plain_opts);
    const QueryResult packed = ex.execute(plan, packed_stats);
    expect_identical(plain, packed, key);
    EXPECT_LE(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes);
  }
}

TEST(CompressedParity, EmptyTableUnderEveryEncoding) {
  Catalog cat;
  Table& t = cat.add(Table(
      "empty", Schema({{"a", TypeId::kInt32}, {"b", TypeId::kInt64}})));
  t.set_column(0, Column::from_int32("a", {}));
  t.set_column(1, Column::from_int64("b", {}));
  // Empty columns auto-choose plain but accept forced encodings.
  EXPECT_EQ(t.column("a").encoding(), Encoding::kPlain);
  for (const Encoding e : {Encoding::kBitPacked, Encoding::kForBitPacked}) {
    t.recode("a", e);
    t.recode("b", e);
    Executor ex(cat);
    ExecStats stats;
    const auto plan = QueryBuilder("empty")
                          .filter_int("a", 0, 10)
                          .aggregate(AggOp::kCount)
                          .aggregate(AggOp::kSum, "b")
                          .build();
    const QueryResult r = ex.execute(plan, stats);
    EXPECT_EQ(r.at(0, 0).as_int(), 0);
    EXPECT_EQ(r.at(0, 1).as_int(), 0);
  }
}

TEST(CompressedParity, MixedConsumersChargeOneRepresentation) {
  // u32 is both a composite group key (plain-only synthesis) and a direct
  // aggregate input: the whole query must consume it through ONE
  // representation — the plain array — and charge exactly that once.
  Catalog cat = make_catalog(77);
  const Table& t = cat.get("facts");
  ASSERT_NE(t.column("u32").encoded(), nullptr);
  Executor ex(cat);
  const auto plan = QueryBuilder("facts")
                        .group_by("u32")
                        .group_by("tag")
                        .aggregate(AggOp::kSum, "u32")
                        .aggregate(AggOp::kCount)
                        .build();
  ExecOptions plain_opts;
  plain_opts.use_encodings = false;
  ExecStats plain_stats, packed_stats;
  const QueryResult plain = ex.execute(plan, plain_stats, plain_opts);
  const QueryResult packed = ex.execute(plan, packed_stats);
  expect_identical(plain, packed, "mixed-consumers");
  // Composite keys force u32 and tag plain for every consumer: the two
  // runs charge identical bytes (u32 once at plain width + tag once, plus
  // the tag dictionary payload the group emit gathers — the group count
  // covers the dictionary, so the cap bills one full payload read).
  EXPECT_DOUBLE_EQ(packed_stats.work.dram_bytes, plain_stats.work.dram_bytes);
  EXPECT_DOUBLE_EQ(
      packed_stats.work.dram_bytes,
      static_cast<double>(t.column("u32").byte_size() +
                          t.column("tag").byte_size() +
                          t.column("tag").dictionary().payload_bytes()));

  // Same property for an expression reference next to a packed group key:
  // wide64 appears in SUM(wide64 * wide64)-style expression input, so it
  // is read plain even though skew32 stays packed as the single key.
  const auto expr = exec::Expr::binary(exec::ExprOp::kMul,
                                       exec::Expr::column("wide64"),
                                       exec::Expr::column("wide64"));
  const auto plan2 = QueryBuilder("facts")
                         .group_by("skew32")
                         .aggregate_expr(AggOp::kSum, expr)
                         .aggregate(AggOp::kMin, "wide64")
                         .build();
  ExecStats s_plain, s_packed;
  const QueryResult r_plain = ex.execute(plan2, s_plain, plain_opts);
  const QueryResult r_packed = ex.execute(plan2, s_packed);
  expect_identical(r_plain, r_packed, "expr-mixed");
  EXPECT_DOUBLE_EQ(
      s_packed.work.dram_bytes,
      static_cast<double>(t.column("skew32").scan_byte_size() +
                          t.column("wide64").byte_size()));
}

// ---------------------------------------------------------------------------
// Join queries against a fully independent scalar nested-loop oracle:
// selections come from the public predicate API, matches from plain
// nested loops over every join in declaration order, and grouping /
// aggregation from scalar maps — none of the vectorized pipeline, no
// planner reordering. Results must be bit-identical under every encoding;
// plans with ORDER BY are additionally checked for sortedness and LIMIT
// row count (positional order on tied sort keys is the executor's
// deterministic tie-break, which the oracle does not model).
// ---------------------------------------------------------------------------

/// Scalar oracle result: one Group per composite key string.
struct OracleGroup {
  std::int64_t count = 0;
  std::vector<std::int64_t> sum, mn, mx;
};

/// Runs the nested-loop + scalar-map oracle for an aggregate join plan.
std::map<std::string, OracleGroup> run_join_oracle(Executor& ex, Catalog& cat,
                                                   const LogicalPlan& plan) {
  const Table& facts = cat.get(plan.table);
  std::vector<const Table*> sides{&facts};  // side j+1 = join j's table
  for (const JoinSpec& j : plan.joins) sides.push_back(&cat.get(j.table));

  // Column resolution mirroring the executor: bare names bind probe
  // first, then the joined tables in declaration order.
  const auto resolve =
      [&](const std::string& n) -> std::pair<std::size_t, const Column*> {
    const auto dot = n.find('.');
    if (dot != std::string::npos) {
      const std::string t = n.substr(0, dot);
      const std::string c = n.substr(dot + 1);
      for (std::size_t s = 0; s < sides.size(); ++s)
        if (sides[s]->name() == t) return {s, &sides[s]->column(c)};
      throw Error("oracle: unknown table " + t);
    }
    for (std::size_t s = 0; s < sides.size(); ++s)
      if (sides[s]->schema().has_column(n)) return {s, &sides[s]->column(n)};
    throw Error("oracle: unknown column " + n);
  };

  // Selections through the public predicate API (encodings off).
  ExecStats scratch;
  const ExecOptions oracle_opts;
  const BitVector psel =
      ex.evaluate_predicates(facts, plan.predicates, scratch, oracle_opts);
  std::vector<BitVector> bsel;
  for (std::size_t j = 0; j < plan.joins.size(); ++j)
    bsel.push_back(ex.evaluate_predicates(*sides[j + 1],
                                          plan.joins[j].predicates, scratch,
                                          oracle_opts));

  // Nested-loop match tuples, one join at a time in declaration order.
  std::vector<std::vector<std::size_t>> tuples;
  psel.for_each_set([&](std::size_t i) { tuples.push_back({i}); });
  for (std::size_t j = 0; j < plan.joins.size(); ++j) {
    const JoinSpec& spec = plan.joins[j];
    const auto [src_side, src_col] = resolve(spec.left_key);
    const Column& right = sides[j + 1]->column(spec.right_key);
    // Key equality in the VALUE domain, never dictionary codes: the two
    // sides of a string (or double) join own independent dictionaries,
    // so equal codes do not mean equal keys.
    const TypeId kt = src_col->type();
    std::vector<std::vector<std::size_t>> next;
    for (const auto& tup : tuples) {
      for (std::size_t b = 0; b < right.size(); ++b) {
        if (!bsel[j].test(b)) continue;
        bool eq;
        if (kt == TypeId::kString)
          eq = src_col->value_at(tup[src_side]).as_string() ==
               right.value_at(b).as_string();
        else if (kt == TypeId::kDouble)
          eq = src_col->value_at(tup[src_side]).as_double() ==
               right.value_at(b).as_double();
        else
          eq = src_col->int_at(tup[src_side]) == right.int_at(b);
        if (!eq) continue;
        auto extended = tup;
        extended.push_back(b);
        next.push_back(std::move(extended));
      }
    }
    tuples = std::move(next);
  }

  // Scalar accumulation (the matrix uses COUNT/SUM/MIN/MAX on integer
  // columns, so everything is exact int64 arithmetic).
  std::map<std::string, OracleGroup> groups;
  const std::size_t n_aggs = plan.aggregates.size();
  for (const auto& tup : tuples) {
    std::string key;
    for (const std::string& gname : plan.group_by) {
      const auto [s, c] = resolve(gname);
      key += c->value_at(tup[s]).to_string() + "|";
    }
    OracleGroup& g = groups[key];
    if (g.sum.empty()) {
      g.sum.assign(n_aggs, 0);
      g.mn.assign(n_aggs, std::numeric_limits<std::int64_t>::max());
      g.mx.assign(n_aggs, std::numeric_limits<std::int64_t>::min());
    }
    ++g.count;
    for (std::size_t ai = 0; ai < n_aggs; ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      if (a.op == AggOp::kCount) continue;
      EIDB_EXPECTS(a.op != AggOp::kAvg);  // oracle is integer-exact only
      const auto [s, c] = resolve(a.column);
      const std::int64_t v = c->int_at(tup[s]);
      g.sum[ai] += v;
      g.mn[ai] = std::min(g.mn[ai], v);
      g.mx[ai] = std::max(g.mx[ai], v);
    }
  }
  // A global aggregate over zero pairs still emits one zeroed row.
  if (plan.group_by.empty() && groups.empty()) {
    OracleGroup& g = groups[""];
    g.sum.assign(n_aggs, 0);
    g.mn.assign(n_aggs, 0);
    g.mx.assign(n_aggs, 0);
  }
  return groups;
}

/// Checks an executed aggregate join result against the oracle groups:
/// positional bijection without ORDER BY; membership + sortedness +
/// LIMIT-bounded row count with it.
void expect_matches_oracle(const QueryResult& got,
                           const std::map<std::string, OracleGroup>& groups,
                           const LogicalPlan& plan, const std::string& label) {
  const std::size_t want_rows =
      plan.limit != 0 ? std::min(plan.limit, groups.size()) : groups.size();
  ASSERT_EQ(got.row_count(), want_rows) << label;
  if (plan.order_by.has_value() && got.row_count() > 1) {
    const std::size_t oc = got.column_index(plan.order_by->column);
    for (std::size_t r = 0; r + 1 < got.row_count(); ++r) {
      const storage::Value& a = got.at(r, oc);
      const storage::Value& b = got.at(r + 1, oc);
      const auto leq = [](const storage::Value& x, const storage::Value& y) {
        if (x.is_string()) return x.as_string() <= y.as_string();
        if (x.is_double() || y.is_double())
          return x.as_double() <= y.as_double();
        return x.as_int() <= y.as_int();
      };
      if (plan.order_by->ascending)
        EXPECT_TRUE(leq(a, b)) << label << " row " << r;
      else
        EXPECT_TRUE(leq(b, a)) << label << " row " << r;
    }
  }
  const std::size_t n_aggs = plan.aggregates.size();
  for (std::size_t r = 0; r < got.row_count(); ++r) {
    std::string key;
    for (std::size_t gc = 0; gc < plan.group_by.size(); ++gc)
      key += got.at(r, gc).to_string() + "|";
    const auto it = groups.find(key);
    ASSERT_TRUE(it != groups.end()) << label << " key " << key;
    const OracleGroup& g = it->second;
    for (std::size_t ai = 0; ai < n_aggs; ++ai) {
      const std::size_t col = plan.group_by.size() + ai;
      const std::int64_t got_v = got.at(r, col).as_int();
      switch (plan.aggregates[ai].op) {
        case AggOp::kCount:
          EXPECT_EQ(got_v, g.count) << label << " key " << key;
          break;
        case AggOp::kSum:
          EXPECT_EQ(got_v, g.sum[ai]) << label << " key " << key;
          break;
        case AggOp::kMin:
          EXPECT_EQ(got_v, g.count ? g.mn[ai] : 0) << label;
          break;
        case AggOp::kMax:
          EXPECT_EQ(got_v, g.count ? g.mx[ai] : 0) << label;
          break;
        case AggOp::kAvg:
          break;
      }
    }
  }
}

TEST(CompressedParity, JoinMatrixMatchesNestedLoopOracle) {
  Catalog cat = make_catalog(2026);
  Executor ex(cat);

  for (const std::optional<Encoding> forced :
       {std::optional<Encoding>{}, std::optional<Encoding>{Encoding::kPlain},
        std::optional<Encoding>{Encoding::kBitPacked},
        std::optional<Encoding>{Encoding::kForBitPacked}}) {
    recode_all(cat, forced);
    for (auto& [name, plan] : query_matrix()) {
      if (!plan.has_join() || !plan.is_aggregate()) continue;
      const std::string label =
          (forced ? storage::encoding_name(*forced) : "auto") + "/" + name;
      const auto groups = run_join_oracle(ex, cat, plan);
      ExecStats stats;
      const QueryResult got = ex.execute(plan, stats);
      expect_matches_oracle(got, groups, plan, label);
    }
  }
}

// Code-domain execution acceptance for string-keyed joins: a grouped
// string join charges EXACTLY the int32 code arrays of both key columns
// plus the consumed aggregate / group-key columns (and the group key's
// dictionary payload at emit). The join keys' string payloads never
// appear in the DRAM ledger — no per-row string compares, no full-string
// materialization before projection.
TEST(CompressedParity, StringJoinChargesCodeDomainBytesExactly) {
  Catalog cat = make_catalog(606);
  Executor ex(cat);
  const Table& facts = cat.get("facts");
  const Table& dim = cat.get("dim");
  const auto plan = QueryBuilder("facts")
                        .filter_int("u32", 500, 560)
                        .join("dim", "tag", "skey")
                        .group_by("dim.cat")
                        .aggregate(AggOp::kCount)
                        .aggregate(AggOp::kSum, "wide64")
                        .aggregate(AggOp::kSum, "dim.weight")
                        .build();
  ExecOptions opts;
  opts.use_encodings = false;  // plain widths -> one exact byte formula
  ExecStats stats;
  const QueryResult got = ex.execute(plan, stats, opts);
  ASSERT_EQ(got.row_count(), 3u);  // red / green / blue all reached

  // String columns store int32 codes, so byte_size() IS the code-array
  // size: the formula below contains the key dictionaries' payloads
  // exactly zero times.
  const double want =
      static_cast<double>(facts.column("u32").byte_size()) +    // filter
      static_cast<double>(facts.column("tag").byte_size()) +    // probe codes
      static_cast<double>(dim.column("skey").byte_size()) +     // build codes
      static_cast<double>(dim.column("cat").byte_size()) +      // group key
      dim.column("cat").dictionary().payload_bytes() +          // emit gather
      static_cast<double>(facts.column("wide64").byte_size()) +
      static_cast<double>(dim.column("weight").byte_size());
  EXPECT_DOUBLE_EQ(stats.work.dram_bytes, want);
  EXPECT_LT(stats.work.dram_bytes,
            want + facts.column("tag").dictionary().payload_bytes());
}

// The acceptance shape of the physical-plan refactor, end to end: a
// 3-table grouped star join with ORDER BY + LIMIT parses from SQL,
// executes through the PhysicalPlan compiler, matches the nested-loop
// oracle bit-exactly under every column encoding, and reports
// per-operator joule/DRAM attribution that sums to the query's totals.
TEST(CompressedParity, StarJoinOrderByLimitFromSqlEndToEnd) {
  Catalog cat = make_catalog(777);
  Executor ex(cat);
  const LogicalPlan plan = parse_sql(
      "SELECT COUNT(*), SUM(dim.weight), SUM(dim2.score), MAX(u32) "
      "FROM facts "
      "JOIN dim ON facts.u32 = dim.key "
      "JOIN dim2 ON facts.u32 = dim2.key2 "
      "WHERE u32 BETWEEN 0 AND 640 AND dim.weight BETWEEN -8 AND 8 "
      "GROUP BY tag ORDER BY tag DESC LIMIT 4");
  ASSERT_EQ(plan.joins.size(), 2u);

  for (const std::optional<Encoding> forced :
       {std::optional<Encoding>{}, std::optional<Encoding>{Encoding::kPlain},
        std::optional<Encoding>{Encoding::kBitPacked},
        std::optional<Encoding>{Encoding::kForBitPacked}}) {
    recode_all(cat, forced);
    const std::string label =
        forced ? storage::encoding_name(*forced) : "auto";
    const auto groups = run_join_oracle(ex, cat, plan);
    ExecStats stats;
    const QueryResult got = ex.execute(plan, stats);
    expect_matches_oracle(got, groups, plan, label);

    // Per-operator attribution covers every charge: the deltas sum to
    // the query totals exactly, so per-operator joules (linear in
    // seconds and DRAM bytes) sum to the query's attributed joules.
    ASSERT_GE(stats.operators.size(), 4u) << label;  // scans, joins, agg, sort
    hw::Work sum;
    for (const OperatorStats& op : stats.operators) sum += op.work;
    EXPECT_DOUBLE_EQ(sum.cpu_cycles, stats.work.cpu_cycles) << label;
    EXPECT_DOUBLE_EQ(sum.dram_bytes, stats.work.dram_bytes) << label;
  }
}

TEST(CompressedParity, BitPackedRejectsNegativeDomains) {
  std::vector<std::int32_t> v = {-3, 0, 5};
  Column c = Column::from_int32("n", v);
  EXPECT_THROW(c.set_encoding(Encoding::kBitPacked), Error);
  // FOR handles the same domain.
  c.set_encoding(Encoding::kForBitPacked);
  ASSERT_NE(c.encoded(), nullptr);
  EXPECT_EQ(c.encoded()->reference, -3);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(c.packed_view().value_at(i), v[i]);
}

}  // namespace
}  // namespace eidb::query
