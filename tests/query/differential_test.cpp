// Differential (oracle) testing: random plans run through the vectorized
// executor AND a deliberately naive row-at-a-time interpreter; results must
// match exactly. This is the strongest correctness net over the whole
// query path (predicates, dictionary binding, grouping, aggregation,
// ordering, limits).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <vector>

#include "query/executor.hpp"
#include "util/rng.hpp"

namespace eidb::query {
namespace {

using storage::Catalog;
using storage::Column;
using storage::Schema;
using storage::Table;
using storage::TypeId;
using storage::Value;

struct TestData {
  Catalog catalog;
  std::vector<std::int64_t> k;
  std::vector<std::int64_t> v;
  std::vector<double> d;
  std::vector<std::string> s;
};

TestData make_data(std::uint64_t seed, std::size_t rows) {
  TestData data;
  Pcg32 rng(seed);
  const char* tags[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (std::size_t i = 0; i < rows; ++i) {
    data.k.push_back(rng.next_in_range(-50, 50));
    data.v.push_back(rng.next_in_range(-1000, 1000));
    data.d.push_back(rng.next_double() * 10 - 5);
    data.s.emplace_back(tags[rng.next_bounded(5)]);
  }
  Table& t = data.catalog.add(Table("t", Schema({{"k", TypeId::kInt64},
                                                 {"v", TypeId::kInt64},
                                                 {"d", TypeId::kDouble},
                                                 {"s", TypeId::kString}})));
  t.set_column(0, Column::from_int64("k", data.k));
  t.set_column(1, Column::from_int64("v", data.v));
  t.set_column(2, Column::from_double("d", data.d));
  t.set_column(3, Column::from_strings("s", data.s));
  return data;
}

/// Naive row-at-a-time reference interpreter for the plan subset the
/// differential test generates (filters on k/d/s, optional group by s or
/// (s,k), aggregates over v/d).
class NaiveInterpreter {
 public:
  explicit NaiveInterpreter(const TestData& data) : data_(data) {}

  [[nodiscard]] std::vector<std::vector<Value>> run(const LogicalPlan& plan) {
    // Filter.
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < data_.k.size(); ++i)
      if (matches(plan, i)) rows.push_back(i);

    if (!plan.is_aggregate()) {
      // Projection path is covered elsewhere; not generated here.
      return {};
    }

    if (plan.group_by.empty()) {
      std::vector<Value> row;
      for (const AggSpec& a : plan.aggregates) row.push_back(agg(a, rows));
      return {row};
    }

    // Grouping by string (and optionally k).
    std::map<std::vector<std::string>, std::vector<std::size_t>> groups;
    for (const std::size_t i : rows) {
      std::vector<std::string> key;
      for (const std::string& col : plan.group_by) {
        if (col == "s") {
          key.push_back(data_.s[i]);
        } else {
          // Zero-padded offset encoding so string order == numeric order.
          char buf[32];
          std::snprintf(buf, sizeof buf, "%06lld",
                        static_cast<long long>(data_.k[i] + 1000));
          key.emplace_back(buf);
        }
      }
      groups[key].push_back(i);
    }
    std::vector<std::vector<Value>> out;
    for (const auto& [key, members] : groups) {
      std::vector<Value> row;
      for (std::size_t c = 0; c < plan.group_by.size(); ++c) {
        if (plan.group_by[c] == "s")
          row.emplace_back(key[c]);
        else
          row.emplace_back(
              static_cast<std::int64_t>(std::stoll(key[c])) - 1000);
      }
      for (const AggSpec& a : plan.aggregates) row.push_back(agg(a, members));
      out.push_back(std::move(row));
    }
    return out;
  }

 private:
  [[nodiscard]] bool matches(const LogicalPlan& plan, std::size_t i) const {
    for (const Predicate& p : plan.predicates) {
      if (p.column == "k") {
        if (data_.k[i] < p.lo.as_int() || data_.k[i] > p.hi.as_int())
          return false;
      } else if (p.column == "d") {
        if (data_.d[i] < p.lo.as_double() || data_.d[i] > p.hi.as_double())
          return false;
      } else {  // s
        if (data_.s[i] < p.lo.as_string() || data_.s[i] > p.hi.as_string())
          return false;
      }
    }
    return true;
  }

  [[nodiscard]] Value agg(const AggSpec& a,
                          const std::vector<std::size_t>& rows) const {
    if (a.op == AggOp::kCount)
      return Value{static_cast<std::int64_t>(rows.size())};
    if (a.column == "d") {
      double sum = 0, mn = 0, mx = 0;
      bool first = true;
      for (const std::size_t i : rows) {
        const double x = data_.d[i];
        sum += x;
        if (first || x < mn) mn = x;
        if (first || x > mx) mx = x;
        first = false;
      }
      switch (a.op) {
        case AggOp::kSum:
          return Value{sum};
        case AggOp::kMin:
          return Value{mn};
        case AggOp::kMax:
          return Value{mx};
        case AggOp::kAvg:
          return Value{rows.empty() ? 0.0
                                    : sum / static_cast<double>(rows.size())};
        default:
          break;
      }
    }
    std::int64_t sum = 0, mn = 0, mx = 0;
    bool first = true;
    for (const std::size_t i : rows) {
      const std::int64_t x = data_.v[i];
      sum += x;
      if (first || x < mn) mn = x;
      if (first || x > mx) mx = x;
      first = false;
    }
    switch (a.op) {
      case AggOp::kSum:
        return Value{sum};
      case AggOp::kMin:
        return Value{mn};
      case AggOp::kMax:
        return Value{mx};
      case AggOp::kAvg:
        return Value{rows.empty()
                         ? 0.0
                         : static_cast<double>(sum) /
                               static_cast<double>(rows.size())};
      default:
        break;
    }
    return {};
  }

  const TestData& data_;
};

LogicalPlan random_plan(Pcg32& rng) {
  QueryBuilder qb("t");
  // 0-2 predicates.
  const int preds = static_cast<int>(rng.next_bounded(3));
  for (int p = 0; p < preds; ++p) {
    switch (rng.next_bounded(3)) {
      case 0: {
        const std::int64_t a = rng.next_in_range(-60, 60);
        const std::int64_t b = rng.next_in_range(-60, 60);
        qb.filter_int("k", std::min(a, b), std::max(a, b));
        break;
      }
      case 1: {
        const double a = rng.next_double() * 12 - 6;
        const double b = rng.next_double() * 12 - 6;
        qb.filter_double("d", std::min(a, b), std::max(a, b));
        break;
      }
      default: {
        const char* bounds[] = {"a", "b", "c", "d", "e", "f", "g"};
        const auto lo = rng.next_bounded(6);
        const auto hi = lo + rng.next_bounded(static_cast<std::uint32_t>(7 - lo));
        qb.filter_string("s", bounds[lo], bounds[hi]);
        break;
      }
    }
  }
  // Grouping: none / s / (s, k).
  const auto g = rng.next_bounded(3);
  if (g >= 1) qb.group_by("s");
  if (g == 2) qb.group_by("k");
  // 1-3 aggregates.
  const int aggs = 1 + static_cast<int>(rng.next_bounded(3));
  for (int a = 0; a < aggs; ++a) {
    const AggOp op = static_cast<AggOp>(rng.next_bounded(5));
    if (op == AggOp::kCount)
      qb.aggregate(AggOp::kCount);
    else
      qb.aggregate(op, rng.next_bounded(2) ? "v" : "d");
  }
  return qb.build();
}

void expect_value_eq(const Value& got, const Value& want,
                     const std::string& context) {
  if (want.is_double() || got.is_double()) {
    const double w = want.as_double();
    const double g = got.as_double();
    EXPECT_NEAR(g, w, std::max(1e-9, std::abs(w) * 1e-9)) << context;
  } else if (want.is_string()) {
    EXPECT_EQ(got.as_string(), want.as_string()) << context;
  } else {
    EXPECT_EQ(got.as_int(), want.as_int()) << context;
  }
}

TEST(Differential, RandomAggregatePlansMatchNaiveInterpreter) {
  const TestData data = make_data(99, 3000);
  Executor executor(data.catalog);
  NaiveInterpreter naive(data);
  Pcg32 rng(123);

  int nontrivial = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const LogicalPlan plan = random_plan(rng);
    ExecStats stats;
    const QueryResult got = executor.execute(plan, stats);
    const auto want = naive.run(plan);
    ASSERT_EQ(got.row_count(), want.size())
        << "trial " << trial << ": " << plan.to_string();
    if (!want.empty() && want.size() > 1) ++nontrivial;
    for (std::size_t r = 0; r < want.size(); ++r) {
      ASSERT_EQ(got.row(r).size(), want[r].size());
      for (std::size_t c = 0; c < want[r].size(); ++c)
        expect_value_eq(got.at(r, c), want[r][c],
                        "trial " + std::to_string(trial) + " row " +
                            std::to_string(r) + " col " + std::to_string(c) +
                            ": " + plan.to_string());
    }
  }
  EXPECT_GT(nontrivial, 20);  // the generator actually exercises grouping
}

// The engine's group ordering (composite key ascending) must agree with the
// naive map ordering used above for (s) and (s, k) groupings — this test
// pins that contract so the differential comparison is row-by-row.
TEST(Differential, GroupOrderingContract) {
  const TestData data = make_data(7, 500);
  Executor executor(data.catalog);
  ExecStats stats;
  const auto plan = QueryBuilder("t")
                        .group_by("s")
                        .group_by("k")
                        .aggregate(AggOp::kCount)
                        .build();
  const QueryResult r = executor.execute(plan, stats);
  for (std::size_t g = 1; g < r.row_count(); ++g) {
    const auto& prev_s = r.at(g - 1, 0).as_string();
    const auto& cur_s = r.at(g, 0).as_string();
    EXPECT_LE(prev_s, cur_s);
    if (prev_s == cur_s) {
      EXPECT_LT(r.at(g - 1, 1).as_int(), r.at(g, 1).as_int());
    }
  }
}

}  // namespace
}  // namespace eidb::query
