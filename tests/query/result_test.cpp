#include "query/result.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace eidb::query {
namespace {

using storage::Value;

TEST(QueryResult, RowsAndAccess) {
  QueryResult r({"name", "total"});
  r.add_row({Value{std::string("eu")}, Value{std::int64_t{100}}});
  r.add_row({Value{std::string("us")}, Value{std::int64_t{200}}});
  EXPECT_EQ(r.row_count(), 2u);
  EXPECT_EQ(r.column_count(), 2u);
  EXPECT_EQ(r.at(0, 0).as_string(), "eu");
  EXPECT_EQ(r.at(1, 1).as_int(), 200);
  EXPECT_EQ(r.column_index("total"), 1u);
  EXPECT_THROW((void)r.column_index("nope"), Error);
}

TEST(QueryResult, RejectsWrongArity) {
  QueryResult r({"a", "b"});
  EXPECT_DEATH(r.add_row({Value{std::int64_t{1}}}), "precondition");
}

TEST(QueryResult, ToStringTruncates) {
  QueryResult r({"x"});
  for (int i = 0; i < 30; ++i) r.add_row({Value{std::int64_t{i}}});
  const std::string s = r.to_string(5);
  EXPECT_NE(s.find("25 more rows"), std::string::npos);
}

TEST(QueryResult, EmptyPrints) {
  QueryResult r;
  EXPECT_FALSE(r.to_string().empty());
}

TEST(ExecStats, DefaultsZero) {
  ExecStats s;
  EXPECT_EQ(s.tuples_scanned, 0u);
  EXPECT_EQ(s.work.cpu_cycles, 0.0);
  EXPECT_EQ(s.elapsed_s, 0.0);
}

}  // namespace
}  // namespace eidb::query
