#include "hw/machine.hpp"

#include <gtest/gtest.h>

namespace eidb::hw {
namespace {

TEST(Machine, ExecTimeComputeBound) {
  const MachineSpec m = MachineSpec::server();
  const DvfsState& top = m.dvfs.fastest();
  // Pure compute: 2.9e9 cycles at 2.9 GHz -> 1 second.
  const Work w{2.9e9, 0};
  EXPECT_NEAR(m.exec_time_s(w, top), 1.0, 1e-9);
}

TEST(Machine, ExecTimeMemoryBound) {
  const MachineSpec m = MachineSpec::server();
  const DvfsState& top = m.dvfs.fastest();
  // Few cycles, many bytes: 51.2 GB at 51.2 GB/s -> 1 second.
  const Work w{1e6, 51.2e9};
  EXPECT_NEAR(m.exec_time_s(w, top), 1.0, 1e-6);
}

TEST(Machine, MemShareScalesBandwidth) {
  const MachineSpec m = MachineSpec::server();
  const DvfsState& top = m.dvfs.fastest();
  const Work w{0, 1e9};
  EXPECT_NEAR(m.exec_time_s(w, top, 0.5), 2 * m.exec_time_s(w, top, 1.0),
              1e-12);
}

TEST(Machine, SlowerStateLongerComputeTime) {
  const MachineSpec m = MachineSpec::server();
  const Work w{1e9, 0};
  EXPECT_GT(m.exec_time_s(w, m.dvfs.slowest()),
            m.exec_time_s(w, m.dvfs.fastest()));
}

TEST(Machine, PackagePowerMonotoneInActiveCores) {
  const MachineSpec m = MachineSpec::server();
  const DvfsState& top = m.dvfs.fastest();
  double prev = m.package_power_w(top, 0);
  for (int a = 1; a <= m.cores; ++a) {
    const double p = m.package_power_w(top, a);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Machine, IdleToPeakRatioMatchesEraHardware) {
  // Tsirogiannis et al. [12]: idle draws a large fraction of peak (~45%
  // system-level; package-level somewhat lower). Assert the model is in a
  // credible 25–55% band.
  const MachineSpec m = MachineSpec::server();
  const double idle = m.idle_power_w();
  const double peak = m.package_power_w(m.dvfs.fastest(), m.cores);
  EXPECT_GT(idle / peak, 0.25);
  EXPECT_LT(idle / peak, 0.55);
}

TEST(Machine, SleepBelowIdleBelowPeak) {
  for (const MachineSpec& m : {MachineSpec::server(), MachineSpec::laptop()}) {
    EXPECT_LT(m.sleep_power_w(), m.idle_power_w());
    EXPECT_LT(m.idle_power_w(), m.package_power_w(m.dvfs.fastest(), m.cores));
  }
}

TEST(Machine, EnergySplitsAcrossCores) {
  const MachineSpec m = MachineSpec::server();
  const DvfsState& top = m.dvfs.fastest();
  const Work w{8e9, 0};
  // Perfect scaling: 8 cores finish in 1/8 time but at higher power; energy
  // should not be 8x — it should be lower than serial because uncore/static
  // time shrinks.
  const double e1 = m.energy_j(w, top, 1);
  const double e8 = m.energy_j(w, top, 8);
  EXPECT_LT(e8, e1);
}

TEST(Machine, DramDynamicEnergyCharged) {
  const MachineSpec m = MachineSpec::server();
  const DvfsState& top = m.dvfs.fastest();
  const Work compute_only{1e9, 0};
  const Work with_dram{1e9, 1e9};
  EXPECT_GT(m.energy_j(with_dram, top, 1), m.energy_j(compute_only, top, 1));
}

TEST(Machine, CstatesOrderedByDepth) {
  const MachineSpec m = MachineSpec::server();
  for (std::size_t i = 1; i < m.cstates.size(); ++i) {
    EXPECT_LT(m.cstates[i].power_w, m.cstates[i - 1].power_w);
    EXPECT_GT(m.cstates[i].wake_latency_s, m.cstates[i - 1].wake_latency_s);
  }
}

TEST(Machine, WorkArithmetic) {
  Work a{100, 200};
  const Work b{1, 2};
  a += b;
  EXPECT_DOUBLE_EQ(a.cpu_cycles, 101);
  EXPECT_DOUBLE_EQ(a.dram_bytes, 202);
  const Work c = a + b;
  EXPECT_DOUBLE_EQ(c.cpu_cycles, 102);
  const Work d = b * 3.0;
  EXPECT_DOUBLE_EQ(d.dram_bytes, 6);
}

}  // namespace
}  // namespace eidb::hw
