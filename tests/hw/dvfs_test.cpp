#include "hw/dvfs.hpp"

#include <gtest/gtest.h>

namespace eidb::hw {
namespace {

TEST(DvfsTable, MakeCmosSpansRange) {
  const DvfsTable t = DvfsTable::make_cmos(5, 1.0, 3.0, 0.8, 1.1, 10.0, 1.0);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t.slowest().freq_ghz, 1.0);
  EXPECT_DOUBLE_EQ(t.fastest().freq_ghz, 3.0);
  EXPECT_DOUBLE_EQ(t.slowest().voltage_v, 0.8);
  EXPECT_DOUBLE_EQ(t.fastest().voltage_v, 1.1);
}

TEST(DvfsTable, TopStateHitsTargetPower) {
  const DvfsTable t = DvfsTable::make_cmos(4, 1.2, 2.9, 0.85, 1.1, 11.5, 1.5);
  EXPECT_NEAR(t.fastest().active_power_w, 11.5, 1e-9);
}

TEST(DvfsTable, PowerIncreasesWithFrequency) {
  const DvfsTable t = DvfsTable::make_cmos(8, 1.2, 2.9, 0.85, 1.1, 11.5, 1.5);
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_GT(t[i].active_power_w, t[i - 1].active_power_w);
}

TEST(DvfsTable, PowerSuperlinearInFrequency) {
  // Energy-per-cycle must fall at lower states (the reason pacing can win):
  // P/f strictly increasing with f.
  const DvfsTable t = DvfsTable::make_cmos(8, 1.2, 2.9, 0.85, 1.1, 11.5, 0.5);
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double epc_lo = t[i - 1].active_power_w / t[i - 1].freq_ghz;
    const double epc_hi = t[i].active_power_w / t[i].freq_ghz;
    EXPECT_GT(epc_hi, epc_lo);
  }
}

TEST(DvfsTable, AtLeastPicksSlowestSufficientState) {
  const DvfsTable t = DvfsTable::make_cmos(4, 1.0, 2.5, 0.8, 1.1, 10, 1);
  EXPECT_DOUBLE_EQ(t.at_least(0.5).freq_ghz, 1.0);
  EXPECT_DOUBLE_EQ(t.at_least(1.0).freq_ghz, 1.0);
  EXPECT_DOUBLE_EQ(t.at_least(1.1).freq_ghz, 1.5);
  EXPECT_DOUBLE_EQ(t.at_least(99.0).freq_ghz, 2.5);  // clamps to fastest
}

TEST(DvfsTable, LeakageIsFloor) {
  const DvfsTable t = DvfsTable::make_cmos(4, 1.0, 2.5, 0.8, 1.1, 10, 2.0);
  for (const DvfsState& s : t.states()) EXPECT_GT(s.active_power_w, 2.0);
}

}  // namespace
}  // namespace eidb::hw
