#include "hw/sync_sim.hpp"

#include <gtest/gtest.h>

namespace eidb::hw {
namespace {

MachineSpec machine() { return MachineSpec::server(); }

TEST(SyncSim, PerfectScalingWithoutCriticalSection) {
  const SyncWorkload wl{/*tasks=*/64, /*parallel_s=*/0.01, /*critical_s=*/0,
                        /*final_serial_s=*/0};
  const MachineSpec m = machine();
  const SyncResult r1 = simulate_sync(wl, 1, m, m.dvfs.fastest());
  const SyncResult r8 = simulate_sync(wl, 8, m, m.dvfs.fastest());
  EXPECT_NEAR(r1.makespan_s, 0.64, 1e-9);
  EXPECT_NEAR(r8.makespan_s, 0.08, 1e-9);
  EXPECT_NEAR(r8.speedup, 8.0, 1e-9);
  EXPECT_EQ(r8.spin_s, 0.0);
}

TEST(SyncSim, CriticalSectionCapsSpeedup) {
  // 10% of each task is serial: speedup must saturate near 1/0.1 = 10
  // regardless of core count (Amdahl via the lock).
  const SyncWorkload wl{256, 0.009, 0.001, 0};
  const MachineSpec m = machine();
  const SyncResult r64 = simulate_sync(wl, 64, m, m.dvfs.fastest());
  EXPECT_LT(r64.speedup, 10.5);
  EXPECT_GT(r64.speedup, 6.0);
}

TEST(SyncSim, SpeedupMonotoneThenSaturating) {
  const SyncWorkload wl{128, 0.008, 0.002, 0};
  const MachineSpec m = machine();
  double prev = 0;
  for (int cores : {1, 2, 4, 8, 16}) {
    const SyncResult r = simulate_sync(wl, cores, m, m.dvfs.fastest());
    EXPECT_GE(r.speedup + 1e-9, prev);
    prev = r.speedup;
  }
  // Serial fraction 20%: cap at 5x.
  EXPECT_LT(prev, 5.0 + 1e-6);
}

TEST(SyncSim, SingleCoreSpeedupIsOne) {
  const SyncWorkload wl{32, 0.001, 0.0005, 0.01};
  const MachineSpec m = machine();
  const SyncResult r = simulate_sync(wl, 1, m, m.dvfs.fastest());
  EXPECT_NEAR(r.speedup, 1.0, 1e-9);
  EXPECT_EQ(r.spin_s, 0.0);  // no contention on one core
}

TEST(SyncSim, FinalSerialTailAddsToMakespan) {
  const SyncWorkload base{64, 0.001, 0, 0};
  SyncWorkload with_tail = base;
  with_tail.final_serial_s = 0.5;
  const MachineSpec m = machine();
  const SyncResult a = simulate_sync(base, 8, m, m.dvfs.fastest());
  const SyncResult b = simulate_sync(with_tail, 8, m, m.dvfs.fastest());
  EXPECT_NEAR(b.makespan_s - a.makespan_s, 0.5, 1e-9);
}

TEST(SyncSim, ContentionProducesSpin) {
  // Critical section dominates: most of the time cores spin.
  const SyncWorkload wl{64, 0.0001, 0.001, 0};
  const MachineSpec m = machine();
  const SyncResult r = simulate_sync(wl, 8, m, m.dvfs.fastest());
  EXPECT_GT(r.spin_s, 0.0);
}

TEST(SyncSim, EnergyGrowsWithSpin) {
  // Same total useful work, more contention -> more energy (spin burns).
  const MachineSpec m = machine();
  const SyncWorkload smooth{64, 0.00095, 0.00005, 0};
  const SyncWorkload contended{64, 0.0001, 0.0009, 0};
  const SyncResult a = simulate_sync(smooth, 8, m, m.dvfs.fastest());
  const SyncResult b = simulate_sync(contended, 8, m, m.dvfs.fastest());
  EXPECT_GT(b.energy_j, a.energy_j);
}

TEST(SyncSim, ZeroTasks) {
  const SyncWorkload wl{0, 0.001, 0.001, 0};
  const MachineSpec m = machine();
  const SyncResult r = simulate_sync(wl, 4, m, m.dvfs.fastest());
  EXPECT_EQ(r.makespan_s, 0.0);
  EXPECT_EQ(r.busy_s, 0.0);
}

// Property sweep: busy time conservation — busy_s equals tasks*(p+c)+tail
// for any core count.
class SyncSimSweep : public ::testing::TestWithParam<int> {};

TEST_P(SyncSimSweep, BusyTimeConserved) {
  const int cores = GetParam();
  const SyncWorkload wl{100, 0.002, 0.0007, 0.01};
  const MachineSpec m = machine();
  const SyncResult r = simulate_sync(wl, cores, m, m.dvfs.fastest());
  EXPECT_NEAR(r.busy_s, 100 * (0.002 + 0.0007) + 0.01, 1e-9);
  // Makespan bounded below by serial fraction and above by serial execution.
  EXPECT_GE(r.makespan_s, 100 * 0.0007 / cores);
  EXPECT_LE(r.makespan_s, 100 * 0.0027 + 0.01 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cores, SyncSimSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace eidb::hw
