#include "hw/interconnect.hpp"

#include <gtest/gtest.h>

namespace eidb::hw {
namespace {

TEST(Link, TransferTimeIsLatencyPlusBandwidth) {
  const LinkSpec l{"test", 1.0, 10.0, 1e-3, 0.0};  // 1 GB/s, 1 ms latency
  EXPECT_NEAR(l.transfer_time_s(1e9), 1e-3 + 1.0, 1e-9);
  EXPECT_NEAR(l.transfer_time_s(0), 1e-3, 1e-12);
}

TEST(Link, TransferEnergyLinearInBytes) {
  const LinkSpec l{"test", 1.0, 10.0, 0, 0};
  EXPECT_NEAR(l.transfer_energy_j(1e9), 10.0, 1e-9);
  EXPECT_NEAR(l.transfer_energy_j(2e9), 20.0, 1e-9);
}

TEST(Link, PresetsOrderedByBandwidth) {
  EXPECT_GT(LinkSpec::qpi().bandwidth_gbs, LinkSpec::tengbe().bandwidth_gbs);
  EXPECT_GT(LinkSpec::tengbe().bandwidth_gbs, LinkSpec::gbe().bandwidth_gbs);
  EXPECT_GT(LinkSpec::haec_optical().bandwidth_gbs,
            LinkSpec::tengbe().bandwidth_gbs);
}

TEST(Link, SlowLinksCostMoreEnergyPerByte) {
  // The crossover logic in E2 rests on this ordering.
  EXPECT_GT(LinkSpec::gbe().energy_nj_per_byte,
            LinkSpec::tengbe().energy_nj_per_byte);
  EXPECT_GT(LinkSpec::tengbe().energy_nj_per_byte,
            LinkSpec::qpi().energy_nj_per_byte);
}

TEST(Link, GbeTransferDominatedByBandwidth) {
  const LinkSpec gbe = LinkSpec::gbe();
  // 100 MB over 1GbE: ~0.8 s — latency negligible.
  const double t = gbe.transfer_time_s(100e6);
  EXPECT_GT(t, 0.7);
  EXPECT_LT(t, 0.9);
}

}  // namespace
}  // namespace eidb::hw
