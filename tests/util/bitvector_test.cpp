#include "util/bitvector.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace eidb {
namespace {

TEST(BitVector, StartsCleared) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVector, SetResetTest) {
  BitVector v(100);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(99));
  EXPECT_EQ(v.count(), 4u);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count(), 3u);
  v.assign(1, true);
  v.assign(0, false);
  EXPECT_TRUE(v.test(1));
  EXPECT_FALSE(v.test(0));
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector v(70);
  v.set_all();
  EXPECT_EQ(v.count(), 70u);
  v.clear_all();
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, FlipAllKeepsTailClear) {
  BitVector v(65);
  v.set(2);
  v.flip_all();
  EXPECT_EQ(v.count(), 64u);
  EXPECT_FALSE(v.test(2));
  EXPECT_TRUE(v.test(64));
}

TEST(BitVector, LogicalOps) {
  BitVector a(128), b(128);
  for (std::size_t i = 0; i < 128; i += 2) a.set(i);
  for (std::size_t i = 0; i < 128; i += 3) b.set(i);
  BitVector both = a;
  both &= b;
  for (std::size_t i = 0; i < 128; ++i)
    EXPECT_EQ(both.test(i), i % 6 == 0) << i;
  BitVector either = a;
  either |= b;
  for (std::size_t i = 0; i < 128; ++i)
    EXPECT_EQ(either.test(i), i % 2 == 0 || i % 3 == 0) << i;
  BitVector diff = a;
  diff.and_not(b);
  for (std::size_t i = 0; i < 128; ++i)
    EXPECT_EQ(diff.test(i), i % 2 == 0 && i % 3 != 0) << i;
}

TEST(BitVector, ForEachSetVisitsInOrder) {
  BitVector v(200);
  std::vector<std::size_t> want = {0, 1, 63, 64, 65, 127, 128, 199};
  for (auto i : want) v.set(i);
  std::vector<std::size_t> got;
  v.for_each_set([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitVector, ToIndicesMatchesForEach) {
  Pcg32 rng(7);
  BitVector v(1000);
  for (int i = 0; i < 300; ++i) v.set(rng.next_bounded(1000));
  auto idx = v.to_indices();
  EXPECT_EQ(idx.size(), v.count());
  std::size_t k = 0;
  v.for_each_set([&](std::size_t i) {
    ASSERT_LT(k, idx.size());
    EXPECT_EQ(idx[k++], i);
  });
}

TEST(BitVector, ResizeGrowsCleared) {
  BitVector v(10);
  v.set_all();
  v.resize(100);
  EXPECT_EQ(v.count(), 10u);
  EXPECT_FALSE(v.test(50));
}

TEST(BitVector, ResizeShrinkMasksTail) {
  BitVector v(100);
  v.set_all();
  v.resize(65);
  EXPECT_EQ(v.count(), 65u);
}

TEST(BitVector, EqualityComparesSizeAndBits) {
  BitVector a(64), b(64), c(65);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  b.set(4);
  EXPECT_FALSE(a == b);
}

// Property sweep: count() equals a naive per-bit count on random bitmaps of
// many sizes, including word-boundary sizes.
class BitVectorCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorCountSweep, CountMatchesNaive) {
  const std::size_t n = GetParam();
  Pcg32 rng(n * 7919 + 3);
  BitVector v(n);
  std::size_t naive = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < 0.37) {
      v.set(i);
      ++naive;
    }
  }
  EXPECT_EQ(v.count(), naive);
  std::size_t visited = 0;
  v.for_each_set([&](std::size_t) { ++visited; });
  EXPECT_EQ(visited, naive);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorCountSweep,
                         ::testing::Values(0, 1, 63, 64, 65, 127, 128, 129,
                                           1000, 4096, 10000));

}  // namespace
}  // namespace eidb
