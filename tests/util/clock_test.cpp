#include "util/clock.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace eidb {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = sw.elapsed_seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // generous ceiling for loaded CI
  EXPECT_GE(sw.elapsed_nanos(), 15'000'000u);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sw.restart();
  EXPECT_LT(sw.elapsed_seconds(), 0.015);
}

TEST(Stopwatch, Monotone) {
  Stopwatch sw;
  double prev = 0;
  for (int i = 0; i < 100; ++i) {
    const double cur = sw.elapsed_seconds();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock;
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(VirtualClock, NegativeAdvanceIgnored) {
  VirtualClock clock;
  clock.advance(1.0);
  clock.advance(-5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(VirtualClock, AdvanceToOnlyMovesForward) {
  VirtualClock clock;
  clock.advance_to(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
  clock.advance_to(1.0);  // in the past: no-op
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(VirtualClock, ResetReturnsToZero) {
  VirtualClock clock;
  clock.advance(42.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
}

}  // namespace
}  // namespace eidb
