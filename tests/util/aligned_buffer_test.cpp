#include "util/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>

namespace eidb {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesAlignedZeroed) {
  AlignedBuffer b(1000);
  ASSERT_EQ(b.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLineBytes, 0u);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_EQ(b.data()[i], std::byte{0}) << "at byte " << i;
}

TEST(AlignedBuffer, CustomAlignment) {
  AlignedBuffer b(128, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 4096, 0u);
}

TEST(AlignedBuffer, TypedSpanCoversBuffer) {
  AlignedBuffer b(64 * sizeof(std::uint32_t));
  auto s = b.as_span<std::uint32_t>();
  ASSERT_EQ(s.size(), 64u);
  for (std::uint32_t i = 0; i < 64; ++i) s[i] = i * 3;
  auto cs = std::as_const(b).as_span<std::uint32_t>();
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(cs[i], i * 3);
}

TEST(AlignedBuffer, MovePreservesContentsAndEmptiesSource) {
  AlignedBuffer a(256);
  a.as_span<std::uint8_t>()[7] = 42;
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.size(), 256u);
  EXPECT_EQ(b.as_span<std::uint8_t>()[7], 42);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd state
  AlignedBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.as_span<std::uint8_t>()[7], 42);
}

TEST(AlignedBuffer, GrowPreservesAndZeroExtends) {
  AlignedBuffer b(16);
  b.as_span<std::uint8_t>()[15] = 9;
  b.grow(1024);
  ASSERT_EQ(b.size(), 1024u);
  EXPECT_EQ(b.as_span<std::uint8_t>()[15], 9);
  for (std::size_t i = 16; i < 1024; ++i)
    ASSERT_EQ(b.as_span<std::uint8_t>()[i], 0u);
}

TEST(AlignedBuffer, GrowToSmallerIsNoop) {
  AlignedBuffer b(64);
  const std::byte* p = b.data();
  b.grow(32);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(b.data(), p);
}

TEST(AlignedBuffer, SwapExchangesContents) {
  AlignedBuffer a(8), b(16);
  a.as_span<std::uint8_t>()[0] = 1;
  b.as_span<std::uint8_t>()[0] = 2;
  a.swap(b);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(a.as_span<std::uint8_t>()[0], 2);
  EXPECT_EQ(b.as_span<std::uint8_t>()[0], 1);
}

}  // namespace
}  // namespace eidb
