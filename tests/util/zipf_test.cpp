#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace eidb {
namespace {

TEST(Zipf, SamplesStayInDomain) {
  ZipfGenerator z(100, 0.99, 1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.next(), 100u);
}

TEST(Zipf, DeterministicForSeed) {
  ZipfGenerator a(1000, 0.8, 7), b(1000, 0.8, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Zipf, ThetaZeroIsUniformish) {
  ZipfGenerator z(10, 0.0, 3);
  std::vector<int> hist(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++hist[z.next()];
  for (int h : hist) {
    EXPECT_GT(h, kDraws / 10 * 0.9);
    EXPECT_LT(h, kDraws / 10 * 1.1);
  }
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  ZipfGenerator z(10000, 0.99, 5);
  constexpr int kDraws = 100000;
  int top10 = 0;
  for (int i = 0; i < kDraws; ++i)
    if (z.next() < 10) ++top10;
  // With theta=0.99 over 10k items, the top-10 ranks draw a large share
  // (analytically ~ 28%); uniform would give 0.1%.
  EXPECT_GT(top10, kDraws / 5);
}

TEST(Zipf, HigherThetaMoreSkew) {
  constexpr int kDraws = 50000;
  auto top1_share = [&](double theta) {
    ZipfGenerator z(1000, theta, 11);
    int hits = 0;
    for (int i = 0; i < kDraws; ++i)
      if (z.next() == 0) ++hits;
    return static_cast<double>(hits) / kDraws;
  };
  const double s_low = top1_share(0.5);
  const double s_high = top1_share(1.2);
  EXPECT_GT(s_high, s_low * 2);
}

TEST(Zipf, RankZeroIsMostPopular) {
  ZipfGenerator z(100, 0.9, 13);
  std::vector<int> hist(100, 0);
  for (int i = 0; i < 200000; ++i) ++hist[z.next()];
  for (int r = 1; r < 100; ++r) EXPECT_GE(hist[0], hist[r]) << "rank " << r;
}

TEST(Zipf, SingleItemDomain) {
  ZipfGenerator z(1, 0.99, 17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.next(), 0u);
}

}  // namespace
}  // namespace eidb
