#include "util/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace eidb {
namespace {

TEST(TablePrinter, AlignedOutput) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos) << out;
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(TablePrinter, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 3), "3.14");
  EXPECT_EQ(TablePrinter::fmt(1000000.0, 4), "1e+06");
  EXPECT_EQ(TablePrinter::fmt_int(-42), "-42");
}

TEST(TablePrinter, RowCountTracksRows) {
  TablePrinter t({"h"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace eidb
