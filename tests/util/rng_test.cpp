#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace eidb {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiverge) {
  Pcg32 a(1, 10), b(1, 11);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInBound) {
  Pcg32 rng(99);
  for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1u << 20}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_bounded(bound), bound);
  }
}

TEST(Pcg32, BoundedZeroReturnsZero) {
  Pcg32 rng(5);
  EXPECT_EQ(rng.next_bounded(0), 0u);
}

TEST(Pcg32, BoundedIsRoughlyUniform) {
  Pcg32 rng(2024);
  constexpr std::uint32_t kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.next_bounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (int h : hist) chi2 += (h - expected) * (h - expected) / expected;
  // 15 dof, p=0.001 critical value ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, RangeInclusive) {
  Pcg32 rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t v = rng.next_in_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, RangeLargeSpan) {
  Pcg32 rng(9);
  const std::int64_t lo = -(std::int64_t{1} << 40);
  const std::int64_t hi = std::int64_t{1} << 40;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in_range(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

TEST(Pcg32, SatisfiesUniformRandomBitGenerator) {
  static_assert(Pcg32::min() == 0);
  static_assert(Pcg32::max() == 0xffffffffu);
  Pcg32 rng(1);
  EXPECT_NO_THROW((void)rng());
}

}  // namespace
}  // namespace eidb
