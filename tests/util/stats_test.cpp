#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace eidb {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, KnownValues) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(StreamingStats, MergeEqualsSequential) {
  Pcg32 rng(21);
  StreamingStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100 - 50;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1);
  a.add(2);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // copies
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(StreamingStats, NumericallyStableForLargeOffsets) {
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000 / 999, 1e-6);
}

TEST(PercentileTracker, ExactQuartiles) {
  PercentileTracker t;
  for (int i = 1; i <= 101; ++i) t.add(i);
  EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 101.0);
  EXPECT_DOUBLE_EQ(t.percentile(25), 26.0);
}

TEST(PercentileTracker, InterpolatesBetweenRanks) {
  PercentileTracker t;
  t.add(10);
  t.add(20);
  EXPECT_DOUBLE_EQ(t.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(t.percentile(75), 17.5);
}

TEST(PercentileTracker, UnsortedInsertOrder) {
  PercentileTracker t;
  for (double x : {5.0, 1.0, 4.0, 2.0, 3.0}) t.add(x);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);
}

TEST(PercentileTracker, AddAfterQueryResorts) {
  PercentileTracker t;
  t.add(1);
  t.add(3);
  EXPECT_DOUBLE_EQ(t.median(), 2.0);
  t.add(100);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);
}

TEST(PercentileTracker, EmptyReturnsZero) {
  PercentileTracker t;
  EXPECT_EQ(t.percentile(50), 0.0);
}

}  // namespace
}  // namespace eidb
