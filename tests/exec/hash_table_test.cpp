#include "exec/hash_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace eidb::exec {
namespace {

TEST(HashTable, InsertAndFind) {
  HashTable<int> t;
  t.get_or_insert(42) = 7;
  t.get_or_insert(-1) = 9;
  ASSERT_NE(t.find(42), nullptr);
  EXPECT_EQ(*t.find(42), 7);
  EXPECT_EQ(*t.find(-1), 9);
  EXPECT_EQ(t.find(99), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(HashTable, GetOrInsertIdempotent) {
  HashTable<int> t;
  t.get_or_insert(5) = 1;
  t.get_or_insert(5) += 10;
  EXPECT_EQ(*t.find(5), 11);
  EXPECT_EQ(t.size(), 1u);
}

TEST(HashTable, OnInsertCallbackOnlyForFreshKeys) {
  HashTable<int> t;
  int calls = 0;
  t.get_or_insert(1, [&](int& v) {
    v = 100;
    ++calls;
  });
  t.get_or_insert(1, [&](int& v) {
    v = 200;
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(*t.find(1), 100);
}

TEST(HashTable, GrowsUnderLoadAndKeepsEntries) {
  HashTable<std::int64_t> t(4);
  constexpr int kN = 10000;
  for (std::int64_t i = 0; i < kN; ++i) t.get_or_insert(i * 31) = i;
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kN));
  EXPECT_GE(t.capacity() * 7, t.size() * 10);  // load <= 0.7
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_NE(t.find(i * 31), nullptr) << i;
    EXPECT_EQ(*t.find(i * 31), i);
  }
}

TEST(HashTable, CollidingKeysAllSurvive) {
  // Keys chosen to collide in small tables (same low bits).
  HashTable<int> t(4);
  for (int i = 0; i < 64; ++i) t.get_or_insert(std::int64_t{i} << 32) = i;
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(*t.find(std::int64_t{i} << 32), i);
}

TEST(HashTable, ForEachVisitsAllOnce) {
  HashTable<int> t;
  std::set<std::int64_t> want;
  Pcg32 rng(12);
  for (int i = 0; i < 500; ++i) {
    const auto k = static_cast<std::int64_t>(rng.next64());
    want.insert(k);
    t.get_or_insert(k) = 1;
  }
  std::set<std::int64_t> got;
  t.for_each([&](std::int64_t k, const int&) { got.insert(k); });
  EXPECT_EQ(got, want);
}

TEST(HashTable, RandomizedAgainstStdMap) {
  HashTable<std::int64_t> t;
  std::map<std::int64_t, std::int64_t> ref;
  Pcg32 rng(13);
  for (int i = 0; i < 20000; ++i) {
    const auto k = static_cast<std::int64_t>(rng.next_bounded(5000));
    t.get_or_insert(k) += 1;
    ref[k] += 1;
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_EQ(*t.find(k), v);
}

TEST(JoinHashTable, DuplicateKeysChain) {
  JoinHashTable t;
  t.insert(7, 1);
  t.insert(7, 2);
  t.insert(7, 3);
  t.insert(8, 4);
  std::vector<std::uint32_t> rows;
  t.probe(7, [&](std::uint32_t r) { rows.push_back(r); });
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(t.key_count(), 2u);
  EXPECT_EQ(t.row_count(), 4u);
  rows.clear();
  t.probe(99, [&](std::uint32_t r) { rows.push_back(r); });
  EXPECT_TRUE(rows.empty());
}

TEST(HashKey, SpreadsLowEntropyKeys) {
  // Sequential keys must not land in sequential buckets only.
  std::set<std::uint64_t> high_bits;
  for (std::int64_t i = 0; i < 256; ++i)
    high_bits.insert(hash_key(i) >> 56);
  EXPECT_GT(high_bits.size(), 100u);
}

}  // namespace
}  // namespace eidb::exec
