#include "exec/aggregate.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::exec {
namespace {

BitVector all_set(std::size_t n) {
  BitVector b(n);
  b.set_all();
  return b;
}

TEST(Aggregate, AllInt64) {
  const std::vector<std::int64_t> v = {3, -1, 7, 7, 0};
  const AggResult r = aggregate_all(std::span<const std::int64_t>(v));
  EXPECT_EQ(r.count, 5u);
  EXPECT_EQ(r.sum, 16);
  EXPECT_EQ(r.min, -1);
  EXPECT_EQ(r.max, 7);
  EXPECT_DOUBLE_EQ(r.avg(), 3.2);
}

TEST(Aggregate, AllDouble) {
  const std::vector<double> v = {1.5, -0.5};
  const AggResultD r = aggregate_all(std::span<const double>(v));
  EXPECT_EQ(r.count, 2u);
  EXPECT_DOUBLE_EQ(r.sum, 1.0);
  EXPECT_DOUBLE_EQ(r.min, -0.5);
  EXPECT_DOUBLE_EQ(r.max, 1.5);
  EXPECT_DOUBLE_EQ(r.avg(), 0.5);
}

TEST(Aggregate, EmptyInput) {
  const std::vector<std::int64_t> v;
  const AggResult r = aggregate_all(std::span<const std::int64_t>(v));
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.sum, 0);
  EXPECT_DOUBLE_EQ(r.avg(), 0.0);
}

TEST(Aggregate, SelectedSubset) {
  const std::vector<std::int64_t> v = {10, 20, 30, 40};
  BitVector sel(4);
  sel.set(1);
  sel.set(3);
  const AggResult r = aggregate_selected(v, sel);
  EXPECT_EQ(r.count, 2u);
  EXPECT_EQ(r.sum, 60);
  EXPECT_EQ(r.min, 20);
  EXPECT_EQ(r.max, 40);
}

TEST(Aggregate, EmptySelection) {
  const std::vector<std::int64_t> v = {1, 2, 3};
  const BitVector sel(3);
  const AggResult r = aggregate_selected(v, sel);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.min, 0);
  EXPECT_EQ(r.max, 0);
}

TEST(Aggregate, SelectedDouble) {
  const std::vector<double> v = {1.0, 2.0, 4.0};
  BitVector sel(3);
  sel.set(0);
  sel.set(2);
  const AggResultD r = aggregate_selected(std::span<const double>(v), sel);
  EXPECT_DOUBLE_EQ(r.sum, 5.0);
  EXPECT_DOUBLE_EQ(r.avg(), 2.5);
}

std::map<std::int64_t, AggResult> reference_group(
    const std::vector<std::int64_t>& keys,
    const std::vector<std::int64_t>& values, const BitVector& sel) {
  std::map<std::int64_t, AggResult> m;
  sel.for_each_set([&](std::size_t i) {
    auto [it, fresh] = m.try_emplace(keys[i]);
    AggResult& a = it->second;
    if (fresh) {
      a.min = a.max = values[i];
      a.sum = values[i];
      a.count = 1;
    } else {
      ++a.count;
      a.sum += values[i];
      a.min = std::min(a.min, values[i]);
      a.max = std::max(a.max, values[i]);
    }
  });
  return m;
}

void expect_matches_reference(const std::vector<GroupRow>& rows,
                              const std::map<std::int64_t, AggResult>& ref) {
  ASSERT_EQ(rows.size(), ref.size());
  auto it = ref.begin();
  for (const GroupRow& row : rows) {
    EXPECT_EQ(row.key, it->first);
    EXPECT_EQ(row.agg.count, it->second.count);
    EXPECT_EQ(row.agg.sum, it->second.sum);
    EXPECT_EQ(row.agg.min, it->second.min);
    EXPECT_EQ(row.agg.max, it->second.max);
    ++it;
  }
}

TEST(GroupAggregate, SmallExample) {
  const std::vector<std::int64_t> keys = {1, 2, 1, 3, 2, 1};
  const std::vector<std::int64_t> vals = {10, 20, 30, 40, 50, 60};
  const auto rows = group_aggregate(keys, vals, all_set(6));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key, 1);
  EXPECT_EQ(rows[0].agg.sum, 100);
  EXPECT_EQ(rows[0].agg.count, 3u);
  EXPECT_EQ(rows[1].key, 2);
  EXPECT_EQ(rows[1].agg.sum, 70);
  EXPECT_EQ(rows[2].key, 3);
  EXPECT_EQ(rows[2].agg.min, 40);
}

TEST(GroupAggregate, DenseAndHashAgree) {
  Pcg32 rng(8);
  std::vector<std::int64_t> keys(20000), vals(20000);
  for (auto& k : keys) k = rng.next_bounded(100);
  for (auto& v : vals) v = rng.next_in_range(-1000, 1000);
  BitVector sel(keys.size());
  for (std::size_t i = 0; i < sel.size(); ++i)
    if (rng.next_double() < 0.5) sel.set(i);

  const auto dense =
      group_aggregate(keys, vals, sel, GroupStrategy::kDenseArray);
  const auto hash = group_aggregate(keys, vals, sel, GroupStrategy::kHash);
  const auto ref = reference_group(keys, vals, sel);
  expect_matches_reference(dense, ref);
  expect_matches_reference(hash, ref);
}

TEST(GroupAggregate, AutoFallsBackToHashForWideDomains) {
  // Keys spread over > 2^20: dense would throw, auto must survive.
  Pcg32 rng(9);
  std::vector<std::int64_t> keys(1000), vals(1000);
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.next64() >> 8);
  for (auto& v : vals) v = 1;
  const auto rows = group_aggregate(keys, vals, all_set(1000));
  const auto ref = reference_group(keys, vals, all_set(1000));
  expect_matches_reference(rows, ref);
}

TEST(GroupAggregate, DenseThrowsOnHugeDomain) {
  const std::vector<std::int64_t> keys = {0, std::int64_t{1} << 40};
  const std::vector<std::int64_t> vals = {1, 2};
  EXPECT_THROW(
      (void)group_aggregate(keys, vals, all_set(2), GroupStrategy::kDenseArray),
      Error);
}

TEST(GroupAggregate, NegativeKeys) {
  const std::vector<std::int64_t> keys = {-5, -5, 3};
  const std::vector<std::int64_t> vals = {1, 2, 3};
  const auto rows = group_aggregate(keys, vals, all_set(3));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, -5);
  EXPECT_EQ(rows[0].agg.sum, 3);
  EXPECT_EQ(rows[1].key, 3);
}

TEST(GroupAggregate, EmptySelectionYieldsNoGroups) {
  const std::vector<std::int64_t> keys = {1, 2};
  const std::vector<std::int64_t> vals = {1, 2};
  EXPECT_TRUE(group_aggregate(keys, vals, BitVector(2)).empty());
}

TEST(GroupAggregate, Int32KeysOverload) {
  const std::vector<std::int32_t> keys = {2, 1, 2};
  const std::vector<std::int64_t> vals = {5, 6, 7};
  const auto rows = group_aggregate32(keys, vals, all_set(3));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, 1);
  EXPECT_EQ(rows[1].agg.sum, 12);
}

}  // namespace
}  // namespace eidb::exec
