#include "exec/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "storage/column.hpp"
#include "util/rng.hpp"

namespace eidb::exec {
namespace {

BitVector all_set(std::size_t n) {
  BitVector b(n);
  b.set_all();
  return b;
}

TEST(Sort, AscendingAndDescending) {
  const std::vector<std::int64_t> keys = {30, 10, 20};
  const auto asc = sort_indices(keys, all_set(3), true);
  EXPECT_EQ(asc, (std::vector<std::uint32_t>{1, 2, 0}));
  const auto desc = sort_indices(keys, all_set(3), false);
  EXPECT_EQ(desc, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(Sort, RespectsSelection) {
  const std::vector<std::int64_t> keys = {5, 1, 9, 3};
  BitVector sel(4);
  sel.set(0);
  sel.set(2);
  const auto idx = sort_indices(keys, sel, true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 2}));
}

TEST(Sort, StableOnTies) {
  const std::vector<std::int64_t> keys = {7, 7, 7};
  const auto idx = sort_indices(keys, all_set(3), true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 1, 2}));
  const auto desc = sort_indices(keys, all_set(3), false);
  EXPECT_EQ(desc, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Sort, DoubleKeys) {
  const std::vector<double> keys = {1.5, -2.0, 0.0};
  const auto idx = sort_indices_double(keys, all_set(3), true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(TopN, ReturnsSmallestN) {
  const std::vector<std::int64_t> keys = {50, 10, 40, 20, 30};
  const auto idx = top_n(keys, all_set(5), 3, true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 3, 4}));
}

TEST(TopN, DescendingReturnsLargest) {
  const std::vector<std::int64_t> keys = {50, 10, 40, 20, 30};
  const auto idx = top_n(keys, all_set(5), 2, false);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 2}));
}

TEST(TopN, NLargerThanSelectionSortsAll) {
  const std::vector<std::int64_t> keys = {3, 1, 2};
  const auto idx = top_n(keys, all_set(3), 10, true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(TopN, AgreesWithFullSortPrefix) {
  Pcg32 rng(31);
  std::vector<std::int64_t> keys(5000);
  for (auto& k : keys) k = rng.next_bounded(1000);
  BitVector sel(keys.size());
  for (std::size_t i = 0; i < sel.size(); ++i)
    if (rng.next_double() < 0.6) sel.set(i);
  const auto full = sort_indices(keys, sel, true);
  const auto top = top_n(keys, sel, 100, true);
  ASSERT_EQ(top.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(keys[top[i]], keys[full[i]]) << i;
}

TEST(Sort, EmptySelection) {
  const std::vector<std::int64_t> keys = {1, 2};
  EXPECT_TRUE(sort_indices(keys, BitVector(2), true).empty());
  EXPECT_TRUE(top_n(keys, BitVector(2), 5, true).empty());
}

// ---------------------------------------------------------------------------
// Typed-view sorts: int32 / packed keys compared in place, no widened
// int64 copy.
// ---------------------------------------------------------------------------

TEST(Sort, JoinKeysViewInt32MatchesWidened) {
  Pcg32 rng(77);
  std::vector<std::int32_t> k32(2000);
  std::vector<std::int64_t> k64(2000);
  for (std::size_t i = 0; i < k32.size(); ++i) {
    k32[i] = static_cast<std::int32_t>(rng.next_in_range(-500, 500));
    k64[i] = k32[i];
  }
  BitVector sel(k32.size());
  for (std::size_t i = 0; i < sel.size(); ++i)
    if (rng.next_double() < 0.7) sel.set(i);
  const JoinKeys view = JoinKeys::from(std::span<const std::int32_t>(k32));
  for (const bool asc : {true, false}) {
    EXPECT_EQ(sort_indices(view, sel, asc), sort_indices(k64, sel, asc));
    EXPECT_EQ(top_n(view, sel, 50, asc), top_n(k64, sel, 50, asc));
  }
}

TEST(Sort, JoinKeysViewPackedMatchesPlain) {
  Pcg32 rng(88);
  std::vector<std::int32_t> plain(1500);
  for (auto& v : plain) v = static_cast<std::int32_t>(rng.next_bounded(300));
  storage::Column col = storage::Column::from_int32("k", plain);
  col.set_encoding(storage::Encoding::kBitPacked);
  ASSERT_NE(col.encoded(), nullptr);
  std::vector<std::int64_t> widened(plain.begin(), plain.end());
  const JoinKeys packed = JoinKeys::from(col.packed_view());
  const BitVector sel = all_set(plain.size());
  EXPECT_EQ(sort_indices(packed, sel, true), sort_indices(widened, sel, true));
  EXPECT_EQ(top_n(packed, sel, 40, false), top_n(widened, sel, 40, false));
}

TEST(TopN, DoubleAgreesWithFullSortPrefix) {
  Pcg32 rng(99);
  std::vector<double> keys(3000);
  for (auto& k : keys) k = rng.next_double() * 100.0 - 50.0;
  const BitVector sel = all_set(keys.size());
  const auto full = sort_indices_double(keys, sel, false);
  const auto top = top_n_double(keys, sel, 64, false);
  ASSERT_EQ(top.size(), 64u);
  for (std::size_t i = 0; i < top.size(); ++i)
    EXPECT_EQ(keys[top[i]], keys[full[i]]) << i;
}

// ---------------------------------------------------------------------------
// Permutation sorts over gathered key vectors (join ORDER BY output).
// ---------------------------------------------------------------------------

TEST(Permutation, SortAndTopNAgree) {
  Pcg32 rng(123);
  std::vector<std::int64_t> keys(4000);
  for (auto& k : keys) k = rng.next_in_range(-1000, 1000);
  const auto full = sort_permutation(keys, true);
  ASSERT_EQ(full.size(), keys.size());
  for (std::size_t i = 0; i + 1 < full.size(); ++i) {
    ASSERT_LE(keys[full[i]], keys[full[i + 1]]);
    if (keys[full[i]] == keys[full[i + 1]]) {
      EXPECT_LT(full[i], full[i + 1]);  // deterministic tie-break
    }
  }
  const auto top = top_n_permutation(keys, 128, true);
  ASSERT_EQ(top.size(), 128u);
  for (std::size_t i = 0; i < top.size(); ++i)
    EXPECT_EQ(top[i], full[i]) << i;
}

TEST(Permutation, DoubleVariantAndBounds) {
  const std::vector<double> keys = {3.5, -1.0, 2.0};
  EXPECT_EQ(sort_permutation_double(keys, true),
            (std::vector<std::uint32_t>{1, 2, 0}));
  EXPECT_EQ(top_n_permutation_double(keys, 2, false),
            (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(top_n_permutation(std::vector<std::int64_t>{}, 5, true).size(),
            0u);
}

}  // namespace
}  // namespace eidb::exec
