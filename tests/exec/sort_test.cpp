#include "exec/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace eidb::exec {
namespace {

BitVector all_set(std::size_t n) {
  BitVector b(n);
  b.set_all();
  return b;
}

TEST(Sort, AscendingAndDescending) {
  const std::vector<std::int64_t> keys = {30, 10, 20};
  const auto asc = sort_indices(keys, all_set(3), true);
  EXPECT_EQ(asc, (std::vector<std::uint32_t>{1, 2, 0}));
  const auto desc = sort_indices(keys, all_set(3), false);
  EXPECT_EQ(desc, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(Sort, RespectsSelection) {
  const std::vector<std::int64_t> keys = {5, 1, 9, 3};
  BitVector sel(4);
  sel.set(0);
  sel.set(2);
  const auto idx = sort_indices(keys, sel, true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 2}));
}

TEST(Sort, StableOnTies) {
  const std::vector<std::int64_t> keys = {7, 7, 7};
  const auto idx = sort_indices(keys, all_set(3), true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 1, 2}));
  const auto desc = sort_indices(keys, all_set(3), false);
  EXPECT_EQ(desc, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Sort, DoubleKeys) {
  const std::vector<double> keys = {1.5, -2.0, 0.0};
  const auto idx = sort_indices_double(keys, all_set(3), true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(TopN, ReturnsSmallestN) {
  const std::vector<std::int64_t> keys = {50, 10, 40, 20, 30};
  const auto idx = top_n(keys, all_set(5), 3, true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 3, 4}));
}

TEST(TopN, DescendingReturnsLargest) {
  const std::vector<std::int64_t> keys = {50, 10, 40, 20, 30};
  const auto idx = top_n(keys, all_set(5), 2, false);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 2}));
}

TEST(TopN, NLargerThanSelectionSortsAll) {
  const std::vector<std::int64_t> keys = {3, 1, 2};
  const auto idx = top_n(keys, all_set(3), 10, true);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(TopN, AgreesWithFullSortPrefix) {
  Pcg32 rng(31);
  std::vector<std::int64_t> keys(5000);
  for (auto& k : keys) k = rng.next_bounded(1000);
  BitVector sel(keys.size());
  for (std::size_t i = 0; i < sel.size(); ++i)
    if (rng.next_double() < 0.6) sel.set(i);
  const auto full = sort_indices(keys, sel, true);
  const auto top = top_n(keys, sel, 100, true);
  ASSERT_EQ(top.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(keys[top[i]], keys[full[i]]) << i;
}

TEST(Sort, EmptySelection) {
  const std::vector<std::int64_t> keys = {1, 2};
  EXPECT_TRUE(sort_indices(keys, BitVector(2), true).empty());
  EXPECT_TRUE(top_n(keys, BitVector(2), 5, true).empty());
}

}  // namespace
}  // namespace eidb::exec
