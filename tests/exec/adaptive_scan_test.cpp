#include "exec/adaptive_scan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::exec {
namespace {

BitVector reference(const std::vector<std::int32_t>& v, std::int32_t lo,
                    std::int32_t hi) {
  BitVector b(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] >= lo && v[i] <= hi) b.set(i);
  return b;
}

TEST(AdaptiveScan, CorrectOnUniformData) {
  const opt::CostModel model = opt::CostModel::defaults();
  Pcg32 rng(1);
  std::vector<std::int32_t> v(300000);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next_bounded(1000));
  AdaptiveScan scan(model, 0.1, 64 * 512);
  BitVector out(v.size());
  AdaptiveScanStats stats;
  scan.scan(v, 100, 299, out, stats);
  EXPECT_EQ(out, reference(v, 100, 299));
  EXPECT_GT(stats.chunks, 1u);
  EXPECT_NEAR(stats.final_selectivity_estimate, 0.2, 0.05);
}

TEST(AdaptiveScan, TracksClusteredSelectivityWithSwitches) {
  // Scalar-only model (no SIMD): the branching<->predicated decision flips
  // between a ~0%-selectivity region and a ~50% region.
  opt::KernelCosts costs;
  const opt::CostModel model(costs);
  std::vector<std::int32_t> v;
  // Region A: no matches (values 1000+); region B: ~50% matches.
  for (int i = 0; i < 200000; ++i) v.push_back(1000 + i % 100);
  Pcg32 rng(2);
  for (int i = 0; i < 200000; ++i)
    v.push_back(static_cast<std::int32_t>(rng.next_bounded(2)));  // 0 or 1

  // Force the scalar decision space by picking on a machine without SIMD:
  // emulate via a model whose SIMD costs are prohibitive.
  opt::KernelCosts no_simd = costs;
  no_simd.avx2 = 1e9;
  no_simd.avx512 = 1e9;
  const opt::CostModel scalar_model(no_simd);

  AdaptiveScan scan(scalar_model, 0.01, 64 * 256);
  BitVector out(v.size());
  AdaptiveScanStats stats;
  scan.scan(v, 0, 0, out, stats);  // matches value==0: none in A, ~50% in B
  EXPECT_EQ(out, reference(v, 0, 0));
  EXPECT_GE(stats.switches, 1u);  // branching in A -> predicated in B
  EXPECT_EQ(stats.variant_per_chunk.front(), ScanVariant::kBranching);
  EXPECT_EQ(stats.variant_per_chunk.back(), ScanVariant::kPredicated);
}

TEST(AdaptiveScan, NoSwitchesWhenSimdAlwaysWins) {
  const opt::CostModel model = opt::CostModel::defaults();
  if (!cpu_has_avx2() && !cpu_has_avx512())
    GTEST_SKIP() << "no SIMD on this host";
  Pcg32 rng(3);
  std::vector<std::int32_t> v(200000);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next_bounded(100));
  AdaptiveScan scan(model, 0.5, 64 * 128);
  BitVector out(v.size());
  AdaptiveScanStats stats;
  scan.scan(v, 0, 49, out, stats);
  EXPECT_EQ(stats.switches, 0u);  // SIMD dominates at every selectivity
  EXPECT_EQ(out, reference(v, 0, 49));
}

TEST(AdaptiveScan, TailSmallerThanChunk) {
  const opt::CostModel model = opt::CostModel::defaults();
  Pcg32 rng(4);
  std::vector<std::int32_t> v(1000);  // much smaller than one chunk
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next_bounded(10));
  AdaptiveScan scan(model, 0.1);
  BitVector out(v.size());
  AdaptiveScanStats stats;
  scan.scan(v, 3, 5, out, stats);
  EXPECT_EQ(out, reference(v, 3, 5));
  EXPECT_EQ(stats.chunks, 1u);
}

TEST(AdaptiveScan, EmptyInput) {
  const opt::CostModel model = opt::CostModel::defaults();
  AdaptiveScan scan(model);
  BitVector out(0);
  AdaptiveScanStats stats;
  scan.scan({}, 0, 1, out, stats);
  EXPECT_EQ(stats.chunks, 0u);
}

}  // namespace
}  // namespace eidb::exec
