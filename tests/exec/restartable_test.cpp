#include "exec/restartable.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::exec {
namespace {

std::vector<std::int64_t> make_values(std::size_t n) {
  Pcg32 rng(17);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.next_in_range(-50, 50);
  return v;
}

BitVector all_set(std::size_t n) {
  BitVector b(n);
  b.set_all();
  return b;
}

TEST(Restartable, NoFaultsMatchesReference) {
  const auto v = make_values(10000);
  const BitVector sel = all_set(v.size());
  const AggResult want = aggregate_selected(v, sel);

  RestartableAggregation agg(128, 4);
  RestartStats stats;
  const AggResult got = agg.run(v, sel, nullptr, stats);
  EXPECT_EQ(got.sum, want.sum);
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(got.min, want.min);
  EXPECT_EQ(got.max, want.max);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.morsels_processed, stats.morsels_total);
}

TEST(Restartable, SurvivesSingleFaultCorrectly) {
  const auto v = make_values(10000);
  const BitVector sel = all_set(v.size());
  const AggResult want = aggregate_selected(v, sel);

  RestartableAggregation agg(100, 5);
  RestartStats stats;
  bool fired = false;
  const AggResult got = agg.run(
      v, sel,
      [&](std::uint64_t m) {
        if (m == 42 && !fired) {
          fired = true;
          return true;
        }
        return false;
      },
      stats);
  EXPECT_EQ(got.sum, want.sum);
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(stats.restarts, 1u);
  // Fault at morsel 42, last checkpoint at 40: exactly 2 morsels redone.
  EXPECT_EQ(stats.morsels_reprocessed, 2u);
}

TEST(Restartable, CheckpointsBoundReprocessing) {
  const auto v = make_values(100000);
  const BitVector sel = all_set(v.size());
  // Fail once at every 25th morsel (100 morsels of 1000 rows).
  const auto periodic_fault = [](std::uint64_t last_fired) {
    return [last_fired, fired = std::vector<bool>(1000, false)](
               std::uint64_t m) mutable {
      if (m % 25 == 24 && !fired[m]) {
        fired[m] = true;
        return true;
      }
      (void)last_fired;
      return false;
    };
  };

  RestartableAggregation tight(1000, 1);   // checkpoint every morsel
  RestartableAggregation loose(1000, 50);  // rarely
  RestartStats tight_stats, loose_stats;
  const AggResult a = tight.run(v, sel, periodic_fault(0), tight_stats);
  const AggResult b = loose.run(v, sel, periodic_fault(0), loose_stats);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_LT(tight_stats.morsels_reprocessed,
            loose_stats.morsels_reprocessed);
  EXPECT_GT(tight_stats.checkpoints_taken, loose_stats.checkpoints_taken);
}

TEST(Restartable, FromScratchLosesAllProgress) {
  const auto v = make_values(50000);
  const BitVector sel = all_set(v.size());
  RestartableAggregation agg(1000, 5);

  // One fault late in the job (morsel 45 of 50).
  const auto one_fault = [] {
    return [fired = false](std::uint64_t m) mutable {
      if (m == 45 && !fired) {
        fired = true;
        return true;
      }
      return false;
    };
  };
  RestartStats ck, scratch;
  const AggResult a = agg.run(v, sel, one_fault(), ck);
  const AggResult b = agg.run_from_scratch(v, sel, one_fault(), scratch);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(scratch.morsels_reprocessed, 45u);  // the paper's motivation
  EXPECT_EQ(ck.morsels_reprocessed, 0u);        // fault hit a checkpoint
}

TEST(Restartable, SelectionRespected) {
  const auto v = make_values(5000);
  BitVector sel(v.size());
  Pcg32 rng(3);
  for (std::size_t i = 0; i < sel.size(); ++i)
    if (rng.next_double() < 0.3) sel.set(i);
  const AggResult want = aggregate_selected(v, sel);
  RestartableAggregation agg(128, 2);
  RestartStats stats;
  const AggResult got = agg.run(v, sel, nullptr, stats);
  EXPECT_EQ(got.sum, want.sum);
  EXPECT_EQ(got.count, want.count);
}

TEST(Restartable, PermanentFaultThrowsAfterMaxRestarts) {
  const auto v = make_values(1000);
  const BitVector sel = all_set(v.size());
  RestartableAggregation agg(100, 1);
  RestartStats stats;
  EXPECT_THROW((void)agg.run(
                   v, sel, [](std::uint64_t m) { return m == 5; }, stats,
                   /*max_restarts=*/10),
               Error);
}

TEST(Restartable, EmptyInput) {
  const std::vector<std::int64_t> v;
  const BitVector sel(0);
  RestartableAggregation agg(100, 1);
  RestartStats stats;
  const AggResult r = agg.run(v, sel, nullptr, stats);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(stats.morsels_total, 0u);
}

}  // namespace
}  // namespace eidb::exec
