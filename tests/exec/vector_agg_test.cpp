// Scalar-reference parity for the single-pass vectorized aggregation
// kernels: every multi_aggregate / grouped_multi_aggregate result must
// match the one-pass-per-column reference kernels bit-for-bit on integer
// data and within FP tolerance on doubles (block summation re-associates).
#include "exec/vector_agg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "exec/fused.hpp"
#include "exec/scan_kernels.hpp"
#include "util/rng.hpp"

namespace eidb::exec {
namespace {

struct TestColumns {
  std::vector<std::int32_t> i32;
  std::vector<std::int64_t> i64;
  std::vector<double> f64;
  std::vector<std::int32_t> keys32;
  std::vector<std::int64_t> keys64;
  BitVector selection;
};

TestColumns make_columns(std::size_t n, double keep, std::uint64_t seed,
                         std::int64_t key_domain = 50) {
  TestColumns t;
  Pcg32 rng(seed);
  t.selection = BitVector(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.i32.push_back(static_cast<std::int32_t>(rng.next_in_range(-500, 500)));
    t.i64.push_back(rng.next_in_range(-100000, 100000));
    t.f64.push_back(rng.next_double() * 20 - 10);
    const auto key = rng.next_in_range(0, key_domain - 1);
    t.keys32.push_back(static_cast<std::int32_t>(key));
    t.keys64.push_back(key);
    if (rng.next_double() < keep) t.selection.set(i);
  }
  return t;
}

void expect_agg_eq(const AggResult& want, const AggResult& got) {
  EXPECT_EQ(want.count, got.count);
  EXPECT_EQ(want.sum, got.sum);
  EXPECT_EQ(want.min, got.min);
  EXPECT_EQ(want.max, got.max);
}

void expect_agg_near(const AggResultD& want, const AggResultD& got) {
  EXPECT_EQ(want.count, got.count);
  EXPECT_NEAR(want.sum, got.sum, 1e-6 * (1.0 + std::abs(want.sum)));
  EXPECT_DOUBLE_EQ(want.min, got.min);
  EXPECT_DOUBLE_EQ(want.max, got.max);
}

TEST(MultiAggregate, MatchesSingleColumnReference) {
  const TestColumns t = make_columns(10'000, 0.4, 42);
  const std::vector<AggInput> inputs = {AggInput::from(std::span(t.i32)),
                                        AggInput::from(std::span(t.i64)),
                                        AggInput::from(std::span(t.f64))};
  const auto outs = multi_aggregate(inputs, t.selection);
  ASSERT_EQ(outs.size(), 3u);
  expect_agg_eq(aggregate_selected(std::span(t.i32), t.selection), outs[0].i);
  expect_agg_eq(aggregate_selected(std::span(t.i64), t.selection), outs[1].i);
  expect_agg_near(aggregate_selected(std::span(t.f64), t.selection),
                  outs[2].d);
}

TEST(MultiAggregate, FullAndEmptySelections) {
  TestColumns t = make_columns(4'096, 1.0, 7);
  t.selection.set_all();  // exercises the branch-free full-word path only
  const std::vector<AggInput> inputs = {AggInput::from(std::span(t.i64))};
  auto outs = multi_aggregate(inputs, t.selection);
  expect_agg_eq(aggregate_selected(std::span(t.i64), t.selection), outs[0].i);

  t.selection.clear_all();
  outs = multi_aggregate(inputs, t.selection);
  EXPECT_EQ(outs[0].i.count, 0u);
  EXPECT_EQ(outs[0].i.sum, 0);
  EXPECT_EQ(outs[0].i.min, 0);  // aggregate_selected's empty convention
  EXPECT_EQ(outs[0].i.max, 0);
}

TEST(MultiAggregate, UnalignedTail) {
  // Size deliberately not a multiple of 64.
  const TestColumns t = make_columns(1'000 + 17, 0.7, 9);
  const std::vector<AggInput> inputs = {AggInput::from(std::span(t.i32))};
  const auto outs = multi_aggregate(inputs, t.selection);
  expect_agg_eq(aggregate_selected(std::span(t.i32), t.selection), outs[0].i);
}

TEST(MultiAggregate, ParallelMatchesSerial) {
  const TestColumns t = make_columns(100'000, 0.5, 11);
  const std::vector<AggInput> inputs = {AggInput::from(std::span(t.i64)),
                                        AggInput::from(std::span(t.f64))};
  const auto serial = multi_aggregate(inputs, t.selection);
  sched::ThreadPool pool(4);
  const auto par =
      parallel_multi_aggregate(pool, inputs, t.selection, /*morsel=*/4096);
  expect_agg_eq(serial[0].i, par[0].i);
  expect_agg_near(serial[1].d, par[1].d);
}

void expect_grouped_matches_reference(const TestColumns& t,
                                      const GroupedAggs& g) {
  // References: one pass per column via the classic kernels.
  const auto ref_i64 = group_aggregate(std::span(t.keys64),
                                       std::span(t.i64), t.selection);
  const auto ref_i32 = group_aggregate(std::span(t.keys64),
                                       std::span(t.i32), t.selection);
  const auto ref_d = group_aggregate_d(std::span(t.keys64),
                                       std::span(t.f64), t.selection);
  ASSERT_EQ(g.group_count(), ref_i64.size());
  for (std::size_t i = 0; i < ref_i64.size(); ++i) {
    EXPECT_EQ(g.keys[i], ref_i64[i].key);
    EXPECT_EQ(g.counts[i], ref_i64[i].agg.count);
    expect_agg_eq(ref_i64[i].agg, g.iout[0][i]);
    expect_agg_eq(ref_i32[i].agg, g.iout[1][i]);
    expect_agg_near(ref_d[i].agg, g.dout[2][i]);
  }
}

std::vector<AggInput> three_inputs(const TestColumns& t) {
  return {AggInput::from(std::span(t.i64)), AggInput::from(std::span(t.i32)),
          AggInput::from(std::span(t.f64))};
}

TEST(GroupedMultiAggregate, DenseMatchesReference) {
  const TestColumns t = make_columns(20'000, 0.6, 21, /*key_domain=*/40);
  const auto g = grouped_multi_aggregate(std::span(t.keys64),
                                         three_inputs(t), t.selection);
  expect_grouped_matches_reference(t, g);
}

TEST(GroupedMultiAggregate, HashStrategyMatchesDense) {
  const TestColumns t = make_columns(20'000, 0.6, 22, /*key_domain=*/40);
  const auto dense =
      grouped_multi_aggregate(std::span(t.keys64), three_inputs(t),
                              t.selection, {}, GroupStrategy::kDenseArray);
  const auto hash =
      grouped_multi_aggregate(std::span(t.keys64), three_inputs(t),
                              t.selection, {}, GroupStrategy::kHash);
  ASSERT_EQ(dense.group_count(), hash.group_count());
  for (std::size_t i = 0; i < dense.group_count(); ++i) {
    EXPECT_EQ(dense.keys[i], hash.keys[i]);
    EXPECT_EQ(dense.counts[i], hash.counts[i]);
    expect_agg_eq(dense.iout[0][i], hash.iout[0][i]);
  }
}

TEST(GroupedMultiAggregate, Int32KeysMatchInt64Keys) {
  const TestColumns t = make_columns(20'000, 0.5, 23, /*key_domain=*/64);
  const auto g64 = grouped_multi_aggregate(std::span(t.keys64),
                                           three_inputs(t), t.selection);
  const auto g32 = grouped_multi_aggregate32(std::span(t.keys32),
                                             three_inputs(t), t.selection);
  ASSERT_EQ(g64.group_count(), g32.group_count());
  for (std::size_t i = 0; i < g64.group_count(); ++i) {
    EXPECT_EQ(g64.keys[i], g32.keys[i]);
    EXPECT_EQ(g64.counts[i], g32.counts[i]);
    expect_agg_eq(g64.iout[0][i], g32.iout[0][i]);
    expect_agg_eq(g64.iout[1][i], g32.iout[1][i]);
  }
}

TEST(GroupedMultiAggregate, KnownKeyRangeHintMatchesDerived) {
  const TestColumns t = make_columns(10'000, 0.3, 24, /*key_domain=*/30);
  const KeyRange hint{true, 0, 29};  // from cached stats in the executor
  const auto with_hint = grouped_multi_aggregate(
      std::span(t.keys64), three_inputs(t), t.selection, hint);
  const auto derived = grouped_multi_aggregate(std::span(t.keys64),
                                               three_inputs(t), t.selection);
  ASSERT_EQ(with_hint.group_count(), derived.group_count());
  for (std::size_t i = 0; i < derived.group_count(); ++i) {
    EXPECT_EQ(with_hint.keys[i], derived.keys[i]);
    expect_agg_eq(with_hint.iout[0][i], derived.iout[0][i]);
  }
}

TEST(GroupedMultiAggregate, HashFallbackForOverflowingKeySpread) {
  // Hash-like int64 keys whose spread overflows max - min + 1: the dense
  // test must fail safely (unsigned width) and the hash path must group
  // correctly, including with an explicit stats-derived range.
  constexpr std::int64_t kLo = -5'000'000'000'000'000'000LL;
  constexpr std::int64_t kHi = 5'000'000'000'000'000'000LL;
  std::vector<std::int64_t> keys, values;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(i % 2 == 0 ? kLo : kHi);
    values.push_back(i);
  }
  BitVector sel(keys.size());
  sel.set_all();
  const std::vector<AggInput> inputs = {AggInput::from(std::span(values))};
  for (const KeyRange range : {KeyRange{}, KeyRange{true, kLo, kHi, 2}}) {
    const auto g =
        grouped_multi_aggregate(std::span(keys), inputs, sel, range);
    ASSERT_EQ(g.group_count(), 2u);
    EXPECT_EQ(g.keys[0], kLo);
    EXPECT_EQ(g.keys[1], kHi);
    EXPECT_EQ(g.counts[0], 50u);
    EXPECT_EQ(g.counts[1], 50u);
    EXPECT_EQ(g.iout[0][0].sum, 50 * 49);  // 0+2+...+98
    EXPECT_EQ(g.iout[0][1].sum, 50 * 50);  // 1+3+...+99
  }
  // Parallel variant takes the same unsigned-width decision.
  sched::ThreadPool pool(2);
  const auto par = parallel_grouped_multi_aggregate(
      pool, std::span(keys), inputs, sel, KeyRange{true, kLo, kHi, 2}, 64);
  ASSERT_EQ(par.group_count(), 2u);
  EXPECT_EQ(par.counts[0], 50u);
  EXPECT_EQ(par.iout[0][1].sum, 50 * 50);
}

TEST(GroupedMultiAggregate, EmptySelectionYieldsNoGroups) {
  TestColumns t = make_columns(1'000, 0.0, 25);
  t.selection.clear_all();
  const auto g = grouped_multi_aggregate(std::span(t.keys64),
                                         three_inputs(t), t.selection);
  EXPECT_EQ(g.group_count(), 0u);
}

TEST(GroupedMultiAggregate, ParallelMatchesSerial) {
  const TestColumns t = make_columns(200'000, 0.5, 26, /*key_domain=*/100);
  const auto serial = grouped_multi_aggregate(std::span(t.keys64),
                                              three_inputs(t), t.selection);
  sched::ThreadPool pool(4);
  const auto par = parallel_grouped_multi_aggregate(
      pool, std::span(t.keys64), three_inputs(t), t.selection, {},
      /*morsel=*/8192);
  const auto par32 = parallel_grouped_multi_aggregate32(
      pool, std::span(t.keys32), three_inputs(t), t.selection, {},
      /*morsel=*/8192);
  ASSERT_EQ(serial.group_count(), par.group_count());
  ASSERT_EQ(serial.group_count(), par32.group_count());
  for (std::size_t i = 0; i < serial.group_count(); ++i) {
    EXPECT_EQ(serial.keys[i], par.keys[i]);
    EXPECT_EQ(serial.counts[i], par.counts[i]);
    expect_agg_eq(serial.iout[0][i], par.iout[0][i]);
    expect_agg_eq(serial.iout[1][i], par32.iout[1][i]);
    expect_agg_near(serial.dout[2][i], par.dout[2][i]);
  }
}

TEST(Int32ValueOverloads, GroupAggregateMatchesWidened) {
  const TestColumns t = make_columns(5'000, 0.5, 27, /*key_domain=*/20);
  std::vector<std::int64_t> widened(t.i32.begin(), t.i32.end());
  const auto want = group_aggregate(std::span(t.keys64), std::span(widened),
                                    t.selection);
  const auto got = group_aggregate(std::span(t.keys64), std::span(t.i32),
                                   t.selection);
  const auto got32 = group_aggregate32(std::span(t.keys32),
                                       std::span(t.i32), t.selection);
  ASSERT_EQ(want.size(), got.size());
  ASSERT_EQ(want.size(), got32.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].key, got[i].key);
    expect_agg_eq(want[i].agg, got[i].agg);
    expect_agg_eq(want[i].agg, got32[i].agg);
  }
}

TEST(Int32ValueOverloads, ParallelGroupAggregateMatchesWidened) {
  const TestColumns t = make_columns(50'000, 0.4, 28, /*key_domain=*/32);
  std::vector<std::int64_t> widened(t.i32.begin(), t.i32.end());
  sched::ThreadPool pool(4);
  const auto want = parallel_group_aggregate(
      pool, std::span(t.keys64), std::span(widened), t.selection, 4096);
  const auto got = parallel_group_aggregate(
      pool, std::span(t.keys64), std::span(t.i32), t.selection, 4096);
  const auto got32 = parallel_group_aggregate32(
      pool, std::span(t.keys32), std::span(t.i32), t.selection, 4096);
  ASSERT_EQ(want.size(), got.size());
  ASSERT_EQ(want.size(), got32.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].key, got[i].key);
    expect_agg_eq(want[i].agg, got[i].agg);
    expect_agg_eq(want[i].agg, got32[i].agg);
  }
}

TEST(Int32ValueOverloads, AggregateSelectedMatchesWidened) {
  const TestColumns t = make_columns(5'000, 0.5, 29);
  std::vector<std::int64_t> widened(t.i32.begin(), t.i32.end());
  expect_agg_eq(aggregate_selected(std::span(widened), t.selection),
                aggregate_selected(std::span(t.i32), t.selection));
}

TEST(MaskedScans, Int32AndDoubleMatchUnmaskedConjunction) {
  const TestColumns t = make_columns(10'000, 1.0, 30);
  const std::size_t n = t.i32.size();

  // Reference: two independent bitmap scans ANDed.
  BitVector a(n), b(n);
  scan_bitmap_scalar(std::span(t.i32), -100, 250, a);
  scan_bitmap_double(std::span(t.f64), -2.5, 6.0, b);
  BitVector want = a;
  want &= b;

  // Masked: first scan, then conjuncts evaluated only on live words.
  BitVector got(n);
  scan_bitmap_scalar(std::span(t.i32), -100, 250, got);
  MaskedScanStats stats;
  scan_bitmap_masked_double_counted(std::span(t.f64), -2.5, 6.0, got, stats);
  EXPECT_EQ(want, got);
  EXPECT_GT(stats.words_total, 0u);

  // And the int32 masked kernel against the 64-bit one.
  std::vector<std::int64_t> wide(t.i32.begin(), t.i32.end());
  BitVector m32(n), m64(n);
  scan_bitmap_scalar(std::span(t.i32), -300, 300, m32);
  scan_bitmap_scalar(std::span(t.i32), -300, 300, m64);
  scan_bitmap_masked32(std::span(t.i32), -100, 250, m32);
  scan_bitmap_masked64(std::span(wide), -100, 250, m64);
  EXPECT_EQ(m32, m64);
}

TEST(MaskedScans, SkipsDeadWords) {
  const std::size_t n = 64 * 100;
  std::vector<std::int32_t> values(n, 5);
  BitVector selection(n);
  // Only word 3 has candidates.
  for (std::size_t i = 64 * 3; i < 64 * 4; ++i) selection.set(i);
  MaskedScanStats stats;
  scan_bitmap_masked32_counted(std::span(values), 0, 10, selection, stats);
  EXPECT_EQ(stats.words_total, 100u);
  EXPECT_EQ(stats.words_skipped, 99u);
  EXPECT_EQ(selection.count(), 64u);
}

// ---------------------------------------------------------------------------
// JoinAggregator: gather-based sink of the late-materialized join pipeline.
// ---------------------------------------------------------------------------

TEST(JoinAggregator, GlobalAggregatesGatherBothSides) {
  const std::vector<std::int64_t> probe_vals = {10, 20, 30, 40};
  const std::vector<std::int32_t> build_vals = {1, 2, 3};
  JoinAggregator agg({{AggInput::from(std::span(probe_vals)), false},
                      {AggInput::from(std::span(build_vals)), true}});
  // Matches: (build 0, probe 3), (build 2, probe 1), (build 2, probe 1).
  const std::uint32_t b[] = {0, 2, 2};
  const std::uint32_t p[] = {3, 1, 1};
  agg.add_block(b, p, 3);
  EXPECT_EQ(agg.pair_count(), 3u);
  const GroupedAggs out = agg.finish();
  ASSERT_EQ(out.group_count(), 1u);
  EXPECT_EQ(out.counts[0], 3u);
  EXPECT_EQ(out.iout[0][0].sum, 40 + 20 + 20);  // probe gather
  EXPECT_EQ(out.iout[1][0].sum, 1 + 3 + 3);     // build gather
  EXPECT_EQ(out.iout[1][0].min, 1);
  EXPECT_EQ(out.iout[1][0].max, 3);
}

TEST(JoinAggregator, GlobalEmptyEmitsOneZeroGroup) {
  const std::vector<std::int64_t> vals = {1, 2};
  JoinAggregator agg({{AggInput::from(std::span(vals)), false}});
  const GroupedAggs out = agg.finish();
  ASSERT_EQ(out.group_count(), 1u);
  EXPECT_EQ(out.counts[0], 0u);
  EXPECT_EQ(out.iout[0][0].sum, 0);
  EXPECT_EQ(out.iout[0][0].min, 0);
}

TEST(JoinAggregator, GroupedMatchesManualAccumulation) {
  // Probe-side int keys, one probe input and one build-side double input,
  // checked against a scalar re-computation (dense and hash strategies).
  Pcg32 rng(77);
  std::vector<std::int32_t> keys(500);
  std::vector<std::int64_t> vals(500);
  std::vector<double> weights(40);
  for (auto& k : keys) k = static_cast<std::int32_t>(rng.next_bounded(7));
  for (auto& v : vals) v = rng.next_in_range(-50, 50);
  for (auto& w : weights) w = rng.next_double();
  std::vector<std::uint32_t> b, p;
  for (int i = 0; i < 2000; ++i) {
    b.push_back(rng.next_bounded(40));
    p.push_back(rng.next_bounded(500));
  }
  for (const bool force_hash : {false, true}) {
    const KeyRange range{!force_hash, 0, 6, 7};
    JoinAggregator agg({{AggInput::from(std::span(vals)), false},
                        {AggInput::from(std::span(weights)), true}},
                       {{AggInput::from(std::span(keys)), false, 0, 1}},
                       range);
    agg.add_block(b.data(), p.data(), b.size());
    const GroupedAggs out = agg.finish();

    std::map<std::int64_t, std::pair<std::int64_t, double>> want;  // sums
    std::map<std::int64_t, std::uint64_t> want_count;
    for (std::size_t i = 0; i < b.size(); ++i) {
      const std::int64_t k = keys[p[i]];
      want[k].first += vals[p[i]];
      want[k].second += weights[b[i]];
      ++want_count[k];
    }
    ASSERT_EQ(out.group_count(), want.size());
    for (std::size_t g = 0; g < out.group_count(); ++g) {
      const std::int64_t k = out.keys[g];
      EXPECT_EQ(out.counts[g], want_count[k]) << k;
      EXPECT_EQ(out.iout[0][g].sum, want[k].first) << k;
      EXPECT_DOUBLE_EQ(out.dout[1][g].sum, want[k].second) << k;
    }
  }
}

TEST(JoinAggregator, MergePartialsEqualsSinglePass) {
  Pcg32 rng(88);
  std::vector<std::int64_t> keys(300), vals(300);
  for (auto& k : keys) k = rng.next_in_range(-3, 3);
  for (auto& v : vals) v = rng.next_in_range(0, 99);
  std::vector<std::uint32_t> b(1000), p(1000);
  for (auto& x : b) x = rng.next_bounded(300);
  for (auto& x : p) x = rng.next_bounded(300);

  const KeyRange range{true, -3, 3, 7};
  const auto make = [&] {
    return JoinAggregator({{AggInput::from(std::span(vals)), false}},
                          {{AggInput::from(std::span(keys)), false, 0, 1}},
                          range);
  };
  JoinAggregator whole = make();
  whole.add_block(b.data(), p.data(), b.size());

  JoinAggregator merged = make();
  JoinAggregator part1 = make();
  JoinAggregator part2 = make();
  part1.add_block(b.data(), p.data(), 400);
  part2.add_block(b.data() + 400, p.data() + 400, 600);
  merged.merge_from(part1);
  merged.merge_from(part2);

  const GroupedAggs a = whole.finish();
  const GroupedAggs c = merged.finish();
  ASSERT_EQ(a.group_count(), c.group_count());
  EXPECT_EQ(whole.pair_count(), merged.pair_count());
  for (std::size_t g = 0; g < a.group_count(); ++g) {
    EXPECT_EQ(a.keys[g], c.keys[g]);
    EXPECT_EQ(a.counts[g], c.counts[g]);
    EXPECT_EQ(a.iout[0][g].sum, c.iout[0][g].sum);
    EXPECT_EQ(a.iout[0][g].min, c.iout[0][g].min);
    EXPECT_EQ(a.iout[0][g].max, c.iout[0][g].max);
  }
}

}  // namespace
}  // namespace eidb::exec
