#include "exec/fused.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "exec/scan_kernels.hpp"
#include "util/rng.hpp"

namespace eidb::exec {
namespace {

TEST(Fused, FilterAggregateMatchesPipeline) {
  Pcg32 rng(3);
  std::vector<std::int64_t> keys(50000), values(50000);
  for (auto& k : keys) k = rng.next_bounded(1000);
  for (auto& v : values) v = rng.next_in_range(-500, 500);

  const AggResult fused = fused_filter_aggregate(keys, 100, 399, values);

  BitVector sel(keys.size());
  scan_bitmap_best64(keys, 100, 399, sel);
  const AggResult pipeline = aggregate_selected(values, sel);

  EXPECT_EQ(fused.count, pipeline.count);
  EXPECT_EQ(fused.sum, pipeline.sum);
  EXPECT_EQ(fused.min, pipeline.min);
  EXPECT_EQ(fused.max, pipeline.max);
}

TEST(Fused, SelfAggregate) {
  const std::vector<std::int64_t> v = {1, 5, 10, 15, 20};
  const AggResult r = fused_filter_aggregate_self(v, 5, 15);
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.sum, 30);
  EXPECT_EQ(r.min, 5);
  EXPECT_EQ(r.max, 15);
}

TEST(Fused, EmptyMatchSet) {
  const std::vector<std::int64_t> v = {1, 2, 3};
  const AggResult r = fused_filter_aggregate_self(v, 100, 200);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.min, 0);
  EXPECT_EQ(r.max, 0);
}

TEST(Fused, NegativeBounds) {
  const std::vector<std::int64_t> v = {-10, -5, 0, 5};
  const AggResult r = fused_filter_aggregate_self(v, -7, 1);
  EXPECT_EQ(r.count, 2u);
  EXPECT_EQ(r.sum, -5);
}

TEST(MaskedScan, EquivalentToUnmaskedConjunction) {
  Pcg32 rng(4);
  std::vector<std::int64_t> a(30000), b(30000);
  for (auto& x : a) x = rng.next_bounded(1000);
  for (auto& x : b) x = rng.next_bounded(1000);

  // Reference: two full bitmaps ANDed.
  BitVector ref(a.size());
  scan_bitmap_best64(a, 0, 99, ref);
  BitVector rb(b.size());
  scan_bitmap_best64(b, 500, 599, rb);
  ref &= rb;

  // Masked: first predicate full, second short-circuit.
  BitVector sel(a.size());
  scan_bitmap_best64(a, 0, 99, sel);
  scan_bitmap_masked64(b, 500, 599, sel);

  EXPECT_EQ(sel, ref);
}

TEST(MaskedScan, SkipsDeadWords) {
  // First predicate kills everything except one narrow region.
  std::vector<std::int64_t> a(64 * 100, 0);
  for (std::size_t i = 64 * 50; i < 64 * 51; ++i) a[i] = 7;
  std::vector<std::int64_t> b(a.size());
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::int64_t>(i % 3);

  BitVector sel(a.size());
  scan_bitmap_best64(a, 7, 7, sel);  // only word 50 live
  MaskedScanStats stats;
  scan_bitmap_masked64_counted(b, 0, 1, sel, stats);
  EXPECT_EQ(stats.words_total, 100u);
  EXPECT_EQ(stats.words_skipped, 99u);
  // Correctness in the surviving word.
  for (std::size_t i = 64 * 50; i < 64 * 51; ++i)
    EXPECT_EQ(sel.test(i), b[i] <= 1);
}

TEST(MaskedScan, AllLiveSkipsNothing) {
  Pcg32 rng(5);
  std::vector<std::int64_t> v(6400);
  for (auto& x : v) x = rng.next_bounded(10);
  BitVector sel(v.size());
  sel.set_all();
  MaskedScanStats stats;
  scan_bitmap_masked64_counted(v, 0, 9, sel, stats);
  EXPECT_EQ(stats.words_skipped, 0u);
  EXPECT_EQ(sel.count(), v.size());
}

}  // namespace
}  // namespace eidb::exec
