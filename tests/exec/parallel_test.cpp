#include "exec/parallel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "exec/scan_kernels.hpp"
#include "util/rng.hpp"

namespace eidb::exec {
namespace {

std::vector<std::int64_t> random_i64(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.next_bounded(100000);
  return v;
}

TEST(ParallelScan, MatchesSerialKernel64) {
  sched::ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{0}, std::size_t{64},
                              std::size_t{1000}, std::size_t{300000}}) {
    const auto v = random_i64(n, 1 + n);
    BitVector parallel(n), serial(n);
    parallel_scan_bitmap64(pool, v, 1000, 50000, parallel, 64 * 128);
    scan_bitmap_best64(v, 1000, 50000, serial);
    EXPECT_EQ(parallel, serial) << "n=" << n;
  }
}

TEST(ParallelScan, MatchesSerialKernel32) {
  sched::ThreadPool pool(4);
  Pcg32 rng(9);
  std::vector<std::int32_t> v(250000);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next_bounded(1000));
  BitVector parallel(v.size()), serial(v.size());
  parallel_scan_bitmap32(pool, v, 100, 499, parallel, 64 * 100);
  scan_bitmap_best(v, 100, 499, serial);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelScan, UnalignedMorselSizeIsAligned) {
  sched::ThreadPool pool(2);
  const auto v = random_i64(10000, 3);
  BitVector parallel(v.size()), serial(v.size());
  parallel_scan_bitmap64(pool, v, 0, 50000, parallel, 100);  // not 64-aligned
  scan_bitmap_best64(v, 0, 50000, serial);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelAggregate, MatchesSerial) {
  sched::ThreadPool pool(4);
  const auto v = random_i64(500000, 5);
  BitVector sel(v.size());
  Pcg32 rng(6);
  for (std::size_t i = 0; i < sel.size(); ++i)
    if (rng.next_double() < 0.4) sel.set(i);

  const AggResult serial = aggregate_selected(v, sel);
  const AggResult parallel = parallel_aggregate(pool, v, sel, 64 * 512);
  EXPECT_EQ(parallel.count, serial.count);
  EXPECT_EQ(parallel.sum, serial.sum);
  EXPECT_EQ(parallel.min, serial.min);
  EXPECT_EQ(parallel.max, serial.max);
}

TEST(ParallelAggregate, EmptySelection) {
  sched::ThreadPool pool(2);
  const auto v = random_i64(1000, 7);
  const BitVector sel(v.size());
  const AggResult r = parallel_aggregate(pool, v, sel);
  EXPECT_EQ(r.count, 0u);
}

TEST(ParallelGroupAggregate, MatchesSerial) {
  sched::ThreadPool pool(4);
  Pcg32 rng(11);
  std::vector<std::int64_t> keys(300000), vals(300000);
  for (auto& k : keys) k = rng.next_bounded(500);
  for (auto& x : vals) x = rng.next_in_range(-100, 100);
  BitVector sel(keys.size());
  for (std::size_t i = 0; i < sel.size(); ++i)
    if (rng.next_double() < 0.6) sel.set(i);

  const auto serial = group_aggregate(keys, vals, sel);
  const auto parallel = parallel_group_aggregate(pool, keys, vals, sel);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t g = 0; g < serial.size(); ++g) {
    EXPECT_EQ(parallel[g].key, serial[g].key);
    EXPECT_EQ(parallel[g].agg.count, serial[g].agg.count);
    EXPECT_EQ(parallel[g].agg.sum, serial[g].agg.sum);
    EXPECT_EQ(parallel[g].agg.min, serial[g].agg.min);
    EXPECT_EQ(parallel[g].agg.max, serial[g].agg.max);
  }
}

TEST(ParallelGroupAggregate, SingleMorselDegenerate) {
  sched::ThreadPool pool(4);
  const std::vector<std::int64_t> keys = {1, 2, 1};
  const std::vector<std::int64_t> vals = {10, 20, 30};
  BitVector sel(3);
  sel.set_all();
  const auto rows = parallel_group_aggregate(pool, keys, vals, sel);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].agg.sum, 40);
}

// Repeated runs are deterministic despite thread scheduling (merge is
// key-ordered).
TEST(ParallelGroupAggregate, DeterministicAcrossRuns) {
  sched::ThreadPool pool(4);
  const auto keys = random_i64(100000, 13);
  const auto vals = random_i64(100000, 14);
  BitVector sel(keys.size());
  sel.set_all();
  const auto a = parallel_group_aggregate(pool, keys, vals, sel);
  const auto b = parallel_group_aggregate(pool, keys, vals, sel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].agg.sum, b[i].agg.sum);
  }
}

}  // namespace
}  // namespace eidb::exec
