#include "exec/expression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace eidb::exec {
namespace {

storage::Table make_table() {
  using storage::Column;
  storage::Table t("t", storage::Schema({{"a", storage::TypeId::kInt64},
                                         {"b", storage::TypeId::kDouble},
                                         {"c", storage::TypeId::kInt32},
                                         {"s", storage::TypeId::kString}}));
  const std::vector<std::int64_t> a = {1, 2, 3, 4};
  const std::vector<double> b = {0.5, 1.5, 2.5, 3.5};
  const std::vector<std::int32_t> c = {10, 20, 30, 40};
  t.set_column(0, Column::from_int64("a", a));
  t.set_column(1, Column::from_double("b", b));
  t.set_column(2, Column::from_int32("c", c));
  t.set_column(3, Column::from_strings("s", {"x", "y", "z", "w"}));
  return t;
}

TEST(Expression, ColumnLeaf) {
  const auto t = make_table();
  std::vector<double> out;
  evaluate_expression(*Expr::column("b"), t, out);
  EXPECT_EQ(out, (std::vector<double>{0.5, 1.5, 2.5, 3.5}));
}

TEST(Expression, IntColumnsWiden) {
  const auto t = make_table();
  std::vector<double> out;
  evaluate_expression(*Expr::column("a"), t, out);
  EXPECT_EQ(out, (std::vector<double>{1, 2, 3, 4}));
  evaluate_expression(*Expr::column("c"), t, out);
  EXPECT_EQ(out, (std::vector<double>{10, 20, 30, 40}));
}

TEST(Expression, LiteralBroadcasts) {
  const auto t = make_table();
  std::vector<double> out;
  evaluate_expression(*Expr::literal(7.5), t, out);
  EXPECT_EQ(out, (std::vector<double>{7.5, 7.5, 7.5, 7.5}));
}

TEST(Expression, Arithmetic) {
  const auto t = make_table();
  // a * b + c / 10
  const auto e = Expr::binary(
      ExprOp::kAdd, Expr::binary(ExprOp::kMul, Expr::column("a"),
                                 Expr::column("b")),
      Expr::binary(ExprOp::kDiv, Expr::column("c"), Expr::literal(10)));
  std::vector<double> out;
  evaluate_expression(*e, t, out);
  EXPECT_DOUBLE_EQ(out[0], 1 * 0.5 + 1);
  EXPECT_DOUBLE_EQ(out[3], 4 * 3.5 + 4);
}

TEST(Expression, SsbRevenueForm) {
  const auto t = make_table();
  // a * (1 - b)
  const auto e = Expr::binary(
      ExprOp::kMul, Expr::column("a"),
      Expr::binary(ExprOp::kSub, Expr::literal(1), Expr::column("b")));
  std::vector<double> out;
  evaluate_expression(*e, t, out);
  EXPECT_DOUBLE_EQ(out[1], 2 * (1 - 1.5));
}

TEST(Expression, DivisionByZeroIsIeee) {
  const auto t = make_table();
  const auto e =
      Expr::binary(ExprOp::kDiv, Expr::column("a"), Expr::literal(0));
  std::vector<double> out;
  evaluate_expression(*e, t, out);
  EXPECT_TRUE(std::isinf(out[0]));
}

TEST(Expression, StringColumnRejected) {
  const auto t = make_table();
  std::vector<double> out;
  EXPECT_THROW(evaluate_expression(*Expr::column("s"), t, out), Error);
}

TEST(Expression, UnknownColumnRejected) {
  const auto t = make_table();
  std::vector<double> out;
  EXPECT_THROW(evaluate_expression(*Expr::column("nope"), t, out), Error);
}

TEST(Expression, CollectColumnsAndToString) {
  const auto e = Expr::binary(
      ExprOp::kMul, Expr::column("revenue"),
      Expr::binary(ExprOp::kSub, Expr::literal(1), Expr::column("discount")));
  std::vector<std::string> cols;
  e->collect_columns(cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"revenue", "discount"}));
  EXPECT_EQ(e->to_string(), "(revenue * (1 - discount))");
}

}  // namespace
}  // namespace eidb::exec
