#include "exec/join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace eidb::exec {
namespace {

BitVector all_set(std::size_t n) {
  BitVector b(n);
  b.set_all();
  return b;
}

std::vector<JoinPair> normalized(std::vector<JoinPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.probe_row != b.probe_row) return a.probe_row < b.probe_row;
    return a.build_row < b.build_row;
  });
  return pairs;
}

TEST(HashJoin, SimpleMatch) {
  const std::vector<std::int64_t> build = {1, 2, 3};
  const std::vector<std::int64_t> probe = {2, 4, 1};
  const auto pairs =
      hash_join(build, all_set(3), probe, all_set(3));
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].probe_row, 0u);  // probe[0]=2 matches build[1]
  EXPECT_EQ(pairs[0].build_row, 1u);
  EXPECT_EQ(pairs[1].probe_row, 2u);  // probe[2]=1 matches build[0]
  EXPECT_EQ(pairs[1].build_row, 0u);
}

TEST(HashJoin, DuplicatesProduceCrossProduct) {
  const std::vector<std::int64_t> build = {5, 5};
  const std::vector<std::int64_t> probe = {5, 5, 5};
  const auto pairs = hash_join(build, all_set(2), probe, all_set(3));
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(HashJoin, SelectionsRestrictBothSides) {
  const std::vector<std::int64_t> build = {1, 1, 2};
  const std::vector<std::int64_t> probe = {1, 2};
  BitVector bsel(3);
  bsel.set(0);  // only build row 0
  BitVector psel(2);
  psel.set(0);  // only probe row 0
  const auto pairs = hash_join(build, bsel, probe, psel);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].build_row, 0u);
  EXPECT_EQ(pairs[0].probe_row, 0u);
}

TEST(HashJoin, NoMatches) {
  const std::vector<std::int64_t> build = {1, 2};
  const std::vector<std::int64_t> probe = {3, 4};
  EXPECT_TRUE(hash_join(build, all_set(2), probe, all_set(2)).empty());
}

TEST(HashJoin, EmptySides) {
  const std::vector<std::int64_t> none;
  const std::vector<std::int64_t> some = {1};
  EXPECT_TRUE(hash_join(none, BitVector(0), some, all_set(1)).empty());
  EXPECT_TRUE(hash_join(some, all_set(1), none, BitVector(0)).empty());
}

TEST(HashJoin, MatchesNestedLoopOracleRandomized) {
  Pcg32 rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t nb = 50 + rng.next_bounded(200);
    const std::size_t np = 50 + rng.next_bounded(200);
    std::vector<std::int64_t> build(nb), probe(np);
    for (auto& k : build) k = rng.next_bounded(40);  // dense keys: many dups
    for (auto& k : probe) k = rng.next_bounded(40);
    BitVector bsel(nb), psel(np);
    for (std::size_t i = 0; i < nb; ++i)
      if (rng.next_double() < 0.7) bsel.set(i);
    for (std::size_t i = 0; i < np; ++i)
      if (rng.next_double() < 0.7) psel.set(i);

    const auto got = normalized(hash_join(build, bsel, probe, psel));
    const auto want = normalized(nested_loop_join(build, bsel, probe, psel));
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].build_row, want[i].build_row);
      EXPECT_EQ(got[i].probe_row, want[i].probe_row);
    }
  }
}

TEST(HashJoin, NegativeKeys) {
  const std::vector<std::int64_t> build = {-7, 0, 7};
  const std::vector<std::int64_t> probe = {-7, 7};
  const auto pairs = hash_join(build, all_set(3), probe, all_set(2));
  EXPECT_EQ(pairs.size(), 2u);
}

// Regression: the preconditions used to accept a selection *larger* than
// the key span (`selection.size() >= keys.size()`), which let for_each_set
// read build_keys[i] out of bounds. They must now demand equal sizes.
TEST(HashJoinDeathTest, OversizedSelectionViolatesPrecondition) {
  const std::vector<std::int64_t> keys = {1, 2, 3};
  BitVector oversized(8);
  oversized.set_all();  // bits 3..7 would index past keys
  EXPECT_DEATH((void)hash_join(keys, oversized, keys, all_set(3)),
               "precondition");
  EXPECT_DEATH((void)hash_join(keys, all_set(3), keys, oversized),
               "precondition");
  EXPECT_DEATH((void)nested_loop_join(keys, oversized, keys, all_set(3)),
               "precondition");
  EXPECT_DEATH(
      (void)build_join_table(JoinKeys::from(std::span<const std::int64_t>(
                                 keys)),
                             oversized),
      "precondition");
}

// ---------------------------------------------------------------------------
// Block-at-a-time pipeline.
// ---------------------------------------------------------------------------

std::vector<JoinPair> collect_blocks(const JoinHashTable& table,
                                     const JoinKeys& probe,
                                     const BitVector& psel,
                                     std::uint64_t limit = 0) {
  std::vector<JoinPair> out;
  (void)probe_join_blocks(
      table, probe, psel, 0, psel.word_count(),
      [&](const std::uint32_t* b, const std::uint32_t* p, std::size_t k) {
        for (std::size_t e = 0; e < k; ++e) out.push_back({b[e], p[e]});
      },
      limit);
  return out;
}

TEST(JoinBlocks, MatchesPairJoinInOracleOrder) {
  Pcg32 rng(33);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t nb = 100 + rng.next_bounded(300);
    const std::size_t np = 100 + rng.next_bounded(500);
    std::vector<std::int64_t> build(nb), probe(np);
    for (auto& k : build) k = rng.next_bounded(60);
    for (auto& k : probe) k = rng.next_bounded(60);
    BitVector bsel(nb), psel(np);
    for (std::size_t i = 0; i < nb; ++i)
      if (rng.next_double() < 0.6) bsel.set(i);
    for (std::size_t i = 0; i < np; ++i)
      if (rng.next_double() < 0.6) psel.set(i);

    const auto table =
        build_join_table(JoinKeys::from(std::span<const std::int64_t>(build)),
                         bsel);
    const auto got = collect_blocks(
        table, JoinKeys::from(std::span<const std::int64_t>(probe)), psel);
    // hash_join's output is sorted (probe asc, build asc); the block
    // pipeline's reverse-insertion trick must produce the same order
    // WITHOUT a sort.
    const auto want = hash_join(build, bsel, probe, psel);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].build_row, want[i].build_row) << i;
      EXPECT_EQ(got[i].probe_row, want[i].probe_row) << i;
    }
  }
}

TEST(JoinBlocks, PackedKeysDecodeInPlace) {
  // Pack the probe keys at 6 bits (FOR reference -3) and check the packed
  // view joins identically to the plain spans.
  Pcg32 rng(44);
  std::vector<std::int64_t> build(200), probe(700);
  for (auto& k : build) k = static_cast<std::int64_t>(rng.next_bounded(50)) - 3;
  for (auto& k : probe) k = static_cast<std::int64_t>(rng.next_bounded(50)) - 3;
  std::vector<std::uint64_t> shifted;
  for (const std::int64_t k : probe)
    shifted.push_back(static_cast<std::uint64_t>(k + 3));
  const auto packed = storage::bitpack(shifted, 6);
  const storage::PackedView view{packed, 6, -3, probe.size()};

  const auto table = build_join_table(
      JoinKeys::from(std::span<const std::int64_t>(build)),
      all_set(build.size()));
  const auto plain = collect_blocks(
      table, JoinKeys::from(std::span<const std::int64_t>(probe)),
      all_set(probe.size()));
  const auto via_packed =
      collect_blocks(table, JoinKeys::from(view), all_set(probe.size()));
  ASSERT_EQ(plain.size(), via_packed.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].build_row, via_packed[i].build_row) << i;
    EXPECT_EQ(plain[i].probe_row, via_packed[i].probe_row) << i;
  }
}

TEST(JoinBlocks, DenseTableMatchesHashTable) {
  Pcg32 rng(66);
  std::vector<std::int64_t> build(400), probe(2000);
  for (auto& k : build) k = static_cast<std::int64_t>(rng.next_bounded(90)) - 40;
  for (auto& k : probe)
    k = static_cast<std::int64_t>(rng.next_bounded(140)) - 60;  // some misses
  BitVector bsel(build.size());
  for (std::size_t i = 0; i < build.size(); ++i)
    if (rng.next_double() < 0.7) bsel.set(i);
  const BitVector psel = all_set(probe.size());
  const JoinKeys bk = JoinKeys::from(std::span<const std::int64_t>(build));
  const JoinKeys pk = JoinKeys::from(std::span<const std::int64_t>(probe));

  const auto hashed = build_join_table(bk, bsel);
  const DenseJoinTable dense =
      build_dense_join_table(bk, bsel, /*min_key=*/-40, /*domain=*/90);
  const auto collect_dense = [&] {
    std::vector<JoinPair> out;
    (void)probe_join_blocks(
        dense, pk, psel, 0, psel.word_count(),
        [&](const std::uint32_t* b, const std::uint32_t* p, std::size_t k) {
          for (std::size_t e = 0; e < k; ++e) out.push_back({b[e], p[e]});
        });
    return out;
  };
  const auto want = collect_blocks(hashed, pk, psel);
  const auto got = collect_dense();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].build_row, want[i].build_row) << i;
    EXPECT_EQ(got[i].probe_row, want[i].probe_row) << i;
  }
}

TEST(JoinBlocks, LimitStopsEarly) {
  const std::vector<std::int64_t> build = {5, 5, 5};
  const std::vector<std::int64_t> probe = {5, 5, 5, 5};
  const auto table = build_join_table(
      JoinKeys::from(std::span<const std::int64_t>(build)),
      all_set(build.size()));
  const auto limited = collect_blocks(
      table, JoinKeys::from(std::span<const std::int64_t>(probe)),
      all_set(probe.size()), 7);
  EXPECT_EQ(limited.size(), 7u);  // of 12 possible pairs
}

TEST(JoinBlocks, WordRangesPartitionTheProbe) {
  // Driving disjoint word ranges (the morsel-parallel decomposition) must
  // cover exactly the full probe once.
  Pcg32 rng(55);
  std::vector<std::int64_t> build(64), probe(1000);
  for (auto& k : build) k = rng.next_bounded(30);
  for (auto& k : probe) k = rng.next_bounded(30);
  const BitVector psel = all_set(probe.size());
  const auto table = build_join_table(
      JoinKeys::from(std::span<const std::int64_t>(build)),
      all_set(build.size()));
  const JoinKeys pk = JoinKeys::from(std::span<const std::int64_t>(probe));

  std::vector<JoinPair> whole = collect_blocks(table, pk, psel);
  std::vector<JoinPair> split;
  for (const auto& [wb, we] :
       std::vector<std::pair<std::size_t, std::size_t>>{{0, 4}, {4, 9},
                                                        {9, 16}}) {
    (void)probe_join_blocks(
        table, pk, psel, wb, we,
        [&](const std::uint32_t* b, const std::uint32_t* p, std::size_t k) {
          for (std::size_t e = 0; e < k; ++e) split.push_back({b[e], p[e]});
        });
  }
  ASSERT_EQ(split.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(split[i].build_row, whole[i].build_row) << i;
    EXPECT_EQ(split[i].probe_row, whole[i].probe_row) << i;
  }
}

}  // namespace
}  // namespace eidb::exec
