#include "exec/join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace eidb::exec {
namespace {

BitVector all_set(std::size_t n) {
  BitVector b(n);
  b.set_all();
  return b;
}

std::vector<JoinPair> normalized(std::vector<JoinPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.probe_row != b.probe_row) return a.probe_row < b.probe_row;
    return a.build_row < b.build_row;
  });
  return pairs;
}

TEST(HashJoin, SimpleMatch) {
  const std::vector<std::int64_t> build = {1, 2, 3};
  const std::vector<std::int64_t> probe = {2, 4, 1};
  const auto pairs =
      hash_join(build, all_set(3), probe, all_set(3));
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].probe_row, 0u);  // probe[0]=2 matches build[1]
  EXPECT_EQ(pairs[0].build_row, 1u);
  EXPECT_EQ(pairs[1].probe_row, 2u);  // probe[2]=1 matches build[0]
  EXPECT_EQ(pairs[1].build_row, 0u);
}

TEST(HashJoin, DuplicatesProduceCrossProduct) {
  const std::vector<std::int64_t> build = {5, 5};
  const std::vector<std::int64_t> probe = {5, 5, 5};
  const auto pairs = hash_join(build, all_set(2), probe, all_set(3));
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(HashJoin, SelectionsRestrictBothSides) {
  const std::vector<std::int64_t> build = {1, 1, 2};
  const std::vector<std::int64_t> probe = {1, 2};
  BitVector bsel(3);
  bsel.set(0);  // only build row 0
  BitVector psel(2);
  psel.set(0);  // only probe row 0
  const auto pairs = hash_join(build, bsel, probe, psel);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].build_row, 0u);
  EXPECT_EQ(pairs[0].probe_row, 0u);
}

TEST(HashJoin, NoMatches) {
  const std::vector<std::int64_t> build = {1, 2};
  const std::vector<std::int64_t> probe = {3, 4};
  EXPECT_TRUE(hash_join(build, all_set(2), probe, all_set(2)).empty());
}

TEST(HashJoin, EmptySides) {
  const std::vector<std::int64_t> none;
  const std::vector<std::int64_t> some = {1};
  EXPECT_TRUE(hash_join(none, BitVector(0), some, all_set(1)).empty());
  EXPECT_TRUE(hash_join(some, all_set(1), none, BitVector(0)).empty());
}

TEST(HashJoin, MatchesNestedLoopOracleRandomized) {
  Pcg32 rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t nb = 50 + rng.next_bounded(200);
    const std::size_t np = 50 + rng.next_bounded(200);
    std::vector<std::int64_t> build(nb), probe(np);
    for (auto& k : build) k = rng.next_bounded(40);  // dense keys: many dups
    for (auto& k : probe) k = rng.next_bounded(40);
    BitVector bsel(nb), psel(np);
    for (std::size_t i = 0; i < nb; ++i)
      if (rng.next_double() < 0.7) bsel.set(i);
    for (std::size_t i = 0; i < np; ++i)
      if (rng.next_double() < 0.7) psel.set(i);

    const auto got = normalized(hash_join(build, bsel, probe, psel));
    const auto want = normalized(nested_loop_join(build, bsel, probe, psel));
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].build_row, want[i].build_row);
      EXPECT_EQ(got[i].probe_row, want[i].probe_row);
    }
  }
}

TEST(HashJoin, NegativeKeys) {
  const std::vector<std::int64_t> build = {-7, 0, 7};
  const std::vector<std::int64_t> probe = {-7, 7};
  const auto pairs = hash_join(build, all_set(3), probe, all_set(2));
  EXPECT_EQ(pairs.size(), 2u);
}

}  // namespace
}  // namespace eidb::exec
