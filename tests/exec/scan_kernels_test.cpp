#include "exec/scan_kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "storage/bitpack.hpp"
#include "util/rng.hpp"

namespace eidb::exec {
namespace {

std::vector<std::int32_t> random_i32(std::size_t n, std::int32_t lo,
                                     std::int32_t hi, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int32_t>(rng.next_in_range(lo, hi));
  return v;
}

std::vector<std::int64_t> random_i64(std::size_t n, std::int64_t lo,
                                     std::int64_t hi, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.next_in_range(lo, hi);
  return v;
}

BitVector reference_bitmap32(const std::vector<std::int32_t>& v,
                             std::int32_t lo, std::int32_t hi) {
  BitVector b(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] >= lo && v[i] <= hi) b.set(i);
  return b;
}

BitVector reference_bitmap64(const std::vector<std::int64_t>& v,
                             std::int64_t lo, std::int64_t hi) {
  BitVector b(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] >= lo && v[i] <= hi) b.set(i);
  return b;
}

TEST(ScanKernels, VariantNames) {
  EXPECT_EQ(variant_name(ScanVariant::kBranching), "branching");
  EXPECT_EQ(variant_name(ScanVariant::kAvx512), "avx512");
}

TEST(ScanKernels, IndexKernelsAgreeWithReference) {
  const auto v = random_i32(5000, -100, 100, 1);
  std::vector<std::uint32_t> a(v.size()), b(v.size());
  const std::size_t na = scan_branching(v, -10, 25, a.data());
  const std::size_t nb = scan_predicated(v, -10, 25, b.data());
  ASSERT_EQ(na, nb);
  for (std::size_t i = 0; i < na; ++i) EXPECT_EQ(a[i], b[i]);
  const BitVector ref = reference_bitmap32(v, -10, 25);
  EXPECT_EQ(na, ref.count());
}

TEST(ScanKernels, IndexKernels64AgreeWithReference) {
  const auto v = random_i64(5000, -1000000, 1000000, 2);
  std::vector<std::uint32_t> a(v.size()), b(v.size());
  const std::size_t na = scan_branching64(v, -5000, 700000, a.data());
  const std::size_t nb = scan_predicated64(v, -5000, 700000, b.data());
  ASSERT_EQ(na, nb);
  for (std::size_t i = 0; i < na; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ScanKernels, EmptyInput) {
  const std::vector<std::int32_t> v;
  std::vector<std::uint32_t> out(1);
  EXPECT_EQ(scan_branching(v, 0, 10, out.data()), 0u);
  EXPECT_EQ(scan_predicated(v, 0, 10, out.data()), 0u);
  BitVector b(0);
  scan_bitmap_scalar(v, 0, 10, b);  // must not crash
}

TEST(ScanKernels, EmptyRangeSelectsNothing) {
  const auto v = random_i32(1000, 0, 100, 3);
  BitVector b(v.size());
  scan_bitmap_scalar(v, 200, 300, b);
  EXPECT_EQ(b.count(), 0u);
}

TEST(ScanKernels, FullRangeSelectsAll) {
  const auto v = random_i32(1000, -50, 50, 4);
  BitVector b(v.size());
  scan_bitmap_best(v, -50, 50, b);
  EXPECT_EQ(b.count(), v.size());
}

TEST(ScanKernels, PointPredicate) {
  std::vector<std::int32_t> v = {5, 7, 5, 3, 5};
  BitVector b(v.size());
  scan_bitmap_best(v, 5, 5, b);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(2));
  EXPECT_TRUE(b.test(4));
}

TEST(ScanKernels, NegativeBoundsHandled) {
  // The unsigned-subtraction trick must stay correct across zero.
  const auto v = random_i32(4096, -1000, 1000, 5);
  const BitVector ref = reference_bitmap32(v, -500, -100);
  BitVector scalar(v.size()), avx2(v.size()), avx512(v.size());
  scan_bitmap_scalar(v, -500, -100, scalar);
  scan_bitmap_avx2(v, -500, -100, avx2);
  scan_bitmap_avx512(v, -500, -100, avx512);
  EXPECT_EQ(scalar, ref);
  EXPECT_EQ(avx2, ref);
  EXPECT_EQ(avx512, ref);
}

TEST(ScanKernels, Int64ExtremeBounds) {
  std::vector<std::int64_t> v = {std::numeric_limits<std::int64_t>::min(), -1,
                                 0, 1,
                                 std::numeric_limits<std::int64_t>::max()};
  BitVector b(v.size());
  scan_bitmap_best64(v, std::numeric_limits<std::int64_t>::min(),
                     std::numeric_limits<std::int64_t>::max(), b);
  EXPECT_EQ(b.count(), v.size());
  BitVector c(v.size());
  scan_bitmap_best64(v, 0, std::numeric_limits<std::int64_t>::max(), c);
  EXPECT_EQ(c.count(), 3u);
}

TEST(ScanKernels, DoubleRange) {
  std::vector<double> v = {0.5, 1.5, 2.5, -3.0};
  BitVector b(v.size());
  scan_bitmap_double(v, 0.0, 2.0, b);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(1));
  EXPECT_FALSE(b.test(2));
  EXPECT_FALSE(b.test(3));
}

TEST(ScanKernels, ChooseVariantPrefersSimdWhenAvailable) {
  const ScanVariant v = choose_variant(0.5);
  if (cpu_has_avx512()) {
    EXPECT_EQ(v, ScanVariant::kAvx512);
  } else if (cpu_has_avx2()) {
    EXPECT_EQ(v, ScanVariant::kAvx2);
  } else {
    EXPECT_EQ(v, ScanVariant::kPredicated);
  }
}

// Property sweep: every bitmap kernel matches the reference across sizes
// (covering SIMD-block and tail paths) and selectivities.
struct SweepCase {
  std::size_t n;
  double selectivity;
};

class BitmapKernelSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BitmapKernelSweep, AllKernelsMatchReference32) {
  const auto [n, sel] = GetParam();
  const auto v = random_i32(n, 0, 9999, 17 + n);
  const auto hi = static_cast<std::int32_t>(sel * 10000) - 1;
  const BitVector ref = reference_bitmap32(v, 0, hi);
  BitVector scalar(n), avx2(n), avx512(n);
  scan_bitmap_scalar(v, 0, hi, scalar);
  scan_bitmap_avx2(v, 0, hi, avx2);
  scan_bitmap_avx512(v, 0, hi, avx512);
  EXPECT_EQ(scalar, ref);
  EXPECT_EQ(avx2, ref);
  EXPECT_EQ(avx512, ref);
  std::vector<std::uint32_t> idx(n);
  EXPECT_EQ(scan_branching(v, 0, hi, idx.data()), ref.count());
  EXPECT_EQ(scan_predicated(v, 0, hi, idx.data()), ref.count());
}

TEST_P(BitmapKernelSweep, AllKernelsMatchReference64) {
  const auto [n, sel] = GetParam();
  const auto v = random_i64(n, 0, 999999, 31 + n);
  const auto hi = static_cast<std::int64_t>(sel * 1000000) - 1;
  const BitVector ref = reference_bitmap64(v, 0, hi);
  BitVector scalar(n), avx2(n), avx512(n);
  scan_bitmap_scalar64(v, 0, hi, scalar);
  scan_bitmap_avx2_64(v, 0, hi, avx2);
  scan_bitmap_avx512_64(v, 0, hi, avx512);
  EXPECT_EQ(scalar, ref);
  EXPECT_EQ(avx2, ref);
  EXPECT_EQ(avx512, ref);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSelectivities, BitmapKernelSweep,
    ::testing::Values(SweepCase{1, 0.5}, SweepCase{63, 0.5},
                      SweepCase{64, 0.5}, SweepCase{65, 0.1},
                      SweepCase{127, 0.9}, SweepCase{128, 0.01},
                      SweepCase{1000, 0.25}, SweepCase{4096, 0.5},
                      SweepCase{10000, 0.99}, SweepCase{100000, 0.001}));

// Packed scans agree with unpack-then-scan across widths.
class PackedScanSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PackedScanSweep, MatchesUnpackedReference) {
  const unsigned bits = GetParam();
  constexpr std::size_t kN = 64 * 7 + 13;
  Pcg32 rng(100 + bits);
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  std::vector<std::uint64_t> values(kN);
  for (auto& x : values) x = rng.next64() & mask;
  const auto packed = storage::bitpack(values, bits);

  const std::uint64_t lo = mask / 4, hi = mask / 2 + 1;
  BitVector got(kN);
  scan_packed_bitmap(packed, bits, kN, lo, hi, got);

  BitVector ref(kN);
  for (std::size_t i = 0; i < kN; ++i)
    if (values[i] >= lo && values[i] <= hi) ref.set(i);
  EXPECT_EQ(got, ref) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Widths, PackedScanSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 11u, 13u, 16u,
                                           21u, 24u, 32u, 40u, 48u, 63u, 64u));

}  // namespace
}  // namespace eidb::exec
