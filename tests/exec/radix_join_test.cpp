#include "exec/radix_join.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eidb::exec {
namespace {

BitVector all_set(std::size_t n) {
  BitVector b(n);
  b.set_all();
  return b;
}

void expect_same(const std::vector<JoinPair>& a,
                 const std::vector<JoinPair>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].build_row, b[i].build_row) << i;
    EXPECT_EQ(a[i].probe_row, b[i].probe_row) << i;
  }
}

TEST(RadixJoin, MatchesPlainHashJoin) {
  Pcg32 rng(5);
  std::vector<std::int64_t> build(5000), probe(20000);
  for (auto& k : build) k = rng.next_bounded(2000);
  for (auto& k : probe) k = rng.next_bounded(2000);
  const auto want =
      hash_join(build, all_set(build.size()), probe, all_set(probe.size()));
  const auto got = radix_hash_join(build, all_set(build.size()), probe,
                                   all_set(probe.size()), 6);
  expect_same(got, want);
}

TEST(RadixJoin, RespectsSelections) {
  Pcg32 rng(6);
  std::vector<std::int64_t> build(1000), probe(1000);
  for (auto& k : build) k = rng.next_bounded(100);
  for (auto& k : probe) k = rng.next_bounded(100);
  BitVector bsel(build.size()), psel(probe.size());
  for (std::size_t i = 0; i < build.size(); ++i)
    if (rng.next_double() < 0.5) bsel.set(i);
  for (std::size_t i = 0; i < probe.size(); ++i)
    if (rng.next_double() < 0.5) psel.set(i);
  expect_same(radix_hash_join(build, bsel, probe, psel, 4),
              hash_join(build, bsel, probe, psel));
}

TEST(RadixJoin, ParallelPoolMatchesSerial) {
  Pcg32 rng(7);
  std::vector<std::int64_t> build(8000), probe(30000);
  for (auto& k : build) k = rng.next_bounded(5000);
  for (auto& k : probe) k = rng.next_bounded(5000);
  sched::ThreadPool pool(4);
  const auto serial = radix_hash_join(build, all_set(build.size()), probe,
                                      all_set(probe.size()), 5, nullptr);
  const auto parallel = radix_hash_join(build, all_set(build.size()), probe,
                                        all_set(probe.size()), 5, &pool);
  expect_same(parallel, serial);
}

TEST(RadixJoin, SkewedKeysStillCorrect) {
  // 90% of probes hit one hot key: hash-based partitioning keeps it in a
  // single partition, correctness must hold regardless.
  Pcg32 rng(8);
  std::vector<std::int64_t> build = {42, 1, 2, 3};
  std::vector<std::int64_t> probe(10000);
  for (auto& k : probe)
    k = rng.next_double() < 0.9 ? 42 : rng.next_bounded(10);
  expect_same(radix_hash_join(build, all_set(build.size()), probe,
                              all_set(probe.size()), 3),
              hash_join(build, all_set(build.size()), probe,
                        all_set(probe.size())));
}

TEST(RadixJoin, RadixBitsSweep) {
  Pcg32 rng(9);
  std::vector<std::int64_t> build(2000), probe(2000);
  for (auto& k : build) k = rng.next_bounded(500);
  for (auto& k : probe) k = rng.next_bounded(500);
  const auto want =
      hash_join(build, all_set(build.size()), probe, all_set(probe.size()));
  for (const unsigned bits : {1u, 2u, 4u, 8u, 12u}) {
    expect_same(radix_hash_join(build, all_set(build.size()), probe,
                                all_set(probe.size()), bits),
                want);
  }
}

TEST(RadixJoin, EmptyInputs) {
  const std::vector<std::int64_t> none;
  const std::vector<std::int64_t> some = {1, 2};
  EXPECT_TRUE(radix_hash_join(none, BitVector(0), some, all_set(2)).empty());
  EXPECT_TRUE(radix_hash_join(some, all_set(2), none, BitVector(0)).empty());
}

}  // namespace
}  // namespace eidb::exec
