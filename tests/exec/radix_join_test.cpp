#include "exec/radix_join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace eidb::exec {
namespace {

BitVector all_set(std::size_t n) {
  BitVector b(n);
  b.set_all();
  return b;
}

void expect_same(const std::vector<JoinPair>& a,
                 const std::vector<JoinPair>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].build_row, b[i].build_row) << i;
    EXPECT_EQ(a[i].probe_row, b[i].probe_row) << i;
  }
}

TEST(RadixJoin, MatchesPlainHashJoin) {
  Pcg32 rng(5);
  std::vector<std::int64_t> build(5000), probe(20000);
  for (auto& k : build) k = rng.next_bounded(2000);
  for (auto& k : probe) k = rng.next_bounded(2000);
  const auto want =
      hash_join(build, all_set(build.size()), probe, all_set(probe.size()));
  const auto got = radix_hash_join(build, all_set(build.size()), probe,
                                   all_set(probe.size()), 6);
  expect_same(got, want);
}

TEST(RadixJoin, RespectsSelections) {
  Pcg32 rng(6);
  std::vector<std::int64_t> build(1000), probe(1000);
  for (auto& k : build) k = rng.next_bounded(100);
  for (auto& k : probe) k = rng.next_bounded(100);
  BitVector bsel(build.size()), psel(probe.size());
  for (std::size_t i = 0; i < build.size(); ++i)
    if (rng.next_double() < 0.5) bsel.set(i);
  for (std::size_t i = 0; i < probe.size(); ++i)
    if (rng.next_double() < 0.5) psel.set(i);
  expect_same(radix_hash_join(build, bsel, probe, psel, 4),
              hash_join(build, bsel, probe, psel));
}

TEST(RadixJoin, ParallelPoolMatchesSerial) {
  Pcg32 rng(7);
  std::vector<std::int64_t> build(8000), probe(30000);
  for (auto& k : build) k = rng.next_bounded(5000);
  for (auto& k : probe) k = rng.next_bounded(5000);
  sched::ThreadPool pool(4);
  const auto serial = radix_hash_join(build, all_set(build.size()), probe,
                                      all_set(probe.size()), 5, nullptr);
  const auto parallel = radix_hash_join(build, all_set(build.size()), probe,
                                        all_set(probe.size()), 5, &pool);
  expect_same(parallel, serial);
}

TEST(RadixJoin, SkewedKeysStillCorrect) {
  // 90% of probes hit one hot key: hash-based partitioning keeps it in a
  // single partition, correctness must hold regardless.
  Pcg32 rng(8);
  std::vector<std::int64_t> build = {42, 1, 2, 3};
  std::vector<std::int64_t> probe(10000);
  for (auto& k : probe)
    k = rng.next_double() < 0.9 ? 42 : rng.next_bounded(10);
  expect_same(radix_hash_join(build, all_set(build.size()), probe,
                              all_set(probe.size()), 3),
              hash_join(build, all_set(build.size()), probe,
                        all_set(probe.size())));
}

TEST(RadixJoin, RadixBitsSweep) {
  Pcg32 rng(9);
  std::vector<std::int64_t> build(2000), probe(2000);
  for (auto& k : build) k = rng.next_bounded(500);
  for (auto& k : probe) k = rng.next_bounded(500);
  const auto want =
      hash_join(build, all_set(build.size()), probe, all_set(probe.size()));
  for (const unsigned bits : {1u, 2u, 4u, 8u, 12u}) {
    expect_same(radix_hash_join(build, all_set(build.size()), probe,
                                all_set(probe.size()), bits),
                want);
  }
}

TEST(RadixJoin, EmptyInputs) {
  const std::vector<std::int64_t> none;
  const std::vector<std::int64_t> some = {1, 2};
  EXPECT_TRUE(radix_hash_join(none, BitVector(0), some, all_set(2)).empty());
  EXPECT_TRUE(radix_hash_join(some, all_set(2), none, BitVector(0)).empty());
}

// Regression: the partition pass used to walk the selection without any
// size contract, reading keys[i] out of bounds for oversized selections.
TEST(RadixJoinDeathTest, OversizedSelectionViolatesPrecondition) {
  const std::vector<std::int64_t> keys = {1, 2, 3};
  BitVector oversized(10);
  oversized.set_all();
  EXPECT_DEATH((void)radix_hash_join(keys, oversized, keys, all_set(3), 4),
               "precondition");
  EXPECT_DEATH((void)radix_partition(
                   JoinKeys::from(std::span<const std::int64_t>(keys)),
                   oversized, 4),
               "precondition");
}

TEST(RadixJoin, PartitionBlocksCoverEveryPairExactlyOnce) {
  // The block primitives (radix_partition + join_partition_blocks) must
  // produce the same pair multiset as the plain hash join.
  Pcg32 rng(11);
  std::vector<std::int64_t> build(3000), probe(9000);
  for (auto& k : build) k = rng.next_bounded(800);
  for (auto& k : probe) k = rng.next_bounded(800);
  BitVector bsel(build.size()), psel(probe.size());
  for (std::size_t i = 0; i < build.size(); ++i)
    if (rng.next_double() < 0.8) bsel.set(i);
  for (std::size_t i = 0; i < probe.size(); ++i)
    if (rng.next_double() < 0.8) psel.set(i);

  const auto bparts = radix_partition(
      JoinKeys::from(std::span<const std::int64_t>(build)), bsel, 5);
  const auto pparts = radix_partition(
      JoinKeys::from(std::span<const std::int64_t>(probe)), psel, 5);
  std::vector<JoinPair> got;
  std::uint64_t emitted = 0;
  for (std::size_t part = 0; part < bparts.parts.size(); ++part) {
    emitted += join_partition_blocks(
        bparts.parts[part], pparts.parts[part],
        [&](const std::uint32_t* b, const std::uint32_t* p, std::size_t k) {
          for (std::size_t e = 0; e < k; ++e) got.push_back({b[e], p[e]});
        });
  }
  EXPECT_EQ(emitted, got.size());
  std::sort(got.begin(), got.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.probe_row != b.probe_row) return a.probe_row < b.probe_row;
    return a.build_row < b.build_row;
  });
  expect_same(got, hash_join(build, bsel, probe, psel));
}

}  // namespace
}  // namespace eidb::exec
