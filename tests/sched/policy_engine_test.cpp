#include "sched/policy_engine.hpp"

#include <gtest/gtest.h>

#include "sched/scheduler.hpp"

namespace eidb::sched {
namespace {

const hw::MachineSpec kMachine = hw::MachineSpec::server();

TEST(PolicyEngine, LatencyAlwaysPicksFmax) {
  const PolicyEngine engine(kMachine, Policy::kLatency);
  for (const double power : {0.0, 50.0, 500.0})
    EXPECT_DOUBLE_EQ(engine.choose_state(power).freq_ghz,
                     kMachine.dvfs.fastest().freq_ghz);
}

TEST(PolicyEngine, ThroughputPicksEfficientStateRegardlessOfPower) {
  const PolicyEngine engine(kMachine, Policy::kThroughput);
  const double eff = engine.efficient_state().freq_ghz;
  for (const double power : {0.0, 50.0, 500.0})
    EXPECT_DOUBLE_EQ(engine.choose_state(power).freq_ghz,
                     kMachine.dvfs.at_least(eff).freq_ghz);
  EXPECT_LT(eff, kMachine.dvfs.fastest().freq_ghz);
}

TEST(PolicyEngine, EnergyCapSwitchesAtTheCap) {
  const double cap = kMachine.idle_power_w() + 20;
  const PolicyEngine engine(kMachine, Policy::kEnergyCap, cap);
  EXPECT_DOUBLE_EQ(engine.choose_state(cap - 1).freq_ghz,
                   kMachine.dvfs.fastest().freq_ghz);
  const double eff = engine.efficient_state().freq_ghz;
  EXPECT_DOUBLE_EQ(engine.choose_state(cap + 1).freq_ghz,
                   kMachine.dvfs.at_least(eff).freq_ghz);
}

TEST(PolicyEngine, SlowdownIsRelativeToFmax) {
  const PolicyEngine engine(kMachine, Policy::kThroughput);
  EXPECT_DOUBLE_EQ(engine.slowdown(kMachine.dvfs.fastest()), 1.0);
  const hw::DvfsState& slowest = kMachine.dvfs.slowest();
  EXPECT_DOUBLE_EQ(engine.slowdown(slowest),
                   kMachine.dvfs.fastest().freq_ghz / slowest.freq_ghz);
}

TEST(PolicyEngine, BusyEnergyChargesIncrementalPowerPlusDram) {
  const PolicyEngine engine(kMachine, Policy::kLatency);
  const hw::Work work{1e9, 1e8};
  const hw::DvfsState& s = kMachine.dvfs.fastest();
  const double expected =
      (s.active_power_w - kMachine.core_idle_power_w) * 2.0 +
      work.dram_bytes * kMachine.dram_energy_nj_per_byte * 1e-9;
  EXPECT_DOUBLE_EQ(engine.busy_energy_j(work, s, 2.0), expected);
}

TEST(PolicyEngine, SimulatorSharesTheEngine) {
  // The StreamScheduler must expose the very engine it schedules with —
  // the serving tier constructs its own from the same inputs, so both
  // tiers provably make identical decisions.
  StreamScheduler sim(kMachine, Policy::kEnergyCap, 100.0);
  EXPECT_EQ(sim.engine().policy(), Policy::kEnergyCap);
  EXPECT_DOUBLE_EQ(sim.engine().power_cap_w(), 100.0);
  const PolicyEngine live(kMachine, Policy::kEnergyCap, 100.0);
  for (const double power : {0.0, 90.0, 110.0, 300.0})
    EXPECT_DOUBLE_EQ(live.choose_state(power).freq_ghz,
                     sim.engine().choose_state(power).freq_ghz);
}

}  // namespace
}  // namespace eidb::sched
