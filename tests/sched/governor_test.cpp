#include "sched/governor.hpp"

#include <gtest/gtest.h>

namespace eidb::sched {
namespace {

Governor server_gov() { return Governor(hw::MachineSpec::server()); }

const hw::Work kCpuWork{5e9, 1e8};  // compute-heavy

TEST(Governor, RaceToIdleUsesFastestState) {
  const Governor gov = server_gov();
  const auto d = gov.race_to_idle(kCpuWork, 10.0);
  EXPECT_DOUBLE_EQ(d.state.freq_ghz, gov.machine().dvfs.fastest().freq_ghz);
  EXPECT_GT(d.idle_s, 0.0);
  EXPECT_NEAR(d.busy_s + d.idle_s, 10.0, 1e-9);
}

TEST(Governor, PacePicksSlowestFeasibleState) {
  const Governor gov = server_gov();
  // Generous deadline: pace should drop to the slowest state.
  const auto d = gov.pace(kCpuWork, 100.0);
  EXPECT_DOUBLE_EQ(d.state.freq_ghz, gov.machine().dvfs.slowest().freq_ghz);
  // Tight deadline: only the fastest state fits.
  const double t_fast =
      gov.machine().exec_time_s(kCpuWork, gov.machine().dvfs.fastest());
  const auto tight = gov.pace(kCpuWork, t_fast * 1.01);
  EXPECT_DOUBLE_EQ(tight.state.freq_ghz,
                   gov.machine().dvfs.fastest().freq_ghz);
}

TEST(Governor, PaceUnattainableDeadlineFallsBackToFmax) {
  const Governor gov = server_gov();
  const auto d = gov.pace(kCpuWork, 1e-9);
  EXPECT_DOUBLE_EQ(d.state.freq_ghz, gov.machine().dvfs.fastest().freq_ghz);
  EXPECT_GT(d.busy_s, 1e-9);  // missed, but still the best effort
}

TEST(Governor, BestUnderDeadlineNeverWorseThanEither) {
  const Governor gov = server_gov();
  for (const double deadline : {2.0, 3.0, 5.0, 10.0, 30.0}) {
    const auto race = gov.race_to_idle(kCpuWork, deadline);
    const auto paced = gov.pace(kCpuWork, deadline);
    const auto best = gov.best_under_deadline(kCpuWork, deadline);
    EXPECT_LE(best.energy_j, race.energy_j + 1e-9);
    EXPECT_LE(best.energy_j, paced.energy_j + 1e-9);
  }
}

TEST(Governor, RaceVsPaceCrossoverDependsOnSleepAvailability) {
  // The E7 crossover: with deep package sleep available, racing at f_max
  // and sleeping through the slack wins (slack burns ~9 W). On a
  // consolidated server that cannot power down (shallow idle only, ~43 W
  // floor), pacing at a low-power P-state wins.
  const hw::MachineSpec m = hw::MachineSpec::server();
  const double t_slow = m.exec_time_s(kCpuWork, m.dvfs.slowest());
  const double deadline = t_slow;  // enough slack to pace all the way down

  const Governor with_sleep(m, {.allow_deep_sleep = true});
  EXPECT_EQ(with_sleep.best_under_deadline(kCpuWork, deadline).policy,
            "race-to-idle");

  const Governor no_sleep(m, {.allow_deep_sleep = false});
  EXPECT_EQ(no_sleep.best_under_deadline(kCpuWork, deadline).policy, "pace");
}

TEST(Governor, IncrementalEfficientStateIsSlow) {
  // Incremental energy-per-cycle rises superlinearly with f, so the
  // incremental-optimal state for compute work is the slowest one.
  const Governor gov = server_gov();
  const hw::DvfsState s = gov.incremental_efficient_state(kCpuWork);
  EXPECT_DOUBLE_EQ(s.freq_ghz, gov.machine().dvfs.slowest().freq_ghz);
}

TEST(Governor, FastestWithinBudgetMonotone) {
  const Governor gov = server_gov();
  // More budget can only help (weakly) the response time.
  double prev_time = 1e100;
  bool any = false;
  for (double budget = 20; budget <= 2000; budget *= 1.6) {
    const auto d = gov.fastest_within_budget(kCpuWork, budget);
    if (!d) continue;
    any = true;
    EXPECT_LE(d->busy_s, prev_time + 1e-12);
    prev_time = d->busy_s;
    EXPECT_LE(d->energy_j, budget);
  }
  EXPECT_TRUE(any);
}

TEST(Governor, ImpossibleBudgetReturnsNullopt) {
  const Governor gov = server_gov();
  EXPECT_FALSE(gov.fastest_within_budget(kCpuWork, 1e-6).has_value());
}

TEST(Governor, MostEfficientBeatsFmaxOnEnergy) {
  const Governor gov = server_gov();
  const auto eff = gov.most_efficient(kCpuWork);
  const auto frontier = gov.frontier(kCpuWork);
  const auto& fastest = frontier.back();
  EXPECT_LE(eff.energy_j, fastest.energy_j);
}

TEST(Governor, FrontierTimeDecreasesEnergyShapes) {
  const Governor gov = server_gov();
  const auto points = gov.frontier(kCpuWork);
  ASSERT_EQ(points.size(), gov.machine().dvfs.size());
  // Time strictly decreases with frequency for compute-bound work.
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LT(points[i].busy_s, points[i - 1].busy_s);
}

TEST(Governor, MemoryBoundWorkFlattensFrontier) {
  const Governor gov = server_gov();
  const hw::Work mem_bound{1e6, 50e9};
  const auto points = gov.frontier(mem_bound);
  // Memory-bound: same time at every frequency => higher frequency only
  // wastes power; most efficient must be the slowest state.
  EXPECT_NEAR(points.front().busy_s, points.back().busy_s, 1e-9);
  const auto eff = gov.most_efficient(mem_bound);
  EXPECT_DOUBLE_EQ(eff.state.freq_ghz, gov.machine().dvfs.slowest().freq_ghz);
}

TEST(Governor, MultiCoreSpeedsUpAndFitsBudgetDifferently) {
  const Governor gov = server_gov();
  const auto d1 = gov.race_to_idle(kCpuWork, 100.0, 1);
  const auto d8 = gov.race_to_idle(kCpuWork, 100.0, 8);
  EXPECT_LT(d8.busy_s, d1.busy_s);
}

}  // namespace
}  // namespace eidb::sched
