#include "sched/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace eidb::sched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, 1024, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 10, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForGrainLargerThanRange) {
  ThreadPool pool(2);
  std::atomic<int> chunks{0};
  pool.parallel_for(5, 1000, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 5u);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1 << 18;
  std::vector<std::int64_t> data(kN);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(kN, 4096, [&](std::size_t b, std::size_t e) {
    std::int64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += data[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(),
            static_cast<std::int64_t>(kN) * (static_cast<std::int64_t>(kN) - 1) / 2);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

}  // namespace
}  // namespace eidb::sched
