#include "sched/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace eidb::sched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, 1024, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 10, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForGrainLargerThanRange) {
  ThreadPool pool(2);
  std::atomic<int> chunks{0};
  pool.parallel_for(5, 1000, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 5u);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, SingleWorkerPoolStillChunksByGrain) {
  // The chunk geometry is part of the contract: callers key per-chunk
  // result slots off `begin / grain` (the morsel-join merge), so a
  // 1-thread pool must still invoke fn once per grain-aligned chunk —
  // not once over [0, n).
  ThreadPool pool(1);
  constexpr std::size_t kN = 2500;
  constexpr std::size_t kGrain = 1000;
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  pool.parallel_for(kN, kGrain, [&](std::size_t b, std::size_t e) {
    calls.emplace_back(b, e);  // serial path: no race
  });
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0], (std::pair<std::size_t, std::size_t>{0, 1000}));
  EXPECT_EQ(calls[1], (std::pair<std::size_t, std::size_t>{1000, 2000}));
  EXPECT_EQ(calls[2], (std::pair<std::size_t, std::size_t>{2000, 2500}));
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1 << 18;
  std::vector<std::int64_t> data(kN);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(kN, 4096, [&](std::size_t b, std::size_t e) {
    std::int64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += data[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(),
            static_cast<std::int64_t>(kN) * (static_cast<std::int64_t>(kN) - 1) / 2);
}

TEST(ThreadPool, ParallelForGrainZeroPicksDefaultChunking) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, 0, [&](std::size_t b, std::size_t e) {
    ASSERT_LT(b, e);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForGrainZeroEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesExceptionWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100000, 64,
                                 [&](std::size_t b, std::size_t) {
                                   if (b >= 4096)
                                     throw std::runtime_error("morsel failed");
                                 }),
               std::runtime_error);
  // A throwing morsel must leave the pool usable: wait_idle returns and
  // later batches run normally.
  pool.wait_idle();
  std::atomic<int> counter{0};
  pool.parallel_for(1000, 10,
                    [&](std::size_t b, std::size_t e) {
                      counter.fetch_add(static_cast<int>(e - b));
                    });
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ThrowingSubmittedTaskRethrownByWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 50);
  // The error is consumed: the next wait is clean and the pool still works.
  pool.wait_idle();
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 51);
}

TEST(ThreadPool, ConcurrentParallelForCallsAreIsolated) {
  // Two threads fan out on the SAME pool at once; each call must see only
  // its own completion (and its own exception), not the other's.
  ThreadPool pool(4);
  std::atomic<std::int64_t> clean_sum{0};
  std::thread failing([&] {
    EXPECT_THROW(pool.parallel_for(1 << 16, 512,
                                   [](std::size_t b, std::size_t) {
                                     if (b == 0)
                                       throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
  });
  pool.parallel_for(1 << 16, 512, [&](std::size_t b, std::size_t e) {
    clean_sum.fetch_add(static_cast<std::int64_t>(e - b));
  });
  failing.join();
  EXPECT_EQ(clean_sum.load(), std::int64_t{1} << 16);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

}  // namespace
}  // namespace eidb::sched
