#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

namespace eidb::sched {
namespace {

const hw::Work kQueryWork{2e9, 2e8};

std::vector<QueryArrival> steady_stream(std::size_t n, double gap_s) {
  std::vector<QueryArrival> s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back({static_cast<double>(i) * gap_s, kQueryWork});
  return s;
}

TEST(Scheduler, PolicyNames) {
  EXPECT_EQ(policy_name(Policy::kLatency), "latency");
  EXPECT_EQ(policy_name(Policy::kThroughput), "throughput");
  EXPECT_EQ(policy_name(Policy::kEnergyCap), "energy-cap");
}

TEST(Scheduler, EmptyStream) {
  StreamScheduler sched(hw::MachineSpec::server(), Policy::kLatency);
  const auto r = sched.run({});
  EXPECT_EQ(r.queries, 0u);
  EXPECT_EQ(r.makespan_s, 0.0);
}

TEST(Scheduler, LatencyPolicyMinimizesMeanLatency) {
  const auto stream = steady_stream(200, 0.05);
  StreamScheduler lat(hw::MachineSpec::server(), Policy::kLatency);
  StreamScheduler thr(hw::MachineSpec::server(), Policy::kThroughput);
  const auto rl = lat.run(stream);
  const auto rt = thr.run(stream);
  EXPECT_LT(rl.mean_latency_s, rt.mean_latency_s);
}

TEST(Scheduler, ThroughputPolicySavesEnergyPerQueryUnderLightLoad) {
  // Light load: cores never saturate, so running slower only trades
  // latency for lower busy power.
  const auto stream = steady_stream(100, 1.0);
  StreamScheduler lat(hw::MachineSpec::server(), Policy::kLatency);
  StreamScheduler thr(hw::MachineSpec::server(), Policy::kThroughput);
  const auto rl = lat.run(stream);
  const auto rt = thr.run(stream);
  // Busy (dynamic) energy must shrink; total includes the idle floor over
  // nearly identical makespans, so compare energy after subtracting it.
  const double idle = hw::MachineSpec::server().idle_power_w();
  const double busy_l = rl.energy_j - idle * rl.makespan_s;
  const double busy_t = rt.energy_j - idle * rt.makespan_s;
  EXPECT_LT(busy_t, busy_l);
}

TEST(Scheduler, QueriesQueueWhenSaturated) {
  // Arrival gap much smaller than service time: latency must grow with
  // position in the queue.
  const auto stream = steady_stream(64, 1e-4);
  StreamScheduler sched(hw::MachineSpec::server(), Policy::kLatency);
  const auto r = sched.run(stream);
  EXPECT_GT(r.p95_latency_s, r.mean_latency_s);
  EXPECT_GT(r.mean_latency_s,
            hw::MachineSpec::server().exec_time_s(
                kQueryWork, hw::MachineSpec::server().dvfs.fastest()));
}

TEST(Scheduler, EnergyCapThrottles) {
  const auto stream = steady_stream(300, 0.02);
  const hw::MachineSpec m = hw::MachineSpec::server();
  StreamScheduler uncapped(m, Policy::kLatency);
  // Cap barely above idle: the scheduler should spend most time throttled.
  StreamScheduler capped(m, Policy::kEnergyCap,
                         m.idle_power_w() + 5.0);
  const auto ru = uncapped.run(stream);
  const auto rc = capped.run(stream);
  EXPECT_LE(rc.avg_power_w, ru.avg_power_w + 1e-9);
  // Figure-2 shape: saving power costs response time.
  EXPECT_GE(rc.mean_latency_s, ru.mean_latency_s - 1e-12);
}

TEST(Scheduler, GenerousCapBehavesLikeLatencyPolicy) {
  const auto stream = steady_stream(100, 0.1);
  const hw::MachineSpec m = hw::MachineSpec::server();
  StreamScheduler lat(m, Policy::kLatency);
  StreamScheduler capped(m, Policy::kEnergyCap, 10 * 1000.0);
  const auto rl = lat.run(stream);
  const auto rc = capped.run(stream);
  EXPECT_NEAR(rc.mean_latency_s, rl.mean_latency_s, 1e-9);
}

TEST(Scheduler, ThroughputConservation) {
  const auto stream = steady_stream(100, 0.05);
  StreamScheduler sched(hw::MachineSpec::server(), Policy::kLatency);
  const auto r = sched.run(stream);
  EXPECT_EQ(r.queries, 100u);
  EXPECT_NEAR(r.throughput_qps * r.makespan_s, 100.0, 1e-6);
  EXPECT_NEAR(r.energy_per_query_j * 100.0, r.energy_j, 1e-6);
}

TEST(PoissonStream, SortedAndSeedStable) {
  const auto a = poisson_stream(1000, 50.0, kQueryWork, 7);
  const auto b = poisson_stream(1000, 50.0, kQueryWork, 7);
  ASSERT_EQ(a.size(), 1000u);
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_GE(a[i].arrive_s, a[i - 1].arrive_s);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].arrive_s, b[i].arrive_s);
  // Mean inter-arrival ~ 1/rate.
  EXPECT_NEAR(a.back().arrive_s / 1000.0, 1.0 / 50.0, 0.005);
}

}  // namespace
}  // namespace eidb::sched
