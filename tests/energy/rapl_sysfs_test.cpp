// RaplMeter against a synthetic powercap sysfs tree: counter reading,
// package/dram domain discovery, and wraparound handling — testable on any
// host by pointing the meter at a temp directory.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "energy/rapl_meter.hpp"

namespace eidb::energy {
namespace {

namespace fs = std::filesystem;

class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = fs::temp_directory_path() /
            ("eidb_rapl_test_" + std::to_string(::getpid()));
    fs::create_directories(root_);
  }
  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  [[nodiscard]] std::string path() const { return root_.string(); }

  /// Creates a package domain directory with optional dram subdomain.
  void add_package(int index, std::uint64_t energy_uj,
                   std::uint64_t max_range_uj, bool with_dram) {
    const fs::path pkg = root_ / ("intel-rapl:" + std::to_string(index));
    fs::create_directories(pkg);
    write(pkg / "name", "package-" + std::to_string(index));
    write(pkg / "energy_uj", std::to_string(energy_uj));
    write(pkg / "max_energy_range_uj", std::to_string(max_range_uj));
    if (with_dram) {
      const fs::path dram = pkg / ("intel-rapl:" + std::to_string(index) +
                                   ":0");
      fs::create_directories(dram);
      write(dram / "name", "dram");
      write(dram / "energy_uj", "0");
      write(dram / "max_energy_range_uj", std::to_string(max_range_uj));
    }
  }

  void set_energy(int index, std::uint64_t energy_uj) {
    write(root_ / ("intel-rapl:" + std::to_string(index)) / "energy_uj",
          std::to_string(energy_uj));
  }
  void set_dram_energy(int index, std::uint64_t energy_uj) {
    const auto i = std::to_string(index);
    write(root_ / ("intel-rapl:" + i) / ("intel-rapl:" + i + ":0") /
              "energy_uj",
          std::to_string(energy_uj));
  }

 private:
  static void write(const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content << "\n";
  }
  fs::path root_;
};

TEST(RaplSysfs, DiscoversPackagesAndDram) {
  FakeSysfs sysfs;
  sysfs.add_package(0, 1'000'000, 1'000'000'000, true);
  sysfs.add_package(1, 2'000'000, 1'000'000'000, false);
  RaplMeter meter(sysfs.path());
  EXPECT_TRUE(meter.available());
  EXPECT_EQ(meter.package_count(), 2u);
}

TEST(RaplSysfs, DeltasAccumulateAcrossReads) {
  FakeSysfs sysfs;
  sysfs.add_package(0, 1'000'000, 1'000'000'000, true);  // 1 J
  RaplMeter meter(sysfs.path());
  const EnergySample first = meter.read();  // primes counters
  EXPECT_DOUBLE_EQ(first.package_j, 0.0);

  sysfs.set_energy(0, 3'500'000);  // +2.5 J
  sysfs.set_dram_energy(0, 500'000);
  const EnergySample second = meter.read();
  EXPECT_NEAR(second.package_j, 2.5, 1e-9);
  EXPECT_NEAR(second.dram_j, 0.5, 1e-9);

  sysfs.set_energy(0, 4'000'000);  // +0.5 J more
  const EnergySample third = meter.read();
  EXPECT_NEAR(third.package_j, 3.0, 1e-9);
}

TEST(RaplSysfs, HandlesCounterWraparound) {
  FakeSysfs sysfs;
  constexpr std::uint64_t kRange = 10'000'000;  // 10 J range
  sysfs.add_package(0, 9'800'000, kRange, false);
  RaplMeter meter(sysfs.path());
  (void)meter.read();  // prime at 9.8 J

  sysfs.set_energy(0, 300'000);  // wrapped: 0.2 J to the edge + 0.3 J
  const EnergySample s = meter.read();
  EXPECT_NEAR(s.package_j, 0.5, 1e-9);
}

TEST(RaplSysfs, MultiplePackagesSum) {
  FakeSysfs sysfs;
  sysfs.add_package(0, 0, 1'000'000'000, false);
  sysfs.add_package(1, 0, 1'000'000'000, false);
  RaplMeter meter(sysfs.path());
  (void)meter.read();
  sysfs.set_energy(0, 1'000'000);
  sysfs.set_energy(1, 2'000'000);
  EXPECT_NEAR(meter.read().package_j, 3.0, 1e-9);
}

TEST(RaplSysfs, IgnoresNonPackageEntries) {
  FakeSysfs sysfs;
  sysfs.add_package(0, 0, 1'000'000'000, false);
  // A stray directory that is not a RAPL domain.
  fs::create_directories(fs::path(sysfs.path()) / "not-a-domain");
  RaplMeter meter(sysfs.path());
  EXPECT_EQ(meter.package_count(), 1u);
}

TEST(RaplSysfs, MonotoneEvenIfFileGoesMissing) {
  FakeSysfs sysfs;
  sysfs.add_package(0, 1'000'000, 1'000'000'000, false);
  RaplMeter meter(sysfs.path());
  (void)meter.read();
  sysfs.set_energy(0, 2'000'000);
  const double before = meter.read().package_j;
  // Remove the file: reads keep returning the accumulated value.
  fs::remove(fs::path(sysfs.path()) / "intel-rapl:0" / "energy_uj");
  const double after = meter.read().package_j;
  EXPECT_DOUBLE_EQ(after, before);
}

}  // namespace
}  // namespace eidb::energy
