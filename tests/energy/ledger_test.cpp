#include "energy/ledger.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace eidb::energy {
namespace {

TEST(Ledger, AccumulatesByOperator) {
  EnergyLedger ledger;
  ledger.add({"scan", 1.0, {100, 200}, 5.0, 1000});
  ledger.add({"scan", 0.5, {50, 100}, 2.0, 500});
  ledger.add({"agg", 0.1, {10, 0}, 0.5, 100});
  const auto entries = ledger.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].operator_name, "scan");  // sorted by energy desc
  EXPECT_DOUBLE_EQ(entries[0].elapsed_s, 1.5);
  EXPECT_DOUBLE_EQ(entries[0].energy_j, 7.0);
  EXPECT_EQ(entries[0].tuples, 1500u);
  EXPECT_DOUBLE_EQ(entries[0].work.dram_bytes, 300);
}

TEST(Ledger, TotalSumsAll) {
  EnergyLedger ledger;
  ledger.add({"a", 1, {1, 2}, 3, 4});
  ledger.add({"b", 10, {10, 20}, 30, 40});
  const LedgerEntry t = ledger.total();
  EXPECT_DOUBLE_EQ(t.elapsed_s, 11);
  EXPECT_DOUBLE_EQ(t.energy_j, 33);
  EXPECT_EQ(t.tuples, 44u);
}

TEST(Ledger, ClearEmpties) {
  EnergyLedger ledger;
  ledger.add({"a", 1, {}, 1, 1});
  ledger.clear();
  EXPECT_TRUE(ledger.entries().empty());
  EXPECT_DOUBLE_EQ(ledger.total().energy_j, 0);
}

TEST(Ledger, ThreadSafeAccumulation) {
  EnergyLedger ledger;
  constexpr int kThreads = 4, kAdds = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&ledger] {
      for (int i = 0; i < kAdds; ++i) ledger.add({"op", 0.001, {1, 1}, 0.01, 1});
    });
  for (auto& th : threads) th.join();
  const LedgerEntry total = ledger.total();
  EXPECT_EQ(total.tuples, static_cast<std::uint64_t>(kThreads) * kAdds);
  EXPECT_NEAR(total.energy_j, kThreads * kAdds * 0.01, 1e-6);
}

TEST(Ledger, RendersTable) {
  EnergyLedger ledger;
  ledger.add({"scan", 1.0, {0, 2e6}, 5.0, 42});
  const std::string s = ledger.to_string();
  EXPECT_NE(s.find("scan"), std::string::npos);
  EXPECT_NE(s.find("operator"), std::string::npos);
}

}  // namespace
}  // namespace eidb::energy
