#include <gtest/gtest.h>

#include <thread>

#include "energy/model_meter.hpp"
#include "energy/rapl_meter.hpp"

namespace eidb::energy {
namespace {

TEST(RaplMeter, GracefulOnMissingSysfs) {
  RaplMeter meter("/nonexistent/powercap");
  EXPECT_FALSE(meter.available());
  EXPECT_EQ(meter.package_count(), 0u);
  const EnergySample s = meter.read();
  EXPECT_EQ(s.package_j, 0.0);
  EXPECT_EQ(s.dram_j, 0.0);
}

TEST(RaplMeter, ProbesHostWithoutCrashing) {
  RaplMeter meter;  // real path; may or may not exist in this container
  if (meter.available()) {
    const EnergySample a = meter.read();
    const EnergySample b = meter.read();
    EXPECT_GE(b.package_j, a.package_j);  // monotone counters
  } else {
    SUCCEED() << "no RAPL on this host; ModelMeter is the fallback";
  }
}

TEST(ModelMeter, AlwaysAvailable) {
  ModelMeter meter(hw::MachineSpec::server());
  EXPECT_TRUE(meter.available());
  EXPECT_EQ(meter.source(), MeterSource::kModel);
}

TEST(ModelMeter, ChargesIdlePowerOverWallTime) {
  ModelMeter meter(hw::MachineSpec::server());
  (void)meter.read();  // prime
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const EnergySample a = meter.read();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const EnergySample b = meter.read();
  EXPECT_GT(b.package_j, a.package_j);
  // Roughly idle power * dt.
  const double dt_j = b.package_j - a.package_j;
  const double idle = hw::MachineSpec::server().idle_power_w();
  EXPECT_NEAR(dt_j, idle * 0.030, idle * 0.030);  // generous timing slack
}

TEST(ModelMeter, BusyReportsIncreasePackageEnergy) {
  const hw::MachineSpec m = hw::MachineSpec::server();
  ModelMeter meter(m);
  (void)meter.read();
  meter.report_busy(1.0, m.dvfs.fastest(), 4, {1e9, 0});
  const EnergySample s = meter.read();
  // At least the busy-interval energy must be present.
  EXPECT_GE(s.package_j, m.package_power_w(m.dvfs.fastest(), 4) * 1.0 * 0.99);
}

TEST(ModelMeter, DramBytesBilledToDramDomain) {
  const hw::MachineSpec m = hw::MachineSpec::server();
  ModelMeter meter(m);
  meter.report_busy(0.001, m.dvfs.fastest(), 1, {0, 1e9});
  const EnergySample s = meter.read();
  EXPECT_NEAR(s.dram_j, 1e9 * m.dram_energy_nj_per_byte * 1e-9, 1e-9);
}

TEST(ModelMeter, MonotoneCounters) {
  ModelMeter meter(hw::MachineSpec::laptop());
  double prev = meter.read().total_j();
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const double cur = meter.read().total_j();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(EnergyWindow, MeasuresDelta) {
  const hw::MachineSpec m = hw::MachineSpec::server();
  ModelMeter meter(m);
  EnergyWindow w(meter);
  meter.report_busy(0.5, m.dvfs.fastest(), 1, {1e8, 1e6});
  const EnergySample d = w.consumed();
  EXPECT_GT(d.package_j, 0.0);
  EXPECT_GT(d.dram_j, 0.0);
}

TEST(EnergySample, Arithmetic) {
  const EnergySample a{10, 2}, b{4, 1};
  const EnergySample d = a - b;
  EXPECT_DOUBLE_EQ(d.package_j, 6);
  EXPECT_DOUBLE_EQ(d.dram_j, 1);
  EXPECT_DOUBLE_EQ(d.total_j(), 7);
  const EnergySample s = a + b;
  EXPECT_DOUBLE_EQ(s.total_j(), 17);
}

TEST(EnergyReport, FormatsAndAverages) {
  EnergyReport r;
  r.elapsed_s = 2.0;
  r.energy = {10.0, 2.0};
  r.network_j = 3.0;
  EXPECT_DOUBLE_EQ(r.total_j(), 15.0);
  EXPECT_DOUBLE_EQ(r.avg_power_w(), 7.5);
  const std::string s = r.to_string();
  EXPECT_NE(s.find("model"), std::string::npos);
}

TEST(EnergyReport, ZeroElapsedNoDivide) {
  EnergyReport r;
  EXPECT_EQ(r.avg_power_w(), 0.0);
}

}  // namespace
}  // namespace eidb::energy
