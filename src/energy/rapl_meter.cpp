#include "energy/rapl_meter.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace eidb::energy {

namespace fs = std::filesystem;

RaplMeter::RaplMeter(std::string root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string dir = entry.path().filename().string();
    // Top-level package domains look like "intel-rapl:0".
    if (dir.rfind("intel-rapl:", 0) != 0 || dir.find(':') != dir.rfind(':'))
      continue;
    std::string name;
    {
      std::ifstream in(entry.path() / "name");
      if (!(in >> name) || name.rfind("package", 0) != 0) continue;
    }
    Domain pkg;
    pkg.energy_path = (entry.path() / "energy_uj").string();
    std::uint64_t range = 0;
    if (read_u64((entry.path() / "max_energy_range_uj").string(), range))
      pkg.max_range_uj = range;
    std::uint64_t probe = 0;
    if (!read_u64(pkg.energy_path, probe)) continue;  // unreadable: skip
    packages_.push_back(std::move(pkg));

    // Nested subdomains, e.g. intel-rapl:0:0 with name "dram".
    for (const auto& sub : fs::directory_iterator(entry.path(), ec)) {
      if (!sub.is_directory()) continue;
      std::ifstream in(sub.path() / "name");
      std::string sub_name;
      if ((in >> sub_name) && sub_name == "dram") {
        Domain dram;
        dram.energy_path = (sub.path() / "energy_uj").string();
        if (read_u64((sub.path() / "max_energy_range_uj").string(), range))
          dram.max_range_uj = range;
        if (read_u64(dram.energy_path, probe))
          drams_.push_back(std::move(dram));
      }
    }
  }
}

bool RaplMeter::read_u64(const std::string& path, std::uint64_t& out) {
  std::ifstream in(path);
  return static_cast<bool>(in >> out);
}

void RaplMeter::sample(Domain& d) {
  std::uint64_t raw = 0;
  if (!read_u64(d.energy_path, raw)) return;
  if (!d.primed) {
    d.last_raw_uj = raw;
    d.primed = true;
    return;
  }
  std::uint64_t delta;
  if (raw >= d.last_raw_uj) {
    delta = raw - d.last_raw_uj;
  } else {
    // Counter wrapped.
    delta = (d.max_range_uj > 0 ? d.max_range_uj - d.last_raw_uj + raw : 0);
  }
  d.accumulated_j += static_cast<double>(delta) * 1e-6;
  d.last_raw_uj = raw;
}

EnergySample RaplMeter::read() {
  EnergySample s;
  for (Domain& d : packages_) {
    sample(d);
    s.package_j += d.accumulated_j;
  }
  for (Domain& d : drams_) {
    sample(d);
    s.dram_j += d.accumulated_j;
  }
  return s;
}

}  // namespace eidb::energy
