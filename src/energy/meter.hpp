// Abstract energy meter interface.
//
// Mirrors the RAPL usage model: a meter exposes monotonically increasing
// joule counters; consumers take a sample before and after a region and
// subtract. `RaplMeter` reads hardware counters when the powercap sysfs
// tree is readable; `ModelMeter` integrates the machine model's power curve
// over elapsed time plus event-based dynamic energy (DESIGN.md §5).
#pragma once

#include "energy/report.hpp"

namespace eidb::energy {

class EnergyMeter {
 public:
  virtual ~EnergyMeter() = default;

  /// True if this meter can produce readings on this host.
  [[nodiscard]] virtual bool available() const = 0;
  /// Current cumulative counters. Monotone non-decreasing.
  [[nodiscard]] virtual EnergySample read() = 0;
  [[nodiscard]] virtual MeterSource source() const = 0;
};

/// RAII measurement window over any meter.
class EnergyWindow {
 public:
  explicit EnergyWindow(EnergyMeter& meter)
      : meter_(meter), start_(meter.read()) {}

  /// Energy consumed since construction.
  [[nodiscard]] EnergySample consumed() { return meter_.read() - start_; }

 private:
  EnergyMeter& meter_;
  EnergySample start_;
};

}  // namespace eidb::energy
