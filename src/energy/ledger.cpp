#include "energy/ledger.hpp"

#include <algorithm>
#include <sstream>

#include "util/table_printer.hpp"

namespace eidb::energy {

namespace {

std::vector<LedgerEntry> sorted_by_energy(
    std::map<std::string, LedgerEntry> by_name) {
  std::vector<LedgerEntry> out;
  out.reserve(by_name.size());
  for (auto& [_, e] : by_name) out.push_back(std::move(e));
  std::sort(out.begin(), out.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              return a.energy_j > b.energy_j;
            });
  return out;
}

}  // namespace

void EnergyLedger::accumulate(LedgerEntry& slot, const LedgerEntry& entry) {
  slot.operator_name = entry.operator_name;
  slot.elapsed_s += entry.elapsed_s;
  slot.work += entry.work;
  slot.energy_j += entry.energy_j;
  slot.tuples += entry.tuples;
}

void EnergyLedger::add(const std::string& scope, const LedgerEntry& entry) {
  std::scoped_lock lock(mu_);
  accumulate(by_scope_[scope][entry.operator_name], entry);
}

std::vector<LedgerEntry> EnergyLedger::entries() const {
  std::map<std::string, LedgerEntry> merged;
  {
    std::scoped_lock lock(mu_);
    for (const auto& [_, ops] : by_scope_)
      for (const auto& [name, e] : ops) accumulate(merged[name], e);
  }
  return sorted_by_energy(std::move(merged));
}

std::vector<LedgerEntry> EnergyLedger::entries(const std::string& scope) const {
  std::map<std::string, LedgerEntry> copy;
  {
    std::scoped_lock lock(mu_);
    const auto it = by_scope_.find(scope);
    if (it != by_scope_.end()) copy = it->second;
  }
  return sorted_by_energy(std::move(copy));
}

LedgerEntry EnergyLedger::total() const {
  std::scoped_lock lock(mu_);
  LedgerEntry sum;
  sum.operator_name = "total";
  for (const auto& [_, ops] : by_scope_)
    for (const auto& [op, e] : ops) {
      (void)op;
      sum.elapsed_s += e.elapsed_s;
      sum.work += e.work;
      sum.energy_j += e.energy_j;
      sum.tuples += e.tuples;
    }
  return sum;
}

LedgerEntry EnergyLedger::total(const std::string& scope) const {
  std::scoped_lock lock(mu_);
  LedgerEntry sum;
  sum.operator_name = "total:" + scope;
  const auto it = by_scope_.find(scope);
  if (it == by_scope_.end()) return sum;
  for (const auto& [op, e] : it->second) {
    (void)op;
    sum.elapsed_s += e.elapsed_s;
    sum.work += e.work;
    sum.energy_j += e.energy_j;
    sum.tuples += e.tuples;
  }
  return sum;
}

std::vector<std::string> EnergyLedger::scopes() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(by_scope_.size());
  for (const auto& [scope, _] : by_scope_) out.push_back(scope);
  return out;
}

void EnergyLedger::clear() {
  std::scoped_lock lock(mu_);
  by_scope_.clear();
}

std::string EnergyLedger::to_string() const {
  eidb::TablePrinter table(
      {"operator", "time_s", "energy_J", "tuples", "dram_MB"});
  for (const LedgerEntry& e : entries()) {
    table.add_row({e.operator_name, eidb::TablePrinter::fmt(e.elapsed_s),
                   eidb::TablePrinter::fmt(e.energy_j),
                   eidb::TablePrinter::fmt_int(
                       static_cast<long long>(e.tuples)),
                   eidb::TablePrinter::fmt(e.work.dram_bytes / 1e6)});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace eidb::energy
