#include "energy/ledger.hpp"

#include <algorithm>
#include <sstream>

#include "util/table_printer.hpp"

namespace eidb::energy {

void EnergyLedger::add(const LedgerEntry& entry) {
  std::scoped_lock lock(mu_);
  LedgerEntry& slot = by_name_[entry.operator_name];
  slot.operator_name = entry.operator_name;
  slot.elapsed_s += entry.elapsed_s;
  slot.work += entry.work;
  slot.energy_j += entry.energy_j;
  slot.tuples += entry.tuples;
}

std::vector<LedgerEntry> EnergyLedger::entries() const {
  std::scoped_lock lock(mu_);
  std::vector<LedgerEntry> out;
  out.reserve(by_name_.size());
  for (const auto& [_, e] : by_name_) out.push_back(e);
  std::sort(out.begin(), out.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              return a.energy_j > b.energy_j;
            });
  return out;
}

LedgerEntry EnergyLedger::total() const {
  std::scoped_lock lock(mu_);
  LedgerEntry sum;
  sum.operator_name = "total";
  for (const auto& [_, e] : by_name_) {
    sum.elapsed_s += e.elapsed_s;
    sum.work += e.work;
    sum.energy_j += e.energy_j;
    sum.tuples += e.tuples;
  }
  return sum;
}

void EnergyLedger::clear() {
  std::scoped_lock lock(mu_);
  by_name_.clear();
}

std::string EnergyLedger::to_string() const {
  eidb::TablePrinter table(
      {"operator", "time_s", "energy_J", "tuples", "dram_MB"});
  for (const LedgerEntry& e : entries()) {
    table.add_row({e.operator_name, eidb::TablePrinter::fmt(e.elapsed_s),
                   eidb::TablePrinter::fmt(e.energy_j),
                   eidb::TablePrinter::fmt_int(
                       static_cast<long long>(e.tuples)),
                   eidb::TablePrinter::fmt(e.work.dram_bytes / 1e6)});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace eidb::energy
