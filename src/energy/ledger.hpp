// Per-operator energy/time ledger ("who spent the joules?").
//
// Execution attributes elapsed time, abstract work and modelled energy to
// named operators so reports can show a per-operator breakdown — the
// granularity at which the paper's optimizer must make its case-by-case
// decisions (compress vs. ship raw, scan variant choice, P-state choice).
//
// Entries can additionally be attributed to a *scope* (a session or tenant
// id in the serving tier): the admission controller debits each tenant's
// joule budget from its scope total after every query, so billing reflects
// measured energy rather than estimates.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "hw/machine.hpp"

namespace eidb::energy {

/// Ledger scope that carries the wire lane of sharded queries: modeled
/// link joules (net::Cluster transfers plus exchange codec CPU) land here,
/// outside every tenant's busy-energy attribution, so `total(kWireScope)`
/// is the cluster's network bill. Zero when nothing shipped — single-node
/// execution and shard_count == 1 leave the scope empty.
inline constexpr const char* kWireScope = "wire";

/// One ledger line.
struct LedgerEntry {
  std::string operator_name;
  double elapsed_s = 0;
  hw::Work work;
  double energy_j = 0;
  std::uint64_t tuples = 0;
};

class EnergyLedger {
 public:
  /// Accumulates `entry` under its operator name in the global ("") scope.
  /// Thread-safe.
  void add(const LedgerEntry& entry) { add(std::string(), entry); }

  /// Accumulates `entry` under its operator name within `scope`.
  /// Thread-safe.
  void add(const std::string& scope, const LedgerEntry& entry);

  /// Snapshot of all lines across scopes, merged by operator name, sorted
  /// by descending energy.
  [[nodiscard]] std::vector<LedgerEntry> entries() const;

  /// Snapshot of one scope's lines, sorted by descending energy.
  [[nodiscard]] std::vector<LedgerEntry> entries(
      const std::string& scope) const;

  /// Sum across all scopes and operators.
  [[nodiscard]] LedgerEntry total() const;

  /// Sum across one scope's operators (all-zero entry for unknown scopes —
  /// a tenant that has not run anything has spent nothing).
  [[nodiscard]] LedgerEntry total(const std::string& scope) const;

  /// Scopes that have at least one entry (the global scope included, as "").
  [[nodiscard]] std::vector<std::string> scopes() const;

  void clear();

  /// Renders a per-operator breakdown table (scopes merged).
  [[nodiscard]] std::string to_string() const;

 private:
  using OperatorMap = std::map<std::string, LedgerEntry>;

  static void accumulate(LedgerEntry& slot, const LedgerEntry& entry);

  mutable std::mutex mu_;
  std::map<std::string, OperatorMap> by_scope_;
};

}  // namespace eidb::energy
