// Per-operator energy/time ledger ("who spent the joules?").
//
// Execution attributes elapsed time, abstract work and modelled energy to
// named operators so reports can show a per-operator breakdown — the
// granularity at which the paper's optimizer must make its case-by-case
// decisions (compress vs. ship raw, scan variant choice, P-state choice).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "hw/machine.hpp"

namespace eidb::energy {

/// One ledger line.
struct LedgerEntry {
  std::string operator_name;
  double elapsed_s = 0;
  hw::Work work;
  double energy_j = 0;
  std::uint64_t tuples = 0;
};

class EnergyLedger {
 public:
  /// Accumulates `entry` under its operator name. Thread-safe.
  void add(const LedgerEntry& entry);

  /// Snapshot of all lines, sorted by descending energy.
  [[nodiscard]] std::vector<LedgerEntry> entries() const;

  /// Sum across operators.
  [[nodiscard]] LedgerEntry total() const;

  void clear();

  /// Renders a per-operator breakdown table.
  [[nodiscard]] std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, LedgerEntry> by_name_;
};

}  // namespace eidb::energy
