#include "energy/report.hpp"

#include <cstdio>

namespace eidb::energy {

std::string to_string(MeterSource source) {
  switch (source) {
    case MeterSource::kRapl:
      return "rapl";
    case MeterSource::kModel:
      return "model";
    case MeterSource::kSimulated:
      return "simulated";
  }
  return "unknown";
}

std::string EnergyReport::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%.6f s, %.4f J (pkg %.4f + dram %.4f + net %.4f), %.2f W "
                "avg [%s]",
                elapsed_s, total_j(), energy.package_j, energy.dram_j,
                network_j, avg_power_w(),
                eidb::energy::to_string(source).c_str());
  return buf;
}

}  // namespace eidb::energy
