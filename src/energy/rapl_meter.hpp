// Intel RAPL energy counters via the Linux powercap sysfs interface.
//
// Reads /sys/class/powercap/intel-rapl:<pkg>/energy_uj (package domain) and
// the nested "dram" subdomain when present, handling counter wraparound via
// max_energy_range_uj. Requires read permission on the sysfs files; on hosts
// without RAPL (VMs, containers, non-Intel CPUs) `available()` returns false
// and callers fall back to the `ModelMeter`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/meter.hpp"

namespace eidb::energy {

class RaplMeter final : public EnergyMeter {
 public:
  /// Probes `root` (default: the standard powercap path) for RAPL domains.
  explicit RaplMeter(std::string root = "/sys/class/powercap");

  [[nodiscard]] bool available() const override { return !packages_.empty(); }
  [[nodiscard]] EnergySample read() override;
  [[nodiscard]] MeterSource source() const override {
    return MeterSource::kRapl;
  }

  /// Number of detected package domains.
  [[nodiscard]] std::size_t package_count() const { return packages_.size(); }

 private:
  struct Domain {
    std::string energy_path;
    std::uint64_t max_range_uj = 0;
    std::uint64_t last_raw_uj = 0;
    double accumulated_j = 0;
    bool primed = false;
  };

  static bool read_u64(const std::string& path, std::uint64_t& out);
  void sample(Domain& d);

  std::vector<Domain> packages_;
  std::vector<Domain> drams_;
};

}  // namespace eidb::energy
