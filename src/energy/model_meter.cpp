#include "energy/model_meter.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::energy {

void ModelMeter::report_busy(double busy_s, const hw::DvfsState& state,
                             int cores, const hw::Work& work) {
  EIDB_EXPECTS(busy_s >= 0);
  EIDB_EXPECTS(cores >= 1 && cores <= machine_.cores);
  std::scoped_lock lock(mu_);
  counters_.package_j += machine_.package_power_w(state, cores) * busy_s;
  counters_.dram_j += work.dram_bytes * machine_.dram_energy_nj_per_byte * 1e-9;
  busy_backlog_s_ += busy_s;
}

EnergySample ModelMeter::read() {
  std::scoped_lock lock(mu_);
  const double now = wall_.elapsed_seconds();
  double unaccounted = now - accounted_s_;
  if (unaccounted > 0) {
    // Busy seconds were already billed at full power in report_busy; only
    // the remaining wall time is idle.
    const double busy_consumed = std::min(busy_backlog_s_, unaccounted);
    busy_backlog_s_ -= busy_consumed;
    const double idle_s = unaccounted - busy_consumed;
    counters_.package_j += machine_.idle_power_w() * idle_s;
    accounted_s_ = now;
  }
  return counters_;
}

}  // namespace eidb::energy
