// Analytical energy meter over the machine model.
//
// When RAPL is unavailable (containers, VMs, non-Intel hosts) the engine
// still produces joule figures: the executor reports busy intervals (which
// P-state, how many cores, how long) and abstract `hw::Work` (DRAM bytes);
// this meter integrates
//   E_pkg  = Σ busy: package_power(state, cores) · dt   +  idle power · t_idle
//   E_dram = Σ work.dram_bytes · nJ/byte  (+ static share inside pkg power)
// against the wall clock, so readings remain monotone counters exactly like
// hardware RAPL.
#pragma once

#include <mutex>

#include "energy/meter.hpp"
#include "hw/machine.hpp"
#include "util/clock.hpp"

namespace eidb::energy {

class ModelMeter final : public EnergyMeter {
 public:
  explicit ModelMeter(hw::MachineSpec machine)
      : machine_(std::move(machine)) {}

  [[nodiscard]] bool available() const override { return true; }
  [[nodiscard]] MeterSource source() const override {
    return MeterSource::kModel;
  }

  /// Reads the counters; time since the last read with no reported activity
  /// is billed at shallow idle power.
  [[nodiscard]] EnergySample read() override;

  /// Reports a busy interval: `cores` cores ran at `state` for `busy_s`
  /// seconds performing `work` (DRAM dynamic energy is charged from
  /// work.dram_bytes). Thread-safe.
  void report_busy(double busy_s, const hw::DvfsState& state, int cores,
                   const hw::Work& work);

  [[nodiscard]] const hw::MachineSpec& machine() const { return machine_; }

 private:
  hw::MachineSpec machine_;
  std::mutex mu_;
  Stopwatch wall_;
  double accounted_s_ = 0;   ///< Wall time already billed (busy or idle).
  double busy_backlog_s_ = 0;///< Busy seconds reported but not yet consumed
                             ///< by read(); kept to bound idle billing.
  EnergySample counters_;
};

}  // namespace eidb::energy
