// Energy accounting value types shared across the engine.
#pragma once

#include <string>

namespace eidb::energy {

/// Where a reading came from.
enum class MeterSource {
  kRapl,       ///< Hardware counters via /sys/class/powercap.
  kModel,      ///< Analytical model over machine-model event counts.
  kSimulated,  ///< Fully simulated execution (virtual clock).
};

[[nodiscard]] std::string to_string(MeterSource source);

/// Cumulative energy counters, in joules.
struct EnergySample {
  double package_j = 0;  ///< CPU package (cores + uncore).
  double dram_j = 0;     ///< DRAM devices.

  [[nodiscard]] double total_j() const { return package_j + dram_j; }

  friend EnergySample operator-(const EnergySample& a, const EnergySample& b) {
    return {a.package_j - b.package_j, a.dram_j - b.dram_j};
  }
  friend EnergySample operator+(const EnergySample& a, const EnergySample& b) {
    return {a.package_j + b.package_j, a.dram_j + b.dram_j};
  }
};

/// Per-query (or per-operator) report: elapsed time plus energy split.
struct EnergyReport {
  double elapsed_s = 0;
  EnergySample energy;
  double network_j = 0;  ///< Simulated interconnect energy (distributed runs).
  MeterSource source = MeterSource::kModel;

  [[nodiscard]] double total_j() const { return energy.total_j() + network_j; }
  /// Average power over the window, watts.
  [[nodiscard]] double avg_power_w() const {
    return elapsed_s > 0 ? total_j() / elapsed_s : 0.0;
  }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace eidb::energy
