// Energy-constrained plan selection — Figure 2 of the paper, made concrete.
//
// "the system has to flexibly balance query response time minimization and
// throughput maximization under a given energy constraint on a case-by-case
// basis (Figure 2)". Candidate physical plans (full scan, pruned scan,
// different kernels) × execution configurations (P-state, core count) form
// a set of (response time, energy) points. This component:
//   * enumerates the points,
//   * extracts the Pareto frontier (no point is faster AND cheaper),
//   * answers "fastest plan under an energy budget" — the Fig. 2 curve.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "opt/cost_model.hpp"
#include "sched/governor.hpp"

namespace eidb::opt {

/// A physical-plan candidate, described by the abstract work it performs.
struct PlanCandidate {
  std::string name;
  hw::Work work;
};

/// Who owns the idle power?
///
///  * kFullPackage  — the query is billed the whole package for its runtime
///    (dedicated server). Static power dominates 2012-era machines, so
///    "fastest is greenest" ([12]) and the Fig. 2 frontier is shallow.
///  * kIncremental  — only above-idle (busy) power is attributable (shared
///    server; the package is on regardless). Energy-per-cycle then falls
///    superlinearly at lower P-states and the frontier is rich.
/// The choice is a genuine policy input, not a modeling detail — the F2
/// bench reports both.
enum class Accounting : std::uint8_t { kFullPackage, kIncremental };

/// One fully configured execution alternative.
struct PlanPoint {
  std::string plan_name;
  hw::DvfsState state;
  int cores = 1;
  double time_s = 0;
  double energy_j = 0;
};

class EnergyOptimizer {
 public:
  explicit EnergyOptimizer(hw::MachineSpec machine,
                           Accounting accounting = Accounting::kFullPackage)
      : machine_(std::move(machine)),
        governor_(machine_),
        accounting_(accounting) {}

  [[nodiscard]] const hw::MachineSpec& machine() const { return machine_; }
  [[nodiscard]] Accounting accounting() const { return accounting_; }

  /// All (plan, P-state, cores) execution points.
  [[nodiscard]] std::vector<PlanPoint> enumerate(
      const std::vector<PlanCandidate>& plans, int max_cores = 0) const;

  /// Pareto-optimal subset (minimal time for the energy spent), sorted by
  /// ascending time.
  [[nodiscard]] static std::vector<PlanPoint> pareto(
      std::vector<PlanPoint> points);

  /// Fastest point whose energy fits `budget_j`; nullopt when the budget is
  /// below the cheapest plan's energy (the flat left edge of Fig. 2).
  [[nodiscard]] std::optional<PlanPoint> best_under_budget(
      const std::vector<PlanCandidate>& plans, double budget_j,
      int max_cores = 0) const;

  /// Minimal-energy point regardless of time (the budget floor).
  [[nodiscard]] PlanPoint min_energy_point(
      const std::vector<PlanCandidate>& plans, int max_cores = 0) const;

 private:
  hw::MachineSpec machine_;
  sched::Governor governor_;
  Accounting accounting_;
};

}  // namespace eidb::opt
