// CPU-vs-accelerator placement decision (paper §III/§IV.B).
//
// Given an operator's single-core CPU time and its input/output volumes,
// decide whether shipping it to the co-processor pays off — in time or in
// energy. Data transfer amortization produces the classic break-even input
// size; below it the CPU wins ("only a limited number of operators show
// significant benefit", §III).
#pragma once

#include <string>

#include "hw/accelerator.hpp"
#include "hw/machine.hpp"
#include "opt/compression_advisor.hpp"  // Objective

namespace eidb::opt {

/// One placement alternative, fully costed.
struct PlacementEstimate {
  bool offload = false;
  double cpu_time_s = 0;
  double cpu_energy_j = 0;
  double xpu_time_s = 0;
  double xpu_energy_j = 0;

  [[nodiscard]] double chosen_time_s() const {
    return offload ? xpu_time_s : cpu_time_s;
  }
  [[nodiscard]] double chosen_energy_j() const {
    return offload ? xpu_energy_j : cpu_energy_j;
  }
};

class OffloadAdvisor {
 public:
  OffloadAdvisor(hw::MachineSpec machine, hw::AcceleratorSpec accelerator)
      : machine_(std::move(machine)), xpu_(std::move(accelerator)) {}

  /// Costs both placements for an operator that takes `cpu_seconds` on one
  /// CPU core at P-state `state`, reading `bytes_in` and writing
  /// `bytes_out`, and picks per `objective`.
  [[nodiscard]] PlacementEstimate advise(double cpu_seconds, double bytes_in,
                                         double bytes_out,
                                         const hw::DvfsState& state,
                                         Objective objective) const;

  /// Smallest input size (bytes, work scaling linearly at
  /// `cpu_seconds_per_byte`) for which offload wins under `objective`.
  /// Returns infinity when the device never wins.
  [[nodiscard]] double break_even_bytes(double cpu_seconds_per_byte,
                                        double output_ratio,
                                        const hw::DvfsState& state,
                                        Objective objective) const;

  [[nodiscard]] const hw::AcceleratorSpec& accelerator() const { return xpu_; }

 private:
  hw::MachineSpec machine_;
  hw::AcceleratorSpec xpu_;
};

}  // namespace eidb::opt
