// Join-order optimization: the §II scalability wall, made measurable.
//
// "Especially in web applications ... 100s or even 1.000s of (weakly
// structured) tables within a single database query are common. Current
// compilation (especially optimization) components and database runtime
// infrastructures are not able to cope with this situation."
//
// The component that breaks is join ordering: textbook dynamic programming
// (Selinger-style, over connected subsets) is exponential in the table
// count, while greedy operator ordering (GOO) is near-quadratic and keeps
// plan quality within a small factor. Experiment E9 measures both —
// optimization *time* versus table count, and plan-cost ratio where DP is
// feasible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eidb::opt {

/// A join query: tables with cardinalities, predicates as edges with join
/// selectivities. Table pairs without an edge combine via cross product
/// (selectivity 1) — allowed but penalized by the cost model naturally.
struct JoinGraph {
  std::vector<double> table_rows;
  struct Edge {
    int a = 0;
    int b = 0;
    double selectivity = 1.0;
  };
  std::vector<Edge> edges;

  [[nodiscard]] int table_count() const {
    return static_cast<int>(table_rows.size());
  }

  /// Random connected graph generator (chain + extra edges) for benches.
  static JoinGraph random(int tables, double extra_edge_ratio,
                          std::uint64_t seed);
};

/// A join plan with its predicted cost (C_out: sum of intermediate result
/// cardinalities — the standard metric for comparing orderings).
/// DP produces a left-deep plan (`order` holds the join sequence); greedy
/// operator ordering produces a bushy tree (`merges` holds the pairwise
/// merge sequence as (left, right) component-representative table ids).
struct JoinOrderPlan {
  std::vector<int> order;                        ///< Left-deep sequence (DP).
  std::vector<std::pair<int, int>> merges;       ///< Bushy merges (greedy).
  double cost = 0;
  std::string algorithm;
};

/// Exhaustive left-deep dynamic programming (Selinger). Throws eidb::Error
/// when tables > 20 (2^n state explodes — the point of E9).
[[nodiscard]] JoinOrderPlan optimize_dp(const JoinGraph& graph);

/// Greedy operator ordering (bushy): repeatedly merges the pair of partial
/// results with the smallest joint cardinality. Handles thousands of
/// tables in near-linear time over the edge count.
[[nodiscard]] JoinOrderPlan optimize_greedy(const JoinGraph& graph);

/// Cost (C_out) of an explicit left-deep order under the graph's
/// cardinalities — used to cross-check both optimizers.
[[nodiscard]] double order_cost(const JoinGraph& graph,
                                const std::vector<int>& order);

}  // namespace eidb::opt
