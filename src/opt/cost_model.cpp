#include "opt/cost_model.hpp"

#include <algorithm>
#include <vector>

#include "exec/aggregate.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace eidb::opt {

double CostModel::scan_cycles_per_tuple(exec::ScanVariant v,
                                        double sel) const {
  EIDB_EXPECTS(sel >= 0.0 && sel <= 1.0);
  switch (v) {
    case exec::ScanVariant::kBranching:
      // Flip probability of the selection branch on random data.
      return costs_.branch_base +
             costs_.branch_miss_penalty * 2.0 * sel * (1.0 - sel);
    case exec::ScanVariant::kPredicated:
      return costs_.predicated;
    case exec::ScanVariant::kAvx2:
      return costs_.avx2;
    case exec::ScanVariant::kAvx512:
      return costs_.avx512;
    case exec::ScanVariant::kAuto:
      return scan_cycles_per_tuple(pick_scan_variant(sel), sel);
  }
  return costs_.predicated;
}

exec::ScanVariant CostModel::pick_scan_variant(double sel, bool has_avx2,
                                               bool has_avx512) const {
  exec::ScanVariant best = exec::ScanVariant::kBranching;
  double best_cost = scan_cycles_per_tuple(best, sel);
  const auto consider = [&](exec::ScanVariant v) {
    const double c = scan_cycles_per_tuple(v, sel);
    if (c < best_cost) {
      best = v;
      best_cost = c;
    }
  };
  consider(exec::ScanVariant::kPredicated);
  if (has_avx2) consider(exec::ScanVariant::kAvx2);
  if (has_avx512) consider(exec::ScanVariant::kAvx512);
  return best;
}

exec::ScanVariant CostModel::pick_scan_variant(double sel) const {
  return pick_scan_variant(sel, exec::cpu_has_avx2(), exec::cpu_has_avx512());
}

hw::Work CostModel::scan_work(exec::ScanVariant v, std::uint64_t rows,
                              double sel, double bytes_per_tuple) const {
  return {scan_cycles_per_tuple(v, sel) * static_cast<double>(rows),
          bytes_per_tuple * static_cast<double>(rows)};
}

hw::Work CostModel::agg_work(std::uint64_t rows,
                             double bytes_per_tuple) const {
  return {costs_.agg_per_tuple * static_cast<double>(rows),
          bytes_per_tuple * static_cast<double>(rows)};
}

hw::Work CostModel::group_work(std::uint64_t rows, bool dense,
                               double bytes_per_tuple) const {
  const double cpt =
      dense ? costs_.group_dense_per_tuple : costs_.group_hash_per_tuple;
  return {cpt * static_cast<double>(rows),
          bytes_per_tuple * static_cast<double>(rows)};
}

hw::Work CostModel::group_work(std::uint64_t rows,
                               const storage::ColumnStats& key_stats,
                               double bytes_per_tuple) const {
  // Same policy as the exec kernels: dense accumulator arrays when the
  // key domain fits exec::kDenseDomainLimit, hashing otherwise.
  const std::int64_t domain = key_stats.domain();
  const bool dense = domain >= 1 && domain <= exec::kDenseDomainLimit;
  return group_work(rows, dense, bytes_per_tuple);
}

double CostModel::estimate_selectivity(const storage::ColumnStats& stats,
                                       std::int64_t lo, std::int64_t hi) {
  return stats.range_selectivity(lo, hi);
}

double CostModel::estimate_selectivity(const storage::ColumnStats& stats,
                                       double lo, double hi) {
  return stats.range_selectivity(lo, hi);
}

hw::Work CostModel::join_work(std::uint64_t build_rows,
                              std::uint64_t probe_rows,
                              double bytes_per_tuple) const {
  return {costs_.join_build_per_tuple * static_cast<double>(build_rows) +
              costs_.join_probe_per_tuple * static_cast<double>(probe_rows),
          bytes_per_tuple * static_cast<double>(build_rows + probe_rows)};
}

std::string join_arm_name(JoinArm arm) {
  switch (arm) {
    case JoinArm::kHashJoin:
      return "hash-join";
    case JoinArm::kRadixJoin:
      return "radix-join";
    case JoinArm::kDenseJoin:
      return "dense-join";
  }
  return "?";
}

hw::Work CostModel::join_work(JoinArm arm, std::uint64_t build_rows,
                              std::uint64_t probe_rows,
                              double bytes_per_tuple) const {
  hw::Work work = join_work(build_rows, probe_rows, bytes_per_tuple);
  if (arm == JoinArm::kRadixJoin) {
    const double n = static_cast<double>(build_rows + probe_rows);
    work.cpu_cycles += costs_.radix_partition_per_tuple * n;
    // The partition pass writes (key, row) pairs and the per-partition
    // join reads them back: two extra 12-byte streams over both sides.
    work.dram_bytes += 2.0 * 12.0 * n;
  }
  return work;
}

JoinArm CostModel::pick_join_arm(std::uint64_t build_rows,
                                 std::uint64_t distinct_hint,
                                 std::uint64_t key_domain,
                                 unsigned key_width_bytes) const {
  // Dense direct-address arm: the domain must be affordable (4 bytes per
  // value) and not grossly sparser than the build side — an empty-ish
  // array per build row wastes more cache than hashing costs.
  if (key_domain >= 1 && key_domain <= costs_.dense_join_max_domain &&
      key_domain <= std::max<std::uint64_t>(1024, build_rows * 256))
    return JoinArm::kDenseJoin;
  const std::uint64_t entries =
      distinct_hint != 0 ? std::min(build_rows, distinct_hint) : build_rows;
  // A hash slot is the key plus an 8-byte row/next payload: narrower keys
  // (int32 / dictionary codes) pack more entries into the same cache
  // budget, pushing out the point where radix partitioning pays off.
  const double slot_scale =
      16.0 / (8.0 + static_cast<double>(key_width_bytes));
  const auto cache_entries = static_cast<std::uint64_t>(
      static_cast<double>(costs_.join_cache_build_entries) * slot_scale);
  return entries > cache_entries ? JoinArm::kRadixJoin : JoinArm::kHashJoin;
}

hw::Work CostModel::remap_work(std::uint64_t entries) const {
  const double n = static_cast<double>(entries);
  // Linear merge over both sorted dictionaries plus one int32 write+read
  // of the translation table.
  return {costs_.dict_remap_per_entry * n, 2.0 * 4.0 * n};
}

unsigned CostModel::pick_radix_bits(std::uint64_t build_rows) const {
  unsigned bits = 4;
  while (bits < 12 &&
         (build_rows >> bits) > costs_.join_cache_build_entries)
    ++bits;
  return bits;
}

std::string storage_arm_name(StorageArm arm) {
  switch (arm) {
    case StorageArm::kPlainScan:
      return "plain-scan";
    case StorageArm::kPackedScan:
      return "packed-scan";
    case StorageArm::kDecodeThenScan:
      return "decode-then-scan";
  }
  return "?";
}

hw::Work CostModel::storage_scan_work(StorageArm arm, std::uint64_t rows,
                                      unsigned bits,
                                      double plain_bytes) const {
  const double n = static_cast<double>(rows);
  const double packed_bytes_per_tuple = static_cast<double>(bits) / 8.0;
  switch (arm) {
    case StorageArm::kPlainScan:
      return {costs_.avx2 * n, plain_bytes * n};
    case StorageArm::kPackedScan: {
      const bool aligned = bits == 8 || bits == 16 || bits == 32;
      const double cpt =
          aligned ? costs_.packed_scan_aligned : costs_.packed_scan_unaligned;
      return {cpt * n, packed_bytes_per_tuple * n};
    }
    case StorageArm::kDecodeThenScan:
      // Unpack into scratch (read packed, write plain-width scratch), then
      // a plain kernel over the scratch — three byte streams total.
      return {(costs_.transient_decode_per_tuple + costs_.avx2) * n,
              (packed_bytes_per_tuple + 2.0 * plain_bytes) * n};
  }
  return {};
}

StorageArm CostModel::pick_storage_arm(const hw::MachineSpec& machine,
                                       std::uint64_t rows, unsigned bits,
                                       double plain_bytes,
                                       bool packed_kernel_available,
                                       bool by_time) const {
  const hw::DvfsState state = machine.dvfs.fastest();
  const auto cost = [&](StorageArm arm) {
    const hw::Work w = storage_scan_work(arm, rows, bits, plain_bytes);
    return by_time ? machine.exec_time_s(w, state)
                   : machine.energy_j(w, state);
  };
  const StorageArm candidate = packed_kernel_available
                                   ? StorageArm::kPackedScan
                                   : StorageArm::kDecodeThenScan;
  return cost(candidate) <= cost(StorageArm::kPlainScan)
             ? candidate
             : StorageArm::kPlainScan;
}

ScanSharingChoice CostModel::pick_scan_sharing(
    const hw::MachineSpec& machine, std::size_t members, double scan_bytes,
    double member_cycles, const hw::AcceleratorSpec& near_memory) const {
  ScanSharingChoice out;
  if (members < 2 || scan_bytes <= 0) return out;
  const hw::DvfsState& s = machine.dvfs.fastest();
  const double n = static_cast<double>(members);

  hw::Work one;
  one.cpu_cycles = member_cycles;
  one.dram_bytes = scan_bytes;
  out.independent_j = n * machine.energy_j(one, s);

  // Fused: the lead member streams the table from DRAM once; every
  // follower re-evaluates the cache-resident chunk at the near-memory
  // point (row-buffer-cost bytes, modest compute speedup). Plus the
  // per-member coordination cycles of grouping and attribution.
  const double follower_cpu_s =
      s.freq_ghz > 0 ? member_cycles / (s.freq_ghz * 1e9) : 0.0;
  const double follower_j =
      near_memory.offload_energy_j(follower_cpu_s, scan_bytes, 0.0);
  hw::Work coord;
  coord.cpu_cycles = costs_.shared_scan_coord_cycles * n;
  out.shared_j = machine.energy_j(one, s) + (n - 1.0) * follower_j +
                 machine.energy_j(coord, s);
  out.share = out.shared_j < out.independent_j;
  return out;
}

double CostModel::broadcast_wire_bytes(double build_rows, std::size_t shards,
                                       double width_bytes) const {
  if (shards <= 1) return 0;
  return build_rows * width_bytes * static_cast<double>(shards - 1);
}

double CostModel::repartition_wire_bytes(double build_rows, double probe_rows,
                                         std::size_t shards,
                                         double width_bytes) const {
  if (shards <= 1) return 0;
  return (build_rows + probe_rows) * width_bytes *
         static_cast<double>(shards - 1) / static_cast<double>(shards);
}

double CostModel::gather_wire_bytes(double result_rows, double row_bytes,
                                    std::size_t shards) const {
  if (shards <= 1) return 0;
  return result_rows * row_bytes * static_cast<double>(shards - 1) /
         static_cast<double>(shards);
}

namespace {

/// Measures cycles/tuple of one kernel invocation via wall time and the
/// host's nominal frequency (adequate for *relative* calibration).
template <typename Fn>
double measure_cycles_per_tuple(std::size_t rows, double nominal_ghz,
                                Fn&& fn) {
  Stopwatch sw;
  fn();
  const double s = sw.elapsed_seconds();
  return s * nominal_ghz * 1e9 / static_cast<double>(rows);
}

}  // namespace

CostModel CostModel::calibrate(std::size_t sample_rows) {
  EIDB_EXPECTS(sample_rows >= 1024);
  // Host nominal frequency is unknown without cpuid gymnastics; relative
  // constants are what matter, so a fixed 2.5 GHz reference is used.
  constexpr double kRefGhz = 2.5;

  Pcg32 rng(12345);
  std::vector<std::int32_t> data(sample_rows);
  for (auto& v : data) v = static_cast<std::int32_t>(rng.next_bounded(10000));
  std::vector<std::uint32_t> idx(sample_rows);
  BitVector bitmap(sample_rows);

  KernelCosts costs;  // start from defaults, overwrite what we measure

  // Predicated at 50% selectivity (selectivity-independent by design).
  costs.predicated = measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
    (void)exec::scan_predicated(data, 0, 4999, idx.data());
  });

  // Branching at ~0% and 50%: solve base + penalty from the two points.
  const double b0 = measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
    (void)exec::scan_branching(data, -2, -1, idx.data());
  });
  const double b50 = measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
    (void)exec::scan_branching(data, 0, 4999, idx.data());
  });
  costs.branch_base = std::max(0.2, b0);
  costs.branch_miss_penalty = std::max(1.0, (b50 - b0) / 0.5);

  if (exec::cpu_has_avx2())
    costs.avx2 = measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
      exec::scan_bitmap_avx2(data, 0, 4999, bitmap);
    });
  if (exec::cpu_has_avx512())
    costs.avx512 = measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
      exec::scan_bitmap_avx512(data, 0, 4999, bitmap);
    });
  costs.scalar_bitmap = measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
    exec::scan_bitmap_scalar(data, 0, 4999, bitmap);
  });

  // Aggregation over a 50%-selective bitmap (the executor's actual path:
  // word-walking the selection), and dense grouped aggregation.
  std::vector<std::int64_t> values64(sample_rows);
  for (std::size_t i = 0; i < sample_rows; ++i) values64[i] = data[i];
  exec::scan_bitmap_scalar(data, 0, 4999, bitmap);
  // measure_cycles_per_tuple divides by all rows, but only ~50% are
  // selected and the model charges per *selected* tuple: scale by 2.
  costs.agg_per_tuple =
      2.0 * measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
        (void)exec::aggregate_selected(values64, bitmap);
      });
  std::vector<std::int64_t> keys(sample_rows);
  for (std::size_t i = 0; i < sample_rows; ++i) keys[i] = data[i] & 1023;
  BitVector all(sample_rows);
  all.set_all();
  costs.group_dense_per_tuple =
      measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
        (void)exec::group_aggregate(keys, values64, all,
                                    exec::GroupStrategy::kDenseArray);
      });
  costs.group_hash_per_tuple =
      measure_cycles_per_tuple(sample_rows, kRefGhz, [&] {
        (void)exec::group_aggregate(keys, values64, all,
                                    exec::GroupStrategy::kHash);
      });

  return CostModel(costs);
}

}  // namespace eidb::opt
