#include "opt/offload_advisor.hpp"

#include <limits>

#include "util/assert.hpp"

namespace eidb::opt {

PlacementEstimate OffloadAdvisor::advise(double cpu_seconds, double bytes_in,
                                         double bytes_out,
                                         const hw::DvfsState& state,
                                         Objective objective) const {
  EIDB_EXPECTS(cpu_seconds >= 0 && bytes_in >= 0 && bytes_out >= 0);
  PlacementEstimate e;
  e.cpu_time_s = cpu_seconds;
  e.cpu_energy_j =
      (state.active_power_w - machine_.core_idle_power_w) * cpu_seconds +
      (bytes_in + bytes_out) * machine_.dram_energy_nj_per_byte * 1e-9;
  e.xpu_time_s = xpu_.offload_time_s(cpu_seconds, bytes_in, bytes_out);
  // Device energy + the CPU core babysitting the transfer (idle-ish).
  e.xpu_energy_j = xpu_.offload_energy_j(cpu_seconds, bytes_in, bytes_out) +
                   (bytes_in + bytes_out) *
                       machine_.dram_energy_nj_per_byte * 1e-9;
  e.offload = objective == Objective::kTime
                  ? e.xpu_time_s < e.cpu_time_s
                  : e.xpu_energy_j < e.cpu_energy_j;
  return e;
}

double OffloadAdvisor::break_even_bytes(double cpu_seconds_per_byte,
                                        double output_ratio,
                                        const hw::DvfsState& state,
                                        Objective objective) const {
  EIDB_EXPECTS(cpu_seconds_per_byte > 0);
  EIDB_EXPECTS(output_ratio >= 0);
  // Binary search over input size; costs are monotone in bytes.
  double lo = 1, hi = 1e15;
  const auto offload_wins = [&](double bytes) {
    return advise(cpu_seconds_per_byte * bytes, bytes, bytes * output_ratio,
                  state, objective)
        .offload;
  };
  if (!offload_wins(hi)) return std::numeric_limits<double>::infinity();
  if (offload_wins(lo)) return lo;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = (lo + hi) / 2;
    if (offload_wins(mid))
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace eidb::opt
