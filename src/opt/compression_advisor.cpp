#include "opt/compression_advisor.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::opt {

std::string objective_name(Objective o) {
  return o == Objective::kTime ? "time" : "energy";
}

std::vector<CodecProfile> CompressionAdvisor::profile(
    std::span<const std::int64_t> payload, std::size_t sample_values) const {
  const std::size_t n = std::min(sample_values, payload.size());
  const auto sample = payload.subspan(0, n);
  std::vector<CodecProfile> out;
  for (const storage::CodecKind kind : storage::all_codec_kinds()) {
    const auto codec = storage::make_codec(kind);
    CodecProfile p;
    p.kind = kind;
    p.cycles_per_value = codec->nominal_cycles_per_value();
    if (n == 0) {
      p.ratio = 1.0;
    } else {
      const auto encoded = codec->encode(sample);
      p.ratio = encoded.empty()
                    ? 1.0
                    : static_cast<double>(sample.size_bytes()) /
                          static_cast<double>(encoded.size());
    }
    out.push_back(p);
  }
  return out;
}

ExchangeEstimate CompressionAdvisor::estimate(const CodecProfile& profile,
                                              std::uint64_t total_values,
                                              const hw::LinkSpec& link,
                                              const hw::DvfsState& state) const {
  EIDB_EXPECTS(profile.ratio > 0);
  const double raw_bytes = static_cast<double>(total_values) * 8.0;
  const double wire_bytes = raw_bytes / profile.ratio;
  const double cpu_s = profile.cycles_per_value *
                       static_cast<double>(total_values) /
                       (state.freq_ghz * 1e9);
  ExchangeEstimate e;
  e.kind = profile.kind;
  e.time_s = cpu_s + link.transfer_time_s(wire_bytes);
  // CPU billed incrementally (package is on regardless); wire billed fully.
  e.energy_j = (state.active_power_w - machine_.core_idle_power_w) * cpu_s +
               (raw_bytes + wire_bytes) * machine_.dram_energy_nj_per_byte *
                   1e-9 +
               link.transfer_energy_j(wire_bytes);
  return e;
}

CompressionAdvisor::StorageAdvice CompressionAdvisor::advise_storage(
    const storage::ColumnStats& stats, storage::TypeId type,
    const CostModel& model, Objective objective,
    bool packed_kernel_available) const {
  StorageAdvice advice;
  const auto plain_bits =
      static_cast<unsigned>(storage::physical_size(type)) * 8;
  advice.bits = plain_bits;
  unsigned bits = 0;
  advice.encoding = storage::choose_encoding(stats, type, &bits);
  if (advice.encoding == storage::Encoding::kPlain) return advice;
  advice.bits = bits;

  // One decision procedure for both objectives: the model picks the arm
  // under modeled energy or roofline time.
  const double plain_bytes = static_cast<double>(storage::physical_size(type));
  advice.scan_arm = model.pick_storage_arm(machine_, stats.rows, bits,
                                           plain_bytes,
                                           packed_kernel_available,
                                           objective == Objective::kTime);
  if (advice.scan_arm == StorageArm::kPlainScan) {
    advice.scan_ratio = 1.0;
  } else {
    const double packed_bytes = static_cast<double>(bits) / 8.0;
    advice.scan_ratio = packed_bytes > 0
                            ? plain_bytes / packed_bytes
                            : static_cast<double>(stats.rows) * plain_bytes;
  }
  return advice;
}

ExchangeEstimate CompressionAdvisor::advise(
    std::span<const std::int64_t> payload, std::uint64_t total_values,
    const hw::LinkSpec& link, const hw::DvfsState& state,
    Objective objective) const {
  const std::vector<CodecProfile> profiles = profile(payload);
  EIDB_ASSERT(!profiles.empty());
  ExchangeEstimate best;
  bool first = true;
  for (const CodecProfile& p : profiles) {
    const ExchangeEstimate e = estimate(p, total_values, link, state);
    const double key = objective == Objective::kTime ? e.time_s : e.energy_j;
    const double best_key =
        objective == Objective::kTime ? best.time_s : best.energy_j;
    if (first || key < best_key) {
      best = e;
      first = false;
    }
  }
  return best;
}

}  // namespace eidb::opt
