#include "opt/join_order.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace eidb::opt {

JoinGraph JoinGraph::random(int tables, double extra_edge_ratio,
                            std::uint64_t seed) {
  EIDB_EXPECTS(tables >= 1);
  Pcg32 rng(seed);
  JoinGraph g;
  g.table_rows.reserve(static_cast<std::size_t>(tables));
  for (int t = 0; t < tables; ++t)
    g.table_rows.push_back(std::pow(
        10.0, 3.0 + 3.0 * rng.next_double()));  // 1e3 .. 1e6 rows
  // Connected chain, then extra random edges.
  for (int t = 1; t < tables; ++t)
    g.edges.push_back({t - 1, t, std::pow(10.0, -2.0 - 3.0 * rng.next_double())});
  const auto extra = static_cast<int>(extra_edge_ratio * tables);
  for (int e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng.next_bounded(
        static_cast<std::uint32_t>(tables)));
    const int b = static_cast<int>(rng.next_bounded(
        static_cast<std::uint32_t>(tables)));
    if (a == b) continue;
    g.edges.push_back({a, b, std::pow(10.0, -2.0 - 3.0 * rng.next_double())});
  }
  return g;
}

namespace {

/// Selectivity between a set of already-joined tables and table `t`:
/// product over all edges crossing the cut.
double cut_selectivity(const JoinGraph& g, std::uint64_t joined_mask, int t) {
  double sel = 1.0;
  for (const JoinGraph::Edge& e : g.edges) {
    const bool a_in = (joined_mask >> e.a) & 1;
    const bool b_in = (joined_mask >> e.b) & 1;
    if ((a_in && e.b == t) || (b_in && e.a == t)) sel *= e.selectivity;
  }
  return sel;
}

}  // namespace

double order_cost(const JoinGraph& g, const std::vector<int>& order) {
  EIDB_EXPECTS(!order.empty());
  double cost = 0;
  double card = g.table_rows[static_cast<std::size_t>(order[0])];
  std::uint64_t mask = std::uint64_t{1} << order[0];
  for (std::size_t i = 1; i < order.size(); ++i) {
    const int t = order[i];
    card = card * g.table_rows[static_cast<std::size_t>(t)] *
           cut_selectivity(g, mask, t);
    cost += card;  // C_out
    mask |= std::uint64_t{1} << t;
  }
  return cost;
}

JoinOrderPlan optimize_dp(const JoinGraph& g) {
  const int n = g.table_count();
  EIDB_EXPECTS(n >= 1);
  if (n > 20)
    throw Error("DP join ordering infeasible beyond 20 tables (2^n states); "
                "this failure mode is the paper's point — use greedy");

  struct State {
    double cost = std::numeric_limits<double>::infinity();
    double card = 0;
    int last = -1;
    std::uint64_t prev_mask = 0;
  };
  // Left-deep DP over subsets.
  std::vector<State> dp(std::size_t{1} << n);
  for (int t = 0; t < n; ++t) {
    State& s = dp[std::uint64_t{1} << t];
    s.cost = 0;
    s.card = g.table_rows[static_cast<std::size_t>(t)];
    s.last = t;
  }
  const std::uint64_t full = (std::uint64_t{1} << n) - 1;
  for (std::uint64_t mask = 1; mask <= full; ++mask) {
    const State& cur = dp[mask];
    if (cur.cost == std::numeric_limits<double>::infinity()) continue;
    for (int t = 0; t < n; ++t) {
      if ((mask >> t) & 1) continue;
      const double new_card = cur.card *
                              g.table_rows[static_cast<std::size_t>(t)] *
                              cut_selectivity(g, mask, t);
      const double new_cost = cur.cost + new_card;
      State& nxt = dp[mask | (std::uint64_t{1} << t)];
      if (new_cost < nxt.cost) {
        nxt.cost = new_cost;
        nxt.card = new_card;
        nxt.last = t;
        nxt.prev_mask = mask;
      }
    }
  }
  // Reconstruct.
  JoinOrderPlan plan;
  plan.algorithm = "dp";
  plan.cost = dp[full].cost;
  std::vector<int> reversed;
  std::uint64_t mask = full;
  while (mask != 0) {
    const State& s = dp[mask];
    reversed.push_back(s.last);
    mask = s.prev_mask;
  }
  plan.order.assign(reversed.rbegin(), reversed.rend());
  return plan;
}

JoinOrderPlan optimize_greedy(const JoinGraph& g) {
  const int n = g.table_count();
  EIDB_EXPECTS(n >= 1);
  JoinOrderPlan plan;
  plan.algorithm = "greedy";
  if (n == 1) {
    plan.order = {0};
    return plan;
  }

  constexpr double kCardCap = 1e300;

  // Union-find over components.
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) parent[static_cast<std::size_t>(t)] = t;
  const auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  // Per-component state: cardinality, neighbor->selectivity product,
  // version for lazy heap invalidation.
  std::vector<double> card(g.table_rows);
  std::vector<std::unordered_map<int, double>> nbr(
      static_cast<std::size_t>(n));
  std::vector<std::uint64_t> version(static_cast<std::size_t>(n), 0);
  for (const JoinGraph::Edge& e : g.edges) {
    if (e.a == e.b) continue;
    auto& ma = nbr[static_cast<std::size_t>(e.a)][e.b];
    ma = (ma == 0 ? 1.0 : ma) * e.selectivity;
    auto& mb = nbr[static_cast<std::size_t>(e.b)][e.a];
    mb = (mb == 0 ? 1.0 : mb) * e.selectivity;
  }

  struct Candidate {
    double cost;
    int a, b;
    std::uint64_t va, vb;
    bool operator>(const Candidate& o) const { return cost > o.cost; }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> heap;
  const auto push_candidate = [&](int a, int b, double sel) {
    const double c = std::min(
        kCardCap, card[static_cast<std::size_t>(a)] *
                      card[static_cast<std::size_t>(b)] * sel);
    heap.push({c, a, b, version[static_cast<std::size_t>(a)],
               version[static_cast<std::size_t>(b)]});
  };
  for (int t = 0; t < n; ++t)
    for (const auto& [other, sel] : nbr[static_cast<std::size_t>(t)])
      if (t < other) push_candidate(t, other, sel);

  int components = n;
  while (components > 1) {
    int a = -1, b = -1;
    double merge_card = kCardCap;
    // Pop until a live candidate surfaces.
    while (!heap.empty()) {
      const Candidate c = heap.top();
      heap.pop();
      const int ra = find(c.a), rb = find(c.b);
      if (ra == rb) continue;  // already merged
      if (c.va != version[static_cast<std::size_t>(c.a)] ||
          c.vb != version[static_cast<std::size_t>(c.b)])
        continue;  // stale cardinality
      a = ra;
      b = rb;
      merge_card = c.cost;
      break;
    }
    if (a < 0) {
      // Disconnected graph: cross-product the two cheapest components.
      double c1 = kCardCap, c2 = kCardCap;
      for (int t = 0; t < n; ++t) {
        if (find(t) != t) continue;
        const double ct = card[static_cast<std::size_t>(t)];
        if (ct < c1) {
          c2 = c1;
          b = a;
          c1 = ct;
          a = t;
        } else if (ct < c2) {
          c2 = ct;
          b = t;
        }
      }
      EIDB_ASSERT(a >= 0 && b >= 0 && a != b);
      merge_card = std::min(kCardCap, c1 * c2);
    }

    // Merge b into a (keep a as representative; swap for smaller map).
    if (nbr[static_cast<std::size_t>(a)].size() <
        nbr[static_cast<std::size_t>(b)].size())
      std::swap(a, b);
    plan.merges.push_back({a, b});
    plan.cost = std::min(kCardCap, plan.cost + merge_card);
    parent[static_cast<std::size_t>(b)] = a;
    card[static_cast<std::size_t>(a)] = merge_card;
    ++version[static_cast<std::size_t>(a)];
    ++version[static_cast<std::size_t>(b)];  // b's cardinality is now dead
    // Fold b's neighbor selectivities into a's.
    for (const auto& [other_raw, sel] : nbr[static_cast<std::size_t>(b)]) {
      const int other = find(other_raw);
      if (other == a) continue;
      auto& slot = nbr[static_cast<std::size_t>(a)][other];
      slot = (slot == 0 ? 1.0 : slot) * sel;
    }
    nbr[static_cast<std::size_t>(b)].clear();
    // Refresh candidates from a to its (live) neighbors.
    std::unordered_map<int, double> compacted;
    for (const auto& [other_raw, sel] : nbr[static_cast<std::size_t>(a)]) {
      const int other = find(other_raw);
      if (other == a) continue;
      auto& slot = compacted[other];
      slot = (slot == 0 ? 1.0 : slot) * sel;
    }
    nbr[static_cast<std::size_t>(a)] = std::move(compacted);
    for (const auto& [other, sel] : nbr[static_cast<std::size_t>(a)])
      push_candidate(a, other, sel);
    --components;
  }
  return plan;
}

}  // namespace eidb::opt
