#include "opt/energy_optimizer.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace eidb::opt {

std::vector<PlanPoint> EnergyOptimizer::enumerate(
    const std::vector<PlanCandidate>& plans, int max_cores) const {
  if (max_cores <= 0) max_cores = machine_.cores;
  max_cores = std::min(max_cores, machine_.cores);
  std::vector<PlanPoint> points;
  points.reserve(plans.size() * machine_.dvfs.size() *
                 static_cast<std::size_t>(max_cores));
  for (const PlanCandidate& plan : plans) {
    for (int cores = 1; cores <= max_cores; ++cores) {
      for (const hw::DvfsState& s : machine_.dvfs.states()) {
        const hw::Work per_core{plan.work.cpu_cycles / cores,
                                plan.work.dram_bytes / cores};
        PlanPoint p;
        p.plan_name = plan.name;
        p.state = s;
        p.cores = cores;
        p.time_s = machine_.exec_time_s(per_core, s, 1.0 / cores);
        const double power_w =
            accounting_ == Accounting::kFullPackage
                ? machine_.package_power_w(s, cores)
                : static_cast<double>(cores) *
                      (s.active_power_w - machine_.core_idle_power_w);
        p.energy_j =
            power_w * p.time_s +
            plan.work.dram_bytes * machine_.dram_energy_nj_per_byte * 1e-9;
        points.push_back(p);
      }
    }
  }
  return points;
}

std::vector<PlanPoint> EnergyOptimizer::pareto(std::vector<PlanPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const PlanPoint& a, const PlanPoint& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.energy_j < b.energy_j;
            });
  std::vector<PlanPoint> frontier;
  double best_energy = std::numeric_limits<double>::infinity();
  for (const PlanPoint& p : points) {
    if (p.energy_j < best_energy) {
      frontier.push_back(p);
      best_energy = p.energy_j;
    }
  }
  return frontier;
}

std::optional<PlanPoint> EnergyOptimizer::best_under_budget(
    const std::vector<PlanCandidate>& plans, double budget_j,
    int max_cores) const {
  std::optional<PlanPoint> best;
  for (const PlanPoint& p : enumerate(plans, max_cores)) {
    if (p.energy_j > budget_j) continue;
    if (!best || p.time_s < best->time_s ||
        (p.time_s == best->time_s && p.energy_j < best->energy_j))
      best = p;
  }
  return best;
}

PlanPoint EnergyOptimizer::min_energy_point(
    const std::vector<PlanCandidate>& plans, int max_cores) const {
  EIDB_EXPECTS(!plans.empty());
  PlanPoint best;
  best.energy_j = std::numeric_limits<double>::infinity();
  for (const PlanPoint& p : enumerate(plans, max_cores))
    if (p.energy_j < best.energy_j) best = p;
  return best;
}

}  // namespace eidb::opt
