// Compress-or-not advisor for intermediate shipping (experiment E2).
//
// Implements the paper's §IV decision verbatim: "an optimizer has to decide
// about sending intermediate data in a compressed or uncompressed format to
// other nodes or even sockets on the same board ... the optimizer has to
// decide on a case-by-case basis." The advisor profiles codecs on a sample
// of the payload (real compression ratios, modeled or measured CPU cost)
// and picks the arm minimizing time or energy for the given link.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hw/interconnect.hpp"
#include "hw/machine.hpp"
#include "opt/cost_model.hpp"
#include "storage/column.hpp"
#include "storage/int_codec.hpp"

namespace eidb::opt {

enum class Objective : std::uint8_t { kTime, kEnergy };

[[nodiscard]] std::string objective_name(Objective o);

/// Profiled behaviour of one codec on (a sample of) the payload.
struct CodecProfile {
  storage::CodecKind kind = storage::CodecKind::kPlain;
  double ratio = 1.0;             ///< raw bytes / compressed bytes.
  double cycles_per_value = 0.0;  ///< encode+decode.
};

/// Predicted cost of one exchange arm.
struct ExchangeEstimate {
  storage::CodecKind kind = storage::CodecKind::kPlain;
  double time_s = 0;
  double energy_j = 0;
};

class CompressionAdvisor {
 public:
  explicit CompressionAdvisor(hw::MachineSpec machine)
      : machine_(std::move(machine)) {}

  /// Profiles all codecs on up to `sample_values` values of `payload`
  /// (ratios are real; CPU cost from codec nominal figures).
  [[nodiscard]] std::vector<CodecProfile> profile(
      std::span<const std::int64_t> payload,
      std::size_t sample_values = 4096) const;

  /// Predicts (time, energy) of shipping `total_values` int64s with the
  /// profiled codec over `link` at P-state `state`.
  [[nodiscard]] ExchangeEstimate estimate(const CodecProfile& profile,
                                          std::uint64_t total_values,
                                          const hw::LinkSpec& link,
                                          const hw::DvfsState& state) const;

  /// Best codec for the payload/link under `objective`.
  [[nodiscard]] ExchangeEstimate advise(std::span<const std::int64_t> payload,
                                        std::uint64_t total_values,
                                        const hw::LinkSpec& link,
                                        const hw::DvfsState& state,
                                        Objective objective) const;

  /// Storage-side advice for a resident column (the E2 decision turned
  /// inward): which physical encoding to keep it in, how much the packed
  /// image shrinks the scan traffic, and how a scan should consume it.
  struct StorageAdvice {
    storage::Encoding encoding = storage::Encoding::kPlain;
    unsigned bits = 0;        ///< Packed width (plain width when kPlain).
    double scan_ratio = 1.0;  ///< plain scan bytes / advised scan bytes.
    StorageArm scan_arm = StorageArm::kPlainScan;
  };

  /// Advises from cached column statistics; `packed_kernel_available`
  /// mirrors whether the consuming operator has a packed kernel (the
  /// executor's predicate/aggregate paths do; joins and sorts do not).
  [[nodiscard]] StorageAdvice advise_storage(
      const storage::ColumnStats& stats, storage::TypeId type,
      const CostModel& model, Objective objective,
      bool packed_kernel_available = true) const;

 private:
  hw::MachineSpec machine_;
};

}  // namespace eidb::opt
