// Calibrated time/energy cost model for operator variants.
//
// The optimizer's currency: cycles per tuple and bytes per tuple, turned
// into seconds and joules through hw::MachineSpec. Constants default to
// published per-kernel figures and can be *calibrated* on the host by
// micro-measurement (`CostModel::calibrate()`), which is exactly how the
// engine would adapt to new hardware — §IV.B's "operators have to quickly
// adapt ... to changing hardware structures".
#pragma once

#include <cstdint>
#include <string>

#include "exec/scan_kernels.hpp"
#include "hw/accelerator.hpp"
#include "hw/machine.hpp"
#include "storage/column.hpp"

namespace eidb::opt {

/// How a scan consumes a column that has a bit-packed image.
enum class StorageArm : std::uint8_t {
  kPlainScan,       ///< read the plain array (or no image exists)
  kPackedScan,      ///< evaluate directly on the packed image
  kDecodeThenScan,  ///< transient decode into scratch, then plain kernels
};

[[nodiscard]] std::string storage_arm_name(StorageArm arm);

/// Physical arm of the vectorized join pipeline.
enum class JoinArm : std::uint8_t {
  kHashJoin,   ///< one cache-resident hash table, direct probe
  kRadixJoin,  ///< radix-partition both sides, join partition pairs
  kDenseJoin,  ///< direct-address array over a dense build-key domain
};

[[nodiscard]] std::string join_arm_name(JoinArm arm);

/// Verdict of the shared-scan arm for one compatible batch: fuse the
/// members into one pass, or run them independently.
struct ScanSharingChoice {
  bool share = false;
  double independent_j = 0;  ///< Modeled energy of N independent scans.
  double shared_j = 0;       ///< Modeled energy of the fused pass.
};

/// Cycles-per-tuple parameters for each kernel family.
struct KernelCosts {
  // Branching selection: base work plus misprediction penalty weighted by
  // the per-tuple flip probability 2*sel*(1-sel) (random data).
  double branch_base = 1.6;
  double branch_miss_penalty = 16.0;
  double predicated = 2.4;
  double avx2 = 0.4;
  double avx512 = 0.25;
  double scalar_bitmap = 1.4;
  double agg_per_tuple = 1.5;
  double group_dense_per_tuple = 3.0;
  double group_hash_per_tuple = 9.0;
  double join_build_per_tuple = 12.0;
  double join_probe_per_tuple = 10.0;
  double materialize_per_value = 20.0;
  // Storage-side (compressed-segment) scan arms.
  double packed_scan_aligned = 0.35;    ///< byte-aligned widths: direct SIMD
  double packed_scan_unaligned = 2.2;   ///< odd widths: block unpack + compare
  double transient_decode_per_tuple = 1.6;  ///< bitunpack into scratch
  // Join-arm parameters.
  double radix_partition_per_tuple = 2.5;  ///< scatter into partitions
  /// Build-side hash-table entries that stay cache-resident (~L2 worth of
  /// 16-byte slots): a larger build thrashes a single table and the radix
  /// arm partitions it down to this size.
  std::uint64_t join_cache_build_entries = 1u << 16;
  /// Largest build-key value domain the dense direct-address arm will
  /// allocate heads for (4 bytes per domain value).
  std::uint64_t dense_join_max_domain = 1u << 20;
  /// Cross-dictionary code translation (string/double join keys): cycles
  /// per build-dictionary entry for the linear merge that produces the
  /// build-code -> probe-code remap.
  double dict_remap_per_entry = 3.0;
  /// Shared-scan coordination overhead per fused-group member (cycles):
  /// grouping, per-member selection bookkeeping and the attribution fold.
  /// Keeps the sharing arm from fusing trivially small scans where the
  /// bookkeeping outweighs the saved DRAM pass.
  double shared_scan_coord_cycles = 50'000.0;
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(KernelCosts costs) : costs_(costs) {}

  /// Library defaults (Sandy-Bridge-class constants).
  [[nodiscard]] static CostModel defaults() { return CostModel{}; }

  /// Micro-measures the scan kernels on this host and fits the constants.
  /// `sample_rows` controls calibration cost (~ms at the default).
  [[nodiscard]] static CostModel calibrate(std::size_t sample_rows = 1 << 20);

  [[nodiscard]] const KernelCosts& costs() const { return costs_; }

  /// Predicted cycles/tuple of an index-producing selection at selectivity
  /// `sel` with variant `v` (kAuto resolves to the predicted-best).
  [[nodiscard]] double scan_cycles_per_tuple(exec::ScanVariant v,
                                             double sel) const;

  /// Predicted-cheapest variant at selectivity `sel`, honoring the host ISA
  /// (pass false to model a machine without SIMD).
  [[nodiscard]] exec::ScanVariant pick_scan_variant(double sel, bool has_avx2,
                                                    bool has_avx512) const;
  [[nodiscard]] exec::ScanVariant pick_scan_variant(double sel) const;

  /// Abstract work of scanning `rows` tuples of `bytes_per_tuple` with
  /// variant `v` at selectivity `sel`.
  [[nodiscard]] hw::Work scan_work(exec::ScanVariant v, std::uint64_t rows,
                                   double sel, double bytes_per_tuple) const;

  /// Work of aggregating `rows` selected tuples (plus value-column bytes).
  [[nodiscard]] hw::Work agg_work(std::uint64_t rows,
                                  double bytes_per_tuple) const;

  /// Work of a grouped aggregation (dense or hash).
  [[nodiscard]] hw::Work group_work(std::uint64_t rows, bool dense,
                                    double bytes_per_tuple) const;

  /// Grouped-aggregation work predicted from cached key-column statistics:
  /// the dense/hash strategy choice is derived from the key domain, the
  /// same policy the exec kernels apply at runtime.
  [[nodiscard]] hw::Work group_work(std::uint64_t rows,
                                    const storage::ColumnStats& key_stats,
                                    double bytes_per_tuple) const;

  /// Predicted selectivity of an inclusive range predicate from cached
  /// column statistics (uniform-value assumption) — feeds
  /// pick_scan_variant and predicate ordering.
  [[nodiscard]] static double estimate_selectivity(
      const storage::ColumnStats& stats, std::int64_t lo, std::int64_t hi);
  [[nodiscard]] static double estimate_selectivity(
      const storage::ColumnStats& stats, double lo, double hi);

  /// Work of a hash join.
  [[nodiscard]] hw::Work join_work(std::uint64_t build_rows,
                                   std::uint64_t probe_rows,
                                   double bytes_per_tuple) const;

  /// Work of a join via `arm`: the radix arm adds the partition pass
  /// (scatter cycles plus writing and re-reading the (key, row) pairs of
  /// both sides).
  [[nodiscard]] hw::Work join_work(JoinArm arm, std::uint64_t build_rows,
                                   std::uint64_t probe_rows,
                                   double bytes_per_tuple) const;

  /// Join arm by build-side cardinality and key domain (both from the
  /// cached ColumnStats). A dense key domain — small enough for
  /// dense_join_max_domain and not grossly sparser than the build — takes
  /// the direct-address arm (the star-schema surrogate-key case: probe is
  /// one load, no hashing). Otherwise the selected build rows, capped by
  /// the key column's distinct estimate when one is known, decide:
  /// radix-partitioned once the build exceeds join_cache_build_entries,
  /// a single cache-resident table below.
  /// `key_width_bytes` is the in-memory width of the probed key (8 for
  /// int64, 4 for int32/dictionary codes): narrower keys shrink each
  /// hash-table slot, so more build entries stay cache-resident before
  /// the radix arm pays off.
  [[nodiscard]] JoinArm pick_join_arm(std::uint64_t build_rows,
                                      std::uint64_t distinct_hint = 0,
                                      std::uint64_t key_domain = 0,
                                      unsigned key_width_bytes = 8) const;

  /// Work of building a build-code -> probe-code dictionary remap over
  /// `entries` build-dictionary entries (one linear merge; the output
  /// int32 table is written once and read per build row).
  [[nodiscard]] hw::Work remap_work(std::uint64_t entries) const;

  /// Partition count (log2) sizing each partition's build side to the
  /// cache budget; clamped to [4, 12].
  [[nodiscard]] unsigned pick_radix_bits(std::uint64_t build_rows) const;

  /// Work of scanning `rows` tuples of a column bit-packed at `bits` via
  /// `arm` (plain width `plain_bytes` per tuple). kPackedScan touches only
  /// the packed bytes; kDecodeThenScan pays the unpack cycles *and* both
  /// byte streams (the packed read plus the scratch write-back).
  [[nodiscard]] hw::Work storage_scan_work(StorageArm arm, std::uint64_t rows,
                                           unsigned bits,
                                           double plain_bytes) const;

  /// Storage arm minimizing modeled energy (or roofline time, when
  /// `by_time`) on `machine` for one scan — the executor's fallback
  /// policy in model form: scan-on-packed when a packed kernel exists for
  /// the operator, else whichever of transient decode and plain is
  /// predicted cheaper.
  [[nodiscard]] StorageArm pick_storage_arm(const hw::MachineSpec& machine,
                                            std::uint64_t rows, unsigned bits,
                                            double plain_bytes,
                                            bool packed_kernel_available,
                                            bool by_time = false) const;

  /// Shared-scan arm: price `members` compatible scans — each streaming
  /// `scan_bytes` of predicate columns and spending `member_cycles` of
  /// evaluation — run independently vs fused into one pass. The fused
  /// form pays the DRAM stream once; followers re-evaluate cache-resident
  /// chunks, modeled at `near_memory` (the in-memory-compute point,
  /// hw::AcceleratorSpec::pim()): their bytes move at row-buffer energy,
  /// not CPU-side DRAM energy. Declines (share == false) below two
  /// members or when per-member coordination overhead
  /// (shared_scan_coord_cycles) outweighs the saved traffic — the
  /// diverged-predicates case surfaces as different group keys upstream,
  /// so what reaches this arm only varies in size.
  [[nodiscard]] ScanSharingChoice pick_scan_sharing(
      const hw::MachineSpec& machine, std::size_t members, double scan_bytes,
      double member_cycles, const hw::AcceleratorSpec& near_memory) const;

  // -- Network-byte arm (partition-aware plans) -----------------------------
  // Wire bytes are the sharded planner's currency the way DRAM bytes are
  // the storage planner's: per join step the physical planner charges the
  // cheaper of broadcasting the build side and hash-repartitioning both
  // sides, and the total feeds the plan governor's work estimate
  // (hw::Work::net_bytes). All three return 0 at shards <= 1 — one shard
  // lives on the coordinator and ships nothing.

  /// Modeled wire bytes of shipping one join step's build (dimension)
  /// side to every other shard: build_rows × width × (shards − 1).
  [[nodiscard]] double broadcast_wire_bytes(double build_rows,
                                            std::size_t shards,
                                            double width_bytes = 8.0) const;

  /// Modeled wire bytes of hash-repartitioning both sides on the join
  /// key: a (shards − 1) / shards fraction of every row relocates.
  [[nodiscard]] double repartition_wire_bytes(double build_rows,
                                              double probe_rows,
                                              std::size_t shards,
                                              double width_bytes = 8.0) const;

  /// Modeled wire bytes of the shard → coordinator result exchange
  /// (partial rows or gathered row ids): the non-coordinator shards'
  /// share of `result_rows` rows of `row_bytes` each.
  [[nodiscard]] double gather_wire_bytes(double result_rows, double row_bytes,
                                         std::size_t shards) const;

 private:
  KernelCosts costs_;
};

}  // namespace eidb::opt
