// Physical execution of logical plans against a catalog.
//
// Column-at-a-time execution in the MonetDB style: predicates produce
// selection bitmaps via the SIMD kernels, aggregation/join/sort consume
// them. The executor also *meters* execution — every operator contributes
// elapsed seconds and abstract hw::Work so the energy layer can attribute
// joules (measured or modeled) to the query.
#pragma once

#include <string>

#include "exec/scan_kernels.hpp"
#include "query/plan.hpp"
#include "sched/thread_pool.hpp"
#include "query/result.hpp"
#include "storage/table.hpp"
#include "storage/tier.hpp"
#include "storage/zonemap.hpp"
#include "util/bitvector.hpp"

namespace eidb::query {

struct ExecOptions {
  /// Scan kernel choice; kAuto lets the adaptive dispatcher decide.
  exec::ScanVariant scan_variant = exec::ScanVariant::kAuto;
  /// Use per-block zone maps to prune scans (the E1 "better plan" arm).
  bool use_zone_maps = false;
  std::size_t zone_block_rows = 4096;
  /// Optional tier manager: cold-column accesses are charged (E6).
  storage::TierManager* tiers = nullptr;
  /// Optional worker pool: predicate scans run morsel-parallel across it
  /// (kAuto kernels only; explicit variant choices stay serial so the E3
  /// bench measures exactly the requested kernel).
  sched::ThreadPool* pool = nullptr;
};

class Executor {
 public:
  explicit Executor(const storage::Catalog& catalog) : catalog_(catalog) {}

  /// Runs `plan`, filling `stats`. Throws eidb::Error on invalid plans
  /// (unknown table/column, type mismatches).
  [[nodiscard]] QueryResult execute(const LogicalPlan& plan, ExecStats& stats,
                                    const ExecOptions& options = {});

  /// Computes just the selection bitmap for a table + predicates
  /// (exposed for tests and benches).
  [[nodiscard]] BitVector evaluate_predicates(
      const storage::Table& table, const std::vector<Predicate>& predicates,
      ExecStats& stats, const ExecOptions& options);

 private:
  struct BoundRange {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    bool empty = false;
    bool is_double = false;
    double dlo = 0;
    double dhi = 0;
  };
  [[nodiscard]] static BoundRange bind_predicate(const storage::Column& column,
                                                 const Predicate& p);
  void apply_predicate(const storage::Table& table, const Predicate& p,
                       BitVector& selection, ExecStats& stats,
                       const ExecOptions& options);
  void charge_column_access(const std::string& table,
                            const storage::Column& column, ExecStats& stats,
                            const ExecOptions& options) const;

  [[nodiscard]] QueryResult run_aggregate(const LogicalPlan& plan,
                                          const storage::Table& table,
                                          const BitVector& selection,
                                          ExecStats& stats,
                                          const ExecOptions& options);
  [[nodiscard]] QueryResult run_join(const LogicalPlan& plan,
                                     const storage::Table& table,
                                     const BitVector& selection,
                                     ExecStats& stats,
                                     const ExecOptions& options);
  [[nodiscard]] QueryResult run_projection(const LogicalPlan& plan,
                                           const storage::Table& table,
                                           const BitVector& selection,
                                           ExecStats& stats,
                                           const ExecOptions& options);

  const storage::Catalog& catalog_;
};

}  // namespace eidb::query
