// Physical execution of logical plans against a catalog.
//
// Column-at-a-time execution in the MonetDB style: predicates produce
// selection bitmaps via the SIMD kernels, aggregation/join/sort consume
// them. The executor also *meters* execution — every operator contributes
// elapsed seconds and abstract hw::Work so the energy layer can attribute
// joules (measured or modeled) to the query, per operator
// (ExecStats::operators) and in total.
//
// Since the physical-plan refactor the executor is a thin dispatcher: a
// LogicalPlan is compiled into a query::PhysicalPlan (join order, join
// arms, sort strategy — see query/physical_plan.hpp) and the per-operator
// translation units under src/query/ops/ execute it:
//
//   ops/scan_filter   predicate binding, pruning, masked conjuncts
//   ops/join_op       multi-way chained joins, dense/hash/radix arms
//   ops/aggregate_op  single-pass vectorized + legacy row-at-a-time
//   ops/sort_op       sort / heap top-k (typed key views, result rows)
//   ops/project_op    late materialization with gather-bounded charging
//
// See docs/executor_pipeline.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/scan_kernels.hpp"
#include "opt/compression_advisor.hpp"
#include "query/plan.hpp"
#include "query/result.hpp"
#include "sched/thread_pool.hpp"
#include "storage/table.hpp"
#include "storage/tier.hpp"
#include "util/bitvector.hpp"

namespace eidb::net {
class Cluster;
}  // namespace eidb::net

namespace eidb::opt {
class CostModel;
}  // namespace eidb::opt

namespace eidb::sched {
class Governor;
}  // namespace eidb::sched

namespace eidb::query {

struct PhysicalPlan;
class OperatorCalibration;

/// Aggregation implementation choice. kVectorized is the production path;
/// kRowAtATime preserves the one-pass-per-AggSpec interpreter as a
/// reference for parity tests and the P1 pipeline bench.
enum class AggPath : std::uint8_t { kVectorized, kRowAtATime };

/// Join implementation choice. kAuto is the production path: the
/// block-at-a-time vectorized pipeline, with the physical arm (dense
/// direct-address array vs one cache-resident hash table vs
/// radix-partitioned) picked per join step from the build key's cached
/// statistics by the cost model; kDense / kHash / kRadix pin that arm
/// (kDense throws when the key domain is too large to allocate; kRadix
/// applies to the first executed step of aggregate plans and degrades to
/// kHash elsewhere). kPairMaterialize preserves the legacy pair-vector
/// interpreter as a reference for parity tests and the W1 join bench —
/// it supports only single joins with ungrouped aggregates or unsorted
/// projections, and throws on anything else rather than mis-answering.
enum class JoinPath : std::uint8_t {
  kAuto,
  kDense,
  kHash,
  kRadix,
  kPairMaterialize,
};

struct ExecOptions {
  /// Scan kernel choice; kAuto lets the adaptive dispatcher decide.
  exec::ScanVariant scan_variant = exec::ScanVariant::kAuto;
  /// Use per-block zone maps to prune scans (the E1 "better plan" arm).
  bool use_zone_maps = false;
  std::size_t zone_block_rows = 4096;
  /// Optional tier manager: cold-column accesses are charged (E6).
  storage::TierManager* tiers = nullptr;
  /// Optional worker pool: predicate scans and grouped/multi aggregation
  /// run morsel-parallel across it (kAuto kernels only; explicit variant
  /// choices stay serial so the E3 bench measures exactly the requested
  /// kernel).
  sched::ThreadPool* pool = nullptr;
  /// Aggregation path (see AggPath).
  AggPath agg_path = AggPath::kVectorized;
  /// Order conjunctive predicates most-selective-first and evaluate later
  /// predicates with masked kernels that skip dead 64-row blocks
  /// (kAuto scans only, like the parallel path).
  bool order_predicates = true;
  /// Consume bit-packed column images where one exists (kAuto scans,
  /// vectorized aggregation, join-key probing, and sort keys): predicates
  /// are rewritten into the packed domain and the DRAM ledger is charged
  /// the packed byte count. Off = always read the plain arrays (the
  /// parity baseline). Operators with no packed kernel (projections, join
  /// gathers, expression evaluation, explicit scan variants)
  /// transparently fall back to plain either way.
  bool use_encodings = true;
  /// Minimum selected rows before aggregation goes morsel-parallel on
  /// `pool` (below this the dispatch overhead dominates).
  std::size_t parallel_agg_min_rows = 1u << 18;
  /// Join implementation (see JoinPath).
  JoinPath join_path = JoinPath::kAuto;
  /// Cost model consulted by the physical planner for the join-arm
  /// decision (dense / hash / radix); nullptr uses the library defaults.
  const opt::CostModel* cost_model = nullptr;
  /// Minimum selected probe rows before the join probe goes
  /// morsel-parallel on `pool`.
  std::size_t parallel_join_min_rows = 1u << 18;
  /// Minimum keys before the sort / top-k kernels go morsel-parallel on
  /// `pool` (per-chunk sort or heap top-k, then merge — bit-identical to
  /// the serial order for every thread count).
  std::size_t parallel_sort_min_rows = 1u << 16;
  /// Minimum emitted rows before projection materialization and the join
  /// projection sinks go morsel-parallel on `pool`.
  std::size_t parallel_project_min_rows = 1u << 16;
  /// Plan governor: when set, compile_plan estimates the query's work via
  /// the cost model and picks cores × hw::DvfsState for it (race-to-idle
  /// vs pace per the governor's GovernorOptions), recording the decision
  /// in PhysicalPlan::governor / EXPLAIN. Energy attribution then uses
  /// the chosen state's power model (see query/plan_governor.hpp).
  const sched::Governor* governor = nullptr;
  /// Latency deadline handed to the plan governor; 0 = no deadline (the
  /// governor races to idle when deep sleep is allowed, otherwise paces
  /// at the incremental-efficient state).
  double deadline_s = 0;
  /// Measured-vs-predicted cycle calibration (EWMA per operator kind)
  /// consulted by the plan governor's work estimate; core::Database feeds
  /// it from measured ExecStats after every query. nullptr = model as-is.
  const OperatorCalibration* calibration = nullptr;
  /// Sharded execution: > 0 runs the plan over the FROM table's hash-
  /// partition layer (storage::Table::build_partitions — compile_plan
  /// throws when the layer is absent or its shard count disagrees) and
  /// merges at the coordinator, with every shard → coordinator transfer
  /// accounted through the cluster model (ExecStats wire_* fields and
  /// Work::net_bytes). 0 = single-node execution.
  std::size_t shard_count = 0;
  /// Cluster carrying the shard traffic: node i hosts shard i, node 0 is
  /// the coordinator. nullptr with shard_count > 0 uses a transient
  /// fully connected 10GbE cluster for the query.
  net::Cluster* cluster = nullptr;
  /// Objective of the per-link exchange codec decision
  /// (opt::CompressionAdvisor) for shard result payloads.
  opt::Objective wire_objective = opt::Objective::kEnergy;
  /// Serving-tier clamp on the plan governor's core grant (0 = uncapped):
  /// under concurrency each in-flight query is granted at most this many
  /// cores so a batch of queries cannot collectively oversubscribe the
  /// machine. The uncapped grant is still recorded as
  /// GovernorChoice::requested_cores for requested-vs-granted visibility.
  std::size_t core_cap = 0;
  /// Mid-scan operator reconfiguration (exec::AdaptiveScan, paper §IV.B):
  /// the first int32 plain-array conjunct of a kAuto scan re-estimates
  /// chunk selectivity with an EWMA and re-picks its kernel mid-column.
  /// Serial by design (adaptation is sequential); parallel pools fall
  /// back to the static kernels when this is off.
  bool adaptive_scan = false;
};

/// NOT thread-safe across concurrent execute() calls (scratch buffers are
/// reused between operators); create one Executor per in-flight query, as
/// core::Database does. Concurrent executors over the same catalog are
/// fine — tables are immutable after load.
class Executor {
 public:
  explicit Executor(const storage::Catalog& catalog) : catalog_(catalog) {}

  /// Compiles `plan` into a PhysicalPlan (see query/physical_plan.hpp)
  /// and runs it, filling `stats`. Throws eidb::Error on invalid plans
  /// (unknown table/column, type mismatches, unsupported join shapes).
  [[nodiscard]] QueryResult execute(const LogicalPlan& plan, ExecStats& stats,
                                    const ExecOptions& options = {});

  /// Runs an already-compiled physical plan (EXPLAIN-then-execute flows
  /// and planner tests; `options` must match the ones it was compiled
  /// with for the plan's arm/sort decisions to be honored).
  [[nodiscard]] QueryResult execute(const PhysicalPlan& phys,
                                    ExecStats& stats,
                                    const ExecOptions& options = {});

  /// Computes just the selection bitmap for a table + predicates
  /// (exposed for tests and benches).
  [[nodiscard]] BitVector evaluate_predicates(
      const storage::Table& table, const std::vector<Predicate>& predicates,
      ExecStats& stats, const ExecOptions& options);

 private:
  const storage::Catalog& catalog_;
  /// Reused scratch for index-producing scan kernels (kBranching /
  /// kPredicated) — avoids an n-row allocation per predicate.
  std::vector<std::uint32_t> idx_scratch_;
  /// Reused scratch for synthesized composite group keys.
  std::vector<std::int64_t> key_scratch_;
};

}  // namespace eidb::query
