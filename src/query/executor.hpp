// Physical execution of logical plans against a catalog.
//
// Column-at-a-time execution in the MonetDB style: predicates produce
// selection bitmaps via the SIMD kernels, aggregation/join/sort consume
// them. The executor also *meters* execution — every operator contributes
// elapsed seconds and abstract hw::Work so the energy layer can attribute
// joules (measured or modeled) to the query.
//
// The aggregation hot path is single-pass and block-vectorized
// (exec/vector_agg): all of a query's aggregates are computed in one pass
// over each input column, group-key ranges come from the cached
// storage::ColumnStats (no per-query min/max scan), and large selections
// run morsel-parallel on the provided ThreadPool. Conjunctive predicates
// are ordered by estimated selectivity; the second and later predicates
// use masked kernels that skip 64-row blocks with no surviving candidates.
// See docs/executor_pipeline.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/scan_kernels.hpp"
#include "query/plan.hpp"
#include "sched/thread_pool.hpp"
#include "query/result.hpp"
#include "storage/table.hpp"
#include "storage/tier.hpp"
#include "storage/zonemap.hpp"
#include "util/bitvector.hpp"

namespace eidb::opt {
class CostModel;
}  // namespace eidb::opt

namespace eidb::query {

/// Aggregation implementation choice. kVectorized is the production path;
/// kRowAtATime preserves the one-pass-per-AggSpec interpreter as a
/// reference for parity tests and the P1 pipeline bench.
enum class AggPath : std::uint8_t { kVectorized, kRowAtATime };

/// Join implementation choice. kAuto is the production path: the
/// block-at-a-time vectorized pipeline, with the physical arm (dense
/// direct-address array vs one cache-resident hash table vs
/// radix-partitioned) picked from the build key's cached statistics by
/// the cost model; kDense / kHash / kRadix pin that arm (kDense throws
/// when the key domain is too large to allocate). kPairMaterialize
/// preserves the legacy pair-vector interpreter as a reference for
/// parity tests and the W1 join bench — it supports only ungrouped
/// aggregates and projections, and throws on GROUP BY rather than
/// mis-answering.
enum class JoinPath : std::uint8_t {
  kAuto,
  kDense,
  kHash,
  kRadix,
  kPairMaterialize,
};

struct ExecOptions {
  /// Scan kernel choice; kAuto lets the adaptive dispatcher decide.
  exec::ScanVariant scan_variant = exec::ScanVariant::kAuto;
  /// Use per-block zone maps to prune scans (the E1 "better plan" arm).
  bool use_zone_maps = false;
  std::size_t zone_block_rows = 4096;
  /// Optional tier manager: cold-column accesses are charged (E6).
  storage::TierManager* tiers = nullptr;
  /// Optional worker pool: predicate scans and grouped/multi aggregation
  /// run morsel-parallel across it (kAuto kernels only; explicit variant
  /// choices stay serial so the E3 bench measures exactly the requested
  /// kernel).
  sched::ThreadPool* pool = nullptr;
  /// Aggregation path (see AggPath).
  AggPath agg_path = AggPath::kVectorized;
  /// Order conjunctive predicates most-selective-first and evaluate later
  /// predicates with masked kernels that skip dead 64-row blocks
  /// (kAuto scans only, like the parallel path).
  bool order_predicates = true;
  /// Consume bit-packed column images where one exists (kAuto scans,
  /// vectorized aggregation, and join-key probing): predicates are
  /// rewritten into the packed domain and the DRAM ledger is charged the
  /// packed byte count. Off = always read the plain arrays (the parity
  /// baseline). Operators with no packed kernel (sorts, projections,
  /// join gathers, expression evaluation, explicit scan variants)
  /// transparently fall back to plain either way.
  bool use_encodings = true;
  /// Minimum selected rows before aggregation goes morsel-parallel on
  /// `pool` (below this the dispatch overhead dominates).
  std::size_t parallel_agg_min_rows = 1u << 18;
  /// Join implementation (see JoinPath).
  JoinPath join_path = JoinPath::kAuto;
  /// Cost model consulted by JoinPath::kAuto for the join-arm decision
  /// (dense / hash / radix); nullptr uses the library defaults.
  const opt::CostModel* cost_model = nullptr;
  /// Minimum selected probe rows before the join probe goes
  /// morsel-parallel on `pool`.
  std::size_t parallel_join_min_rows = 1u << 18;
};

/// NOT thread-safe across concurrent execute() calls (scratch buffers are
/// reused between operators); create one Executor per in-flight query, as
/// core::Database does. Concurrent executors over the same catalog are
/// fine — tables are immutable after load.
class Executor {
 public:
  explicit Executor(const storage::Catalog& catalog) : catalog_(catalog) {}

  /// Runs `plan`, filling `stats`. Throws eidb::Error on invalid plans
  /// (unknown table/column, type mismatches).
  [[nodiscard]] QueryResult execute(const LogicalPlan& plan, ExecStats& stats,
                                    const ExecOptions& options = {});

  /// Computes just the selection bitmap for a table + predicates
  /// (exposed for tests and benches).
  [[nodiscard]] BitVector evaluate_predicates(
      const storage::Table& table, const std::vector<Predicate>& predicates,
      ExecStats& stats, const ExecOptions& options);

 private:
  struct BoundRange {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    bool empty = false;
    bool is_double = false;
    double dlo = 0;
    double dhi = 0;
  };
  [[nodiscard]] static BoundRange bind_predicate(const storage::Column& column,
                                                 const Predicate& p);
  /// Estimated selectivity of `p` from the cached column statistics
  /// (uniform-value assumption) — used to order conjunctive predicates.
  [[nodiscard]] static double estimate_selectivity(
      const storage::Column& column, const Predicate& p);
  /// Stats-based pre-scan pruning: returns true when the predicate was
  /// fully resolved from [min, max] alone (all rows match, or none do —
  /// `selection` already updated, nothing scanned or charged).
  [[nodiscard]] static bool prune_with_stats(const storage::Column& column,
                                             const BoundRange& r,
                                             BitVector& selection);
  void apply_predicate(const storage::Table& table, const Predicate& p,
                       BitVector& selection, ExecStats& stats,
                       const ExecOptions& options);
  /// Selection-aware variant for the second and later conjuncts: evaluates
  /// only 64-row blocks that still have candidates and charges only the
  /// visited fraction.
  void apply_predicate_masked(const storage::Table& table, const Predicate& p,
                              BitVector& selection, ExecStats& stats,
                              const ExecOptions& options);
  /// True when scans/aggregates over `column` should consume its packed
  /// image under `options` (encoded, integer-typed, encodings enabled).
  [[nodiscard]] static bool use_packed(const storage::Column& column,
                                       const ExecOptions& options);
  /// Charges one sequential read of `column` to the DRAM lane: the packed
  /// image size when `packed`, the plain array size otherwise. Each
  /// column is charged at most once per query by the aggregate path.
  void charge_column_access(const std::string& table,
                            const storage::Column& column, ExecStats& stats,
                            const ExecOptions& options,
                            bool packed = false) const;

  [[nodiscard]] QueryResult run_aggregate(const LogicalPlan& plan,
                                          const storage::Table& table,
                                          const BitVector& selection,
                                          ExecStats& stats,
                                          const ExecOptions& options);
  /// Single-pass block-vectorized aggregation (default path).
  [[nodiscard]] QueryResult run_aggregate_vectorized(
      const LogicalPlan& plan, const storage::Table& table,
      const BitVector& selection, ExecStats& stats,
      const ExecOptions& options);
  /// Legacy one-pass-per-AggSpec interpreter (AggPath::kRowAtATime).
  [[nodiscard]] QueryResult run_aggregate_rows(const LogicalPlan& plan,
                                               const storage::Table& table,
                                               const BitVector& selection,
                                               ExecStats& stats,
                                               const ExecOptions& options);
  [[nodiscard]] QueryResult run_join(const LogicalPlan& plan,
                                     const storage::Table& table,
                                     const BitVector& selection,
                                     ExecStats& stats,
                                     const ExecOptions& options);
  /// Block-at-a-time late-materializing join pipeline (default): packed
  /// key probing, dense/hash/radix arm, morsel-parallel probe, grouped and
  /// build-side aggregation through exec::JoinAggregator.
  [[nodiscard]] QueryResult run_join_vectorized(const LogicalPlan& plan,
                                                const storage::Table& table,
                                                const BitVector& selection,
                                                ExecStats& stats,
                                                const ExecOptions& options);
  /// Legacy pair-materializing interpreter (JoinPath::kPairMaterialize).
  [[nodiscard]] QueryResult run_join_pairs(const LogicalPlan& plan,
                                           const storage::Table& table,
                                           const BitVector& selection,
                                           ExecStats& stats,
                                           const ExecOptions& options);
  [[nodiscard]] QueryResult run_projection(const LogicalPlan& plan,
                                           const storage::Table& table,
                                           const BitVector& selection,
                                           ExecStats& stats,
                                           const ExecOptions& options);

  const storage::Catalog& catalog_;
  /// Reused scratch for index-producing scan kernels (kBranching /
  /// kPredicated) — avoids an n-row allocation per predicate.
  std::vector<std::uint32_t> idx_scratch_;
  /// Reused scratch for synthesized composite group keys.
  std::vector<std::int64_t> key_scratch_;
};

}  // namespace eidb::query
