// The plan governor: the compile-time bridge between the physical plan
// and sched::Governor ("elasticity in the small", paper §IV Fig. 2).
//
// At compile_plan time the whole query's abstract work is estimated from
// the cost model and the plan's cardinality chain, and the governor picks
// the execution configuration — core count × hw::DvfsState × idle
// strategy — for the query as a unit:
//
//   * a deadline (ExecOptions::deadline_s) arbitrates race-to-idle vs
//     pace exactly as sched::Governor::best_under_deadline does;
//   * no deadline + deep sleep available: race-to-idle at f_max, all
//     granted cores (finish fast, sleep deep);
//   * no deadline + no deep sleep (consolidated server): pace at the
//     incremental-efficient P-state — the E7 crossover.
//
// The choice is recorded in PhysicalPlan::governor and EXPLAIN, the core
// grant caps operator fan-out (OpContext::worker_width), and energy
// attribution charges the ledger at the chosen state's power model.
//
// The estimate is closed-loop: OperatorCalibration keeps an EWMA of
// measured-vs-predicted execution time per operator kind (fed by
// core::Database from every query's ExecStats), and the next compile
// scales its per-kind cycle estimates by those factors — §IV.B's
// "operators have to quickly adapt" requirement, applied to the governor.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hw/machine.hpp"
#include "query/result.hpp"

namespace eidb::sched {
class Governor;
}  // namespace eidb::sched

namespace eidb::storage {
class Catalog;
}  // namespace eidb::storage

namespace eidb::query {

struct PhysicalPlan;
struct ExecOptions;

/// Operator families the calibration distinguishes (granularity of the
/// EWMA feedback; finer would starve each bucket of observations).
enum class OperatorKind : std::uint8_t {
  kScan,
  kJoin,
  kAggregate,
  kSort,
  kMaterialize,
  kOther,
};
inline constexpr std::size_t kOperatorKindCount = 6;

/// Maps an attributed operator name (ExecStats::operators entries, e.g.
/// "scan+filter(lineorder)", "hash-join(dates)+materialize", "top-k(x)")
/// to its kind.
[[nodiscard]] OperatorKind classify_operator(std::string_view name);
[[nodiscard]] std::string_view operator_kind_name(OperatorKind kind);

/// The governor's per-query decision, recorded in the PhysicalPlan.
struct GovernorChoice {
  bool enabled = false;      ///< False = no governor: legacy f_max behavior.
  hw::DvfsState state;       ///< Chosen P-state (attribution + pacing).
  int cores = 1;             ///< Core grant, clamped to the pool width.
  /// The grant absent ExecOptions::core_cap (the pool width clamped to
  /// the machine's cores): what this query asked for before the serving
  /// tier's free-worker clamp. Equal to `cores` when no cap applied.
  int requested_cores = 1;
  std::string policy;        ///< "race-to-idle" | "pace".
  double est_busy_s = 0;     ///< Predicted busy time at the chosen config.
  double est_energy_j = 0;   ///< Predicted energy at the chosen config.
  hw::Work est_work;         ///< Calibrated whole-plan work estimate.
};

/// Thread-safe EWMA of measured/predicted time ratios per operator kind.
/// factor(kind) multiplies the governor's cycle estimates for that kind;
/// 1.0 until the first observation arrives.
class OperatorCalibration {
 public:
  explicit OperatorCalibration(double alpha = 0.2) : alpha_(alpha) {
    factors_.fill(1.0);
    seen_.fill(false);
  }

  [[nodiscard]] double factor(OperatorKind kind) const;

  /// Feeds one measured operator: predicted seconds from the machine
  /// model vs measured wall seconds. Ratios are clamped to [0.05, 20] so
  /// one scheduling hiccup cannot poison the estimate.
  void observe(OperatorKind kind, double predicted_s, double measured_s);

  /// Convenience: classifies and observes every attributed operator of a
  /// finished query, predicting each one's seconds from its recorded
  /// work on `machine` at `state`.
  void observe_operators(const std::vector<OperatorStats>& operators,
                         const hw::MachineSpec& machine,
                         const hw::DvfsState& state);

 private:
  double alpha_;
  mutable std::mutex mu_;
  std::array<double, kOperatorKindCount> factors_;
  std::array<bool, kOperatorKindCount> seen_;
};

/// Estimates the whole plan's abstract work from the compiled plan's
/// cardinality chain and the cost model, scaled per operator kind by the
/// calibration (when provided via options).
[[nodiscard]] hw::Work estimate_plan_work(const storage::Catalog& catalog,
                                          const PhysicalPlan& phys,
                                          const ExecOptions& options);

/// Runs the governor for a compiled plan and records the decision in
/// phys.governor. No-op when options.governor is null.
void apply_plan_governor(const storage::Catalog& catalog, PhysicalPlan& phys,
                         const ExecOptions& options);

}  // namespace eidb::query
