#include "query/result.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/table_printer.hpp"

namespace eidb::query {

void QueryResult::add_row(std::vector<storage::Value> row) {
  EIDB_EXPECTS(row.size() == column_names_.size());
  rows_.push_back(std::move(row));
}

const storage::Value& QueryResult::at(std::size_t row, std::size_t col) const {
  EIDB_EXPECTS(row < rows_.size());
  EIDB_EXPECTS(col < column_names_.size());
  return rows_[row][col];
}

const std::vector<storage::Value>& QueryResult::row(std::size_t i) const {
  EIDB_EXPECTS(i < rows_.size());
  return rows_[i];
}

std::size_t QueryResult::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < column_names_.size(); ++i)
    if (column_names_[i] == name) return i;
  throw Error("no such result column: " + name);
}

std::string format_operator_stats(const ExecStats& stats,
                                  const hw::MachineSpec& machine,
                                  const hw::DvfsState& state) {
  TablePrinter table({"operator", "time_ms", "cycles", "dram_bytes",
                      "net_bytes", "attributed_J"});
  double seconds = 0;
  hw::Work total;
  double joules = 0;
  for (const OperatorStats& op : stats.operators) {
    const double j = op.attributed_j(machine, state);
    table.add_row({op.name, TablePrinter::fmt(op.seconds * 1e3, 4),
                   TablePrinter::fmt(op.work.cpu_cycles, 0),
                   TablePrinter::fmt(op.work.dram_bytes, 0),
                   TablePrinter::fmt(op.work.net_bytes, 0),
                   TablePrinter::fmt(j, 6)});
    seconds += op.seconds;
    total += op.work;
    joules += j;
  }
  table.add_row({"total", TablePrinter::fmt(seconds * 1e3, 4),
                 TablePrinter::fmt(total.cpu_cycles, 0),
                 TablePrinter::fmt(total.dram_bytes, 0),
                 TablePrinter::fmt(total.net_bytes, 0),
                 TablePrinter::fmt(joules, 6)});
  std::ostringstream os;
  table.print(os);
  return os.str();
}

std::string QueryResult::to_string(std::size_t max_rows) const {
  TablePrinter table(column_names_.empty()
                         ? std::vector<std::string>{"(empty)"}
                         : column_names_);
  if (!column_names_.empty()) {
    const std::size_t n = std::min(max_rows, rows_.size());
    for (std::size_t r = 0; r < n; ++r) {
      std::vector<std::string> cells;
      cells.reserve(rows_[r].size());
      for (const storage::Value& v : rows_[r]) cells.push_back(v.to_string());
      table.add_row(std::move(cells));
    }
  }
  std::ostringstream os;
  table.print(os);
  if (rows_.size() > max_rows)
    os << "... (" << rows_.size() - max_rows << " more rows)\n";
  return os.str();
}

}  // namespace eidb::query
