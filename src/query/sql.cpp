#include "query/sql.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace eidb::query {

namespace {

enum class TokKind : std::uint8_t {
  kIdent,
  kKeyword,
  kInt,
  kFloat,
  kString,
  kSymbol,  // ( ) , * = < > <= >= .
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // normalized: keywords upper-cased
  std::size_t offset = 0;
};

bool is_keyword(const std::string& upper) {
  static const char* kKeywords[] = {
      "SELECT", "FROM",  "WHERE", "AND",   "GROUP", "BY",    "ORDER",
      "LIMIT",  "JOIN",  "ON",    "ASC",   "DESC",  "BETWEEN", "COUNT",
      "SUM",    "MIN",   "MAX",   "AVG"};
  for (const char* k : kKeywords)
    if (upper == k) return true;
  return false;
}

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("SQL parse error at offset " +
                std::to_string(current_.offset) + ": " + what +
                (current_.kind == TokKind::kEnd
                     ? " (at end of input)"
                     : " (near '" + current_.text + "')"));
  }

 private:
  void advance() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_])))
      ++pos_;
    current_ = Token{};
    current_.offset = pos_;
    if (pos_ >= sql_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '_'))
        ++pos_;
      std::string word(sql_.substr(start, pos_ - start));
      std::string upper = word;
      for (char& ch : upper)
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      if (is_keyword(upper)) {
        current_.kind = TokKind::kKeyword;
        current_.text = upper;
      } else {
        current_.kind = TokKind::kIdent;
        current_.text = word;
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      std::size_t start = pos_;
      ++pos_;
      bool is_float = false;
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '.')) {
        if (sql_[pos_] == '.') is_float = true;
        ++pos_;
      }
      current_.kind = is_float ? TokKind::kFloat : TokKind::kInt;
      current_.text = std::string(sql_.substr(start, pos_ - start));
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string value;
      // SQL standard escape: a doubled quote inside the literal is one
      // literal quote ('O''Brien' lexes as O'Brien); any other closing
      // quote ends the literal.
      for (;;) {
        while (pos_ < sql_.size() && sql_[pos_] != '\'')
          value.push_back(sql_[pos_++]);
        if (pos_ >= sql_.size())
          throw Error(
              "SQL parse error: unterminated string literal at offset " +
              std::to_string(current_.offset));
        ++pos_;  // the quote just seen
        if (pos_ < sql_.size() && sql_[pos_] == '\'') {
          value.push_back('\'');
          ++pos_;
          continue;
        }
        break;
      }
      current_.kind = TokKind::kString;
      current_.text = std::move(value);
      return;
    }
    // Symbols, including two-char <= and >=.
    if ((c == '<' || c == '>') && pos_ + 1 < sql_.size() &&
        sql_[pos_ + 1] == '=') {
      current_.kind = TokKind::kSymbol;
      current_.text = sql_.substr(pos_, 2);
      pos_ += 2;
      return;
    }
    if (std::string("(),*=<>.+-/").find(c) != std::string::npos) {
      current_.kind = TokKind::kSymbol;
      current_.text = std::string(1, c);
      ++pos_;
      return;
    }
    throw Error("SQL parse error: unexpected character '" +
                std::string(1, c) + "' at offset " + std::to_string(pos_));
  }

  std::string_view sql_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view sql) : lex_(sql) {}

  LogicalPlan parse() {
    expect_keyword("SELECT");
    parse_select_list();
    expect_keyword("FROM");
    plan_.table = expect_ident();
    while (accept_keyword("JOIN")) parse_join();
    if (accept_keyword("WHERE")) parse_where();
    if (accept_keyword("GROUP")) {
      expect_keyword("BY");
      plan_.group_by.push_back(expect_column());
      while (accept_symbol(",")) plan_.group_by.push_back(expect_column());
    }
    if (accept_keyword("ORDER")) {
      expect_keyword("BY");
      OrderBySpec spec;
      spec.column = parse_order_key();
      if (accept_keyword("DESC"))
        spec.ascending = false;
      else
        (void)accept_keyword("ASC");
      plan_.order_by = spec;
    }
    if (accept_keyword("LIMIT")) {
      const Token t = lex_.take();
      if (t.kind != TokKind::kInt) lex_.fail("expected integer after LIMIT");
      plan_.limit = static_cast<std::size_t>(std::stoull(t.text));
    }
    if (lex_.peek().kind != TokKind::kEnd) lex_.fail("trailing input");
    validate();
    return plan_;
  }

 private:
  void validate() {
    if (!plan_.group_by.empty() && plan_.aggregates.empty())
      lex_.fail("GROUP BY requires aggregate select list");
    if (!plan_.aggregates.empty() && !plan_.projection.empty())
      lex_.fail("cannot mix aggregates and plain columns in SELECT");
  }

  // -- select list ------------------------------------------------------------
  void parse_select_list() {
    if (accept_symbol("*")) return;  // projection of all columns
    for (;;) {
      if (!parse_select_item()) lex_.fail("expected column or aggregate");
      if (!accept_symbol(",")) break;
    }
  }

  bool parse_select_item() {
    const Token& t = lex_.peek();
    if (t.kind == TokKind::kKeyword &&
        (t.text == "COUNT" || t.text == "SUM" || t.text == "MIN" ||
         t.text == "MAX" || t.text == "AVG")) {
      const std::string fn = lex_.take().text;
      expect_symbol("(");
      AggSpec spec;
      if (fn == "COUNT") {
        spec.op = AggOp::kCount;
        if (accept_symbol("*")) {
          // COUNT(*)
        } else {
          spec.column = expect_column();  // COUNT(col) == COUNT(*) here
          spec.column.clear();
        }
      } else {
        spec.op = fn == "SUM"   ? AggOp::kSum
                  : fn == "MIN" ? AggOp::kMin
                  : fn == "MAX" ? AggOp::kMax
                                : AggOp::kAvg;
        // General arithmetic input; a bare column reference stays on the
        // typed fast path (no double widening).
        const auto expr = parse_arith_expr();
        if (expr->kind() == exec::ExprKind::kColumn)
          spec.column = expr->column_name();
        else
          spec.expr = expr;
      }
      expect_symbol(")");
      plan_.aggregates.push_back(std::move(spec));
      return true;
    }
    if (t.kind == TokKind::kIdent) {
      plan_.projection.push_back(expect_column());
      return true;
    }
    return false;
  }

  // -- arithmetic expressions (aggregate inputs) --------------------------------
  //   expr   := term (('+'|'-') term)*
  //   term   := factor (('*'|'/') factor)*
  //   factor := column | number | '(' expr ')' | '-' factor
  std::shared_ptr<const exec::Expr> parse_arith_expr() {
    auto lhs = parse_arith_term();
    for (;;) {
      if (accept_symbol("+")) {
        lhs = exec::Expr::binary(exec::ExprOp::kAdd, lhs, parse_arith_term());
      } else if (accept_symbol("-")) {
        lhs = exec::Expr::binary(exec::ExprOp::kSub, lhs, parse_arith_term());
      } else if (lex_.peek().kind == TokKind::kInt &&
                 lex_.peek().text.front() == '-') {
        // "a -1" lexed as a negative literal where an operator belongs:
        // reinterpret as subtraction.
        const Token t = lex_.take();
        lhs = exec::Expr::binary(
            exec::ExprOp::kSub, lhs,
            exec::Expr::literal(-std::stod(t.text)));
      } else {
        return lhs;
      }
    }
  }

  std::shared_ptr<const exec::Expr> parse_arith_term() {
    auto lhs = parse_arith_factor();
    for (;;) {
      if (accept_symbol("*"))
        lhs = exec::Expr::binary(exec::ExprOp::kMul, lhs,
                                 parse_arith_factor());
      else if (accept_symbol("/"))
        lhs = exec::Expr::binary(exec::ExprOp::kDiv, lhs,
                                 parse_arith_factor());
      else
        return lhs;
    }
  }

  std::shared_ptr<const exec::Expr> parse_arith_factor() {
    const Token& t = lex_.peek();
    if (t.kind == TokKind::kSymbol && t.text == "(") {
      (void)lex_.take();
      auto inner = parse_arith_expr();
      expect_symbol(")");
      return inner;
    }
    if (t.kind == TokKind::kSymbol && t.text == "-") {
      (void)lex_.take();
      return exec::Expr::binary(exec::ExprOp::kSub, exec::Expr::literal(0),
                                parse_arith_factor());
    }
    if (t.kind == TokKind::kInt || t.kind == TokKind::kFloat)
      return exec::Expr::literal(std::stod(lex_.take().text));
    if (t.kind == TokKind::kIdent) return exec::Expr::column(expect_column());
    lex_.fail("expected column, number or parenthesized expression");
  }

  // -- order-by key ----------------------------------------------------------
  /// ORDER BY accepts a column reference or an aggregate call; the latter
  /// maps to the aggregate's result-column name (e.g. "sum(revenue)",
  /// "count"), which is how the sort operator addresses aggregate output.
  std::string parse_order_key() {
    const Token& t = lex_.peek();
    if (t.kind == TokKind::kKeyword &&
        (t.text == "COUNT" || t.text == "SUM" || t.text == "MIN" ||
         t.text == "MAX" || t.text == "AVG")) {
      std::string fn = lex_.take().text;
      for (char& ch : fn)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      expect_symbol("(");
      if (fn == "count") {
        if (!accept_symbol("*")) (void)expect_column();
        expect_symbol(")");
        return "count";
      }
      const std::string col = expect_column();
      expect_symbol(")");
      return fn + "(" + col + ")";
    }
    return expect_column();
  }

  // -- join -------------------------------------------------------------------
  void parse_join() {
    JoinSpec spec;
    spec.table = expect_ident();
    expect_keyword("ON");
    const std::string left = expect_column();
    expect_symbol("=");
    const std::string right = expect_column();
    // Which side belongs to the joined table? Accept either order; columns
    // qualified with the join table's name belong to it. The probe-side key
    // keeps its qualifier unless it names the FROM table — a qualified key
    // on an earlier joined table is a snowflake reference the executor
    // resolves.
    const auto strip = [&](const std::string& name,
                           const std::string& table) -> std::string {
      const std::string prefix = table + ".";
      return name.rfind(prefix, 0) == 0 ? name.substr(prefix.size()) : name;
    };
    const bool left_is_joined = left.rfind(spec.table + ".", 0) == 0;
    spec.left_key = strip(left_is_joined ? right : left, plan_.table);
    spec.right_key = strip(left_is_joined ? left : right, spec.table);
    plan_.joins.push_back(std::move(spec));
  }

  // -- where ------------------------------------------------------------------
  void parse_where() {
    for (;;) {
      parse_predicate();
      if (!accept_keyword("AND")) break;
    }
  }

  void parse_predicate() {
    std::string column = expect_column();
    // Predicates on a joined table route into that join's predicates;
    // qualified FROM-table columns are stripped to bare names for the
    // executor.
    std::vector<Predicate>* sink = &plan_.predicates;
    for (JoinSpec& join : plan_.joins) {
      const std::string prefix = join.table + ".";
      if (column.rfind(prefix, 0) == 0) {
        column = column.substr(prefix.size());
        sink = &join.predicates;
        break;
      }
    }
    const std::string own = plan_.table + ".";
    if (sink == &plan_.predicates && column.rfind(own, 0) == 0)
      column = column.substr(own.size());

    if (accept_keyword("BETWEEN")) {
      storage::Value lo = expect_literal();
      expect_keyword("AND");
      storage::Value hi = expect_literal();
      sink->push_back({std::move(column), std::move(lo), std::move(hi)});
      return;
    }
    const Token op = lex_.take();
    if (op.kind != TokKind::kSymbol) lex_.fail("expected comparison operator");
    storage::Value lit = expect_literal();
    if (op.text == "=") {
      sink->push_back({std::move(column), lit, lit});
    } else if (op.text == ">=") {
      sink->push_back({std::move(column), lit, max_value(lit)});
    } else if (op.text == "<=") {
      sink->push_back({std::move(column), min_value(lit), lit});
    } else if (op.text == ">") {
      sink->push_back({std::move(column), successor(lit), max_value(lit)});
    } else if (op.text == "<") {
      sink->push_back({std::move(column), min_value(lit), predecessor(lit)});
    } else {
      lex_.fail("unsupported operator '" + op.text + "'");
    }
  }

  // Open-ended bounds for >=/<=/>/<; strings use sentinels that sort
  // before/after every practical value.
  static storage::Value max_value(const storage::Value& like) {
    if (like.is_double())
      return storage::Value{std::numeric_limits<double>::infinity()};
    if (like.is_string())
      return storage::Value{std::string("\x7f\x7f\x7f\x7f")};
    return storage::Value{std::numeric_limits<std::int64_t>::max()};
  }
  static storage::Value min_value(const storage::Value& like) {
    if (like.is_double())
      return storage::Value{-std::numeric_limits<double>::infinity()};
    if (like.is_string()) return storage::Value{std::string()};
    return storage::Value{std::numeric_limits<std::int64_t>::min()};
  }
  storage::Value successor(const storage::Value& v) {
    if (v.is_int()) return storage::Value{v.as_int() + 1};
    if (v.is_double())
      return storage::Value{
          std::nextafter(v.as_double(), std::numeric_limits<double>::max())};
    lex_.fail("'>' needs a numeric literal");
  }
  storage::Value predecessor(const storage::Value& v) {
    if (v.is_int()) return storage::Value{v.as_int() - 1};
    if (v.is_double())
      return storage::Value{std::nextafter(
          v.as_double(), std::numeric_limits<double>::lowest())};
    lex_.fail("'<' needs a numeric literal");
  }

  // -- token helpers ------------------------------------------------------------
  void expect_keyword(const char* kw) {
    const Token t = lex_.take();
    if (t.kind != TokKind::kKeyword || t.text != kw)
      lex_.fail(std::string("expected ") + kw);
  }
  bool accept_keyword(const char* kw) {
    if (lex_.peek().kind == TokKind::kKeyword && lex_.peek().text == kw) {
      (void)lex_.take();
      return true;
    }
    return false;
  }
  void expect_symbol(const char* sym) {
    const Token t = lex_.take();
    if (t.kind != TokKind::kSymbol || t.text != sym)
      lex_.fail(std::string("expected '") + sym + "'");
  }
  bool accept_symbol(const char* sym) {
    if (lex_.peek().kind == TokKind::kSymbol && lex_.peek().text == sym) {
      (void)lex_.take();
      return true;
    }
    return false;
  }
  std::string expect_ident() {
    const Token t = lex_.take();
    if (t.kind != TokKind::kIdent) lex_.fail("expected identifier");
    return t.text;
  }
  /// Identifier with optional `.qualifier`.
  std::string expect_column() {
    std::string name = expect_ident();
    while (accept_symbol(".")) name += "." + expect_ident();
    return name;
  }
  storage::Value expect_literal() {
    const Token t = lex_.take();
    switch (t.kind) {
      case TokKind::kInt:
        return storage::Value{
            static_cast<std::int64_t>(std::stoll(t.text))};
      case TokKind::kFloat:
        return storage::Value{std::stod(t.text)};
      case TokKind::kString:
        return storage::Value{t.text};
      default:
        lex_.fail("expected literal");
    }
  }

  Lexer lex_;
  LogicalPlan plan_;
};

}  // namespace

LogicalPlan parse_sql(std::string_view sql) { return Parser(sql).parse(); }

}  // namespace eidb::query
