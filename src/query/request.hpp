// query::QueryRequest / QueryResponse — the units of the serving tier.
//
// A request names *what* to run (SQL text or an already-built LogicalPlan)
// plus per-request constraints; a response carries the result *and* the
// energy report plus serving-tier timings. Energy as a first-class response
// field is the paper's program applied to the service boundary: a client
// can see what its query cost in joules, and a tenant's budget is debited
// from exactly these figures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "energy/report.hpp"
#include "query/plan.hpp"
#include "query/result.hpp"

namespace eidb::query {

/// One query submitted to server::QueryService.
struct QueryRequest {
  /// SQL text; parsed at execution time when `plan` is not set.
  std::string sql;
  /// Pre-built plan; takes precedence over `sql`.
  std::optional<LogicalPlan> plan;
  /// Optional per-query energy budget (joules) forwarded to the optimizer.
  std::optional<double> energy_budget_j;
  /// Optional latency deadline (seconds) forwarded to the plan governor:
  /// it then picks the better of race-to-idle and pace for this query.
  double deadline_s = 0;
  /// Client-chosen tag echoed back in the response (correlation id).
  std::uint64_t tag = 0;

  [[nodiscard]] static QueryRequest from_sql(std::string sql_text);
  [[nodiscard]] static QueryRequest from_plan(LogicalPlan logical_plan);
};

enum class ResponseStatus : std::uint8_t {
  kOk,        ///< Executed; result and report are valid.
  kRejected,  ///< Admission control refused (tenant budget exhausted).
  kError,     ///< Execution failed (bad SQL, unknown table, ...).
  kShutdown,  ///< Service stopped before the request was served.
};

[[nodiscard]] std::string to_string(ResponseStatus status);

/// Everything the service hands back for one request.
struct QueryResponse {
  ResponseStatus status = ResponseStatus::kOk;
  std::string error;  ///< Human-readable cause when status != kOk.
  std::uint64_t tag = 0;

  QueryResult result;
  /// Host-measured (RAPL or model) energy of the execution itself.
  energy::EnergyReport report;

  // -- Serving-tier accounting -----------------------------------------------
  double queue_s = 0;    ///< Admission to dispatch (coalescing included).
  double exec_s = 0;     ///< Dispatch to completion (pacing included).
  double latency_s = 0;  ///< Admission to completion, the client-visible figure.
  /// P-state the policy engine chose for this query.
  double chosen_freq_ghz = 0;
  /// Policy-modeled incremental joules at the chosen P-state — the figure
  /// the stream policies (rolling power, cap adherence) reason about.
  double policy_energy_j = 0;
  /// Joules debited from the tenant's energy budget for this query: its
  /// *attributed* energy (own busy interval + DRAM + cold-tier penalties,
  /// excluding the idle floor and concurrent neighbors' work) — the same
  /// figure recorded under the tenant's ledger scope. Reconcile bills
  /// against this, not `report.total_j()`, whose meter window spans the
  /// whole machine.
  double billed_j = 0;

  // -- Plan-governor decision (empty policy = governor off) -------------------
  /// "race-to-idle" | "pace" — how the engine's plan governor chose to run
  /// this query.
  std::string governor_policy;
  int governor_cores = 0;          ///< Core grant for the morsel fan-out.
  /// Cores the governor would have granted absent the serving tier's
  /// free-worker clamp (requested vs granted: equal when the service had
  /// spare workers, larger under concurrency).
  int governor_requested_cores = 0;
  double governor_freq_ghz = 0;    ///< Chosen P-state.
  /// The governor's compile-time energy prediction for this query;
  /// reconcile against `billed_j` (the measured settlement) to judge the
  /// estimate.
  double predicted_j = 0;

  // -- Shared-scan fusion (members <= 1 = ran independently) ------------------
  /// When the service fused this query's fact-table scan with other
  /// members of its coalesced batch into one pass, the fused group's id
  /// and member count (mirrors EXPLAIN's "shared: group=<id>
  /// members=<n>" line). The table's scan DRAM bytes were charged once
  /// for the whole group and attributed across members; `billed_j`
  /// already reflects this query's share.
  std::uint64_t shared_group = 0;
  std::size_t shared_members = 0;

  [[nodiscard]] bool ok() const { return status == ResponseStatus::kOk; }
  /// One-line summary for logs: status, rows, latency, joules.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace eidb::query
