#include "query/plan.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace eidb::query {

std::string agg_name(AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return "count";
    case AggOp::kSum:
      return "sum";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kAvg:
      return "avg";
  }
  return "invalid";
}

std::string agg_column_name(const AggSpec& a) {
  if (a.op == AggOp::kCount) return "count";
  return agg_name(a.op) + "(" + (a.expr ? a.expr->to_string() : a.column) +
         ")";
}

void validate_join_plan(const LogicalPlan& plan) {
  if (!plan.has_join()) return;
  for (const AggSpec& a : plan.aggregates)
    if (a.expr != nullptr)
      throw Error("expression aggregates are not supported with joins");
  if (plan.has_group_by() && !plan.is_aggregate())
    throw Error("GROUP BY with JOIN requires an aggregate select list");
  if (!plan.is_aggregate() && plan.projection.empty())
    throw Error("join without aggregates requires an explicit select()");
}

std::string LogicalPlan::to_string() const {
  std::ostringstream os;
  os << "scan(" << table << ")";
  for (const Predicate& p : predicates)
    os << " filter(" << p.column << " in [" << p.lo.to_string() << ","
       << p.hi.to_string() << "])";
  for (const JoinSpec& join : joins) {
    os << " join(" << join.table << " on " << join.left_key << "="
       << join.right_key << ")";
    for (const Predicate& p : join.predicates)
      os << " filter(" << join.table << "." << p.column << " in ["
         << p.lo.to_string() << "," << p.hi.to_string() << "])";
  }
  if (!group_by.empty()) {
    os << " group_by(";
    for (std::size_t i = 0; i < group_by.size(); ++i)
      os << (i ? "," : "") << group_by[i];
    os << ")";
  }
  for (const AggSpec& a : aggregates)
    os << " " << agg_name(a.op) << "("
       << (a.expr ? a.expr->to_string() : a.column) << ")";
  if (!projection.empty()) {
    os << " select(";
    for (std::size_t i = 0; i < projection.size(); ++i)
      os << (i ? "," : "") << projection[i];
    os << ")";
  }
  if (order_by)
    os << " order_by(" << order_by->column
       << (order_by->ascending ? " asc" : " desc") << ")";
  if (limit) os << " limit(" << limit << ")";
  return os.str();
}

QueryBuilder& QueryBuilder::filter_int(std::string column, std::int64_t lo,
                                       std::int64_t hi) {
  plan_.predicates.push_back(
      {std::move(column), storage::Value{lo}, storage::Value{hi}});
  return *this;
}

QueryBuilder& QueryBuilder::filter_double(std::string column, double lo,
                                          double hi) {
  plan_.predicates.push_back(
      {std::move(column), storage::Value{lo}, storage::Value{hi}});
  return *this;
}

QueryBuilder& QueryBuilder::filter_string(std::string column, std::string lo,
                                          std::string hi) {
  plan_.predicates.push_back({std::move(column),
                              storage::Value{std::move(lo)},
                              storage::Value{std::move(hi)}});
  return *this;
}

QueryBuilder& QueryBuilder::join(std::string table, std::string left_key,
                                 std::string right_key) {
  plan_.joins.push_back(
      JoinSpec{std::move(table), std::move(left_key), std::move(right_key), {}});
  return *this;
}

QueryBuilder& QueryBuilder::join_filter_int(std::string column,
                                            std::int64_t lo, std::int64_t hi) {
  EIDB_EXPECTS(!plan_.joins.empty());
  plan_.joins.back().predicates.push_back(
      {std::move(column), storage::Value{lo}, storage::Value{hi}});
  return *this;
}

QueryBuilder& QueryBuilder::group_by(std::string column) {
  plan_.group_by.push_back(std::move(column));
  return *this;
}

QueryBuilder& QueryBuilder::aggregate(AggOp op, std::string column) {
  plan_.aggregates.push_back({op, std::move(column), nullptr});
  return *this;
}

QueryBuilder& QueryBuilder::aggregate_expr(
    AggOp op, std::shared_ptr<const exec::Expr> expr) {
  EIDB_EXPECTS(expr != nullptr);
  plan_.aggregates.push_back({op, {}, std::move(expr)});
  return *this;
}

QueryBuilder& QueryBuilder::select(std::vector<std::string> columns) {
  plan_.projection = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::order_by(std::string column, bool ascending) {
  plan_.order_by = OrderBySpec{std::move(column), ascending};
  return *this;
}

QueryBuilder& QueryBuilder::limit(std::size_t n) {
  plan_.limit = n;
  return *this;
}

}  // namespace eidb::query
