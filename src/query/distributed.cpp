#include "query/distributed.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.hpp"
#include "net/wire_format.hpp"
#include "query/ops/exchange_op.hpp"
#include "query/ops/pipeline.hpp"
#include "query/ops/scan_filter.hpp"
#include "query/ops/sort_op.hpp"
#include "storage/partition.hpp"
#include "util/assert.hpp"

namespace eidb::query {

namespace {

using storage::Value;

/// The per-shard partial plan: a leading COUNT(*) carries each group's row
/// count to the merge, AVG rewrites to SUM (finalized at the coordinator),
/// and sort/limit wait until the partials are merged.
LogicalPlan partial_logical(const LogicalPlan& plan) {
  LogicalPlan p = plan;
  p.order_by.reset();
  p.limit = 0;
  std::vector<AggSpec> aggs;
  aggs.reserve(plan.aggregates.size() + 1);
  aggs.push_back(AggSpec{});  // AggOp::kCount — the merge's row counter.
  for (AggSpec a : plan.aggregates) {
    if (a.op == AggOp::kAvg) a.op = AggOp::kSum;
    aggs.push_back(std::move(a));
  }
  p.aggregates = std::move(aggs);
  return p;
}

/// Serializes a materialized result column-wise. Column kinds come from
/// the first row — every result column is single-typed (an empty result
/// serializes as int64 columns; nothing reads the kind of zero rows).
net::WireTable result_to_wire(const QueryResult& r) {
  net::WireTable t;
  const std::size_t rows = r.row_count();
  for (std::size_t c = 0; c < r.column_count(); ++c) {
    if (rows == 0) {
      t.columns.push_back(net::WireColumn::of_int64({}));
      continue;
    }
    const Value& first = r.at(0, c);
    if (first.is_string()) {
      std::vector<std::string> v;
      v.reserve(rows);
      for (std::size_t i = 0; i < rows; ++i) v.push_back(r.at(i, c).as_string());
      t.columns.push_back(net::WireColumn::of_strings(std::move(v)));
    } else if (first.is_double()) {
      std::vector<double> v;
      v.reserve(rows);
      for (std::size_t i = 0; i < rows; ++i) v.push_back(r.at(i, c).as_double());
      t.columns.push_back(net::WireColumn::of_double(std::move(v)));
    } else {
      std::vector<std::int64_t> v;
      v.reserve(rows);
      for (std::size_t i = 0; i < rows; ++i) v.push_back(r.at(i, c).as_int());
      t.columns.push_back(net::WireColumn::of_int64(std::move(v)));
    }
  }
  return t;
}

Value wire_value(const net::WireColumn& col, std::size_t row) {
  switch (col.kind) {
    case net::WireColumn::Kind::kInt64:
      return Value{col.i64[row]};
    case net::WireColumn::Kind::kDouble:
      return Value{col.f64[row]};
    case net::WireColumn::Kind::kString:
      return Value{col.str[row]};
  }
  return Value{};
}

/// Orders group-key tuples the way the single-node aggregate emits them:
/// lexicographic over the group columns, each compared in its value
/// domain. This equals the composite-code order because dictionaries are
/// sorted (codes are order-preserving) and key strides put the first
/// group column in the most significant position.
struct TupleLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Value& x = a[i];
      const Value& y = b[i];
      if (x.is_string()) {
        const int c = x.as_string().compare(y.as_string());
        if (c != 0) return c < 0;
      } else if (x.is_double()) {
        if (x.as_double() != y.as_double()) return x.as_double() < y.as_double();
      } else {
        if (x.as_int() != y.as_int()) return x.as_int() < y.as_int();
      }
    }
    return false;
  }
};

/// One aggregate's cross-shard accumulator. Integer COUNT/SUM (and the
/// AVG numerator) merge by exact int64 addition; MIN/MAX keep the running
/// extremum in whichever domain the partials carry, guarded by the shard
/// row's count so empty-shard placeholder zeros never participate.
struct AggAcc {
  bool has = false;        ///< Any partial with count > 0 contributed.
  bool is_double = false;  ///< MIN/MAX domain (double column inputs).
  std::int64_t i = 0;
  double d = 0;
};

struct GroupAcc {
  std::int64_t rows = 0;  ///< Merged leading COUNT — the AVG denominator.
  std::vector<AggAcc> aggs;
};

using GroupMap = std::map<std::vector<Value>, GroupAcc, TupleLess>;

void merge_partials(const LogicalPlan& plan, const net::WireTable& t,
                    GroupMap& groups) {
  const std::size_t g_cols = plan.group_by.size();
  const std::size_t a_cols = plan.aggregates.size();
  if (t.columns.size() != g_cols + 1 + a_cols)
    throw Error("distributed: malformed partial-aggregate payload");
  const net::WireColumn& count_col = t.columns[g_cols];
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    std::vector<Value> key;
    key.reserve(g_cols);
    for (std::size_t c = 0; c < g_cols; ++c)
      key.push_back(wire_value(t.columns[c], r));
    GroupAcc& acc = groups[std::move(key)];
    if (acc.aggs.empty()) acc.aggs.resize(a_cols);
    if (count_col.kind != net::WireColumn::Kind::kInt64)
      throw Error("distributed: malformed partial-aggregate payload");
    const std::int64_t cnt = count_col.i64[r];
    acc.rows += cnt;
    for (std::size_t a = 0; a < a_cols; ++a) {
      const net::WireColumn& col = t.columns[g_cols + 1 + a];
      AggAcc& x = acc.aggs[a];
      switch (plan.aggregates[a].op) {
        case AggOp::kCount:
        case AggOp::kSum:
        case AggOp::kAvg:  // partial is the int64 SUM; finalized later
          if (col.kind != net::WireColumn::Kind::kInt64)
            throw Error("distributed: malformed partial-aggregate payload");
          x.i += col.i64[r];
          break;
        case AggOp::kMin:
        case AggOp::kMax: {
          if (cnt == 0) break;  // empty-group placeholder, not a value
          const bool want_max = plan.aggregates[a].op == AggOp::kMax;
          if (col.kind == net::WireColumn::Kind::kDouble) {
            const double v = col.f64[r];
            if (!x.has || (want_max ? v > x.d : v < x.d)) x.d = v;
            x.is_double = true;
          } else {
            const std::int64_t v = col.i64[r];
            if (!x.has || (want_max ? v > x.i : v < x.i)) x.i = v;
          }
          x.has = true;
          break;
        }
      }
    }
  }
}

/// Emits the merged groups in ascending key order with the single-node
/// result schema and value conventions (MIN/MAX of zero rows is int64 0,
/// AVG of zero rows is 0.0 — exactly what agg_out_value emits).
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ < 13
// GCC 12's uninit tracker misfires on moving a just-built Value (variant
// with a string alternative) into the row vector at -O2 (PR105562 class);
// would break the -Werror build.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
QueryResult finalize_partials(const LogicalPlan& plan, GroupMap& groups) {
  std::vector<std::string> names(plan.group_by.begin(), plan.group_by.end());
  for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
  QueryResult merged(std::move(names));
  for (auto& [key, acc] : groups) {
    std::vector<Value> row = key;
    row.reserve(key.size() + plan.aggregates.size());
    for (std::size_t a = 0; a < plan.aggregates.size(); ++a) {
      const AggAcc& x = acc.aggs[a];
      switch (plan.aggregates[a].op) {
        case AggOp::kCount:
        case AggOp::kSum:
          row.push_back(Value{x.i});
          break;
        case AggOp::kMin:
        case AggOp::kMax:
          if (!x.has)
            row.push_back(Value{std::int64_t{0}});
          else if (x.is_double)
            row.push_back(Value{x.d});
          else
            row.push_back(Value{x.i});
          break;
        case AggOp::kAvg:
          row.push_back(Value{acc.rows > 0 ? static_cast<double>(x.i) /
                                                 static_cast<double>(acc.rows)
                                           : 0.0});
          break;
      }
    }
    merged.add_row(std::move(row));
  }
  return merged;
}
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ < 13
#pragma GCC diagnostic pop
#endif

/// What one shard produced in phase A (its own stats, no shared state).
struct ShardOut {
  ExecStats stats;
  QueryResult result;                 ///< Partial-merge mode.
  std::vector<std::int64_t> row_ids;  ///< Gather mode: global row ids.
  std::string error;                  ///< Re-thrown in shard order.
};

/// Folds one shard's stats into the parent: totals add up, operator
/// entries land under an "s<i>:" prefix — the per-operator byte-sum
/// invariant survives because the appended entries sum to exactly the
/// work the fold adds.
void fold_shard_stats(ExecStats& stats, const ExecStats& shard,
                      std::size_t index) {
  stats.tuples_scanned += shard.tuples_scanned;
  stats.tuples_selected += shard.tuples_selected;
  stats.join_pairs += shard.join_pairs;
  stats.work += shard.work;
  stats.packed_column_reads += shard.packed_column_reads;
  stats.dram_bytes_saved += shard.dram_bytes_saved;
  stats.cold_tier_time_s += shard.cold_tier_time_s;
  stats.cold_tier_energy_j += shard.cold_tier_energy_j;
  for (const OperatorStats& op : shard.operators) {
    OperatorStats folded = op;
    folded.name = "s" + std::to_string(index) + ":" + op.name;
    stats.operators.push_back(std::move(folded));
  }
}

}  // namespace

QueryResult run_distributed(const storage::Catalog& catalog,
                            const PhysicalPlan& phys, ExecStats& stats,
                            const ExecOptions& options) {
  const LogicalPlan& plan = phys.logical;
  const DistPlan& dist = phys.dist;
  EIDB_EXPECTS(dist.active());
  const storage::Table& table = catalog.get(plan.table);
  const storage::PartitionSet* pset = table.partition_set();
  if (pset == nullptr || pset->shard_count() != dist.shard_count)
    throw Error("distributed: partition layer of " + plan.table +
                " changed since the plan was compiled");
  const std::size_t shard_count = dist.shard_count;

  std::optional<net::Cluster> transient;
  net::Cluster* cluster = options.cluster;
  if (cluster == nullptr) {
    transient.emplace(shard_count, hw::MachineSpec::server(),
                      hw::LinkSpec::tengbe());
    cluster = &*transient;
  } else if (cluster->node_count() < shard_count) {
    throw Error("distributed: cluster has " +
                std::to_string(cluster->node_count()) + " nodes for " +
                std::to_string(shard_count) + " shards");
  }

  // Phase A: every shard computes locally — own stats, own scratch, no
  // shared mutable state. Shards are the unit of parallelism, so shard
  // operators themselves run serial (pool = nullptr); the cluster, tier
  // manager and governor belong to the coordinator phases.
  PhysicalPlan shard_phys;
  if (dist.mode == DistMode::kPartialMerge) {
    shard_phys = phys;
    shard_phys.logical = partial_logical(plan);
    shard_phys.sort = SortStrategy::kNone;
    shard_phys.sort_on_result = false;
    shard_phys.dist = {};
    shard_phys.governor = {};
  }
  ExecOptions shard_options = options;
  shard_options.pool = nullptr;
  shard_options.shard_count = 0;
  shard_options.cluster = nullptr;
  shard_options.tiers = nullptr;  // tier residency names the original table
  shard_options.governor = nullptr;

  std::vector<ShardOut> outs(shard_count);
  const auto run_shard = [&](std::size_t s) {
    ShardOut& out = outs[s];
    try {
      const storage::Table& shard = *pset->shards[s];
      std::vector<std::uint32_t> idx_scratch;
      std::vector<std::int64_t> key_scratch;
      ops::OpContext sctx{catalog,     shard_options, out.stats,
                          idx_scratch, key_scratch,   {}};
      if (dist.mode == DistMode::kPartialMerge) {
        out.result = ops::execute_pipeline(sctx, shard_phys, shard);
      } else {
        BitVector sel;
        {
          ops::OperatorScope scope(out.stats,
                                   "scan+filter(" + shard.name() + ")");
          sel = ops::evaluate_predicates(sctx, shard, plan.predicates);
          if (plan.predicates.empty())
            out.stats.tuples_scanned += shard.row_count();
          out.stats.tuples_selected = sel.count();
        }
        const std::vector<std::uint32_t>& rows = pset->shard_rows[s];
        for (std::size_t i = 0; i < sel.size(); ++i)
          if (sel.test(i))
            out.row_ids.push_back(static_cast<std::int64_t>(rows[i]));
      }
    } catch (const std::exception& e) {
      out.error = e.what();
    }
  };
  if (options.pool != nullptr && shard_count > 1) {
    options.pool->parallel_for(shard_count, 1,
                               [&](std::size_t begin, std::size_t end) {
                                 for (std::size_t s = begin; s < end; ++s)
                                   run_shard(s);
                               });
  } else {
    for (std::size_t s = 0; s < shard_count; ++s) run_shard(s);
  }
  for (std::size_t s = 0; s < shard_count; ++s)
    if (!outs[s].error.empty()) throw Error(outs[s].error);

  stats.shards_executed = shard_count;
  for (std::size_t s = 0; s < shard_count; ++s)
    fold_shard_stats(stats, outs[s].stats, s);

  // Phases B/C run at the coordinator on the parent stats; exchanges are
  // replayed in shard order so the wire accounting is deterministic.
  std::vector<std::uint32_t> idx_scratch;
  std::vector<std::int64_t> key_scratch;
  ops::OpContext ctx{catalog, options, stats, idx_scratch, key_scratch, {}};
  if (phys.governor.enabled)
    ctx.cores = static_cast<std::size_t>(std::max(1, phys.governor.cores));

  if (dist.mode == DistMode::kPartialMerge) {
    std::vector<net::WireTable> partials;
    partials.reserve(shard_count);
    partials.push_back(result_to_wire(outs[0].result));  // coordinator-local
    {
      ops::OperatorScope scope(stats, "exchange");
      for (const DistJoinExchange& ex : dist.joins)
        ops::charge_join_exchange(ctx, *cluster, ex, shard_count);
      for (std::size_t s = 1; s < shard_count; ++s)
        partials.push_back(ops::exchange_to_coordinator(
            ctx, *cluster, s, result_to_wire(outs[s].result)));
    }
    QueryResult merged;
    {
      ops::OperatorScope scope(stats, "merge-partials");
      GroupMap groups;
      double values = 0;
      for (const net::WireTable& t : partials) {
        merge_partials(plan, t, groups);
        values += static_cast<double>(t.row_count()) *
                  static_cast<double>(t.columns.size());
      }
      stats.work.cpu_cycles += values * ops::kAggCyclesPerTuple;
      merged = finalize_partials(plan, groups);
      if (plan.has_group_by()) stats.groups = merged.row_count();
    }
    if (phys.sort_on_result && plan.order_by.has_value()) {
      ops::OperatorScope scope(
          stats,
          (phys.sort == SortStrategy::kTopK ? "top-k(" : "sort(") +
              plan.order_by->column + ")");
      ops::sort_result_rows(ctx, merged, *plan.order_by, plan.limit);
    } else if (plan.limit != 0 && merged.row_count() > plan.limit) {
      QueryResult trimmed(merged.column_names());
      for (std::size_t i = 0; i < plan.limit; ++i)
        trimmed.add_row(merged.row(i));
      merged = std::move(trimmed);
    }
    return merged;
  }

  // Gather mode: OR the shipped row ids into a selection over the
  // original table, then run the unchanged single-node pipeline with that
  // selection preset — bit-identical by construction.
  BitVector preset(table.row_count());
  {
    ops::OperatorScope scope(stats, "exchange");
    for (const std::int64_t id : outs[0].row_ids)
      preset.set(static_cast<std::size_t>(id));
    for (std::size_t s = 1; s < shard_count; ++s) {
      net::WireTable ids;
      ids.columns.push_back(net::WireColumn::of_int64(outs[s].row_ids));
      const net::WireTable t =
          ops::exchange_to_coordinator(ctx, *cluster, s, ids);
      if (t.columns.size() != 1 ||
          t.columns[0].kind != net::WireColumn::Kind::kInt64)
        throw Error("distributed: malformed row-id payload");
      for (const std::int64_t id : t.columns[0].i64)
        preset.set(static_cast<std::size_t>(id));
    }
  }
  return ops::execute_pipeline(ctx, phys, table, &preset);
}

}  // namespace eidb::query
