// Minimal declarative front end (paper §II: "hybrid query languages").
//
// A hand-written recursive-descent parser for the slice of SQL the engine
// executes, producing `LogicalPlan`s for the same executor/optimizer path
// as the fluent builder:
//
//   SELECT <* | col[, col...] | agg(col)[, agg(col)...]>
//   FROM <table>
//   [JOIN <table> ON <left_col> = <right_col>]
//   [WHERE <pred> [AND <pred>]...]
//   [GROUP BY <col>]
//   [ORDER BY <col> [ASC|DESC]]
//   [LIMIT <n>]
//
//   pred := col BETWEEN lit AND lit | col = lit | col >= lit | col <= lit
//         | col > lit | col < lit
//   agg  := COUNT(*) | COUNT(col) | SUM(col) | MIN(col) | MAX(col) | AVG(col)
//   lit  := integer | float | 'string'
//
// Keywords are case-insensitive; identifiers may be qualified (`t.col`).
// Errors throw eidb::Error with position information.
#pragma once

#include <string>
#include <string_view>

#include "query/plan.hpp"

namespace eidb::query {

/// Parses one statement into a logical plan. Throws eidb::Error on syntax
/// errors (message includes the offending token and offset).
[[nodiscard]] LogicalPlan parse_sql(std::string_view sql);

}  // namespace eidb::query
