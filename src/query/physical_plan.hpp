// The physical plan layer: a LogicalPlan compiled into an explicit
// operator pipeline (scan+filter → join* → aggregate | project →
// sort/top-k → limit) with every physical decision made up front and
// visible — join order (opt::join_order over a statistics-derived
// JoinGraph), per-step join arm (opt::CostModel), aggregation path, and
// sort strategy (full sort vs heap top-k). The executor runs the compiled
// plan; EXPLAIN prints it. The paper's framing: the engine owes the user
// the cheapest-in-joules *whole-plan* strategy, not a per-kernel choice —
// this is where that strategy is assembled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "opt/cost_model.hpp"
#include "query/executor.hpp"
#include "query/plan.hpp"
#include "query/plan_governor.hpp"
#include "storage/table.hpp"

namespace eidb::query {

/// One compiled equi-join step. Steps execute in vector order (the
/// planner's order, not the SQL declaration order): each step builds a
/// table over its (filtered) build side and probes it with a key gathered
/// from `source_side` of the running match tuple.
/// Key class of one join step: integer keys compare raw values; string
/// and double keys compare int32 dictionary codes, with the build side's
/// codes translated into the probe side's code domain at build time
/// (Dictionary::remap_to — missing keys map to -1 and never match).
enum class JoinKeyType : std::uint8_t { kInt, kString, kDouble };

[[nodiscard]] std::string join_key_type_name(JoinKeyType t);

struct PhysicalJoinStep {
  std::size_t logical_index = 0;  ///< Index into LogicalPlan::joins.
  opt::JoinArm arm = opt::JoinArm::kHashJoin;
  /// Side carrying this step's probe key: 0 = the FROM table, s > 0 = the
  /// build table of executed step s-1 (a snowflake reference).
  std::size_t source_side = 0;
  std::string source_key;  ///< Bare probe-key column name on that side.
  double est_build_rows = 0;  ///< Predicted selected build rows.
  double est_rows_out = 0;    ///< Predicted cumulative matches after this step.
  JoinKeyType key_type = JoinKeyType::kInt;
  /// Build-dictionary entries the cross-dictionary remap translates
  /// (string/double keys only; 0 for integer keys).
  std::size_t remap_entries = 0;
};

/// How ORDER BY (if any) is executed.
enum class SortStrategy : std::uint8_t {
  kNone,      ///< No ORDER BY.
  kFullSort,  ///< Full sort of the qualifying rows / result rows.
  kTopK,      ///< Heap-based partial sort bounded by LIMIT.
};

/// How shard results reach the coordinator in a partition-aware plan.
enum class DistMode : std::uint8_t {
  kNone,  ///< Single-node plan (shard_count == 0 or LIMIT 0 short-circuit).
  /// Shards run a rewritten partial-aggregate plan (leading COUNT, AVG →
  /// SUM, sort/limit dropped) on their shard tables; the coordinator
  /// merges the exactly-decomposable partials in the value domain. Only
  /// chosen when every aggregate provably merges bit-exactly (COUNT, and
  /// integer-input SUM/MIN/MAX/AVG, double MIN/MAX); anything else —
  /// double SUM/AVG (floating-point addition is not associative),
  /// expression aggregates, string-code inputs (codes are shard-local) —
  /// falls back to kGather.
  kPartialMerge,
  /// Shards run only scan+filter and ship their selected global row ids;
  /// the coordinator ORs them into a selection over the original table
  /// and runs the normal single-node pipeline — bit-identical by
  /// construction for every plan shape.
  kGather,
};

[[nodiscard]] std::string dist_mode_name(DistMode m);

/// How one join step's build (dimension) side reaches the shards. The
/// engine shares dimensions in-process (only the wire is simulated —
/// DESIGN.md §5); the strategy decides the *modeled* wire volume the
/// cost model's network arm charges through net::Cluster.
enum class ExchangeStrategy : std::uint8_t {
  kBroadcast,    ///< Ship the whole build side to every other shard.
  kRepartition,  ///< Hash-repartition both sides on the join key.
};

[[nodiscard]] std::string exchange_strategy_name(ExchangeStrategy s);

/// One join step's dimension-exchange decision (aligned with
/// PhysicalPlan::joins).
struct DistJoinExchange {
  ExchangeStrategy strategy = ExchangeStrategy::kBroadcast;
  double est_bytes = 0;  ///< Modeled wire bytes of the chosen strategy.
};

/// The partition-aware half of a compiled plan: how the plan fans out
/// over the FROM table's hash-partition layer and what the exchanges are
/// predicted to ship. Inactive (kNone) for single-node plans.
struct DistPlan {
  DistMode mode = DistMode::kNone;
  std::size_t shard_count = 0;
  std::string partition_key;  ///< The partition layer's hash key column.
  /// Per-join-step dimension exchange, aligned with PhysicalPlan::joins.
  std::vector<DistJoinExchange> joins;
  /// Modeled bytes of the shard → coordinator result exchange (partial
  /// rows or gathered row ids).
  double est_result_bytes = 0;

  [[nodiscard]] bool active() const { return mode != DistMode::kNone; }
  /// Total modeled wire bytes (the governor's network-arm input).
  [[nodiscard]] double est_wire_bytes() const {
    double total = est_result_bytes;
    for (const DistJoinExchange& j : joins) total += j.est_bytes;
    return total;
  }
};

struct PhysicalPlan {
  LogicalPlan logical;
  /// Join steps in execution order (empty = no join).
  std::vector<PhysicalJoinStep> joins;
  AggPath agg_path = AggPath::kVectorized;
  JoinPath join_path = JoinPath::kAuto;
  SortStrategy sort = SortStrategy::kNone;
  /// True when the sort operator runs over materialized result rows
  /// (aggregate output); false = row-id sort over a table column.
  bool sort_on_result = false;
  double est_probe_rows = 0;  ///< Predicted selected FROM-table rows.
  /// Join-order decision provenance: "dp" / "greedy" (multi-way), "" when
  /// fewer than two joins left nothing to order.
  std::string join_order_algorithm;
  double join_order_cost = 0;  ///< C_out of the chosen order.
  /// The plan governor's cores × P-state decision for this query (only
  /// when ExecOptions::governor is set; see query/plan_governor.hpp).
  GovernorChoice governor;
  /// Partition-aware execution plan (active when ExecOptions::shard_count
  /// > 0 and the FROM table carries a matching partition layer).
  DistPlan dist;
  /// Shared-scan fusion info, set by the batch runner
  /// (core::Database::run_batch) when this plan's FROM-table scan was
  /// fused with other members of a coalesced batch into one pass
  /// (query/shared_scan). members <= 1 = not shared.
  struct SharedScanInfo {
    std::uint64_t group = 0;
    std::size_t members = 0;
  };
  SharedScanInfo shared;

  [[nodiscard]] std::size_t side_count() const { return joins.size() + 1; }

  /// Multi-line operator tree, sink first (the EXPLAIN format; see
  /// docs/executor_pipeline.md).
  [[nodiscard]] std::string explain() const;
};

/// Compiles `plan` against the catalog's cached statistics. Validates the
/// plan shape (validate_join_plan and column/type checks on join keys),
/// orders multi-way joins via opt::join_order, and picks each step's
/// physical arm via opt::CostModel. Throws eidb::Error on invalid plans.
[[nodiscard]] PhysicalPlan compile_plan(const storage::Catalog& catalog,
                                        const LogicalPlan& plan,
                                        const ExecOptions& options = {});

}  // namespace eidb::query
