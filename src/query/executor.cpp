#include "query/executor.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <set>

#include "exec/aggregate.hpp"
#include "exec/fused.hpp"
#include "exec/join.hpp"
#include "exec/parallel.hpp"
#include "exec/radix_join.hpp"
#include "exec/sort.hpp"
#include "exec/vector_agg.hpp"
#include "opt/cost_model.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::query {

using storage::Column;
using storage::Table;
using storage::TypeId;

namespace {

// Rough cycles/tuple used for abstract-work attribution (the planner's
// calibrated model lives in src/opt/cost_model).
constexpr double kScanCyclesPerTuple = 1.0;
constexpr double kAggCyclesPerTuple = 1.5;
constexpr double kGroupCyclesPerTuple = 6.0;
constexpr double kJoinBuildCyclesPerTuple = 12.0;
constexpr double kJoinProbeCyclesPerTuple = 10.0;
constexpr double kRadixPartitionCyclesPerTuple = 2.5;
constexpr double kMaterializeCyclesPerValue = 20.0;

void time_operator(ExecStats& stats, const std::string& name,
                   const Stopwatch& sw) {
  stats.operator_seconds.emplace_back(name, sw.elapsed_seconds());
}

std::int64_t column_int_at(const Column& c, std::size_t i) {
  if (c.type() == TypeId::kDouble)
    throw Error("column " + c.name() + " is not integer-typed");
  return c.int_at(i);
}

/// Typed kernel view of an integer-or-double column; dictionary and int32
/// columns are consumed as int32 directly (no widened copy).
exec::AggInput agg_input_of(const Column& c) {
  switch (c.type()) {
    case TypeId::kInt32:
      return exec::AggInput::from(c.int32_data());
    case TypeId::kString:
      return exec::AggInput::from(c.codes());
    case TypeId::kInt64:
      return exec::AggInput::from(c.int64_data());
    case TypeId::kDouble:
      return exec::AggInput::from(c.double_data());
  }
  throw Error("invalid column type");
}

/// Integer predicate bounds rewritten into a packed image's reference-
/// shifted domain. Precondition: [lo, hi] overlaps the column's
/// [min, max] (prune_with_stats resolved disjoint/covering predicates),
/// so hi >= reference and the unsigned shift is exact.
struct PackedBounds {
  std::uint64_t lo;
  std::uint64_t hi;
};
PackedBounds packed_bounds(const storage::EncodedSegment& seg,
                           std::int64_t lo, std::int64_t hi) {
  const auto ref = static_cast<std::uint64_t>(seg.reference);
  return {lo <= seg.reference ? 0 : static_cast<std::uint64_t>(lo) - ref,
          static_cast<std::uint64_t>(hi) - ref};
}

}  // namespace

bool Executor::use_packed(const Column& column, const ExecOptions& options) {
  // The byte-size guard keeps the dram(packed) <= dram(plain) ledger
  // invariant unconditional: a forced encoding whose word-rounded image
  // exceeds the plain array (tiny column, near-full width) is simply not
  // consumed — the executor reads plain instead of charging more.
  return options.use_encodings && column.encoded() != nullptr &&
         column.type() != TypeId::kDouble &&
         column.scan_byte_size() <= column.byte_size();
}

Executor::BoundRange Executor::bind_predicate(const Column& column,
                                              const Predicate& p) {
  BoundRange r;
  switch (column.type()) {
    case TypeId::kInt32:
    case TypeId::kInt64:
      r.lo = p.lo.as_int();
      r.hi = p.hi.as_int();
      r.empty = r.lo > r.hi;
      return r;
    case TypeId::kDouble:
      r.is_double = true;
      r.dlo = p.lo.as_double();
      r.dhi = p.hi.as_double();
      r.empty = r.dlo > r.dhi;
      return r;
    case TypeId::kString: {
      if (!p.lo.is_string() || !p.hi.is_string())
        throw Error("string column " + column.name() +
                    " requires string bounds");
      const storage::Dictionary& dict = column.dictionary();
      // Inclusive string range [lo, hi] -> inclusive code range.
      r.lo = dict.lower_bound(p.lo.as_string());
      r.hi = dict.upper_bound(p.hi.as_string()) - 1;
      r.empty = r.lo > r.hi;
      return r;
    }
  }
  throw Error("invalid column type");
}

double Executor::estimate_selectivity(const Column& column,
                                      const Predicate& p) {
  const BoundRange r = bind_predicate(column, p);
  if (r.empty) return 0.0;
  const storage::ColumnStats& s = column.stats();
  return r.is_double ? s.range_selectivity(r.dlo, r.dhi)
                     : s.range_selectivity(r.lo, r.hi);
}

bool Executor::prune_with_stats(const Column& column, const BoundRange& r,
                                BitVector& selection) {
  const storage::ColumnStats& s = column.stats();
  if (s.rows == 0) return false;
  const bool all = r.is_double ? (r.dlo <= s.dmin && r.dhi >= s.dmax)
                               : (r.lo <= s.min && r.hi >= s.max);
  if (all) return true;  // every row matches: selection unchanged, no scan
  const bool none = r.is_double ? (r.dhi < s.dmin || r.dlo > s.dmax)
                                : (r.hi < s.min || r.lo > s.max);
  if (none) {
    selection.clear_all();
    return true;
  }
  return false;
}

void Executor::charge_column_access(const std::string& table,
                                    const Column& column, ExecStats& stats,
                                    const ExecOptions& options,
                                    bool packed) const {
  if (packed) {
    // The scan streams the packed image: that byte count — not the plain
    // width — is the query's real DRAM traffic, and it is what the energy
    // model and the admission controller's settlement see.
    const double bytes = static_cast<double>(column.scan_byte_size());
    stats.work.dram_bytes += bytes;
    ++stats.packed_column_reads;
    stats.dram_bytes_saved +=
        static_cast<double>(column.byte_size()) - bytes;
  } else {
    stats.work.dram_bytes += static_cast<double>(column.byte_size());
  }
  if (options.tiers != nullptr) {
    const auto penalty = options.tiers->access(table, column.name());
    stats.cold_tier_time_s += penalty.time_s;
    stats.cold_tier_energy_j += penalty.energy_j;
  }
}

void Executor::apply_predicate(const Table& table, const Predicate& p,
                               BitVector& selection, ExecStats& stats,
                               const ExecOptions& options) {
  const Column& column = table.column(p.column);
  const BoundRange r = bind_predicate(column, p);
  if (r.empty) {
    selection.clear_all();
    return;
  }
  // Cached-statistics pruning: a predicate the [min, max] range already
  // decides never touches the data (zone-map logic at table granularity).
  if (prune_with_stats(column, r, selection)) return;

  const std::size_t n = column.size();
  if (n == 0) return;
  stats.tuples_scanned += n;
  stats.work.cpu_cycles += kScanCyclesPerTuple * static_cast<double>(n);
  // Packed consumption: kAuto scans only — explicit variant choices (the
  // E3 bench) must measure exactly the requested plain kernel.
  const bool packed = !r.is_double &&
                      options.scan_variant == exec::ScanVariant::kAuto &&
                      use_packed(column, options);
  charge_column_access(table.name(), column, stats, options, packed);

  BitVector match(n);
  if (r.is_double) {
    exec::scan_bitmap_double(column.double_data(), r.dlo, r.dhi, match);
  } else if (packed) {
    const storage::EncodedSegment& seg = *column.encoded();
    const auto pb = packed_bounds(seg, r.lo, r.hi);
    if (options.use_zone_maps) {
      // Zone-map pruning composes with the packed image: candidate ranges
      // are widened to 64-value blocks and run through the block scan
      // kernel. Widening is sound — a row outside every candidate range
      // cannot match the predicate (its block's [min, max] excludes it),
      // so the extra evaluated rows contribute no bits — and overlapping
      // widened ranges rewrite identical words. Only the visited fraction
      // of the *packed* bytes stays charged.
      const storage::ZoneMap& zm = table.zone_map(
          table.schema().index_of(p.column), options.zone_block_rows);
      const auto ranges = zm.candidate_ranges(r.lo, r.hi, n);
      std::size_t touched = 0;
      for (const auto& range : ranges) {
        touched += range.end - range.begin;
        const std::size_t b = range.begin & ~std::size_t{63};
        const std::size_t e = std::min(n, (range.end + 63) & ~std::size_t{63});
        exec::scan_packed_bitmap_range(seg.words, seg.bits, b, e, pb.lo,
                                       pb.hi, match);
      }
      const double skipped = static_cast<double>(n - touched);
      const double packed_bpt =
          static_cast<double>(seg.byte_size()) / static_cast<double>(n);
      const double plain_bpt =
          static_cast<double>(storage::physical_size(column.type()));
      stats.work.cpu_cycles -= kScanCyclesPerTuple * skipped;
      stats.work.dram_bytes -= skipped * packed_bpt;
      stats.dram_bytes_saved -= skipped * (plain_bpt - packed_bpt);
    } else if (options.pool != nullptr) {
      exec::parallel_scan_packed_bitmap(*options.pool, seg.words, seg.bits,
                                        n, pb.lo, pb.hi, match);
    } else {
      exec::scan_packed_bitmap(seg.words, seg.bits, n, pb.lo, pb.hi, match);
    }
  } else if (options.use_zone_maps && column.type() != TypeId::kDouble) {
    // Pruned scan: only candidate blocks are touched. The zone map itself
    // is built once per (table, column) and cached. Work is re-estimated
    // to the touched fraction.
    const storage::ZoneMap& zm = table.zone_map(
        table.schema().index_of(p.column), options.zone_block_rows);
    const auto ranges = zm.candidate_ranges(r.lo, r.hi, n);
    std::size_t touched = 0;
    const auto scan_range = [&](auto data) {
      for (const auto& range : ranges) {
        touched += range.end - range.begin;
        for (std::size_t i = range.begin; i < range.end; ++i)
          if (data[i] >= r.lo && data[i] <= r.hi) match.set(i);
      }
    };
    if (column.type() == TypeId::kInt64)
      scan_range(column.int64_data());
    else
      scan_range(column.int32_data());
    // Credit back the untouched bytes/cycles of the full-scan estimate.
    const double skipped = static_cast<double>(n - touched);
    stats.work.cpu_cycles -= kScanCyclesPerTuple * skipped;
    stats.work.dram_bytes -= skipped * storage::physical_size(column.type());
  } else {
    const auto lo32 = [&] {
      return static_cast<std::int32_t>(std::clamp<std::int64_t>(
          r.lo, std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max()));
    };
    const auto hi32 = [&] {
      return static_cast<std::int32_t>(std::clamp<std::int64_t>(
          r.hi, std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max()));
    };
    switch (options.scan_variant) {
      case exec::ScanVariant::kBranching:
      case exec::ScanVariant::kPredicated: {
        // Index kernels, converted to a bitmap (kept for experiment parity).
        // Scratch buffer is executor-owned: no per-predicate allocation.
        if (idx_scratch_.size() < n) idx_scratch_.resize(n);
        std::size_t k = 0;
        if (column.type() == TypeId::kInt64) {
          k = options.scan_variant == exec::ScanVariant::kBranching
                  ? exec::scan_branching64(column.int64_data(), r.lo, r.hi,
                                           idx_scratch_.data())
                  : exec::scan_predicated64(column.int64_data(), r.lo, r.hi,
                                            idx_scratch_.data());
        } else {
          k = options.scan_variant == exec::ScanVariant::kBranching
                  ? exec::scan_branching(column.int32_data(), lo32(), hi32(),
                                         idx_scratch_.data())
                  : exec::scan_predicated(column.int32_data(), lo32(), hi32(),
                                          idx_scratch_.data());
        }
        for (std::size_t j = 0; j < k; ++j) match.set(idx_scratch_[j]);
        break;
      }
      case exec::ScanVariant::kAvx2:
        if (column.type() == TypeId::kInt64)
          exec::scan_bitmap_avx2_64(column.int64_data(), r.lo, r.hi, match);
        else
          exec::scan_bitmap_avx2(column.int32_data(), lo32(), hi32(), match);
        break;
      case exec::ScanVariant::kAvx512:
        if (column.type() == TypeId::kInt64)
          exec::scan_bitmap_avx512_64(column.int64_data(), r.lo, r.hi, match);
        else
          exec::scan_bitmap_avx512(column.int32_data(), lo32(), hi32(), match);
        break;
      case exec::ScanVariant::kAuto:
        if (options.pool != nullptr) {
          if (column.type() == TypeId::kInt64)
            exec::parallel_scan_bitmap64(*options.pool, column.int64_data(),
                                         r.lo, r.hi, match);
          else
            exec::parallel_scan_bitmap32(*options.pool, column.int32_data(),
                                         lo32(), hi32(), match);
        } else if (column.type() == TypeId::kInt64) {
          exec::scan_bitmap_best64(column.int64_data(), r.lo, r.hi, match);
        } else {
          exec::scan_bitmap_best(column.int32_data(), lo32(), hi32(), match);
        }
        break;
    }
  }
  selection &= match;
}

void Executor::apply_predicate_masked(const Table& table, const Predicate& p,
                                      BitVector& selection, ExecStats& stats,
                                      const ExecOptions& options) {
  const Column& column = table.column(p.column);
  const BoundRange r = bind_predicate(column, p);
  if (r.empty) {
    selection.clear_all();
    return;
  }
  if (prune_with_stats(column, r, selection)) return;

  const bool packed = !r.is_double && use_packed(column, options);
  exec::MaskedScanStats ms;
  if (packed) {
    const storage::EncodedSegment& seg = *column.encoded();
    const auto pb = packed_bounds(seg, r.lo, r.hi);
    exec::scan_packed_bitmap_masked_counted(seg.words, seg.bits,
                                            column.size(), pb.lo, pb.hi,
                                            selection, ms);
  } else {
    switch (column.type()) {
      case TypeId::kInt64:
        exec::scan_bitmap_masked64_counted(column.int64_data(), r.lo, r.hi,
                                           selection, ms);
        break;
      case TypeId::kInt32:
      case TypeId::kString: {
        const auto lo = static_cast<std::int32_t>(std::clamp<std::int64_t>(
            r.lo, std::numeric_limits<std::int32_t>::min(),
            std::numeric_limits<std::int32_t>::max()));
        const auto hi = static_cast<std::int32_t>(std::clamp<std::int64_t>(
            r.hi, std::numeric_limits<std::int32_t>::min(),
            std::numeric_limits<std::int32_t>::max()));
        exec::scan_bitmap_masked32_counted(column.int32_data(), lo, hi,
                                           selection, ms);
        break;
      }
      case TypeId::kDouble:
        exec::scan_bitmap_masked_double_counted(column.double_data(), r.dlo,
                                                r.dhi, selection, ms);
        break;
    }
  }
  // Charge only what was visited: dead 64-row blocks cost neither cycles
  // nor DRAM traffic — this is where ordering predicates most-selective-
  // first saves joules. Packed reads charge the packed bytes per tuple.
  const std::size_t visited = std::min(
      column.size(),
      static_cast<std::size_t>(ms.words_total - ms.words_skipped) * 64);
  const double plain_bpt =
      static_cast<double>(storage::physical_size(column.type()));
  double bytes_per_tuple = plain_bpt;
  if (packed && column.size() > 0) {
    bytes_per_tuple = static_cast<double>(column.scan_byte_size()) /
                      static_cast<double>(column.size());
    ++stats.packed_column_reads;
    stats.dram_bytes_saved +=
        static_cast<double>(visited) * (plain_bpt - bytes_per_tuple);
  }
  stats.tuples_scanned += visited;
  stats.work.cpu_cycles += kScanCyclesPerTuple * static_cast<double>(visited);
  stats.work.dram_bytes += static_cast<double>(visited) * bytes_per_tuple;
  if (options.tiers != nullptr) {
    const auto penalty = options.tiers->access(table.name(), column.name());
    stats.cold_tier_time_s += penalty.time_s;
    stats.cold_tier_energy_j += penalty.energy_j;
  }
}

BitVector Executor::evaluate_predicates(const Table& table,
                                        const std::vector<Predicate>& preds,
                                        ExecStats& stats,
                                        const ExecOptions& options) {
  BitVector selection(table.row_count());
  selection.set_all();

  // Most-selective-first ordering: the first conjunct kills the most rows,
  // so the masked scans that follow skip the most blocks.
  std::vector<const Predicate*> ordered;
  ordered.reserve(preds.size());
  for (const Predicate& p : preds) ordered.push_back(&p);
  if (options.order_predicates && ordered.size() > 1) {
    std::vector<double> sel(ordered.size());
    for (std::size_t i = 0; i < ordered.size(); ++i)
      sel[i] = estimate_selectivity(table.column(ordered[i]->column),
                                    *ordered[i]);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [&](const Predicate* a, const Predicate* b) {
                       return sel[static_cast<std::size_t>(a - preds.data())] <
                              sel[static_cast<std::size_t>(b - preds.data())];
                     });
  }

  // Masked (selection-aware) evaluation needs the adaptive kernels; the
  // explicit-variant and zone-map paths keep per-predicate full scans so
  // experiments measure exactly the requested kernel.
  const bool can_mask = options.order_predicates &&
                        options.scan_variant == exec::ScanVariant::kAuto &&
                        !options.use_zone_maps;
  bool first = true;
  for (const Predicate* p : ordered) {
    if (first || !can_mask)
      apply_predicate(table, *p, selection, stats, options);
    else
      apply_predicate_masked(table, *p, selection, stats, options);
    first = false;
  }
  return selection;
}

QueryResult Executor::execute(const LogicalPlan& plan, ExecStats& stats,
                              const ExecOptions& options) {
  const Table& table = catalog_.get(plan.table);
  if (!table.complete()) throw Error("table not fully loaded: " + plan.table);

  Stopwatch total;
  Stopwatch sw;
  BitVector selection =
      evaluate_predicates(table, plan.predicates, stats, options);
  // With no predicates the downstream operators still read every row.
  if (plan.predicates.empty()) stats.tuples_scanned += table.row_count();
  stats.tuples_selected = selection.count();
  time_operator(stats, "scan+filter(" + plan.table + ")", sw);

  QueryResult result;
  if (plan.join.has_value()) {
    result = run_join(plan, table, selection, stats, options);
  } else if (plan.is_aggregate()) {
    result = run_aggregate(plan, table, selection, stats, options);
  } else {
    result = run_projection(plan, table, selection, stats, options);
  }
  stats.elapsed_s = total.elapsed_seconds();
  return result;
}

namespace {

/// Accumulates one aggregate over an index stream (legacy row-at-a-time
/// path and join aggregates).
struct Accumulator {
  AggOp op;
  bool is_double = false;
  std::uint64_t count = 0;
  std::int64_t isum = 0;
  std::int64_t imin = std::numeric_limits<std::int64_t>::max();
  std::int64_t imax = std::numeric_limits<std::int64_t>::min();
  double dsum = 0;
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();

  void add_int(std::int64_t v) {
    ++count;
    isum += v;
    imin = std::min(imin, v);
    imax = std::max(imax, v);
  }
  void add_double(double v) {
    ++count;
    dsum += v;
    dmin = std::min(dmin, v);
    dmax = std::max(dmax, v);
  }
  [[nodiscard]] storage::Value value() const {
    switch (op) {
      case AggOp::kCount:
        return storage::Value{static_cast<std::int64_t>(count)};
      case AggOp::kSum:
        return is_double ? storage::Value{dsum} : storage::Value{isum};
      case AggOp::kMin:
        if (count == 0) return storage::Value{std::int64_t{0}};
        return is_double ? storage::Value{dmin} : storage::Value{imin};
      case AggOp::kMax:
        if (count == 0) return storage::Value{std::int64_t{0}};
        return is_double ? storage::Value{dmax} : storage::Value{imax};
      case AggOp::kAvg: {
        if (count == 0) return storage::Value{0.0};
        const double sum = is_double ? dsum : static_cast<double>(isum);
        return storage::Value{sum / static_cast<double>(count)};
      }
    }
    return {};
  }
};

std::string agg_column_name(const AggSpec& a) {
  if (a.op == AggOp::kCount) return "count";
  return agg_name(a.op) + "(" + (a.expr ? a.expr->to_string() : a.column) +
         ")";
}

/// Value of one aggregate op from a single-pass AggOut, with the same
/// empty-input semantics as the legacy Accumulator.
storage::Value agg_out_value(AggOp op, const exec::AggOut& out) {
  if (out.is_double) {
    const exec::AggResultD& r = out.d;
    switch (op) {
      case AggOp::kCount:
        return storage::Value{static_cast<std::int64_t>(r.count)};
      case AggOp::kSum:
        return storage::Value{r.sum};
      case AggOp::kMin:
        if (r.count == 0) return storage::Value{std::int64_t{0}};
        return storage::Value{r.min};
      case AggOp::kMax:
        if (r.count == 0) return storage::Value{std::int64_t{0}};
        return storage::Value{r.max};
      case AggOp::kAvg:
        return storage::Value{r.avg()};
    }
  } else {
    const exec::AggResult& r = out.i;
    switch (op) {
      case AggOp::kCount:
        return storage::Value{static_cast<std::int64_t>(r.count)};
      case AggOp::kSum:
        return storage::Value{r.sum};
      case AggOp::kMin:
        if (r.count == 0) return storage::Value{std::int64_t{0}};
        return storage::Value{r.min};
      case AggOp::kMax:
        if (r.count == 0) return storage::Value{std::int64_t{0}};
        return storage::Value{r.max};
      case AggOp::kAvg:
        return storage::Value{r.avg()};
    }
  }
  return {};
}

}  // namespace

QueryResult Executor::run_aggregate(const LogicalPlan& plan,
                                    const Table& table,
                                    const BitVector& selection,
                                    ExecStats& stats,
                                    const ExecOptions& options) {
  if (options.agg_path == AggPath::kRowAtATime)
    return run_aggregate_rows(plan, table, selection, stats, options);
  return run_aggregate_vectorized(plan, table, selection, stats, options);
}

QueryResult Executor::run_aggregate_vectorized(const LogicalPlan& plan,
                                               const Table& table,
                                               const BitVector& selection,
                                               ExecStats& stats,
                                               const ExecOptions& options) {
  Stopwatch sw;
  const std::uint64_t selected = selection.count();
  const bool parallel = options.pool != nullptr &&
                        selected >= options.parallel_agg_min_rows;

  // ---- Resolve AggSpecs to shared inputs: each distinct column (or
  // expression) becomes ONE kernel input, read exactly once, and is
  // charged to the DRAM ledger exactly once. ------------------------------
  std::set<std::string> charged;
  const auto charge_once = [&](const Column& c, bool packed) {
    if (charged.insert(c.name()).second)
      charge_column_access(table.name(), c, stats, options, packed);
  };
  // One representation per column per query: consumers with no packed
  // kernel (expression evaluation, composite-key synthesis) read the
  // plain array, so a column any of them touches is consumed plain by
  // every consumer — otherwise the once-per-query charge could not match
  // what the pass actually streams.
  std::set<std::string> plain_required;
  for (const AggSpec& a : plan.aggregates) {
    if (a.expr == nullptr) continue;
    std::vector<std::string> referenced;
    a.expr->collect_columns(referenced);
    plain_required.insert(referenced.begin(), referenced.end());
  }
  if (plan.group_by.size() > 1)
    plain_required.insert(plan.group_by.begin(), plan.group_by.end());
  const auto consume_packed = [&](const Column& c) {
    return use_packed(c, options) && plain_required.count(c.name()) == 0;
  };
  // Aggregate inputs consume the packed image when one exists: the pass
  // streams fewer DRAM bytes, and the ledger charges exactly those.
  const auto input_of = [&](const Column& c) {
    if (consume_packed(c)) {
      charge_once(c, true);
      return exec::AggInput::from(c.packed_view());
    }
    charge_once(c, false);
    return agg_input_of(c);
  };

  std::vector<exec::AggInput> inputs;
  std::deque<std::vector<double>> expr_values;  // stable storage for spans
  std::map<std::string, std::size_t> input_index;
  std::vector<int> spec_input(plan.aggregates.size(), -1);  // -1 = COUNT
  for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
    const AggSpec& a = plan.aggregates[ai];
    if (a.op == AggOp::kCount) continue;  // COUNT needs no input column
    if (a.expr != nullptr) {
      const std::string key = "expr:" + a.expr->to_string();
      const auto it = input_index.find(key);
      if (it == input_index.end()) {
        std::vector<std::string> referenced;
        a.expr->collect_columns(referenced);
        // Expression evaluation reads the plain arrays (no packed kernel)
        // — the transient-decode fallback arm.
        for (const std::string& name : referenced)
          charge_once(table.column(name), false);
        expr_values.emplace_back();
        exec::evaluate_expression(*a.expr, table, expr_values.back());
        input_index[key] = inputs.size();
        spec_input[ai] = static_cast<int>(inputs.size());
        inputs.push_back(exec::AggInput::from(
            std::span<const double>(expr_values.back())));
      } else {
        spec_input[ai] = static_cast<int>(it->second);
      }
    } else {
      const auto it = input_index.find(a.column);
      if (it == input_index.end()) {
        const Column& c = table.column(a.column);
        input_index[a.column] = inputs.size();
        spec_input[ai] = static_cast<int>(inputs.size());
        inputs.push_back(input_of(c));
      } else {
        spec_input[ai] = static_cast<int>(it->second);
      }
    }
  }

  if (!plan.has_group_by()) {
    // Global aggregates: one pass computes count/sum/min/max for every
    // input; each AggSpec just projects its op out of the shared result.
    std::vector<exec::AggOut> outs;
    if (!inputs.empty())
      outs = parallel ? exec::parallel_multi_aggregate(*options.pool, inputs,
                                                       selection)
                      : exec::multi_aggregate(inputs, selection);
    std::vector<std::string> names;
    names.reserve(plan.aggregates.size());
    for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
    QueryResult result(std::move(names));
    std::vector<storage::Value> row;
    row.reserve(plan.aggregates.size());
    for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      if (spec_input[ai] < 0)
        row.emplace_back(static_cast<std::int64_t>(selected));
      else
        row.push_back(agg_out_value(a.op,
                                    outs[static_cast<std::size_t>(
                                        spec_input[ai])]));
    }
    result.add_row(std::move(row));
    stats.work.cpu_cycles +=
        kAggCyclesPerTuple * static_cast<double>(selected) *
        static_cast<double>(std::max<std::size_t>(1, inputs.size()));
    stats.groups = 1;
    time_operator(stats, "aggregate", sw);
    return result;
  }

  // ---- Grouped aggregation. Key ranges come from the cached column
  // statistics — no per-query min/max scan over the key columns. ----------
  struct GroupKeyPart {
    const Column* col;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t domain = 1;  // max - min + 1, saturated by ColumnStats
    std::int64_t stride = 1;
    std::uint64_t distinct = 0;
  };
  std::vector<GroupKeyPart> parts;
  const std::size_t n_rows = table.row_count();
  // Composite keys are in plain_required (synthesized from the plain
  // arrays); a single packed key column is consumed in place.
  for (const std::string& name : plan.group_by) {
    const Column& col = table.column(name);
    charge_once(col, consume_packed(col));
    if (col.type() == TypeId::kDouble)
      throw Error("cannot group by double column " + col.name());
    const storage::ColumnStats& cs = col.stats();
    GroupKeyPart part;
    part.col = &col;
    part.min = cs.rows == 0 ? 0 : cs.min;
    part.max = cs.rows == 0 ? 0 : cs.max;
    part.domain = std::max<std::int64_t>(1, cs.domain());
    part.distinct = cs.distinct;
    parts.push_back(part);
  }

  exec::GroupedAggs grouped;
  const bool composite = parts.size() > 1;
  if (!composite) {
    // Single key column consumed in place (int32/codes stay 32-bit;
    // encoded keys stay packed and decode per selected row).
    const GroupKeyPart& part = parts.front();
    const exec::KeyRange range{true, part.min, part.max, part.distinct};
    if (consume_packed(*part.col)) {
      const storage::PackedView keys = part.col->packed_view();
      grouped = parallel
                    ? exec::parallel_grouped_multi_aggregate_packed(
                          *options.pool, keys, inputs, selection, range)
                    : exec::grouped_multi_aggregate_packed(keys, inputs,
                                                           selection, range);
    } else if (part.col->type() == TypeId::kInt64) {
      const auto keys = part.col->int64_data();
      grouped = parallel
                    ? exec::parallel_grouped_multi_aggregate(
                          *options.pool, keys, inputs, selection, range)
                    : exec::grouped_multi_aggregate(keys, inputs, selection,
                                                    range);
    } else {
      const auto keys = part.col->int32_data();  // int32 or string codes
      grouped = parallel
                    ? exec::parallel_grouped_multi_aggregate32(
                          *options.pool, keys, inputs, selection, range)
                    : exec::grouped_multi_aggregate32(keys, inputs, selection,
                                                      range);
    }
  } else {
    // Strides right-to-left; guard against composite-domain overflow.
    std::int64_t total = 1;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      it->stride = total;
      if (it->domain > (std::int64_t{1} << 62) / total)
        throw Error("composite group-by domain too large");
      total *= it->domain;
    }
    // Synthesize the composite keys into the reusable scratch buffer
    // (one sequential pass per key column).
    key_scratch_.assign(n_rows, 0);
    for (const GroupKeyPart& part : parts) {
      if (part.col->type() == TypeId::kInt64) {
        const auto data = part.col->int64_data();
        for (std::size_t i = 0; i < n_rows; ++i)
          key_scratch_[i] += (data[i] - part.min) * part.stride;
      } else {
        const auto data = part.col->int32_data();
        for (std::size_t i = 0; i < n_rows; ++i)
          key_scratch_[i] += (data[i] - part.min) * part.stride;
      }
    }
    const std::span<const std::int64_t> keys(key_scratch_.data(), n_rows);
    const exec::KeyRange range{true, 0, total - 1};
    grouped = parallel ? exec::parallel_grouped_multi_aggregate(
                             *options.pool, keys, inputs, selection, range)
                       : exec::grouped_multi_aggregate(keys, inputs,
                                                       selection, range);
  }
  stats.groups = grouped.group_count();
  stats.work.cpu_cycles +=
      kGroupCyclesPerTuple * static_cast<double>(selected) +
      kAggCyclesPerTuple * static_cast<double>(selected) *
          static_cast<double>(inputs.size());

  std::vector<std::string> names(plan.group_by.begin(), plan.group_by.end());
  for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
  QueryResult result(std::move(names));

  for (std::size_t g = 0; g < grouped.group_count(); ++g) {
    std::vector<storage::Value> row;
    row.reserve(parts.size() + plan.aggregates.size());
    if (!composite) {
      const GroupKeyPart& part = parts.front();
      if (part.col->type() == TypeId::kString)
        row.emplace_back(part.col->dictionary().at(
            static_cast<std::int32_t>(grouped.keys[g])));
      else
        row.emplace_back(grouped.keys[g]);
    } else {
      // Decode the composite key back into per-column values.
      for (const GroupKeyPart& part : parts) {
        const std::int64_t component =
            (grouped.keys[g] / part.stride) % part.domain + part.min;
        if (part.col->type() == TypeId::kString)
          row.emplace_back(part.col->dictionary().at(
              static_cast<std::int32_t>(component)));
        else
          row.emplace_back(component);
      }
    }
    for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      if (spec_input[ai] < 0) {
        row.emplace_back(static_cast<std::int64_t>(grouped.counts[g]));
        continue;
      }
      const auto j = static_cast<std::size_t>(spec_input[ai]);
      exec::AggOut out;
      out.is_double = inputs[j].is_double();
      if (out.is_double)
        out.d = grouped.dout[j][g];
      else
        out.i = grouped.iout[j][g];
      row.push_back(agg_out_value(a.op, out));
    }
    result.add_row(std::move(row));
  }
  time_operator(stats, "group-aggregate", sw);
  return result;
}

QueryResult Executor::run_aggregate_rows(const LogicalPlan& plan,
                                         const Table& table,
                                         const BitVector& selection,
                                         ExecStats& stats,
                                         const ExecOptions& options) {
  Stopwatch sw;
  const std::uint64_t selected = selection.count();

  if (!plan.has_group_by()) {
    // Global aggregates.
    std::vector<std::string> names;
    names.reserve(plan.aggregates.size());
    for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
    QueryResult result(std::move(names));
    std::vector<storage::Value> row;
    for (const AggSpec& a : plan.aggregates) {
      Accumulator acc{a.op};
      if (a.op == AggOp::kCount) {
        acc.count = selected;
      } else if (a.expr != nullptr) {
        std::vector<std::string> referenced;
        a.expr->collect_columns(referenced);
        for (const std::string& name : referenced)
          charge_column_access(table.name(), table.column(name), stats,
                               options);
        std::vector<double> evaluated;
        exec::evaluate_expression(*a.expr, table, evaluated);
        acc.is_double = true;
        selection.for_each_set(
            [&](std::size_t i) { acc.add_double(evaluated[i]); });
      } else {
        const Column& c = table.column(a.column);
        charge_column_access(table.name(), c, stats, options);
        if (c.type() == TypeId::kDouble) {
          acc.is_double = true;
          const auto data = c.double_data();
          selection.for_each_set(
              [&](std::size_t i) { acc.add_double(data[i]); });
        } else {
          selection.for_each_set(
              [&](std::size_t i) { acc.add_int(column_int_at(c, i)); });
        }
      }
      row.push_back(acc.value());
      stats.work.cpu_cycles +=
          kAggCyclesPerTuple * static_cast<double>(selected);
    }
    result.add_row(std::move(row));
    stats.groups = 1;
    time_operator(stats, "aggregate", sw);
    return result;
  }

  // Grouped aggregation over one or more key columns (int32 / int64 /
  // string codes). A composite non-negative int64 key is synthesized from
  // the columns' value ranges (stride layout), so every grouping runs on
  // the int64 kernels and decodes back to column values for output.
  struct GroupKeyPart {
    const Column* col;
    std::int64_t min = 0;
    std::int64_t domain = 1;  // max - min + 1
    std::int64_t stride = 1;
  };
  std::vector<GroupKeyPart> parts;
  const std::size_t n_rows = table.row_count();
  for (const std::string& name : plan.group_by) {
    const Column& col = table.column(name);
    charge_column_access(table.name(), col, stats, options);
    if (col.type() == TypeId::kDouble)
      throw Error("cannot group by double column " + col.name());
    GroupKeyPart part;
    part.col = &col;
    std::int64_t mn = 0, mx = 0;
    if (n_rows > 0) {
      // Deliberately rescans the column (the "before" the stats cache
      // eliminates in the vectorized path).
      if (col.type() == TypeId::kInt64) {
        const auto data = col.int64_data();
        mn = mx = data[0];
        for (const std::int64_t v : data) {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
      } else {
        const auto data = col.int32_data();  // int32 or string codes
        mn = mx = data[0];
        for (const std::int32_t v : data) {
          mn = std::min<std::int64_t>(mn, v);
          mx = std::max<std::int64_t>(mx, v);
        }
      }
    }
    part.min = mn;
    part.domain = mx - mn + 1;
    parts.push_back(part);
  }
  // Strides right-to-left; guard against composite-domain overflow.
  std::int64_t total = 1;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    it->stride = total;
    if (it->domain > (std::int64_t{1} << 62) / total)
      throw Error("composite group-by domain too large");
    total *= it->domain;
  }
  // Synthesize the composite keys.
  std::vector<std::int64_t> synth(n_rows, 0);
  for (const GroupKeyPart& part : parts) {
    if (part.col->type() == TypeId::kInt64) {
      const auto data = part.col->int64_data();
      for (std::size_t i = 0; i < n_rows; ++i)
        synth[i] += (data[i] - part.min) * part.stride;
    } else {
      const auto data = part.col->int32_data();
      for (std::size_t i = 0; i < n_rows; ++i)
        synth[i] += (data[i] - part.min) * part.stride;
    }
  }
  const std::span<const std::int64_t> group_keys(synth);

  std::vector<std::string> names(plan.group_by.begin(), plan.group_by.end());
  for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
  QueryResult result(std::move(names));

  // Resolve each aggregate into per-key accumulation via the exec kernels.
  // Strategy: for the first aggregate we compute the group layout (sorted
  // keys); subsequent aggregates are joined by key order. To keep a single
  // pass per aggregate we rely on group_aggregate* returning key-sorted rows.
  struct GroupedOut {
    std::vector<exec::GroupRow> irows;
    std::vector<exec::GroupRowD> drows;
    bool is_double = false;
  };
  std::vector<GroupedOut> per_agg(plan.aggregates.size());

  for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
    const AggSpec& a = plan.aggregates[ai];
    GroupedOut& out = per_agg[ai];
    if (a.expr != nullptr && a.op != AggOp::kCount) {
      // Expression input: evaluate once, group as doubles.
      std::vector<std::string> referenced;
      a.expr->collect_columns(referenced);
      for (const std::string& name : referenced)
        charge_column_access(table.name(), table.column(name), stats,
                             options);
      std::vector<double> evaluated;
      exec::evaluate_expression(*a.expr, table, evaluated);
      out.is_double = true;
      out.drows = exec::group_aggregate_d(group_keys, evaluated, selection);
      stats.work.cpu_cycles +=
          kGroupCyclesPerTuple * static_cast<double>(selected);
      continue;
    }
    const std::string& value_col_name =
        a.op == AggOp::kCount ? plan.group_by.front() : a.column;
    const Column& val_col = table.column(value_col_name);
    if (a.op != AggOp::kCount)
      charge_column_access(table.name(), val_col, stats, options);
    if (val_col.type() == TypeId::kDouble) {
      out.is_double = true;
      out.drows = exec::group_aggregate_d(group_keys, val_col.double_data(),
                                          selection);
    } else {
      // Integer (or count over the synthesized key itself).
      std::vector<std::int64_t> widened;
      std::span<const std::int64_t> values;
      if (a.op == AggOp::kCount) {
        values = group_keys;  // any column works for counting
      } else if (val_col.type() == TypeId::kInt64) {
        values = val_col.int64_data();
      } else {
        widened.reserve(val_col.size());
        for (std::size_t i = 0; i < val_col.size(); ++i)
          widened.push_back(column_int_at(val_col, i));
        values = widened;
      }
      out.irows = exec::group_aggregate(group_keys, values, selection);
    }
    stats.work.cpu_cycles +=
        kGroupCyclesPerTuple * static_cast<double>(selected);
  }

  // All aggregates share the same key set; take it from the first.
  std::vector<std::int64_t> keys;
  if (!per_agg.empty()) {
    if (per_agg[0].is_double)
      for (const auto& r : per_agg[0].drows) keys.push_back(r.key);
    else
      for (const auto& r : per_agg[0].irows) keys.push_back(r.key);
  }
  stats.groups = keys.size();

  for (std::size_t g = 0; g < keys.size(); ++g) {
    std::vector<storage::Value> row;
    row.reserve(parts.size() + plan.aggregates.size());
    // Decode the composite key back into per-column values.
    for (const GroupKeyPart& part : parts) {
      const std::int64_t component =
          (keys[g] / part.stride) % part.domain + part.min;
      if (part.col->type() == TypeId::kString)
        row.emplace_back(part.col->dictionary().at(
            static_cast<std::int32_t>(component)));
      else
        row.emplace_back(component);
    }
    for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      const GroupedOut& out = per_agg[ai];
      if (out.is_double) {
        const exec::AggResultD& r = out.drows[g].agg;
        switch (a.op) {
          case AggOp::kCount:
            row.emplace_back(static_cast<std::int64_t>(r.count));
            break;
          case AggOp::kSum:
            row.emplace_back(r.sum);
            break;
          case AggOp::kMin:
            row.emplace_back(r.min);
            break;
          case AggOp::kMax:
            row.emplace_back(r.max);
            break;
          case AggOp::kAvg:
            row.emplace_back(r.avg());
            break;
        }
      } else {
        const exec::AggResult& r = out.irows[g].agg;
        switch (a.op) {
          case AggOp::kCount:
            row.emplace_back(static_cast<std::int64_t>(r.count));
            break;
          case AggOp::kSum:
            row.emplace_back(r.sum);
            break;
          case AggOp::kMin:
            row.emplace_back(r.min);
            break;
          case AggOp::kMax:
            row.emplace_back(r.max);
            break;
          case AggOp::kAvg:
            row.emplace_back(r.avg());
            break;
        }
      }
    }
    result.add_row(std::move(row));
  }
  time_operator(stats, "group-aggregate", sw);
  return result;
}

QueryResult Executor::run_join(const LogicalPlan& plan, const Table& table,
                               const BitVector& selection, ExecStats& stats,
                               const ExecOptions& options) {
  // Shapes the join paths cannot answer correctly are rejected up front —
  // never silently dropped (the pre-vectorized path ignored GROUP BY and
  // answered as if the query were a global aggregate).
  validate_join_plan(plan);
  if (options.join_path == JoinPath::kPairMaterialize)
    return run_join_pairs(plan, table, selection, stats, options);
  return run_join_vectorized(plan, table, selection, stats, options);
}

QueryResult Executor::run_join_vectorized(const LogicalPlan& plan,
                                          const Table& table,
                                          const BitVector& selection,
                                          ExecStats& stats,
                                          const ExecOptions& options) {
  const JoinSpec& spec = *plan.join;
  const Table& build_table = catalog_.get(spec.table);
  if (!build_table.complete())
    throw Error("table not fully loaded: " + spec.table);

  Stopwatch sw;
  BitVector build_sel =
      evaluate_predicates(build_table, spec.predicates, stats, options);
  time_operator(stats, "scan+filter(" + spec.table + ")", sw);

  // ---- Column resolution: bare names bind to the probe (FROM) table
  // first, then the build table; "table.column" qualifies explicitly. ----
  struct Ref {
    const Table* tbl;
    const Column* col;
    bool from_build;
  };
  const auto resolve = [&](const std::string& name) -> Ref {
    const auto dot = name.find('.');
    if (dot != std::string::npos) {
      const std::string tbl = name.substr(0, dot);
      const std::string col = name.substr(dot + 1);
      if (tbl == build_table.name())
        return {&build_table, &build_table.column(col), true};
      if (tbl == table.name()) return {&table, &table.column(col), false};
      throw Error("unknown table in qualified column: " + name);
    }
    if (table.schema().has_column(name))
      return {&table, &table.column(name), false};
    if (build_table.schema().has_column(name))
      return {&build_table, &build_table.column(name), true};
    throw Error("unknown column: " + name);
  };

  // ---- Ledger: charge each (table, column) once for the representation
  // this join actually streams — the packed image for packed-probed key
  // columns, the plain width for every gathered payload/group column.
  // One representation per column per query (the base aggregation path's
  // rule): a key column that any gather consumer also needs is read plain
  // by the key path too, so the once-per-query charge matches the bytes
  // the pipeline touches. ----
  std::set<std::string> charged;
  const auto qualified = [](const Table& t, const Column& c) {
    return t.name() + "." + c.name();
  };
  const auto charge_once = [&](const Table& t, const Column& c, bool packed) {
    if (charged.insert(qualified(t, c)).second)
      charge_column_access(t.name(), c, stats, options, packed);
  };

  const Column& probe_key = table.column(spec.left_key);
  const Column& build_key = build_table.column(spec.right_key);
  for (const Column* key : {&probe_key, &build_key}) {
    if (key->type() == TypeId::kDouble)
      throw Error("join keys must be integer-typed: " + key->name());
    // Codes from two different dictionaries do not align; equality on
    // them would be a silent wrong answer.
    if (key->type() == TypeId::kString)
      throw Error("string join keys are not supported: " + key->name());
  }

  // Columns any gather consumer (aggregate input, group key, projection)
  // reads from the plain array.
  std::set<std::string> plain_required;
  const auto require_plain = [&](const std::string& name) {
    const Ref r = resolve(name);
    plain_required.insert(qualified(*r.tbl, *r.col));
  };
  if (plan.is_aggregate()) {
    for (const AggSpec& a : plan.aggregates)
      if (a.op != AggOp::kCount) require_plain(a.column);
    for (const std::string& name : plan.group_by) require_plain(name);
  } else {
    for (const std::string& name : plan.projection) require_plain(name);
  }

  // ---- Join keys, consumed without widening: int64/int32 spans read in
  // place, bit-packed images decoded per probed row. ----
  const auto keys_of = [&](const Table& t, const Column& c) {
    if (use_packed(c, options) && plain_required.count(qualified(t, c)) == 0) {
      charge_once(t, c, true);
      return exec::JoinKeys::from(c.packed_view());
    }
    charge_once(t, c, false);
    return c.type() == TypeId::kInt64 ? exec::JoinKeys::from(c.int64_data())
                                      : exec::JoinKeys::from(c.int32_data());
  };
  const exec::JoinKeys probe_keys = keys_of(table, probe_key);
  const exec::JoinKeys build_keys = keys_of(build_table, build_key);

  const std::uint64_t build_rows = build_sel.count();
  const std::uint64_t probe_rows = selection.count();

  // ---- Projection: serial single-table probe (deterministic
  // probe-ascending, build-ascending order, matching the nested-loop
  // oracle) with LIMIT-aware early exit — no pair vector. ----
  sw.restart();
  if (!plan.is_aggregate()) {
    std::vector<std::string> proj = plan.projection;
    struct ProjCol {
      const Column* col;
      bool from_build;
    };
    std::vector<ProjCol> cols;
    cols.reserve(proj.size());
    for (const std::string& name : proj) {
      const Ref r = resolve(name);
      charge_once(*r.tbl, *r.col, false);
      cols.push_back({r.col, r.from_build});
    }
    QueryResult result(std::move(proj));
    const exec::JoinHashTable ht = exec::build_join_table(build_keys, build_sel);
    const auto sink = [&](const std::uint32_t* b, const std::uint32_t* p,
                          std::size_t k) {
      for (std::size_t e = 0; e < k; ++e) {
        std::vector<storage::Value> row;
        row.reserve(cols.size());
        for (const ProjCol& c : cols)
          row.push_back(c.col->value_at(c.from_build ? b[e] : p[e]));
        result.add_row(std::move(row));
      }
    };
    const std::uint64_t pairs = exec::probe_join_blocks(
        ht, probe_keys, selection, 0, selection.word_count(), sink,
        plan.limit);
    stats.join_pairs = pairs;
    stats.work.cpu_cycles +=
        kJoinBuildCyclesPerTuple * static_cast<double>(build_rows) +
        kJoinProbeCyclesPerTuple * static_cast<double>(probe_rows) +
        kMaterializeCyclesPerValue * static_cast<double>(pairs) *
            static_cast<double>(cols.size());
    time_operator(stats, "hash-join+materialize", sw);
    return result;
  }

  // ---- Aggregate inputs: one gather input per distinct referenced
  // column (probe- or build-side); gathers read the plain arrays (random
  // access), so each is charged at the plain width, once. ----
  std::vector<exec::JoinAggregator::Input> inputs;
  std::map<std::string, std::size_t> input_index;
  std::vector<int> spec_input(plan.aggregates.size(), -1);  // -1 = COUNT
  for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
    const AggSpec& a = plan.aggregates[ai];
    if (a.op == AggOp::kCount) continue;
    const auto it = input_index.find(a.column);
    if (it != input_index.end()) {
      spec_input[ai] = static_cast<int>(it->second);
      continue;
    }
    const Ref r = resolve(a.column);
    charge_once(*r.tbl, *r.col, false);
    input_index[a.column] = inputs.size();
    spec_input[ai] = static_cast<int>(inputs.size());
    inputs.push_back({agg_input_of(*r.col), r.from_build});
  }

  // ---- Group keys: any mix of probe- and build-side columns; composite
  // keys use the stride layout of the base aggregation path, with ranges
  // from the cached column statistics. ----
  struct GroupPart {
    const Column* col;
    bool from_build;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t domain = 1;
    std::int64_t stride = 1;
    std::uint64_t distinct = 0;
  };
  std::vector<GroupPart> parts;
  for (const std::string& name : plan.group_by) {
    const Ref r = resolve(name);
    if (r.col->type() == TypeId::kDouble)
      throw Error("cannot group by double column " + name);
    charge_once(*r.tbl, *r.col, false);
    const storage::ColumnStats& cs = r.col->stats();
    GroupPart part;
    part.col = r.col;
    part.from_build = r.from_build;
    part.min = cs.rows == 0 ? 0 : cs.min;
    part.max = cs.rows == 0 ? 0 : cs.max;
    part.domain = std::max<std::int64_t>(1, cs.domain());
    part.distinct = cs.distinct;
    parts.push_back(part);
  }
  const bool composite = parts.size() > 1;
  exec::KeyRange range;
  std::vector<exec::JoinAggregator::KeyPart> kparts;
  if (!parts.empty()) {
    if (!composite) {
      const GroupPart& part = parts.front();
      range = {true, part.min, part.max, part.distinct};
      kparts.push_back({agg_input_of(*part.col), part.from_build, 0, 1});
    } else {
      std::int64_t total = 1;
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        it->stride = total;
        if (it->domain > (std::int64_t{1} << 62) / total)
          throw Error("composite group-by domain too large");
        total *= it->domain;
      }
      for (const GroupPart& part : parts)
        kparts.push_back(
            {agg_input_of(*part.col), part.from_build, part.min, part.stride});
      range = {true, 0, total - 1};
    }
  }
  const auto make_agg = [&] {
    return plan.has_group_by() ? exec::JoinAggregator(inputs, kparts, range)
                               : exec::JoinAggregator(inputs);
  };
  exec::JoinAggregator master = make_agg();

  // ---- Physical arm: one cache-resident hash table vs radix partitions,
  // by build cardinality (cost-model policy); morsel-parallel probe when
  // a pool is provided and the probe side is large enough. ----
  static const opt::CostModel default_model = opt::CostModel::defaults();
  const opt::CostModel& cm =
      options.cost_model != nullptr ? *options.cost_model : default_model;
  const storage::ColumnStats& key_stats = build_key.stats();
  opt::JoinArm arm;
  switch (options.join_path) {
    case JoinPath::kDense:
      if (key_stats.rows == 0 ||
          static_cast<std::uint64_t>(key_stats.domain()) >
              cm.costs().dense_join_max_domain)
        throw Error("build key domain unsuitable for the dense join arm: " +
                    build_key.name());
      arm = opt::JoinArm::kDenseJoin;
      break;
    case JoinPath::kHash:
      arm = opt::JoinArm::kHashJoin;
      break;
    case JoinPath::kRadix:
      arm = opt::JoinArm::kRadixJoin;
      break;
    default:
      arm = cm.pick_join_arm(build_rows, key_stats.distinct,
                             static_cast<std::uint64_t>(key_stats.domain()));
      break;
  }
  const bool parallel = options.pool != nullptr &&
                        probe_rows >= options.parallel_join_min_rows;

  if (arm == opt::JoinArm::kRadixJoin) {
    const unsigned bits = cm.pick_radix_bits(build_rows);
    const exec::RadixPartitions bparts =
        exec::radix_partition(build_keys, build_sel, bits);
    const exec::RadixPartitions pparts =
        exec::radix_partition(probe_keys, selection, bits);
    const std::size_t n_parts = bparts.parts.size();
    stats.work.cpu_cycles += kRadixPartitionCyclesPerTuple *
                             static_cast<double>(build_rows + probe_rows);
    if (parallel) {
      // Partition-range tasks with private aggregators, merged serially.
      const std::size_t n_tasks =
          std::min(n_parts, options.pool->thread_count() * 2);
      std::vector<exec::JoinAggregator> locals;
      locals.reserve(n_tasks);
      for (std::size_t t = 0; t < n_tasks; ++t) locals.push_back(make_agg());
      for (std::size_t t = 0; t < n_tasks; ++t) {
        options.pool->submit([&, t] {
          exec::JoinAggregator& local = locals[t];
          const auto sink = [&local](const std::uint32_t* b,
                                     const std::uint32_t* p, std::size_t k) {
            local.add_block(b, p, k);
          };
          for (std::size_t part = t; part < n_parts; part += n_tasks)
            (void)exec::join_partition_blocks(bparts.parts[part],
                                              pparts.parts[part], sink);
        });
      }
      options.pool->wait_idle();
      for (const exec::JoinAggregator& local : locals)
        master.merge_from(local);
    } else {
      const auto sink = [&master](const std::uint32_t* b,
                                  const std::uint32_t* p, std::size_t k) {
        master.add_block(b, p, k);
      };
      for (std::size_t part = 0; part < n_parts; ++part)
        (void)exec::join_partition_blocks(bparts.parts[part],
                                          pparts.parts[part], sink);
    }
  } else {
    // Dense and hash arms share the probe driver; only the table differs.
    const auto run_probe = [&](const auto& ht) {
      if (parallel) {
        // Morsel-parallel probe over 64-aligned ranges of the selection:
        // per-chunk private aggregators, merged under a lock. Chunks are
        // at least a morsel but no more than ~4 per worker, so each
        // chunk's aggregator setup and merge amortize over enough rows
        // (dense group domains allocate O(domain) per aggregator).
        std::mutex merge_mu;
        const std::size_t total_words = selection.word_count();
        const std::size_t chunks = options.pool->thread_count() * 4;
        const std::size_t per_chunk = (selection.size() + chunks - 1) / chunks;
        const std::size_t grain = std::max<std::size_t>(
            64, std::max(exec::kDefaultMorselRows, per_chunk) / 64 * 64);
        options.pool->parallel_for(
            selection.size(), grain, [&](std::size_t begin, std::size_t end) {
              const std::size_t wb = begin / 64;
              const std::size_t we = std::min(total_words, (end + 63) / 64);
              exec::JoinAggregator local = make_agg();
              const auto sink = [&local](const std::uint32_t* b,
                                         const std::uint32_t* p,
                                         std::size_t k) {
                local.add_block(b, p, k);
              };
              (void)exec::probe_join_blocks(ht, probe_keys, selection, wb, we,
                                            sink);
              std::scoped_lock lock(merge_mu);
              master.merge_from(local);
            });
      } else {
        const auto sink = [&master](const std::uint32_t* b,
                                    const std::uint32_t* p, std::size_t k) {
          master.add_block(b, p, k);
        };
        (void)exec::probe_join_blocks(ht, probe_keys, selection, 0,
                                      selection.word_count(), sink);
      }
    };
    if (arm == opt::JoinArm::kDenseJoin) {
      run_probe(exec::build_dense_join_table(
          build_keys, build_sel, key_stats.rows == 0 ? 0 : key_stats.min,
          std::max<std::int64_t>(1, key_stats.domain())));
    } else {
      run_probe(exec::build_join_table(build_keys, build_sel));
    }
  }
  const std::uint64_t pairs = master.pair_count();
  stats.join_pairs = pairs;
  stats.work.cpu_cycles +=
      kJoinBuildCyclesPerTuple * static_cast<double>(build_rows) +
      kJoinProbeCyclesPerTuple * static_cast<double>(probe_rows);
  time_operator(stats, std::string(opt::join_arm_name(arm)) + "(" +
                           build_table.name() + ")",
                sw);

  // ---- Emit: same decode/emit shape as the base grouped path. ----
  sw.restart();
  const exec::GroupedAggs grouped = master.finish();
  stats.work.cpu_cycles +=
      kAggCyclesPerTuple * static_cast<double>(pairs) *
      static_cast<double>(std::max<std::size_t>(1, inputs.size()));
  if (plan.has_group_by())
    stats.work.cpu_cycles += kGroupCyclesPerTuple * static_cast<double>(pairs);
  stats.groups = plan.has_group_by() ? grouped.group_count() : 1;

  std::vector<std::string> names(plan.group_by.begin(), plan.group_by.end());
  for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
  QueryResult result(std::move(names));
  for (std::size_t g = 0; g < grouped.group_count(); ++g) {
    std::vector<storage::Value> row;
    row.reserve(parts.size() + plan.aggregates.size());
    if (!parts.empty() && !composite) {
      const GroupPart& part = parts.front();
      if (part.col->type() == TypeId::kString)
        row.emplace_back(part.col->dictionary().at(
            static_cast<std::int32_t>(grouped.keys[g])));
      else
        row.emplace_back(grouped.keys[g]);
    } else {
      for (const GroupPart& part : parts) {
        const std::int64_t component =
            (grouped.keys[g] / part.stride) % part.domain + part.min;
        if (part.col->type() == TypeId::kString)
          row.emplace_back(part.col->dictionary().at(
              static_cast<std::int32_t>(component)));
        else
          row.emplace_back(component);
      }
    }
    for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      if (spec_input[ai] < 0) {
        row.emplace_back(static_cast<std::int64_t>(grouped.counts[g]));
        continue;
      }
      const auto j = static_cast<std::size_t>(spec_input[ai]);
      exec::AggOut out;
      out.is_double = inputs[j].column.is_double();
      if (out.is_double)
        out.d = grouped.dout[j][g];
      else
        out.i = grouped.iout[j][g];
      row.push_back(agg_out_value(a.op, out));
    }
    result.add_row(std::move(row));
  }
  time_operator(stats, "aggregate(join)", sw);
  return result;
}

QueryResult Executor::run_join_pairs(const LogicalPlan& plan,
                                     const Table& table,
                                     const BitVector& selection,
                                     ExecStats& stats,
                                     const ExecOptions& options) {
  const JoinSpec& spec = *plan.join;
  const Table& build_table = catalog_.get(spec.table);
  if (!build_table.complete())
    throw Error("table not fully loaded: " + spec.table);
  // The legacy interpreter has no grouped-aggregation support; before the
  // vectorized path existed it silently answered GROUP BY joins as global
  // aggregates (the wrong-result bug this refactor fixed).
  if (plan.has_group_by())
    throw Error("GROUP BY over joins requires the vectorized join path");

  Stopwatch sw;
  BitVector build_sel =
      evaluate_predicates(build_table, spec.predicates, stats, options);
  time_operator(stats, "scan+filter(" + spec.table + ")", sw);

  // Key columns (widened to int64 when needed).
  const Column& probe_key = table.column(spec.left_key);
  const Column& build_key = build_table.column(spec.right_key);
  charge_column_access(table.name(), probe_key, stats, options);
  charge_column_access(build_table.name(), build_key, stats, options);

  auto widen = [](const Column& c) {
    std::vector<std::int64_t> out;
    out.reserve(c.size());
    for (std::size_t i = 0; i < c.size(); ++i)
      out.push_back(column_int_at(c, i));
    return out;
  };
  std::vector<std::int64_t> probe_keys_w, build_keys_w;
  std::span<const std::int64_t> probe_keys, build_keys;
  if (probe_key.type() == TypeId::kInt64) {
    probe_keys = probe_key.int64_data();
  } else {
    probe_keys_w = widen(probe_key);
    probe_keys = probe_keys_w;
  }
  if (build_key.type() == TypeId::kInt64) {
    build_keys = build_key.int64_data();
  } else {
    build_keys_w = widen(build_key);
    build_keys = build_keys_w;
  }

  sw.restart();
  const std::vector<exec::JoinPair> pairs =
      exec::hash_join(build_keys, build_sel, probe_keys, selection);
  stats.join_pairs = pairs.size();
  stats.work.cpu_cycles +=
      kJoinBuildCyclesPerTuple * static_cast<double>(build_sel.count()) +
      kJoinProbeCyclesPerTuple * static_cast<double>(selection.count());
  time_operator(stats, "hash-join", sw);

  sw.restart();
  if (plan.is_aggregate()) {
    // Aggregates over FROM-table columns, one contribution per join pair.
    std::vector<std::string> names;
    for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
    QueryResult result(std::move(names));
    std::vector<storage::Value> row;
    for (const AggSpec& a : plan.aggregates) {
      Accumulator acc{a.op};
      if (a.expr != nullptr)
        throw Error("expression aggregates are not supported with joins");
      if (a.op == AggOp::kCount) {
        acc.count = pairs.size();
      } else {
        const Column& c = table.column(a.column);
        charge_column_access(table.name(), c, stats, options);
        if (c.type() == TypeId::kDouble) {
          acc.is_double = true;
          const auto data = c.double_data();
          for (const exec::JoinPair& p : pairs) acc.add_double(data[p.probe_row]);
        } else {
          for (const exec::JoinPair& p : pairs)
            acc.add_int(column_int_at(c, p.probe_row));
        }
      }
      row.push_back(acc.value());
      stats.work.cpu_cycles +=
          kAggCyclesPerTuple * static_cast<double>(pairs.size());
    }
    result.add_row(std::move(row));
    stats.groups = 1;
    time_operator(stats, "aggregate(join)", sw);
    return result;
  }

  // Projection of join pairs: FROM-table columns plus build-side columns
  // qualified as "table.column".
  std::vector<std::string> proj = plan.projection;
  if (proj.empty())
    throw Error("join without aggregates requires an explicit select()");
  QueryResult result(proj);
  const std::size_t limit =
      plan.limit == 0 ? pairs.size() : std::min(plan.limit, pairs.size());
  for (std::size_t i = 0; i < limit; ++i) {
    std::vector<storage::Value> row;
    row.reserve(proj.size());
    for (const std::string& name : proj) {
      const auto dot = name.find('.');
      if (dot != std::string::npos &&
          name.substr(0, dot) == build_table.name()) {
        row.push_back(
            build_table.column(name.substr(dot + 1)).value_at(pairs[i].build_row));
      } else {
        row.push_back(table.column(name).value_at(pairs[i].probe_row));
      }
    }
    result.add_row(std::move(row));
    stats.work.cpu_cycles += kMaterializeCyclesPerValue *
                             static_cast<double>(proj.size());
  }
  time_operator(stats, "materialize(join)", sw);
  return result;
}

QueryResult Executor::run_projection(const LogicalPlan& plan,
                                     const Table& table,
                                     const BitVector& selection,
                                     ExecStats& stats,
                                     const ExecOptions& options) {
  Stopwatch sw;
  std::vector<std::string> proj = plan.projection;
  if (proj.empty())
    for (const auto& def : table.schema().columns()) proj.push_back(def.name);

  // Ordering.
  std::vector<std::uint32_t> order;
  if (plan.order_by.has_value()) {
    const Column& key = table.column(plan.order_by->column);
    charge_column_access(table.name(), key, stats, options);
    if (key.type() == TypeId::kDouble) {
      order = exec::sort_indices_double(key.double_data(), selection,
                                        plan.order_by->ascending);
    } else if (key.type() == TypeId::kInt64) {
      if (plan.limit != 0)
        order = exec::top_n(key.int64_data(), selection, plan.limit,
                            plan.order_by->ascending);
      else
        order = exec::sort_indices(key.int64_data(), selection,
                                   plan.order_by->ascending);
    } else {
      std::vector<std::int64_t> widened;
      widened.reserve(key.size());
      for (std::size_t i = 0; i < key.size(); ++i)
        widened.push_back(column_int_at(key, i));
      order = plan.limit != 0
                  ? exec::top_n(widened, selection, plan.limit,
                                plan.order_by->ascending)
                  : exec::sort_indices(widened, selection,
                                       plan.order_by->ascending);
    }
  } else {
    order = selection.to_indices();
  }
  if (plan.limit != 0 && order.size() > plan.limit) order.resize(plan.limit);

  for (const std::string& name : proj)
    charge_column_access(table.name(), table.column(name), stats, options);

  QueryResult result(proj);
  for (const std::uint32_t row_idx : order) {
    std::vector<storage::Value> row;
    row.reserve(proj.size());
    for (const std::string& name : proj)
      row.push_back(table.column(name).value_at(row_idx));
    result.add_row(std::move(row));
  }
  stats.work.cpu_cycles += kMaterializeCyclesPerValue *
                           static_cast<double>(order.size()) *
                           static_cast<double>(proj.size());
  time_operator(stats, "materialize", sw);
  return result;
}

}  // namespace eidb::query
