#include "query/executor.hpp"

#include "query/distributed.hpp"
#include "query/ops/op_context.hpp"
#include "query/ops/pipeline.hpp"
#include "query/ops/scan_filter.hpp"
#include "query/physical_plan.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::query {

BitVector Executor::evaluate_predicates(const storage::Table& table,
                                        const std::vector<Predicate>& preds,
                                        ExecStats& stats,
                                        const ExecOptions& options) {
  ops::OpContext ctx{catalog_, options, stats, idx_scratch_, key_scratch_, {}};
  return ops::evaluate_predicates(ctx, table, preds);
}

QueryResult Executor::execute(const LogicalPlan& plan, ExecStats& stats,
                              const ExecOptions& options) {
  return execute(compile_plan(catalog_, plan, options), stats, options);
}

QueryResult Executor::execute(const PhysicalPlan& phys, ExecStats& stats,
                              const ExecOptions& options) {
  const LogicalPlan& plan = phys.logical;
  const storage::Table& table = catalog_.get(plan.table);
  if (!table.complete()) throw Error("table not fully loaded: " + plan.table);
  Stopwatch total;

  QueryResult result;
  if (phys.dist.active() && options.shard_count > 0) {
    result = run_distributed(catalog_, phys, stats, options);
  } else {
    ops::OpContext ctx{catalog_, options, stats, idx_scratch_, key_scratch_,
                       {}};
    // The governor's core grant caps every operator's morsel fan-out.
    if (phys.governor.enabled)
      ctx.cores = static_cast<std::size_t>(std::max(1, phys.governor.cores));
    result = ops::execute_pipeline(ctx, phys, table);
  }
  stats.elapsed_s = total.elapsed_seconds();
  return result;
}

}  // namespace eidb::query
