#include "query/executor.hpp"

#include "query/ops/aggregate_op.hpp"
#include "query/ops/join_op.hpp"
#include "query/ops/op_context.hpp"
#include "query/ops/project_op.hpp"
#include "query/ops/scan_filter.hpp"
#include "query/ops/sort_op.hpp"
#include "query/physical_plan.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::query {

BitVector Executor::evaluate_predicates(const storage::Table& table,
                                        const std::vector<Predicate>& preds,
                                        ExecStats& stats,
                                        const ExecOptions& options) {
  ops::OpContext ctx{catalog_, options, stats, idx_scratch_, key_scratch_, {}};
  return ops::evaluate_predicates(ctx, table, preds);
}

QueryResult Executor::execute(const LogicalPlan& plan, ExecStats& stats,
                              const ExecOptions& options) {
  return execute(compile_plan(catalog_, plan, options), stats, options);
}

QueryResult Executor::execute(const PhysicalPlan& phys, ExecStats& stats,
                              const ExecOptions& options) {
  const LogicalPlan& plan = phys.logical;
  const storage::Table& table = catalog_.get(plan.table);
  if (!table.complete()) throw Error("table not fully loaded: " + plan.table);

  ops::OpContext ctx{catalog_, options, stats, idx_scratch_, key_scratch_, {}};
  // The governor's core grant caps every operator's morsel fan-out.
  if (phys.governor.enabled)
    ctx.cores = static_cast<std::size_t>(std::max(1, phys.governor.cores));
  Stopwatch total;

  BitVector selection;
  {
    ops::OperatorScope scope(stats, "scan+filter(" + plan.table + ")");
    selection = ops::evaluate_predicates(ctx, table, plan.predicates);
    // With no predicates the downstream operators still read every row.
    if (plan.predicates.empty()) stats.tuples_scanned += table.row_count();
    stats.tuples_selected = selection.count();
  }

  QueryResult result;
  if (plan.has_join()) {
    result = ops::run_join(ctx, phys, table, selection);
  } else if (plan.is_aggregate()) {
    result = ops::run_aggregate(ctx, plan, table, selection);
  } else {
    result = ops::run_projection(ctx, phys, table, selection);
  }

  // Sort / top-k over materialized result rows (aggregate output — base
  // table or join alike), then LIMIT. Projections order their row ids
  // inside their own operator instead, so the top-k pass bounds what the
  // materializer gathers and charges.
  if (plan.is_aggregate()) {
    if (phys.sort_on_result && plan.order_by.has_value()) {
      ops::OperatorScope scope(stats,
                               (phys.sort == SortStrategy::kTopK
                                    ? "top-k("
                                    : "sort(") +
                                   plan.order_by->column + ")");
      ops::sort_result_rows(ctx, result, *plan.order_by, plan.limit);
    } else if (plan.limit != 0 && result.row_count() > plan.limit) {
      QueryResult trimmed(result.column_names());
      for (std::size_t i = 0; i < plan.limit; ++i)
        trimmed.add_row(result.row(i));
      result = std::move(trimmed);
    }
  }
  stats.elapsed_s = total.elapsed_seconds();
  return result;
}

}  // namespace eidb::query
