#include "query/physical_plan.hpp"

#include <algorithm>
#include <sstream>

#include "opt/join_order.hpp"
#include "query/ops/scan_filter.hpp"
#include "util/assert.hpp"

namespace eidb::query {

using storage::Column;
using storage::Table;
using storage::TypeId;

namespace {

/// Estimated selected-row count of `table` under `preds` (cached-stats
/// selectivities, conjuncts independent).
double estimate_selected_rows(const Table& table,
                              const std::vector<Predicate>& preds) {
  double rows = static_cast<double>(table.row_count());
  for (const Predicate& p : preds)
    rows *= ops::estimate_predicate_selectivity(table.column(p.column), p);
  return rows;
}

/// Probe-key provenance of one declared join: the FROM table (-1) or an
/// earlier declared join (its declaration index), plus the bare column
/// name on that table.
struct SourceRef {
  int source_decl = -1;
  std::string column;
};

SourceRef resolve_source(const LogicalPlan& plan, const Table& probe,
                         const std::vector<const Table*>& build_tables,
                         std::size_t j) {
  const std::string& key = plan.joins[j].left_key;
  const auto dot = key.find('.');
  if (dot != std::string::npos) {
    const std::string tbl = key.substr(0, dot);
    const std::string col = key.substr(dot + 1);
    if (tbl == probe.name()) return {-1, col};
    for (std::size_t i = 0; i < plan.joins.size(); ++i)
      if (i != j && plan.joins[i].table == tbl)
        return {static_cast<int>(i), col};
    throw Error("join key references unknown table: " + key);
  }
  // Unqualified: the FROM table binds first (an unqualified left key
  // names the probe side by convention). A key the probe side lacks falls
  // through to the snowflake case — some earlier/other build table owns
  // it — and there more than one owner is a hard error: silently picking
  // the first declaration binds the join to the wrong column.
  if (probe.schema().has_column(key)) return {-1, key};
  std::vector<std::string> candidates;
  SourceRef found{-1, key};
  for (std::size_t i = 0; i < plan.joins.size(); ++i) {
    if (i == j || !build_tables[i]->schema().has_column(key)) continue;
    if (candidates.empty()) found = {static_cast<int>(i), key};
    candidates.push_back(build_tables[i]->name());
  }
  if (candidates.empty()) throw Error("unknown join key column: " + key);
  if (candidates.size() > 1) {
    std::string msg = "ambiguous join key column \"" + key +
                      "\" (qualify it): candidates are";
    for (const std::string& t : candidates) msg += " " + t;
    throw Error(msg);
  }
  return found;
}

/// Key class of one join-key column pair. Integer keys compare raw
/// values; string and double keys compare dictionary codes (the build
/// side remapped into the source side's code domain), so both columns
/// must carry the same key class — and double keys need the ordered
/// double dictionary built at load (absent only when the column holds
/// NaN, which has no ordered code domain).
JoinKeyType classify_join_keys(const Column& source, const Column& build) {
  const auto cls = [](const Column& c) {
    switch (c.type()) {
      case TypeId::kString:
        return JoinKeyType::kString;
      case TypeId::kDouble:
        return JoinKeyType::kDouble;
      default:
        return JoinKeyType::kInt;
    }
  };
  const JoinKeyType s = cls(source), b = cls(build);
  if (s != b)
    throw Error("join key type mismatch: " + source.name() + " (" +
                storage::type_name(source.type()) + ") vs " + build.name() +
                " (" + storage::type_name(build.type()) + ")");
  if (s == JoinKeyType::kDouble) {
    for (const Column* c : {&source, &build})
      if (!c->has_double_dictionary())
        throw Error("double join key has no ordered dictionary (NaN "
                    "values): " +
                    c->name());
  }
  return s;
}

/// Linearizes a join-order plan into a left-deep table sequence: DP plans
/// carry one directly; greedy bushy plans replay the merge sequence,
/// concatenating each absorbed component's ordered table list.
std::vector<int> linearize(const opt::JoinOrderPlan& jp, int tables) {
  if (!jp.order.empty()) return jp.order;
  std::vector<int> parent(static_cast<std::size_t>(tables));
  std::vector<std::vector<int>> lists(static_cast<std::size_t>(tables));
  for (int t = 0; t < tables; ++t) {
    parent[static_cast<std::size_t>(t)] = t;
    lists[static_cast<std::size_t>(t)] = {t};
  }
  const auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x)
      x = parent[static_cast<std::size_t>(x)];
    return x;
  };
  for (const auto& [a, b] : jp.merges) {
    const int ra = find(a), rb = find(b);
    if (ra == rb) continue;
    auto& la = lists[static_cast<std::size_t>(ra)];
    auto& lb = lists[static_cast<std::size_t>(rb)];
    la.insert(la.end(), lb.begin(), lb.end());
    lb.clear();
    parent[static_cast<std::size_t>(rb)] = ra;
  }
  return lists[static_cast<std::size_t>(find(0))];
}

/// Resolves a (possibly "table."-qualified) aggregate/group column against
/// the FROM table and every joined build table. nullptr when absent or
/// ambiguous — the caller treats that as "not provably decomposable" and
/// falls back to the gather mode, which is correct for every shape.
const Column* find_plan_column(const storage::Catalog& catalog,
                               const LogicalPlan& plan,
                               const std::string& name) {
  std::string tbl, col = name;
  const auto dot = name.find('.');
  if (dot != std::string::npos) {
    tbl = name.substr(0, dot);
    col = name.substr(dot + 1);
  }
  const Table& probe = catalog.get(plan.table);
  if (tbl.empty() || tbl == probe.name())
    if (probe.schema().has_column(col)) return &probe.column(col);
  const Column* found = nullptr;
  for (const JoinSpec& j : plan.joins) {
    if (!tbl.empty() && tbl != j.table) continue;
    const Table& build = catalog.get(j.table);
    if (!build.schema().has_column(col)) continue;
    if (found != nullptr) return nullptr;  // ambiguous
    found = &build.column(col);
  }
  return found;
}

/// True when every aggregate of `plan` merges bit-exactly from per-shard
/// partials: COUNT always; SUM/MIN/MAX/AVG over integer columns (int
/// addition is associative; AVG rewrites to SUM+COUNT); MIN/MAX over
/// double columns (no rounding). Excluded: double SUM/AVG (floating-point
/// addition is not associative — per-shard partial sums would not be
/// bit-identical to the single-node left-to-right sum), expression
/// aggregates (double-valued), and string-typed inputs (shard
/// dictionaries renumber the codes the kernels aggregate).
bool partial_merge_eligible(const storage::Catalog& catalog,
                            const LogicalPlan& plan) {
  if (!plan.is_aggregate()) return false;
  for (const AggSpec& a : plan.aggregates) {
    if (a.op == AggOp::kCount) continue;
    if (a.expr != nullptr) return false;
    const Column* c = find_plan_column(catalog, plan, a.column);
    if (c == nullptr) return false;
    switch (c->type()) {
      case TypeId::kInt32:
      case TypeId::kInt64:
        break;
      case TypeId::kDouble:
        if (a.op != AggOp::kMin && a.op != AggOp::kMax) return false;
        break;
      case TypeId::kString:
        return false;
    }
  }
  return true;
}

/// The partition-aware half of compilation: validates the FROM table's
/// partition layer against the requested shard count, picks the merge
/// mode, and prices each join step's dimension exchange (broadcast vs
/// repartition) plus the result exchange via the cost model's
/// network-byte arm.
void plan_distribution(const storage::Catalog& catalog, PhysicalPlan& phys,
                       const ExecOptions& options, const opt::CostModel& cm) {
  if (options.shard_count == 0) return;
  const LogicalPlan& plan = phys.logical;
  const Table& probe = catalog.get(plan.table);
  const storage::PartitionSet* pset = probe.partition_set();
  if (pset == nullptr)
    throw Error("sharded execution requires a partition layer on " +
                plan.table + " (Table::build_partitions)");
  if (pset->shard_count() != options.shard_count)
    throw Error("shard_count mismatch for " + plan.table + ": options say " +
                std::to_string(options.shard_count) + ", table has " +
                std::to_string(pset->shard_count()));

  DistPlan dist;
  dist.shard_count = options.shard_count;
  dist.partition_key = pset->key_column;
  dist.mode = partial_merge_eligible(catalog, plan) ? DistMode::kPartialMerge
                                                    : DistMode::kGather;
  double in_rows = phys.est_probe_rows;
  for (const PhysicalJoinStep& step : phys.joins) {
    // Dimension exchanges exist only in partial-merge mode: the gather
    // mode joins at the coordinator after the row-id exchange, so its
    // only wire cost is the result gather priced below.
    if (dist.mode == DistMode::kPartialMerge) {
      const double bcast =
          cm.broadcast_wire_bytes(step.est_build_rows, dist.shard_count);
      const double repart = cm.repartition_wire_bytes(
          step.est_build_rows, in_rows, dist.shard_count);
      DistJoinExchange ex;
      ex.strategy = bcast <= repart ? ExchangeStrategy::kBroadcast
                                    : ExchangeStrategy::kRepartition;
      ex.est_bytes = std::min(bcast, repart);
      dist.joins.push_back(ex);
    }
    in_rows = step.est_rows_out;
  }
  if (dist.mode == DistMode::kGather) {
    // Shards ship their selected FROM-table row ids (pre-join).
    dist.est_result_bytes =
        cm.gather_wire_bytes(phys.est_probe_rows, 8.0, dist.shard_count);
  } else {
    // Shards ship partial group rows: group values + leading count +
    // one partial per aggregate, 8 bytes each. Group count estimated
    // from the key columns' distinct statistics, capped by the rows
    // flowing into the aggregation.
    double groups = 1;
    for (const std::string& g : plan.group_by) {
      const Column* c = find_plan_column(catalog, plan, g);
      if (c != nullptr)
        groups *= std::max<double>(
            1.0, static_cast<double>(c->stats().distinct));
    }
    groups = std::min(groups, std::max(1.0, in_rows));
    const double row_bytes = 8.0 * static_cast<double>(plan.group_by.size() +
                                                       1 +
                                                       plan.aggregates.size());
    dist.est_result_bytes =
        cm.gather_wire_bytes(groups, row_bytes, dist.shard_count);
  }
  phys.dist = std::move(dist);
}

}  // namespace

std::string dist_mode_name(DistMode m) {
  switch (m) {
    case DistMode::kNone:
      return "single-node";
    case DistMode::kPartialMerge:
      return "partial-merge";
    case DistMode::kGather:
      return "gather";
  }
  return "?";
}

std::string exchange_strategy_name(ExchangeStrategy s) {
  switch (s) {
    case ExchangeStrategy::kBroadcast:
      return "broadcast";
    case ExchangeStrategy::kRepartition:
      return "repartition";
  }
  return "?";
}

std::string join_key_type_name(JoinKeyType t) {
  switch (t) {
    case JoinKeyType::kInt:
      return "int";
    case JoinKeyType::kString:
      return "string";
    case JoinKeyType::kDouble:
      return "double";
  }
  return "?";
}

PhysicalPlan compile_plan(const storage::Catalog& catalog,
                          const LogicalPlan& plan,
                          const ExecOptions& options) {
  validate_join_plan(plan);
  PhysicalPlan phys;
  phys.logical = plan;
  phys.agg_path = options.agg_path;
  phys.join_path = options.join_path;

  const Table& probe = catalog.get(plan.table);
  phys.est_probe_rows = estimate_selected_rows(probe, plan.predicates);

  if (plan.order_by.has_value()) {
    phys.sort = plan.limit != 0 ? SortStrategy::kTopK : SortStrategy::kFullSort;
    phys.sort_on_result = plan.is_aggregate();
  }

  static const opt::CostModel default_model = opt::CostModel::defaults();
  const opt::CostModel& cm =
      options.cost_model != nullptr ? *options.cost_model : default_model;

  const std::size_t k = plan.joins.size();
  if (k == 0) {
    plan_distribution(catalog, phys, options, cm);
    apply_plan_governor(catalog, phys, options);
    return phys;
  }
  if (options.join_path == JoinPath::kPairMaterialize && k > 1)
    throw Error("the legacy pair-materializing join path supports a single "
                "join; multi-way joins require the vectorized pipeline");

  // ---- Resolve every declared join: build table, key columns (typed),
  // probe-key provenance, and cardinality estimates. ----
  std::vector<const Table*> build_tables(k);
  for (std::size_t j = 0; j < k; ++j) {
    // Without aliases, a table joined twice makes every qualified
    // reference ambiguous — reject rather than silently bind to the
    // first instance.
    if (plan.joins[j].table == plan.table)
      throw Error("self-joins are not supported: " + plan.table);
    for (std::size_t i = 0; i < j; ++i)
      if (plan.joins[i].table == plan.joins[j].table)
        throw Error("table joined twice (aliases are not supported): " +
                    plan.joins[j].table);
    build_tables[j] = &catalog.get(plan.joins[j].table);
  }
  std::vector<SourceRef> sources(k);
  std::vector<double> est_build(k);
  std::vector<double> fanout(k);  // predicted matches per probe tuple
  std::vector<JoinKeyType> key_types(k, JoinKeyType::kInt);
  // Probe-side code-domain size per join (string/double keys): the dense
  // arm's direct-address domain is [-1, dict_size) — the -1 slot absorbs
  // build codes the probe dictionary lacks.
  std::vector<std::uint64_t> code_domain(k, 0);
  for (std::size_t j = 0; j < k; ++j) {
    const JoinSpec& spec = plan.joins[j];
    sources[j] = resolve_source(plan, probe, build_tables, j);
    const Table& src_tbl = sources[j].source_decl < 0
                               ? probe
                               : *build_tables[static_cast<std::size_t>(
                                     sources[j].source_decl)];
    const Column& left = src_tbl.column(sources[j].column);
    const Column& right = build_tables[j]->column(spec.right_key);
    key_types[j] = classify_join_keys(left, right);
    if (key_types[j] == JoinKeyType::kString)
      code_domain[j] =
          static_cast<std::uint64_t>(left.dictionary().size()) + 1;
    else if (key_types[j] == JoinKeyType::kDouble)
      code_domain[j] =
          static_cast<std::uint64_t>(left.double_dictionary().size()) + 1;
    if (key_types[j] != JoinKeyType::kInt &&
        options.join_path == JoinPath::kPairMaterialize)
      throw Error("the legacy pair-materializing join path joins integer "
                  "keys only: " +
                  spec.right_key);
    est_build[j] = estimate_selected_rows(*build_tables[j], spec.predicates);
    const double distinct =
        std::max<double>(1.0, static_cast<double>(right.stats().distinct));
    fanout[j] = est_build[j] / distinct;
  }

  // ---- Join ordering: opt::join_order over the statistics-derived
  // JoinGraph (node 0 = the FROM table; node j+1 = join j's build side;
  // one edge per equi-join predicate with selectivity 1/distinct(key)).
  // DP below its feasibility bound, greedy operator ordering above it —
  // the E9 policy, now live inside the planner. ----
  std::vector<std::size_t> exec_order(k);
  if (k == 1) {
    exec_order[0] = 0;
  } else {
    opt::JoinGraph graph;
    graph.table_rows.push_back(std::max(1.0, phys.est_probe_rows));
    for (std::size_t j = 0; j < k; ++j)
      graph.table_rows.push_back(std::max(1.0, est_build[j]));
    for (std::size_t j = 0; j < k; ++j) {
      const Column& right =
          build_tables[j]->column(plan.joins[j].right_key);
      const double distinct =
          std::max<double>(1.0, static_cast<double>(right.stats().distinct));
      graph.edges.push_back({sources[j].source_decl + 1,
                             static_cast<int>(j) + 1, 1.0 / distinct});
    }
    const opt::JoinOrderPlan ordered =
        graph.table_count() <= 12 ? opt::optimize_dp(graph)
                                  : opt::optimize_greedy(graph);
    phys.join_order_algorithm = ordered.algorithm;
    phys.join_order_cost = ordered.cost;
    const std::vector<int> seq = linearize(ordered, graph.table_count());
    exec_order.clear();
    for (const int node : seq)
      if (node != 0) exec_order.push_back(static_cast<std::size_t>(node - 1));
    EIDB_ASSERT(exec_order.size() == k);
    // Topological fix-up: a snowflake step cannot run before the join
    // that produces its probe-key side. Stable insertion keeps the cost
    // order otherwise.
    std::vector<std::size_t> fixed;
    std::vector<bool> placed(k, false);
    while (fixed.size() < k) {
      bool progressed = false;
      for (const std::size_t j : exec_order) {
        if (placed[j]) continue;
        const int src = sources[j].source_decl;
        if (src >= 0 && !placed[static_cast<std::size_t>(src)]) continue;
        placed[j] = true;
        fixed.push_back(j);
        progressed = true;
      }
      if (!progressed)
        throw Error("cyclic join key references");  // a ON b.x, b ON a.y
    }
    exec_order = std::move(fixed);
  }

  // ---- Per-step physical arm (opt::CostModel) and cardinality chain. ----
  // Declaration index -> executed side (1-based; 0 is the probe table).
  std::vector<std::size_t> side_of(k, 0);
  for (std::size_t pos = 0; pos < k; ++pos)
    side_of[exec_order[pos]] = pos + 1;

  double est = phys.est_probe_rows;
  for (std::size_t pos = 0; pos < k; ++pos) {
    const std::size_t j = exec_order[pos];
    const Column& right = build_tables[j]->column(plan.joins[j].right_key);
    const storage::ColumnStats& ks = right.stats();
    PhysicalJoinStep step;
    step.logical_index = j;
    step.source_side = sources[j].source_decl < 0
                           ? 0
                           : side_of[static_cast<std::size_t>(
                                 sources[j].source_decl)];
    step.source_key = sources[j].column;
    step.est_build_rows = est_build[j];
    est *= fanout[j];
    step.est_rows_out = est;
    step.key_type = key_types[j];
    const bool code_key = step.key_type != JoinKeyType::kInt;
    if (code_key) {
      step.remap_entries =
          step.key_type == JoinKeyType::kString
              ? static_cast<std::size_t>(right.dictionary().size())
              : static_cast<std::size_t>(right.double_dictionary().size());
    }
    // Code-domain keys probe int32 codes in [-1, source dict size); the
    // build column's raw stats describe *its own* code domain and do not
    // apply after the remap.
    const std::uint64_t key_domain =
        code_key ? code_domain[j] : static_cast<std::uint64_t>(ks.domain());
    const unsigned key_width =
        code_key || right.type() != TypeId::kInt64 ? 4 : 8;
    switch (options.join_path) {
      case JoinPath::kDense:
        if ((!code_key && ks.rows == 0) || key_domain == 0 ||
            key_domain > cm.costs().dense_join_max_domain)
          throw Error("build key domain unsuitable for the dense join arm: " +
                      right.name());
        step.arm = opt::JoinArm::kDenseJoin;
        break;
      case JoinPath::kHash:
        step.arm = opt::JoinArm::kHashJoin;
        break;
      case JoinPath::kRadix:
        step.arm = opt::JoinArm::kRadixJoin;
        break;
      default:
        step.arm = cm.pick_join_arm(
            static_cast<std::uint64_t>(std::max(0.0, est_build[j])),
            ks.distinct, key_domain, key_width);
        break;
    }
    // The radix arm re-partitions a *selection*; only the first executed
    // step probes one, and only the aggregation sink consumes partition
    // order. Everywhere else it degrades to the cache-resident hash arm.
    if (step.arm == opt::JoinArm::kRadixJoin &&
        (pos != 0 || !plan.is_aggregate()))
      step.arm = opt::JoinArm::kHashJoin;
    phys.joins.push_back(std::move(step));
  }
  plan_distribution(catalog, phys, options, cm);
  apply_plan_governor(catalog, phys, options);
  return phys;
}

std::string PhysicalPlan::explain() const {
  std::ostringstream os;
  os << "physical plan:\n";
  const auto fmt_rows = [](double rows) {
    std::ostringstream s;
    s << static_cast<std::uint64_t>(std::max(0.0, rows));
    return s.str();
  };
  if (logical.limit != 0) os << "  limit(" << logical.limit << ")\n";
  if (logical.order_by.has_value()) {
    os << "  " << (sort == SortStrategy::kTopK ? "top-k" : "sort") << "("
       << logical.order_by->column
       << (logical.order_by->ascending ? " asc" : " desc");
    if (sort == SortStrategy::kTopK) os << ", k=" << logical.limit;
    os << (sort_on_result ? ", over result rows" : ", over row ids") << ")\n";
  }
  if (logical.is_aggregate()) {
    os << "  aggregate(";
    if (logical.has_group_by()) {
      os << "group_by=[";
      for (std::size_t i = 0; i < logical.group_by.size(); ++i)
        os << (i ? "," : "") << logical.group_by[i];
      os << "], ";
    }
    os << "aggs=[";
    for (std::size_t i = 0; i < logical.aggregates.size(); ++i)
      os << (i ? "," : "") << agg_column_name(logical.aggregates[i]);
    os << "], path="
       << (agg_path == AggPath::kVectorized ? "vectorized" : "row-at-a-time")
       << ")\n";
  } else {
    os << "  project(";
    if (logical.projection.empty()) {
      os << "*";
    } else {
      for (std::size_t i = 0; i < logical.projection.size(); ++i)
        os << (i ? "," : "") << logical.projection[i];
    }
    os << ")\n";
  }
  for (auto it = joins.rbegin(); it != joins.rend(); ++it) {
    const JoinSpec& spec = logical.joins[it->logical_index];
    os << "  join[" << opt::join_arm_name(it->arm) << "](" << spec.table
       << " ON " << it->source_key << " = " << spec.right_key
       << ", probe side " << it->source_side
       << ", est_build=" << fmt_rows(it->est_build_rows)
       << ", est_out=" << fmt_rows(it->est_rows_out);
    if (it->key_type != JoinKeyType::kInt)
      os << ", key=" << join_key_type_name(it->key_type) << " codes, remap="
         << it->remap_entries << " entries";
    os << ")\n";
  }
  os << "  scan+filter(" << logical.table << ", preds="
     << logical.predicates.size() << ", est_rows=" << fmt_rows(est_probe_rows)
     << ")\n";
  if (dist.active()) {
    os << "shards: " << dist.shard_count << " x " << logical.table
       << " (hash key " << dist.partition_key << ", mode "
       << dist_mode_name(dist.mode) << ")\n";
    for (std::size_t i = 0; i < dist.joins.size(); ++i)
      os << "exchange: join "
         << logical.joins[joins[i].logical_index].table << " "
         << exchange_strategy_name(dist.joins[i].strategy)
         << ", est_bytes=" << fmt_rows(dist.joins[i].est_bytes) << "\n";
    os << "exchange: result gather-to-coordinator, est_bytes="
       << fmt_rows(dist.est_result_bytes) << "\n";
  }
  if (!join_order_algorithm.empty())
    os << "join order: " << join_order_algorithm
       << " (C_out=" << join_order_cost << ")\n";
  if (governor.enabled)
    os << "governor: " << governor.cores << " cores x "
       << governor.state.freq_ghz << " GHz (" << governor.policy
       << ", est_busy=" << governor.est_busy_s
       << "s, est_energy=" << governor.est_energy_j << "J)\n";
  if (shared.members > 1)
    os << "shared: group=" << shared.group << " members=" << shared.members
       << "\n";
  return os.str();
}

}  // namespace eidb::query
