// Multi-query shared scans: compatibility analysis over compiled plans
// and the group runner that feeds one fused table pass into many
// per-query pipelines (the serving-tier half of exec/shared_scan).
//
// A coalesced batch's plans are grouped by (table, encoding-visible
// column set, conjunct structure). A compatible group makes ONE chunked
// pass over the shared table (exec::shared_scan) producing every member's
// selection bitmap, then runs each member's existing pipeline over its
// bitmap as a preset — bit-identical to independent execution by
// construction, because the fused pass evaluates exactly the same bound
// ranges the scan-filter kernels would.
//
// Ledger discipline: the fused pass streams each distinct predicate
// column ONCE, so the group charges that column's bytes once — not once
// per member — and the single charge is attributed across members by
// per-member work (sink bytes + selected rows), residual to the last
// member so the per-operator byte sums stay exact. Per-member evaluated
// cycles and the pass's wall seconds are attributed the same way, so
// per-operator joules still sum to each query's totals and per-tenant
// settlement stays fair.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "query/executor.hpp"
#include "query/physical_plan.hpp"
#include "query/result.hpp"
#include "storage/table.hpp"

namespace eidb::query {

/// One member of a candidate shared-scan batch: its compiled plan and the
/// effective exec options it will run under. `phys` may be null (compile
/// failed upstream); such members land in ineligible singletons.
struct SharedBatchMember {
  const PhysicalPlan* phys = nullptr;
  const ExecOptions* options = nullptr;
};

/// Compatibility key of one compiled plan: table plus the ordered multiset
/// of (predicate column, streamed representation) — the representation tag
/// captures the encoding-visible column set (a packed image is a different
/// stream than the plain array). Empty = ineligible for sharing (no
/// predicates, distributed/sharded plan, explicit scan variant, zone maps,
/// or tiered columns — those paths keep their specialized kernels and
/// charging).
[[nodiscard]] std::string scan_sharing_key(const storage::Catalog& catalog,
                                           const PhysicalPlan& phys,
                                           const ExecOptions& options);

/// Request-level pre-key over a logical plan (no catalog needed): table
/// plus sorted predicate columns. The serving tier partitions coalesced
/// batches with this before compiling; scan_sharing_key() re-verifies on
/// the compiled plans. Empty = trivially ineligible (no predicates).
[[nodiscard]] std::string scan_sharing_prekey(const LogicalPlan& plan);

/// One compatibility group of an analyzed batch.
struct ScanShareGroup {
  std::vector<std::size_t> members;  ///< Indices into the analyzed batch.
  std::string key;                   ///< "" = ineligible singleton.
  bool share = false;  ///< Cost-model verdict: fuse vs run independent.
  double est_scan_bytes = 0;      ///< One pass's streamed bytes.
  double est_independent_j = 0;   ///< Modeled N-independent-scans energy.
  double est_shared_j = 0;        ///< Modeled fused-pass energy.
};

/// Groups a batch by scan_sharing_key and prices each >= 2-member group's
/// share-vs-independent decision (opt::CostModel::pick_scan_sharing with
/// hw::AcceleratorSpec::pim() as the in-memory-compute point).
[[nodiscard]] std::vector<ScanShareGroup> analyze_scan_sharing(
    const storage::Catalog& catalog, const hw::MachineSpec& machine,
    std::span<const SharedBatchMember> batch);

/// One member's outcome of a shared group run.
struct SharedMemberOut {
  QueryResult result;
  ExecStats stats;
  std::string error;  ///< Non-empty when this member's pipeline threw.
};

/// Executes one compatible group: fused pass + per-member pipelines +
/// single-charge scan attribution (see file comment). `members` must all
/// carry compiled plans over the same FROM table with matching
/// scan-visible options (i.e. equal scan_sharing_key); `outs` is aligned
/// with `members`. Each member's stats carry its full per-operator
/// attribution including its share of the fused pass; stats.elapsed_s is
/// the member's pipeline wall plus its attributed share of the pass.
void execute_shared_group(const storage::Catalog& catalog,
                          std::span<const SharedBatchMember> members,
                          std::span<SharedMemberOut> outs);

}  // namespace eidb::query
