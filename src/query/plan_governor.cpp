#include "query/plan_governor.hpp"

#include <algorithm>
#include <cmath>

#include "opt/cost_model.hpp"
#include "query/ops/op_context.hpp"
#include "query/ops/scan_filter.hpp"
#include "query/physical_plan.hpp"
#include "sched/governor.hpp"
#include "sched/thread_pool.hpp"
#include "storage/table.hpp"

namespace eidb::query {

using storage::Column;
using storage::Table;

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::size_t kind_index(OperatorKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

OperatorKind classify_operator(std::string_view name) {
  if (starts_with(name, "scan+filter")) return OperatorKind::kScan;
  if (starts_with(name, "hash-join") || starts_with(name, "radix-join") ||
      starts_with(name, "dense-join") || starts_with(name, "join"))
    return OperatorKind::kJoin;
  if (starts_with(name, "aggregate")) return OperatorKind::kAggregate;
  if (starts_with(name, "top-k") || starts_with(name, "sort"))
    return OperatorKind::kSort;
  if (starts_with(name, "materialize")) return OperatorKind::kMaterialize;
  return OperatorKind::kOther;
}

std::string_view operator_kind_name(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kScan: return "scan";
    case OperatorKind::kJoin: return "join";
    case OperatorKind::kAggregate: return "aggregate";
    case OperatorKind::kSort: return "sort";
    case OperatorKind::kMaterialize: return "materialize";
    case OperatorKind::kOther: break;
  }
  return "other";
}

double OperatorCalibration::factor(OperatorKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return factors_[kind_index(kind)];
}

void OperatorCalibration::observe(OperatorKind kind, double predicted_s,
                                  double measured_s) {
  if (!(predicted_s > 0) || !(measured_s > 0)) return;
  const double ratio = std::clamp(measured_s / predicted_s, 0.05, 20.0);
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t i = kind_index(kind);
  if (!seen_[i]) {
    factors_[i] = ratio;
    seen_[i] = true;
  } else {
    factors_[i] = (1.0 - alpha_) * factors_[i] + alpha_ * ratio;
  }
}

void OperatorCalibration::observe_operators(
    const std::vector<OperatorStats>& operators,
    const hw::MachineSpec& machine, const hw::DvfsState& state) {
  for (const OperatorStats& op : operators)
    observe(classify_operator(op.name), machine.exec_time_s(op.work, state),
            op.seconds);
}

namespace {

/// Predicted scan work of `table` under `preds` (one kernel pass per
/// conjunct, variant picked the way the executor's kAuto dispatcher
/// would).
hw::Work estimate_scan_work(const opt::CostModel& cm, const Table& table,
                            const std::vector<Predicate>& preds,
                            const ExecOptions& options) {
  hw::Work work;
  const std::uint64_t rows = table.row_count();
  if (rows == 0) return work;
  for (const Predicate& p : preds) {
    const Column& col = table.column(p.column);
    const double sel = ops::estimate_predicate_selectivity(col, p);
    const exec::ScanVariant v = options.scan_variant == exec::ScanVariant::kAuto
                                    ? cm.pick_scan_variant(sel)
                                    : options.scan_variant;
    const double bytes_per_tuple =
        static_cast<double>(col.byte_size()) / static_cast<double>(rows);
    work += cm.scan_work(v, rows, sel, bytes_per_tuple);
  }
  return work;
}

double calibrated(const ExecOptions& options, OperatorKind kind) {
  return options.calibration != nullptr ? options.calibration->factor(kind)
                                        : 1.0;
}

}  // namespace

hw::Work estimate_plan_work(const storage::Catalog& catalog,
                            const PhysicalPlan& phys,
                            const ExecOptions& options) {
  static const opt::CostModel default_model = opt::CostModel::defaults();
  const opt::CostModel& cm =
      options.cost_model != nullptr ? *options.cost_model : default_model;
  const LogicalPlan& plan = phys.logical;
  const Table& probe = catalog.get(plan.table);

  // Scans: the FROM table's conjuncts plus every build side's.
  hw::Work scan = estimate_scan_work(cm, probe, plan.predicates, options);
  for (const JoinSpec& spec : plan.joins)
    scan += estimate_scan_work(cm, catalog.get(spec.table), spec.predicates,
                               options);

  // Joins: the compiled cardinality chain — probe rows into step i are the
  // previous step's predicted matches.
  hw::Work join;
  double chain_rows = std::max(0.0, phys.est_probe_rows);
  for (const PhysicalJoinStep& step : phys.joins) {
    join += cm.join_work(step.arm,
                         static_cast<std::uint64_t>(
                             std::max(0.0, step.est_build_rows)),
                         static_cast<std::uint64_t>(chain_rows),
                         /*bytes_per_tuple=*/8.0);
    chain_rows = std::max(0.0, step.est_rows_out);
  }
  const double rows_out = chain_rows;
  const auto rows_u64 = static_cast<std::uint64_t>(rows_out);

  // Sink: aggregation (grouped or plain) or projection materialization.
  hw::Work agg;
  hw::Work materialize;
  if (plan.is_aggregate()) {
    agg = plan.has_group_by() ? cm.group_work(rows_u64, /*dense=*/false, 8.0)
                              : cm.agg_work(rows_u64, 8.0);
  } else {
    std::size_t cols = plan.projection.size();
    if (cols == 0) cols = probe.schema().columns().size();
    const double emitted =
        plan.limit != 0 ? std::min<double>(rows_out, plan.limit) : rows_out;
    materialize.cpu_cycles = ops::kMaterializeCyclesPerValue * emitted *
                             static_cast<double>(cols);
    materialize.dram_bytes = 8.0 * emitted * static_cast<double>(cols);
  }

  // Sort / top-k over row ids (aggregate-output sorts act on group counts
  // the planner cannot estimate; they are small and left to calibration).
  hw::Work sort;
  if (phys.sort != SortStrategy::kNone && !phys.sort_on_result &&
      rows_out >= 2) {
    const double k = static_cast<double>(plan.limit);
    const double comparisons =
        (phys.sort == SortStrategy::kTopK && k > 0 && k < rows_out)
            ? rows_out + k * std::log2(k + 1)
            : rows_out * std::log2(rows_out);
    sort.cpu_cycles = ops::kSortCyclesPerComparison * comparisons;
    sort.dram_bytes = 8.0 * rows_out;
  }

  hw::Work total = scan * calibrated(options, OperatorKind::kScan) +
                   join * calibrated(options, OperatorKind::kJoin) +
                   agg * calibrated(options, OperatorKind::kAggregate) +
                   sort * calibrated(options, OperatorKind::kSort) +
                   materialize * calibrated(options, OperatorKind::kMaterialize);
  // Sharded plans: the planner's modeled exchange volume rides the work
  // estimate's wire lane (uncalibrated — link costs are modeled, not
  // measured, so there is nothing for the EWMA to learn from).
  total.net_bytes += phys.dist.est_wire_bytes();
  return total;
}

void apply_plan_governor(const storage::Catalog& catalog, PhysicalPlan& phys,
                         const ExecOptions& options) {
  if (options.governor == nullptr) return;
  const sched::Governor& gov = *options.governor;
  const hw::MachineSpec& machine = gov.machine();

  const hw::Work work = estimate_plan_work(catalog, phys, options);
  const int pool_width =
      options.pool != nullptr
          ? static_cast<int>(options.pool->thread_count())
          : 1;
  // The uncapped grant is what the query *requests*; the serving tier's
  // free-worker clamp (ExecOptions::core_cap) bounds what it is granted,
  // so a burst of concurrent queries cannot collectively oversubscribe
  // the machine. The decision below is made at the granted width — the
  // busy-time and energy estimates describe what will actually run.
  const int requested = std::clamp(pool_width, 1, std::max(1, machine.cores));
  const int cores =
      options.core_cap == 0
          ? requested
          : std::max(1, std::min(requested,
                                 static_cast<int>(options.core_cap)));

  sched::GovernorDecision decision;
  if (options.deadline_s > 0) {
    decision = gov.best_under_deadline(work, options.deadline_s, cores);
  } else if (gov.options().allow_deep_sleep) {
    // No deadline, deep sleep available: finish fast, sleep deep.
    decision = gov.race_to_idle(work, /*deadline_s=*/0, cores);
  } else {
    // Consolidated server (package must stay powered): pace at the
    // incremental-efficient P-state — the E7 crossover in plan form.
    const hw::DvfsState target = gov.incremental_efficient_state(work);
    decision.policy = "pace";
    for (const sched::GovernorDecision& d : gov.frontier(work, cores)) {
      if (d.state.freq_ghz == target.freq_ghz) {
        decision = d;
        decision.policy = "pace";
        break;
      }
    }
    if (decision.state.freq_ghz == 0) {  // frontier empty: degenerate table
      decision = gov.race_to_idle(work, 0, cores);
    }
  }

  phys.governor.enabled = true;
  phys.governor.state = decision.state;
  phys.governor.cores = std::max(1, std::min(decision.cores, cores));
  phys.governor.requested_cores = requested;
  phys.governor.policy = decision.policy;
  phys.governor.est_busy_s = decision.busy_s;
  phys.governor.est_energy_j = decision.energy_j;
  phys.governor.est_work = work;
}

}  // namespace eidb::query
