// Sharded execution of a partition-aware physical plan (DistPlan).
//
// Shard i runs on cluster node i against shard table i of the FROM
// table's hash-partition layer; node 0 is the coordinator. Two modes,
// both bit-identical to single-node execution (the distributed-parity
// invariant):
//
//   * kPartialMerge — every shard runs a rewritten partial plan (leading
//     COUNT, AVG → SUM, no sort/limit) and ships its partial group rows;
//     the coordinator merges exactly-decomposable partials in the value
//     domain, in ascending group order (which equals the single-node
//     emit order), then sorts/limits.
//   * kGather — shards run only scan+filter and ship their selected
//     global row ids; the coordinator ORs them into a selection over the
//     original table and runs the normal pipeline with that selection
//     preset.
//
// Wire transfers run through query/ops/exchange_op (real codec'd result
// payloads; plan-modeled dimension bytes), so ExecStats::operators keeps
// summing to the query totals byte-exactly across the net lane too.
#pragma once

#include "query/physical_plan.hpp"
#include "query/result.hpp"

namespace eidb::query {

/// Runs `phys` (which must have phys.dist.active()) over the FROM table's
/// partition layer, folding per-shard operator stats into `stats` under
/// "s<i>:" prefixes. Throws eidb::Error when the partition layer no
/// longer matches the compiled plan or a provided cluster is too small.
[[nodiscard]] QueryResult run_distributed(const storage::Catalog& catalog,
                                          const PhysicalPlan& phys,
                                          ExecStats& stats,
                                          const ExecOptions& options);

}  // namespace eidb::query
