// Logical query plans and the fluent builder — the engine's public query API.
//
// Deliberately declarative (the paper, §II: "telling the system what to
// retrieve and not how"): the plan names tables/columns/predicates; the
// optimizer (src/opt/) and executor (src/query/executor) decide kernels,
// P-states and placement.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/expression.hpp"
#include "storage/types.hpp"

namespace eidb::query {

enum class AggOp : std::uint8_t { kCount, kSum, kMin, kMax, kAvg };

[[nodiscard]] std::string agg_name(AggOp op);

/// Inclusive range predicate on one column. For string columns, bounds are
/// strings and are translated to dictionary-code ranges at bind time.
struct Predicate {
  std::string column;
  storage::Value lo;
  storage::Value hi;
};

struct AggSpec {
  AggOp op = AggOp::kCount;
  std::string column;  ///< Ignored for kCount; empty when expr is set.
  /// Optional arithmetic input, e.g. SUM(revenue * (1 - discount)).
  std::shared_ptr<const exec::Expr> expr;
};

/// Result-column name of one aggregate, e.g. "count" or "sum(amount)" —
/// also the name ORDER BY uses to address aggregate output.
[[nodiscard]] std::string agg_column_name(const AggSpec& a);

struct OrderBySpec {
  std::string column;
  bool ascending = true;
};

/// One equi-join step against another table (build side = joined table).
/// `left_key` names a column on the FROM table (bare) or, for snowflake
/// chains, a qualified "table.column" on an earlier joined table.
struct JoinSpec {
  std::string table;       ///< Build-side table name.
  std::string left_key;    ///< Key column on the probe side.
  std::string right_key;   ///< Key column on the joined table.
  std::vector<Predicate> predicates;  ///< Filters on the joined table.
};

struct LogicalPlan {
  std::string table;
  std::vector<Predicate> predicates;
  /// Equi-join steps in declaration order; the physical planner is free
  /// to reorder them (opt::join_order + opt::CostModel).
  std::vector<JoinSpec> joins;
  /// Grouping columns (empty = global aggregates). Multi-column grouping
  /// synthesizes a composite key over the columns' value ranges.
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;
  std::vector<std::string> projection;  ///< Row output (no aggregates).
  std::optional<OrderBySpec> order_by;
  std::size_t limit = 0;  ///< 0 = unlimited.

  [[nodiscard]] bool is_aggregate() const { return !aggregates.empty(); }
  [[nodiscard]] bool has_group_by() const { return !group_by.empty(); }
  [[nodiscard]] bool has_join() const { return !joins.empty(); }
  /// One-line plan summary for EXPLAIN-style output.
  [[nodiscard]] std::string to_string() const;
};

/// Validates a join plan's shape against what the executor supports,
/// throwing eidb::Error for shapes that would otherwise execute with a
/// wrong or partial answer (expression aggregates over joins, grouped or
/// bare projections). A plan without a join passes unconditionally. The
/// executor calls this before running any join, so no unsupported shape
/// is ever silently mis-answered. ORDER BY over joins is supported (a
/// sort/top-k operator runs over the join output).
void validate_join_plan(const LogicalPlan& plan);

/// Fluent builder:
///   auto plan = QueryBuilder("sales")
///                   .filter_int("amount", 10, 99)
///                   .filter_string("region", "eu", "eu")
///                   .group_by("region")
///                   .aggregate(AggOp::kSum, "amount")
///                   .build();
class QueryBuilder {
 public:
  explicit QueryBuilder(std::string table) { plan_.table = std::move(table); }

  QueryBuilder& filter_int(std::string column, std::int64_t lo,
                           std::int64_t hi);
  QueryBuilder& filter_double(std::string column, double lo, double hi);
  QueryBuilder& filter_string(std::string column, std::string lo,
                              std::string hi);
  /// Appends one join step; call repeatedly for multi-way joins.
  QueryBuilder& join(std::string table, std::string left_key,
                     std::string right_key);
  /// Filter on the most recently joined table.
  QueryBuilder& join_filter_int(std::string column, std::int64_t lo,
                                std::int64_t hi);
  QueryBuilder& group_by(std::string column);
  QueryBuilder& aggregate(AggOp op, std::string column = {});
  /// Aggregate over an arithmetic expression.
  QueryBuilder& aggregate_expr(AggOp op,
                               std::shared_ptr<const exec::Expr> expr);
  QueryBuilder& select(std::vector<std::string> columns);
  QueryBuilder& order_by(std::string column, bool ascending = true);
  QueryBuilder& limit(std::size_t n);

  [[nodiscard]] LogicalPlan build() const { return plan_; }

 private:
  LogicalPlan plan_;
};

}  // namespace eidb::query
