// Query results and execution statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "storage/types.hpp"

namespace eidb::query {

/// Materialized result: named columns of scalar values, row-major access.
class QueryResult {
 public:
  QueryResult() = default;
  explicit QueryResult(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  [[nodiscard]] const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const {
    return column_names_.size();
  }

  void add_row(std::vector<storage::Value> row);
  [[nodiscard]] const storage::Value& at(std::size_t row,
                                         std::size_t col) const;
  [[nodiscard]] const std::vector<storage::Value>& row(std::size_t i) const;

  /// Index of a result column by name; throws Error when absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;

  /// Pretty-prints the result (up to `max_rows` rows).
  [[nodiscard]] std::string to_string(std::size_t max_rows = 20) const;

 private:
  std::vector<std::string> column_names_;
  std::vector<std::vector<storage::Value>> rows_;
};

/// One physical operator's share of a query's execution: wall seconds and
/// the abstract work (cycles + DRAM bytes) charged while it ran. Every
/// charge the executor makes lands inside exactly one operator scope, so
/// summing `work` over `ExecStats::operators` reproduces the query totals
/// byte-exactly — per-operator joules attributed from these deltas sum to
/// the query's attributed joules (the attribution model is linear in both
/// busy seconds and DRAM bytes).
struct OperatorStats {
  std::string name;
  double seconds = 0;
  hw::Work work;

  /// This operator's attributed joules on `machine` at DVFS state `s`
  /// (same incremental-busy model core::Database applies per query).
  [[nodiscard]] double attributed_j(const hw::MachineSpec& machine,
                                    const hw::DvfsState& s) const {
    return machine.incremental_busy_energy_j(work, s, seconds);
  }
};

/// Abstract execution statistics gathered by the executor; the energy layer
/// turns these into joules.
struct ExecStats {
  std::uint64_t tuples_scanned = 0;
  std::uint64_t tuples_selected = 0;
  std::uint64_t groups = 0;
  std::uint64_t join_pairs = 0;
  hw::Work work;               ///< Estimated cycles + DRAM traffic.
  /// Column reads served from a bit-packed image (scan/aggregate inputs);
  /// their DRAM bytes are charged at the packed size.
  std::uint64_t packed_column_reads = 0;
  /// Bytes the packed reads saved versus reading the plain arrays —
  /// work.dram_bytes + dram_bytes_saved is what the plain path would have
  /// charged for the same reads.
  double dram_bytes_saved = 0;
  double elapsed_s = 0;        ///< Measured wall time of execution.
  double cold_tier_time_s = 0; ///< Simulated cold-tier penalty (E6).
  double cold_tier_energy_j = 0;
  /// Sharded execution: wire transfers charged through net::Cluster when
  /// shard partials/row ids ship to the coordinator. `work.net_bytes`
  /// carries the byte totals (and per-operator deltas, like DRAM); the
  /// joules/seconds of the modeled links land here, outside the machine's
  /// busy-energy quantum. All zero single-node and at shard_count == 1
  /// (shard 0 lives on the coordinator and ships nothing).
  std::uint64_t shards_executed = 0;
  std::uint64_t wire_messages = 0;
  double wire_time_s = 0;
  double wire_energy_j = 0;
  /// Per-operator time/DRAM/work attribution in execution order; work
  /// deltas sum to `work` (asserted by the executor tests).
  std::vector<OperatorStats> operators;
};

/// EXPLAIN ANALYZE-style table of the per-operator attribution: one line
/// per operator with seconds, cycles, DRAM bytes and attributed joules,
/// plus a totals line. See docs/executor_pipeline.md ("EXPLAIN format").
[[nodiscard]] std::string format_operator_stats(const ExecStats& stats,
                                                const hw::MachineSpec& machine,
                                                const hw::DvfsState& state);

}  // namespace eidb::query
