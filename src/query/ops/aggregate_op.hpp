// Aggregation operator over a base-table selection: the single-pass
// block-vectorized pipeline (default) and the legacy row-at-a-time
// interpreter kept for parity tests and the P1 bench. Extracted from the
// executor monolith; the shared typed-input and result-emission helpers
// are reused by the join operator's aggregation sink.
#pragma once

#include "exec/vector_agg.hpp"
#include "query/ops/op_context.hpp"
#include "query/plan.hpp"
#include "storage/table.hpp"
#include "util/bitvector.hpp"

namespace eidb::query::ops {

/// Typed kernel view of an integer-or-double column; dictionary and int32
/// columns are consumed as int32 directly (no widened copy).
[[nodiscard]] exec::AggInput agg_input_of(const storage::Column& c);

/// Column::int_at with a typed error for double columns (shared by the
/// row-at-a-time reference paths and join key/sort gathers).
[[nodiscard]] std::int64_t column_int_at(const storage::Column& c,
                                         std::size_t i);

/// Value of one aggregate op from a single-pass AggOut, with zeroed
/// empty-input semantics (min/max of nothing = 0).
[[nodiscard]] storage::Value agg_out_value(AggOp op, const exec::AggOut& out);

/// Runs the plan's aggregates (global or grouped) over the selection,
/// dispatching on `ctx.options.agg_path`.
[[nodiscard]] QueryResult run_aggregate(OpContext& ctx,
                                        const LogicalPlan& plan,
                                        const storage::Table& table,
                                        const BitVector& selection);

}  // namespace eidb::query::ops
