#include "query/ops/exchange_op.hpp"

#include <cstdint>
#include <vector>

#include "net/exchange.hpp"
#include "opt/compression_advisor.hpp"
#include "util/assert.hpp"

namespace eidb::query::ops {

net::WireTable exchange_to_coordinator(OpContext& ctx, net::Cluster& cluster,
                                       std::size_t from,
                                       const net::WireTable& payload) {
  EIDB_EXPECTS(from != 0);
  EIDB_EXPECTS(from < cluster.node_count());
  const std::vector<std::int64_t> encoded = net::encode_wire(payload);

  const hw::MachineSpec& machine = cluster.machine(from);
  const hw::DvfsState& state = machine.dvfs.fastest();
  const hw::LinkSpec& link = cluster.link(from, 0);
  const opt::CompressionAdvisor advisor(machine);
  const opt::ExchangeEstimate advice = advisor.advise(
      encoded, encoded.size(), link, state, ctx.options.wire_objective);

  net::ExchangeResult xr;
  const std::vector<std::int64_t> received =
      net::exchange_payload(encoded, advice.kind, link, machine, state, xr);
  (void)cluster.send(from, 0, xr.wire_bytes);

  ctx.stats.work.net_bytes += xr.wire_bytes;
  ctx.stats.wire_messages += 1;
  ctx.stats.wire_time_s += xr.total_time_s();
  // The codec CPU joules ride the wire lane too: both halves run on the
  // modeled link path, outside the coordinator's busy-energy quantum.
  ctx.stats.wire_energy_j += xr.total_energy_j();
  return net::decode_wire(received);
}

void charge_join_exchange(OpContext& ctx, net::Cluster& cluster,
                          const DistJoinExchange& exchange,
                          std::size_t shards) {
  if (shards <= 1 || exchange.est_bytes <= 0) return;
  const double per_link =
      exchange.est_bytes / static_cast<double>(shards - 1);
  for (std::size_t n = 1; n < shards; ++n) {
    // Broadcast fans the build side out of the coordinator; repartition
    // moves each node's relocating share one ring hop. Either way the
    // total is the planner's estimate, spread over shards − 1 messages.
    const net::Cluster::Transfer t =
        exchange.strategy == ExchangeStrategy::kBroadcast
            ? cluster.send(0, n, per_link)
            : cluster.send(n, n - 1, per_link);
    ctx.stats.wire_time_s += t.time_s;
    ctx.stats.wire_energy_j += t.energy_j;
    ctx.stats.wire_messages += 1;
  }
  ctx.stats.work.net_bytes += exchange.est_bytes;
}

}  // namespace eidb::query::ops
