#include "query/ops/project_op.hpp"

#include "exec/parallel.hpp"
#include "query/ops/sort_op.hpp"

namespace eidb::query::ops {

using storage::Table;

QueryResult run_projection(OpContext& ctx, const PhysicalPlan& phys,
                           const Table& table, const BitVector& selection) {
  const LogicalPlan& plan = phys.logical;
  std::vector<std::string> proj = plan.projection;
  if (proj.empty())
    for (const auto& def : table.schema().columns()) proj.push_back(def.name);

  // Ordering: the sort operator returns row ids, already bounded to
  // LIMIT by the heap top-k kernel when one applies.
  std::vector<std::uint32_t> order;
  if (plan.order_by.has_value()) {
    OperatorScope scope(ctx.stats, phys.sort == SortStrategy::kTopK
                                       ? "top-k(" + plan.order_by->column + ")"
                                       : "sort(" + plan.order_by->column + ")");
    order = order_row_ids(ctx, table, *plan.order_by, selection, plan.limit);
  } else {
    order = selection.to_indices();
  }
  if (plan.limit != 0 && order.size() > plan.limit) order.resize(plan.limit);

  OperatorScope scope(ctx.stats, "materialize");
  // Gather charge: only the emitted rows of each projected column are
  // read (a column that doubled as the sort key is already charged in
  // full and not charged again). String columns additionally gather
  // their dictionary payload — late materialization is not free.
  for (const std::string& name : proj) {
    const storage::Column& col = table.column(name);
    ctx.charge_gather(table, col, order.size());
    if (col.type() == storage::TypeId::kString)
      ctx.charge_dict_gather(table, col, order.size());
  }

  QueryResult result(proj);
  std::vector<const storage::Column*> cols;
  cols.reserve(proj.size());
  for (const std::string& name : proj) cols.push_back(&table.column(name));
  const auto gather_row = [&](std::uint32_t row_idx) {
    std::vector<storage::Value> row;
    row.reserve(cols.size());
    for (const storage::Column* col : cols)
      row.push_back(col->value_at(row_idx));
    return row;
  };
  if (ctx.options.pool != nullptr &&
      order.size() >= ctx.options.parallel_project_min_rows) {
    // Morsel-parallel gather into position-addressed slots; emit order is
    // fixed by `order`, so the result is identical to the serial loop.
    std::vector<std::vector<storage::Value>> rows(order.size());
    ctx.options.pool->parallel_for(
        order.size(), exec::kDefaultMorselRows,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i)
            rows[i] = gather_row(order[i]);
        });
    for (auto& row : rows) result.add_row(std::move(row));
  } else {
    for (const std::uint32_t row_idx : order)
      result.add_row(gather_row(row_idx));
  }
  ctx.stats.work.cpu_cycles += kMaterializeCyclesPerValue *
                               static_cast<double>(order.size()) *
                               static_cast<double>(proj.size());
  return result;
}

}  // namespace eidb::query::ops
