// The shared physical-plan pipeline body: scan+filter → join* |
// aggregate | project → sort/top-k → limit, every charge landing in one
// OpContext. Extracted from Executor::execute so the distributed runner
// (query/distributed.cpp) can reuse it verbatim — once per shard for the
// partial-merge fan-out, and once at the coordinator with a preset
// selection for the gather fallback.
#pragma once

#include "query/ops/op_context.hpp"
#include "query/physical_plan.hpp"
#include "query/result.hpp"
#include "util/bitvector.hpp"

namespace eidb::query::ops {

/// Runs `phys` against `table` — which may be a shard of the plan's FROM
/// table rather than the catalog-registered original (join build sides
/// still resolve through ctx.catalog; only the probe side substitutes).
/// When `preset` is non-null it becomes the scan's selection verbatim and
/// no predicate is evaluated — the distributed gather path, where shards
/// already scanned and the coordinator re-runs the pipeline over the OR
/// of their shipped row ids.
[[nodiscard]] QueryResult execute_pipeline(OpContext& ctx,
                                           const PhysicalPlan& phys,
                                           const storage::Table& table,
                                           const BitVector* preset = nullptr);

}  // namespace eidb::query::ops
