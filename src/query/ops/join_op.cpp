#include "query/ops/join_op.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "exec/join.hpp"
#include "exec/parallel.hpp"
#include "exec/radix_join.hpp"
#include "exec/sort.hpp"
#include "exec/vector_agg.hpp"
#include "opt/cost_model.hpp"
#include "query/ops/aggregate_op.hpp"
#include "query/ops/scan_filter.hpp"
#include "util/assert.hpp"

namespace eidb::query::ops {

using storage::Column;
using storage::Table;
using storage::TypeId;

namespace {

/// One executed join step: the filtered build side, its physical table
/// (dense or hash), and the typed view of the probe key it is probed
/// with (a column on `source_side` of the running match tuple).
struct StepExec {
  const PhysicalJoinStep* phys = nullptr;
  const JoinSpec* spec = nullptr;
  const Table* build_table = nullptr;
  BitVector build_sel;
  std::uint64_t build_rows = 0;
  exec::JoinKeys build_keys;
  exec::JoinKeys source_keys;
  std::size_t source_side = 0;
  /// String/double keys: build-code -> probe-code translation table
  /// (owns the storage the kRemapped build_keys view reads; -1 = the
  /// probe dictionary lacks the value, never matches).
  std::vector<std::int32_t> build_remap;
  /// String/double keys: probe-side dictionary size — remapped keys live
  /// in [-1, code_domain), which sizes the dense arm's address space.
  std::int64_t code_domain = 0;
  std::optional<exec::JoinHashTable> hash;
  std::optional<exec::DenseJoinTable> dense;

  template <typename Fn>
  void probe(std::int64_t key, Fn&& fn) const {
    if (dense.has_value())
      dense->probe(key, fn);
    else
      hash->probe(key, fn);
  }
};

/// Drives the probe stream through every chained step, block-at-a-time.
/// The running match is a tuple of row ids (side 0 = probe table, side s
/// = step s-1's build table); each step appends one side. Matches reach
/// the sink in (probe asc, build₁ asc, build₂ asc, ...) order — the
/// nested-loop oracle's order under the executed step sequence.
class ChainDriver {
 public:
  using Sink =
      std::function<void(const std::uint32_t* const*, std::size_t)>;

  explicit ChainDriver(const std::vector<StepExec>& steps) : steps_(steps) {
    bufs_.resize(steps.size());
    ptrs_.resize(steps.size());
    for (std::size_t s = 1; s < steps.size(); ++s) {
      bufs_[s].resize(s + 2);  // sides 0..s+1
      ptrs_[s].resize(s + 2);
      for (std::size_t side = 0; side <= s + 1; ++side)
        ptrs_[s][side] = bufs_[s][side].data();
    }
    produced_.assign(steps.size(), 0);
  }

  /// Probes selection words [word_begin, word_end) through the chain.
  /// `limit_pairs` (0 = unlimited) stops after that many final matches.
  /// Returns the number of final matches emitted.
  std::uint64_t run(const BitVector& probe_sel, std::size_t word_begin,
                    std::size_t word_end, const Sink& sink,
                    std::uint64_t limit_pairs) {
    sink_ = &sink;
    limit_ = limit_pairs;
    pairs_ = 0;
    stop_ = false;
    const StepExec& first = steps_.front();
    const auto first_sink = [&](const std::uint32_t* b, const std::uint32_t* p,
                                std::size_t k) {
      if (stop_) return;
      produced_[0] += k;
      const std::uint32_t* rows[2] = {p, b};
      next(1, rows, k);
    };
    // Single-step chains early-exit inside the probe driver itself; a
    // longer chain cannot bound step-0 matches from a final-match limit,
    // so emit() raises stop_ and the remaining blocks become no-ops.
    const std::uint64_t probe_limit =
        steps_.size() == 1 ? limit_pairs : 0;
    const auto drive = [&](const auto& table) {
      (void)exec::probe_join_blocks(table, first.source_keys, probe_sel,
                                    word_begin, word_end, first_sink,
                                    probe_limit);
    };
    if (first.dense.has_value())
      drive(*first.dense);
    else
      drive(*first.hash);
    return pairs_;
  }

  /// Feeds pre-matched first-step blocks (the radix arm's partition-pair
  /// output) into the chain tail.
  void feed_first(const std::uint32_t* build_rows,
                  const std::uint32_t* probe_rows, std::size_t count,
                  const Sink& sink) {
    sink_ = &sink;
    if (stop_) return;
    produced_[0] += count;
    const std::uint32_t* rows[2] = {probe_rows, build_rows};
    next(1, rows, count);
  }

  [[nodiscard]] std::uint64_t pairs() const { return pairs_; }
  /// Tuples produced by step s (probe calls into step s+1).
  [[nodiscard]] const std::vector<std::uint64_t>& produced() const {
    return produced_;
  }

 private:
  void next(std::size_t s, const std::uint32_t* const* rows, std::size_t n) {
    if (s == steps_.size()) {
      emit(rows, n);
      return;
    }
    const StepExec& st = steps_[s];
    auto& out = bufs_[s];
    std::size_t k = 0;
    const auto flush = [&] {
      if (k == 0) return;
      produced_[s] += k;
      next(s + 1, ptrs_[s].data(), k);
      k = 0;
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (stop_) break;
      const std::uint32_t src = rows[st.source_side][i];
      st.probe(st.source_keys.at(src), [&](std::uint32_t build_row) {
        if (stop_) return;
        for (std::size_t side = 0; side <= s; ++side)
          out[side][k] = rows[side][i];
        out[s + 1][k] = build_row;
        if (++k == exec::kJoinBlockRows) flush();
      });
    }
    flush();
  }

  void emit(const std::uint32_t* const* rows, std::size_t n) {
    if (limit_ != 0 && pairs_ + n >= limit_) {
      n = static_cast<std::size_t>(limit_ - pairs_);
      stop_ = true;
    }
    pairs_ += n;
    if (n != 0) (*sink_)(rows, n);
  }

  const std::vector<StepExec>& steps_;
  /// Per-step output blocks: bufs_[s][side] holds side `side`'s row ids;
  /// ptrs_[s] is the stable pointer table handed downstream.
  std::vector<std::vector<std::array<std::uint32_t, exec::kJoinBlockRows>>>
      bufs_;
  std::vector<std::vector<const std::uint32_t*>> ptrs_;
  std::vector<std::uint64_t> produced_;
  const Sink* sink_ = nullptr;
  std::uint64_t limit_ = 0;
  std::uint64_t pairs_ = 0;
  bool stop_ = false;
};

/// A column reference resolved against the probe table (side 0) or one of
/// the executed build sides (side s = step s-1's build table).
struct Ref {
  const Table* tbl;
  const Column* col;
  std::size_t side;
};

/// 64-aligned chunking of the probe selection for per-chunk ChainDrivers:
/// the grain is a multiple of 64 (selection words are never split across
/// workers), at least a morsel, and sized for ~4 chunks per worker so
/// per-chunk setup (aggregators over dense group domains allocate
/// O(domain)) amortizes over enough rows. Chunk ids address per-chunk
/// result slots, so downstream merges run in CHUNK order — deterministic
/// and equal to the serial traversal order — never completion order.
struct MorselChunks {
  std::size_t grain = 0;
  std::size_t count = 0;
  MorselChunks(std::size_t n, std::size_t workers) {
    const std::size_t target = std::max<std::size_t>(1, workers * 4);
    const std::size_t per = (n + target - 1) / target;
    grain = std::max<std::size_t>(
        64, std::max(exec::kDefaultMorselRows, per) / 64 * 64);
    count = (n + grain - 1) / grain;
  }
};

/// Legacy pair-materializing interpreter (JoinPath::kPairMaterialize):
/// single join only, no GROUP BY / ORDER BY — kept as a reference arm for
/// parity tests and the W1 bench.
QueryResult run_join_pairs(OpContext& ctx, const PhysicalPlan& phys,
                           const Table& table, const BitVector& selection) {
  const LogicalPlan& plan = phys.logical;
  ExecStats& stats = ctx.stats;
  const JoinSpec& spec = plan.joins.front();
  const Table& build_table = ctx.catalog.get(spec.table);
  if (!build_table.complete())
    throw Error("table not fully loaded: " + spec.table);
  // The legacy interpreter has no grouped-aggregation or sort support;
  // before the vectorized path existed it silently answered GROUP BY
  // joins as global aggregates (the wrong-result bug PR 4 fixed).
  if (plan.has_group_by())
    throw Error("GROUP BY over joins requires the vectorized join path");
  if (plan.order_by.has_value())
    throw Error("ORDER BY over joins requires the vectorized join path");

  BitVector build_sel;
  {
    OperatorScope scope(stats, "scan+filter(" + spec.table + ")");
    build_sel = evaluate_predicates(ctx, build_table, spec.predicates);
  }

  // Key columns (widened to int64 when needed).
  const Column& probe_key = table.column(spec.left_key);
  const Column& build_key = build_table.column(spec.right_key);
  OperatorScope join_scope(stats, "hash-join");
  ctx.charge_scan(table, probe_key, false);
  ctx.charge_scan(build_table, build_key, false);

  auto widen = [](const Column& c) {
    std::vector<std::int64_t> out;
    out.reserve(c.size());
    for (std::size_t i = 0; i < c.size(); ++i)
      out.push_back(column_int_at(c, i));
    return out;
  };
  std::vector<std::int64_t> probe_keys_w, build_keys_w;
  std::span<const std::int64_t> probe_keys, build_keys;
  if (probe_key.type() == TypeId::kInt64) {
    probe_keys = probe_key.int64_data();
  } else {
    probe_keys_w = widen(probe_key);
    probe_keys = probe_keys_w;
  }
  if (build_key.type() == TypeId::kInt64) {
    build_keys = build_key.int64_data();
  } else {
    build_keys_w = widen(build_key);
    build_keys = build_keys_w;
  }

  const std::vector<exec::JoinPair> pairs =
      exec::hash_join(build_keys, build_sel, probe_keys, selection);
  stats.join_pairs = pairs.size();
  stats.work.cpu_cycles +=
      kJoinBuildCyclesPerTuple * static_cast<double>(build_sel.count()) +
      kJoinProbeCyclesPerTuple * static_cast<double>(selection.count());
  join_scope.close();

  if (plan.is_aggregate()) {
    OperatorScope scope(stats, "aggregate(join)");
    // Aggregates over FROM-table columns, one contribution per join pair.
    std::vector<std::string> names;
    for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
    QueryResult result(std::move(names));
    std::vector<storage::Value> row;
    for (const AggSpec& a : plan.aggregates) {
      struct Acc {
        std::uint64_t count = 0;
        std::int64_t isum = 0;
        std::int64_t imin = std::numeric_limits<std::int64_t>::max();
        std::int64_t imax = std::numeric_limits<std::int64_t>::min();
        double dsum = 0;
        double dmin = std::numeric_limits<double>::infinity();
        double dmax = -std::numeric_limits<double>::infinity();
        bool is_double = false;
      } acc;
      if (a.expr != nullptr)
        throw Error("expression aggregates are not supported with joins");
      if (a.op == AggOp::kCount) {
        acc.count = pairs.size();
      } else {
        const Column& c = table.column(a.column);
        ctx.charge_scan(table, c, false);
        if (c.type() == TypeId::kDouble) {
          acc.is_double = true;
          const auto data = c.double_data();
          for (const exec::JoinPair& p : pairs) {
            const double v = data[p.probe_row];
            ++acc.count;
            acc.dsum += v;
            acc.dmin = std::min(acc.dmin, v);
            acc.dmax = std::max(acc.dmax, v);
          }
        } else {
          for (const exec::JoinPair& p : pairs) {
            const std::int64_t v = column_int_at(c, p.probe_row);
            ++acc.count;
            acc.isum += v;
            acc.imin = std::min(acc.imin, v);
            acc.imax = std::max(acc.imax, v);
          }
        }
      }
      exec::AggOut out;
      out.is_double = acc.is_double;
      if (acc.is_double) {
        out.d.count = acc.count;
        out.d.sum = acc.dsum;
        out.d.min = acc.dmin;
        out.d.max = acc.dmax;
      } else {
        out.i.count = acc.count;
        out.i.sum = acc.isum;
        out.i.min = acc.imin;
        out.i.max = acc.imax;
      }
      row.push_back(agg_out_value(a.op, out));
      stats.work.cpu_cycles +=
          kAggCyclesPerTuple * static_cast<double>(pairs.size());
    }
    result.add_row(std::move(row));
    stats.groups = 1;
    return result;
  }

  // Projection of join pairs: FROM-table columns plus build-side columns
  // qualified as "table.column".
  OperatorScope scope(stats, "materialize(join)");
  std::vector<std::string> proj = plan.projection;
  QueryResult result(proj);
  const std::size_t limit =
      plan.limit == 0 ? pairs.size() : std::min(plan.limit, pairs.size());
  for (std::size_t i = 0; i < limit; ++i) {
    std::vector<storage::Value> row;
    row.reserve(proj.size());
    for (const std::string& name : proj) {
      const auto dot = name.find('.');
      if (dot != std::string::npos &&
          name.substr(0, dot) == build_table.name()) {
        row.push_back(
            build_table.column(name.substr(dot + 1)).value_at(pairs[i].build_row));
      } else {
        row.push_back(table.column(name).value_at(pairs[i].probe_row));
      }
    }
    result.add_row(std::move(row));
    stats.work.cpu_cycles += kMaterializeCyclesPerValue *
                             static_cast<double>(proj.size());
  }
  return result;
}

}  // namespace

QueryResult run_join(OpContext& ctx, const PhysicalPlan& phys,
                     const Table& table, const BitVector& selection) {
  const LogicalPlan& plan = phys.logical;
  const ExecOptions& options = ctx.options;
  ExecStats& stats = ctx.stats;
  if (options.join_path == JoinPath::kPairMaterialize)
    return run_join_pairs(ctx, phys, table, selection);

  // ---- Build-side scans: one filtered selection per step, each its own
  // attributed operator. ----
  const std::size_t n_steps = phys.joins.size();
  std::vector<StepExec> steps(n_steps);
  for (std::size_t s = 0; s < n_steps; ++s) {
    StepExec& st = steps[s];
    st.phys = &phys.joins[s];
    st.spec = &plan.joins[st.phys->logical_index];
    st.build_table = &ctx.catalog.get(st.spec->table);
    if (!st.build_table->complete())
      throw Error("table not fully loaded: " + st.spec->table);
    OperatorScope scope(stats, "scan+filter(" + st.spec->table + ")");
    st.build_sel =
        evaluate_predicates(ctx, *st.build_table, st.spec->predicates);
    st.build_rows = st.build_sel.count();
    st.source_side = st.phys->source_side;
  }

  // ---- Column resolution over all sides: bare names bind to the probe
  // (FROM) table first, then the build tables in execution order;
  // "table.column" qualifies explicitly. ----
  const auto resolve = [&](const std::string& name) -> Ref {
    const auto dot = name.find('.');
    if (dot != std::string::npos) {
      const std::string tbl = name.substr(0, dot);
      const std::string col = name.substr(dot + 1);
      if (tbl == table.name()) return {&table, &table.column(col), 0};
      for (std::size_t s = 0; s < n_steps; ++s)
        if (tbl == steps[s].build_table->name())
          return {steps[s].build_table, &steps[s].build_table->column(col),
                  s + 1};
      throw Error("unknown table in qualified column: " + name);
    }
    if (table.schema().has_column(name))
      return {&table, &table.column(name), 0};
    for (std::size_t s = 0; s < n_steps; ++s)
      if (steps[s].build_table->schema().has_column(name))
        return {steps[s].build_table, &steps[s].build_table->column(name),
                s + 1};
    throw Error("unknown column: " + name);
  };

  // ---- Ledger: charge each (table, column) once for the representation
  // this join actually streams — the packed image for packed-probed key
  // columns, the plain width for every gathered payload/group column.
  // One representation per column per query (the base aggregation path's
  // rule): a key column that any gather consumer also needs is read plain
  // by the key path too, so the once-per-query charge matches the bytes
  // the pipeline touches. ----
  std::set<std::string> plain_required;
  const auto require_plain = [&](const std::string& name) {
    const Ref r = resolve(name);
    plain_required.insert(OpContext::charge_key(*r.tbl, *r.col));
  };
  if (plan.is_aggregate()) {
    for (const AggSpec& a : plan.aggregates)
      if (a.op != AggOp::kCount) require_plain(a.column);
    for (const std::string& name : plan.group_by) {
      const Ref r = resolve(name);
      // Double group keys are consumed as dictionary codes end to end
      // (grouped on int32 codes, decoded from the double dictionary at
      // emit) — they never force a plain read.
      if (r.col->type() == TypeId::kDouble && r.col->has_double_dictionary())
        continue;
      require_plain(name);
    }
  } else {
    for (const std::string& name : plan.projection) require_plain(name);
  }
  if (plan.order_by.has_value() && !plan.is_aggregate())
    require_plain(plan.order_by->column);

  // ---- One operator scope covers the whole join pipeline — key-view
  // resolution, build-table construction, and the probe — so its charges
  // land in one attributed operator. Projections without ORDER BY
  // materialize inside the probe sink, hence the merged name. ----
  std::string op_name;
  for (std::size_t s = 0; s < n_steps; ++s) {
    if (s > 0) op_name += " ";
    op_name += std::string(opt::join_arm_name(phys.joins[s].arm)) + "(" +
               steps[s].build_table->name() + ")";
  }
  const bool stream_materialize =
      !plan.is_aggregate() && !plan.order_by.has_value();
  OperatorScope join_scope(
      stats, stream_materialize ? op_name + "+materialize" : op_name);

  // ---- Join keys, consumed without widening: int64/int32 spans read in
  // place, bit-packed images decoded per probed row. ----
  const auto keys_of = [&](const Table& t, const Column& c) {
    if (use_packed(c, options) &&
        plain_required.count(OpContext::charge_key(t, c)) == 0) {
      ctx.charge_column(t, c, true);
      return exec::JoinKeys::from(c.packed_view());
    }
    ctx.charge_column(t, c, false);
    return c.type() == TypeId::kInt64 ? exec::JoinKeys::from(c.int64_data())
                                      : exec::JoinKeys::from(c.int32_data());
  };
  // Code-domain key columns (double codes, string build codes read for
  // the remap) stream the 4-byte code array; the charge is that byte
  // count unless a plain consumer already forces the full width.
  const auto charge_codes = [&](const Table& t, const Column& c) {
    if (plain_required.count(OpContext::charge_key(t, c)) != 0)
      ctx.charge_column(t, c, false);
    else
      ctx.charge_column_bytes(t, c, 4.0 * static_cast<double>(c.size()));
  };
  for (StepExec& st : steps) {
    const Table& src_tbl =
        st.source_side == 0 ? table : *steps[st.source_side - 1].build_table;
    const Column& src_col = src_tbl.column(st.phys->source_key);
    const Column& bld_col = st.build_table->column(st.spec->right_key);
    switch (st.phys->key_type) {
      case JoinKeyType::kInt:
        st.source_keys = keys_of(src_tbl, src_col);
        st.build_keys = keys_of(*st.build_table, bld_col);
        break;
      case JoinKeyType::kString:
        // Probe side streams its own codes unchanged (packed image is
        // fine — codes are plain int32s to the kernels). The build side's
        // codes are translated into the probe's code domain once, so the
        // probe never touches a string.
        st.source_keys = keys_of(src_tbl, src_col);
        ctx.charge_column(*st.build_table, bld_col, false);
        st.build_remap = bld_col.dictionary().remap_to(src_col.dictionary());
        st.build_keys =
            exec::JoinKeys::remapped(bld_col.codes(), st.build_remap);
        st.code_domain =
            static_cast<std::int64_t>(src_col.dictionary().size());
        break;
      case JoinKeyType::kDouble:
        charge_codes(src_tbl, src_col);
        st.source_keys = exec::JoinKeys::from(src_col.double_codes());
        charge_codes(*st.build_table, bld_col);
        st.build_remap = bld_col.double_dictionary().remap_to(
            src_col.double_dictionary());
        st.build_keys =
            exec::JoinKeys::remapped(bld_col.double_codes(), st.build_remap);
        st.code_domain =
            static_cast<std::int64_t>(src_col.double_dictionary().size());
        break;
    }
    stats.work.cpu_cycles +=
        kDictRemapCyclesPerEntry * static_cast<double>(st.build_remap.size());
  }

  const std::uint64_t probe_rows = selection.count();

  // ---- Physical join tables, per the compiled arm. ----
  static const opt::CostModel default_model = opt::CostModel::defaults();
  const opt::CostModel& cm =
      options.cost_model != nullptr ? *options.cost_model : default_model;
  const bool radix_first =
      n_steps >= 1 && phys.joins[0].arm == opt::JoinArm::kRadixJoin;
  for (std::size_t s = 0; s < n_steps; ++s) {
    StepExec& st = steps[s];
    stats.work.cpu_cycles +=
        kJoinBuildCyclesPerTuple * static_cast<double>(st.build_rows);
    if (s == 0 && radix_first) continue;  // the radix arm partitions instead
    const storage::ColumnStats& ks =
        st.build_table->column(st.spec->right_key).stats();
    if (st.phys->arm == opt::JoinArm::kDenseJoin) {
      // Remapped (string/double) keys live in the probe's code domain
      // [-1, code_domain), not the build column's value range: -1 holds
      // the never-matching slot for values absent from the probe side.
      if (st.phys->key_type != JoinKeyType::kInt)
        st.dense.emplace(exec::build_dense_join_table(
            st.build_keys, st.build_sel, -1, st.code_domain + 1));
      else
        st.dense.emplace(exec::build_dense_join_table(
            st.build_keys, st.build_sel, ks.rows == 0 ? 0 : ks.min,
            std::max<std::int64_t>(1, ks.domain())));
    } else {
      st.hash.emplace(exec::build_join_table(st.build_keys, st.build_sel));
    }
  }

  const bool parallel = options.pool != nullptr &&
                        probe_rows >= options.parallel_join_min_rows;
  const std::size_t sides = n_steps + 1;

  // ==== Aggregate sink: exec::JoinAggregator over multi-side row-id
  // tuples (probe- and build-side inputs, composite cross-table keys). ====
  if (plan.is_aggregate()) {
    std::vector<exec::JoinAggregator::Input> inputs;
    std::map<std::string, std::size_t> input_index;
    std::vector<int> spec_input(plan.aggregates.size(), -1);  // -1 = COUNT
    for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      if (a.op == AggOp::kCount) continue;
      const auto it = input_index.find(a.column);
      if (it != input_index.end()) {
        spec_input[ai] = static_cast<int>(it->second);
        continue;
      }
      const Ref r = resolve(a.column);
      ctx.charge_column(*r.tbl, *r.col, false);
      input_index[a.column] = inputs.size();
      spec_input[ai] = static_cast<int>(inputs.size());
      inputs.push_back({agg_input_of(*r.col), r.side});
    }

    // Group keys: any mix of probe- and build-side columns; composite
    // keys use the stride layout of the base aggregation path, with
    // ranges from the cached column statistics.
    struct GroupPart {
      const Column* col;
      const Table* tbl;
      std::size_t side;
      /// Double key grouped on its dictionary codes (decoded at emit).
      bool double_codes = false;
      std::int64_t min = 0;
      std::int64_t max = 0;
      std::int64_t domain = 1;
      std::int64_t stride = 1;
      std::uint64_t distinct = 0;
    };
    std::vector<GroupPart> parts;
    for (const std::string& name : plan.group_by) {
      const Ref r = resolve(name);
      GroupPart part;
      part.col = r.col;
      part.tbl = r.tbl;
      part.side = r.side;
      if (r.col->type() == TypeId::kDouble) {
        if (!r.col->has_double_dictionary())
          throw Error("cannot group by double column " + name +
                      " (no ordered dictionary: column contains NaN)");
        // Group on the int32 codes — dense range [0, dict size), exact
        // distinct count — and decode from the double dictionary at emit.
        charge_codes(*r.tbl, *r.col);
        const auto dsize =
            static_cast<std::int64_t>(r.col->double_dictionary().size());
        part.double_codes = true;
        part.min = 0;
        part.max = std::max<std::int64_t>(0, dsize - 1);
        part.domain = std::max<std::int64_t>(1, dsize);
        part.distinct = static_cast<std::uint64_t>(dsize);
      } else {
        ctx.charge_column(*r.tbl, *r.col, false);
        const storage::ColumnStats& cs = r.col->stats();
        part.min = cs.rows == 0 ? 0 : cs.min;
        part.max = cs.rows == 0 ? 0 : cs.max;
        part.domain = std::max<std::int64_t>(1, cs.domain());
        part.distinct = cs.distinct;
      }
      parts.push_back(part);
    }
    const bool composite = parts.size() > 1;
    const auto key_input = [](const GroupPart& part) {
      return part.double_codes ? exec::AggInput::from(part.col->double_codes())
                               : agg_input_of(*part.col);
    };
    exec::KeyRange range;
    std::vector<exec::JoinAggregator::KeyPart> kparts;
    if (!parts.empty()) {
      if (!composite) {
        const GroupPart& part = parts.front();
        range = {true, part.min, part.max, part.distinct};
        kparts.push_back({key_input(part), part.side, 0, 1});
      } else {
        std::int64_t total = 1;
        for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
          it->stride = total;
          if (it->domain > (std::int64_t{1} << 62) / total)
            throw Error("composite group-by domain too large");
          total *= it->domain;
        }
        for (const GroupPart& part : parts)
          kparts.push_back(
              {key_input(part), part.side, part.min, part.stride});
        range = {true, 0, total - 1};
      }
    }
    const auto make_agg = [&] {
      return plan.has_group_by() ? exec::JoinAggregator(inputs, kparts, range)
                                 : exec::JoinAggregator(inputs);
    };
    exec::JoinAggregator master = make_agg();
    std::vector<std::uint64_t> produced(n_steps, 0);

    if (radix_first) {
      // Radix arm on the first step: partition both sides, join the
      // partition pairs, feed the chain tail (if any) with each block.
      const StepExec& first = steps.front();
      const unsigned bits = cm.pick_radix_bits(first.build_rows);
      const exec::RadixPartitions bparts =
          exec::radix_partition(first.build_keys, first.build_sel, bits);
      const exec::RadixPartitions pparts =
          exec::radix_partition(first.source_keys, selection, bits);
      const std::size_t n_parts = bparts.parts.size();
      stats.work.cpu_cycles +=
          kRadixPartitionCyclesPerTuple *
          static_cast<double>(first.build_rows + probe_rows);
      const auto run_parts = [&](std::size_t begin, std::size_t stride,
                                 exec::JoinAggregator& agg,
                                 std::vector<std::uint64_t>& prod) {
        ChainDriver driver(steps);
        const ChainDriver::Sink sink =
            [&agg](const std::uint32_t* const* rows, std::size_t k) {
              agg.add_block(rows, k);
            };
        for (std::size_t part = begin; part < n_parts; part += stride)
          (void)exec::join_partition_blocks(
              bparts.parts[part], pparts.parts[part],
              [&](const std::uint32_t* b, const std::uint32_t* p,
                  std::size_t k) { driver.feed_first(b, p, k, sink); });
        for (std::size_t s = 0; s < n_steps; ++s)
          prod[s] += driver.produced()[s];
      };
      if (parallel) {
        // Partition-range tasks with private aggregators, merged serially
        // in task order (task t owns partitions t, t + n_tasks, ...) — the
        // merged result is independent of completion order.
        const std::size_t n_tasks =
            std::min(n_parts, ctx.worker_width() * 2);
        std::vector<exec::JoinAggregator> locals;
        std::vector<std::vector<std::uint64_t>> prods(
            n_tasks, std::vector<std::uint64_t>(n_steps, 0));
        locals.reserve(n_tasks);
        for (std::size_t t = 0; t < n_tasks; ++t) locals.push_back(make_agg());
        options.pool->parallel_for(
            n_tasks, 1, [&](std::size_t tb, std::size_t te) {
              for (std::size_t t = tb; t < te; ++t)
                run_parts(t, n_tasks, locals[t], prods[t]);
            });
        for (std::size_t t = 0; t < n_tasks; ++t) {
          master.merge_from(locals[t]);
          for (std::size_t s = 0; s < n_steps; ++s)
            produced[s] += prods[t][s];
        }
      } else {
        run_parts(0, 1, master, produced);
      }
    } else if (parallel) {
      // Morsel-parallel probe over 64-aligned ranges of the selection:
      // per-chunk private aggregators (and chain drivers), stored in
      // chunk-indexed slots and merged IN CHUNK ORDER afterwards. A
      // completion-order merge would let thread scheduling regroup float
      // partials between runs; chunk order makes the merged sums a pure
      // function of the chunking.
      const std::size_t total_words = selection.word_count();
      const MorselChunks chunking(selection.size(), ctx.worker_width());
      std::vector<std::unique_ptr<exec::JoinAggregator>> locals(
          chunking.count);
      std::vector<std::vector<std::uint64_t>> prods(
          chunking.count, std::vector<std::uint64_t>(n_steps, 0));
      options.pool->parallel_for(
          selection.size(), chunking.grain,
          [&](std::size_t begin, std::size_t end) {
            const std::size_t chunk = begin / chunking.grain;
            const std::size_t wb = begin / 64;
            const std::size_t we = std::min(total_words, (end + 63) / 64);
            auto local = std::make_unique<exec::JoinAggregator>(make_agg());
            ChainDriver driver(steps);
            const ChainDriver::Sink sink =
                [&local](const std::uint32_t* const* rows, std::size_t k) {
                  local->add_block(rows, k);
                };
            (void)driver.run(selection, wb, we, sink, 0);
            prods[chunk] = driver.produced();
            locals[chunk] = std::move(local);
          });
      for (std::size_t chunk = 0; chunk < chunking.count; ++chunk) {
        master.merge_from(*locals[chunk]);
        for (std::size_t s = 0; s < n_steps; ++s)
          produced[s] += prods[chunk][s];
      }
    } else {
      ChainDriver driver(steps);
      const ChainDriver::Sink sink =
          [&master](const std::uint32_t* const* rows, std::size_t k) {
            master.add_block(rows, k);
          };
      (void)driver.run(selection, 0, selection.word_count(), sink, 0);
      for (std::size_t s = 0; s < n_steps; ++s)
        produced[s] = driver.produced()[s];
    }

    const std::uint64_t pairs = master.pair_count();
    stats.join_pairs = pairs;
    stats.work.cpu_cycles +=
        kJoinProbeCyclesPerTuple * static_cast<double>(probe_rows);
    for (std::size_t s = 0; s + 1 < n_steps; ++s)
      stats.work.cpu_cycles +=
          kJoinProbeCyclesPerTuple * static_cast<double>(produced[s]);
    join_scope.close();

    // ---- Emit: same decode/emit shape as the base grouped path. ----
    OperatorScope emit_scope(stats, "aggregate(join)");
    const exec::GroupedAggs grouped = master.finish();
    stats.work.cpu_cycles +=
        kAggCyclesPerTuple * static_cast<double>(pairs) *
        static_cast<double>(std::max<std::size_t>(1, inputs.size()));
    if (plan.has_group_by())
      stats.work.cpu_cycles +=
          kGroupCyclesPerTuple * static_cast<double>(pairs);
    stats.groups = plan.has_group_by() ? grouped.group_count() : 1;

    // String group keys late-materialize here: the emitted groups gather
    // from the dictionary payload, and that traffic is charged (bounded
    // by one full dictionary read).
    for (const GroupPart& part : parts)
      if (part.col->type() == TypeId::kString)
        ctx.charge_dict_gather(*part.tbl, *part.col, grouped.group_count());

    std::vector<std::string> names(plan.group_by.begin(), plan.group_by.end());
    for (const AggSpec& a : plan.aggregates)
      names.push_back(agg_column_name(a));
    QueryResult result(std::move(names));
    for (std::size_t g = 0; g < grouped.group_count(); ++g) {
      std::vector<storage::Value> row;
      row.reserve(parts.size() + plan.aggregates.size());
      if (!parts.empty() && !composite) {
        const GroupPart& part = parts.front();
        if (part.col->type() == TypeId::kString)
          row.emplace_back(part.col->dictionary().at(
              static_cast<std::int32_t>(grouped.keys[g])));
        else if (part.double_codes)
          row.emplace_back(part.col->double_dictionary().at(
              static_cast<std::int32_t>(grouped.keys[g])));
        else
          row.emplace_back(grouped.keys[g]);
      } else {
        for (const GroupPart& part : parts) {
          const std::int64_t component =
              (grouped.keys[g] / part.stride) % part.domain + part.min;
          if (part.col->type() == TypeId::kString)
            row.emplace_back(part.col->dictionary().at(
                static_cast<std::int32_t>(component)));
          else if (part.double_codes)
            row.emplace_back(part.col->double_dictionary().at(
                static_cast<std::int32_t>(component)));
          else
            row.emplace_back(component);
        }
      }
      for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
        const AggSpec& a = plan.aggregates[ai];
        if (spec_input[ai] < 0) {
          row.emplace_back(static_cast<std::int64_t>(grouped.counts[g]));
          continue;
        }
        const auto j = static_cast<std::size_t>(spec_input[ai]);
        exec::AggOut out;
        out.is_double = inputs[j].column.is_double();
        if (out.is_double)
          out.d = grouped.dout[j][g];
        else
          out.i = grouped.iout[j][g];
        row.push_back(agg_out_value(a.op, out));
      }
      result.add_row(std::move(row));
    }
    return result;
  }

  // ==== Projection sink: chain traversal in deterministic (probe asc,
  // build asc per step) order. Without ORDER BY, rows stream straight
  // into the result with LIMIT early-exit; with ORDER BY, the match
  // tuples are collected as row ids, the sort key is gathered once per
  // match, and the heap top-k permutation picks the emitted rows — only
  // those are materialized (and charged). Both sinks go morsel-parallel
  // over 64-aligned selection chunks when a pool is available: chunks
  // collect privately and concatenate in chunk order, which reproduces
  // the serial emit order exactly (an unlimited LIMIT keeps the serial
  // early-exit path). ====
  std::vector<std::string> proj = plan.projection;
  struct ProjCol {
    const Column* col;
    const Table* tbl;
    std::size_t side;
  };
  std::vector<ProjCol> cols;
  cols.reserve(proj.size());
  for (const std::string& name : proj) {
    const Ref r = resolve(name);
    cols.push_back({r.col, r.tbl, r.side});
  }

  QueryResult result(proj);
  ChainDriver driver(steps);
  std::uint64_t pairs = 0;
  const auto charge_probe_cycles =
      [&](const std::vector<std::uint64_t>& step_produced) {
        stats.work.cpu_cycles +=
            kJoinProbeCyclesPerTuple * static_cast<double>(probe_rows);
        for (std::size_t s = 0; s + 1 < n_steps; ++s)
          stats.work.cpu_cycles +=
              kJoinProbeCyclesPerTuple *
              static_cast<double>(step_produced[s]);
      };
  // Drives one private ChainDriver per 64-aligned chunk and hands each
  // chunk's sink output to `collect(chunk)`; returns total pairs after
  // accumulating per-step produced counts (charged like the serial walk).
  const auto run_chunked = [&](const auto& collect) {
    const std::size_t total_words = selection.word_count();
    const MorselChunks chunking(selection.size(), ctx.worker_width());
    std::vector<std::vector<std::uint64_t>> prods(
        chunking.count, std::vector<std::uint64_t>(n_steps, 0));
    std::vector<std::uint64_t> chunk_pairs(chunking.count, 0);
    options.pool->parallel_for(
        selection.size(), chunking.grain,
        [&](std::size_t begin, std::size_t end) {
          const std::size_t chunk = begin / chunking.grain;
          const std::size_t wb = begin / 64;
          const std::size_t we = std::min(total_words, (end + 63) / 64);
          ChainDriver local(steps);
          chunk_pairs[chunk] =
              local.run(selection, wb, we, collect(chunk), 0);
          prods[chunk] = local.produced();
        });
    std::vector<std::uint64_t> step_produced(n_steps, 0);
    std::uint64_t total_pairs = 0;
    for (std::size_t chunk = 0; chunk < chunking.count; ++chunk) {
      total_pairs += chunk_pairs[chunk];
      for (std::size_t s = 0; s < n_steps; ++s)
        step_produced[s] += prods[chunk][s];
    }
    charge_probe_cycles(step_produced);
    return total_pairs;
  };

  if (!plan.order_by.has_value()) {
    const auto gather_row = [&cols](const std::uint32_t* const* rows,
                                    std::size_t e) {
      std::vector<storage::Value> row;
      row.reserve(cols.size());
      for (const ProjCol& c : cols)
        row.push_back(c.col->value_at(rows[c.side][e]));
      return row;
    };
    if (parallel && plan.limit == 0) {
      const MorselChunks chunking(selection.size(), ctx.worker_width());
      std::vector<std::vector<std::vector<storage::Value>>> chunk_rows(
          chunking.count);
      pairs = run_chunked([&](std::size_t chunk) {
        return ChainDriver::Sink(
            [&chunk_rows, chunk, &gather_row](
                const std::uint32_t* const* rows, std::size_t k) {
              for (std::size_t e = 0; e < k; ++e)
                chunk_rows[chunk].push_back(gather_row(rows, e));
            });
      });
      for (auto& chunk : chunk_rows)
        for (auto& row : chunk) result.add_row(std::move(row));
    } else {
      const ChainDriver::Sink sink = [&](const std::uint32_t* const* rows,
                                         std::size_t k) {
        for (std::size_t e = 0; e < k; ++e)
          result.add_row(gather_row(rows, e));
      };
      pairs = driver.run(selection, 0, selection.word_count(), sink,
                         plan.limit);
      charge_probe_cycles(driver.produced());
    }
    for (const ProjCol& c : cols) {
      ctx.charge_gather(*c.tbl, *c.col, static_cast<std::size_t>(pairs));
      if (c.col->type() == TypeId::kString)
        ctx.charge_dict_gather(*c.tbl, *c.col,
                               static_cast<std::size_t>(pairs));
    }
    stats.work.cpu_cycles += kMaterializeCyclesPerValue *
                             static_cast<double>(pairs) *
                             static_cast<double>(cols.size());
  } else {
    // Collect the match tuples (row ids only — late materialization).
    std::vector<std::vector<std::uint32_t>> tuples(sides);
    if (parallel) {
      const MorselChunks chunking(selection.size(), ctx.worker_width());
      std::vector<std::vector<std::vector<std::uint32_t>>> chunk_tuples(
          chunking.count, std::vector<std::vector<std::uint32_t>>(sides));
      pairs = run_chunked([&](std::size_t chunk) {
        return ChainDriver::Sink(
            [&chunk_tuples, chunk, sides](const std::uint32_t* const* rows,
                                          std::size_t k) {
              for (std::size_t side = 0; side < sides; ++side)
                chunk_tuples[chunk][side].insert(
                    chunk_tuples[chunk][side].end(), rows[side],
                    rows[side] + k);
            });
      });
      for (std::size_t side = 0; side < sides; ++side) {
        tuples[side].reserve(static_cast<std::size_t>(pairs));
        for (const auto& chunk : chunk_tuples)
          tuples[side].insert(tuples[side].end(), chunk[side].begin(),
                              chunk[side].end());
      }
    } else {
      const ChainDriver::Sink sink = [&](const std::uint32_t* const* rows,
                                         std::size_t k) {
        for (std::size_t side = 0; side < sides; ++side)
          tuples[side].insert(tuples[side].end(), rows[side],
                              rows[side] + k);
      };
      pairs = driver.run(selection, 0, selection.word_count(), sink, 0);
      charge_probe_cycles(driver.produced());
    }
    join_scope.close();

    OperatorScope sort_scope(
        stats, (plan.limit != 0 ? "top-k(" : "sort(") + plan.order_by->column +
                   ")");
    const Ref key = resolve(plan.order_by->column);
    // One gathered key read per match; the ledger charge is that bounded
    // gather, not the full column.
    ctx.charge_gather(*key.tbl, *key.col, static_cast<std::size_t>(pairs));
    std::vector<std::uint32_t> perm;
    const std::vector<std::uint32_t>& key_rows = tuples[key.side];
    sched::ThreadPool* sort_pool =
        key_rows.size() >= options.parallel_sort_min_rows ? options.pool
                                                          : nullptr;
    const auto gather_keys = [&](auto& keys, const auto& key_at) {
      keys.resize(key_rows.size());
      if (sort_pool != nullptr) {
        sort_pool->parallel_for(key_rows.size(), exec::kDefaultMorselRows,
                                [&](std::size_t begin, std::size_t end) {
                                  for (std::size_t i = begin; i < end; ++i)
                                    keys[i] = key_at(key_rows[i]);
                                });
      } else {
        for (std::size_t i = 0; i < key_rows.size(); ++i)
          keys[i] = key_at(key_rows[i]);
      }
    };
    if (key.col->type() == TypeId::kDouble) {
      std::vector<double> keys;
      const auto data = key.col->double_data();
      gather_keys(keys, [&](std::uint32_t r) { return data[r]; });
      perm = plan.limit != 0
                 ? exec::top_n_permutation_double(keys, plan.limit,
                                                  plan.order_by->ascending,
                                                  sort_pool)
                 : exec::sort_permutation_double(
                       keys, plan.order_by->ascending, sort_pool);
    } else {
      std::vector<std::int64_t> keys;
      gather_keys(keys,
                  [&](std::uint32_t r) { return column_int_at(*key.col, r); });
      perm = plan.limit != 0
                 ? exec::top_n_permutation(keys, plan.limit,
                                           plan.order_by->ascending,
                                           sort_pool)
                 : exec::sort_permutation(keys, plan.order_by->ascending,
                                          sort_pool);
    }
    if (plan.limit != 0 && perm.size() > plan.limit) perm.resize(plan.limit);
    sort_scope.close();

    OperatorScope mat_scope(stats, "materialize(join)");
    for (const ProjCol& c : cols) {
      ctx.charge_gather(*c.tbl, *c.col, perm.size());
      if (c.col->type() == TypeId::kString)
        ctx.charge_dict_gather(*c.tbl, *c.col, perm.size());
    }
    if (options.pool != nullptr &&
        perm.size() >= options.parallel_project_min_rows) {
      std::vector<std::vector<storage::Value>> rows(perm.size());
      options.pool->parallel_for(perm.size(), exec::kDefaultMorselRows,
                                 [&](std::size_t begin, std::size_t end) {
                                   for (std::size_t i = begin; i < end; ++i) {
                                     const std::uint32_t m = perm[i];
                                     std::vector<storage::Value> row;
                                     row.reserve(cols.size());
                                     for (const ProjCol& c : cols)
                                       row.push_back(c.col->value_at(
                                           tuples[c.side][m]));
                                     rows[i] = std::move(row);
                                   }
                                 });
      for (auto& row : rows) result.add_row(std::move(row));
    } else {
      for (const std::uint32_t m : perm) {
        std::vector<storage::Value> row;
        row.reserve(cols.size());
        for (const ProjCol& c : cols)
          row.push_back(c.col->value_at(tuples[c.side][m]));
        result.add_row(std::move(row));
      }
    }
    stats.work.cpu_cycles += kMaterializeCyclesPerValue *
                             static_cast<double>(perm.size()) *
                             static_cast<double>(cols.size());
  }

  stats.join_pairs = pairs;
  return result;
}

}  // namespace eidb::query::ops
