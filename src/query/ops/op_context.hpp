// Shared state and accounting plumbing for the decomposed physical
// operators (src/query/ops/*). One OpContext lives for the duration of
// one query execution; it owns the charge-once ledger discipline — each
// (table, column) is charged to the DRAM lane at most once per query, at
// the byte count of the representation the pipeline actually streams —
// and the OperatorScope RAII timer that attributes wall seconds and work
// deltas to named operators so per-operator joules sum to the query's
// totals.
#pragma once

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "query/executor.hpp"
#include "query/result.hpp"
#include "storage/table.hpp"
#include "util/clock.hpp"

namespace eidb::query::ops {

// Rough cycles/tuple used for abstract-work attribution (the planner's
// calibrated model lives in src/opt/cost_model).
constexpr double kScanCyclesPerTuple = 1.0;
constexpr double kAggCyclesPerTuple = 1.5;
constexpr double kGroupCyclesPerTuple = 6.0;
constexpr double kJoinBuildCyclesPerTuple = 12.0;
constexpr double kJoinProbeCyclesPerTuple = 10.0;
constexpr double kRadixPartitionCyclesPerTuple = 2.5;
constexpr double kMaterializeCyclesPerValue = 20.0;
constexpr double kSortCyclesPerComparison = 4.0;
constexpr double kDictRemapCyclesPerEntry = 3.0;

/// Per-query execution context threaded through every operator.
struct OpContext {
  const storage::Catalog& catalog;
  const ExecOptions& options;
  ExecStats& stats;
  /// Executor-owned scratch (reused across queries, no per-operator
  /// allocation): index-producing scan kernels / composite group keys.
  std::vector<std::uint32_t>& idx_scratch;
  std::vector<std::int64_t>& key_scratch;
  /// (table, column) pairs already charged to the DRAM ledger this query.
  std::set<std::string> charged;
  /// Plan-governor core grant for this query (0 = uncapped): parallel
  /// operators chunk their morsels for this many workers.
  std::size_t cores = 0;

  /// Effective fan-out width for parallel operators: the pool width,
  /// capped by the governor's core grant.
  [[nodiscard]] std::size_t worker_width() const {
    const std::size_t pool_width =
        options.pool != nullptr ? options.pool->thread_count() : 1;
    return cores == 0 ? pool_width : std::min(cores, pool_width);
  }

  [[nodiscard]] static std::string charge_key(const storage::Table& t,
                                              const storage::Column& c) {
    return t.name() + "." + c.name();
  }

  /// Simulated tier penalty for touching (table, column), if tiering is on.
  void charge_tier(const storage::Table& t, const storage::Column& c) {
    if (options.tiers == nullptr) return;
    const auto penalty = options.tiers->access(t.name(), c.name());
    stats.cold_tier_time_s += penalty.time_s;
    stats.cold_tier_energy_j += penalty.energy_j;
  }

  /// Charges one sequential read of `c` (the packed image when `packed`,
  /// the plain array otherwise), unconditionally — the predicate-scan
  /// rule: every scan pass over a column is real DRAM traffic.
  void charge_scan(const storage::Table& t, const storage::Column& c,
                   bool packed) {
    if (packed) {
      // The scan streams the packed image: that byte count — not the
      // plain width — is the query's real DRAM traffic, and it is what
      // the energy model and the admission controller's settlement see.
      const double bytes = static_cast<double>(c.scan_byte_size());
      stats.work.dram_bytes += bytes;
      ++stats.packed_column_reads;
      stats.dram_bytes_saved += static_cast<double>(c.byte_size()) - bytes;
    } else {
      stats.work.dram_bytes += static_cast<double>(c.byte_size());
    }
    charge_tier(t, c);
  }

  /// Charge-once variant for operator inputs (aggregate inputs, join
  /// keys, group keys, projections): each column is charged at most once
  /// per query, at the one representation the pipeline streams.
  void charge_column(const storage::Table& t, const storage::Column& c,
                     bool packed) {
    if (!charged.insert(charge_key(t, c)).second) return;
    charge_scan(t, c, packed);
  }

  /// Charges a bounded gather of `rows` values from `c` (top-k
  /// materialization reads only the emitted rows, and the ledger must
  /// charge only those). A column already charged in full is not charged
  /// again; a gather never exceeds the full plain width.
  void charge_gather(const storage::Table& t, const storage::Column& c,
                     std::size_t rows) {
    if (!charged.insert(charge_key(t, c)).second) return;
    const double full = static_cast<double>(c.byte_size());
    const double bytes =
        c.size() == 0
            ? 0.0
            : std::min(full, static_cast<double>(rows) *
                                 (full / static_cast<double>(c.size())));
    stats.work.dram_bytes += bytes;
    charge_tier(t, c);
  }

  /// Charge-once read of `c` at an explicit byte count — the code-domain
  /// consumers (string/double join and group keys) stream the int32 code
  /// array, not the column's plain width, and the ledger must bill the
  /// bytes the pass actually moves. The saving vs the plain width lands
  /// in dram_bytes_saved like a packed read's does.
  void charge_column_bytes(const storage::Table& t, const storage::Column& c,
                           double bytes) {
    if (!charged.insert(charge_key(t, c)).second) return;
    stats.work.dram_bytes += bytes;
    const double full = static_cast<double>(c.byte_size());
    if (full > bytes) stats.dram_bytes_saved += full - bytes;
    charge_tier(t, c);
  }

  /// Charges the dictionary-payload traffic of late-materializing `rows`
  /// string values from `c`: `rows` decodes at the dictionary's average
  /// payload width, capped at one full read of the dictionary (repeat
  /// decodes of a hot dictionary stay cache-resident). Charged once per
  /// column per query under a separate "#dict" key, so the code-array
  /// charge and the payload charge stay independently visible — string
  /// materialization is not free on the ledger.
  void charge_dict_gather(const storage::Table& t, const storage::Column& c,
                          std::size_t rows) {
    if (!c.has_dictionary()) return;
    if (!charged.insert(charge_key(t, c) + "#dict").second) return;
    const double payload = static_cast<double>(c.dictionary().payload_bytes());
    const auto entries = static_cast<double>(c.dictionary().size());
    const double bytes =
        entries == 0.0
            ? 0.0
            : std::min(payload,
                       static_cast<double>(rows) * (payload / entries));
    stats.work.dram_bytes += bytes;
    charge_tier(t, c);
  }
};

/// RAII operator attribution: wall seconds plus the hw::Work delta charged
/// between construction and close() / destruction land in
/// `stats.operators` under `name`. Scopes must not overlap — every charge
/// belongs to exactly one operator, so the per-operator work sums to the
/// query totals byte-exactly.
class OperatorScope {
 public:
  OperatorScope(ExecStats& stats, std::string name)
      : stats_(stats), name_(std::move(name)), base_(stats.work) {}
  OperatorScope(const OperatorScope&) = delete;
  OperatorScope& operator=(const OperatorScope&) = delete;
  ~OperatorScope() { close(); }

  /// Ends the scope early (e.g. before handing off to the next operator).
  void close() {
    if (closed_) return;
    closed_ = true;
    OperatorStats op;
    op.name = std::move(name_);
    op.seconds = sw_.elapsed_seconds();
    op.work = {stats_.work.cpu_cycles - base_.cpu_cycles,
               stats_.work.dram_bytes - base_.dram_bytes,
               stats_.work.net_bytes - base_.net_bytes};
    stats_.operators.push_back(std::move(op));
  }

 private:
  ExecStats& stats_;
  std::string name_;
  hw::Work base_;
  Stopwatch sw_;
  bool closed_ = false;
};

}  // namespace eidb::query::ops
