#include "query/ops/sort_op.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "exec/sort.hpp"
#include "query/ops/scan_filter.hpp"
#include "util/assert.hpp"

namespace eidb::query::ops {

using storage::Column;
using storage::Table;
using storage::TypeId;
using storage::Value;

namespace {

/// Comparison cycles of sorting n keys down to k survivors (full sort
/// when k == 0): n log n for the full sort, the heap bound n + k log k
/// for top-k — mirroring what the kernels actually execute.
double sort_cycles(std::size_t n, std::size_t k) {
  if (n < 2) return 0;
  const double dn = static_cast<double>(n);
  const double comparisons =
      (k == 0 || k >= n)
          ? dn * std::log2(dn)
          : dn + static_cast<double>(k) * std::log2(static_cast<double>(k) + 1);
  return kSortCyclesPerComparison * comparisons;
}

bool value_less(const Value& a, const Value& b) {
  if (a.is_string()) return a.as_string() < b.as_string();
  if (a.is_double() || b.is_double()) return a.as_double() < b.as_double();
  return a.as_int() < b.as_int();
}

}  // namespace

std::vector<std::uint32_t> order_row_ids(OpContext& ctx, const Table& table,
                                         const OrderBySpec& order,
                                         const BitVector& selection,
                                         std::size_t limit) {
  const Column& key = table.column(order.column);
  const std::uint64_t selected = selection.count();
  ctx.stats.work.cpu_cycles += sort_cycles(selected, limit);
  // The parallel kernels order by (key, row id) — a total order — so the
  // result is bit-identical to the serial sort at any thread count.
  sched::ThreadPool* pool =
      selected >= ctx.options.parallel_sort_min_rows ? ctx.options.pool
                                                     : nullptr;

  if (key.type() == TypeId::kDouble) {
    ctx.charge_column(table, key, false);
    return limit != 0
               ? exec::top_n_double(key.double_data(), selection, limit,
                                    order.ascending, pool)
               : exec::sort_indices_double(key.double_data(), selection,
                                           order.ascending, pool);
  }
  // Integer-family keys (int32 / int64 / dictionary codes / bit-packed):
  // compared through the typed view in place — the widened int64 copy of
  // the pre-physical-plan sort path is gone, and a packed key column's
  // DRAM charge is its packed image.
  const bool packed = use_packed(key, ctx.options);
  ctx.charge_column(table, key, packed);
  exec::JoinKeys view =
      packed ? exec::JoinKeys::from(key.packed_view())
             : (key.type() == TypeId::kInt64
                    ? exec::JoinKeys::from(key.int64_data())
                    : exec::JoinKeys::from(key.int32_data()));
  return limit != 0
             ? exec::top_n(view, selection, limit, order.ascending, pool)
             : exec::sort_indices(view, selection, order.ascending, pool);
}

void sort_result_rows(OpContext& ctx, QueryResult& result,
                      const OrderBySpec& order, std::size_t limit) {
  // column_index throws for a column outside the select list — ORDER BY
  // over aggregate output addresses result columns only.
  const std::size_t col = result.column_index(order.column);
  const std::size_t n = result.row_count();
  ctx.stats.work.cpu_cycles += sort_cycles(n, limit);

  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    const Value& va = result.at(a, col);
    const Value& vb = result.at(b, col);
    if (value_less(va, vb)) return order.ascending;
    if (value_less(vb, va)) return !order.ascending;
    return a < b;  // deterministic tie-break: original emit order
  };
  const std::size_t keep = limit == 0 ? n : std::min(limit, n);
  if (keep < n)
    std::partial_sort(perm.begin(),
                      perm.begin() + static_cast<std::ptrdiff_t>(keep),
                      perm.end(), cmp);
  else
    std::sort(perm.begin(), perm.end(), cmp);

  QueryResult sorted(result.column_names());
  for (std::size_t i = 0; i < keep; ++i)
    sorted.add_row(result.row(perm[i]));
  result = std::move(sorted);
}

}  // namespace eidb::query::ops
