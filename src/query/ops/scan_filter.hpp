// Scan + filter operator: predicate binding, statistics-based pruning and
// ordering, and selection-bitmap evaluation over plain, packed and
// zone-mapped columns. Extracted from the executor monolith; shared by
// the probe-side scan, every join step's build-side scan, and the
// physical planner's selectivity estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "query/ops/op_context.hpp"
#include "query/plan.hpp"
#include "storage/table.hpp"
#include "util/bitvector.hpp"

namespace eidb::query::ops {

/// A predicate's bounds bound to a column's type (string bounds become
/// dictionary-code ranges).
struct BoundRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool empty = false;
  bool is_double = false;
  double dlo = 0;
  double dhi = 0;
};

[[nodiscard]] BoundRange bind_predicate(const storage::Column& column,
                                        const Predicate& p);

/// Estimated selectivity of `p` from the cached column statistics
/// (uniform-value assumption) — orders conjuncts and feeds the physical
/// planner's cardinality estimates.
[[nodiscard]] double estimate_predicate_selectivity(
    const storage::Column& column, const Predicate& p);

/// True when scans/aggregates over `column` should consume its packed
/// image under `options` (encoded, integer-typed, encodings enabled).
[[nodiscard]] bool use_packed(const storage::Column& column,
                              const ExecOptions& options);

/// Evaluates the conjunction of `predicates` over `table` into a selection
/// bitmap, ordering conjuncts most-selective-first and running later ones
/// through masked kernels (see docs/executor_pipeline.md). Charges each
/// scan pass to the DRAM ledger via `ctx`.
[[nodiscard]] BitVector evaluate_predicates(
    OpContext& ctx, const storage::Table& table,
    const std::vector<Predicate>& predicates);

}  // namespace eidb::query::ops
