#include "query/ops/scan_filter.hpp"

#include <algorithm>
#include <limits>

#include "exec/adaptive_scan.hpp"
#include "exec/fused.hpp"
#include "exec/parallel.hpp"
#include "exec/scan_kernels.hpp"
#include "opt/cost_model.hpp"
#include "storage/zonemap.hpp"
#include "util/assert.hpp"

namespace eidb::query::ops {

using storage::Column;
using storage::Table;
using storage::TypeId;

namespace {

/// Integer predicate bounds rewritten into a packed image's reference-
/// shifted domain. Precondition: [lo, hi] overlaps the column's
/// [min, max] (prune_with_stats resolved disjoint/covering predicates),
/// so hi >= reference and the unsigned shift is exact.
struct PackedBounds {
  std::uint64_t lo;
  std::uint64_t hi;
};
PackedBounds packed_bounds(const storage::EncodedSegment& seg,
                           std::int64_t lo, std::int64_t hi) {
  const auto ref = static_cast<std::uint64_t>(seg.reference);
  return {lo <= seg.reference ? 0 : static_cast<std::uint64_t>(lo) - ref,
          static_cast<std::uint64_t>(hi) - ref};
}

/// Stats-based pre-scan pruning: returns true when the predicate was
/// fully resolved from [min, max] alone (all rows match, or none do —
/// `selection` already updated, nothing scanned or charged).
bool prune_with_stats(const Column& column, const BoundRange& r,
                      BitVector& selection) {
  const storage::ColumnStats& s = column.stats();
  if (s.rows == 0) return false;
  const bool all = r.is_double ? (r.dlo <= s.dmin && r.dhi >= s.dmax)
                               : (r.lo <= s.min && r.hi >= s.max);
  if (all) return true;  // every row matches: selection unchanged, no scan
  const bool none = r.is_double ? (r.dhi < s.dmin || r.dlo > s.dmax)
                                : (r.hi < s.min || r.lo > s.max);
  if (none) {
    selection.clear_all();
    return true;
  }
  return false;
}

void apply_predicate(OpContext& ctx, const Table& table, const Predicate& p,
                     BitVector& selection) {
  const ExecOptions& options = ctx.options;
  ExecStats& stats = ctx.stats;
  const Column& column = table.column(p.column);
  const BoundRange r = bind_predicate(column, p);
  if (r.empty) {
    selection.clear_all();
    return;
  }
  // Cached-statistics pruning: a predicate the [min, max] range already
  // decides never touches the data (zone-map logic at table granularity).
  if (prune_with_stats(column, r, selection)) return;

  const std::size_t n = column.size();
  if (n == 0) return;
  stats.tuples_scanned += n;
  stats.work.cpu_cycles += kScanCyclesPerTuple * static_cast<double>(n);
  // Packed consumption: kAuto scans only — explicit variant choices (the
  // E3 bench) must measure exactly the requested plain kernel.
  const bool packed = !r.is_double &&
                      options.scan_variant == exec::ScanVariant::kAuto &&
                      use_packed(column, options);
  ctx.charge_scan(table, column, packed);

  BitVector match(n);
  if (r.is_double) {
    exec::scan_bitmap_double(column.double_data(), r.dlo, r.dhi, match);
  } else if (packed) {
    const storage::EncodedSegment& seg = *column.encoded();
    const auto pb = packed_bounds(seg, r.lo, r.hi);
    if (options.use_zone_maps) {
      // Zone-map pruning composes with the packed image: candidate ranges
      // are widened to 64-value blocks and run through the block scan
      // kernel. Widening is sound — a row outside every candidate range
      // cannot match the predicate (its block's [min, max] excludes it),
      // so the extra evaluated rows contribute no bits — and overlapping
      // widened ranges rewrite identical words. Only the visited fraction
      // of the *packed* bytes stays charged.
      const storage::ZoneMap& zm = table.zone_map(
          table.schema().index_of(p.column), options.zone_block_rows);
      const auto ranges = zm.candidate_ranges(r.lo, r.hi, n);
      std::size_t touched = 0;
      for (const auto& range : ranges) {
        touched += range.end - range.begin;
        const std::size_t b = range.begin & ~std::size_t{63};
        const std::size_t e = std::min(n, (range.end + 63) & ~std::size_t{63});
        exec::scan_packed_bitmap_range(seg.words, seg.bits, b, e, pb.lo,
                                       pb.hi, match);
      }
      const double skipped = static_cast<double>(n - touched);
      const double packed_bpt =
          static_cast<double>(seg.byte_size()) / static_cast<double>(n);
      const double plain_bpt =
          static_cast<double>(storage::physical_size(column.type()));
      stats.work.cpu_cycles -= kScanCyclesPerTuple * skipped;
      stats.work.dram_bytes -= skipped * packed_bpt;
      stats.dram_bytes_saved -= skipped * (plain_bpt - packed_bpt);
    } else if (options.pool != nullptr) {
      exec::parallel_scan_packed_bitmap(*options.pool, seg.words, seg.bits,
                                        n, pb.lo, pb.hi, match);
    } else {
      exec::scan_packed_bitmap(seg.words, seg.bits, n, pb.lo, pb.hi, match);
    }
  } else if (options.use_zone_maps && column.type() != TypeId::kDouble) {
    // Pruned scan: only candidate blocks are touched. The zone map itself
    // is built once per (table, column) and cached. Work is re-estimated
    // to the touched fraction.
    const storage::ZoneMap& zm = table.zone_map(
        table.schema().index_of(p.column), options.zone_block_rows);
    const auto ranges = zm.candidate_ranges(r.lo, r.hi, n);
    std::size_t touched = 0;
    const auto scan_range = [&](auto data) {
      for (const auto& range : ranges) {
        touched += range.end - range.begin;
        for (std::size_t i = range.begin; i < range.end; ++i)
          if (data[i] >= r.lo && data[i] <= r.hi) match.set(i);
      }
    };
    if (column.type() == TypeId::kInt64)
      scan_range(column.int64_data());
    else
      scan_range(column.int32_data());
    // Credit back the untouched bytes/cycles of the full-scan estimate.
    const double skipped = static_cast<double>(n - touched);
    stats.work.cpu_cycles -= kScanCyclesPerTuple * skipped;
    stats.work.dram_bytes -= skipped * storage::physical_size(column.type());
  } else {
    const auto lo32 = [&] {
      return static_cast<std::int32_t>(std::clamp<std::int64_t>(
          r.lo, std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max()));
    };
    const auto hi32 = [&] {
      return static_cast<std::int32_t>(std::clamp<std::int64_t>(
          r.hi, std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max()));
    };
    switch (options.scan_variant) {
      case exec::ScanVariant::kBranching:
      case exec::ScanVariant::kPredicated: {
        // Index kernels, converted to a bitmap (kept for experiment parity).
        // Scratch buffer is executor-owned: no per-predicate allocation.
        if (ctx.idx_scratch.size() < n) ctx.idx_scratch.resize(n);
        std::size_t k = 0;
        if (column.type() == TypeId::kInt64) {
          k = options.scan_variant == exec::ScanVariant::kBranching
                  ? exec::scan_branching64(column.int64_data(), r.lo, r.hi,
                                           ctx.idx_scratch.data())
                  : exec::scan_predicated64(column.int64_data(), r.lo, r.hi,
                                            ctx.idx_scratch.data());
        } else {
          k = options.scan_variant == exec::ScanVariant::kBranching
                  ? exec::scan_branching(column.int32_data(), lo32(), hi32(),
                                         ctx.idx_scratch.data())
                  : exec::scan_predicated(column.int32_data(), lo32(), hi32(),
                                          ctx.idx_scratch.data());
        }
        for (std::size_t j = 0; j < k; ++j) match.set(ctx.idx_scratch[j]);
        break;
      }
      case exec::ScanVariant::kAvx2:
        if (column.type() == TypeId::kInt64)
          exec::scan_bitmap_avx2_64(column.int64_data(), r.lo, r.hi, match);
        else
          exec::scan_bitmap_avx2(column.int32_data(), lo32(), hi32(), match);
        break;
      case exec::ScanVariant::kAvx512:
        if (column.type() == TypeId::kInt64)
          exec::scan_bitmap_avx512_64(column.int64_data(), r.lo, r.hi, match);
        else
          exec::scan_bitmap_avx512(column.int32_data(), lo32(), hi32(), match);
        break;
      case exec::ScanVariant::kAuto:
        if (options.adaptive_scan && column.type() != TypeId::kInt64) {
          // Mid-scan reconfiguration (paper §IV.B): chunked serial scan
          // that re-estimates selectivity with an EWMA and re-picks the
          // kernel between chunks. Takes precedence over the pool — the
          // adaptation is sequential by construction. Same bitmap as the
          // static kernels, so parity is unaffected.
          static const opt::CostModel default_model = opt::CostModel::defaults();
          const opt::CostModel& cm = options.cost_model != nullptr
                                         ? *options.cost_model
                                         : default_model;
          const double prior = opt::CostModel::estimate_selectivity(
              column.stats(), r.lo, r.hi);
          exec::AdaptiveScan adaptive(cm, prior);
          exec::AdaptiveScanStats as;
          adaptive.scan(column.int32_data(), lo32(), hi32(), match, as);
        } else if (options.pool != nullptr) {
          if (column.type() == TypeId::kInt64)
            exec::parallel_scan_bitmap64(*options.pool, column.int64_data(),
                                         r.lo, r.hi, match);
          else
            exec::parallel_scan_bitmap32(*options.pool, column.int32_data(),
                                         lo32(), hi32(), match);
        } else if (column.type() == TypeId::kInt64) {
          exec::scan_bitmap_best64(column.int64_data(), r.lo, r.hi, match);
        } else {
          exec::scan_bitmap_best(column.int32_data(), lo32(), hi32(), match);
        }
        break;
    }
  }
  selection &= match;
}

/// Selection-aware variant for the second and later conjuncts: evaluates
/// only 64-row blocks that still have candidates and charges only the
/// visited fraction.
void apply_predicate_masked(OpContext& ctx, const Table& table,
                            const Predicate& p, BitVector& selection) {
  const ExecOptions& options = ctx.options;
  ExecStats& stats = ctx.stats;
  const Column& column = table.column(p.column);
  const BoundRange r = bind_predicate(column, p);
  if (r.empty) {
    selection.clear_all();
    return;
  }
  if (prune_with_stats(column, r, selection)) return;

  const bool packed = !r.is_double && use_packed(column, options);
  exec::MaskedScanStats ms;
  if (packed) {
    const storage::EncodedSegment& seg = *column.encoded();
    const auto pb = packed_bounds(seg, r.lo, r.hi);
    exec::scan_packed_bitmap_masked_counted(seg.words, seg.bits,
                                            column.size(), pb.lo, pb.hi,
                                            selection, ms);
  } else {
    switch (column.type()) {
      case TypeId::kInt64:
        exec::scan_bitmap_masked64_counted(column.int64_data(), r.lo, r.hi,
                                           selection, ms);
        break;
      case TypeId::kInt32:
      case TypeId::kString: {
        const auto lo = static_cast<std::int32_t>(std::clamp<std::int64_t>(
            r.lo, std::numeric_limits<std::int32_t>::min(),
            std::numeric_limits<std::int32_t>::max()));
        const auto hi = static_cast<std::int32_t>(std::clamp<std::int64_t>(
            r.hi, std::numeric_limits<std::int32_t>::min(),
            std::numeric_limits<std::int32_t>::max()));
        exec::scan_bitmap_masked32_counted(column.int32_data(), lo, hi,
                                           selection, ms);
        break;
      }
      case TypeId::kDouble:
        exec::scan_bitmap_masked_double_counted(column.double_data(), r.dlo,
                                                r.dhi, selection, ms);
        break;
    }
  }
  // Charge only what was visited: dead 64-row blocks cost neither cycles
  // nor DRAM traffic — this is where ordering predicates most-selective-
  // first saves joules. Packed reads charge the packed bytes per tuple.
  const std::size_t visited = std::min(
      column.size(),
      static_cast<std::size_t>(ms.words_total - ms.words_skipped) * 64);
  const double plain_bpt =
      static_cast<double>(storage::physical_size(column.type()));
  double bytes_per_tuple = plain_bpt;
  if (packed && column.size() > 0) {
    bytes_per_tuple = static_cast<double>(column.scan_byte_size()) /
                      static_cast<double>(column.size());
    ++stats.packed_column_reads;
    stats.dram_bytes_saved +=
        static_cast<double>(visited) * (plain_bpt - bytes_per_tuple);
  }
  stats.tuples_scanned += visited;
  stats.work.cpu_cycles += kScanCyclesPerTuple * static_cast<double>(visited);
  stats.work.dram_bytes += static_cast<double>(visited) * bytes_per_tuple;
  ctx.charge_tier(table, column);
}

}  // namespace

BoundRange bind_predicate(const Column& column, const Predicate& p) {
  BoundRange r;
  switch (column.type()) {
    case TypeId::kInt32:
    case TypeId::kInt64:
      r.lo = p.lo.as_int();
      r.hi = p.hi.as_int();
      r.empty = r.lo > r.hi;
      return r;
    case TypeId::kDouble:
      r.is_double = true;
      r.dlo = p.lo.as_double();
      r.dhi = p.hi.as_double();
      r.empty = r.dlo > r.dhi;
      return r;
    case TypeId::kString: {
      if (!p.lo.is_string() || !p.hi.is_string())
        throw Error("string column " + column.name() +
                    " requires string bounds");
      const storage::Dictionary& dict = column.dictionary();
      // Inclusive string range [lo, hi] -> inclusive code range.
      r.lo = dict.lower_bound(p.lo.as_string());
      r.hi = dict.upper_bound(p.hi.as_string()) - 1;
      r.empty = r.lo > r.hi;
      return r;
    }
  }
  throw Error("invalid column type");
}

double estimate_predicate_selectivity(const Column& column,
                                      const Predicate& p) {
  const BoundRange r = bind_predicate(column, p);
  if (r.empty) return 0.0;
  const storage::ColumnStats& s = column.stats();
  return r.is_double ? s.range_selectivity(r.dlo, r.dhi)
                     : s.range_selectivity(r.lo, r.hi);
}

bool use_packed(const Column& column, const ExecOptions& options) {
  // The byte-size guard keeps the dram(packed) <= dram(plain) ledger
  // invariant unconditional: a forced encoding whose word-rounded image
  // exceeds the plain array (tiny column, near-full width) is simply not
  // consumed — the executor reads plain instead of charging more.
  return options.use_encodings && column.encoded() != nullptr &&
         column.type() != TypeId::kDouble &&
         column.scan_byte_size() <= column.byte_size();
}

BitVector evaluate_predicates(OpContext& ctx, const Table& table,
                              const std::vector<Predicate>& preds) {
  BitVector selection(table.row_count());
  selection.set_all();

  // Most-selective-first ordering: the first conjunct kills the most rows,
  // so the masked scans that follow skip the most blocks.
  std::vector<const Predicate*> ordered;
  ordered.reserve(preds.size());
  for (const Predicate& p : preds) ordered.push_back(&p);
  if (ctx.options.order_predicates && ordered.size() > 1) {
    std::vector<double> sel(ordered.size());
    for (std::size_t i = 0; i < ordered.size(); ++i)
      sel[i] = estimate_predicate_selectivity(
          table.column(ordered[i]->column), *ordered[i]);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [&](const Predicate* a, const Predicate* b) {
                       return sel[static_cast<std::size_t>(a - preds.data())] <
                              sel[static_cast<std::size_t>(b - preds.data())];
                     });
  }

  // Masked (selection-aware) evaluation needs the adaptive kernels; the
  // explicit-variant and zone-map paths keep per-predicate full scans so
  // experiments measure exactly the requested kernel.
  const bool can_mask = ctx.options.order_predicates &&
                        ctx.options.scan_variant == exec::ScanVariant::kAuto &&
                        !ctx.options.use_zone_maps;
  bool first = true;
  for (const Predicate* p : ordered) {
    if (first || !can_mask)
      apply_predicate(ctx, table, *p, selection);
    else
      apply_predicate_masked(ctx, table, *p, selection);
    first = false;
  }
  return selection;
}

}  // namespace eidb::query::ops
