// Join operator: executes the physical plan's (possibly multi-way) join
// chain. Each step builds a dense / hash table over its filtered build
// side; the probe side streams through every step block-at-a-time with
// late materialization — a match is a tuple of row ids, one per side, and
// values are gathered only at the sink (exec::JoinAggregator for
// aggregates, the projection materializer otherwise). ORDER BY over join
// output runs as a proper sort/top-k operator: aggregate output is
// result-row sorted, projection output is key-gather + heap top-k over
// the match tuples.
#pragma once

#include "query/ops/op_context.hpp"
#include "query/physical_plan.hpp"
#include "storage/table.hpp"
#include "util/bitvector.hpp"

namespace eidb::query::ops {

[[nodiscard]] QueryResult run_join(OpContext& ctx, const PhysicalPlan& phys,
                                   const storage::Table& probe_table,
                                   const BitVector& probe_selection);

}  // namespace eidb::query::ops
