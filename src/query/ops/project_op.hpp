// Projection / materialization operator over a base-table selection:
// optional sort/top-k on a key column (see sort_op), then value gathers
// for the emitted rows only. The ledger charge of each projected column
// is the gathered fraction — an ORDER BY + LIMIT k query charges k rows'
// worth of the payload columns, not the full arrays, because that is all
// the top-k pass reads.
#pragma once

#include "query/ops/op_context.hpp"
#include "query/physical_plan.hpp"
#include "storage/table.hpp"
#include "util/bitvector.hpp"

namespace eidb::query::ops {

[[nodiscard]] QueryResult run_projection(OpContext& ctx,
                                         const PhysicalPlan& phys,
                                         const storage::Table& table,
                                         const BitVector& selection);

}  // namespace eidb::query::ops
