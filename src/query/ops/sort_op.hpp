// Sort / top-k operator. Two shapes:
//
//  * row-id ordering over a base-table key column (projections): the key
//    is consumed through a typed exec::JoinKeys view — int32, dictionary
//    codes and bit-packed images are compared in place with NO widened
//    int64 copy — and a LIMIT routes through the heap-based partial-sort
//    kernel so only the top k survive to materialization;
//  * result-row ordering (aggregate and join-aggregate output): the
//    materialized QueryResult rows are reordered by a named result column
//    ("region", "sum(revenue)", "count"), partial-sorted under LIMIT.
#pragma once

#include <cstdint>
#include <vector>

#include "query/ops/op_context.hpp"
#include "query/plan.hpp"
#include "storage/table.hpp"
#include "util/bitvector.hpp"

namespace eidb::query::ops {

/// Ordered row ids of `selection` by the plan's ORDER BY column, bounded
/// to `limit` rows via the heap top-k kernel when `limit` > 0. Charges
/// the key column at the representation the comparator streams (packed
/// image when one is consumed, plain otherwise).
[[nodiscard]] std::vector<std::uint32_t> order_row_ids(
    OpContext& ctx, const storage::Table& table, const OrderBySpec& order,
    const BitVector& selection, std::size_t limit);

/// Reorders `result`'s rows by result column `order.column` (full sort,
/// or heap top-k truncation to `limit` rows when `limit` > 0). Throws
/// eidb::Error when the named column is not in the result. Used for
/// aggregate output, where ORDER BY addresses select-list columns.
void sort_result_rows(OpContext& ctx, QueryResult& result,
                      const OrderBySpec& order, std::size_t limit);

}  // namespace eidb::query::ops
