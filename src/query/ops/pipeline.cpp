#include "query/ops/pipeline.hpp"

#include "query/ops/aggregate_op.hpp"
#include "query/ops/join_op.hpp"
#include "query/ops/project_op.hpp"
#include "query/ops/scan_filter.hpp"
#include "query/ops/sort_op.hpp"

namespace eidb::query::ops {

QueryResult execute_pipeline(OpContext& ctx, const PhysicalPlan& phys,
                             const storage::Table& table,
                             const BitVector* preset) {
  const LogicalPlan& plan = phys.logical;
  ExecStats& stats = ctx.stats;

  BitVector selection;
  {
    OperatorScope scope(stats, "scan+filter(" + table.name() + ")");
    if (preset != nullptr) {
      // The selection was computed upstream (shard scans); the scan here
      // charges nothing — the shards already paid for the column reads.
      selection = *preset;
    } else {
      selection = evaluate_predicates(ctx, table, plan.predicates);
      // With no predicates the downstream operators still read every row.
      if (plan.predicates.empty()) stats.tuples_scanned += table.row_count();
    }
    stats.tuples_selected = selection.count();
  }

  QueryResult result;
  if (plan.has_join()) {
    result = run_join(ctx, phys, table, selection);
  } else if (plan.is_aggregate()) {
    result = run_aggregate(ctx, plan, table, selection);
  } else {
    result = run_projection(ctx, phys, table, selection);
  }

  // Sort / top-k over materialized result rows (aggregate output — base
  // table or join alike), then LIMIT. Projections order their row ids
  // inside their own operator instead, so the top-k pass bounds what the
  // materializer gathers and charges.
  if (plan.is_aggregate()) {
    if (phys.sort_on_result && plan.order_by.has_value()) {
      OperatorScope scope(
          stats,
          (phys.sort == SortStrategy::kTopK ? "top-k(" : "sort(") +
              plan.order_by->column + ")");
      sort_result_rows(ctx, result, *plan.order_by, plan.limit);
    } else if (plan.limit != 0 && result.row_count() > plan.limit) {
      QueryResult trimmed(result.column_names());
      for (std::size_t i = 0; i < plan.limit; ++i)
        trimmed.add_row(result.row(i));
      result = std::move(trimmed);
    }
  }
  return result;
}

}  // namespace eidb::query::ops
