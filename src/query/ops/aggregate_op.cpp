#include "query/ops/aggregate_op.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exec/aggregate.hpp"
#include "exec/expression.hpp"
#include "query/ops/scan_filter.hpp"
#include "util/assert.hpp"

namespace eidb::query::ops {

using storage::Column;
using storage::Table;
using storage::TypeId;

std::int64_t column_int_at(const Column& c, std::size_t i) {
  if (c.type() == TypeId::kDouble)
    throw Error("column " + c.name() + " is not integer-typed");
  return c.int_at(i);
}

namespace {

/// Accumulates one aggregate over an index stream (legacy row-at-a-time
/// path).
struct Accumulator {
  AggOp op;
  bool is_double = false;
  std::uint64_t count = 0;
  std::int64_t isum = 0;
  std::int64_t imin = std::numeric_limits<std::int64_t>::max();
  std::int64_t imax = std::numeric_limits<std::int64_t>::min();
  double dsum = 0;
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();

  void add_int(std::int64_t v) {
    ++count;
    isum += v;
    imin = std::min(imin, v);
    imax = std::max(imax, v);
  }
  void add_double(double v) {
    ++count;
    dsum += v;
    dmin = std::min(dmin, v);
    dmax = std::max(dmax, v);
  }
  [[nodiscard]] storage::Value value() const {
    switch (op) {
      case AggOp::kCount:
        return storage::Value{static_cast<std::int64_t>(count)};
      case AggOp::kSum:
        return is_double ? storage::Value{dsum} : storage::Value{isum};
      case AggOp::kMin:
        if (count == 0) return storage::Value{std::int64_t{0}};
        return is_double ? storage::Value{dmin} : storage::Value{imin};
      case AggOp::kMax:
        if (count == 0) return storage::Value{std::int64_t{0}};
        return is_double ? storage::Value{dmax} : storage::Value{imax};
      case AggOp::kAvg: {
        if (count == 0) return storage::Value{0.0};
        const double sum = is_double ? dsum : static_cast<double>(isum);
        return storage::Value{sum / static_cast<double>(count)};
      }
    }
    return {};
  }
};

QueryResult run_aggregate_vectorized(OpContext& ctx, const LogicalPlan& plan,
                                     const Table& table,
                                     const BitVector& selection) {
  const ExecOptions& options = ctx.options;
  ExecStats& stats = ctx.stats;
  const std::uint64_t selected = selection.count();
  const bool parallel = options.pool != nullptr &&
                        selected >= options.parallel_agg_min_rows;

  // ---- Resolve AggSpecs to shared inputs: each distinct column (or
  // expression) becomes ONE kernel input, read exactly once, and is
  // charged to the DRAM ledger exactly once. ------------------------------
  //
  // One representation per column per query: consumers with no packed
  // kernel (expression evaluation, composite-key synthesis) read the
  // plain array, so a column any of them touches is consumed plain by
  // every consumer — otherwise the once-per-query charge could not match
  // what the pass actually streams.
  std::set<std::string> plain_required;
  for (const AggSpec& a : plan.aggregates) {
    if (a.expr == nullptr) continue;
    std::vector<std::string> referenced;
    a.expr->collect_columns(referenced);
    plain_required.insert(referenced.begin(), referenced.end());
  }
  if (plan.group_by.size() > 1)
    plain_required.insert(plan.group_by.begin(), plan.group_by.end());
  const auto consume_packed = [&](const Column& c) {
    return use_packed(c, options) && plain_required.count(c.name()) == 0;
  };
  // Aggregate inputs consume the packed image when one exists: the pass
  // streams fewer DRAM bytes, and the ledger charges exactly those.
  const auto input_of = [&](const Column& c) {
    if (consume_packed(c)) {
      ctx.charge_column(table, c, true);
      return exec::AggInput::from(c.packed_view());
    }
    ctx.charge_column(table, c, false);
    return agg_input_of(c);
  };

  std::vector<exec::AggInput> inputs;
  std::deque<std::vector<double>> expr_values;  // stable storage for spans
  std::map<std::string, std::size_t> input_index;
  std::vector<int> spec_input(plan.aggregates.size(), -1);  // -1 = COUNT
  for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
    const AggSpec& a = plan.aggregates[ai];
    if (a.op == AggOp::kCount) continue;  // COUNT needs no input column
    if (a.expr != nullptr) {
      const std::string key = "expr:" + a.expr->to_string();
      const auto it = input_index.find(key);
      if (it == input_index.end()) {
        std::vector<std::string> referenced;
        a.expr->collect_columns(referenced);
        // Expression evaluation reads the plain arrays (no packed kernel)
        // — the transient-decode fallback arm.
        for (const std::string& name : referenced)
          ctx.charge_column(table, table.column(name), false);
        expr_values.emplace_back();
        exec::evaluate_expression(*a.expr, table, expr_values.back());
        input_index[key] = inputs.size();
        spec_input[ai] = static_cast<int>(inputs.size());
        inputs.push_back(exec::AggInput::from(
            std::span<const double>(expr_values.back())));
      } else {
        spec_input[ai] = static_cast<int>(it->second);
      }
    } else {
      const auto it = input_index.find(a.column);
      if (it == input_index.end()) {
        const Column& c = table.column(a.column);
        input_index[a.column] = inputs.size();
        spec_input[ai] = static_cast<int>(inputs.size());
        inputs.push_back(input_of(c));
      } else {
        spec_input[ai] = static_cast<int>(it->second);
      }
    }
  }

  if (!plan.has_group_by()) {
    // Global aggregates: one pass computes count/sum/min/max for every
    // input; each AggSpec just projects its op out of the shared result.
    std::vector<exec::AggOut> outs;
    if (!inputs.empty())
      outs = parallel ? exec::parallel_multi_aggregate(*options.pool, inputs,
                                                       selection)
                      : exec::multi_aggregate(inputs, selection);
    std::vector<std::string> names;
    names.reserve(plan.aggregates.size());
    for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
    QueryResult result(std::move(names));
    std::vector<storage::Value> row;
    row.reserve(plan.aggregates.size());
    for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      if (spec_input[ai] < 0)
        row.emplace_back(static_cast<std::int64_t>(selected));
      else
        row.push_back(agg_out_value(a.op,
                                    outs[static_cast<std::size_t>(
                                        spec_input[ai])]));
    }
    result.add_row(std::move(row));
    stats.work.cpu_cycles +=
        kAggCyclesPerTuple * static_cast<double>(selected) *
        static_cast<double>(std::max<std::size_t>(1, inputs.size()));
    stats.groups = 1;
    return result;
  }

  // ---- Grouped aggregation. Key ranges come from the cached column
  // statistics — no per-query min/max scan over the key columns. ----------
  struct GroupKeyPart {
    const Column* col;
    /// Double key grouped on its dictionary codes (decoded at emit).
    bool double_codes = false;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t domain = 1;  // max - min + 1, saturated by ColumnStats
    std::int64_t stride = 1;
    std::uint64_t distinct = 0;
  };
  std::vector<GroupKeyPart> parts;
  const std::size_t n_rows = table.row_count();
  // Composite keys are in plain_required (synthesized from the plain
  // arrays); a single packed key column is consumed in place.
  for (const std::string& name : plan.group_by) {
    const Column& col = table.column(name);
    GroupKeyPart part;
    part.col = &col;
    if (col.type() == TypeId::kDouble) {
      if (!col.has_double_dictionary())
        throw Error("cannot group by double column " + col.name() +
                    " (no ordered dictionary: column contains NaN)");
      // Group on the int32 codes — dense range [0, dict size), exact
      // distinct count — and decode from the double dictionary at emit.
      // The pass streams the 4-byte code array, so that is the charge
      // (unless another consumer already billed the plain width).
      ctx.charge_column_bytes(table, col,
                              4.0 * static_cast<double>(col.size()));
      const auto dsize =
          static_cast<std::int64_t>(col.double_dictionary().size());
      part.double_codes = true;
      part.min = 0;
      part.max = std::max<std::int64_t>(0, dsize - 1);
      part.domain = std::max<std::int64_t>(1, dsize);
      part.distinct = static_cast<std::uint64_t>(dsize);
      parts.push_back(part);
      continue;
    }
    ctx.charge_column(table, col, consume_packed(col));
    const storage::ColumnStats& cs = col.stats();
    part.min = cs.rows == 0 ? 0 : cs.min;
    part.max = cs.rows == 0 ? 0 : cs.max;
    part.domain = std::max<std::int64_t>(1, cs.domain());
    part.distinct = cs.distinct;
    parts.push_back(part);
  }

  exec::GroupedAggs grouped;
  const bool composite = parts.size() > 1;
  if (!composite) {
    // Single key column consumed in place (int32/codes stay 32-bit;
    // encoded keys stay packed and decode per selected row).
    const GroupKeyPart& part = parts.front();
    const exec::KeyRange range{true, part.min, part.max, part.distinct};
    if (consume_packed(*part.col)) {
      const storage::PackedView keys = part.col->packed_view();
      grouped = parallel
                    ? exec::parallel_grouped_multi_aggregate_packed(
                          *options.pool, keys, inputs, selection, range)
                    : exec::grouped_multi_aggregate_packed(keys, inputs,
                                                           selection, range);
    } else if (part.double_codes) {
      const auto keys = part.col->double_codes();
      grouped = parallel
                    ? exec::parallel_grouped_multi_aggregate32(
                          *options.pool, keys, inputs, selection, range)
                    : exec::grouped_multi_aggregate32(keys, inputs, selection,
                                                      range);
    } else if (part.col->type() == TypeId::kInt64) {
      const auto keys = part.col->int64_data();
      grouped = parallel
                    ? exec::parallel_grouped_multi_aggregate(
                          *options.pool, keys, inputs, selection, range)
                    : exec::grouped_multi_aggregate(keys, inputs, selection,
                                                    range);
    } else {
      const auto keys = part.col->int32_data();  // int32 or string codes
      grouped = parallel
                    ? exec::parallel_grouped_multi_aggregate32(
                          *options.pool, keys, inputs, selection, range)
                    : exec::grouped_multi_aggregate32(keys, inputs, selection,
                                                      range);
    }
  } else {
    // Strides right-to-left; guard against composite-domain overflow.
    std::int64_t total = 1;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      it->stride = total;
      if (it->domain > (std::int64_t{1} << 62) / total)
        throw Error("composite group-by domain too large");
      total *= it->domain;
    }
    // Synthesize the composite keys into the reusable scratch buffer
    // (one sequential pass per key column).
    ctx.key_scratch.assign(n_rows, 0);
    for (const GroupKeyPart& part : parts) {
      if (part.double_codes) {
        const auto data = part.col->double_codes();
        for (std::size_t i = 0; i < n_rows; ++i)
          ctx.key_scratch[i] += (data[i] - part.min) * part.stride;
      } else if (part.col->type() == TypeId::kInt64) {
        const auto data = part.col->int64_data();
        for (std::size_t i = 0; i < n_rows; ++i)
          ctx.key_scratch[i] += (data[i] - part.min) * part.stride;
      } else {
        const auto data = part.col->int32_data();
        for (std::size_t i = 0; i < n_rows; ++i)
          ctx.key_scratch[i] += (data[i] - part.min) * part.stride;
      }
    }
    const std::span<const std::int64_t> keys(ctx.key_scratch.data(), n_rows);
    const exec::KeyRange range{true, 0, total - 1};
    grouped = parallel ? exec::parallel_grouped_multi_aggregate(
                             *options.pool, keys, inputs, selection, range)
                       : exec::grouped_multi_aggregate(keys, inputs,
                                                       selection, range);
  }
  stats.groups = grouped.group_count();
  stats.work.cpu_cycles +=
      kGroupCyclesPerTuple * static_cast<double>(selected) +
      kAggCyclesPerTuple * static_cast<double>(selected) *
          static_cast<double>(inputs.size());

  // String group keys late-materialize at emit: the emitted groups gather
  // from the dictionary payload, and that traffic is charged (bounded by
  // one full dictionary read).
  for (const GroupKeyPart& part : parts)
    if (part.col->type() == TypeId::kString)
      ctx.charge_dict_gather(table, *part.col, grouped.group_count());

  std::vector<std::string> names(plan.group_by.begin(), plan.group_by.end());
  for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
  QueryResult result(std::move(names));

  for (std::size_t g = 0; g < grouped.group_count(); ++g) {
    std::vector<storage::Value> row;
    row.reserve(parts.size() + plan.aggregates.size());
    if (!composite) {
      const GroupKeyPart& part = parts.front();
      if (part.col->type() == TypeId::kString)
        row.emplace_back(part.col->dictionary().at(
            static_cast<std::int32_t>(grouped.keys[g])));
      else if (part.double_codes)
        row.emplace_back(part.col->double_dictionary().at(
            static_cast<std::int32_t>(grouped.keys[g])));
      else
        row.emplace_back(grouped.keys[g]);
    } else {
      // Decode the composite key back into per-column values.
      for (const GroupKeyPart& part : parts) {
        const std::int64_t component =
            (grouped.keys[g] / part.stride) % part.domain + part.min;
        if (part.col->type() == TypeId::kString)
          row.emplace_back(part.col->dictionary().at(
              static_cast<std::int32_t>(component)));
        else if (part.double_codes)
          row.emplace_back(part.col->double_dictionary().at(
              static_cast<std::int32_t>(component)));
        else
          row.emplace_back(component);
      }
    }
    for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      if (spec_input[ai] < 0) {
        row.emplace_back(static_cast<std::int64_t>(grouped.counts[g]));
        continue;
      }
      const auto j = static_cast<std::size_t>(spec_input[ai]);
      exec::AggOut out;
      out.is_double = inputs[j].is_double();
      if (out.is_double)
        out.d = grouped.dout[j][g];
      else
        out.i = grouped.iout[j][g];
      row.push_back(agg_out_value(a.op, out));
    }
    result.add_row(std::move(row));
  }
  return result;
}

QueryResult run_aggregate_rows(OpContext& ctx, const LogicalPlan& plan,
                               const Table& table,
                               const BitVector& selection) {
  ExecStats& stats = ctx.stats;
  const std::uint64_t selected = selection.count();

  if (!plan.has_group_by()) {
    // Global aggregates.
    std::vector<std::string> names;
    names.reserve(plan.aggregates.size());
    for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
    QueryResult result(std::move(names));
    std::vector<storage::Value> row;
    for (const AggSpec& a : plan.aggregates) {
      Accumulator acc{a.op};
      if (a.op == AggOp::kCount) {
        acc.count = selected;
      } else if (a.expr != nullptr) {
        std::vector<std::string> referenced;
        a.expr->collect_columns(referenced);
        for (const std::string& name : referenced)
          ctx.charge_scan(table, table.column(name), false);
        std::vector<double> evaluated;
        exec::evaluate_expression(*a.expr, table, evaluated);
        acc.is_double = true;
        selection.for_each_set(
            [&](std::size_t i) { acc.add_double(evaluated[i]); });
      } else {
        const Column& c = table.column(a.column);
        ctx.charge_scan(table, c, false);
        if (c.type() == TypeId::kDouble) {
          acc.is_double = true;
          const auto data = c.double_data();
          selection.for_each_set(
              [&](std::size_t i) { acc.add_double(data[i]); });
        } else {
          selection.for_each_set(
              [&](std::size_t i) { acc.add_int(column_int_at(c, i)); });
        }
      }
      row.push_back(acc.value());
      stats.work.cpu_cycles +=
          kAggCyclesPerTuple * static_cast<double>(selected);
    }
    result.add_row(std::move(row));
    stats.groups = 1;
    return result;
  }

  // Grouped aggregation over one or more key columns (int32 / int64 /
  // string codes). A composite non-negative int64 key is synthesized from
  // the columns' value ranges (stride layout), so every grouping runs on
  // the int64 kernels and decodes back to column values for output.
  struct GroupKeyPart {
    const Column* col;
    /// Double key grouped on its dictionary codes (decoded at emit).
    bool double_codes = false;
    std::int64_t min = 0;
    std::int64_t domain = 1;  // max - min + 1
    std::int64_t stride = 1;
  };
  std::vector<GroupKeyPart> parts;
  const std::size_t n_rows = table.row_count();
  for (const std::string& name : plan.group_by) {
    const Column& col = table.column(name);
    ctx.charge_scan(table, col, false);
    if (col.type() == TypeId::kDouble && !col.has_double_dictionary())
      throw Error("cannot group by double column " + col.name() +
                  " (no ordered dictionary: column contains NaN)");
    GroupKeyPart part;
    part.col = &col;
    part.double_codes = col.type() == TypeId::kDouble;
    std::int64_t mn = 0, mx = 0;
    if (n_rows > 0) {
      // Deliberately rescans the column (the "before" the stats cache
      // eliminates in the vectorized path).
      if (part.double_codes) {
        const auto data = col.double_codes();
        mn = mx = data[0];
        for (const std::int32_t v : data) {
          mn = std::min<std::int64_t>(mn, v);
          mx = std::max<std::int64_t>(mx, v);
        }
      } else if (col.type() == TypeId::kInt64) {
        const auto data = col.int64_data();
        mn = mx = data[0];
        for (const std::int64_t v : data) {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
      } else {
        const auto data = col.int32_data();  // int32 or string codes
        mn = mx = data[0];
        for (const std::int32_t v : data) {
          mn = std::min<std::int64_t>(mn, v);
          mx = std::max<std::int64_t>(mx, v);
        }
      }
    }
    part.min = mn;
    part.domain = mx - mn + 1;
    parts.push_back(part);
  }
  // Strides right-to-left; guard against composite-domain overflow.
  std::int64_t total = 1;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    it->stride = total;
    if (it->domain > (std::int64_t{1} << 62) / total)
      throw Error("composite group-by domain too large");
    total *= it->domain;
  }
  // Synthesize the composite keys.
  std::vector<std::int64_t> synth(n_rows, 0);
  for (const GroupKeyPart& part : parts) {
    if (part.double_codes) {
      const auto data = part.col->double_codes();
      for (std::size_t i = 0; i < n_rows; ++i)
        synth[i] += (data[i] - part.min) * part.stride;
    } else if (part.col->type() == TypeId::kInt64) {
      const auto data = part.col->int64_data();
      for (std::size_t i = 0; i < n_rows; ++i)
        synth[i] += (data[i] - part.min) * part.stride;
    } else {
      const auto data = part.col->int32_data();
      for (std::size_t i = 0; i < n_rows; ++i)
        synth[i] += (data[i] - part.min) * part.stride;
    }
  }
  const std::span<const std::int64_t> group_keys(synth);

  std::vector<std::string> names(plan.group_by.begin(), plan.group_by.end());
  for (const AggSpec& a : plan.aggregates) names.push_back(agg_column_name(a));
  QueryResult result(std::move(names));

  // Resolve each aggregate into per-key accumulation via the exec kernels.
  // Strategy: for the first aggregate we compute the group layout (sorted
  // keys); subsequent aggregates are joined by key order. To keep a single
  // pass per aggregate we rely on group_aggregate* returning key-sorted rows.
  struct GroupedOut {
    std::vector<exec::GroupRow> irows;
    std::vector<exec::GroupRowD> drows;
    bool is_double = false;
  };
  std::vector<GroupedOut> per_agg(plan.aggregates.size());

  for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
    const AggSpec& a = plan.aggregates[ai];
    GroupedOut& out = per_agg[ai];
    if (a.expr != nullptr && a.op != AggOp::kCount) {
      // Expression input: evaluate once, group as doubles.
      std::vector<std::string> referenced;
      a.expr->collect_columns(referenced);
      for (const std::string& name : referenced)
        ctx.charge_scan(table, table.column(name), false);
      std::vector<double> evaluated;
      exec::evaluate_expression(*a.expr, table, evaluated);
      out.is_double = true;
      out.drows = exec::group_aggregate_d(group_keys, evaluated, selection);
      stats.work.cpu_cycles +=
          kGroupCyclesPerTuple * static_cast<double>(selected);
      continue;
    }
    const std::string& value_col_name =
        a.op == AggOp::kCount ? plan.group_by.front() : a.column;
    const Column& val_col = table.column(value_col_name);
    if (a.op != AggOp::kCount) ctx.charge_scan(table, val_col, false);
    if (val_col.type() == TypeId::kDouble) {
      out.is_double = true;
      out.drows = exec::group_aggregate_d(group_keys, val_col.double_data(),
                                          selection);
    } else {
      // Integer (or count over the synthesized key itself).
      std::vector<std::int64_t> widened;
      std::span<const std::int64_t> values;
      if (a.op == AggOp::kCount) {
        values = group_keys;  // any column works for counting
      } else if (val_col.type() == TypeId::kInt64) {
        values = val_col.int64_data();
      } else {
        widened.reserve(val_col.size());
        for (std::size_t i = 0; i < val_col.size(); ++i)
          widened.push_back(column_int_at(val_col, i));
        values = widened;
      }
      out.irows = exec::group_aggregate(group_keys, values, selection);
    }
    stats.work.cpu_cycles +=
        kGroupCyclesPerTuple * static_cast<double>(selected);
  }

  // All aggregates share the same key set; take it from the first.
  std::vector<std::int64_t> keys;
  if (!per_agg.empty()) {
    if (per_agg[0].is_double)
      for (const auto& r : per_agg[0].drows) keys.push_back(r.key);
    else
      for (const auto& r : per_agg[0].irows) keys.push_back(r.key);
  }
  stats.groups = keys.size();

  for (std::size_t g = 0; g < keys.size(); ++g) {
    std::vector<storage::Value> row;
    row.reserve(parts.size() + plan.aggregates.size());
    // Decode the composite key back into per-column values.
    for (const GroupKeyPart& part : parts) {
      const std::int64_t component =
          (keys[g] / part.stride) % part.domain + part.min;
      if (part.col->type() == TypeId::kString)
        row.emplace_back(part.col->dictionary().at(
            static_cast<std::int32_t>(component)));
      else if (part.double_codes)
        row.emplace_back(part.col->double_dictionary().at(
            static_cast<std::int32_t>(component)));
      else
        row.emplace_back(component);
    }
    for (std::size_t ai = 0; ai < plan.aggregates.size(); ++ai) {
      const AggSpec& a = plan.aggregates[ai];
      const GroupedOut& out = per_agg[ai];
      if (out.is_double) {
        const exec::AggResultD& r = out.drows[g].agg;
        switch (a.op) {
          case AggOp::kCount:
            row.emplace_back(static_cast<std::int64_t>(r.count));
            break;
          case AggOp::kSum:
            row.emplace_back(r.sum);
            break;
          case AggOp::kMin:
            row.emplace_back(r.min);
            break;
          case AggOp::kMax:
            row.emplace_back(r.max);
            break;
          case AggOp::kAvg:
            row.emplace_back(r.avg());
            break;
        }
      } else {
        const exec::AggResult& r = out.irows[g].agg;
        switch (a.op) {
          case AggOp::kCount:
            row.emplace_back(static_cast<std::int64_t>(r.count));
            break;
          case AggOp::kSum:
            row.emplace_back(r.sum);
            break;
          case AggOp::kMin:
            row.emplace_back(r.min);
            break;
          case AggOp::kMax:
            row.emplace_back(r.max);
            break;
          case AggOp::kAvg:
            row.emplace_back(r.avg());
            break;
        }
      }
    }
    result.add_row(std::move(row));
  }
  return result;
}

}  // namespace

exec::AggInput agg_input_of(const Column& c) {
  switch (c.type()) {
    case TypeId::kInt32:
      return exec::AggInput::from(c.int32_data());
    case TypeId::kString:
      return exec::AggInput::from(c.codes());
    case TypeId::kInt64:
      return exec::AggInput::from(c.int64_data());
    case TypeId::kDouble:
      return exec::AggInput::from(c.double_data());
  }
  throw Error("invalid column type");
}

storage::Value agg_out_value(AggOp op, const exec::AggOut& out) {
  if (out.is_double) {
    const exec::AggResultD& r = out.d;
    switch (op) {
      case AggOp::kCount:
        return storage::Value{static_cast<std::int64_t>(r.count)};
      case AggOp::kSum:
        return storage::Value{r.sum};
      case AggOp::kMin:
        if (r.count == 0) return storage::Value{std::int64_t{0}};
        return storage::Value{r.min};
      case AggOp::kMax:
        if (r.count == 0) return storage::Value{std::int64_t{0}};
        return storage::Value{r.max};
      case AggOp::kAvg:
        return storage::Value{r.avg()};
    }
  } else {
    const exec::AggResult& r = out.i;
    switch (op) {
      case AggOp::kCount:
        return storage::Value{static_cast<std::int64_t>(r.count)};
      case AggOp::kSum:
        return storage::Value{r.sum};
      case AggOp::kMin:
        if (r.count == 0) return storage::Value{std::int64_t{0}};
        return storage::Value{r.min};
      case AggOp::kMax:
        if (r.count == 0) return storage::Value{std::int64_t{0}};
        return storage::Value{r.max};
      case AggOp::kAvg:
        return storage::Value{r.avg()};
    }
  }
  return {};
}

QueryResult run_aggregate(OpContext& ctx, const LogicalPlan& plan,
                          const Table& table, const BitVector& selection) {
  OperatorScope scope(ctx.stats,
                      plan.has_group_by() ? "group-aggregate" : "aggregate");
  if (ctx.options.agg_path == AggPath::kRowAtATime)
    return run_aggregate_rows(ctx, plan, table, selection);
  return run_aggregate_vectorized(ctx, plan, table, selection);
}

}  // namespace eidb::query::ops
