// Exchange operator: moves shard payloads across the simulated cluster
// and charges the wire lane. Two flavors, matching the planner's DistPlan:
//
//   * result exchange — a real net::WireTable (partial-aggregate rows or
//     gathered row ids) is encoded, run through the per-link codec the
//     opt::CompressionAdvisor picks under ExecOptions::wire_objective,
//     and accounted at its *actual* compressed wire bytes;
//   * join (dimension) exchange — dimensions are shared in-process (only
//     the wire is simulated — DESIGN.md §5), so the planner's modeled
//     DistJoinExchange::est_bytes are charged deterministically, plain.
//
// Every charge lands in ctx.stats (work.net_bytes + the wire_* fields)
// and in the cluster's per-link LinkStats, inside whatever OperatorScope
// the caller holds — the per-operator byte-sum invariant extends to the
// wire lane unchanged.
#pragma once

#include <cstddef>

#include "net/cluster.hpp"
#include "net/wire_format.hpp"
#include "query/ops/op_context.hpp"
#include "query/physical_plan.hpp"

namespace eidb::query::ops {

/// Ships `payload` from cluster node `from` to the coordinator (node 0):
/// encodes the wire table, advises a codec for the link, performs the
/// exchange (encode → modeled wire → decode, round-trip verified), charges
/// cluster + ctx.stats, and returns the decoded table. Precondition:
/// from != 0 — shard 0 lives on the coordinator and ships nothing.
[[nodiscard]] net::WireTable exchange_to_coordinator(
    OpContext& ctx, net::Cluster& cluster, std::size_t from,
    const net::WireTable& payload);

/// Charges one join step's planner-modeled dimension exchange: broadcast
/// ships the coordinator's build side to every other node; repartition
/// moves each node's relocating share one hop. Bytes are the plan-time
/// estimate (deterministic across runs); no-op at shards <= 1 or when the
/// estimate is zero.
void charge_join_exchange(OpContext& ctx, net::Cluster& cluster,
                          const DistJoinExchange& exchange,
                          std::size_t shards);

}  // namespace eidb::query::ops
